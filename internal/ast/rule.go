package ast

import (
	"fmt"
	"strings"
)

// Rule is a function-free Horn rule with optional negated EDB subgoals
// and order atoms:
//
//	head :- pos1, ..., posm, !neg1, ..., !negk, cmp1, ..., cmpj.
type Rule struct {
	Head Atom
	Pos  []Atom // positive relational subgoals (EDB or IDB)
	Neg  []Atom // negated EDB subgoals (each Atom appears under negation)
	Cmp  []Cmp  // order atoms
	// At is the rule's source position — the head token — or zero for
	// rules synthesized by rewrites.
	At Pos
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	out := Rule{Head: r.Head.Clone(), At: r.At}
	out.Pos = cloneAtoms(r.Pos)
	out.Neg = cloneAtoms(r.Neg)
	out.Cmp = append([]Cmp(nil), r.Cmp...)
	return out
}

// Vars returns the variables of the rule in order of first occurrence
// (head first, then positive subgoals, negated subgoals, order atoms).
func (r Rule) Vars() []string {
	vs := r.Head.Vars(nil)
	for _, a := range r.Pos {
		vs = a.Vars(vs)
	}
	for _, a := range r.Neg {
		vs = a.Vars(vs)
	}
	for _, c := range r.Cmp {
		vs = c.Vars(vs)
	}
	return vs
}

// BodyVars returns the variables occurring in positive subgoals.
func (r Rule) BodyVars() []string {
	var vs []string
	for _, a := range r.Pos {
		vs = a.Vars(vs)
	}
	return vs
}

// IsInit reports whether the rule is an initialization rule w.r.t. the
// given set of IDB predicates: no IDB predicate occurs in its body.
func (r Rule) IsInit(idb map[string]bool) bool {
	for _, a := range r.Pos {
		if idb[a.Pred] {
			return false
		}
	}
	return true
}

// HasCmp reports whether the rule has any order atoms.
func (r Rule) HasCmp() bool { return len(r.Cmp) > 0 }

// HasNeg reports whether the rule has any negated subgoals.
func (r Rule) HasNeg() bool { return len(r.Neg) > 0 }

// Safe checks the standard safety conditions: every variable of the
// head, of a negated subgoal, and of an order atom must occur in a
// positive relational subgoal. (This is stricter than necessary for
// order atoms — X = 3 could bind X — but matches the evaluator; the
// parser-level normalization rewrites X = c into a substitution first.)
func (r Rule) Safe() error {
	posVars := map[string]bool{}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			if t.IsVar() {
				posVars[t.Name] = true
			}
		}
	}
	check := func(name, where string) error {
		if !posVars[name] {
			return fmt.Errorf("unsafe rule %s: variable %s in %s does not occur in a positive subgoal", r, name, where)
		}
		return nil
	}
	for _, t := range r.Head.Args {
		if t.IsVar() {
			if err := check(t.Name, "head"); err != nil {
				return err
			}
		}
	}
	for _, a := range r.Neg {
		for _, t := range a.Args {
			if t.IsVar() {
				if err := check(t.Name, "negated subgoal"); err != nil {
					return err
				}
			}
		}
	}
	for _, c := range r.Cmp {
		for _, v := range c.Vars(nil) {
			if err := check(v, "order atom"); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the rule in source syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	writeBody(&b, r.Pos, r.Neg, r.Cmp)
	b.WriteByte('.')
	return b.String()
}

// IC is an integrity constraint: a rule with an empty head. The
// constraint is violated by a database iff its body can be satisfied.
// Bodies of ic's never contain IDB predicates.
type IC struct {
	Pos []Atom // positive EDB atoms
	Neg []Atom // negated EDB atoms (each Atom appears under negation)
	Cmp []Cmp  // order atoms
	// At is the constraint's source position (the ':-' token), zero
	// for synthesized constraints.
	At Pos
}

// Clone returns a deep copy of the constraint.
func (ic IC) Clone() IC {
	return IC{Pos: cloneAtoms(ic.Pos), Neg: cloneAtoms(ic.Neg), Cmp: append([]Cmp(nil), ic.Cmp...), At: ic.At}
}

// Vars returns the variables of the constraint in order of first
// occurrence.
func (ic IC) Vars() []string {
	var vs []string
	for _, a := range ic.Pos {
		vs = a.Vars(vs)
	}
	for _, a := range ic.Neg {
		vs = a.Vars(vs)
	}
	for _, c := range ic.Cmp {
		vs = c.Vars(vs)
	}
	return vs
}

// Pure reports whether the constraint has neither order atoms nor
// negated EDB atoms (the class the core algorithm of Section 4.1
// handles directly).
func (ic IC) Pure() bool { return len(ic.Neg) == 0 && len(ic.Cmp) == 0 }

// String renders the constraint in source syntax.
func (ic IC) String() string {
	var b strings.Builder
	b.WriteString(":-")
	bb := strings.Builder{}
	writeBody(&bb, ic.Pos, ic.Neg, ic.Cmp)
	s := bb.String()
	// writeBody emits a leading " :- " separator for rules; reuse the
	// atom list portion only.
	s = strings.TrimPrefix(s, " :- ")
	if s != "" {
		b.WriteByte(' ')
		b.WriteString(s)
	}
	b.WriteByte('.')
	return b.String()
}

// writeBody writes " :- a1, ..., !n1, ..., c1, ..." to b, or nothing if
// the body is empty.
func writeBody(b *strings.Builder, pos, neg []Atom, cmp []Cmp) {
	if len(pos)+len(neg)+len(cmp) == 0 {
		return
	}
	b.WriteString(" :- ")
	first := true
	sep := func() {
		if !first {
			b.WriteString(", ")
		}
		first = false
	}
	for _, a := range pos {
		sep()
		b.WriteString(a.String())
	}
	for _, a := range neg {
		sep()
		b.WriteByte('!')
		b.WriteString(a.String())
	}
	for _, c := range cmp {
		sep()
		b.WriteString(c.String())
	}
}

func cloneAtoms(as []Atom) []Atom {
	if as == nil {
		return nil
	}
	out := make([]Atom, len(as))
	for i, a := range as {
		out[i] = a.Clone()
	}
	return out
}
