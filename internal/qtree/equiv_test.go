package qtree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/parser"
)

// TestRandomizedEquivalence is the executable form of Theorem 4.1: on
// every database satisfying the constraints, the rewritten program
// must produce exactly the same relation for the query predicate as
// the original. Programs, constraints, and databases are drawn at
// random; databases are rejection-sampled for consistency.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	trials := 120
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		prog, ics := randomProgram(rng)
		out, err := Optimize(prog, ics)
		if err != nil {
			t.Fatalf("trial %d: optimize failed: %v\nprogram:\n%sics: %v", trial, err, prog, ics)
		}
		for dbTrial := 0; dbTrial < 6; dbTrial++ {
			db, ok := randomConsistentDB(rng, ics)
			if !ok {
				continue
			}
			origIdb, _, err := eval.Eval(prog, db)
			if err != nil {
				t.Fatalf("trial %d: eval original: %v", trial, err)
			}
			optIdb, _, err := eval.Eval(out.Program, db)
			if err != nil {
				t.Fatalf("trial %d: eval rewritten: %v\n%s", trial, err, out.Program)
			}
			want := origIdb.SortedFacts(prog.Query)
			got := optIdb.SortedFacts(prog.Query)
			if strings.Join(want, ";") != strings.Join(got, ";") {
				t.Fatalf("trial %d/%d: answers differ\nprogram:\n%sics: %v\nrewritten:\n%swant: %v\ngot:  %v",
					trial, dbTrial, prog, ics, out.Program, want, got)
			}
			if !out.Satisfiable && len(want) > 0 {
				t.Fatalf("trial %d: declared unsatisfiable but original has answers %v\nprogram:\n%sics: %v",
					trial, want, prog, ics)
			}
		}
	}
}

// TestSatisfiabilitySoundness cross-checks the query-tree
// satisfiability verdict against brute-force search over small
// databases: if any consistent database yields an answer, the verdict
// must be satisfiable (the converse may need larger witnesses than the
// brute-force domain, so only soundness of pruning is asserted).
func TestSatisfiabilitySoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		prog, ics := randomProgram(rng)
		out, err := Optimize(prog, ics)
		if err != nil {
			t.Fatal(err)
		}
		if out.Satisfiable {
			continue // only the unsat verdict is checked exhaustively
		}
		// Every sampled consistent DB must give zero answers.
		for dbTrial := 0; dbTrial < 30; dbTrial++ {
			db, ok := randomConsistentDB(rng, ics)
			if !ok {
				continue
			}
			idb, _, err := eval.Eval(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			if idb.Count(prog.Query) > 0 {
				t.Fatalf("trial %d: declared unsatisfiable, but a consistent DB yields answers\nprogram:\n%sics: %v",
					trial, prog, ics)
			}
		}
	}
}

// randomProgram builds a small random recursive program over EDB
// predicates e0, e1, e2 (binary) and f (unary), plus 1-2 random pure
// constraints.
func randomProgram(rng *rand.Rand) (*ast.Program, []ast.IC) {
	edb := []string{"e0", "e1", "e2"}
	var rules []string
	// 1-2 base rules.
	for i := 0; i < 1+rng.Intn(2); i++ {
		e := edb[rng.Intn(len(edb))]
		if rng.Intn(4) == 0 {
			rules = append(rules, fmt.Sprintf("q(X, Y) :- %s(X, Y), f(X).", e))
		} else {
			rules = append(rules, fmt.Sprintf("q(X, Y) :- %s(X, Y).", e))
		}
	}
	// 1-2 recursive rules.
	for i := 0; i < 1+rng.Intn(2); i++ {
		e := edb[rng.Intn(len(edb))]
		if rng.Intn(2) == 0 {
			rules = append(rules, fmt.Sprintf("q(X, Y) :- %s(X, Z), q(Z, Y).", e))
		} else {
			rules = append(rules, fmt.Sprintf("q(X, Y) :- q(X, Z), %s(Z, Y).", e))
		}
	}
	src := strings.Join(rules, "\n") + "\n?- q.\n"
	prog := parser.MustParseProgram(src)

	var ics []ast.IC
	for i := 0; i < 1+rng.Intn(2); i++ {
		a := edb[rng.Intn(len(edb))]
		b := edb[rng.Intn(len(edb))]
		switch rng.Intn(3) {
		case 0: // forbid a-then-b joins
			ics = append(ics, parser.MustParseICs(fmt.Sprintf(":- %s(X, Y), %s(Y, Z).", a, b))...)
		case 1: // forbid sources of a marked by f
			ics = append(ics, parser.MustParseICs(fmt.Sprintf(":- %s(X, Y), f(X).", a))...)
		default: // forbid self-loops of a
			ics = append(ics, parser.MustParseICs(fmt.Sprintf(":- %s(X, X).", a))...)
		}
	}
	return prog, ics
}

// randomConsistentDB rejection-samples a small database over a 4-node
// domain that satisfies the constraints.
func randomConsistentDB(rng *rand.Rand, ics []ast.IC) (*eval.DB, bool) {
	for attempt := 0; attempt < 30; attempt++ {
		var facts []ast.Atom
		for _, e := range []string{"e0", "e1", "e2"} {
			for i := 0; i < rng.Intn(5); i++ {
				facts = append(facts, ast.NewAtom(e,
					ast.N(float64(rng.Intn(4))), ast.N(float64(rng.Intn(4)))))
			}
		}
		for i := 0; i < rng.Intn(3); i++ {
			facts = append(facts, ast.NewAtom("f", ast.N(float64(rng.Intn(4)))))
		}
		ok, err := chase.IsConsistent(facts, ics)
		if err != nil {
			return nil, false
		}
		if !ok {
			continue
		}
		db := eval.NewDB()
		db.AddFacts(facts)
		// Materialize empty relations so negation lookups are uniform.
		db.Rel("e0", 2)
		db.Rel("e1", 2)
		db.Rel("e2", 2)
		db.Rel("f", 1)
		return db, true
	}
	return nil, false
}

// TestRandomizedEquivalenceWithOrderICs extends the property to
// constraints with (local and non-local) order atoms.
func TestRandomizedEquivalenceWithOrderICs(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	prog := parser.MustParseProgram(`
		q(X, Y) :- e0(X, Y).
		q(X, Y) :- e0(X, Z), q(Z, Y).
		top(X, Y) :- s(X), q(X, Y), t(Y).
		?- top.
	`)
	icsChoices := [][]ast.IC{
		parser.MustParseICs(`:- e0(X, Y), X >= Y.`),
		parser.MustParseICs(`:- s(X), t(Y), Y <= X.`),
		parser.MustParseICs(`
			:- e0(X, Y), X >= Y.
			:- s(X), t(Y), Y <= X.
		`),
		parser.MustParseICs(`
			:- s(X), e0(X, Y), X < 2.
			:- e0(X, Y), X >= Y.
		`),
	}
	for trial := 0; trial < trials; trial++ {
		ics := icsChoices[rng.Intn(len(icsChoices))]
		out, err := Optimize(prog, ics)
		if err != nil {
			t.Fatal(err)
		}
		for dbTrial := 0; dbTrial < 5; dbTrial++ {
			var facts []ast.Atom
			for i := 0; i < 2+rng.Intn(6); i++ {
				x, y := rng.Intn(6), rng.Intn(6)
				facts = append(facts, ast.NewAtom("e0", ast.N(float64(x)), ast.N(float64(y))))
			}
			for i := 0; i < 1+rng.Intn(2); i++ {
				facts = append(facts, ast.NewAtom("s", ast.N(float64(rng.Intn(6)))))
			}
			for i := 0; i < 1+rng.Intn(2); i++ {
				facts = append(facts, ast.NewAtom("t", ast.N(float64(rng.Intn(6)))))
			}
			ok, err := chase.IsConsistent(facts, ics)
			if err != nil || !ok {
				continue
			}
			db := eval.NewDB()
			db.AddFacts(facts)
			db.Rel("e0", 2)
			db.Rel("s", 1)
			db.Rel("t", 1)
			want, _, err := eval.Eval(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eval.Eval(out.Program, db)
			if err != nil {
				t.Fatalf("eval rewritten: %v\n%s", err, out.Program)
			}
			w := want.SortedFacts("top")
			g := got.SortedFacts("top")
			if strings.Join(w, ";") != strings.Join(g, ";") {
				t.Fatalf("trial %d: answers differ with ics %v\nrewritten:\n%swant %v\ngot %v",
					trial, ics, out.Program, w, g)
			}
		}
	}
}

// tcmHalting builds the Theorem 5.4 artifacts for the stress test in
// determinism_test.go without creating an import cycle on the facade.
func tcmHalting() struct {
	prog *ast.Program
	ics  []ast.IC
	db   *eval.DB
} {
	// A hand-rolled miniature of the tcm encoding: enough constraints
	// to exercise skipping plus evaluation.
	prog := parser.MustParseProgram(`
		reach(T) :- cnfg(T, C1, C2, S), zero(T).
		reach(T2) :- reach(T), succ(T, T2), cnfg(T2, C1, C2, S).
		halt :- reach(T), cnfg(T, C1, C2, S), zero(Z0), succ(Z0, Z1), succ(Z1, S).
		?- halt.
	`)
	ics := parser.MustParseICs(`
		:- succ(X, Y), !dom(X).
		:- succ(X, Y), !dom(Y).
		:- zero(X), !dom(X).
		:- dom(X), !eq(X, X).
		:- eq(X, Z), eq(Z, Y), !eq(X, Y).
		:- succ(X, Y), zero(Y).
	`)
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		zero(0). succ(0, 1). succ(1, 2).
		dom(0). dom(1). dom(2).
		eq(0, 0). eq(1, 1). eq(2, 2).
		cnfg(0, 0, 0, 0). cnfg(1, 1, 0, 1). cnfg(2, 2, 0, 2).
	`))
	return struct {
		prog *ast.Program
		ics  []ast.IC
		db   *eval.DB
	}{prog, ics, db}
}
