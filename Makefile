# Shared entry points for local development and CI (.github/workflows/ci.yml
# invokes these same targets so the two can't drift).

GO ?= go

.PHONY: build vet vet-stats fmt test race bench bench-compare bench-regression fuzz-smoke incr-smoke lint-smoke serve serve-smoke cluster-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo's own analyzer (internal/analyzers/statsequal) run as a vet
# pass: every eval.Stats field must be either compared by Stats.Equal
# or deliberately listed in statsEqualExcluded.
vet-stats:
	@mkdir -p bench-out
	$(GO) build -o bench-out/statsequal ./cmd/statsequal
	$(GO) vet -vettool=$(abspath bench-out/statsequal) ./internal/eval/

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Legacy engine vs compiled join plans on the evaluation benchmarks,
# via the SQO_EVAL_ENGINE override honored by benchEvalWith. Summarized
# with benchstat when it is installed (go install
# golang.org/x/perf/cmd/benchstat@v0.0.0-20230113213139-801c7ef9e5c5,
# the version CI pins); falls back to printing the raw runs otherwise.
BENCH_COMPARE_PAT ?= 'BenchmarkE1GoodPath|BenchmarkE3ABPaths|BenchmarkP1Parallel'
BENCH_COMPARE_COUNT ?= 5

bench-compare:
	SQO_EVAL_ENGINE=legacy $(GO) test -run='^$$' -bench=$(BENCH_COMPARE_PAT) \
		-benchmem -count=$(BENCH_COMPARE_COUNT) . | tee bench-legacy.txt
	SQO_EVAL_ENGINE=compiled $(GO) test -run='^$$' -bench=$(BENCH_COMPARE_PAT) \
		-benchmem -count=$(BENCH_COMPARE_COUNT) . | tee bench-compiled.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-legacy.txt bench-compiled.txt; \
	else \
		echo "benchstat not installed; raw runs are in bench-legacy.txt and bench-compiled.txt"; \
	fi

# Re-run the JSON-emitting experiments and diff against the committed
# baselines — the same commands the CI bench-regression job runs.
# Regenerate a baseline deliberately with e.g.
#   go run ./cmd/sqobench -run P6 -out BENCH_6.json
bench-regression:
	mkdir -p bench-out
	$(GO) run ./cmd/sqobench -run P3 -out bench-out/bench3.json
	$(GO) run ./cmd/sqobench -run P4 -out bench-out/bench4.json
	$(GO) run ./cmd/sqobench -run P6 -out bench-out/bench6.json
	$(GO) run ./cmd/sqobench -run P7 -out bench-out/bench7.json
	$(GO) run ./cmd/sqobench -run P8 -out bench-out/bench8.json
	$(GO) run ./cmd/sqobench -run P9 -out bench-out/bench9.json
	$(GO) run ./cmd/sqobench -run P10 -out bench-out/bench10.json
	$(GO) run ./cmd/benchdiff -label P3 -baseline BENCH_3.json -current bench-out/bench3.json
	$(GO) run ./cmd/benchdiff -label P4 -baseline BENCH_4.json -current bench-out/bench4.json
	$(GO) run ./cmd/benchdiff -label P6 -baseline BENCH_6.json -current bench-out/bench6.json
	$(GO) run ./cmd/benchdiff -label P7 -baseline BENCH_7.json -current bench-out/bench7.json
	$(GO) run ./cmd/benchdiff -label P8 -peak-mem -baseline BENCH_8.json -current bench-out/bench8.json
	$(GO) run ./cmd/benchdiff -label P9 -baseline BENCH_9.json -current bench-out/bench9.json
	$(GO) run ./cmd/benchdiff -label P10 -baseline BENCH_10.json -current bench-out/bench10.json

# A short native-fuzzing pass over the parser. Long enough to exercise
# the mutator, short enough for CI; sustained campaigns should raise
# -fuzztime by hand.
fuzz-smoke:
	$(GO) test ./internal/parser -run='^$$' -fuzz=FuzzParse -fuzztime=10s

# Randomized differential check of incremental view maintenance under
# the race detector: after every prefix of a random add/retract
# sequence, View answers/counts/provenance must be bit-identical to a
# from-scratch evaluation. The CI race job runs this too.
incr-smoke:
	$(GO) test ./internal/incr -race -count=1 -run='TestIncrRandomizedDifferential'

# Run sqolint over the checked-in example programs: the clean examples
# must exit 0, deadcode.dl must exit 1 (it contains an unsatisfiable
# rule), and its JSON report must name the dead rules. The CI test job
# runs this too.
lint-smoke:
	$(GO) run ./cmd/sqolint examples/lint/figure1.dl
	$(GO) run ./cmd/sqolint examples/lint/hygiene.dl
	$(GO) run ./cmd/sqolint examples/lint/bounded.dl
	$(GO) run ./cmd/sqolint examples/lint/unbounded.dl
	@$(GO) run ./cmd/sqolint -json examples/lint/bounded.dl | grep -q '"id": "bounded-recursion"' \
		|| { echo "lint-smoke: bounded-recursion finding missing from JSON report"; exit 1; }
	@if $(GO) run ./cmd/sqolint examples/lint/deadcode.dl; then \
		echo "lint-smoke: deadcode.dl should exit non-zero"; exit 1; \
	else \
		echo "lint-smoke: deadcode.dl correctly rejected"; \
	fi
	@$(GO) run ./cmd/sqolint -json examples/lint/deadcode.dl | grep -q '"id": "dead-rule"' \
		|| { echo "lint-smoke: dead-rule finding missing from JSON report"; exit 1; }
	@echo "lint-smoke: PASS"

# Run the query daemon locally with default settings.
serve:
	$(GO) run ./cmd/sqod

# Boot sqod, register a dataset, run an optimized query twice (second
# must hit the rewrite cache), scrape /metrics, then SIGTERM and assert
# a clean drain. The same script backs the CI smoke job.
serve-smoke:
	./scripts/serve-smoke.sh

# Boot a coordinator fronting two worker sqods, place datasets, run a
# scattered query, SIGKILL one worker mid-run, and assert the explicit
# degraded/failed_peers contract. The same script backs the CI job.
cluster-smoke:
	./scripts/cluster-smoke.sh

ci: build vet vet-stats fmt test
