package qtree

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

// Functional dependencies are expressible as the Theorem 5.5
// constraint shape :- e(X, Y1), e(X, Y2), Y1 != Y2. The inequality
// spans two atoms (not local), so it is handled by the quasi-local
// residue mechanism: when both atoms map into one rule, the negated
// residue Y1 = Y2 is attached.

func TestFDMakesConflictingJoinUnsatisfiable(t *testing.T) {
	// The rule demands two DIFFERENT successors of the same key —
	// impossible when e is functional.
	p := parser.MustParseProgram(`
		conflict(X) :- e(X, Y), e(X, Z), Y < Z.
		?- conflict.
	`)
	ics := parser.MustParseICs(`:- e(X, Y1), e(X, Y2), Y1 != Y2.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("conflict demands Y < Z on a functional relation; rewritten:\n%s", out.Program)
	}
}

func TestFDEqualityResidueAttached(t *testing.T) {
	// Joining e twice on the same key forces the targets equal: the
	// residue Y = Z must appear (directly or via substitution).
	p := parser.MustParseProgram(`
		pair(Y, Z) :- e(X, Y), e(X, Z).
		?- pair.
	`)
	ics := parser.MustParseICs(`:- e(X, Y1), e(X, Y2), Y1 != Y2.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Fatal("pair is satisfiable (with equal components)")
	}
	// The rewritten program must only produce pairs with equal
	// components on functional databases — and, because the residue is
	// compiled in, even on NON-functional ones it must restrict itself
	// to the equal pairs (the residue is part of the program now).
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`e(1, 2). e(1, 3).`)) // violates the FD
	idb, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range idb.SortedFacts("pair") {
		if f == "pair(2, 3)" || f == "pair(3, 2)" {
			t.Fatalf("residue Y = Z not incorporated: %v", idb.SortedFacts("pair"))
		}
	}
}

func TestFDEquivalenceOnFunctionalDatabases(t *testing.T) {
	// On databases satisfying the FD, original and rewritten agree.
	p := parser.MustParseProgram(`
		reach(X, Y) :- e(X, Y).
		reach(X, Y) :- e(X, Z), reach(Z, Y).
		?- reach.
	`)
	ics := parser.MustParseICs(`:- e(X, Y1), e(X, Y2), Y1 != Y2.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`e(1, 2). e(2, 3). e(3, 1).`)) // functional cycle
	want, _, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w := want.SortedFacts("reach")
	g := got.SortedFacts("reach")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) != 9 {
		t.Fatalf("sanity: cycle closure should have 9 tuples, got %d", len(w))
	}
}

func TestKeyConstraintPrunesMultiKeyJoin(t *testing.T) {
	// A two-column key: same (X, Y) forces equal Z. The rule joins on
	// the key and demands distinct values.
	p := parser.MustParseProgram(`
		bad(X) :- r(X, Y, Z1), r(X, Y, Z2), Z1 != Z2.
		?- bad.
	`)
	ics := parser.MustParseICs(`:- r(X, Y, Z1), r(X, Y, Z2), Z1 != Z2.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("bad contradicts the key constraint:\n%s", out.Program)
	}
}

func TestUnsatProgramEvaluatesEmpty(t *testing.T) {
	// The facade contract: a rewritten-unsatisfiable program evaluates
	// to the empty relation rather than erroring.
	p := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		?- q.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatal("should be unsatisfiable")
	}
	db := eval.NewDB()
	db.AddFacts([]ast.Atom{
		ast.NewAtom("a", ast.N(1), ast.N(2)),
		ast.NewAtom("b", ast.N(5), ast.N(6)),
	})
	tuples, _, err := eval.Query(out.Program, db)
	if err != nil {
		t.Fatalf("unsat program must evaluate to empty, not error: %v", err)
	}
	if len(tuples) != 0 {
		t.Fatalf("expected no answers, got %v", tuples)
	}
}
