// Package magic implements goal-directed program rewrites: the
// magic-sets transformation (demand-driven evaluation of queries with
// bound arguments) and a streaming unfolding rewrite for non-recursive
// predicates feeding a single consumer (stream.go).
//
// The magic-sets rewrite takes the query's binding-pattern adornment
// (binding.go) and propagates it through rule bodies left to
// right (the textbook sideways-information-passing strategy): each
// adorned predicate p^a gets a magic predicate magic#p#a holding the
// bound-argument combinations the query actually demands, and shared
// join prefixes are factored into supplementary predicates sup#r#j#a.
// The output is an ordinary program over the same EDB, so the existing
// semi-naive engines — compiled plans, join-order policies, parallel
// rounds, provenance — evaluate it unchanged. Restricted to the goal's
// bindings, the rewritten query relation agrees exactly with the
// bottom-up one; eval.QueryCtx enforces the restriction on both paths,
// so answers are identical while the fixpoint only derives facts the
// demand reaches.
//
// Generated predicate names contain '#', which the lexer rejects in
// identifiers, so they can never collide with user predicates. The
// rewrite is sound for the whole language the engines accept (negation
// is EDB-only and order atoms are pure filters); Rewrite still refuses
// — with ErrNotApplicable, so callers fall back to bottom-up — goals
// without bound arguments, query predicates without rules, arity
// mismatches, and adornment blowups past a fixed cap.
package magic

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ast"
)

// ErrNotApplicable is wrapped by Rewrite errors that mean "evaluate
// bottom-up instead"; distinguish them from real failures with
// errors.Is.
var ErrNotApplicable = errors.New("magic rewrite not applicable")

const (
	// maxAdornments caps distinct (predicate, pattern) pairs; past it
	// the rewrite declares itself inapplicable rather than exploding.
	maxAdornments = 256
	// maxRules caps the rewritten program size, same escape hatch.
	maxRules = 4096
)

// Result is a successful magic-sets rewrite.
type Result struct {
	// Program is the rewritten program. Its query predicate is the
	// adorned original (e.g. path#bf); its Goal is a copy of the
	// input's. Evaluating it bottom-up and selecting the tuples that
	// match the goal yields exactly the original query's answers.
	Program *ast.Program
	// Pattern is the query's binding-pattern adornment.
	Pattern BindingPattern
	// MagicRules and SupRules count the generated demand and
	// supplementary rules (diagnostics).
	MagicRules, SupRules int
}

// AdornedName returns the rewritten name of the query predicate under
// a pattern (exported for diagnostics and tests).
func AdornedName(pred string, pat BindingPattern) string {
	return pred + "#" + string(pat)
}

func magicName(pred string, pat BindingPattern) string {
	return "magic#" + pred + "#" + string(pat)
}

func supName(ri, j int, pat BindingPattern) string {
	return fmt.Sprintf("sup#%d#%d#%s", ri, j, pat)
}

// Rewrite applies the magic-sets transformation to a program whose
// goal binds at least one argument. On ErrNotApplicable the caller
// should evaluate the original program bottom-up.
func Rewrite(p *ast.Program) (*Result, error) {
	if p.Query == "" || len(p.Goal) == 0 {
		return nil, fmt.Errorf("%w: query has no goal arguments", ErrNotApplicable)
	}
	pat := GoalPattern(p.Goal)
	if !pat.HasBound() {
		return nil, fmt.Errorf("%w: goal %s binds no argument", ErrNotApplicable, p.GoalAtom())
	}
	idb := p.IDB()
	if !idb[p.Query] {
		// No rules: the query relation is empty either way.
		return nil, fmt.Errorf("%w: query predicate %s has no rules", ErrNotApplicable, p.Query)
	}
	ar, err := p.PredArity()
	if err != nil {
		return nil, err
	}
	if n := ar[p.Query]; n != len(p.Goal) {
		return nil, fmt.Errorf("%w: goal arity %d but predicate %s has arity %d",
			ErrNotApplicable, len(p.Goal), p.Query, n)
	}
	// The engines restrict negation to EDB predicates (Validate
	// enforces it); an IDB negation slipping through would make demand
	// pruning unsound, so refuse defensively rather than miscompute.
	for _, r := range p.Rules {
		for _, n := range r.Neg {
			if idb[n.Pred] {
				return nil, fmt.Errorf("%w: rule negates IDB predicate %s", ErrNotApplicable, n.Pred)
			}
		}
	}

	rw := &rewriter{
		prog:   p,
		idb:    idb,
		seen:   map[adornKey]bool{},
		copied: map[string]bool{},
		out: &ast.Program{
			Query: AdornedName(p.Query, pat),
			Goal:  append([]ast.Term(nil), p.Goal...),
		},
	}
	// Seed: the goal's bound constants, as a bodiless ground rule. It
	// must be a rule, not an EDB fact — the engines read a predicate
	// that has rules exclusively from the IDB, so an extensional seed
	// would be invisible to the demand joins.
	rw.out.Rules = append(rw.out.Rules, ast.Rule{
		Head: ast.Atom{Pred: magicName(p.Query, pat), Args: cloneTerms(pat.Project(p.Goal))},
	})
	rw.enqueue(p.Query, pat)
	for len(rw.queue) > 0 {
		k := rw.queue[0]
		rw.queue = rw.queue[1:]
		if len(rw.seen) > maxAdornments || len(rw.out.Rules) > maxRules {
			return nil, fmt.Errorf("%w: adornment blowup (%d adornments, %d rules)",
				ErrNotApplicable, len(rw.seen), len(rw.out.Rules))
		}
		rw.rewritePred(k)
	}
	// Predicates demanded with an all-free pattern are computed
	// bottom-up under their original names, along with every IDB
	// predicate they transitively depend on.
	for i := 0; i < len(rw.copyQueue); i++ {
		pred := rw.copyQueue[i]
		for _, r := range p.Rules {
			if r.Head.Pred != pred {
				continue
			}
			rw.out.Rules = append(rw.out.Rules, r.Clone())
			for _, a := range r.Pos {
				rw.copy(a.Pred)
			}
		}
	}
	if len(rw.out.Rules) > maxRules {
		return nil, fmt.Errorf("%w: rewritten program too large (%d rules)", ErrNotApplicable, len(rw.out.Rules))
	}
	return &Result{Program: rw.out, Pattern: pat, MagicRules: rw.magicRules, SupRules: rw.supRules}, nil
}

type adornKey struct {
	pred string
	pat  BindingPattern
}

type rewriter struct {
	prog      *ast.Program
	idb       map[string]bool
	out       *ast.Program
	seen      map[adornKey]bool
	queue     []adornKey
	copied    map[string]bool
	copyQueue []string

	magicRules, supRules int
}

// enqueue schedules a (predicate, pattern) pair for rewriting once.
func (rw *rewriter) enqueue(pred string, pat BindingPattern) {
	k := adornKey{pred, pat}
	if rw.seen[k] {
		return
	}
	rw.seen[k] = true
	rw.queue = append(rw.queue, k)
}

// copy schedules an IDB predicate for verbatim (bottom-up) inclusion.
func (rw *rewriter) copy(pred string) {
	if !rw.idb[pred] || rw.copied[pred] {
		return
	}
	rw.copied[pred] = true
	rw.copyQueue = append(rw.copyQueue, pred)
}

func (rw *rewriter) rewritePred(k adornKey) {
	for ri, r := range rw.prog.Rules {
		if r.Head.Pred == k.pred {
			rw.rewriteRule(ri, r, k.pat)
		}
	}
}

// rewriteRule emits the adorned form of one rule under one head
// pattern: a left-to-right walk over the body that closes the current
// join prefix into a supplementary predicate at each bound IDB
// subgoal, derives that subgoal's magic (demand) predicate from the
// prefix, and finishes with the adorned head rule over the remaining
// chunk. Filters (order atoms, negated EDB subgoals) attach to the
// earliest emitted rule whose prefix binds all their variables, so
// they prune demand as early as possible.
func (rw *rewriter) rewriteRule(ri int, r ast.Rule, pat BindingPattern) {
	magicAtom := ast.Atom{Pred: magicName(r.Head.Pred, pat), Args: cloneTerms(pat.Project(r.Head.Args))}
	cur := []ast.Atom{magicAtom}
	attachedCmp := make([]bool, len(r.Cmp))
	attachedNeg := make([]bool, len(r.Neg))
	for j, s := range r.Pos {
		if rw.idb[s.Pred] {
			avail := availVars(cur)
			spat := PatternFor(s.Args, avail)
			if spat.HasBound() {
				if len(cur) > 1 {
					// Close the chunk: its join is shared between the
					// demand rule below and the continuation, so factor
					// it into a supplementary predicate projecting the
					// bound variables still needed downstream.
					supCmp, supNeg := takeFilters(r, avail, attachedCmp, attachedNeg)
					need := neededLater(r, j, attachedCmp, attachedNeg)
					var headVars []string
					for v := range avail {
						if need[v] {
							headVars = append(headVars, v)
						}
					}
					sort.Strings(headVars)
					supAtom := ast.Atom{Pred: supName(ri, j, pat), Args: varsToTerms(headVars)}
					rw.out.Rules = append(rw.out.Rules, ast.Rule{
						Head: supAtom, Pos: cloneAtoms(cur), Neg: supNeg, Cmp: supCmp,
					})
					rw.supRules++
					cur = []ast.Atom{supAtom}
				}
				mhead := ast.Atom{Pred: magicName(s.Pred, spat), Args: cloneTerms(spat.Project(s.Args))}
				// Skip identity demand rules (m :- m), which recursion
				// on an unchanged binding pattern would otherwise emit.
				if !mhead.Equal(cur[0]) {
					rw.out.Rules = append(rw.out.Rules, ast.Rule{Head: mhead, Pos: cloneAtoms(cur)})
					rw.magicRules++
				}
				rw.enqueue(s.Pred, spat)
				cur = append(cur, ast.Atom{Pred: AdornedName(s.Pred, spat), Args: cloneTerms(s.Args)})
				continue
			}
			// No binding reaches this subgoal: it is computed bottom-up
			// under its original name.
			rw.copy(s.Pred)
		}
		cur = append(cur, s.Clone())
	}
	var cmps []ast.Cmp
	for i, c := range r.Cmp {
		if !attachedCmp[i] {
			cmps = append(cmps, c)
		}
	}
	var negs []ast.Atom
	for i, n := range r.Neg {
		if !attachedNeg[i] {
			negs = append(negs, n.Clone())
		}
	}
	head := ast.Atom{Pred: AdornedName(r.Head.Pred, pat), Args: cloneTerms(r.Head.Args)}
	rw.out.Rules = append(rw.out.Rules, ast.Rule{Head: head, Pos: cur, Neg: negs, Cmp: cmps})
}

// takeFilters claims (and marks attached) every filter whose variables
// the current prefix binds; they move onto the supplementary rule.
func takeFilters(r ast.Rule, avail map[string]bool, attachedCmp, attachedNeg []bool) ([]ast.Cmp, []ast.Atom) {
	var cmps []ast.Cmp
	for i, c := range r.Cmp {
		if attachedCmp[i] || !allIn(c.Vars(nil), avail) {
			continue
		}
		attachedCmp[i] = true
		cmps = append(cmps, c)
	}
	var negs []ast.Atom
	for i, n := range r.Neg {
		if attachedNeg[i] || !allIn(n.Vars(nil), avail) {
			continue
		}
		attachedNeg[i] = true
		negs = append(negs, n.Clone())
	}
	return cmps, negs
}

// neededLater returns the variables a supplementary predicate closing
// the prefix before Pos[j] must carry: everything used by the head,
// by Pos[j:] (including the subgoal being demanded), or by a filter
// not yet attached.
func neededLater(r ast.Rule, j int, attachedCmp, attachedNeg []bool) map[string]bool {
	need := map[string]bool{}
	for _, v := range r.Head.Vars(nil) {
		need[v] = true
	}
	for _, a := range r.Pos[j:] {
		for _, v := range a.Vars(nil) {
			need[v] = true
		}
	}
	for i, c := range r.Cmp {
		if !attachedCmp[i] {
			for _, v := range c.Vars(nil) {
				need[v] = true
			}
		}
	}
	for i, n := range r.Neg {
		if !attachedNeg[i] {
			for _, v := range n.Vars(nil) {
				need[v] = true
			}
		}
	}
	return need
}

func availVars(atoms []ast.Atom) map[string]bool {
	m := map[string]bool{}
	for _, a := range atoms {
		for _, v := range a.Vars(nil) {
			m[v] = true
		}
	}
	return m
}

func allIn(vars []string, set map[string]bool) bool {
	for _, v := range vars {
		if !set[v] {
			return false
		}
	}
	return true
}

func cloneTerms(ts []ast.Term) []ast.Term {
	return append([]ast.Term(nil), ts...)
}

func cloneAtoms(as []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(as))
	for i, a := range as {
		out[i] = a.Clone()
	}
	return out
}

func varsToTerms(vars []string) []ast.Term {
	out := make([]ast.Term, len(vars))
	for i, v := range vars {
		out[i] = ast.V(v)
	}
	return out
}
