package rewrite

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/unify"
)

// LocalPair records the association of Section 4.2: a local atom l of
// an integrity constraint together with the positive EDB atom
// (the anchor) of the same constraint that contains all of l's
// variables. Exactly one of OrderAtom and NegEDB is set.
type LocalPair struct {
	// ICIndex identifies the constraint the pair came from.
	ICIndex int
	// Anchor is the positive EDB atom containing all variables of the
	// local atom.
	Anchor ast.Atom
	// OrderAtom is set when the local atom is an order atom of the ic.
	OrderAtom *ast.Cmp
	// NegEDB is set when the local atom is a negated EDB atom of the
	// ic (stored positively).
	NegEDB *ast.Atom
}

// String renders the pair for diagnostics.
func (lp LocalPair) String() string {
	if lp.OrderAtom != nil {
		return fmt.Sprintf("(%s, %s)", lp.Anchor, lp.OrderAtom)
	}
	return fmt.Sprintf("(%s, !%s)", lp.Anchor, lp.NegEDB)
}

// LocalPairs associates every order atom and negated EDB atom of the
// constraints with an anchoring positive EDB atom. It fails if some
// atom is not local (no positive atom of the same constraint contains
// all of its variables) — the undecidable territory of Theorems 5.3
// and 5.4.
func LocalPairs(ics []ast.IC) ([]LocalPair, error) {
	var out []LocalPair
	for i, ic := range ics {
		for ci := range ic.Cmp {
			c := ic.Cmp[ci]
			a, ok := anchorFor(ic, c.Vars(nil))
			if !ok {
				return nil, fmt.Errorf("ic %d (%s): order atom %s is not local (no positive EDB atom contains all its variables)", i, ic, c)
			}
			cc := c
			out = append(out, LocalPair{ICIndex: i, Anchor: a, OrderAtom: &cc})
		}
		for ni := range ic.Neg {
			nAtom := ic.Neg[ni]
			a, ok := anchorFor(ic, nAtom.Vars(nil))
			if !ok {
				return nil, fmt.Errorf("ic %d (%s): negated atom !%s is not local", i, ic, nAtom)
			}
			na := nAtom.Clone()
			out = append(out, LocalPair{ICIndex: i, Anchor: a, NegEDB: &na})
		}
	}
	return out, nil
}

// anchorFor finds a positive atom of the ic containing all the given
// variables.
func anchorFor(ic ast.IC, vars []string) (ast.Atom, bool) {
	for _, a := range ic.Pos {
		all := true
		for _, v := range vars {
			if !a.HasVar(v) {
				all = false
				break
			}
		}
		if all {
			return a, true
		}
	}
	return ast.Atom{}, false
}

// RewriteLocal performs the Section 4.2 program rewriting: repeatedly,
// for every pair (a, l) and rule r with an EDB atom a' such that a
// homomorphism h maps a to a', if neither h(l) nor ¬h(l) appears in
// the body of r, r is replaced by two copies — one extended with h(l)
// and one with ¬h(l). (For an order atom, ¬h(l) is the complementary
// order atom; for an EDB atom, the two copies carry the atom
// positively and under negation.) Rules whose order atoms become
// unsatisfiable are dropped.
//
// The returned pairs feed the modified adornment computation of the
// query-tree algorithm.
func RewriteLocal(p *ast.Program, ics []ast.IC) (*ast.Program, []LocalPair, error) {
	pairs, err := LocalPairs(ics)
	if err != nil {
		return nil, nil, err
	}
	idb := p.IDB()
	work := make([]ast.Rule, len(p.Rules))
	copy(work, p.Rules)
	var done []ast.Rule

	const maxSteps = 100000 // defensive bound; the rewriting terminates
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > maxSteps {
			return nil, nil, fmt.Errorf("rewrite: local-atom rewriting exceeded %d steps", maxSteps)
		}
		r := work[0]
		work = work[1:]
		split := false
		for _, lp := range pairs {
			r1, r2, didSplit := splitOn(r, lp, idb)
			if didSplit {
				// Re-normalize both branches; unsatisfiable ones vanish.
				if nr, ok := NormalizeRule(r1); ok {
					work = append(work, nr)
				}
				if nr, ok := NormalizeRule(r2); ok {
					work = append(work, nr)
				}
				split = true
				break
			}
		}
		if !split {
			done = append(done, r)
		}
	}
	return &ast.Program{Query: p.Query, Rules: done}, pairs, nil
}

// splitOn looks for an EDB atom of r matching the pair's anchor whose
// transferred local literal is undetermined in r, and returns the two
// case-split copies.
func splitOn(r ast.Rule, lp LocalPair, idb map[string]bool) (ast.Rule, ast.Rule, bool) {
	// Rename the anchor (and local atom) apart from the rule.
	var fr ast.Freshener
	ren := fr.Next()
	anchor := ast.RenameAtom(lp.Anchor, ren)
	var lOrder *ast.Cmp
	var lNeg *ast.Atom
	if lp.OrderAtom != nil {
		c := ast.RenameCmp(*lp.OrderAtom, ren)
		lOrder = &c
	} else {
		a := ast.RenameAtom(*lp.NegEDB, ren)
		lNeg = &a
	}

	set := order.NewSet(r.Cmp...)
	for _, aPrime := range r.Pos {
		if idb[aPrime.Pred] {
			continue
		}
		var hit bool
		var ruleA, ruleB ast.Rule
		unify.Homomorphisms([]ast.Atom{anchor}, []ast.Atom{aPrime}, func(h unify.Subst) bool {
			if lOrder != nil {
				hl := h.ApplyCmp(*lOrder)
				if !groundedInRule(hl.Vars(nil), r) {
					return true // mapping leaves variables free; skip
				}
				if set.Implies(hl) || set.Implies(hl.Negate()) {
					return true // already determined
				}
				ruleA = r.Clone()
				ruleA.Cmp = append(ruleA.Cmp, hl)
				ruleB = r.Clone()
				ruleB.Cmp = append(ruleB.Cmp, hl.Negate())
				hit = true
				return false
			}
			hl := h.ApplyAtom(*lNeg)
			if !groundedInRule(hl.Vars(nil), r) {
				return true
			}
			if atomIn(hl, r.Pos) || atomIn(hl, r.Neg) {
				return true // already determined
			}
			ruleA = r.Clone()
			ruleA.Pos = append(ruleA.Pos, hl)
			ruleB = r.Clone()
			ruleB.Neg = append(ruleB.Neg, hl)
			hit = true
			return false
		})
		if hit {
			return ruleA, ruleB, true
		}
	}
	return ast.Rule{}, ast.Rule{}, false
}

func groundedInRule(vars []string, r ast.Rule) bool {
	rv := map[string]bool{}
	for _, v := range r.Vars() {
		rv[v] = true
	}
	for _, v := range vars {
		if !rv[v] {
			return false
		}
	}
	return true
}

func atomIn(a ast.Atom, as []ast.Atom) bool {
	for _, b := range as {
		if a.Equal(b) {
			return true
		}
	}
	return false
}
