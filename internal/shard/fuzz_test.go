package shard

import "testing"

// FuzzPartition feeds arbitrary keys and shard counts through both
// partitioners and checks the load-bearing invariants: results are in
// range, pure (same inputs → same shard), agree with a fresh Parse of
// the same name, and Place is insensitive to peer order.
func FuzzPartition(f *testing.F) {
	f.Add("", 0)
	f.Add("n:3", 4)
	f.Add("s:alice", 2)
	f.Add("dataset-β", 256)
	f.Add("\x00\xff", 7)
	f.Fuzz(func(t *testing.T, key string, n int) {
		if n < 0 {
			n = -n
		}
		n %= MaxShards + 2
		for _, name := range []string{"modulo", "rendezvous"} {
			p, err := Parse(name)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Shard(key, n)
			if n < 2 {
				if got != 0 {
					t.Fatalf("%s.Shard(%q, %d) = %d, want 0", name, key, n, got)
				}
			} else if got < 0 || got >= n {
				t.Fatalf("%s.Shard(%q, %d) = %d out of range", name, key, n, got)
			}
			if again := p.Shard(key, n); again != got {
				t.Fatalf("%s.Shard(%q, %d) not deterministic: %d then %d", name, key, n, got, again)
			}
		}
		peers := []string{"http://a:1", "http://b:1", "http://c:1"}
		owner := Place(key, peers)
		if got := Place(key, []string{peers[2], peers[0], peers[1]}); got != owner {
			t.Fatalf("Place(%q) order-dependent: %q vs %q", key, owner, got)
		}
	})
}
