package statsequal

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseFiles(t *testing.T, srcs ...string) []*ast.File {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, "src.go", src, 0)
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		files = append(files, f)
	}
	return files
}

const cleanSrc = `package eval

type Stats struct {
	Iterations int
	Derived    int64
	PlanNanos  int64
	Applied    bool
}

var statsEqualExcluded = map[string]bool{
	"PlanNanos": true,
	"Applied":   true,
}

func (s *Stats) Equal(o *Stats) bool {
	return s.Iterations == o.Iterations && s.Derived == o.Derived
}
`

func TestCleanContract(t *testing.T) {
	if fs := Check(parseFiles(t, cleanSrc)); len(fs) != 0 {
		t.Fatalf("clean contract: want no findings, got %v", fs)
	}
}

func TestUncomparedUnexcludedField(t *testing.T) {
	src := strings.Replace(cleanSrc, "Applied    bool", "Applied bool\n\tForgotten int64", 1)
	fs := Check(parseFiles(t, src))
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "Forgotten") ||
		!strings.Contains(fs[0].Message, "neither compared") {
		t.Fatalf("want one finding about Forgotten, got %v", fs)
	}
}

func TestStaleExclusion(t *testing.T) {
	src := strings.Replace(cleanSrc, `"Applied":   true,`, `"Applied": true,
	"Removed": true,`, 1)
	fs := Check(parseFiles(t, src))
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "Removed") ||
		!strings.Contains(fs[0].Message, "not a field") {
		t.Fatalf("want one finding about stale Removed, got %v", fs)
	}
}

func TestDoubleAccountedField(t *testing.T) {
	src := strings.Replace(cleanSrc,
		"s.Iterations == o.Iterations && s.Derived == o.Derived",
		"s.Iterations == o.Iterations && s.Derived == o.Derived && s.Applied == o.Applied", 1)
	fs := Check(parseFiles(t, src))
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "Applied") ||
		!strings.Contains(fs[0].Message, "both compared") {
		t.Fatalf("want one finding about double-accounted Applied, got %v", fs)
	}
}

func TestRangeCountsAsCompared(t *testing.T) {
	src := strings.Replace(cleanSrc, "Applied    bool", "Applied bool\n\tDeltas []int", 1)
	src = strings.Replace(src,
		"return s.Iterations == o.Iterations && s.Derived == o.Derived",
		`if len(s.Deltas) != len(o.Deltas) {
		return false
	}
	return s.Iterations == o.Iterations && s.Derived == o.Derived`, 1)
	if fs := Check(parseFiles(t, src)); len(fs) != 0 {
		t.Fatalf("field read via len() must count as compared, got %v", fs)
	}
}

// Packages that merely define a type named Stats (no Equal method in
// the comparison-contract shape) are out of scope.
func TestUnrelatedStatsTypeIgnored(t *testing.T) {
	src := `package other

type Stats struct {
	Hits   int
	Misses int
}
`
	if fs := Check(parseFiles(t, src)); fs != nil {
		t.Fatalf("no Equal method: want nil findings, got %v", fs)
	}
}

// The real contract lives in internal/eval; the analyzer must pass on
// it. (CI also runs the vettool against the package; this is the fast
// in-process version of the same assertion.)
func TestEvalPackageClean(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../../eval", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["eval"]
	if !ok {
		t.Fatal("package eval not found")
	}
	var files []*ast.File
	for _, f := range pkg.Files {
		files = append(files, f)
	}
	if fs := Check(files); len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("%s: %s", fset.Position(f.Pos), f.Message)
		}
	}
}
