#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the sqod daemon.
#
# Boots sqod on a private port, registers a dataset, runs the same
# optimized query twice (the second must hit the rewrite cache),
# scrapes /metrics for the cache counters, then sends SIGTERM and
# asserts the daemon drains and exits 0. The first pass runs without
# -data-dir (pure in-memory, exactly as before durability existed);
# a second pass starts a durable daemon, populates it, stops it, and
# restarts on the same directory asserting datasets, facts, and live
# views all survive. `make serve-smoke` and the CI serve-smoke job
# both run exactly this script.
set -euo pipefail

ADDR="${SQOD_ADDR:-127.0.0.1:18351}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'kill "$SQOD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; sed 's/^/  sqod: /' "$WORK/sqod.log" >&2 || true; exit 1; }

echo "serve-smoke: building sqod"
go build -o "$WORK/sqod" ./cmd/sqod

echo "serve-smoke: starting sqod on $ADDR"
"$WORK/sqod" -addr "$ADDR" -drain 10s >"$WORK/sqod.log" 2>&1 &
SQOD_PID=$!

for i in $(seq 1 100); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	kill -0 "$SQOD_PID" 2>/dev/null || fail "sqod exited during startup"
	[ "$i" -eq 100 ] && fail "sqod did not become healthy within 10s"
	sleep 0.1
done

echo "serve-smoke: registering dataset"
curl -fsS -X PUT "$BASE/v1/datasets/quickstart" --data-binary '
	step(1, 2). step(2, 3). step(3, 4). step(2, 5).
	startPoint(1). startPoint(2). endPoint(4). endPoint(5).
' >"$WORK/register.json" || fail "dataset registration failed"
jq -e '.facts == 8' "$WORK/register.json" >/dev/null || fail "expected 8 facts, got: $(cat "$WORK/register.json")"

QUERY='{
  "program": "path(X, Y) :- step(X, Y). path(X, Y) :- step(X, Z), path(Z, Y). goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y). ?- goodPath.",
  "ics": ":- startPoint(X), endPoint(Y), Y <= X.",
  "dataset": "quickstart"
}'

echo "serve-smoke: first optimized query (cache miss)"
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$QUERY" >"$WORK/q1.json" || fail "first query failed"
jq -e '.cache_hit == false and .optimized == true and .answer_count == 4' "$WORK/q1.json" >/dev/null \
	|| fail "unexpected first response: $(cat "$WORK/q1.json")"

echo "serve-smoke: second identical query (cache hit)"
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$QUERY" >"$WORK/q2.json" || fail "second query failed"
jq -e '.cache_hit == true' "$WORK/q2.json" >/dev/null || fail "second query missed the cache: $(cat "$WORK/q2.json")"
[ "$(jq -cS .answers "$WORK/q1.json")" = "$(jq -cS .answers "$WORK/q2.json")" ] || fail "cached answers differ from fresh answers"

echo "serve-smoke: materialized view over a mutable dataset"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/views/paths" -H 'Content-Type: application/json' \
	-d '{"program": "path(X, Y) :- step(X, Y). path(X, Y) :- step(X, Z), path(Z, Y). ?- path.", "optimize": false}' >"$WORK/v1.json" \
	|| fail "view create failed"
jq -e '.answer_count == 8' "$WORK/v1.json" >/dev/null || fail "unexpected view: $(cat "$WORK/v1.json")"

echo "serve-smoke: inserting a fact maintains the view incrementally"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/facts" --data-binary 'step(5, 6).' >"$WORK/u1.json" || fail "fact insert failed"
jq -e '.facts_added == 1 and .views[0].answers_added == 3' "$WORK/u1.json" >/dev/null || fail "unexpected update: $(cat "$WORK/u1.json")"
curl -fsS "$BASE/v1/datasets/quickstart/views/paths" >"$WORK/v2.json" || fail "view get failed"
jq -e '.answer_count == 11 and .stats.applies == 1 and .stats.full_rebuilds == 0' "$WORK/v2.json" >/dev/null \
	|| fail "view not maintained incrementally: $(cat "$WORK/v2.json")"

echo "serve-smoke: retracting the fact restores the view"
curl -fsS -X DELETE "$BASE/v1/datasets/quickstart/facts" --data-binary 'step(5, 6).' >/dev/null || fail "fact retract failed"
curl -fsS "$BASE/v1/datasets/quickstart/views/paths" >"$WORK/v3.json" || fail "view get failed"
jq -e '.answer_count == 8' "$WORK/v3.json" >/dev/null || fail "view not restored: $(cat "$WORK/v3.json")"
[ "$(jq -cS .answers "$WORK/v1.json")" = "$(jq -cS .answers "$WORK/v3.json")" ] || fail "view answers differ after add+retract round trip"

echo "serve-smoke: goal-directed point query (magic-sets rewrite)"
POINT='{
  "program": "path(X, Y) :- step(X, Y). path(X, Y) :- step(X, Z), path(Z, Y). ?- path(1, Y).",
  "dataset": "quickstart"
}'
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$POINT" >"$WORK/m1.json" || fail "magic point query failed"
jq -e '.magic == true and .answer_count == 4' "$WORK/m1.json" >/dev/null \
	|| fail "point query did not evaluate via magic: $(cat "$WORK/m1.json")"

echo "serve-smoke: same point query with magic off — answers must match"
POINT_OFF='{
  "program": "path(X, Y) :- step(X, Y). path(X, Y) :- step(X, Z), path(Z, Y). ?- path(1, Y).",
  "dataset": "quickstart",
  "magic": "off"
}'
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$POINT_OFF" >"$WORK/m2.json" || fail "magic=off query failed"
jq -e '.magic == false' "$WORK/m2.json" >/dev/null || fail "magic=off still reports magic: $(cat "$WORK/m2.json")"
[ "$(jq -cS '.answers | sort' "$WORK/m1.json")" = "$(jq -cS '.answers | sort' "$WORK/m2.json")" ] \
	|| fail "magic changed the point-query answers"

echo "serve-smoke: bounded recursive query (recursion elimination)"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/facts" --data-binary '
	likes(1, 10). likes(2, 20). trendy(1). trendy(2).
' >"$WORK/e0.json" || fail "likes/trendy insert failed"
jq -e '.facts_added == 4' "$WORK/e0.json" >/dev/null || fail "unexpected insert: $(cat "$WORK/e0.json")"
BOUNDED='{
  "program": "buys(X, Y) :- likes(X, Y). buys(X, Y) :- trendy(X), buys(Z, Y). ?- buys.",
  "dataset": "quickstart"
}'
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$BOUNDED" >"$WORK/e1.json" || fail "bounded query failed"
jq -e '.elim == true and .answer_count == 4' "$WORK/e1.json" >/dev/null \
	|| fail "bounded query did not evaluate via elim: $(cat "$WORK/e1.json")"

echo "serve-smoke: same bounded query with elim off — answers must match"
BOUNDED_OFF='{
  "program": "buys(X, Y) :- likes(X, Y). buys(X, Y) :- trendy(X), buys(Z, Y). ?- buys.",
  "dataset": "quickstart",
  "elim": "off"
}'
curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' -d "$BOUNDED_OFF" >"$WORK/e2.json" || fail "elim=off query failed"
jq -e '.elim == false' "$WORK/e2.json" >/dev/null || fail "elim=off still reports elim: $(cat "$WORK/e2.json")"
[ "$(jq -cS '.answers | sort' "$WORK/e1.json")" = "$(jq -cS '.answers | sort' "$WORK/e2.json")" ] \
	|| fail "elim changed the bounded-query answers"

echo "serve-smoke: linting a program with a known-dead rule"
LINT='{
  "program": "p(X) :- a(X, Y), b(Y, X). q(X) :- p(X). r(X) :- c(X, X). r(X) :- p(X), c(X, X). ?- r.",
  "ics": ":- a(X, Y), b(Y, Z)."
}'
curl -fsS -X POST "$BASE/v1/lint" -H 'Content-Type: application/json' -d "$LINT" >"$WORK/lint.json" || fail "lint request failed"
jq -e '.errors == 1' "$WORK/lint.json" >/dev/null || fail "expected 1 lint error: $(cat "$WORK/lint.json")"
jq -e '[.findings[] | select(.id == "unsat-body")] | length == 1' "$WORK/lint.json" >/dev/null \
	|| fail "unsat-body finding missing: $(cat "$WORK/lint.json")"
jq -e '[.findings[] | select(.id == "dead-rule")] | length == 2' "$WORK/lint.json" >/dev/null \
	|| fail "dead-rule findings missing: $(cat "$WORK/lint.json")"

echo "serve-smoke: scraping /metrics"
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt" || fail "metrics scrape failed"
grep -Eq '^sqod_cache_hits_total [1-9]' "$WORK/metrics.txt" || fail "sqod_cache_hits_total not positive"
grep -Eq '^sqod_cache_misses_total [1-9]' "$WORK/metrics.txt" || fail "sqod_cache_misses_total not positive"
grep -q '^sqod_requests_total' "$WORK/metrics.txt" || fail "sqod_requests_total missing"
grep -Eq '^sqod_lint_runs_total [1-9]' "$WORK/metrics.txt" || fail "sqod_lint_runs_total not positive"
grep -Eq '^sqod_lint_findings_total [1-9]' "$WORK/metrics.txt" || fail "sqod_lint_findings_total not positive"
grep -Eq '^sqod_eval_magic_total [1-9]' "$WORK/metrics.txt" || fail "sqod_eval_magic_total not positive"
grep -Eq '^sqod_eval_elim_total [1-9]' "$WORK/metrics.txt" || fail "sqod_eval_elim_total not positive"

echo "serve-smoke: SIGTERM — expecting a clean drain"
kill -TERM "$SQOD_PID"
STATUS=0
wait "$SQOD_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "sqod exited $STATUS after SIGTERM (want 0)"
grep -q "clean shutdown" "$WORK/sqod.log" || fail "no clean-shutdown line in the log"

# --- durability: stop/restart cycle on a -data-dir --------------------

DATA="$WORK/data"

echo "serve-smoke: starting durable sqod (-data-dir)"
"$WORK/sqod" -addr "$ADDR" -data-dir "$DATA" -drain 10s >"$WORK/sqod.log" 2>&1 &
SQOD_PID=$!
for i in $(seq 1 100); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	kill -0 "$SQOD_PID" 2>/dev/null || fail "durable sqod exited during startup"
	[ "$i" -eq 100 ] && fail "durable sqod did not become healthy within 10s"
	sleep 0.1
done

echo "serve-smoke: populating the durable daemon"
curl -fsS -X PUT "$BASE/v1/datasets/quickstart" --data-binary '
	step(1, 2). step(2, 3). step(3, 4). step(2, 5).
	startPoint(1). startPoint(2). endPoint(4). endPoint(5).
' >/dev/null || fail "durable dataset registration failed"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/views/paths" -H 'Content-Type: application/json' \
	-d '{"program": "path(X, Y) :- step(X, Y). path(X, Y) :- step(X, Z), path(Z, Y). ?- path.", "optimize": false}' >/dev/null \
	|| fail "durable view create failed"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/facts" --data-binary 'step(5, 6).' >/dev/null || fail "durable fact insert failed"
curl -fsS "$BASE/v1/datasets/quickstart/views/paths" >"$WORK/dv1.json" || fail "durable view get failed"
jq -e '.answer_count == 11' "$WORK/dv1.json" >/dev/null || fail "unexpected durable view: $(cat "$WORK/dv1.json")"
curl -fsS "$BASE/metrics" >"$WORK/dmetrics.txt" || fail "durable metrics scrape failed"
grep -Eq '^sqod_wal_appends_total [1-9]' "$WORK/dmetrics.txt" || fail "sqod_wal_appends_total not positive"
grep -Eq '^sqod_wal_bytes_total [1-9]' "$WORK/dmetrics.txt" || fail "sqod_wal_bytes_total not positive"

echo "serve-smoke: stopping the durable daemon (final checkpoint)"
kill -TERM "$SQOD_PID"
STATUS=0
wait "$SQOD_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "durable sqod exited $STATUS after SIGTERM (want 0)"
grep -q "final checkpoint written" "$WORK/sqod.log" || fail "no final-checkpoint line in the log"

echo "serve-smoke: restarting on the same -data-dir (-async-restore)"
# With -async-restore the daemon answers /healthz immediately while the
# WAL replays in the background; /readyz (what a cluster coordinator
# probes) stays 503 until recovery completes and gates the data plane.
"$WORK/sqod" -addr "$ADDR" -data-dir "$DATA" -async-restore -drain 10s >"$WORK/sqod.log" 2>&1 &
SQOD_PID=$!
for i in $(seq 1 100); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	kill -0 "$SQOD_PID" 2>/dev/null || fail "restarted sqod exited during startup"
	[ "$i" -eq 100 ] && fail "restarted sqod did not become healthy within 10s"
	sleep 0.1
done
for i in $(seq 1 100); do
	if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then break; fi
	kill -0 "$SQOD_PID" 2>/dev/null || fail "restarted sqod exited during recovery"
	[ "$i" -eq 100 ] && fail "restarted sqod never became ready within 10s"
	sleep 0.1
done

echo "serve-smoke: asserting datasets, facts, and views survived the restart"
curl -fsS "$BASE/v1/datasets" >"$WORK/dlist.json" || fail "dataset list failed after restart"
jq -e 'length == 1 and .[0].name == "quickstart" and .[0].facts == 9 and .[0].views == ["paths"]' "$WORK/dlist.json" >/dev/null \
	|| fail "recovered inventory wrong: $(cat "$WORK/dlist.json")"
curl -fsS "$BASE/v1/datasets/quickstart/views/paths" >"$WORK/dv2.json" || fail "view get failed after restart"
jq -e '.answer_count == 11' "$WORK/dv2.json" >/dev/null || fail "recovered view wrong: $(cat "$WORK/dv2.json")"
[ "$(jq -cS .answers "$WORK/dv1.json")" = "$(jq -cS .answers "$WORK/dv2.json")" ] || fail "view answers differ across restart"
grep -Eq '^sqod_recovery_seconds [0-9]' <(curl -fsS "$BASE/metrics") || fail "sqod_recovery_seconds missing after restart"

echo "serve-smoke: view still maintainable after recovery"
curl -fsS -X POST "$BASE/v1/datasets/quickstart/facts" --data-binary 'step(6, 7).' >"$WORK/du1.json" || fail "post-recovery insert failed"
jq -e '.views[0].answers_added >= 1' "$WORK/du1.json" >/dev/null || fail "recovered view not maintained: $(cat "$WORK/du1.json")"

echo "serve-smoke: final SIGTERM — expecting a clean drain"
kill -TERM "$SQOD_PID"
STATUS=0
wait "$SQOD_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "restarted sqod exited $STATUS after SIGTERM (want 0)"
grep -q "clean shutdown" "$WORK/sqod.log" || fail "no clean-shutdown line in the restart log"

echo "serve-smoke: PASS"
