package qtree

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parser"
)

func TestOptimizeCtxCancelled(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeCtx(ctx, p, ics, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptimizeCtxLiveMatchesOptimize(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- a(X, Y).
		p(X, Y) :- b(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Z), p(Z, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	plain, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := OptimizeCtx(context.Background(), p, ics, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Program.String() != ctxed.Program.String() {
		t.Fatalf("programs diverged:\n%s\nvs\n%s", plain.Program, ctxed.Program)
	}
	if plain.Tree.Print() != ctxed.Tree.Print() {
		t.Fatal("query forests diverged")
	}
}
