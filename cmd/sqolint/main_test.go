package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Exit-code parity: for the same input, the -json renderer must exit
// exactly like the text renderer — 1 when there are Error-severity
// findings, 0 when there are only warnings and infos. A regression
// here silently breaks CI pipelines that lint with -json.
func TestExitCodeParityTextVsJSON(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{
			// deadcode.dl's shape: the constraint makes p's body
			// unsatisfiable, an Error.
			name: "errors",
			src: `p(X) :- a(X, Y), b(Y, X).
q(X) :- p(X).
?- q.
:- a(X, Y), b(Y, Z).`,
			want: 1,
		},
		{
			// A bounded recursive predicate: an L7 Warning, no Errors.
			name: "warnings only",
			src: `buys(X, Y) :- likes(X, Y).
buys(X, Y) :- trendy(X), buys(Z, Y).
?- buys.`,
			want: 0,
		},
		{
			// Unbounded recursion: an L7 Info, nothing else.
			name: "infos only",
			src: `tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc.`,
			want: 0,
		},
	}
	for _, tc := range cases {
		var textOut, jsonOut, stderr bytes.Buffer
		textCode := run(nil, strings.NewReader(tc.src), &textOut, &stderr)
		jsonCode := run([]string{"-json"}, strings.NewReader(tc.src), &jsonOut, &stderr)
		if textCode != tc.want {
			t.Errorf("%s: text exit = %d, want %d\n%s", tc.name, textCode, tc.want, textOut.String())
		}
		if jsonCode != textCode {
			t.Errorf("%s: json exit = %d, text exit = %d; renderers must agree", tc.name, jsonCode, textCode)
		}
		var reports []fileReport
		if err := json.Unmarshal(jsonOut.Bytes(), &reports); err != nil {
			t.Errorf("%s: -json output is not valid JSON: %v", tc.name, err)
		}
	}
}

// Parse failures exit 2 under both renderers.
func TestExitCodeParseFailure(t *testing.T) {
	const src = `p(X :- broken`
	for _, args := range [][]string{nil, {"-json"}} {
		var out, stderr bytes.Buffer
		if code := run(args, strings.NewReader(src), &out, &stderr); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}
