// Package workload generates the synthetic extensional databases used
// by the examples, tests, and the experiment harness: the step-graphs
// with start/end points that motivate Example 3.1 and the Section 3
// threshold example, the two-flavour (a/b) edge graphs of the Figure 1
// running example, and random graphs for differential testing. All
// generators are deterministic given their parameters.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/eval"
)

func num(i int) ast.Term { return ast.N(float64(i)) }

// Chain returns step(i, i+1) facts for i in [from, from+n).
func Chain(from, n int) []ast.Atom {
	out := make([]ast.Atom, 0, n)
	for i := from; i < from+n; i++ {
		out = append(out, ast.NewAtom("step", num(i), num(i+1)))
	}
	return out
}

// GoodPath builds the Example 3.1 workload: a low chain of lowN steps
// whose nodes all lie strictly below zero (and hence below any
// positive threshold), a high chain of highN steps starting at
// highStart, one start point and one end point on the high chain.
// Evaluating goodPath on it answers exactly one tuple, but an
// unoptimized program wastes work on the low chain and on backwards
// start/end combinations.
func GoodPath(lowN, highStart, highN int) []ast.Atom {
	facts := Chain(-lowN-1, lowN)
	facts = append(facts, Chain(highStart, highN)...)
	facts = append(facts,
		ast.NewAtom("startPoint", num(highStart)),
		ast.NewAtom("endPoint", num(highStart+highN)),
	)
	return facts
}

// GoodPathMulti is GoodPath with several start/end points spread over
// the high chain (selectivity sweep support): starts are placed at the
// beginning of the high chain, ends at its tail.
func GoodPathMulti(lowN, highStart, highN, points int) []ast.Atom {
	facts := Chain(-lowN-1, lowN)
	facts = append(facts, Chain(highStart, highN)...)
	for i := 0; i < points; i++ {
		facts = append(facts,
			ast.NewAtom("startPoint", num(highStart+i)),
			ast.NewAtom("endPoint", num(highStart+highN-i)),
		)
	}
	return facts
}

// ABChains builds the Figure 1 workload: a chain of bN b-edges
// followed by a chain of aN a-edges (so the database satisfies the
// constraint "no b after a"), sharing the junction node.
func ABChains(bN, aN int) []ast.Atom {
	var out []ast.Atom
	for i := 0; i < bN; i++ {
		out = append(out, ast.NewAtom("b", num(i), num(i+1)))
	}
	for i := bN; i < bN+aN; i++ {
		out = append(out, ast.NewAtom("a", num(i), num(i+1)))
	}
	return out
}

// ABComb builds a denser Figure 1 workload: width parallel b-chains of
// length bLen feeding into width parallel a-chains of length aLen via
// a shared junction — many b-then-a paths, no a-then-b ones.
func ABComb(width, bLen, aLen int) []ast.Atom {
	var out []ast.Atom
	id := 1
	junction := 0
	for w := 0; w < width; w++ {
		prev := id
		id++
		for i := 1; i < bLen; i++ {
			out = append(out, ast.NewAtom("b", num(prev), num(id)))
			prev = id
			id++
		}
		out = append(out, ast.NewAtom("b", num(prev), num(junction)))
	}
	for w := 0; w < width; w++ {
		prev := junction
		for i := 0; i < aLen; i++ {
			out = append(out, ast.NewAtom("a", num(prev), num(id)))
			prev = id
			id++
		}
	}
	return out
}

// RandomGraph returns m random edge(x, y) facts over n nodes.
func RandomGraph(n, m int, seed int64) []ast.Atom {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ast.Atom, 0, m)
	for i := 0; i < m; i++ {
		out = append(out, ast.NewAtom("edge",
			num(rng.Intn(n)), num(rng.Intn(n))))
	}
	return out
}

// MonotoneRandomGraph returns m random strictly-increasing step(x, y)
// facts over n nodes (satisfying :- step(X, Y), X >= Y).
func MonotoneRandomGraph(n, m int, seed int64) []ast.Atom {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ast.Atom, 0, m)
	for len(out) < m {
		x, y := rng.Intn(n), rng.Intn(n)
		if x < y {
			out = append(out, ast.NewAtom("step", num(x), num(y)))
		}
	}
	return out
}

// RandomProgram generates a random layered datalog program in source
// syntax, integrity constraints, and a database satisfying them —
// fodder for differential testing of the whole pipeline (parse →
// adorn/optimize → evaluate) and for the incremental-maintenance
// experiments. The program stacks 2–4 derived layers (joins, unions,
// comparison filters) over a monotone step graph, optionally closes
// the top layer transitively, and tops it with a query rule; every
// rule is range-restricted by construction. Deterministic per seed.
func RandomProgram(seed int64) (progSrc, icsSrc string, facts []ast.Atom) {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(9)
	m := 2*n + rng.Intn(n)
	facts = MonotoneRandomGraph(n, m, rng.Int63())
	for i := 0; i < n; i += 1 + rng.Intn(3) {
		facts = append(facts, ast.NewAtom("mark", num(i)))
	}

	var b strings.Builder
	prev := []string{"step"}
	layers := 2 + rng.Intn(3)
	for i := 1; i <= layers; i++ {
		name := fmt.Sprintf("t%d", i)
		pa := prev[rng.Intn(len(prev))]
		pb := prev[rng.Intn(len(prev))]
		switch rng.Intn(3) {
		case 0: // composition plus a copy, so the layer stays populated
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Z), %s(Z, Y).\n", name, pa, pb)
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Y).\n", name, pa)
		case 1: // two comparison filters
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Y), X < %d.\n", name, pa, 1+rng.Intn(n))
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Y), Y >= %d.\n", name, pb, rng.Intn(n))
		default: // union
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Y).\n", name, pa)
			fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Y).\n", name, pb)
		}
		prev = append(prev, name)
	}
	base := prev[len(prev)-1]
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "reach(X, Y) :- %s(X, Y).\n", base)
		fmt.Fprintf(&b, "reach(X, Y) :- %s(X, Z), reach(Z, Y).\n", base)
		base = "reach"
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "q(X, Y) :- mark(X), %s(X, Y).\n", base)
	case 1:
		fmt.Fprintf(&b, "q(X, Y) :- %s(X, Y), Y > %d.\n", base, rng.Intn(n))
	default:
		fmt.Fprintf(&b, "q(X, Y) :- mark(X), %s(X, Y), X < Y.\n", base)
	}
	b.WriteString("?- q.\n")

	// Both constraints hold on the generated facts by construction: the
	// step graph is strictly increasing and marks are non-negative.
	icsSrc = ":- step(X, Y), X >= Y.\n:- mark(X), X < 0.\n"
	return b.String(), icsSrc, facts
}

// DB materializes facts into a fresh evaluation database.
func DB(facts []ast.Atom) *eval.DB {
	db := eval.NewDB()
	db.AddFacts(facts)
	return db
}

// BiChainPoints builds the Example 3.1 stress workload: a
// bidirectional chain over n nodes (steps in both directions, so the
// path closure is the full n x n relation), start points on the
// second quarter of the chain and end points on the last quarter (so
// the database satisfies ":- startPoint(X), endPoint(Y), Y <= X").
// Backward paths from the start points are pure waste that the
// residue Y > X lets the optimizer skip.
func BiChainPoints(n int) []ast.Atom {
	var out []ast.Atom
	for i := 1; i < n; i++ {
		out = append(out,
			ast.NewAtom("step", num(i), num(i+1)),
			ast.NewAtom("step", num(i+1), num(i)),
		)
	}
	for i := n / 4; i < n/2; i++ {
		out = append(out, ast.NewAtom("startPoint", num(i)))
	}
	for j := 3*n/4 + 1; j <= n; j++ {
		out = append(out, ast.NewAtom("endPoint", num(j)))
	}
	return out
}

// StarPoints builds the workload where Example 3.1's residue pays off
// directly: k start points, each with m downward step edges (to nodes
// below every start point) plus one upward edge to its own end point.
// The database satisfies ":- startPoint(X), endPoint(Y), Y <= X", and
// the Y > X residue lets the optimizer skip the m wasted endPoint
// probes per start.
func StarPoints(k, m int) []ast.Atom {
	var out []ast.Atom
	// Low nodes occupy 1..k*m, starts k*m+1..k*m+k, ends above that.
	for i := 0; i < k; i++ {
		start := k*m + 1 + i
		end := k*m + k + 1 + i
		out = append(out, ast.NewAtom("startPoint", num(start)))
		out = append(out, ast.NewAtom("endPoint", num(end)))
		out = append(out, ast.NewAtom("step", num(start), num(end)))
		for j := 0; j < m; j++ {
			out = append(out, ast.NewAtom("step", num(start), num(i*m+j+1)))
		}
	}
	return out
}

// StarPaths is the Example 3.1 workload with the path relation
// materialized as EDB facts, isolating the rule the example rewrites:
// k start points each with m "backward" paths (to nodes below every
// start point) and one forward path to its own end point. The
// constraint ":- startPoint(X), endPoint(Y), Y <= X" holds, and the
// residue Y > X skips the m wasted endPoint joins per start.
func StarPaths(k, m int) []ast.Atom {
	var out []ast.Atom
	for i := 0; i < k; i++ {
		start := k*m + 1 + i
		end := k*m + k + 1 + i
		out = append(out, ast.NewAtom("startPoint", num(start)))
		out = append(out, ast.NewAtom("endPoint", num(end)))
		out = append(out, ast.NewAtom("path", num(start), num(end)))
		for j := 0; j < m; j++ {
			out = append(out, ast.NewAtom("path", num(start), num(i*m+j+1)))
		}
	}
	return out
}
