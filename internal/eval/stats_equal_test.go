package eval

import (
	"reflect"
	"testing"
)

// TestStatsEqualPartition proves, by reflection, that every Stats
// field is either compared by Equal or deliberately listed in
// statsEqualExcluded — and that the exclusion set names no stale
// fields. Perturbing a compared field must break Equal; perturbing an
// excluded one must not. The statsequal vet analyzer enforces the
// same partition syntactically at build time; this test enforces it
// behaviorally, so a field added to the struct but forgotten in both
// places fails here first.
func TestStatsEqualPartition(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	fields := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		fields[typ.Field(i).Name] = true
	}
	for name := range statsEqualExcluded {
		if !fields[name] {
			t.Errorf("statsEqualExcluded names %q, which is not a Stats field", name)
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		var a, b Stats
		bv := reflect.ValueOf(&b).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Bool:
			bv.SetBool(true)
		case reflect.Int, reflect.Int64:
			bv.SetInt(1)
		case reflect.Slice:
			bv.Set(reflect.MakeSlice(f.Type, 1, 1))
		default:
			t.Fatalf("field %s has kind %s; teach this test to perturb it", f.Name, f.Type.Kind())
		}
		excluded := statsEqualExcluded[f.Name]
		if got := a.Equal(&b); got != excluded {
			if excluded {
				t.Errorf("excluded field %s still breaks Equal; drop it from statsEqualExcluded or stop comparing it", f.Name)
			} else {
				t.Errorf("field %s is neither compared by Equal nor listed in statsEqualExcluded", f.Name)
			}
		}
	}
}
