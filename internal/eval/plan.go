package eval

// Compiled rule plans. A plan is built once per (rule, delta-occurrence)
// pair before the fixpoint starts and fixes everything the legacy
// engine re-derived per candidate tuple: the join order, each subgoal's
// bound argument positions (with constants pre-interned), variable →
// binding-slot assignments, the earliest join depth at which every
// comparison and negation filter is ground, and the head/body templates
// used to emit facts and provenance.
//
// The join order is chosen greedily: after the delta occurrence (which
// must stay first — it is the smallest relation and the partitioned
// one), the next subgoal is the one with the most argument positions
// that are constants or already-bound variables, tie-broken by the
// lowest subgoal index. The score depends only on the rule's structure,
// never on data or worker count, so Stats stay deterministic.
//
// Slot bindings need no save/restore on backtrack: the binding
// progression along the join order is static, so a slot is only ever
// read at depths where the plan guarantees it was bound — a stale value
// left in a slot by an abandoned branch is never observable.

import "repro/internal/ast"

// planKey identifies a compiled plan: rule index plus the subgoal index
// restricted to the previous delta (-1 for none).
type planKey struct {
	ruleIdx int
	occ     int
}

// relSrc says which snapshot relation a subgoal reads.
type relSrc uint8

const (
	srcEDB relSrc = iota
	srcIDB
	srcDelta // the delta-restricted occurrence
)

// atomTpl is an atom with each argument resolved to either an interned
// constant id or a binding-slot number.
type atomTpl struct {
	pred    string
	isConst []bool
	vals    []uint32 // constant id when isConst, else slot
}

// cmpPlan is a comparison with both sides resolved to an interned
// constant id or a slot.
type cmpPlan struct {
	op             ast.CmpOp
	lConst, rConst bool
	l, r           uint32
}

// subPlan is one join step.
type subPlan struct {
	subIdx int // index into Rule.Pos
	pred   string
	src    relSrc
	// Argument positions bound before this subgoal is probed, and the
	// constant id (boundConst) or slot (otherwise) each must equal.
	boundPos   []int
	boundConst []bool
	boundVal   []uint32
	mask       uint64 // bitmask of boundPos, the index key
	indexable  bool   // all boundPos < 64 (mask representable)
	// Fresh variables this subgoal binds: slot[k] = row[bindPos[k]].
	bindPos  []int
	bindSlot []uint32
	// Later occurrences of a variable first bound earlier in this same
	// atom: row[checkPos[k]] must equal the slot bound by bindPos.
	checkPos  []int
	checkSlot []uint32
	// Filters that first become ground once this subgoal is bound.
	cmps []cmpPlan
	negs []atomTpl
}

// plan is the compiled form of one (rule, occurrence) task.
type plan struct {
	ruleIdx int
	occ     int
	order   []int // join depth → subgoal index
	subs    []subPlan
	nSlots  int
	// Filters of zero-subgoal rules, applied at the finish step (rules
	// with subgoals always ground their filters at some join depth).
	finishCmps []cmpPlan
	finishNegs []atomTpl
	head       atomTpl
	// Templates in rule order for materializing provenance steps.
	posTpls     []atomTpl
	negTpls     []atomTpl
	maxNegArity int
	staticOrder bool // greedy order equals the legacy static order
}

// greedyJoinOrder orders the subgoals of r for a task restricted to
// delta occurrence occ (-1 for none). See the package comment above.
func greedyJoinOrder(r ast.Rule, occ int) []int {
	return greedyJoinOrderBound(r, occ, nil)
}

// greedyJoinOrderBound is greedyJoinOrder with a set of variables known
// to be bound before the first subgoal is probed (head-bound
// derivability plans seed the head's variables this way).
func greedyJoinOrderBound(r ast.Rule, occ int, preBound map[string]bool) []int {
	n := len(r.Pos)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[string]bool{}
	for v := range preBound {
		bound[v] = true
	}
	take := func(i int) {
		order = append(order, i)
		used[i] = true
		for _, t := range r.Pos[i].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	if occ >= 0 && occ < n {
		take(occ)
	}
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range r.Pos[i].Args {
				if t.IsConst() || bound[t.Name] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		take(best)
	}
	return order
}

// compilePlan builds the plan for one (rule, occurrence) task, interning
// every constant the rule mentions.
func compilePlan(in *interner, idbPr map[string]bool, r ast.Rule, ruleIdx, occ int) *plan {
	return compilePlanBound(in, idbPr, r, ruleIdx, occ, false)
}

// compilePlanBound is compilePlan with an optional head-bound mode:
// when headBound is true the head's variables are assigned the lowest
// slots (in order of first occurrence in the head) and treated as bound
// from depth 0. The executor seeds those slots from a candidate head
// row before joining, which turns the plan into a derivability check —
// every subgoal sees the head variables as bound positions, so the join
// only explores instantiations that could derive exactly that row
// (DRed's rederivation step in internal/incr).
func compilePlanBound(in *interner, idbPr map[string]bool, r ast.Rule, ruleIdx, occ int, headBound bool) *plan {
	return compilePlanOrdered(in, idbPr, r, ruleIdx, occ, headBound, nil)
}

// compilePlanOrdered is compilePlanBound with an explicit join order
// (nil falls back to the greedy order). Orders come from the cost
// policy (costJoinOrder); they are permutations of the subgoal indexes
// and, for delta tasks, keep the occurrence at depth 0. Every plan for
// the same (rule, occ) has the same nSlots — slots number the rule's
// variables, not join depths — which is what lets the adaptive
// executor swap plans mid-task without touching its binding buffer.
func compilePlanOrdered(in *interner, idbPr map[string]bool, r ast.Rule, ruleIdx, occ int, headBound bool, order []int) *plan {
	n := len(r.Pos)
	pl := &plan{ruleIdx: ruleIdx, occ: occ}

	slots := map[string]uint32{}
	slotOf := func(name string) uint32 {
		if s, ok := slots[name]; ok {
			return s
		}
		s := uint32(len(slots))
		slots[name] = s
		return s
	}
	bound := map[string]bool{}
	if headBound {
		for _, t := range r.Head.Args {
			if !t.IsConst() {
				slotOf(t.Name)
				bound[t.Name] = true
			}
		}
	}
	if order == nil {
		order = greedyJoinOrderBound(r, occ, bound)
	}
	pl.order = order
	cmpDone := make([]bool, len(r.Cmp))
	negDone := make([]bool, len(r.Neg))
	allBound := func(vars []string) bool {
		for _, v := range vars {
			if !bound[v] {
				return false
			}
		}
		return true
	}

	pl.subs = make([]subPlan, n)
	for d, si := range pl.order {
		sub := r.Pos[si]
		sp := &pl.subs[d]
		sp.subIdx = si
		sp.pred = sub.Pred
		switch {
		case si == occ:
			sp.src = srcDelta
		case idbPr[sub.Pred]:
			sp.src = srcIDB
		default:
			sp.src = srcEDB
		}
		inAtom := map[string]uint32{}
		for j, t := range sub.Args {
			switch {
			case t.IsConst():
				sp.boundPos = append(sp.boundPos, j)
				sp.boundConst = append(sp.boundConst, true)
				sp.boundVal = append(sp.boundVal, in.intern(t))
			case bound[t.Name]:
				sp.boundPos = append(sp.boundPos, j)
				sp.boundConst = append(sp.boundConst, false)
				sp.boundVal = append(sp.boundVal, slotOf(t.Name))
			case hasKey(inAtom, t.Name):
				sp.checkPos = append(sp.checkPos, j)
				sp.checkSlot = append(sp.checkSlot, inAtom[t.Name])
			default:
				s := slotOf(t.Name)
				inAtom[t.Name] = s
				sp.bindPos = append(sp.bindPos, j)
				sp.bindSlot = append(sp.bindSlot, s)
			}
		}
		sp.indexable = true
		for _, p := range sp.boundPos {
			if p >= 64 {
				// Positions past 64 have no bitmask; fall back to a
				// scan (vanishingly rare — arity > 64).
				sp.indexable = false
			}
		}
		if sp.indexable {
			for _, p := range sp.boundPos {
				sp.mask |= 1 << uint(p)
			}
		}
		for name := range inAtom {
			bound[name] = true
		}
		// Attach every filter that just became ground. The legacy engine
		// re-checks all ground filters after every candidate extension;
		// the checks are idempotent (comparison operands are fixed once
		// bound, the EDB is frozen), so checking each filter exactly once
		// at its earliest-ground depth prunes the identical branches and
		// keeps probe counts bit-identical.
		for i, c := range r.Cmp {
			if !cmpDone[i] && allBound(c.Vars(nil)) {
				sp.cmps = append(sp.cmps, compileCmp(in, slotOf, c))
				cmpDone[i] = true
			}
		}
		for i, a := range r.Neg {
			if !negDone[i] && allBound(a.Vars(nil)) {
				sp.negs = append(sp.negs, compileAtomTpl(in, slotOf, a))
				negDone[i] = true
			}
		}
	}
	// Zero-subgoal rules ground their (necessarily variable-free)
	// filters at the finish step, mirroring finishRule.
	for i, c := range r.Cmp {
		if !cmpDone[i] {
			pl.finishCmps = append(pl.finishCmps, compileCmp(in, slotOf, c))
		}
	}
	for i, a := range r.Neg {
		if !negDone[i] {
			pl.finishNegs = append(pl.finishNegs, compileAtomTpl(in, slotOf, a))
		}
	}

	pl.head = compileAtomTpl(in, slotOf, r.Head)
	for _, a := range r.Pos {
		pl.posTpls = append(pl.posTpls, compileAtomTpl(in, slotOf, a))
	}
	for _, a := range r.Neg {
		tpl := compileAtomTpl(in, slotOf, a)
		pl.negTpls = append(pl.negTpls, tpl)
		if len(tpl.isConst) > pl.maxNegArity {
			pl.maxNegArity = len(tpl.isConst)
		}
	}
	pl.nSlots = len(slots)
	pl.staticOrder = intsEqual(pl.order, joinOrder(n, occ))
	return pl
}

func hasKey(m map[string]uint32, k string) bool {
	_, ok := m[k]
	return ok
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func compileAtomTpl(in *interner, slotOf func(string) uint32, a ast.Atom) atomTpl {
	tpl := atomTpl{
		pred:    a.Pred,
		isConst: make([]bool, len(a.Args)),
		vals:    make([]uint32, len(a.Args)),
	}
	for j, t := range a.Args {
		if t.IsConst() {
			tpl.isConst[j] = true
			tpl.vals[j] = in.intern(t)
		} else {
			tpl.vals[j] = slotOf(t.Name)
		}
	}
	return tpl
}

func compileCmp(in *interner, slotOf func(string) uint32, c ast.Cmp) cmpPlan {
	cp := cmpPlan{op: c.Op}
	if c.Left.IsConst() {
		cp.lConst = true
		cp.l = in.intern(c.Left)
	} else {
		cp.l = slotOf(c.Left.Name)
	}
	if c.Right.IsConst() {
		cp.rConst = true
		cp.r = in.intern(c.Right)
	} else {
		cp.r = slotOf(c.Right.Name)
	}
	return cp
}
