package contain

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/qtree"
)

func cq(t *testing.T, src string) CQ {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Rules[0]
}

func TestContainedBasics(t *testing.T) {
	// path of length 2 is contained in "some edge exists from X".
	q1 := cq(t, `q(X) :- e(X, Y), e(Y, Z).`)
	q2 := cq(t, `q(X) :- e(X, Y).`)
	got, err := Contained(q1, q2)
	if err != nil || !got {
		t.Fatalf("q1 ⊑ q2 expected: %v %v", got, err)
	}
	// Converse fails.
	got, err = Contained(q2, q1)
	if err != nil || got {
		t.Fatalf("q2 ⋢ q1 expected: %v %v", got, err)
	}
}

func TestContainedSelfLoop(t *testing.T) {
	// e(X,X) ⊑ e(X,Y) (folding), not conversely.
	q1 := cq(t, `q(X) :- e(X, X).`)
	q2 := cq(t, `q(X) :- e(X, Y).`)
	if got, _ := Contained(q1, q2); !got {
		t.Fatal("self-loop query is contained in edge query")
	}
	if got, _ := Contained(q2, q1); got {
		t.Fatal("edge query is not contained in self-loop query")
	}
}

func TestContainedHeadMatters(t *testing.T) {
	// Same bodies, different head projections.
	q1 := cq(t, `q(X) :- e(X, Y).`)
	q2 := cq(t, `q(Y) :- e(X, Y).`)
	if got, _ := Contained(q1, q2); got {
		t.Fatal("head projection must distinguish the queries")
	}
}

func TestContainedEquivalentRenaming(t *testing.T) {
	q1 := cq(t, `q(A, B) :- e(A, C), e(C, B).`)
	q2 := cq(t, `q(X, Y) :- e(X, Z), e(Z, Y).`)
	got1, _ := Contained(q1, q2)
	got2, _ := Contained(q2, q1)
	if !got1 || !got2 {
		t.Fatal("renamed copies must be equivalent")
	}
}

func TestContainedRejectsOrderAtoms(t *testing.T) {
	q1 := cq(t, `q(X) :- e(X, Y), X < Y.`)
	q2 := cq(t, `q(X) :- e(X, Y).`)
	if _, err := Contained(q1, q2); err == nil {
		t.Fatal("Contained must reject order atoms")
	}
}

func TestContainedOrder(t *testing.T) {
	// q1 demands X < Y; q2 demands X <= Y: q1 ⊑ q2.
	q1 := cq(t, `q(X, Y) :- e(X, Y), X < Y.`)
	q2 := cq(t, `q(X, Y) :- e(X, Y), X <= Y.`)
	if got, err := ContainedOrder(q1, q2); err != nil || !got {
		t.Fatalf("q1 ⊑ q2 expected: %v %v", got, err)
	}
	if got, _ := ContainedOrder(q2, q1); got {
		t.Fatal("X <= Y is not contained in X < Y")
	}
	// Unsatisfiable left side is contained in anything.
	q3 := cq(t, `q(X, Y) :- e(X, Y), X < Y, Y < X.`)
	if got, _ := ContainedOrder(q3, q1); !got {
		t.Fatal("empty query is contained in everything")
	}
}

func TestContainedOrderComplete(t *testing.T) {
	// The classic case needing linearization: q2 matches either X <= Y
	// or X >= Y via different mappings (the head is 0-ary so both
	// mappings preserve it); q1 (no constraints, symmetric body) is
	// contained in q2 only through case analysis.
	q1 := cq(t, `q :- e(X, Y), e(Y, X).`)
	q2 := cq(t, `q :- e(X, Y), e(Y, X), X <= Y.`)
	// Single-mapping test fails...
	if got, _ := ContainedOrder(q1, q2); got {
		t.Fatal("single-mapping test should not prove this containment")
	}
	// ...but the complete test succeeds: in every linear order, either
	// X <= Y (identity mapping) or Y <= X (swap mapping).
	got, err := ContainedOrderComplete(q1, q2)
	if err != nil || !got {
		t.Fatalf("linearization-complete test must prove containment: %v %v", got, err)
	}
	// Sanity: the converse is trivially true (q2 has more constraints).
	if got, _ := ContainedOrderComplete(q2, q1); !got {
		t.Fatal("q2 ⊑ q1 must hold")
	}
}

func TestContainedOrderCompleteNegative(t *testing.T) {
	q1 := cq(t, `q(X, Y) :- e(X, Y).`)
	q2 := cq(t, `q(X, Y) :- e(X, Y), X < Y.`)
	if got, _ := ContainedOrderComplete(q1, q2); got {
		t.Fatal("unconstrained query is not contained in the constrained one")
	}
}

func TestUCQContained(t *testing.T) {
	up := func(srcs ...string) []CQ {
		var out []CQ
		for _, s := range srcs {
			out = append(out, cq(t, s))
		}
		return out
	}
	// {len-2 path, len-3 path} ⊑ {len-1 path from X}.
	got, err := UCQContained(
		up(`q(X) :- e(X, Y), e(Y, Z).`, `q(X) :- e(X, Y), e(Y, Z), e(Z, W).`),
		up(`q(X) :- e(X, Y).`),
	)
	if err != nil || !got {
		t.Fatalf("containment expected: %v %v", got, err)
	}
	// Union not contained in a single stricter disjunct.
	got, _ = UCQContained(
		up(`q(X) :- e(X, Y).`),
		up(`q(X) :- e(X, X).`, `q(X) :- e(X, Y), e(Y, X).`),
	)
	if got {
		t.Fatal("containment must fail")
	}
}

func TestProgramContainedInUCQ(t *testing.T) {
	// Transitive closure is NOT contained in {direct edge} ∪ {2-path}.
	p := parser.MustParseProgram(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		?- tc.
	`)
	ucq := []CQ{
		cq(t, `q(X, Y) :- e(X, Y).`),
		cq(t, `q(X, Y) :- e(X, Z), e(Z, Y).`),
	}
	got, err := ProgramContainedInUCQ(p, ucq)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("transitive closure exceeds bounded paths")
	}
	// A bounded program IS contained: tc limited to ≤2 steps.
	p2 := parser.MustParseProgram(`
		tc2(X, Y) :- e(X, Y).
		tc2(X, Y) :- e(X, Z), e(Z, Y).
		?- tc2.
	`)
	got, err = ProgramContainedInUCQ(p2, ucq)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("two-step closure is contained in the union")
	}
}

func TestProgramContainedInUCQFolding(t *testing.T) {
	// Containment requiring a folding mapping: every answer of p is an
	// edge, and the UCQ disjunct is the generic edge query.
	p := parser.MustParseProgram(`
		loop(X, X) :- e(X, X).
		?- loop.
	`)
	ucq := []CQ{cq(t, `q(X, Y) :- e(X, Y).`)}
	got, err := ProgramContainedInUCQ(p, ucq)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("loop answers are edges")
	}
}

func TestSatisfiabilityAsNonContainment(t *testing.T) {
	// Cross-check Prop 5.1: satisfiability via the query tree must
	// agree with non-containment via the reduction, on instances where
	// both sides are decidable.
	cases := []struct {
		prog string
		ics  string
	}{
		{
			`q(X, Z) :- a(X, Y), b(Y, Z).
			 ?- q.`,
			`:- a(X, Y), b(Y, Z).`, // unsatisfiable
		},
		{
			`q(X, Z) :- a(X, Y), b(W, Z).
			 ?- q.`,
			`:- a(X, Y), b(Y, Z).`, // satisfiable
		},
		{
			`q(X, Y) :- a(X, Y).
			 q(X, Y) :- a(X, Z), q(Z, Y).
			 ?- q.`,
			`:- a(X, Y), a(Y, Z).`, // satisfiable (single edges ok)
		},
	}
	for i, c := range cases {
		p := parser.MustParseProgram(c.prog)
		ics := parser.MustParseICs(c.ics)
		sat, err := ProgramSatisfiable(p, ics)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		rp, ucq, err := SatisfiabilityAsNonContainment(p, ics)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		contained, err := ProgramContainedInUCQ(rp, ucq)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sat == contained {
			t.Fatalf("case %d: satisfiable=%v must equal NOT contained=%v", i, sat, !contained)
		}
	}
}

// TestContainmentAgainstBruteForce cross-checks CQ containment against
// direct evaluation on small random databases: if q1 ⊑ q2 per the
// containment mapping, then q1's answers must be a subset of q2's on
// every database (we sample); if the test says not contained, the
// canonical database of q1 must witness it exactly.
func TestContainmentAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() CQ {
		// Random CQ: head q(X0), body of 1-3 e-atoms over 3 vars.
		vars := []ast.Term{ast.V("X0"), ast.V("X1"), ast.V("X2")}
		n := 1 + rng.Intn(3)
		r := ast.Rule{Head: ast.NewAtom("q", vars[0])}
		for i := 0; i < n; i++ {
			r.Pos = append(r.Pos, ast.NewAtom("e",
				vars[rng.Intn(3)], vars[rng.Intn(3)]))
		}
		// Ensure safety: head var occurs.
		r.Pos = append(r.Pos, ast.NewAtom("e", vars[0], vars[rng.Intn(3)]))
		return r
	}
	answersOn := func(q CQ, db *eval.DB) map[string]bool {
		p := &ast.Program{Rules: []ast.Rule{q}, Query: q.Head.Pred}
		idb, _, err := eval.Eval(p, db)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, f := range idb.SortedFacts(q.Head.Pred) {
			out[f] = true
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		q1, q2 := mk(), mk()
		got, err := Contained(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		// Sample small databases.
		for s := 0; s < 10; s++ {
			db := eval.NewDB()
			for i := 0; i < 4; i++ {
				db.AddFact(ast.NewAtom("e",
					ast.N(float64(rng.Intn(3))), ast.N(float64(rng.Intn(3)))))
			}
			a1, a2 := answersOn(q1, db), answersOn(q2, db)
			subset := true
			for f := range a1 {
				if !a2[f] {
					subset = false
				}
			}
			if got && !subset {
				t.Fatalf("trial %d: claimed q1 ⊑ q2 but DB refutes it\nq1: %s\nq2: %s", trial, q1, q2)
			}
		}
		if !got {
			// The canonical database of q1 must be a counterexample.
			db := eval.NewDB()
			frozen := map[string]ast.Term{}
			fz := func(tm ast.Term) ast.Term {
				if !tm.IsVar() {
					return tm
				}
				c, ok := frozen[tm.Name]
				if !ok {
					c = ast.S("k_" + tm.Name)
					frozen[tm.Name] = c
				}
				return c
			}
			for _, a := range q1.Pos {
				g := a.Clone()
				for i := range g.Args {
					g.Args[i] = fz(g.Args[i])
				}
				db.AddFact(g)
			}
			a1, a2 := answersOn(q1, db), answersOn(q2, db)
			counter := false
			for f := range a1 {
				if !a2[f] {
					counter = true
				}
			}
			if !counter {
				t.Fatalf("trial %d: claimed q1 ⋢ q2 but canonical DB gives no counterexample\nq1: %s\nq2: %s", trial, q1, q2)
			}
		}
	}
}

func TestNotContainedAsSatisfiabilityArityCheck(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X, Y) :- e(X, Y).
		?- q.
	`)
	bad := []CQ{cq(t, `r(X) :- e(X, Y).`)}
	if _, _, err := NotContainedAsSatisfiability(p, bad); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
	badIDB := []CQ{cq(t, `r(X, Y) :- q(X, Y).`)}
	if _, _, err := NotContainedAsSatisfiability(p, badIDB); err == nil {
		t.Fatal("IDB predicates in CQ bodies must be rejected")
	}
}

func TestProgramSatisfiableMatchesOptimizeFlag(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		?- q.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	sat, err := ProgramSatisfiable(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	out, err := qtree.Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if sat != out.Satisfiable {
		t.Fatal("ProgramSatisfiable must agree with Optimize")
	}
}
