// Package contain implements query containment: conjunctive-query
// containment by containment mappings (with sound handling of order
// atoms), union-of-CQ containment, containment of a datalog program in
// a union of conjunctive queries, and both directions of the
// LOGSPACE reduction between containment and satisfiability stated as
// Proposition 5.1 of the paper.
//
// The CQ-level procedures live in the dependency-light internal/cqc
// core (so the boundedness analyzer under eval can use them without
// importing the query-tree stack) and are re-exported here unchanged;
// this package adds the program-level reductions, which need qtree.
package contain

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/cqc"
	"repro/internal/qtree"
)

// CQ is a conjunctive query, represented as a single rule: the head
// lists the distinguished variables, the body is a conjunction of
// positive EDB atoms, negated EDB atoms, and order atoms.
type CQ = cqc.CQ

// Contained reports whether q1 ⊑ q2 holds for conjunctive queries
// without order atoms or negation; see cqc.Contained.
func Contained(q1, q2 CQ) (bool, error) { return cqc.Contained(q1, q2) }

// ContainedOrder reports whether q1 ⊑ q2 for CQs whose bodies may
// carry order atoms (no negation), soundly; see cqc.ContainedOrder.
func ContainedOrder(q1, q2 CQ) (bool, error) { return cqc.ContainedOrder(q1, q2) }

// ContainedOrderComplete decides q1 ⊑ q2 for CQs with order atoms (no
// negation) completely via Klug's linearization argument; see
// cqc.ContainedOrderComplete.
func ContainedOrderComplete(q1, q2 CQ) (bool, error) {
	return cqc.ContainedOrderComplete(q1, q2)
}

// UCQContained reports whether the union of CQs qs1 is contained in
// the union qs2 (pure CQs) by the Sagiv–Yannakakis theorem; see
// cqc.UCQContained.
func UCQContained(qs1, qs2 []CQ) (bool, error) { return cqc.UCQContained(qs1, qs2) }

// goalPred is the fresh EDB predicate introduced by the Prop 5.1
// reduction.
const goalPred = "contain_goal"

// reducedQuery is the fresh query predicate of the reduction.
const reducedQuery = "contain_q"

// ProgramContainedInUCQ decides whether datalog program p (with query
// predicate p.Query of the same arity as the CQ heads) is contained in
// the union of conjunctive queries ucq, using the Proposition 5.1
// reduction to (un)satisfiability and the query-tree decision
// procedure: P ⊑ Φ iff the augmented query is unsatisfiable w.r.t.
// the constraints {:- goal(X̄), body_φ : φ ∈ Φ}.
//
// The CQ bodies must range over EDB predicates of p (they become
// integrity constraints, which cannot mention IDB predicates).
func ProgramContainedInUCQ(p *ast.Program, ucq []CQ) (bool, error) {
	prog, ics, err := NotContainedAsSatisfiability(p, ucq)
	if err != nil {
		return false, err
	}
	out, err := qtree.Optimize(prog, ics)
	if err != nil {
		return false, err
	}
	if len(out.Warnings) > 0 {
		return false, fmt.Errorf("contain: reduction produced unsupported constraints: %v", out.Warnings)
	}
	return !out.Satisfiable, nil
}

// NotContainedAsSatisfiability builds the Proposition 5.1 reduction
// from non-containment to satisfiability: the returned program's query
// predicate is satisfiable w.r.t. the returned constraints iff
// p ⋢ ucq. The construction adds a fresh EDB predicate goal(X̄) that
// selects a candidate counterexample tuple, a rule
// contain_q(X̄) :- q(X̄), goal(X̄), and one constraint
// :- goal(X̄), body_φ per disjunct forbidding the candidate from being
// an answer of φ.
func NotContainedAsSatisfiability(p *ast.Program, ucq []CQ) (*ast.Program, []ast.IC, error) {
	if p.Query == "" {
		return nil, nil, fmt.Errorf("contain: program has no query predicate")
	}
	ar, err := p.PredArity()
	if err != nil {
		return nil, nil, err
	}
	n := ar[p.Query]
	idb := p.IDB()
	for _, q := range ucq {
		if q.Head.Arity() != n {
			return nil, nil, fmt.Errorf("contain: CQ head arity %d differs from query arity %d", q.Head.Arity(), n)
		}
		for _, a := range q.Pos {
			if idb[a.Pred] {
				return nil, nil, fmt.Errorf("contain: CQ body atom %s uses an IDB predicate", a)
			}
		}
	}

	prog := p.Clone()
	args := make([]ast.Term, n)
	for i := range args {
		args[i] = ast.V(fmt.Sprintf("CX%d", i))
	}
	prog.Rules = append(prog.Rules, ast.Rule{
		Head: ast.NewAtom(reducedQuery, args...),
		Pos: []ast.Atom{
			ast.NewAtom(p.Query, args...),
			ast.NewAtom(goalPred, args...),
		},
	})
	prog.Query = reducedQuery

	var ics []ast.IC
	var fr ast.Freshener
	for _, q := range ucq {
		qr := ast.RenameRule(q, fr.Next())
		// Bind the CQ's head variables to the goal tuple: the goal
		// atom reuses the head argument terms directly.
		ic := ast.IC{
			Pos: append([]ast.Atom{ast.NewAtom(goalPred, qr.Head.Args...)}, qr.Pos...),
			Neg: qr.Neg,
			Cmp: qr.Cmp,
		}
		ics = append(ics, ic)
	}
	return prog, ics, nil
}

// SatisfiabilityAsNonContainment builds the converse reduction of
// Proposition 5.1: the query predicate of p is satisfiable w.r.t. ics
// iff the returned program is NOT contained in the returned union of
// conjunctive queries. The program gains a 0-ary wrapper predicate
// derived from the query, and each constraint becomes a 0-ary CQ.
func SatisfiabilityAsNonContainment(p *ast.Program, ics []ast.IC) (*ast.Program, []CQ, error) {
	if p.Query == "" {
		return nil, nil, fmt.Errorf("contain: program has no query predicate")
	}
	ar, err := p.PredArity()
	if err != nil {
		return nil, nil, err
	}
	prog := p.Clone()
	args := make([]ast.Term, ar[p.Query])
	for i := range args {
		args[i] = ast.V(fmt.Sprintf("CX%d", i))
	}
	prog.Rules = append(prog.Rules, ast.Rule{
		Head: ast.NewAtom("contain_q0"),
		Pos:  []ast.Atom{ast.NewAtom(p.Query, args...)},
	})
	prog.Query = "contain_q0"

	var ucq []CQ
	for _, ic := range ics {
		ucq = append(ucq, CQ{
			Head: ast.NewAtom("contain_q0"),
			Pos:  ic.Pos,
			Neg:  ic.Neg,
			Cmp:  ic.Cmp,
		})
	}
	return prog, ucq, nil
}

// ProgramSatisfiable decides satisfiability of the program's query
// predicate w.r.t. the constraints via the query-tree procedure
// (Theorem 5.1's doubly-exponential decision procedure for the
// decidable classes).
func ProgramSatisfiable(p *ast.Program, ics []ast.IC) (bool, error) {
	out, err := qtree.Optimize(p, ics)
	if err != nil {
		return false, err
	}
	if len(out.Warnings) > 0 {
		return false, fmt.Errorf("contain: constraints outside the decidable class: %v", out.Warnings)
	}
	return out.Satisfiable, nil
}
