package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/store"
)

// TestReadyzGating pins the readiness contract: while restore is in
// flight, /healthz stays 200 (liveness), /readyz and every
// dataset-touching endpoint answer 503 with code "not_ready", and
// pure-compute endpoints keep serving.
func TestReadyzGating(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if !s.Ready() {
		t.Fatal("in-memory server must be ready immediately")
	}

	s.ready.Store(false) // simulate a restore in flight
	if code, _ := doRaw(t, http.MethodGet, ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("/healthz during restore = %d, want 200 (liveness must not gate on readiness)", code)
	}
	if code, body := doRaw(t, http.MethodGet, ts.URL+"/readyz", "", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during restore = %d %s, want 503", code, body)
	}
	gated := []struct{ method, path, body string }{
		{http.MethodPut, "/v1/datasets/d", "e(1, 2)."},
		{http.MethodGet, "/v1/datasets", ""},
		{http.MethodPost, "/v1/datasets/d/facts", `{"add": ["e(1, 2)."]}`},
		{http.MethodPost, "/v1/query", `{"program": "q(X) :- e(X, X).\n?- q.", "dataset": "d"}`},
	}
	for _, g := range gated {
		code, raw := doRaw(t, g.method, ts.URL+g.path, g.body, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during restore = %d %s, want 503", g.method, g.path, code, raw)
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "not_ready" {
			t.Fatalf("%s %s during restore body = %s, want code not_ready", g.method, g.path, raw)
		}
	}
	if code, _ := doRaw(t, http.MethodGet, ts.URL+"/metrics", "", nil); code != http.StatusOK {
		t.Fatalf("/metrics during restore must keep serving")
	}

	s.ready.Store(true)
	if code, raw := doRaw(t, http.MethodGet, ts.URL+"/readyz", "", nil); code != http.StatusOK {
		t.Fatalf("/readyz after restore = %d %s", code, raw)
	}
	if code, raw := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets/d", "e(1, 2).", nil); code != http.StatusOK {
		t.Fatalf("PUT after restore = %d %s", code, raw)
	}
}

// TestAsyncRestore: a server opened with AsyncRestore serves /healthz
// at once, flips /readyz when the replay finishes, and then has the
// full durable state.
func TestAsyncRestore(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st, Recovered: rec})
	if code, raw := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets/alpha", "e(1, 2). e(2, 3).", nil); code != http.StatusOK {
		t.Fatalf("seed PUT = %d %s", code, raw)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	s2, ts2 := newTestServer(t, Config{Store: st2, Recovered: rec2, AsyncRestore: true})
	if code, _ := doRaw(t, http.MethodGet, ts2.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatal("/healthz must serve during async restore")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s2.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("async restore did not complete")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := doRaw(t, http.MethodGet, ts2.URL+"/readyz", "", nil); code != http.StatusOK {
		t.Fatal("/readyz must be 200 once restore completes")
	}
	var infos []DatasetInfo
	doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets", nil, &infos)
	if len(infos) != 1 || infos[0].Name != "alpha" || infos[0].Facts != 2 {
		t.Fatalf("restored datasets = %+v", infos)
	}
}
