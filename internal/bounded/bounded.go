// Package bounded is a static boundedness analyzer: it detects
// recursive predicates whose fixpoint is reached after a constant
// number of iterations on every database, and compiles their recursion
// away into an equivalent finite union of conjunctive queries.
//
// The test is the classical unfolding ladder. For a self-recursive
// predicate p, let A_1 be the union of p's exit rules (the rules with
// no p-subgoal) and let A_{k+1} extend A_1 with every recursive rule of
// p whose p-subgoals have each been resolved against a disjunct of A_k
// (renamed apart, arguments unified). A_k is exactly the set of
// derivations of p that use recursion depth < k, so the chain
// A_1 ⊑ A_2 ⊑ ... converges to p's fixpoint. If some step closes —
// A_{k+1} ⊑ A_k as a union of conjunctive queries, decided by the
// containment machinery of internal/cqc (Sagiv–Yannakakis
// disjunct-wise CQ containment; the order-atom-aware sound variant
// when rules carry comparisons) — then by monotonicity every deeper
// unfolding collapses into A_k too, and A_k IS the fixpoint: p can be
// evaluated as a flat union of joins with no iteration at all.
//
// Boundedness is undecidable in general (already for linear programs),
// so the analysis is three-valued and budgeted: Bounded carries the
// witness depth and the equivalent UCQ, NotWithinBudget means no
// containment witness was found before the depth/size budgets ran out
// (the honest verdict for genuinely unbounded programs such as
// transitive closure), and Unknown marks predicates the procedure does
// not cover (mutual recursion, negated subgoals). Structural
// pre-checks — the linear/piecewise-linear classification and a
// projected-growth bound for nonlinear rules — bail out before any
// hopeless containment call is made.
package bounded

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/cqc"
)

// ErrNotBounded is wrapped by Rewrite when no predicate of the program
// could be proven bounded; callers fall back to ordinary fixpoint
// evaluation with errors.Is, mirroring magic.ErrNotApplicable.
var ErrNotBounded = errors.New("recursion not provably bounded")

// Options bound the analysis. Boundedness is undecidable, so these are
// semantic knobs, not tuning parameters: raising them makes the
// analyzer prove MORE programs bounded (never different answers).
type Options struct {
	// MaxDepth is the largest unfolding depth k for which the witness
	// containment A_{k+1} ⊑ A_k is attempted (default 3).
	MaxDepth int
	// MaxDisjuncts caps the number of conjunctive queries in any A_k
	// (default 48); past it the verdict is NotWithinBudget.
	MaxDisjuncts int
	// MaxBodyAtoms caps the positive body length of an expanded
	// disjunct (default 12); past it the verdict is NotWithinBudget.
	MaxBodyAtoms int
}

func (o *Options) defaults() {
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.MaxDisjuncts == 0 {
		o.MaxDisjuncts = 48
	}
	if o.MaxBodyAtoms == 0 {
		o.MaxBodyAtoms = 12
	}
}

// Verdict is the three-valued outcome of the analysis for one
// predicate. Only Bounded licenses a rewrite; the other two differ in
// honesty, not effect: NotWithinBudget means the procedure ran and
// found no witness, Unknown means it never applied.
type Verdict int

const (
	// Unknown: the predicate is outside the procedure's scope
	// (mutual recursion, negated subgoals). Reason says why.
	Unknown Verdict = iota
	// NotWithinBudget: the unfolding ladder was built but no
	// containment witness A_{k+1} ⊑ A_k appeared within the budgets.
	// The predicate may still be bounded at a greater depth — or
	// genuinely unbounded, which this verdict can never distinguish.
	NotWithinBudget
	// Bounded: A_{Depth+1} ⊑ A_{Depth} holds; Disjuncts is the
	// equivalent non-recursive program for the predicate.
	Bounded
)

func (v Verdict) String() string {
	switch v {
	case Bounded:
		return "bounded"
	case NotWithinBudget:
		return "not-bounded-within-budget"
	default:
		return "unknown"
	}
}

// Analysis is the per-predicate result.
type Analysis struct {
	// Pred is the analyzed self-recursive predicate.
	Pred string
	// Verdict is the three-valued outcome.
	Verdict Verdict
	// Depth is the witness unfolding depth for Bounded (A_{Depth+1} ⊑
	// A_{Depth}), or the deepest level tried for NotWithinBudget.
	Depth int
	// Linear reports that every recursive rule has exactly one
	// p-subgoal (piecewise-linear recursion); nonlinear rules multiply
	// the ladder combinatorially.
	Linear bool
	// Reason explains Unknown and NotWithinBudget verdicts.
	Reason string
	// Disjuncts is the equivalent union of conjunctive queries when
	// Verdict is Bounded: non-recursive rules for Pred whose
	// evaluation yields exactly Pred's fixpoint.
	Disjuncts []ast.Rule
}

// Result is the outcome of Rewrite.
type Result struct {
	// Program is the rewritten program: every Bounded predicate's
	// rules replaced by its Disjuncts. Nil when Rewrite returned
	// ErrNotBounded.
	Program *ast.Program
	// Analyses holds one entry per self-recursive predicate analyzed,
	// sorted by predicate name, whatever the verdict — Rewrite returns
	// it alongside ErrNotBounded so callers can report why the
	// rewrite did not apply.
	Analyses []Analysis
	// Eliminated lists the predicates whose recursion was compiled
	// away, sorted.
	Eliminated []string
}

// Analyze runs the boundedness analysis on every self-recursive
// predicate of the program and returns the per-predicate verdicts
// sorted by predicate name. It never fails: out-of-scope predicates
// get verdict Unknown.
func Analyze(p *ast.Program, opts Options) []Analysis {
	opts.defaults()
	idb := p.IDB()
	deps := depGraph(p, idb)
	var preds []string
	for pred := range idb {
		if selfRecursive(p, pred) {
			preds = append(preds, pred)
		}
	}
	sort.Strings(preds)
	out := make([]Analysis, 0, len(preds))
	for _, pred := range preds {
		out = append(out, analyzePred(p, pred, idb, deps, opts))
	}
	return out
}

// Rewrite replaces every provably bounded predicate's rules with the
// equivalent non-recursive union of conjunctive queries and returns
// the rewritten program (the input is never mutated). When no
// predicate is bounded it returns an error wrapping ErrNotBounded —
// with the Result still carrying the per-predicate Analyses, so the
// caller can report the honest verdicts.
func Rewrite(p *ast.Program, opts Options) (*Result, error) {
	res := &Result{Analyses: Analyze(p, opts)}
	byPred := map[string][]ast.Rule{}
	for _, a := range res.Analyses {
		// A predicate with no exit rules is bounded with an EMPTY
		// witness UCQ, but rewriting it would delete its last rule and
		// flip it from IDB to EDB classification — unshadowing any
		// same-named facts in the database and changing answers. Leave
		// it alone; the verdict still reaches lint.
		if a.Verdict == Bounded && len(a.Disjuncts) > 0 {
			res.Eliminated = append(res.Eliminated, a.Pred)
			byPred[a.Pred] = a.Disjuncts
		}
	}
	if len(byPred) == 0 {
		if len(res.Analyses) == 0 {
			return res, fmt.Errorf("%w: no self-recursive predicates", ErrNotBounded)
		}
		return res, fmt.Errorf("%w: %s", ErrNotBounded, summarize(res.Analyses))
	}
	out := &ast.Program{Query: p.Query}
	if p.Goal != nil {
		out.Goal = append([]ast.Term(nil), p.Goal...)
	}
	// Splice each bounded predicate's UCQ where its first rule stood;
	// its remaining rules are dropped.
	done := map[string]bool{}
	for _, r := range p.Rules {
		disj, bounded := byPred[r.Head.Pred]
		switch {
		case !bounded:
			out.Rules = append(out.Rules, r.Clone())
		case !done[r.Head.Pred]:
			done[r.Head.Pred] = true
			for _, d := range disj {
				out.Rules = append(out.Rules, d.Clone())
			}
		}
	}
	res.Program = out
	return res, nil
}

// summarize compresses the non-bounded verdicts into one error detail.
func summarize(as []Analysis) string {
	s := ""
	for i, a := range as {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s: %s (%s)", a.Pred, a.Verdict, a.Reason)
	}
	return s
}

// selfRecursive reports whether some rule for pred has pred itself as
// a positive subgoal.
func selfRecursive(p *ast.Program, pred string) bool {
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			continue
		}
		for _, a := range r.Pos {
			if a.Pred == pred {
				return true
			}
		}
	}
	return false
}

// depGraph returns the positive IDB dependency edges: head predicate →
// IDB predicates in its rules' positive bodies. Negated subgoals are
// EDB-only by Validate, so they add no edges.
func depGraph(p *ast.Program, idb map[string]bool) map[string][]string {
	deps := map[string][]string{}
	for _, r := range p.Rules {
		for _, a := range r.Pos {
			if idb[a.Pred] {
				deps[r.Head.Pred] = append(deps[r.Head.Pred], a.Pred)
			}
		}
	}
	return deps
}

// reaches reports whether `to` is reachable from `from` along deps
// edges (one or more steps).
func reaches(deps map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	stack := append([]string(nil), deps[from]...)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q == to {
			return true
		}
		if seen[q] {
			continue
		}
		seen[q] = true
		stack = append(stack, deps[q]...)
	}
	return false
}

// analyzePred runs the scope checks, structural pre-checks, and the
// unfolding ladder for one self-recursive predicate.
func analyzePred(p *ast.Program, pred string, idb map[string]bool, deps map[string][]string, o Options) Analysis {
	res := Analysis{Pred: pred, Linear: true}
	var exit, rec []ast.Rule
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			continue
		}
		if r.HasNeg() {
			res.Reason = "rules carry negated subgoals, which the containment procedure does not cover"
			return res
		}
		n := 0
		for _, a := range r.Pos {
			switch {
			case a.Pred == pred:
				n++
			case idb[a.Pred] && reaches(deps, a.Pred, pred):
				res.Reason = fmt.Sprintf("mutually recursive with %s; only self-recursion is analyzed", a.Pred)
				return res
			}
		}
		if n == 0 {
			exit = append(exit, r.Clone())
		} else {
			rec = append(rec, r.Clone())
			if n > 1 {
				res.Linear = false
			}
		}
	}

	// Structural pre-check: project the ladder's growth before paying
	// for expansion or containment. Each level has at most |exit| +
	// Σ_r |A_k|^(p-subgoals of r) disjuncts; if depth 2 already
	// overflows the budget for a nonlinear program, no containment
	// call can ever run to completion.
	if projected := projectGrowth(len(exit), rec, pred); projected > o.MaxDisjuncts {
		res.Verdict = NotWithinBudget
		res.Depth = 1
		res.Reason = fmt.Sprintf("projected %d disjuncts at unfolding depth 2 exceeds the %d-disjunct budget", projected, o.MaxDisjuncts)
		return res
	}

	prev := dedupe(exit, nil)
	if len(prev) > o.MaxDisjuncts {
		res.Verdict = NotWithinBudget
		res.Depth = 1
		res.Reason = fmt.Sprintf("%d exit disjuncts exceed the %d-disjunct budget", len(prev), o.MaxDisjuncts)
		return res
	}
	fresh := 0
	for k := 1; k <= o.MaxDepth; k++ {
		next, grew, ok := unfoldLevel(pred, exit, rec, prev, &fresh, o)
		if !ok {
			res.Verdict = NotWithinBudget
			res.Depth = k
			res.Reason = fmt.Sprintf("unfolding depth %d exceeds the disjunct/body budget (%d disjuncts, %d atoms)", k+1, o.MaxDisjuncts, o.MaxBodyAtoms)
			return res
		}
		// Syntactic fixpoint: the level added no new disjunct shape, so
		// A_{k+1} ⊑ A_k holds with no containment search at all.
		// Otherwise only the genuinely new disjuncts need the
		// homomorphism test — the carried-over ones are contained in
		// themselves.
		if ucqContainedIn(grew, prev) {
			if err := safeDisjuncts(prev); err != nil {
				res.Reason = fmt.Sprintf("witness UCQ at depth %d is unsafe (%v)", k, err)
				return res
			}
			res.Verdict = Bounded
			res.Depth = k
			res.Disjuncts = prev
			return res
		}
		prev = next
	}
	res.Verdict = NotWithinBudget
	res.Depth = o.MaxDepth
	res.Reason = fmt.Sprintf("no containment witness up to unfolding depth %d", o.MaxDepth)
	return res
}

// projectGrowth estimates |A_2| without expanding: exit disjuncts plus
// one expansion per recursive rule and per way of choosing an exit
// disjunct for each of its p-subgoals.
func projectGrowth(exitN int, rec []ast.Rule, pred string) int {
	total := exitN
	for _, r := range rec {
		ways := 1
		for _, a := range r.Pos {
			if a.Pred == pred {
				ways *= exitN
				if ways > 1<<16 {
					return 1 << 16
				}
			}
		}
		total += ways
		if total > 1<<16 {
			return 1 << 16
		}
	}
	return total
}

// unfoldLevel computes A_{k+1} from A_k (prev): the exit disjuncts
// plus every resolution of a recursive rule against prev. It returns
// the deduplicated next level, the disjuncts of that level that are
// not already in prev (the only ones whose containment is in
// question), and ok=false when a budget is exceeded.
func unfoldLevel(pred string, exit, rec, prev []ast.Rule, fresh *int, o Options) (next, grew []ast.Rule, ok bool) {
	keys := map[string]bool{}
	next = dedupe(exit, keys)
	prevKeys := map[string]bool{}
	for _, d := range prev {
		prevKeys[canonicalKey(d)] = true
	}
	for _, r := range rec {
		var occ []int
		for i, a := range r.Pos {
			if a.Pred == pred {
				occ = append(occ, i)
			}
		}
		choice := make([]ast.Rule, len(occ))
		var walk func(i int) bool
		walk = func(i int) bool {
			if i == len(occ) {
				d, expanded := expand(r, occ, choice, fresh)
				if !expanded {
					return true // heads never unify; this combination derives nothing
				}
				if len(d.Pos) > o.MaxBodyAtoms {
					return false
				}
				key := canonicalKey(d)
				if keys[key] {
					return true
				}
				keys[key] = true
				next = append(next, d)
				if !prevKeys[key] {
					grew = append(grew, d)
				}
				return len(next) <= o.MaxDisjuncts
			}
			for _, c := range prev {
				choice[i] = c
				if !walk(i + 1) {
					return false
				}
			}
			return true
		}
		if !walk(0) {
			return nil, nil, false
		}
	}
	return next, grew, true
}

// expand resolves rule r's p-subgoals (at body positions occ) against
// the chosen disjuncts: each disjunct is renamed apart, its head
// unified with the subgoal's arguments under one accumulated
// substitution, and its body spliced in place of the subgoal.
func expand(r ast.Rule, occ []int, choice []ast.Rule, fresh *int) (ast.Rule, bool) {
	// '#' cannot appear in source identifiers, so suffixed names are
	// disjoint from the rule's variables and from every other chosen
	// disjunct's (the counter makes repeated choices distinct).
	renamed := make([]ast.Rule, len(choice))
	for i, d := range choice {
		*fresh++
		n := *fresh
		renamed[i] = ast.RenameRule(d, func(v string) string { return fmt.Sprintf("%s#b%d", v, n) })
	}
	subst := map[string]ast.Term{}
	for i, oi := range occ {
		if !unifyInto(subst, r.Pos[oi].Args, renamed[i].Head.Args) {
			return ast.Rule{}, false
		}
	}
	out := ast.Rule{Head: substAtom(r.Head, subst), At: r.At}
	ri := 0
	for i, a := range r.Pos {
		if ri < len(occ) && occ[ri] == i {
			for _, pa := range renamed[ri].Pos {
				out.Pos = append(out.Pos, substAtom(pa, subst))
			}
			for _, c := range renamed[ri].Cmp {
				out.Cmp = append(out.Cmp, substCmp(c, subst))
			}
			ri++
			continue
		}
		out.Pos = append(out.Pos, substAtom(a, subst))
	}
	for _, c := range r.Cmp {
		out.Cmp = append(out.Cmp, substCmp(c, subst))
	}
	return out, true
}

// unifyInto unifies two argument lists under an accumulated
// substitution, extending it in place. Like magic's unifyArgs this is
// full syntactic unification over flat terms (disjunct heads may
// repeat variables and hold constants), but threaded through one
// growing map so several subgoals of the same rule unify consistently.
func unifyInto(subst map[string]ast.Term, a, b []ast.Term) bool {
	if len(a) != len(b) {
		return false
	}
	var walk func(t ast.Term) ast.Term
	walk = func(t ast.Term) ast.Term {
		for t.IsVar() {
			next, ok := subst[t.Name]
			if !ok {
				return t
			}
			t = next
		}
		return t
	}
	for i := range a {
		x, y := walk(a[i]), walk(b[i])
		switch {
		case x.IsVar() && y.IsVar() && x.Name == y.Name:
		case y.IsVar():
			// Prefer binding the disjunct-side variable so the rule's
			// own names (head variables included) survive.
			subst[y.Name] = x
		case x.IsVar():
			subst[x.Name] = y
		case !x.Equal(y):
			return false
		}
	}
	// Flatten chains so substAtom can apply the map in one step.
	for v := range subst {
		subst[v] = walk(ast.V(v))
	}
	return true
}

func substTerm(t ast.Term, subst map[string]ast.Term) ast.Term {
	if t.IsVar() {
		if r, ok := subst[t.Name]; ok {
			return r
		}
	}
	return t
}

func substAtom(a ast.Atom, subst map[string]ast.Term) ast.Atom {
	out := ast.Atom{Pred: a.Pred, At: a.At, Args: make([]ast.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = substTerm(t, subst)
	}
	return out
}

func substCmp(c ast.Cmp, subst map[string]ast.Term) ast.Cmp {
	c.Left = substTerm(c.Left, subst)
	c.Right = substTerm(c.Right, subst)
	return c
}

// canonicalKey renames a rule's variables to V0, V1, ... in order of
// first occurrence and prints it, so alphabetic variants map to one
// key.
func canonicalKey(r ast.Rule) string {
	i := 0
	seen := map[string]string{}
	rr := ast.RenameRule(r, func(v string) string {
		n, ok := seen[v]
		if !ok {
			n = fmt.Sprintf("V%d", i)
			i++
			seen[v] = n
		}
		return n
	})
	return rr.String()
}

// dedupe drops syntactic duplicates (modulo variable renaming),
// recording canonical keys in keys when non-nil.
func dedupe(rs []ast.Rule, keys map[string]bool) []ast.Rule {
	if keys == nil {
		keys = map[string]bool{}
	}
	out := make([]ast.Rule, 0, len(rs))
	for _, r := range rs {
		key := canonicalKey(r)
		if keys[key] {
			continue
		}
		keys[key] = true
		out = append(out, r)
	}
	return out
}

// ucqContainedIn reports whether every disjunct of qs1 is contained in
// some disjunct of qs2 — the Sagiv–Yannakakis criterion, decided
// per-pair by Contained for pure CQs and by the sound (incomplete)
// ContainedOrder when either side carries order atoms. Incompleteness
// only ever costs a Bounded verdict, never soundness.
func ucqContainedIn(qs1, qs2 []ast.Rule) bool {
	for _, q1 := range qs1 {
		found := false
		for _, q2 := range qs2 {
			var ok bool
			var err error
			if q1.HasCmp() || q2.HasCmp() {
				ok, err = cqc.ContainedOrder(q1, q2)
			} else {
				ok, err = cqc.Contained(q1, q2)
			}
			if err == nil && ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// safeDisjuncts verifies every witness disjunct is range-restricted;
// expansion preserves safety of safe inputs, so this is defensive.
func safeDisjuncts(rs []ast.Rule) error {
	for _, r := range rs {
		if err := r.Safe(); err != nil {
			return err
		}
	}
	return nil
}
