// Package qtree implements the top-down phase of the query-tree
// algorithm (Section 4.1 of the paper): construction of the query
// tree/forest with labels pushed from parents to children along the
// provenance recorded by the bottom-up phase (package adorn), pruning
// of nodes unreachable from the EDB leaves or the root, and extraction
// of the rewritten program that completely incorporates the integrity
// constraints (Theorems 4.1 and 4.2).
package qtree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/rewrite"
)

// LabelTriplet refines an adornment triplet at a node of the query
// tree: partial mappings into the whole encoded derivation, not just
// the subtree below the node.
type LabelTriplet struct {
	IC       int
	Unmapped []int
	Sigma    map[string]adorn.Image
	// AdornTriplet is the index of the corresponding triplet in the
	// node's adornment (the paper's triplet correspondence).
	AdornTriplet int
}

// key canonicalizes the label triplet, including the correspondence.
func (lt LabelTriplet) key() string {
	t := adorn.Triplet{IC: lt.IC, Unmapped: lt.Unmapped, Sigma: lt.Sigma}
	return fmt.Sprintf("%s@%d", t.Key(), lt.AdornTriplet)
}

// labelKey canonicalizes a whole label (set semantics).
func labelKey(label []LabelTriplet) string {
	keys := make([]string, len(label))
	for i, lt := range label {
		keys[i] = lt.key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// Node is an IDB goal node of the query tree — more precisely the
// representative of an equivalence class of goal nodes (isomorphic
// atom, same adornment, identical label with identical triplet
// correspondences).
type Node struct {
	ID      int
	Pred    string // specialized predicate
	AdornID int
	Label   []LabelTriplet
	// RuleKids are the rule-node children (one per adorned rule whose
	// head matches the node's predicate and adornment).
	RuleKids []*RuleNode
	// Live marks nodes that survive pruning (productive and reachable).
	Live bool

	key string
}

// RuleNode is a rule node of the query tree.
type RuleNode struct {
	// ARIdx indexes adorn.Result.Rules.
	ARIdx int
	AR    *adorn.AdornedRule
	// Children holds the goal-node child per positive subgoal (nil for
	// EDB subgoals, which are leaves and carry no labels).
	Children []*Node
	Live     bool
}

// Tree is the query forest: one root per adornment of the query
// predicate.
type Tree struct {
	Res   *adorn.Result
	Roots []*Node
	Nodes []*Node
	byKey map[string]*Node
}

// Build constructs the query forest from the bottom-up result,
// expanding one goal node per equivalence class.
func Build(res *adorn.Result) *Tree {
	t := &Tree{Res: res, byKey: map[string]*Node{}}
	q := res.Spec.Query
	for adornID := range res.Adorn[q] {
		if len(res.RulesByHead[q][adornID]) == 0 {
			continue // no rule derives this adornment; cannot be a root
		}
		// Root label: the adornment itself, with identity correspondence.
		var label []LabelTriplet
		for ti, tr := range res.Adorn[q][adornID].Triplets {
			label = append(label, LabelTriplet{
				IC: tr.IC, Unmapped: tr.Unmapped, Sigma: tr.Sigma, AdornTriplet: ti,
			})
		}
		t.Roots = append(t.Roots, t.intern(q, adornID, label))
	}
	// Expand breadth-first; intern enqueues by appending to t.Nodes.
	for i := 0; i < len(t.Nodes); i++ {
		t.expand(t.Nodes[i])
	}
	return t
}

// intern returns the class representative for (pred, adornID, label),
// creating it if new.
func (t *Tree) intern(pred string, adornID int, label []LabelTriplet) *Node {
	key := fmt.Sprintf("%s|%d|%s", pred, adornID, labelKey(label))
	if n, ok := t.byKey[key]; ok {
		return n
	}
	n := &Node{ID: len(t.Nodes), Pred: pred, AdornID: adornID, Label: label, key: key}
	t.byKey[key] = n
	t.Nodes = append(t.Nodes, n)
	return n
}

// expand creates the rule-node children of a goal node and the goal
// nodes for their IDB subgoals, pushing labels down.
func (t *Tree) expand(n *Node) {
	res := t.Res
	for _, arIdx := range res.RulesByHead[n.Pred][n.AdornID] {
		ar := res.Rules[arIdx]
		rn := &RuleNode{ARIdx: arIdx, AR: ar, Children: make([]*Node, len(ar.Rule.Pos))}
		for j, sub := range ar.Rule.Pos {
			if ar.ChildAdornIDs[j] < 0 {
				continue // EDB leaf
			}
			childLabel := t.childLabel(n, ar, j)
			rn.Children[j] = t.intern(sub.Pred, ar.ChildAdornIDs[j], childLabel)
		}
		n.RuleKids = append(n.RuleKids, rn)
	}
}

// childLabel computes the label of the j-th subgoal of an adorned rule
// used below node n, following the paper's correspondences: each label
// triplet of n corresponds to a head-adornment triplet, which was
// produced by rule triplets, each of which chose one triplet at every
// subgoal; the child label triplet keeps the parent's unmapped set and
// restricts the child triplet's σ to its variables.
func (t *Tree) childLabel(n *Node, ar *adorn.AdornedRule, j int) []LabelTriplet {
	res := t.Res
	childAd := res.Adorn[ar.Rule.Pos[j].Pred][ar.ChildAdornIDs[j]]
	seen := map[string]bool{}
	var out []LabelTriplet
	for _, lt := range n.Label {
		for _, rt := range ar.Triplets {
			if rt.IC != lt.IC || rt.HeadTriplet != lt.AdornTriplet {
				continue
			}
			ci := rt.ChildChoice[j]
			if ci < 0 || ci >= len(childAd.Triplets) {
				continue
			}
			ct := childAd.Triplets[ci]
			nlt := LabelTriplet{
				IC:           lt.IC,
				Unmapped:     lt.Unmapped,
				Sigma:        restrictImages(ct.Sigma, res.Plans[lt.IC], lt.Unmapped),
				AdornTriplet: ci,
			}
			if k := nlt.key(); !seen[k] {
				seen[k] = true
				out = append(out, nlt)
			}
		}
	}
	return out
}

// restrictImages keeps the images of variables occurring in the given
// unmapped atoms or in the constraint's residue order atoms.
func restrictImages(sigma map[string]adorn.Image, plan rewrite.ICPlan, unmapped []int) map[string]adorn.Image {
	keep := map[string]bool{}
	for _, ui := range unmapped {
		for _, v := range plan.IC.Pos[ui].Vars(nil) {
			keep[v] = true
		}
	}
	for _, c := range plan.ResidueCmps {
		for _, v := range c.Vars(nil) {
			keep[v] = true
		}
	}
	out := map[string]adorn.Image{}
	for v, im := range sigma {
		if keep[v] {
			out[v] = im
		}
	}
	return out
}

// Prune computes liveness: a goal node is productive if some rule
// child has all its IDB children productive (least fixpoint), and a
// node is live if it is productive and reachable from a productive
// root. Rule nodes are live when all their IDB children are live.
func (t *Tree) Prune() {
	// Productivity (reachable from the EDB leaves).
	productive := make([]bool, len(t.Nodes))
	for changed := true; changed; {
		changed = false
		for _, n := range t.Nodes {
			if productive[n.ID] {
				continue
			}
			for _, rn := range n.RuleKids {
				ok := true
				for _, c := range rn.Children {
					if c != nil && !productive[c.ID] {
						ok = false
						break
					}
				}
				if ok {
					productive[n.ID] = true
					changed = true
					break
				}
			}
		}
	}
	// Reachability from productive roots through productive rule nodes.
	reachable := make([]bool, len(t.Nodes))
	var stack []*Node
	for _, r := range t.Roots {
		if productive[r.ID] && !reachable[r.ID] {
			reachable[r.ID] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, rn := range n.RuleKids {
			allProd := true
			for _, c := range rn.Children {
				if c != nil && !productive[c.ID] {
					allProd = false
					break
				}
			}
			if !allProd {
				continue
			}
			for _, c := range rn.Children {
				if c != nil && !reachable[c.ID] {
					reachable[c.ID] = true
					stack = append(stack, c)
				}
			}
		}
	}
	for _, n := range t.Nodes {
		n.Live = productive[n.ID] && reachable[n.ID]
		for _, rn := range n.RuleKids {
			rn.Live = n.Live
			for _, c := range rn.Children {
				if c != nil && !(productive[c.ID] && reachable[c.ID]) {
					rn.Live = false
					break
				}
			}
		}
	}
}

// Satisfiable reports whether any root survived pruning — i.e.
// whether the query predicate is satisfiable with respect to the
// constraints (has at least one consistent symbolic derivation).
func (t *Tree) Satisfiable() bool {
	for _, r := range t.Roots {
		if r.Live {
			return true
		}
	}
	return false
}

// Extract emits the rewritten program P′. The paper forms "a rule for
// every rule node in the tree"; distinct tree nodes carrying the same
// adorned rule of P1 yield the same rule, so the program is P1
// restricted to the live (predicate, adornment) pairs — each pair
// becomes a fresh predicate, order residues are attached (negated,
// splitting rules when a residue has several atoms), and a wrapper
// rule binds the original query predicate to each live root.
func (t *Tree) Extract() *ast.Program {
	res := t.Res
	base := res.Spec.Base
	out := &ast.Program{Query: res.Spec.Base[res.Spec.Query]}

	live := t.livePairs()

	// Deterministic naming: number live pairs in (pred, adornID) order.
	type pair struct {
		pred    string
		adornID int
	}
	var pairs []pair
	for pred, ids := range live {
		for id := range ids {
			pairs = append(pairs, pair{pred, id})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].pred != pairs[j].pred {
			return pairs[i].pred < pairs[j].pred
		}
		return pairs[i].adornID < pairs[j].adornID
	})
	names := map[pair]string{}
	for i, p := range pairs {
		names[p] = fmt.Sprintf("%s_q%d", base[p.pred], i)
	}

	seenRule := map[string]bool{}
	emit := func(r ast.Rule) {
		if nr, ok := rewrite.NormalizeRule(r); ok {
			if k := nr.String(); !seenRule[k] {
				seenRule[k] = true
				out.Rules = append(out.Rules, nr)
			}
		}
	}

	for _, ar := range res.Rules {
		headPair := pair{ar.HeadPred, ar.HeadAdornID}
		hName, ok := names[headPair]
		if !ok {
			continue // head pair not live
		}
		allLive := true
		for j, sub := range ar.Rule.Pos {
			if ar.ChildAdornIDs[j] < 0 {
				continue
			}
			if _, ok := names[pair{sub.Pred, ar.ChildAdornIDs[j]}]; !ok {
				allLive = false
				break
			}
		}
		if !allLive {
			continue
		}
		r := ast.Rule{
			Head: ast.NewAtom(hName, ar.Rule.Head.Args...),
			Neg:  ar.Rule.Neg,
			Cmp:  ar.Rule.Cmp,
		}
		for j, sub := range ar.Rule.Pos {
			if ar.ChildAdornIDs[j] < 0 {
				r.Pos = append(r.Pos, sub)
			} else {
				cName := names[pair{sub.Pred, ar.ChildAdornIDs[j]}]
				r.Pos = append(r.Pos, ast.NewAtom(cName, sub.Args...))
			}
		}
		// Attach order residues: each residue o1 ∧ ... ∧ ok adds the
		// disjunction ¬o1 ∨ ... ∨ ¬ok, realized by splitting the rule
		// into k variants (their union is equivalent).
		variants := []ast.Rule{r}
		for _, residue := range ar.Residues {
			ruleSet := order.NewSet(r.Cmp...)
			if alreadyRefuted(ruleSet, residue) {
				continue // some ¬oi already implied; nothing to add
			}
			var next []ast.Rule
			for _, v := range variants {
				for _, c := range residue {
					nv := v.Clone()
					nv.Cmp = append(nv.Cmp, c.Negate())
					next = append(next, nv)
				}
			}
			variants = next
		}
		for _, v := range variants {
			emit(v)
		}
	}

	// Wrapper rules for the original query predicate.
	qSpec := res.Spec.Query
	pattern := res.Spec.Pattern[qSpec]
	for id := range res.Adorn[qSpec] {
		if n, ok := names[pair{qSpec, id}]; ok {
			emit(ast.Rule{
				Head: ast.NewAtom(out.Query, pattern.Args...),
				Pos:  []ast.Atom{ast.NewAtom(n, pattern.Args...)},
			})
		}
	}

	// Residue attachment can normalize away every rule of a pair that
	// the adornment-level analysis considered live; drop rules whose
	// body references a generated predicate that ended up rule-less,
	// to a fixpoint.
	gen := map[string]bool{}
	for _, n := range names {
		gen[n] = true
	}
	for {
		heads := map[string]bool{}
		for _, r := range out.Rules {
			heads[r.Head.Pred] = true
		}
		var kept []ast.Rule
		for _, r := range out.Rules {
			ok := true
			for _, a := range r.Pos {
				if gen[a.Pred] && !heads[a.Pred] {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(out.Rules) {
			break
		}
		out.Rules = kept
	}
	return out
}

// livePairs computes liveness at (predicate, adornment) granularity:
// a pair is productive if some adorned rule with that head has all its
// IDB children productive (least fixpoint), and live if additionally
// reachable from a productive root pair.
func (t *Tree) livePairs() map[string]map[int]bool {
	res := t.Res
	productive := map[string]map[int]bool{}
	mark := func(m map[string]map[int]bool, pred string, id int) bool {
		ids, ok := m[pred]
		if !ok {
			ids = map[int]bool{}
			m[pred] = ids
		}
		if ids[id] {
			return false
		}
		ids[id] = true
		return true
	}
	has := func(m map[string]map[int]bool, pred string, id int) bool {
		return m[pred] != nil && m[pred][id]
	}
	for changed := true; changed; {
		changed = false
		for _, ar := range res.Rules {
			ok := true
			for j, sub := range ar.Rule.Pos {
				if ar.ChildAdornIDs[j] >= 0 && !has(productive, sub.Pred, ar.ChildAdornIDs[j]) {
					ok = false
					break
				}
			}
			if ok && mark(productive, ar.HeadPred, ar.HeadAdornID) {
				changed = true
			}
		}
	}
	// Reachability from productive roots.
	reach := map[string]map[int]bool{}
	type pair struct {
		pred string
		id   int
	}
	var stack []pair
	q := res.Spec.Query
	for id := range res.Adorn[q] {
		if has(productive, q, id) {
			mark(reach, q, id)
			stack = append(stack, pair{q, id})
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ri := range res.RulesByHead[p.pred][p.id] {
			ar := res.Rules[ri]
			ok := true
			for j, sub := range ar.Rule.Pos {
				if ar.ChildAdornIDs[j] >= 0 && !has(productive, sub.Pred, ar.ChildAdornIDs[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j, sub := range ar.Rule.Pos {
				if ar.ChildAdornIDs[j] >= 0 && mark(reach, sub.Pred, ar.ChildAdornIDs[j]) {
					stack = append(stack, pair{sub.Pred, ar.ChildAdornIDs[j]})
				}
			}
		}
	}
	// live = productive ∧ reachable
	out := map[string]map[int]bool{}
	for pred, ids := range reach {
		for id := range ids {
			if has(productive, pred, id) {
				mark(out, pred, id)
			}
		}
	}
	return out
}

// alreadyRefuted reports whether the rule's order atoms already imply
// the negation of some residue conjunct (the residue cannot fire).
func alreadyRefuted(ruleSet *order.Set, residue []ast.Cmp) bool {
	for _, c := range residue {
		if ruleSet.Implies(c.Negate()) {
			return true
		}
	}
	return false
}

// Stats summarizes the tree for diagnostics and experiments.
type Stats struct {
	GoalNodes  int
	RuleNodes  int
	LiveGoals  int
	LiveRules  int
	Roots      int
	LiveRoots  int
	Adornments int
}

// Stats computes summary statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	s.GoalNodes = len(t.Nodes)
	s.Roots = len(t.Roots)
	for _, n := range t.Nodes {
		if n.Live {
			s.LiveGoals++
		}
		s.RuleNodes += len(n.RuleKids)
		for _, rn := range n.RuleKids {
			if rn.Live {
				s.LiveRules++
			}
		}
	}
	for _, r := range t.Roots {
		if r.Live {
			s.LiveRoots++
		}
	}
	for _, ads := range t.Res.Adorn {
		s.Adornments += len(ads)
	}
	return s
}
