package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	sqo "repro"
)

// This file implements the lint surface: a standalone POST /v1/lint
// endpoint, and the advisory diagnostics attached to responses that
// register a program with the server (optimize, view creation). Lint
// runs semantic decision procedures, so it passes through the same
// admission semaphore and deadline plumbing as evaluations, and its
// verdicts degrade to Unknown — never to a wrong answer — when the
// deadline expires first.

type lintRequest struct {
	// Program is datalog source: rules plus an optional '?- pred.'
	// declaration (reachability pruning needs the query).
	Program string `json:"program"`
	// ICs are integrity constraints in source syntax.
	ICs string `json:"ics,omitempty"`
	// Facts are ground facts in source syntax, checked for hygiene
	// (arity, unused EDB predicates) alongside the program.
	Facts string `json:"facts,omitempty"`
	// TimeoutMS bounds the semantic checks (0 → server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type lintResponse struct {
	*sqo.LintReport
	LintMS float64 `json:"lint_ms"`
}

// handleLint lints a program against its constraints (POST /v1/lint).
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req lintRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON: %v", err)
		return
	}
	prog, err := sqo.ParseProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", "parsing program: %v", err)
		return
	}
	ics, err := sqo.ParseICs(req.ICs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", "parsing ics: %v", err)
		return
	}
	var facts []sqo.Atom
	if req.Facts != "" {
		facts, err = sqo.ParseFacts(req.Facts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse_error", "parsing facts: %v", err)
			return
		}
	}

	release, ok := s.admit()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", "too many in-flight requests (limit %d)", s.cfg.MaxInflight)
		return
	}
	defer release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	// The server's query path applies the magic-sets and
	// bounded-recursion-elimination rewrites by default, so the L6
	// bound-query and L7 bounded-recursion advisories do not apply
	// here.
	rep := sqo.Lint(ctx, prog, ics, facts, sqo.LintOptions{MagicEnabled: true, ElimEnabled: true})
	s.metrics.LintRuns.Add(1)
	s.metrics.LintFindings.Add(int64(len(rep.Findings)))
	writeJSON(w, http.StatusOK, lintResponse{
		LintReport: rep,
		LintMS:     float64(time.Since(start).Microseconds()) / 1000,
	})
}

// lintDiagnostics lints an already-validated program source for the
// advisory diagnostics attached to optimize and view-create
// responses. It never fails the request: parse errors (already
// reported by the caller's own parsing) and empty reports both yield
// nil.
func (s *Server) lintDiagnostics(ctx context.Context, programSrc, icsSrc string) []sqo.LintFinding {
	prog, err := sqo.ParseProgram(programSrc)
	if err != nil {
		return nil
	}
	ics, err := sqo.ParseICs(icsSrc)
	if err != nil {
		return nil
	}
	rep := sqo.Lint(ctx, prog, ics, nil, sqo.LintOptions{MagicEnabled: true, ElimEnabled: true})
	s.metrics.LintRuns.Add(1)
	s.metrics.LintFindings.Add(int64(len(rep.Findings)))
	if len(rep.Findings) == 0 {
		return nil
	}
	return rep.Findings
}
