package eval

import (
	"fmt"

	"repro/internal/ast"
)

// Stats reports instrumentation collected during evaluation.
type Stats struct {
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// RuleFirings counts complete rule instantiations that produced a
	// (possibly duplicate) head fact.
	RuleFirings int64
	// TuplesDerived counts distinct new IDB tuples.
	TuplesDerived int64
	// JoinProbes counts candidate tuples examined while extending
	// partial rule instantiations — the dominant cost of evaluation
	// and the quantity semantic query optimization reduces.
	JoinProbes int64
}

// Options configures evaluation.
type Options struct {
	// Seminaive selects semi-naive evaluation (the default when using
	// Eval); naive evaluation recomputes every rule over the full
	// database each round.
	Seminaive bool
	// UseIndex enables hash-index lookups on bound argument positions;
	// when false every subgoal performs a full scan (for ablation).
	UseIndex bool
	// MaxTuples aborts evaluation when the total number of derived IDB
	// tuples exceeds the bound (0 = unlimited). Guards runaway tests.
	MaxTuples int64
}

// DefaultOptions are the options used by Eval.
func DefaultOptions() Options {
	return Options{Seminaive: true, UseIndex: true}
}

// Eval evaluates the program bottom-up over the given EDB and returns
// a database containing the IDB relations (the EDB is not modified and
// not included in the result).
func Eval(p *ast.Program, edb *DB) (*DB, *Stats, error) {
	return EvalWith(p, edb, DefaultOptions())
}

// EvalWith evaluates with explicit options.
func EvalWith(p *ast.Program, edb *DB, opts Options) (*DB, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	ev := &evaluator{prog: p, edb: edb, idb: NewDB(), opts: opts, stats: &Stats{}}
	if err := ev.run(); err != nil {
		return nil, nil, err
	}
	return ev.idb, ev.stats, nil
}

type evaluator struct {
	prog  *ast.Program
	edb   *DB
	idb   *DB
	delta *DB // tuples new in the previous round (semi-naive)
	opts  Options
	stats *Stats
	idbPr map[string]bool
	arity map[string]int
	prov  *Provenance // non-nil when provenance tracking is on
}

func (ev *evaluator) run() error {
	ev.idbPr = ev.prog.IDB()
	ar, err := ev.prog.PredArity()
	if err != nil {
		return err
	}
	ev.arity = ar
	// Materialize empty IDB relations so lookups are uniform.
	for pred := range ev.idbPr {
		ev.idb.Rel(pred, ar[pred])
	}

	if ev.opts.Seminaive {
		return ev.runSeminaive()
	}
	return ev.runNaive()
}

// runNaive recomputes every rule over the full database until no new
// tuples appear.
func (ev *evaluator) runNaive() error {
	for {
		ev.stats.Iterations++
		newFacts := 0
		for _, r := range ev.prog.Rules {
			n, err := ev.applyRule(r, -1)
			if err != nil {
				return err
			}
			newFacts += n
		}
		if newFacts == 0 {
			return nil
		}
	}
}

// runSeminaive implements standard semi-naive evaluation: each round,
// every rule is evaluated once per IDB subgoal occurrence, with that
// occurrence restricted to the previous round's delta.
func (ev *evaluator) runSeminaive() error {
	// Round 0: initialization — all rules over the (empty) IDB; only
	// rules whose IDB subgoals are trivially satisfied (i.e. none) can
	// fire.
	ev.delta = NewDB()
	for pred := range ev.idbPr {
		ev.delta.Rel(pred, ev.arity[pred])
	}
	ev.stats.Iterations++
	for _, r := range ev.prog.Rules {
		if !r.IsInit(ev.idbPr) {
			continue
		}
		if _, err := ev.applyRule(r, -1); err != nil {
			return err
		}
	}
	// ev.applyRule recorded new tuples into both idb and delta.
	for {
		if ev.delta.totalLen() == 0 {
			return nil
		}
		prevDelta := ev.delta
		ev.delta = NewDB()
		for pred := range ev.idbPr {
			ev.delta.Rel(pred, ev.arity[pred])
		}
		ev.stats.Iterations++
		for _, r := range ev.prog.Rules {
			idbOccs := ev.idbOccurrences(r)
			if len(idbOccs) == 0 {
				continue // init rules never fire again
			}
			for _, occ := range idbOccs {
				if _, err := ev.applyRuleDelta(r, occ, prevDelta); err != nil {
					return err
				}
			}
		}
	}
}

func (db *DB) totalLen() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// idbOccurrences returns the indices of positive subgoals with IDB
// predicates.
func (ev *evaluator) idbOccurrences(r ast.Rule) []int {
	var out []int
	for i, a := range r.Pos {
		if ev.idbPr[a.Pred] {
			out = append(out, i)
		}
	}
	return out
}

// applyRule evaluates rule r over the full database. deltaOcc == -1
// means no delta restriction. It returns the number of new tuples.
func (ev *evaluator) applyRule(r ast.Rule, deltaOcc int) (int, error) {
	return ev.applyRuleDelta(r, deltaOcc, nil)
}

// applyRuleDelta evaluates r with subgoal occurrence deltaOcc (if
// >= 0) restricted to the delta database.
func (ev *evaluator) applyRuleDelta(r ast.Rule, deltaOcc int, delta *DB) (int, error) {
	binding := map[string]ast.Term{}
	return ev.joinFrom(r, 0, deltaOcc, delta, binding)
}

// joinFrom recursively extends the binding over positive subgoals
// starting at index i, applying comparison and negation filters as
// soon as they become ground, and emits head facts at the end.
func (ev *evaluator) joinFrom(r ast.Rule, i, deltaOcc int, delta *DB, binding map[string]ast.Term) (int, error) {
	if ev.opts.MaxTuples > 0 && ev.stats.TuplesDerived > ev.opts.MaxTuples {
		return 0, fmt.Errorf("eval: derived-tuple budget of %d exceeded", ev.opts.MaxTuples)
	}
	if i == len(r.Pos) {
		return ev.finishRule(r, binding)
	}
	sub := r.Pos[i]
	var rel *Relation
	if deltaOcc == i {
		rel = delta.Lookup(sub.Pred)
	} else if ev.idbPr[sub.Pred] {
		rel = ev.idb.Lookup(sub.Pred)
	} else {
		rel = ev.edb.Lookup(sub.Pred)
	}
	if rel == nil || rel.Len() == 0 {
		return 0, nil
	}

	// Determine bound positions under the current binding.
	var boundPos []int
	var boundVals []ast.Term
	for j, t := range sub.Args {
		switch {
		case t.IsConst():
			boundPos = append(boundPos, j)
			boundVals = append(boundVals, t)
		default:
			if v, ok := binding[t.Name]; ok {
				boundPos = append(boundPos, j)
				boundVals = append(boundVals, v)
			}
		}
	}

	var candidates []int
	indexed := ev.opts.UseIndex && len(boundPos) > 0
	if indexed {
		// NOTE: an empty result is a successful (and final) lookup —
		// it must not fall back to a full scan.
		candidates = rel.lookup(boundPos, boundVals)
	}

	total := 0
	tryTuple := func(t Tuple) error {
		ev.stats.JoinProbes++
		// Extend the binding; track which variables we bind so we can
		// undo on backtrack.
		var boundHere []string
		ok := true
		for j, argT := range sub.Args {
			if argT.IsConst() {
				if !argT.Equal(t[j]) {
					ok = false
					break
				}
				continue
			}
			if v, exists := binding[argT.Name]; exists {
				if !v.Equal(t[j]) {
					ok = false
					break
				}
				continue
			}
			binding[argT.Name] = t[j]
			boundHere = append(boundHere, argT.Name)
		}
		if ok && ev.filtersHold(r, binding) {
			n, err := ev.joinFrom(r, i+1, deltaOcc, delta, binding)
			if err != nil {
				return err
			}
			total += n
		}
		for _, v := range boundHere {
			delete(binding, v)
		}
		return nil
	}

	if indexed {
		for _, ci := range candidates {
			if err := tryTuple(rel.tuples[ci]); err != nil {
				return 0, err
			}
		}
	} else {
		for _, t := range rel.tuples {
			if err := tryTuple(t); err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// filtersHold applies every comparison and negated subgoal whose
// variables are fully bound. Unbound filters are deferred (they will
// be checked again deeper in the join; by safety they are ground by
// the time all positive subgoals are matched).
func (ev *evaluator) filtersHold(r ast.Rule, binding map[string]ast.Term) bool {
	for _, c := range r.Cmp {
		l, lok := resolve(c.Left, binding)
		rr, rok := resolve(c.Right, binding)
		if !lok || !rok {
			continue
		}
		if !ast.NewCmp(l, c.Op, rr).Eval() {
			return false
		}
	}
	for _, n := range r.Neg {
		g, ok := groundAtom(n, binding)
		if !ok {
			continue
		}
		if ev.edb.Contains(g) {
			return false
		}
	}
	return true
}

func resolve(t ast.Term, binding map[string]ast.Term) (ast.Term, bool) {
	if !t.IsVar() {
		return t, true
	}
	v, ok := binding[t.Name]
	return v, ok
}

func groundAtom(a ast.Atom, binding map[string]ast.Term) (ast.Atom, bool) {
	out := a.Clone()
	for i, t := range out.Args {
		v, ok := resolve(t, binding)
		if !ok {
			return ast.Atom{}, false
		}
		out.Args[i] = v
	}
	return out, true
}

// finishRule emits the head fact for a complete binding.
func (ev *evaluator) finishRule(r ast.Rule, binding map[string]ast.Term) (int, error) {
	// All filters are ground now; re-check (cheap, and covers filters
	// that never became ground mid-join).
	if !ev.filtersHold(r, binding) {
		return 0, nil
	}
	head, ok := groundAtom(r.Head, binding)
	if !ok {
		return 0, fmt.Errorf("eval: unsafe rule slipped through validation: %s", r)
	}
	ev.stats.RuleFirings++
	if ev.idb.AddFact(head) {
		ev.stats.TuplesDerived++
		if ev.delta != nil {
			ev.delta.AddFact(head)
		}
		if ev.prov != nil {
			inst := ast.Rule{Head: head}
			for _, a := range r.Pos {
				g, _ := groundAtom(a, binding)
				inst.Pos = append(inst.Pos, g)
			}
			for _, a := range r.Neg {
				g, _ := groundAtom(a, binding)
				inst.Neg = append(inst.Neg, g)
			}
			ev.prov.steps[head.Key()] = provStep{rule: inst, body: inst.Pos}
		}
		return 1, nil
	}
	return 0, nil
}

// Query evaluates the program and returns the tuples of its query
// predicate.
func Query(p *ast.Program, edb *DB) ([]Tuple, *Stats, error) {
	idb, stats, err := Eval(p, edb)
	if err != nil {
		return nil, nil, err
	}
	r := idb.Lookup(p.Query)
	if r == nil {
		return nil, stats, nil
	}
	return r.Tuples(), stats, nil
}
