// Package adorn implements the bottom-up phase of the query-tree
// algorithm of Section 4.1: the computation of adornments — sets of
// triplets (I, σ, s) recording the partial mappings of integrity
// constraints into symbolic derivation subtrees — and the adorned rule
// set P1 with full provenance for the top-down phase (package qtree).
package adorn

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/unify"
)

// SpecProgram is a pattern-specialized program: every IDB predicate is
// split per usage pattern (equalities among arguments and embedded
// constants), so that adornments attach to (predicate, pattern) pairs.
// The paper's footnote 1 ("during the construction of t some variables
// of the root may be equated") is realized here once, up front.
type SpecProgram struct {
	// Prog holds the specialized rules; IDB predicate names are of the
	// form base#k.
	Prog *ast.Program
	// Base maps a specialized predicate to its original name.
	Base map[string]string
	// Pattern maps a specialized predicate to its canonical goal atom
	// (variables V0, V1, ... with the pattern's equalities/constants).
	Pattern map[string]ast.Atom
	// Query is the specialized query predicate (all-distinct pattern).
	Query string
}

// Specialize splits the program's IDB predicates by usage pattern,
// starting from the query predicate with an all-distinct goal pattern.
// Rules whose heads do not unify with a pattern in which they are used
// are dropped for that pattern.
func Specialize(p *ast.Program) (*SpecProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Query == "" {
		return nil, fmt.Errorf("adorn: program has no query predicate")
	}
	idb := p.IDB()
	ar, err := p.PredArity()
	if err != nil {
		return nil, err
	}

	sp := &SpecProgram{
		Prog:    &ast.Program{},
		Base:    map[string]string{},
		Pattern: map[string]ast.Atom{},
	}
	// Registry: base pred + pattern key -> specialized name.
	reg := map[string]string{}
	counter := map[string]int{}
	var queue []string // specialized names whose rules are not yet built

	intern := func(pred string, pattern ast.Atom) string {
		key := pred + "\x00" + pattern.PatternKey()
		if name, ok := reg[key]; ok {
			return name
		}
		name := fmt.Sprintf("%s_s%d", pred, counter[pred])
		counter[pred]++
		reg[key] = name
		sp.Base[name] = pred
		sp.Pattern[name] = pattern
		queue = append(queue, name)
		return name
	}

	// Root pattern: all-distinct variables.
	rootArgs := make([]ast.Term, ar[p.Query])
	for i := range rootArgs {
		rootArgs[i] = ast.V(fmt.Sprintf("V%d", i))
	}
	sp.Query = intern(p.Query, ast.NewAtom(p.Query, rootArgs...))

	var fresh ast.Freshener
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		base := sp.Base[name]
		pattern := sp.Pattern[name]
		for _, r := range p.RulesFor(base) {
			// Rename the rule apart from the pattern.
			rr := ast.RenameRule(r, fresh.Next())
			s, ok := unify.Unify(rr.Head, pattern.Clone(), nil)
			if !ok {
				continue // rule cannot produce this pattern
			}
			inst := s.ApplyRule(rr)
			// Rebuild with specialized predicate names for IDB subgoals.
			nr := ast.Rule{Head: inst.Head.Clone(), Neg: inst.Neg, Cmp: inst.Cmp}
			nr.Head.Pred = name
			for _, sub := range inst.Pos {
				if !idb[sub.Pred] {
					nr.Pos = append(nr.Pos, sub)
					continue
				}
				canon, _ := ast.CanonicalizeAtom(sub)
				childName := intern(sub.Pred, canon)
				child := sub.Clone()
				child.Pred = childName
				nr.Pos = append(nr.Pos, child)
			}
			sp.Prog.Rules = append(sp.Prog.Rules, nr)
		}
	}
	sp.Prog.Query = sp.Query
	return sp, nil
}

// SortedSpecPreds returns the specialized predicate names, sorted.
func (sp *SpecProgram) SortedSpecPreds() []string {
	out := make([]string, 0, len(sp.Base))
	for name := range sp.Base {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
