// sqod — the semantic query optimization daemon.
//
// A long-running HTTP/JSON service around the Levy–Sagiv optimizer:
// register fact datasets, submit programs with integrity constraints,
// and run optimized queries. Rewrites are cached (LRU + singleflight)
// so their cost amortizes across requests; evaluations are bounded by
// admission control and per-request deadlines that genuinely cancel
// the fixpoint; /metrics exposes live counters in Prometheus text
// format.
//
// Datasets are mutable: facts can be added and retracted after
// registration, and materialized views attached to a dataset are kept
// consistent through those updates by incremental maintenance
// (counting for non-recursive strata, delete-rederive for recursive
// ones) instead of re-evaluation.
//
// With -data-dir the daemon is durable: every dataset, fact, and view
// mutation is appended to a write-ahead log (fsync policy selected by
// -fsync) before it is acknowledged, the state is periodically
// checkpointed into an immutable segment file (-checkpoint-every), and
// on startup the newest checkpoint is loaded and the WAL tail replayed
// — registered views are repaired incrementally through the same
// counting/delete-rederive machinery that maintains them live. A
// graceful shutdown writes a final checkpoint so the next start
// replays an empty tail. Without -data-dir nothing changes: the daemon
// is purely in-memory, exactly as before.
//
// Usage:
//
//	sqod [-addr :8351] [-max-inflight n] [-cache-size n]
//	     [-timeout 30s] [-max-timeout 5m] [-update-timeout 30s]
//	     [-max-tuples n] [-workers n] [-join-order greedy|cost|adaptive]
//	     [-data-dir path] [-fsync always|interval|never]
//	     [-fsync-interval 100ms] [-checkpoint-every 4096]
//	     [-drain 30s] [-log text|json] [-pprof=false]
//
// Endpoints:
//
//	PUT    /v1/datasets/{name}               register or replace facts (datalog source body)
//	POST   /v1/datasets/{name}               register facts; 409 if the name is taken
//	DELETE /v1/datasets/{name}               unregister (drops attached views)
//	GET    /v1/datasets                      list datasets (tuple counts, last-modified, views)
//	POST   /v1/datasets/{name}/facts         insert facts (datalog source body)
//	DELETE /v1/datasets/{name}/facts         retract facts (datalog source body)
//	POST   /v1/datasets/{name}/views/{view}  materialize {program, ics, ...} incrementally
//	GET    /v1/datasets/{name}/views/{view}  current answers of a live view
//	DELETE /v1/datasets/{name}/views/{view}  drop a view
//	POST   /v1/optimize                      {program, ics} → rewritten program
//	POST   /v1/query                         {program, ics, dataset, timeout_ms, ...}
//	GET    /metrics                          Prometheus text metrics
//	GET    /healthz                          liveness
//	GET    /debug/pprof/                     runtime profiles (disable with -pprof=false)
//
// On SIGTERM or SIGINT the daemon stops accepting connections, drains
// in-flight requests (up to -drain), and exits 0.
//
// # Cluster mode
//
// With -coordinator and -peers, sqod serves no data itself and instead
// fronts a fleet of worker sqods: datasets are placed on workers by
// rendezvous hashing over the dataset name, single-dataset operations
// are proxied to the owner, and queries with "datasets": [...] are
// scattered to each dataset's owner and gathered into one response
// with an explicit degraded/failed_peers contract when workers are
// unreachable (bounded, jittered retries first). Worker health is
// probed via /readyz, which workers fail until WAL recovery completes
// (-async-restore recovers in the background so /healthz answers
// immediately).
//
//	sqod -coordinator -peers=http://w1:8351,http://w2:8351 \
//	     [-peer-timeout 10s] [-peer-retries 2] [-peer-backoff 50ms]
//	     [-probe-interval 2s] [-addr :8350]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8351", "listen address")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent evaluations (0 = 2x CPUs)")
	cacheSize := flag.Int("cache-size", 128, "optimized-program LRU cache entries")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")
	updateTimeout := flag.Duration("update-timeout", 0, "per-update deadline for dataset mutations incl. view maintenance (0 = -timeout)")
	maxTuples := flag.Int64("max-tuples", 0, "per-query derived-tuple budget (0 = unlimited)")
	workers := flag.Int("workers", 0, "evaluation workers (0 = one per CPU)")
	joinOrder := flag.String("join-order", "", "default join-order policy: greedy, cost, or adaptive")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory, no persistence)")
	fsyncPolicy := flag.String("fsync", "always", "WAL durability: always, interval, or never (with -data-dir)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync=interval")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "checkpoint after this many WAL records (0 = only at shutdown)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window")
	logFormat := flag.String("log", "text", "log format: text or json")
	enablePprof := flag.Bool("pprof", true, "serve net/http/pprof profiles under /debug/pprof/")
	asyncRestore := flag.Bool("async-restore", false, "recover durable state in the background; /readyz reports 503 until done")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator over -peers instead of serving data")
	peersFlag := flag.String("peers", "", "comma-separated worker base URLs (coordinator mode)")
	peerTimeout := flag.Duration("peer-timeout", 10*time.Second, "per-attempt deadline for upstream worker requests")
	peerRetries := flag.Int("peer-retries", 2, "retries after a retryable upstream failure (transport error, 429/502/503/504)")
	peerBackoff := flag.Duration("peer-backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "worker /readyz probe period")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if *coordinator {
		if *dataDir != "" {
			logger.Error("-coordinator serves no data; -data-dir belongs on workers")
			os.Exit(2)
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Peers:         strings.Split(*peersFlag, ","),
			PeerTimeout:   *peerTimeout,
			Retries:       *peerRetries,
			RetryBackoff:  *peerBackoff,
			ProbeInterval: *probeInterval,
			Logger:        logger,
		})
		if err != nil {
			logger.Error("bad coordinator config", "err", err)
			os.Exit(2)
		}
		coord.Start()
		logger.Info("coordinator mode", "peers", coord.Peers())
		serve(logger, *addr, coord.Handler(), *drain, func() error {
			coord.Close()
			return nil
		})
		return
	}

	// Durable mode: open (and recover) the store before the server
	// exists, so New can replay the recovered state into datasets and
	// views ahead of the first request.
	var st *store.Store
	var recovered *store.Recovered
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			logger.Error("bad -fsync", "err", err)
			os.Exit(2)
		}
		openStart := time.Now()
		st, recovered, err = store.Open(*dataDir, store.Options{
			Fsync:           policy,
			FsyncInterval:   *fsyncInterval,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			logger.Error("opening store", "data_dir", *dataDir, "err", err)
			os.Exit(1)
		}
		logger.Info("store opened",
			"data_dir", *dataDir,
			"fsync", policy.String(),
			"datasets", len(recovered.Datasets),
			"wal_records", recovered.WALRecords,
			"wal_bytes", recovered.WALBytes,
			"wal_truncated", recovered.Truncated,
			"open_ms", float64(time.Since(openStart).Microseconds())/1000,
		)
	}

	srv := server.New(server.Config{
		MaxInflight:    *maxInflight,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		UpdateTimeout:  *updateTimeout,
		MaxTuples:      *maxTuples,
		Workers:        *workers,
		JoinOrder:      *joinOrder,
		Logger:         logger,
		EnablePprof:    *enablePprof,
		Store:          st,
		Recovered:      recovered,
		AsyncRestore:   *asyncRestore,
	})

	serve(logger, *addr, srv.Handler(), *drain, func() error {
		// All mutations drained; flush a final checkpoint so the next
		// start opens a segment with an empty WAL tail instead of
		// replaying the whole log.
		if st == nil {
			return nil
		}
		ckptStart := time.Now()
		if err := st.Checkpoint(); err != nil {
			_ = st.Close()
			return fmt.Errorf("final checkpoint: %w", err)
		}
		if err := st.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
		logger.Info("final checkpoint written",
			"checkpoint_ms", float64(time.Since(ckptStart).Microseconds())/1000)
		return nil
	})
}

// serve runs the HTTP server until SIGTERM/SIGINT, then drains: the
// listener closes, new connections are refused, and in-flight requests
// run to completion (their own deadlines still apply) before shutdown
// runs and the process exits 0.
func serve(logger *slog.Logger, addr string, h http.Handler, drain time.Duration, shutdown func() error) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down: draining in-flight requests", "drain", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete", "err", err)
		_ = httpSrv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener error", "err", err)
		os.Exit(1)
	}
	if shutdown != nil {
		if err := shutdown(); err != nil {
			logger.Error("shutdown hook failed", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("drained cleanly; exiting")
	fmt.Fprintln(os.Stderr, "sqod: clean shutdown")
}
