package unify

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func randomAtom(rng *rand.Rand, pred string, vars []string, consts []ast.Term, arity int) ast.Atom {
	args := make([]ast.Term, arity)
	for i := range args {
		if rng.Intn(4) == 0 {
			args[i] = consts[rng.Intn(len(consts))]
		} else {
			args[i] = ast.V(vars[rng.Intn(len(vars))])
		}
	}
	return ast.NewAtom(pred, args...)
}

// Property: a unifier really unifies — applying the substitution to
// both atoms yields structurally equal atoms, and the result is most
// general in the weak sense that any ground instance of both atoms
// factors through it (checked by idempotence of re-unification).
func TestUnifyProducesUnifier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars1 := []string{"X", "Y", "Z"}
	vars2 := []string{"U", "V", "W"}
	consts := []ast.Term{ast.N(1), ast.N(2), ast.S("a")}
	for trial := 0; trial < 500; trial++ {
		a := randomAtom(rng, "p", vars1, consts, 3)
		b := randomAtom(rng, "p", vars2, consts, 3)
		s, ok := Unify(a, b, nil)
		if !ok {
			// Unification fails only on clashing constants; verify at
			// least one position clashes under every var assignment —
			// spot check: identical var-free positions must not clash.
			for i := range a.Args {
				if a.Args[i].IsConst() && b.Args[i].IsConst() && !a.Args[i].Equal(b.Args[i]) {
					ok = true // legitimate failure witness
				}
			}
			if !ok {
				// Could still fail via var chains (X bound to two
				// different constants); accept but verify by brute
				// force is overkill — just continue.
				continue
			}
			continue
		}
		ga, gb := s.ApplyAtom(a), s.ApplyAtom(b)
		if !ga.Equal(gb) {
			t.Fatalf("trial %d: unifier does not unify: %s vs %s (σ=%s)", trial, ga, gb, s)
		}
		// Idempotence: re-unifying the unified atoms succeeds with no
		// new constant bindings needed.
		if _, ok := Unify(ga, gb, nil); !ok {
			t.Fatalf("trial %d: unified atoms do not re-unify", trial)
		}
	}
}

// Property: every substitution returned by Homomorphisms is a genuine
// homomorphism — each source atom's image is present in the target.
func TestHomomorphismsAreHomomorphisms(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	vars := []string{"X", "Y", "Z"}
	consts := []ast.Term{ast.S("a"), ast.S("b"), ast.S("c")}
	for trial := 0; trial < 300; trial++ {
		var src, dst []ast.Atom
		for i := 0; i < 1+rng.Intn(3); i++ {
			src = append(src, randomAtom(rng, "e", vars, consts, 2))
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			// Ground targets.
			dst = append(dst, ast.NewAtom("e",
				consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]))
		}
		count := 0
		Homomorphisms(src, dst, func(h Subst) bool {
			count++
			for _, a := range src {
				img := h.ApplyAtom(a)
				found := false
				for _, d := range dst {
					if img.Equal(d) {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: image %s of %s not in target", trial, img, a)
				}
			}
			return true
		})
		// Cross-check existence against brute-force assignment search.
		if (count > 0) != bruteHom(src, dst, consts) {
			t.Fatalf("trial %d: existence disagrees with brute force (count=%d)", trial, count)
		}
	}
}

// bruteHom exhaustively assigns constants to source variables.
func bruteHom(src, dst []ast.Atom, consts []ast.Term) bool {
	var vars []string
	for _, a := range src {
		vars = a.Vars(vars)
	}
	assign := Subst{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			for _, a := range src {
				img := assign.ApplyAtom(a)
				ok := false
				for _, d := range dst {
					if img.Equal(d) {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		for _, c := range consts {
			assign[vars[i]] = c
			if rec(i + 1) {
				return true
			}
			delete(assign, vars[i])
		}
		return false
	}
	return rec(0)
}
