package workload_test

// Differential property over the program generator: every generated
// program must parse, survive the full optimizer pipeline (which
// exercises adornment against the generated constraints), and
// evaluate to identical answers under the legacy and compiled engines
// at 1 and 4 workers. Since the generated facts satisfy the generated
// constraints by construction, the optimized program must also agree
// with the original on them.

import (
	"reflect"
	"sort"
	"testing"

	sqo "repro"
	"repro/internal/workload"
)

func answers(t *testing.T, p *sqo.Program, db *sqo.DB, opts sqo.EvalOptions) []string {
	t.Helper()
	tuples, _, err := sqo.QueryWith(p, db, opts)
	if err != nil {
		t.Fatalf("evaluating %q: %v", p.Query, err)
	}
	out := make([]string, len(tuples))
	for i, tp := range tuples {
		out[i] = tp.String()
	}
	sort.Strings(out)
	return out
}

func TestRandomProgramDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		progSrc, icsSrc, facts := workload.RandomProgram(seed)

		prog, err := sqo.ParseProgram(progSrc)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, progSrc)
		}
		ics, err := sqo.ParseICs(icsSrc)
		if err != nil {
			t.Fatalf("seed %d: generated ics do not parse: %v", seed, err)
		}
		db := sqo.NewDBFrom(facts)

		var want []string
		for _, compile := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				opts := sqo.DefaultEvalOptions()
				opts.CompilePlans = compile
				opts.Workers = workers
				got := answers(t, prog, db, opts)
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: engines disagree (compile=%v workers=%d):\n got %v\nwant %v\nprogram:\n%s",
						seed, compile, workers, got, want, progSrc)
				}
			}
		}

		// The rewrite must go through (adornment included) and preserve
		// answers on a constraint-satisfying database.
		res, err := sqo.Optimize(prog, ics)
		if err != nil {
			t.Fatalf("seed %d: optimize failed: %v\nprogram:\n%s", seed, err, progSrc)
		}
		if !res.Satisfiable {
			if len(want) != 0 {
				t.Fatalf("seed %d: program declared unsatisfiable but answers %v", seed, want)
			}
			continue
		}
		got := answers(t, res.Program, db, sqo.DefaultEvalOptions())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: optimized program changes answers:\n got %v\nwant %v\noriginal:\n%s\nrewritten:\n%s",
				seed, got, want, progSrc, sqo.FormatProgram(res.Program))
		}
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	p1, i1, f1 := workload.RandomProgram(7)
	p2, i2, f2 := workload.RandomProgram(7)
	if p1 != p2 || i1 != i2 || len(f1) != len(f2) {
		t.Fatal("same seed must generate the same workload")
	}
	p3, _, _ := workload.RandomProgram(8)
	if p1 == p3 {
		t.Fatal("different seeds should generate different programs")
	}
}
