package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/bounded"
	"repro/internal/contain"
	"repro/internal/emptiness"
	"repro/internal/magic"
)

// hygiene is L5: structural checks that gate the semantic ones. It
// reports whether the program is structurally sound (no Error-severity
// hygiene finding), so Run knows whether L1–L3 may assume consistent
// arities, safe rules, and IDB-free constraint bodies.
func (l *linter) hygiene() bool {
	ok := true

	// Arity consistency across rules, constraints, and facts: the
	// first sighting of a predicate fixes its arity; later atoms that
	// disagree are flagged where they occur.
	type sighting struct {
		arity int
		at    ast.Pos
	}
	seen := map[string]sighting{}
	note := func(a ast.Atom) {
		prev, found := seen[a.Pred]
		if !found {
			seen[a.Pred] = sighting{arity: a.Arity(), at: a.At}
			return
		}
		if prev.arity != a.Arity() {
			ok = false
			l.addAt("L5", "arity-mismatch", Error, a.At,
				fmt.Sprintf("predicate %s used with arity %d here but arity %d at %s",
					a.Pred, a.Arity(), prev.arity, prev.at))
		}
	}
	for _, r := range l.p.Rules {
		note(r.Head)
		for _, a := range r.Pos {
			note(a)
		}
		for _, a := range r.Neg {
			note(a)
		}
	}
	for _, ic := range l.ics {
		for _, a := range ic.Pos {
			note(a)
		}
		for _, a := range ic.Neg {
			note(a)
		}
	}
	for _, f := range l.facts {
		note(f)
	}

	// Safety and singleton variables, per rule. Singleton analysis is
	// skipped for unsafe rules: the unbound variable is the real
	// defect.
	for _, r := range l.p.Rules {
		if err := r.Safe(); err != nil {
			ok = false
			l.addAt("L5", "unsafe-rule", Error, r.At, err.Error())
			continue
		}
		if vs := singletonVars(r); len(vs) > 0 {
			l.addAt("L5", "singleton-var", Warning, r.At,
				fmt.Sprintf("variable%s %s occur%s only once in this rule",
					plural(len(vs)), strings.Join(vs, ", "), singularVerb(len(vs))))
		}
		for _, a := range r.Neg {
			if l.idb[a.Pred] {
				ok = false
				l.addAt("L5", "idb-negated", Error, a.At,
					fmt.Sprintf("negated subgoal !%s applies negation to IDB predicate %s; only EDB predicates may be negated", a, a.Pred))
			}
		}
	}

	// Constraints must not mention IDB predicates — both a
	// well-formedness rule of the paper's setting and the premise that
	// makes the L1/L2 verdicts on non-initialization rules sound
	// (frozen IDB atoms are inert in the chase only because no
	// constraint can fire on them).
	for _, ic := range l.ics {
		for _, a := range append(append([]ast.Atom{}, ic.Pos...), ic.Neg...) {
			if l.idb[a.Pred] {
				ok = false
				l.addAt("L5", "idb-in-ic", Error, a.At,
					fmt.Sprintf("constraint mentions IDB predicate %s; constraint bodies must be over EDB predicates only", a.Pred))
			}
		}
	}

	// Unused EDB predicates: mentioned by the facts or the constraints
	// but never read by any rule body.
	referenced := map[string]bool{}
	for _, r := range l.p.Rules {
		for _, a := range r.Pos {
			referenced[a.Pred] = true
		}
		for _, a := range r.Neg {
			referenced[a.Pred] = true
		}
	}
	unusedAt := map[string]ast.Pos{}
	var unusedOrder []string
	noteUnused := func(a ast.Atom) {
		if l.idb[a.Pred] || referenced[a.Pred] {
			return
		}
		if _, dup := unusedAt[a.Pred]; dup {
			return
		}
		unusedAt[a.Pred] = a.At
		unusedOrder = append(unusedOrder, a.Pred)
	}
	for _, f := range l.facts {
		noteUnused(f)
	}
	for _, ic := range l.ics {
		for _, a := range ic.Pos {
			noteUnused(a)
		}
		for _, a := range ic.Neg {
			noteUnused(a)
		}
	}
	for _, pred := range unusedOrder {
		l.addAt("L5", "unused-edb", Info, unusedAt[pred],
			fmt.Sprintf("EDB predicate %s is never read by any rule body", pred))
	}
	return ok
}

// guardrails is L4: flag constraint features that move the semantic
// questions beyond the decidable fragments. Non-local order atoms make
// satisfiability undecidable (Theorem 5.3); negated EDB atoms make it
// at best semi-decidable, and non-local ones undecidable
// (Theorem 5.4).
func (l *linter) guardrails() {
	for _, ic := range l.ics {
		for _, c := range ic.Cmp {
			if !localIn(ic, c.Vars(nil)) {
				l.addAt("L4", "nonlocal-order", Warning, ic.At,
					fmt.Sprintf("order atom %s is not local (no positive atom of the constraint contains all its variables); optimization with non-local order atoms is undecidable (Theorem 5.3)", c))
			}
		}
		sawLocalNeg := false
		for _, n := range ic.Neg {
			if !localIn(ic, n.Vars(nil)) {
				l.addAt("L4", "nonlocal-negation", Warning, n.At,
					fmt.Sprintf("negated atom !%s is not local (no positive atom of the constraint contains all its variables); optimization with non-local negation is undecidable (Theorem 5.4)", n))
			} else {
				sawLocalNeg = true
			}
		}
		if sawLocalNeg {
			l.addAt("L4", "neg-edb-ic", Info, ic.At,
				"constraint has negated EDB atoms; satisfiability checks fall back to a bounded chase and may report unknown (Theorem 5.4)")
		}
	}
}

// localIn reports whether some positive atom of the constraint
// contains all the given variables (the locality condition of
// Section 4.2).
func localIn(ic ast.IC, vars []string) bool {
	for _, a := range ic.Pos {
		all := true
		for _, v := range vars {
			if !a.HasVar(v) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// unsatRules is L1: per-rule body satisfiability w.r.t. the
// constraints. Unsatisfiable is sound even for rules with IDB
// subgoals — hygiene already guaranteed the constraints never mention
// IDB predicates, so the frozen IDB atoms are inert in the chase and
// act as an arbitrary nonempty interpretation.
func (l *linter) unsatRules() {
	l.sat = make([]emptiness.Verdict, len(l.p.Rules))
	l.flagged = map[int]bool{}
	for i, r := range l.p.Rules {
		if l.ctx.Err() != nil {
			// Leave the remaining verdicts at their zero value, which
			// is Unknown — honest, and L2 treats Unknown as possibly
			// satisfiable.
			return
		}
		v, err := emptiness.RuleSatisfiableCtx(l.ctx, r, l.ics, l.opts.Emptiness)
		l.sat[i] = v
		switch v {
		case emptiness.Unsatisfiable:
			l.flagged[i] = true
			l.addAt("L1", "unsat-body", Error, r.At,
				fmt.Sprintf("rule body is unsatisfiable with respect to the integrity constraints; %s can never produce a fact and the rule may be deleted", r.Head.Pred))
		case emptiness.Unknown:
			msg := "satisfiability of the rule body could not be decided within budget"
			if err != nil {
				msg += " (" + err.Error() + ")"
			}
			l.addAt("L1", "unsat-unknown", Info, r.At, msg)
		}
	}
}

// emptyAndDead is L2: the initialization-rule emptiness argument of
// Proposition 5.2 lifted to a per-predicate fixpoint, plus query-tree
// style reachability pruning.
//
// A predicate is possibly nonempty iff some rule for it has a body
// that is not provably unsatisfiable and reads only possibly-nonempty
// IDB predicates. Unknown verdicts count as satisfiable, so a
// predicate left outside the fixpoint is provably empty on every
// database consistent with the constraints (by induction on a minimal
// derivation: its first step would use a rule whose IDB subgoals are
// all nonempty, and every such rule is unsatisfiable).
func (l *linter) emptyAndDead() {
	possibly := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for i, r := range l.p.Rules {
			if possibly[r.Head.Pred] || l.sat[i] == emptiness.Unsatisfiable {
				continue
			}
			fires := true
			for _, a := range r.Pos {
				if l.idb[a.Pred] && !possibly[a.Pred] {
					fires = false
					break
				}
			}
			if fires {
				possibly[r.Head.Pred] = true
				changed = true
			}
		}
	}

	// Empty predicates, one finding per predicate at its first rule.
	reportedEmpty := map[string]bool{}
	for _, r := range l.p.Rules {
		pred := r.Head.Pred
		if possibly[pred] || reportedEmpty[pred] {
			continue
		}
		reportedEmpty[pred] = true
		if pred == l.p.Query {
			l.addAt("L2", "query-empty", Error, r.At,
				fmt.Sprintf("query predicate %s is empty on every database consistent with the constraints; the query always returns no answers (Proposition 5.2)", pred))
		} else {
			l.addAt("L2", "empty-predicate", Warning, r.At,
				fmt.Sprintf("IDB predicate %s derives no facts on any database consistent with the constraints (Proposition 5.2)", pred))
		}
	}
	if l.p.Query != "" && !l.idb[l.p.Query] {
		l.add(Finding{Check: "L2", ID: "query-empty", Severity: Error,
			Message: fmt.Sprintf("query predicate %s has no rules and denotes the empty relation", l.p.Query)})
	}

	// Dead rules: not themselves unsatisfiable, but reading a provably
	// empty IDB predicate, so they can never fire and deleting them
	// changes no answers at all.
	for i, r := range l.p.Rules {
		if l.flagged[i] {
			continue
		}
		for _, a := range r.Pos {
			if l.idb[a.Pred] && !possibly[a.Pred] {
				l.flagged[i] = true
				l.addAt("L2", "dead-rule", Warning, r.At,
					fmt.Sprintf("rule reads IDB predicate %s, which is provably empty; the rule can never fire and may be deleted", a.Pred))
				break
			}
		}
	}

	// Unreachable rules: predicates the query predicate does not
	// depend on, directly or transitively. Deleting them preserves the
	// query answers (though not the other IDB relations), so the
	// finding is advisory.
	if l.p.Query == "" || !l.idb[l.p.Query] {
		return
	}
	reach := map[string]bool{l.p.Query: true}
	for changed := true; changed; {
		changed = false
		for _, r := range l.p.Rules {
			if !reach[r.Head.Pred] {
				continue
			}
			for _, a := range r.Pos {
				if l.idb[a.Pred] && !reach[a.Pred] {
					reach[a.Pred] = true
					changed = true
				}
			}
		}
	}
	for i, r := range l.p.Rules {
		if l.flagged[i] || reach[r.Head.Pred] {
			continue
		}
		l.addAt("L2", "unreachable-rule", Info, r.At,
			fmt.Sprintf("rule defines %s, which the query %s does not depend on; deleting it does not change the query answers", r.Head.Pred, l.p.Query))
	}
}

// subsumedRules is L3: pairwise containment between sibling rules for
// the same head predicate, using the sound order-aware containment
// test. A rule contained in an unflagged sibling is redundant: every
// fact it derives, the sibling derives too. The subsumer must itself
// be unflagged — otherwise two equivalent rules would both be reported
// deletable, which is unsound to act on.
func (l *linter) subsumedRules() {
	byPred := map[string][]int{}
	var preds []string
	for i, r := range l.p.Rules {
		if _, ok := byPred[r.Head.Pred]; !ok {
			preds = append(preds, r.Head.Pred)
		}
		byPred[r.Head.Pred] = append(byPred[r.Head.Pred], i)
	}
	sort.Strings(preds)
	subsumed := map[int]bool{}
	eligible := func(i int) bool {
		r := l.p.Rules[i]
		return !r.HasNeg() && len(r.Pos)+len(r.Cmp) <= l.opts.MaxSubsumptionAtoms
	}
	for _, pred := range preds {
		idxs := byPred[pred]
		if len(idxs) < 2 || len(idxs) > l.opts.MaxSubsumptionRules {
			continue
		}
		// Walk candidates from last to first so that among duplicated
		// rules the earliest survives and the later copies are the
		// ones reported.
		for k := len(idxs) - 1; k >= 0; k-- {
			i := idxs[k]
			if l.ctx.Err() != nil {
				return
			}
			if l.flagged[i] || !eligible(i) {
				continue
			}
			for _, j := range idxs {
				if j == i || l.flagged[j] || subsumed[j] || !eligible(j) {
					continue
				}
				ok, err := contain.ContainedOrder(l.p.Rules[i], l.p.Rules[j])
				if err != nil || !ok {
					continue
				}
				subsumed[i] = true
				l.flagged[i] = true
				l.addAt("L3", "subsumed-rule", Warning, l.p.Rules[i].At,
					fmt.Sprintf("rule is subsumed by the rule for %s at %s and may be deleted", pred, l.p.Rules[j].At))
				break
			}
		}
	}
}

// goalDirected is L6: goal-directed evaluation advisories. A goal that
// binds arguments — a point query like '?- path(a, Y).' — asks for a
// fraction of the query relation, yet bottom-up evaluation materializes
// all of it and filters afterwards. When the magic-sets rewrite applies
// and the caller has not declared it enabled, the check warns, citing
// the adornment that would drive the demand propagation. When the goal
// binds arguments but the rewrite is structurally inapplicable, the
// check warns regardless of configuration: even with magic enabled the
// engine falls back to full bottom-up evaluation.
func (l *linter) goalDirected() {
	if len(l.p.Goal) == 0 {
		return
	}
	pat := magic.GoalPattern(l.p.Goal)
	if !pat.HasBound() {
		return
	}
	goal := l.p.GoalAtom()
	adorned := magic.AdornedName(l.p.Query, pat)
	if _, err := magic.Rewrite(l.p); err != nil {
		l.add(Finding{Check: "L6", ID: "bound-query-no-magic", Severity: Warning,
			Message: fmt.Sprintf("query %s binds %d of %d argument(s) (adornment %s) but the magic-sets rewrite does not apply (%v); the full %s relation is materialized and the goal filtered after the fact",
				goal, len(pat.Bound()), len(pat), adorned, err, l.p.Query)})
		return
	}
	if l.opts.MagicEnabled {
		return
	}
	l.add(Finding{Check: "L6", ID: "bound-query-no-magic", Severity: Warning,
		Message: fmt.Sprintf("query %s binds %d of %d argument(s) (adornment %s) but is evaluated without the magic-sets rewrite; bottom-up evaluation materializes the full %s relation to answer a point query — enable goal-directed evaluation (sqoc -magic auto, sqod's \"magic\" knob, or eval Options.Magic)",
			goal, len(pat.Bound()), len(pat), adorned, l.p.Query)})
}

// boundedRecursion is L7: bounded-recursion advisories. The
// boundedness analyzer's verdict per self-recursive predicate is
// three-valued, and each value gets its own finding:
//
//   - bounded: the k-fold unfolding is contained in the (k-1)-fold
//     unfolding, so the fixpoint is equivalent to a flat union of
//     conjunctive queries. A Warning cites the witness depth and
//     disjunct count — unless the caller declared elimination enabled
//     (eval Elim mode "auto" or "on"), in which case the evaluator
//     compiles the recursion away and there is nothing to advise.
//   - not-bounded-within-budget: the unfolding ladder ran to its
//     depth/size budget without a containment witness. An Info, so a
//     genuinely recursive program (transitive closure) is never
//     misreported as a defect but the exhausted budget stays visible.
//   - unknown: the predicate is outside the procedure's scope (mutual
//     recursion, negated subgoals). An Info citing the reason.
func (l *linter) boundedRecursion() {
	ruleAt := func(pred string) ast.Pos {
		for _, r := range l.p.Rules {
			if r.Head.Pred == pred {
				return r.At
			}
		}
		return ast.Pos{}
	}
	for _, a := range bounded.Analyze(l.p, bounded.Options{}) {
		switch a.Verdict {
		case bounded.Bounded:
			if l.opts.ElimEnabled {
				continue
			}
			l.addAt("L7", "bounded-recursion", Warning, ruleAt(a.Pred),
				fmt.Sprintf("bounded recursive predicate %s — recursion is eliminable: the %d-fold unfolding adds nothing, so the fixpoint equals a union of %d conjunctive queries; enable elimination (sqoc -elim auto, sqod's \"elim\" knob, or eval Options.Elim) to evaluate it as flat joins",
					a.Pred, a.Depth, len(a.Disjuncts)))
		case bounded.NotWithinBudget:
			l.addAt("L7", "boundedness-budget", Info, ruleAt(a.Pred),
				fmt.Sprintf("recursion of %s is not provably bounded within budget (%s); the fixpoint is evaluated as written",
					a.Pred, a.Reason))
		default:
			l.addAt("L7", "boundedness-unknown", Info, ruleAt(a.Pred),
				fmt.Sprintf("boundedness of %s is unknown: %s", a.Pred, a.Reason))
		}
	}
}

// singletonVars returns, in first-occurrence order, the variables that
// occur exactly once across the rule's head and body.
func singletonVars(r ast.Rule) []string {
	counts := map[string]int{}
	var ord []string
	note := func(t ast.Term) {
		if !t.IsVar() {
			return
		}
		if counts[t.Name] == 0 {
			ord = append(ord, t.Name)
		}
		counts[t.Name]++
	}
	for _, t := range r.Head.Args {
		note(t)
	}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			note(t)
		}
	}
	for _, a := range r.Neg {
		for _, t := range a.Args {
			note(t)
		}
	}
	for _, c := range r.Cmp {
		note(c.Left)
		note(c.Right)
	}
	var out []string
	for _, v := range ord {
		if counts[v] == 1 {
			out = append(out, v)
		}
	}
	return out
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func singularVerb(n int) string {
	if n == 1 {
		return "s"
	}
	return ""
}
