package bounded

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	unit, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return unit.Program
}

// The classical bounded example: whatever anyone buys, a trendy person
// buys too. One unfolding step of the recursive rule already collapses
// (witness depth 2), so buys is equivalent to two flat rules.
const trendySrc = `
buys(X, Y) :- likes(X, Y).
buys(X, Y) :- trendy(X), buys(Z, Y).
?- buys.
`

func TestAnalyzeTrendyBounded(t *testing.T) {
	p := parse(t, trendySrc)
	as := Analyze(p, Options{})
	if len(as) != 1 {
		t.Fatalf("got %d analyses, want 1: %+v", len(as), as)
	}
	a := as[0]
	if a.Pred != "buys" || a.Verdict != Bounded {
		t.Fatalf("got %s %s (%s), want buys bounded", a.Pred, a.Verdict, a.Reason)
	}
	if a.Depth != 2 {
		t.Errorf("witness depth = %d, want 2", a.Depth)
	}
	if !a.Linear {
		t.Errorf("trendy program should classify as linear")
	}
	if len(a.Disjuncts) != 2 {
		t.Fatalf("witness UCQ has %d disjuncts, want 2: %v", len(a.Disjuncts), a.Disjuncts)
	}
	for _, d := range a.Disjuncts {
		for _, at := range d.Pos {
			if at.Pred == "buys" {
				t.Errorf("witness disjunct still recursive: %v", d)
			}
		}
	}
}

func TestRewriteTrendy(t *testing.T) {
	p := parse(t, trendySrc)
	res, err := Rewrite(p, Options{})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if len(res.Eliminated) != 1 || res.Eliminated[0] != "buys" {
		t.Fatalf("Eliminated = %v, want [buys]", res.Eliminated)
	}
	for _, r := range res.Program.Rules {
		for _, a := range r.Pos {
			if a.Pred == "buys" {
				t.Fatalf("rewritten program still recursive: %v", r)
			}
		}
		if err := r.Safe(); err != nil {
			t.Fatalf("unsafe rewritten rule %v: %v", r, err)
		}
	}
	if res.Program.Query != "buys" {
		t.Errorf("query lost: %q", res.Program.Query)
	}
}

// Transitive closure is the canonical unbounded program: every depth
// adds genuinely longer chains, so the honest verdict is
// not-bounded-within-budget, never bounded.
func TestAnalyzeTCNotBounded(t *testing.T) {
	p := parse(t, `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.
`)
	as := Analyze(p, Options{})
	if len(as) != 1 || as[0].Verdict != NotWithinBudget {
		t.Fatalf("got %+v, want path not-bounded-within-budget", as)
	}
	if as[0].Depth != 3 {
		t.Errorf("deepest level tried = %d, want MaxDepth 3", as[0].Depth)
	}
	if _, err := Rewrite(p, Options{}); !errors.Is(err, ErrNotBounded) {
		t.Fatalf("Rewrite err = %v, want ErrNotBounded", err)
	}
}

// Rewrite must surface the per-predicate analyses alongside
// ErrNotBounded so callers can report the honest verdicts.
func TestRewriteNotBoundedCarriesAnalyses(t *testing.T) {
	p := parse(t, `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.
`)
	res, err := Rewrite(p, Options{})
	if !errors.Is(err, ErrNotBounded) {
		t.Fatalf("err = %v, want ErrNotBounded", err)
	}
	if res == nil || len(res.Analyses) != 1 {
		t.Fatalf("Result with analyses must accompany ErrNotBounded, got %+v", res)
	}
	if res.Program != nil {
		t.Errorf("no program should be emitted on fallback")
	}
	if !strings.Contains(err.Error(), "path") {
		t.Errorf("error should name the predicate: %v", err)
	}
}

// Mutual recursion is outside the procedure's scope: three-valued
// honesty demands Unknown, not a guess either way.
func TestAnalyzeMutualRecursionUnknown(t *testing.T) {
	p := parse(t, `
even(X) :- zero(X).
even(X) :- succ(Y, X), odd(Y).
odd(X) :- succ(Y, X), even(Y).
?- even.
`)
	as := Analyze(p, Options{})
	// Neither even nor odd is SELF-recursive, so there is nothing to
	// analyze at all.
	if len(as) != 0 {
		t.Fatalf("got %+v, want no self-recursive candidates", as)
	}

	// A self-recursive predicate entangled with another cycle member
	// must come back Unknown.
	p2 := parse(t, `
p(X) :- base(X).
p(X) :- link(X, Y), p(Y).
p(X) :- q(X).
q(X) :- hop(X, Y), p(Y).
?- p.
`)
	as2 := Analyze(p2, Options{})
	if len(as2) != 1 || as2[0].Verdict != Unknown {
		t.Fatalf("got %+v, want p unknown (mutual recursion)", as2)
	}
	if !strings.Contains(as2[0].Reason, "q") {
		t.Errorf("reason should name the cycle partner: %q", as2[0].Reason)
	}
}

// Negated subgoals put a predicate outside the containment procedure.
func TestAnalyzeNegationUnknown(t *testing.T) {
	p := parse(t, `
keeps(X, Y) :- owns(X, Y), !sold(X, Y).
keeps(X, Y) :- hoards(X), keeps(Z, Y), !sold(X, Y).
?- keeps.
`)
	as := Analyze(p, Options{})
	if len(as) != 1 || as[0].Verdict != Unknown {
		t.Fatalf("got %+v, want keeps unknown (negation)", as)
	}
}

// A piecewise-linear program with two recursive rules that is bounded,
// but only at depth 3 — the ladder must keep climbing past the first
// failed witness instead of giving up.
func TestAnalyzePiecewiseLinearDepth3(t *testing.T) {
	p := parse(t, `
q(X, Y) :- base(X, Y).
q(X, Y) :- left(X), q(Z, Y).
q(X, Y) :- right(Y), q(X, Z).
?- q.
`)
	as := Analyze(p, Options{})
	if len(as) != 1 || as[0].Verdict != Bounded {
		t.Fatalf("got %+v, want q bounded", as)
	}
	if as[0].Depth != 3 {
		t.Errorf("witness depth = %d, want 3", as[0].Depth)
	}
	if !as[0].Linear {
		t.Errorf("each rule has one q-subgoal; should classify linear")
	}
}

// Nonlinear (two recursive subgoals) but still bounded: the doubled
// rule adds nothing over one application.
func TestAnalyzeNonlinearBounded(t *testing.T) {
	p := parse(t, `
r(X) :- seed(X).
r(X) :- glue(X), r(Y), r(Z).
?- r.
`)
	as := Analyze(p, Options{})
	if len(as) != 1 || as[0].Verdict != Bounded {
		t.Fatalf("got %+v, want r bounded", as)
	}
	if as[0].Linear {
		t.Errorf("two r-subgoals should classify nonlinear")
	}
}

// Order atoms ride along soundly via ContainedOrder.
func TestAnalyzeWithOrderAtoms(t *testing.T) {
	p := parse(t, `
cheap(X, Y) :- price(X, Y), Y < 100.
cheap(X, Y) :- fad(X), cheap(Z, Y), Y < 100.
?- cheap.
`)
	as := Analyze(p, Options{})
	if len(as) != 1 {
		t.Fatalf("got %d analyses, want 1", len(as))
	}
	if as[0].Verdict != Bounded {
		t.Fatalf("got %s (%s), want bounded", as[0].Verdict, as[0].Reason)
	}
}

// Budget exhaustion must surface as NotWithinBudget with the projected
// blowup named, before any containment call runs.
func TestAnalyzeBudgetExhaustion(t *testing.T) {
	// 8 exit rules and a rule with three recursive subgoals project
	// 8^3 = 512 depth-2 disjuncts, far past the default budget of 48.
	src := `
big(X) :- s1(X).
big(X) :- s2(X).
big(X) :- s3(X).
big(X) :- s4(X).
big(X) :- s5(X).
big(X) :- s6(X).
big(X) :- s7(X).
big(X) :- s8(X).
big(X) :- g(X), big(A), big(B), big(C).
?- big.
`
	p := parse(t, src)
	as := Analyze(p, Options{})
	if len(as) != 1 || as[0].Verdict != NotWithinBudget {
		t.Fatalf("got %+v, want big not-bounded-within-budget", as)
	}
	if !strings.Contains(as[0].Reason, "budget") {
		t.Errorf("reason should mention the budget: %q", as[0].Reason)
	}
}

// A predicate with recursive rules but no exit rule is provably empty
// (bounded with an empty witness), but Rewrite must leave it in place:
// deleting its last rule would flip it from IDB to EDB classification.
func TestRewriteKeepsExitlessPredicate(t *testing.T) {
	p := parse(t, `
loop(X) :- tick(X, Y), loop(Y).
ans(X) :- seen(X).
ans(X) :- ans(Y), seen(X).
?- ans.
`)
	res, err := Rewrite(p, Options{})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	for _, a := range res.Analyses {
		if a.Pred == "loop" && (a.Verdict != Bounded || len(a.Disjuncts) != 0) {
			t.Errorf("loop: got %s with %d disjuncts, want bounded/empty", a.Verdict, len(a.Disjuncts))
		}
	}
	if len(res.Eliminated) != 1 || res.Eliminated[0] != "ans" {
		t.Fatalf("Eliminated = %v, want [ans] only", res.Eliminated)
	}
	kept := false
	for _, r := range res.Program.Rules {
		if r.Head.Pred == "loop" {
			kept = true
		}
	}
	if !kept {
		t.Errorf("exitless loop rule must survive the rewrite")
	}
}

// The input program is never mutated.
func TestRewriteDoesNotMutateInput(t *testing.T) {
	p := parse(t, trendySrc)
	before := p.String()
	if _, err := Rewrite(p, Options{}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if p.String() != before {
		t.Errorf("input mutated:\nbefore %s\nafter  %s", before, p.String())
	}
}
