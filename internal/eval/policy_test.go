package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// --- policy differential harness ------------------------------------------
//
// What "bit-identical across policies" can honestly mean: JoinProbes is
// the quantity the policies exist to change, so full Stats equality
// across policies would only hold if the policies never did anything.
// The differential contract is therefore:
//
//   - answers are bit-identical across policies, engines, and workers;
//   - every derived fact has a valid derivation tree under every policy
//     (runEngine builds one per fact and fails otherwise);
//   - the order-invariant Stats fields — Iterations, RuleFirings,
//     TuplesDerived, RoundDeltas — are identical across policies (a
//     join order permutes probes, never firings or derivations);
//   - within each policy, answers, full Stats, and provenance are
//     bit-identical for every worker count;
//   - the greedy policy remains fully bit-identical to the legacy
//     engine, provenance included, whenever greedy keeps the legacy
//     static order (the PR 3 contract, unchanged; when greedy itself
//     reorders, only answers and order-invariant fields compare).

// statsOrderInvariantEqual compares the Stats fields a join order
// cannot change.
func statsOrderInvariantEqual(a, b *Stats) bool {
	inv := func(s *Stats) *Stats {
		return &Stats{Iterations: s.Iterations, RuleFirings: s.RuleFirings,
			TuplesDerived: s.TuplesDerived, RoundDeltas: s.RoundDeltas}
	}
	return inv(a).Equal(inv(b))
}

var allPolicies = []JoinOrderPolicy{PolicyGreedy, PolicyCost, PolicyAdaptive}

// requirePoliciesIdentical runs the legacy engine and all three
// compiled policies over workers {1, 4} and asserts the contract
// above. It returns the per-policy single-worker stats so callers can
// additionally assert on probe counts or adaptive counters.
func requirePoliciesIdentical(t *testing.T, label string, p *ast.Program, db *DB) map[JoinOrderPolicy]Stats {
	t.Helper()
	legacy := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true})
	out := map[JoinOrderPolicy]Stats{}
	var greedyRun *engineRun
	for _, pol := range allPolicies {
		var prev *engineRun
		for _, w := range []int{1, 4} {
			opts := Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: w, Policy: pol}
			cr := runEngine(t, p, db, opts)
			ctx := fmt.Sprintf("%s (policy=%s workers=%d)", label, pol, w)
			if !reflect.DeepEqual(cr.preds, legacy.preds) {
				t.Fatalf("%s: answers differ from legacy", ctx)
			}
			if !statsOrderInvariantEqual(&cr.stats, &legacy.stats) {
				t.Fatalf("%s: order-invariant stats differ from legacy:\nlegacy %+v\npolicy %+v", ctx, legacy.stats, cr.stats)
			}
			if prev != nil {
				if !cr.stats.Equal(&prev.stats) {
					t.Fatalf("%s: stats vary with workers:\n%+v\nvs\n%+v", ctx, prev.stats, cr.stats)
				}
				if cr.prov != prev.prov {
					t.Fatalf("%s: provenance varies with workers", ctx)
				}
			}
			c := cr
			prev = &c
		}
		if pol == PolicyGreedy && plansAllStatic(p) {
			// The greedy policy stays fully bit-identical to legacy,
			// provenance included.
			if !prev.stats.Equal(&legacy.stats) {
				t.Fatalf("%s: greedy compiled stats differ from legacy:\n%+v\nvs\n%+v", label, legacy.stats, prev.stats)
			}
			if prev.prov != legacy.prov {
				t.Fatalf("%s: greedy compiled provenance differs from legacy", label)
			}
		}
		if pol == PolicyGreedy {
			greedyRun = prev
		} else if greedyRun != nil && prev.prov != greedyRun.prov {
			// Derivation trees are rebuilt per fact from recorded steps;
			// all policies record a valid step for every fact, and for
			// these workloads the recorded instantiation is identical.
			// (This is stricter than validity; relax per-workload if a
			// future workload derives a fact via different rule bodies
			// under different orders.)
			t.Logf("%s: policy %s records different (still valid) provenance steps than greedy", label, pol)
		}
		out[pol] = prev.stats
	}
	return out
}

// --- named workloads ------------------------------------------------------

func TestPolicyDifferentialTransClosure(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	requirePoliciesIdentical(t, "trans closure", p, chainEDB(40))
}

func TestPolicyDifferentialGoodPath(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	db := chainEDB(30)
	db.AddFact(ast.NewAtom("startPoint", ast.N(3)))
	db.AddFact(ast.NewAtom("endPoint", ast.N(20)))
	requirePoliciesIdentical(t, "goodPath", p, db)
}

func TestPolicyDifferentialNegationCmp(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X, Y) :- edge(X, Y), !blocked(X).
		reach(X, Y) :- edge(X, Z), reach(Z, Y), !blocked(X).
		far(X, Y) :- reach(X, Y), X < Y.
		sym(X, Y) :- reach(X, Y), reach(Y, X), X != Y.
		?- far.
	`)
	db := NewDB()
	for i := 0; i < 12; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i+1)%12))))
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i*5)%12))))
	}
	db.AddFact(ast.NewAtom("blocked", ast.N(7)))
	requirePoliciesIdentical(t, "negation+cmp", p, db)
}

// filterSkewDB pins the workload where cost ordering should beat
// greedy outright: a large edge relation joined with a tiny tag
// filter. Greedy (no constants, tie-break by index) scans edge first;
// cost puts the 5-row tag relation first.
func filterSkewDB(edges int) *DB {
	db := NewDB()
	for i := 0; i < edges; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i%97))))
	}
	for i := 0; i < 5; i++ {
		db.AddFact(ast.NewAtom("tag", ast.N(float64(i))))
	}
	return db
}

func TestPolicyCostBeatsGreedyOnFilterSkew(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- edge(X, Y), tag(Y).
		?- q.
	`)
	stats := requirePoliciesIdentical(t, "filter-skew", p, filterSkewDB(4000))
	g, c := stats[PolicyGreedy].JoinProbes, stats[PolicyCost].JoinProbes
	if c >= g {
		t.Fatalf("cost should probe less than greedy on filter-skew: cost=%d greedy=%d", c, g)
	}
}

// hotKeyDB builds the adaptive showcase: statistics that mislead the
// cost model. mid averages ~1.7 rows per X (15000 filler keys with one
// row each), but every X that src actually selects fans out to 200
// rows; alt always has exactly 2 rows per selected X. Cost orders
// [src, mid, alt] and pays 200 probes per src row; adaptive observes
// the 200x fan-out on the first src row, reorders the tail to
// [src, alt, mid], and pays ~4.
func hotKeyDB() *DB {
	db := NewDB()
	for x := 0; x < 50; x++ {
		db.AddFact(ast.NewAtom("src", ast.N(float64(x))))
		for z := 0; z < 200; z++ {
			db.AddFact(ast.NewAtom("mid", ast.N(float64(x)), ast.N(float64(z))))
		}
		db.AddFact(ast.NewAtom("alt", ast.N(float64(x)), ast.N(0)))
		db.AddFact(ast.NewAtom("alt", ast.N(float64(x)), ast.N(1)))
	}
	for x := 50; x < 15050; x++ {
		db.AddFact(ast.NewAtom("mid", ast.N(float64(x)), ast.N(float64(x))))
		db.AddFact(ast.NewAtom("alt", ast.N(float64(x)), ast.N(float64(x))))
		db.AddFact(ast.NewAtom("alt", ast.N(float64(x)), ast.N(float64(x+1))))
	}
	return db
}

const hotKeySrc = `
	q(X, Z) :- src(X), mid(X, Z), alt(X, Z).
	?- q.
`

func TestPolicyAdaptiveReorderTriggers(t *testing.T) {
	p := parser.MustParseProgram(hotKeySrc)
	stats := requirePoliciesIdentical(t, "hot-key", p, hotKeyDB())
	ad := stats[PolicyAdaptive]
	if ad.AdaptiveReorders == 0 {
		t.Fatalf("adaptive never reordered on the hot-key workload: %+v", ad)
	}
	if c := stats[PolicyCost].JoinProbes; ad.JoinProbes >= c {
		t.Fatalf("adaptive should probe less than cost after reordering: adaptive=%d cost=%d", ad.JoinProbes, c)
	}
}

func TestPolicyAdaptiveSkipsEmptySubgoal(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- e(X, Y), missing(Y).
		r(X) :- e(X, Y).
		?- r.
	`)
	db := NewDB()
	for i := 0; i < 20; i++ {
		db.AddFact(ast.NewAtom("e", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	stats := requirePoliciesIdentical(t, "empty subgoal", p, db)
	if stats[PolicyAdaptive].AdaptiveSkips == 0 {
		t.Fatal("adaptive should skip tasks whose missing() subgoal is empty")
	}
}

// --- ablation coverage: scan path and naive rounds ------------------------

func TestPolicyDifferentialAblations(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(25)
	baseline, _, err := EvalWith(p, db, Options{Seminaive: true, UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, seminaive := range []bool{true, false} {
		for _, useIndex := range []bool{true, false} {
			for _, pol := range allPolicies {
				idb, _, err := EvalWith(p, db, Options{Seminaive: seminaive, UseIndex: useIndex,
					CompilePlans: true, Policy: pol, Workers: 2})
				if err != nil {
					t.Fatalf("seminaive=%v index=%v policy=%s: %v", seminaive, useIndex, pol, err)
				}
				if !reflect.DeepEqual(idb.SortedFacts("path"), baseline.SortedFacts("path")) {
					t.Fatalf("seminaive=%v index=%v policy=%s: answers differ", seminaive, useIndex, pol)
				}
			}
		}
	}
}

// --- randomized programs --------------------------------------------------

func TestPolicyDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	extras := []string{
		"q(X, Y) :- p(X, Y), f(Y, %c).\n",
		"q(X, Y) :- f(X, %c), p(X, Y).\n",
		"r(X) :- p(X, X).\n",
		"s(X, Y) :- p(X, Y), X < Y, !g(X).\n",
		"u(X) :- e(X, Y), f(Y, %c), Y > %c.\n",
		"v(X, Z) :- p(X, Y), p(Y, Z), X != Z.\n",
	}
	for trial := 0; trial < 10; trial++ {
		src := "p(X, Y) :- e(X, Y).\np(X, Z) :- e(X, Y), p(Y, Z).\n"
		for _, ex := range extras {
			if rng.Intn(2) == 0 {
				continue
			}
			for {
				i := indexByte(ex, '%')
				if i < 0 {
					break
				}
				ex = ex[:i] + fmt.Sprintf("%d", rng.Intn(5)) + ex[i+2:]
			}
			src += ex
		}
		src += "?- p.\n"
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDB()
		n := 4 + rng.Intn(5)
		for i := 0; i < n*3; i++ {
			db.AddFact(ast.NewAtom("e", ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(n)))))
			db.AddFact(ast.NewAtom("f", ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(5)))))
		}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				db.AddFact(ast.NewAtom("g", ast.N(float64(i))))
			}
		}
		requirePoliciesIdentical(t, fmt.Sprintf("random trial %d", trial), p, db)
	}
}

// --- options plumbing and unit tests --------------------------------------

func TestParseJoinOrderPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want JoinOrderPolicy
		ok   bool
	}{
		{"", PolicyGreedy, true},
		{"greedy", PolicyGreedy, true},
		{"cost", PolicyCost, true},
		{"adaptive", PolicyAdaptive, true},
		{"Greedy", "", false},
		{"optimal", "", false},
	} {
		got, err := ParseJoinOrderPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseJoinOrderPolicy(%q) = %q, %v", tc.in, got, err)
		}
	}
}

func TestPolicyRequiresCompiledEngine(t *testing.T) {
	p := parser.MustParseProgram("q(X) :- e(X, X).\n?- q.\n")
	db := NewDB()
	for _, pol := range []JoinOrderPolicy{PolicyCost, PolicyAdaptive} {
		if _, _, err := EvalWith(p, db, Options{Seminaive: true, Policy: pol}); err == nil {
			t.Fatalf("policy %s on the legacy engine must error", pol)
		}
	}
	if _, _, err := EvalWith(p, db, Options{Seminaive: true, CompilePlans: true, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
	// Greedy (and the empty string) work on both engines.
	for _, compile := range []bool{false, true} {
		for _, pol := range []JoinOrderPolicy{"", PolicyGreedy} {
			if _, _, err := EvalWith(p, db, Options{Seminaive: true, CompilePlans: compile, Policy: pol}); err != nil {
				t.Fatalf("compile=%v policy=%q: %v", compile, pol, err)
			}
		}
	}
}

func TestCostJoinOrderUnit(t *testing.T) {
	r := parser.MustParseProgram(`
		q(X) :- big(X, Y), small(Y).
		?- q.
	`).Rules[0]
	est := func(si int) relEstimate {
		if si == 0 {
			return relEstimate{n: 1000, distinct: []int{500, 40}}
		}
		return relEstimate{n: 3, distinct: []int{3}}
	}
	order, ests := costJoinOrder(r, -1, est, nil)
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("cost must scan the 3-row relation first: %v", order)
	}
	// Depth 1 probes big with Y bound: 1000/40 = 25 expected matches.
	if ests[0] != 3 || ests[1] != 25 {
		t.Fatalf("ests = %v, want [3 25]", ests)
	}
	// The delta occurrence stays pinned first even when it is larger.
	order, _ = costJoinOrder(r, 0, est, nil)
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Fatalf("delta occurrence must stay first: %v", order)
	}
	// An empty relation orders before everything.
	estEmpty := func(si int) relEstimate {
		if si == 1 {
			return relEstimate{}
		}
		return est(si)
	}
	order, ests = costJoinOrder(r, -1, estEmpty, nil)
	if !reflect.DeepEqual(order, []int{1, 0}) || ests[0] != 0 {
		t.Fatalf("empty relation must order first with estimate 0: %v %v", order, ests)
	}
	// An override replaces the estimate for partially-bound probes.
	order, _ = costJoinOrder(r, -1, est, map[int]float64{0: 1e6})
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("override order: %v", order)
	}
}
