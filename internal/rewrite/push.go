package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/unify"
)

// PushOrder performs top-down order-constraint propagation — the
// selection-pushing pass of [LS92, LMSS93] that the paper assumes has
// been applied before its algorithm runs. Starting from the query
// predicate with an empty constraint context, every IDB subgoal
// occurrence is specialized by the strongest context on its arguments
// that the enclosing rule body implies, the context is added to the
// specialized predicate's rules, and the process repeats until no new
// (predicate, context) pairs appear. Rules whose constraints become
// unsatisfiable vanish.
//
// The pass is an equivalence transformation for the query predicate:
// each specialized predicate computes exactly the tuples of the
// original that can participate under its calling context.
//
// Contexts are drawn from a finite candidate vocabulary (comparisons
// among argument positions and against the constants appearing in the
// program), so the specialization terminates.
func PushOrder(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Query == "" {
		return nil, fmt.Errorf("rewrite: PushOrder requires a query predicate")
	}
	idb := p.IDB()
	ar, err := p.PredArity()
	if err != nil {
		return nil, err
	}
	consts := collectConstants(p)

	// candidates returns the context vocabulary for an n-ary predicate,
	// over canonical argument variables A0..A(n-1).
	candidates := func(n int) []ast.Cmp {
		var out []ast.Cmp
		ops := []ast.CmpOp{ast.LT, ast.LE, ast.EQ, ast.NE}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, op := range ops {
					out = append(out, ast.NewCmp(argVar(i), op, argVar(j)))
					out = append(out, ast.NewCmp(argVar(j), op, argVar(i)))
				}
			}
			for _, c := range consts {
				for _, op := range []ast.CmpOp{ast.LT, ast.LE, ast.EQ, ast.NE, ast.GT, ast.GE} {
					out = append(out, ast.NewCmp(argVar(i), op, c))
				}
			}
		}
		return out
	}

	type classKey struct {
		pred string
		ctx  string
	}
	names := map[classKey]string{}
	ctxCmps := map[string][]ast.Cmp{} // specialized name -> context atoms (over A_i)
	counter := map[string]int{}
	var queue []string
	base := map[string]string{}

	intern := func(pred string, ctx []ast.Cmp) string {
		key := classKey{pred, ast.CmpsKey(ctx)}
		if n, ok := names[key]; ok {
			return n
		}
		var name string
		if counter[pred] == 0 && len(ctx) == 0 {
			name = pred // empty root context keeps the original name
		} else {
			name = fmt.Sprintf("%s_c%d", pred, counter[pred])
		}
		counter[pred]++
		names[key] = name
		ctxCmps[name] = ctx
		base[name] = pred
		queue = append(queue, name)
		return name
	}

	out := &ast.Program{}
	out.Query = intern(p.Query, nil)

	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		pred := base[name]
		ctx := ctxCmps[name]
		for _, r := range p.RulesFor(pred) {
			nr := r.Clone()
			nr.Head.Pred = name
			// Instantiate the context on the head arguments and add it
			// to the body.
			s := unify.Subst{}
			for i, t := range nr.Head.Args {
				s[fmt.Sprintf("A%d", i)] = t
			}
			bodySet := order.NewSet(nr.Cmp...)
			for _, c := range ctx {
				// Safety guarantees head variables occur in the body,
				// so the instantiated atom is always groundable.
				inst := s.ApplyCmp(c)
				if !bodySet.Implies(inst) {
					nr.Cmp = append(nr.Cmp, inst)
					bodySet.Add(inst)
				}
			}
			norm, ok := NormalizeRule(nr)
			if !ok {
				continue
			}
			// Specialize IDB subgoals by their implied contexts — but
			// only when pushing pays: a context that neither kills a
			// rule of the callee nor survives into one of the callee's
			// own IDB subgoals would merely add a duplicate layer over
			// the unspecialized predicate (the classic magic-set
			// duplication hazard), so it stays at the call site.
			fullSet := order.NewSet(norm.Cmp...)
			for j, sub := range norm.Pos {
				if !idb[sub.Pred] {
					continue
				}
				var childCtx []ast.Cmp
				ss := unify.Subst{}
				for i, t := range sub.Args {
					ss[fmt.Sprintf("A%d", i)] = t
				}
				for _, c := range candidates(ar[sub.Pred]) {
					if fullSet.Implies(ss.ApplyCmp(c)) {
						childCtx = append(childCtx, c)
					}
				}
				ctx := canonCtx(childCtx)
				if len(ctx) > 0 && !contextUseful(p, idb, sub.Pred, ctx, candidates, ar) {
					ctx = nil
				}
				norm.Pos[j].Pred = intern(sub.Pred, ctx)
			}
			out.Rules = append(out.Rules, norm)
		}
	}
	return out, nil
}

// contextUseful is the one-step lookahead for PushOrder: pushing ctx
// into pred pays iff, instantiating the context on each of pred's
// rules, some rule becomes unsatisfiable (dropped) or the context
// induces a non-empty context on some IDB subgoal (i.e. it survives a
// recursion step).
func contextUseful(p *ast.Program, idb map[string]bool, pred string, ctx []ast.Cmp,
	candidates func(int) []ast.Cmp, ar map[string]int) bool {
	for _, r := range p.RulesFor(pred) {
		nr := r.Clone()
		s := unify.Subst{}
		for i, t := range nr.Head.Args {
			s[fmt.Sprintf("A%d", i)] = t
		}
		for _, c := range ctx {
			nr.Cmp = append(nr.Cmp, s.ApplyCmp(c))
		}
		norm, ok := NormalizeRule(nr)
		if !ok {
			return true // the context kills this rule outright
		}
		set := order.NewSet(norm.Cmp...)
		for _, sub := range norm.Pos {
			if !idb[sub.Pred] {
				continue
			}
			ss := unify.Subst{}
			for i, t := range sub.Args {
				ss[fmt.Sprintf("A%d", i)] = t
			}
			for _, c := range candidates(ar[sub.Pred]) {
				inst := ss.ApplyCmp(c)
				// Count only constraints the context contributed, not
				// ones the rule body implies on its own.
				if set.Implies(inst) && !order.NewSet(r.Cmp...).Implies(ss.ApplyCmp(c)) {
					return true
				}
			}
		}
	}
	return false
}

// canonCtx deduplicates and sorts context atoms by key.
func canonCtx(ctx []ast.Cmp) []ast.Cmp {
	seen := map[string]bool{}
	var out []ast.Cmp
	for _, c := range ctx {
		if !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
