package store

// Write-ahead log encoding. The WAL is a flat sequence of framed
// records, each one complete logical operation (dataset create/delete,
// fact assert/retract batch, view register/drop):
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) of the payload
//	payload
//
// The payload starts with the operation kind, then the symbol
// definitions the record introduces (constants and names are interned
// to dense uint32 ids — the same representation the compiled-plan
// engine uses for rows — and a symbol is defined exactly once, by the
// first record that references it), then the operation fields with
// every term, predicate, dataset, and view name as a symbol id:
//
//	byte     opKind
//	uvarint  nsyms
//	  nsyms × { uvarint id, byte kind, num: 8B LE float bits | str: uvarint len + bytes }
//	...op fields (uvarint symbol ids, uvarint counts, length-prefixed
//	   source strings for view programs)...
//
// One record is one atomic unit: either its CRC verifies and the whole
// operation (including its symbol definitions) applies, or recovery
// stops before it. A record that fails to decode — torn tail, bad
// CRC, truncated payload, dangling symbol reference — ends replay at
// the last good record; decodeRecord reports the reason as an error
// wrapping ErrCorrupt and never panics on arbitrary bytes (FuzzWAL
// pins this).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/ast"
)

// ErrCorrupt is wrapped by every WAL and segment decoding error caused
// by malformed bytes (as opposed to I/O failures). Recovery treats a
// corrupt record as the end of the log; FuzzWAL asserts arbitrary
// input yields this error or decodes cleanly, never panics.
var ErrCorrupt = errors.New("store: corrupt data")

// maxRecordLen bounds one WAL record; a frame claiming more is
// corrupt. Generous: the largest legitimate records are dataset
// creates, ~20 bytes per fact.
const maxRecordLen = 64 << 20

type opKind byte

const (
	opDatasetCreate opKind = 1
	opDatasetDelete opKind = 2
	opFacts         opKind = 3
	opViewRegister  opKind = 4
	opViewDrop      opKind = 5
)

// symKind discriminates symbol-table entries.
type symKind byte

const (
	symStr symKind = 0 // string constant, predicate, dataset or view name
	symNum symKind = 1 // numeric constant
)

type symbol struct {
	kind symKind
	name string  // symStr
	val  float64 // symNum
}

// symtab interns constants and names to dense uint32 ids. Ids are
// assigned in first-reference order and never reused or compacted, so
// a store that replays the same operation sequence always assigns the
// same ids — the property that makes spilled sketches (which hash ids)
// reproducible across recovery.
type symtab struct {
	byKey map[string]uint32
	syms  []symbol
}

func newSymtab() *symtab {
	return &symtab{byKey: make(map[string]uint32, 64)}
}

func symKey(s symbol) string {
	if s.kind == symNum {
		return "#" + fmt.Sprintf("%g", s.val)
	}
	return "$" + s.name
}

// intern returns the id of s, assigning the next dense id on first
// use; isNew reports whether the id was just assigned.
func (st *symtab) intern(s symbol) (id uint32, isNew bool) {
	k := symKey(s)
	if id, ok := st.byKey[k]; ok {
		return id, false
	}
	id = uint32(len(st.syms))
	st.syms = append(st.syms, s)
	st.byKey[k] = id
	return id, true
}

func (st *symtab) internTerm(t ast.Term) uint32 {
	var id uint32
	if t.Kind == ast.Num {
		id, _ = st.intern(symbol{kind: symNum, val: t.Val})
	} else {
		id, _ = st.intern(symbol{kind: symStr, name: t.Name})
	}
	return id
}

func (st *symtab) internStr(s string) uint32 {
	id, _ := st.intern(symbol{kind: symStr, name: s})
	return id
}

// rollback discards symbols with id >= n (an append that failed after
// interning must not leave ids the log never defined).
func (st *symtab) rollback(n int) {
	for _, s := range st.syms[n:] {
		delete(st.byKey, symKey(s))
	}
	st.syms = st.syms[:n]
}

// install adds a symbol definition read from the log at an explicit
// id: either it matches an existing entry exactly, or it is the next
// dense id. Anything else is corruption.
func (st *symtab) install(id uint32, s symbol) error {
	if int(id) < len(st.syms) {
		have := st.syms[id]
		if have.kind != s.kind || have.name != s.name ||
			math.Float64bits(have.val) != math.Float64bits(s.val) {
			return fmt.Errorf("%w: symbol %d redefined", ErrCorrupt, id)
		}
		return nil
	}
	if int(id) != len(st.syms) {
		return fmt.Errorf("%w: symbol id gap (%d, have %d)", ErrCorrupt, id, len(st.syms))
	}
	st.syms = append(st.syms, s)
	st.byKey[symKey(s)] = id
	return nil
}

func (st *symtab) valid(id uint32) bool { return int(id) < len(st.syms) }

func (st *symtab) term(id uint32) ast.Term {
	s := st.syms[id]
	if s.kind == symNum {
		return ast.N(s.val)
	}
	return ast.S(s.name)
}

func (st *symtab) str(id uint32) string { return st.syms[id].name }

// ifact is one ground atom in interned form: a predicate symbol and a
// flat row of term symbols — the on-disk twin of the engine's interned
// []uint32 rows.
type ifact struct {
	pred uint32
	row  []uint32
}

// iop is one logical operation in interned form, the unit of WAL
// append and replay.
type iop struct {
	kind      opKind
	ds        uint32 // dataset name symbol
	view      uint32 // view name symbol (opView*)
	prog, ics string // view sources (opViewRegister)
	optimized bool
	adds      []ifact // opDatasetCreate (initial facts) and opFacts
	dels      []ifact // opFacts
}

// internFacts converts ground atoms to interned facts, assigning
// symbol ids as needed.
func (st *symtab) internFacts(atoms []ast.Atom) []ifact {
	out := make([]ifact, len(atoms))
	for i, a := range atoms {
		f := ifact{pred: st.internStr(a.Pred), row: make([]uint32, len(a.Args))}
		for j, t := range a.Args {
			f.row[j] = st.internTerm(t)
		}
		out[i] = f
	}
	return out
}

func (st *symtab) atom(f ifact) ast.Atom {
	args := make([]ast.Term, len(f.row))
	for j, id := range f.row {
		args[j] = st.term(id)
	}
	return ast.NewAtom(st.str(f.pred), args...)
}

// --- record encoding --------------------------------------------------

func appendSymDef(buf []byte, id uint32, s symbol) []byte {
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = append(buf, byte(s.kind))
	if s.kind == symNum {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.val))
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(s.name)))
		buf = append(buf, s.name...)
	}
	return buf
}

func appendFacts(buf []byte, facts []ifact) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(facts)))
	for _, f := range facts {
		buf = binary.AppendUvarint(buf, uint64(f.pred))
		buf = binary.AppendUvarint(buf, uint64(len(f.row)))
		for _, id := range f.row {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodePayload renders op, prefixed by the symbol definitions with
// ids >= firstNewSym (the symbols this record introduces).
func encodePayload(op *iop, st *symtab, firstNewSym int) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, byte(op.kind))
	news := st.syms[firstNewSym:]
	buf = binary.AppendUvarint(buf, uint64(len(news)))
	for i, s := range news {
		buf = appendSymDef(buf, uint32(firstNewSym+i), s)
	}
	buf = binary.AppendUvarint(buf, uint64(op.ds))
	switch op.kind {
	case opDatasetCreate:
		buf = appendFacts(buf, op.adds)
	case opDatasetDelete:
	case opFacts:
		buf = appendFacts(buf, op.adds)
		buf = appendFacts(buf, op.dels)
	case opViewRegister:
		buf = binary.AppendUvarint(buf, uint64(op.view))
		buf = appendString(buf, op.prog)
		buf = appendString(buf, op.ics)
		if op.optimized {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case opViewDrop:
		buf = binary.AppendUvarint(buf, uint64(op.view))
	}
	return buf
}

// frame wraps a payload in the on-disk record framing.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// --- record decoding --------------------------------------------------

// byteReader walks a payload with explicit bounds checks; every read
// failure is ErrCorrupt.
type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("unexpected end at %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("short read (%d bytes at %d)", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// count reads a uvarint element count and sanity-bounds it against the
// bytes remaining (each element costs at least min bytes), so corrupt
// counts cannot drive huge allocations.
func (r *byteReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(r.data)-r.off)/min+1) {
		r.fail("implausible count %d at %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *byteReader) string() string {
	n := r.count(1)
	return string(r.bytes(n))
}

func (r *byteReader) sym(st *symtab) uint32 {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > math.MaxUint32 || !st.valid(uint32(v)) {
		r.fail("dangling symbol id %d", v)
		return 0
	}
	return uint32(v)
}

func (r *byteReader) facts(st *symtab) []ifact {
	n := r.count(2)
	if r.err != nil {
		return nil
	}
	out := make([]ifact, 0, n)
	for i := 0; i < n; i++ {
		f := ifact{pred: r.sym(st)}
		arity := r.count(1)
		if r.err != nil {
			return nil
		}
		f.row = make([]uint32, arity)
		for j := range f.row {
			f.row[j] = r.sym(st)
		}
		out = append(out, f)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// decodePayload decodes one record payload, installing its symbol
// definitions into st. On error the symtab may hold a prefix of the
// record's definitions; callers treat the whole record as unapplied
// (recovery stops, so the extra ids are never referenced).
func decodePayload(payload []byte, st *symtab) (*iop, error) {
	r := &byteReader{data: payload}
	op := &iop{kind: opKind(r.byte())}
	switch op.kind {
	case opDatasetCreate, opDatasetDelete, opFacts, opViewRegister, opViewDrop:
	default:
		return nil, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.kind)
	}
	nsyms := r.count(2)
	for i := 0; i < nsyms && r.err == nil; i++ {
		id := r.uvarint()
		kind := symKind(r.byte())
		var s symbol
		switch kind {
		case symNum:
			b := r.bytes(8)
			if r.err != nil {
				break
			}
			s = symbol{kind: symNum, val: math.Float64frombits(binary.LittleEndian.Uint64(b))}
		case symStr:
			s = symbol{kind: symStr, name: r.string()}
		default:
			r.fail("unknown symbol kind %d", kind)
		}
		if r.err != nil {
			break
		}
		if id > math.MaxUint32 {
			r.fail("symbol id overflow")
			break
		}
		if err := st.install(uint32(id), s); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	op.ds = r.sym(st)
	switch op.kind {
	case opDatasetCreate:
		op.adds = r.facts(st)
	case opDatasetDelete:
	case opFacts:
		op.adds = r.facts(st)
		op.dels = r.facts(st)
	case opViewRegister:
		op.view = r.sym(st)
		op.prog = r.string()
		op.ics = r.string()
		op.optimized = r.byte() != 0
	case opViewDrop:
		op.view = r.sym(st)
	}
	if r.err != nil {
		return nil, r.err
	}
	return op, nil
}

// decodeRecord decodes the record at the front of data, returning the
// payload and total frame size. A frame that runs past the end of data
// is reported as (nil, 0, nil): a torn tail, distinct from corruption.
func decodeRecord(data []byte) (payload []byte, size int, err error) {
	if len(data) < 8 {
		return nil, 0, nil // torn or clean end
	}
	n := binary.LittleEndian.Uint32(data[0:])
	if n > maxRecordLen {
		return nil, 0, fmt.Errorf("%w: record length %d exceeds cap", ErrCorrupt, n)
	}
	if len(data)-8 < int(n) {
		return nil, 0, nil // torn tail: payload not fully on disk
	}
	want := binary.LittleEndian.Uint32(data[4:])
	payload = data[8 : 8+int(n)]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, 8 + int(n), nil
}

// replayResult summarizes one WAL replay.
type replayResult struct {
	ops       []*iop
	goodBytes int   // offset of the first byte not covered by a decoded record
	records   int   // records decoded
	truncated error // nil for a clean tail; the decode error otherwise
}

// replay decodes records from data front to back, installing symbols
// into st, until the data ends or a record fails to decode. It never
// fails: a torn or corrupt suffix terminates the log at the last good
// record, which is exactly the recovery semantics (an operation is
// durable once its complete record is on disk, and a partially written
// tail is as if the operation never happened).
func replay(data []byte, st *symtab) replayResult {
	var res replayResult
	for res.goodBytes < len(data) {
		payload, size, err := decodeRecord(data[res.goodBytes:])
		if err != nil {
			res.truncated = err
			return res
		}
		if size == 0 {
			if len(data)-res.goodBytes > 0 {
				res.truncated = fmt.Errorf("%w: torn record at %d", ErrCorrupt, res.goodBytes)
			}
			return res
		}
		op, err := decodePayload(payload, st)
		if err != nil {
			res.truncated = err
			return res
		}
		res.ops = append(res.ops, op)
		res.goodBytes += size
		res.records++
	}
	return res
}
