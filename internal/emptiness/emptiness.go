// Package emptiness decides satisfiability and emptiness questions
// from Section 5 of the paper:
//
//   - Proposition 5.2: a program is empty (no IDB predicate
//     satisfiable) iff its initialization rules are all unsatisfiable,
//     so emptiness reduces to conjunctive-query satisfiability.
//   - Theorem 5.2(1): for programs and constraints without order atoms
//     in the constraints, initialization-rule satisfiability is decided
//     by freezing the body to its canonical database (NP).
//   - Theorem 5.2(3): with order atoms in the rule and/or {θ}-ic's, the
//     decision enumerates the linearizations of the rule's terms (Π2p).
//   - Theorem 5.2(2,4) / Theorem 5.4: with negated atoms in the
//     constraints the problem is only semi-decidable; a budget-bounded
//     chase returns an explicit Unknown when the budget is exhausted.
package emptiness

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/order"
	"repro/internal/unify"
)

// Verdict mirrors chase.Verdict for the satisfiability questions.
type Verdict = chase.Verdict

const (
	Unknown       = chase.Unknown
	Satisfiable   = chase.Consistent
	Unsatisfiable = chase.Inconsistent
)

// Options configures the decision procedures.
type Options struct {
	// ChaseSteps bounds the chase for {¬}-constraints (default 10000).
	ChaseSteps int
	// MaxLinearizations bounds the Π2p enumeration (default 100000);
	// exceeding it yields Unknown.
	MaxLinearizations int
}

func (o *Options) defaults() {
	if o.ChaseSteps == 0 {
		o.ChaseSteps = 10000
	}
	if o.MaxLinearizations == 0 {
		o.MaxLinearizations = 100000
	}
}

// RuleSatisfiable decides whether a single rule's body is satisfiable
// with respect to the constraints: is there a database consistent with
// ics on which the body has at least one match? This is the
// conjunctive-query satisfiability at the heart of Proposition 5.2.
func RuleSatisfiable(r ast.Rule, ics []ast.IC, opts Options) (Verdict, error) {
	return RuleSatisfiableCtx(context.Background(), r, ics, opts)
}

// RuleSatisfiableCtx is RuleSatisfiable under a context: cancellation
// or deadline expiry aborts the decision at the next check boundary
// with an Unknown verdict, the same honest outcome as exhausting an
// explicit budget.
func RuleSatisfiableCtx(ctx context.Context, r ast.Rule, ics []ast.IC, opts Options) (Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.defaults()
	// Fast path: the rule's own order atoms must be satisfiable.
	ruleSet := order.NewSet(r.Cmp...)
	if !ruleSet.Satisfiable() {
		return Unsatisfiable, nil
	}
	hasNegIC := false
	for _, ic := range ics {
		if len(ic.Neg) > 0 {
			hasNegIC = true
		}
	}
	hasOrder := len(r.Cmp) > 0
	for _, ic := range ics {
		if len(ic.Cmp) > 0 {
			hasOrder = true
		}
	}

	switch {
	case !hasOrder && !hasNegIC && len(r.Neg) == 0:
		// NP case (Theorem 5.2(1) without rule negation): freeze the
		// body with distinct constants and check the canonical
		// database directly.
		frozen, _ := unify.Freeze(r.Pos)
		ok, err := chase.IsConsistent(frozen, ics)
		if err != nil {
			return Unknown, err
		}
		if ok {
			return Satisfiable, nil
		}
		return Unsatisfiable, nil

	case !hasOrder:
		// Negation without order atoms (Theorem 5.2(2,4)): bounded
		// chase on the skolem-frozen body, honest about giving up. No
		// comparison is ever evaluated here, so the canonical freeze
		// with fresh distinct constants is most general.
		return chaseSatisfiable(ctx, r, ics, opts)

	default:
		// Order atoms present (Theorem 5.2(3)): enumerate
		// linearizations; the body is satisfiable iff some
		// linearization consistent with the rule's order atoms yields
		// a consistent frozen database. Negated atoms (in the rule or
		// the constraints) are handled by a budget-bounded chase per
		// linearization.
		return linearizationSatisfiable(ctx, r, ics, opts)
	}
}

// linearizationSatisfiable enumerates total preorders of the rule's
// terms consistent with its order atoms; for each, it freezes the
// body respecting the preorder and checks consistency (constraints may
// carry order atoms, which evaluate on the frozen order). The preorder
// domain includes every constant the constraints mention: the chase
// outcome on a frozen embedding depends only on the embedding's order
// type relative to those constants, so enumerating the extended set is
// complete — without them, the arbitrary values freezeOrdered picks
// could systematically trip (or dodge) a comparison against a constant
// and turn into a wrong verdict.
func linearizationSatisfiable(ctx context.Context, r ast.Rule, ics []ast.IC, opts Options) (Verdict, error) {
	terms := relevantTerms(r, ics)
	base := order.NewSet(r.Cmp...)
	count := 0
	sat := false
	exceeded := false
	unknown := false
	var unknownErr error
	enumerateLinearizations(terms, base, func(lin *order.Set) bool {
		count++
		if count > opts.MaxLinearizations || (count%64 == 0 && ctx.Err() != nil) {
			exceeded = true
			return false
		}
		frozen, vals, ok := freezeOrdered(r.Pos, terms, lin)
		if !ok {
			return true
		}
		forbidden, err := groundNegated(r.Neg, vals)
		if err != nil {
			unknown, unknownErr = true, err
			return false
		}
		for _, f := range frozen {
			for _, g := range forbidden {
				if f.Equal(g) {
					// The embedding itself contains a negated subgoal:
					// refuted, not skipped.
					return true
				}
			}
		}
		res := chase.RunCtx(ctx, frozen, ics, chase.Options{MaxSteps: opts.ChaseSteps, Forbidden: forbidden})
		switch res.Verdict {
		case chase.Consistent:
			sat = true
			return false
		case chase.Unknown:
			unknown = true
		}
		return true
	})
	switch {
	case sat:
		return Satisfiable, nil
	case exceeded:
		return Unknown, fmt.Errorf("emptiness: linearization budget exceeded")
	case unknown:
		if unknownErr != nil {
			return Unknown, unknownErr
		}
		return Unknown, fmt.Errorf("emptiness: chase budget exceeded on some linearization")
	default:
		return Unsatisfiable, nil
	}
}

// relevantTerms returns the rule's body terms extended with every
// constant appearing in the constraints or the rule's negated
// subgoals; see linearizationSatisfiable for why these constants must
// participate in the preorder enumeration.
func relevantTerms(r ast.Rule, ics []ast.IC) []ast.Term {
	terms := bodyTerms(r)
	seen := map[string]bool{}
	for _, t := range terms {
		seen[t.Key()] = true
	}
	addConst := func(t ast.Term) {
		if t.IsConst() && !seen[t.Key()] {
			seen[t.Key()] = true
			terms = append(terms, t)
		}
	}
	for _, n := range r.Neg {
		for _, t := range n.Args {
			addConst(t)
		}
	}
	for _, ic := range ics {
		for _, a := range ic.Pos {
			for _, t := range a.Args {
				addConst(t)
			}
		}
		for _, a := range ic.Neg {
			for _, t := range a.Args {
				addConst(t)
			}
		}
		for _, c := range ic.Cmp {
			addConst(c.Left)
			addConst(c.Right)
		}
	}
	return terms
}

// groundNegated instantiates the rule's negated subgoals with the
// frozen values; safety requires their variables to occur in positive
// subgoals, so a leftover variable is an error, not a guess.
func groundNegated(neg []ast.Atom, vals map[string]ast.Term) ([]ast.Atom, error) {
	var out []ast.Atom
	for _, n := range neg {
		g := n.Clone()
		for i, t := range g.Args {
			if v, ok := vals[t.Key()]; ok {
				g.Args[i] = v
			}
		}
		if !g.Ground() {
			return nil, fmt.Errorf("emptiness: negated atom %s has variables outside positive subgoals", n)
		}
		out = append(out, g)
	}
	return out, nil
}

// chaseSatisfiable freezes the body with fresh distinct constants and
// chases the result; negated body atoms become forbidden facts. It is
// only reached when no order atom appears in the rule or the
// constraints, so no comparison ever evaluates on the skolem
// constants and the canonical freeze is most general.
func chaseSatisfiable(ctx context.Context, r ast.Rule, ics []ast.IC, opts Options) (Verdict, error) {
	frozen, sub := unify.Freeze(r.Pos)
	var forbidden []ast.Atom
	for _, n := range r.Neg {
		g := n.Clone()
		for i, t := range g.Args {
			if t.IsVar() {
				if c, ok := sub[t.Name]; ok {
					g.Args[i] = c
				}
			}
		}
		if !g.Ground() {
			return Unknown, fmt.Errorf("emptiness: negated atom %s has variables outside positive subgoals", n)
		}
		forbidden = append(forbidden, g)
		// The frozen positive atoms must not already contain it.
		for _, f := range frozen {
			if f.Equal(g) {
				return Unsatisfiable, nil
			}
		}
	}
	res := chase.RunCtx(ctx, frozen, ics, chase.Options{MaxSteps: opts.ChaseSteps, Forbidden: forbidden})
	return res.Verdict, nil
}

// Empty decides program emptiness via Proposition 5.2: the program is
// empty iff every initialization rule is unsatisfiable. decided is
// false when some rule's satisfiability could not be settled within
// budget and no rule was found satisfiable.
func Empty(p *ast.Program, ics []ast.IC, opts Options) (empty, decided bool, err error) {
	return EmptyCtx(context.Background(), p, ics, opts)
}

// EmptyCtx is Empty under a context; cancellation mid-way leaves the
// undecided rules Unknown, so the result degrades to decided == false
// rather than an unsound emptiness claim.
func EmptyCtx(ctx context.Context, p *ast.Program, ics []ast.IC, opts Options) (empty, decided bool, err error) {
	idb := p.IDB()
	sawUnknown := false
	for _, r := range p.Rules {
		if !r.IsInit(idb) {
			continue
		}
		v, verr := RuleSatisfiableCtx(ctx, r, ics, opts)
		switch v {
		case Satisfiable:
			// Some initialization rule fires: the program is nonempty.
			return false, true, nil
		case Unknown:
			sawUnknown = true
		case Unsatisfiable:
			// keep checking the remaining rules
		}
		if verr != nil && v != Unknown {
			return false, false, verr
		}
	}
	if sawUnknown {
		return false, false, nil
	}
	return true, true, nil
}

// bodyTerms collects the distinct terms of the rule's positive
// subgoals and order atoms.
func bodyTerms(r ast.Rule) []ast.Term {
	seen := map[string]bool{}
	var out []ast.Term
	add := func(t ast.Term) {
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range r.Cmp {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// enumerateLinearizations enumerates total preorders of the terms
// consistent with base (same construction as package contain; kept
// local to avoid a dependency cycle).
func enumerateLinearizations(terms []ast.Term, base *order.Set, fn func(*order.Set) bool) {
	var rec func(i int, groups [][]ast.Term) bool
	rec = func(i int, groups [][]ast.Term) bool {
		if i == len(terms) {
			lin := base.Clone()
			for gi, g := range groups {
				for k := 1; k < len(g); k++ {
					lin.Add(ast.NewCmp(g[0], ast.EQ, g[k]))
				}
				if gi+1 < len(groups) {
					lin.Add(ast.NewCmp(g[0], ast.LT, groups[gi+1][0]))
				}
			}
			if !lin.Satisfiable() {
				return true
			}
			return fn(lin)
		}
		t := terms[i]
		for gi := range groups {
			ng := make([][]ast.Term, len(groups))
			copy(ng, groups)
			ng[gi] = append(append([]ast.Term{}, groups[gi]...), t)
			if !rec(i+1, ng) {
				return false
			}
		}
		for pos := 0; pos <= len(groups); pos++ {
			ng := make([][]ast.Term, 0, len(groups)+1)
			ng = append(ng, groups[:pos]...)
			ng = append(ng, []ast.Term{t})
			ng = append(ng, groups[pos:]...)
			if !rec(i+1, ng) {
				return false
			}
		}
		return true
	}
	rec(0, nil)
}

// freezeOrdered freezes the atoms to numeric constants realizing the
// given linearization: terms in the same equivalence group share a
// value, later groups get larger values, and constant terms keep their
// own values (failing if the linearization contradicts them). It also
// returns the term-key → value assignment so callers can ground atoms
// outside the positive body (negated subgoals) consistently.
func freezeOrdered(atoms []ast.Atom, terms []ast.Term, lin *order.Set) ([]ast.Atom, map[string]ast.Term, bool) {
	// Assign each term a numeric value consistent with lin: walk the
	// terms and use the linearization's implied order. We realize the
	// order by sorting terms with lin.Implies.
	vals := map[string]ast.Term{}
	// Partition terms into classes and order them.
	var classes [][]ast.Term
	for _, t := range terms {
		placed := false
		for ci, c := range classes {
			if lin.Implies(ast.NewCmp(t, ast.EQ, c[0])) {
				classes[ci] = append(classes[ci], t)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []ast.Term{t})
		}
	}
	// Sort classes by the linear order.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if lin.Implies(ast.NewCmp(classes[j][0], ast.LT, classes[i][0])) {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	// Assign values: constants keep their value; pure-variable classes
	// get values interpolated between neighbouring constant classes.
	// For simplicity (and since consistency of lin was already
	// checked), assign value by class rank scaled around constants.
	assigned := make([]ast.Term, len(classes))
	for ci, c := range classes {
		var constant *ast.Term
		for _, t := range c {
			if t.IsConst() {
				tt := t
				constant = &tt
				break
			}
		}
		if constant != nil {
			assigned[ci] = *constant
		}
	}
	// Interpolate variable-only classes.
	prevVal := -1e9
	for ci := range classes {
		if assigned[ci].IsConst() {
			if assigned[ci].Kind == ast.Num {
				prevVal = assigned[ci].Val
			}
			continue
		}
		// Find the next constant class value.
		nextVal := prevVal + 2
		for cj := ci + 1; cj < len(classes); cj++ {
			if assigned[cj].IsConst() && assigned[cj].Kind == ast.Num {
				nextVal = assigned[cj].Val
				break
			}
		}
		v := (prevVal + nextVal) / 2
		assigned[ci] = ast.N(v)
		prevVal = v
	}
	// Validate the realized order (mixed string/number constants can
	// make a linearization unrealizable by this simple interpolation;
	// skipping it is safe because such a linearization is covered by a
	// neighbouring one over the purely numeric embedding).
	for ci := 0; ci+1 < len(classes); ci++ {
		if assigned[ci].Compare(assigned[ci+1]) >= 0 {
			return nil, nil, false
		}
	}
	for ci, c := range classes {
		for _, t := range c {
			vals[t.Key()] = assigned[ci]
		}
	}
	// Materialize.
	out := make([]ast.Atom, len(atoms))
	for i, a := range atoms {
		g := a.Clone()
		for j, t := range g.Args {
			if v, ok := vals[t.Key()]; ok {
				g.Args[j] = v
			}
		}
		if !g.Ground() {
			return nil, nil, false
		}
		out[i] = g
	}
	return out, vals, true
}
