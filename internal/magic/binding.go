package magic

// Binding-pattern adornments for goal-directed evaluation: the
// classical bound/free adornments of the magic-sets literature,
// computed from a query goal and propagated left to right through rule
// bodies (the sideways information passing the rewrite uses). They
// live here rather than in internal/adorn — which adorns predicates
// with the paper's constraint triplets and depends on
// internal/rewrite — so the eval → magic dependency stays acyclic.

import (
	"strings"

	"repro/internal/ast"
)

// BindingPattern is a bound/free adornment: one byte per argument
// position, 'b' where the argument is bound (a constant, or a variable
// already bound by the time the atom is reached) and 'f' where it is
// free. The empty pattern adorns a zero-ary predicate.
type BindingPattern string

// GoalPattern returns the binding pattern of a query goal: 'b' at
// constant positions, 'f' at variable positions.
func GoalPattern(goal []ast.Term) BindingPattern {
	return PatternFor(goal, nil)
}

// PatternFor returns the binding pattern of an atom's argument list
// given the set of variables bound so far: constants and bound
// variables adorn 'b', everything else 'f'.
func PatternFor(args []ast.Term, bound map[string]bool) BindingPattern {
	var b strings.Builder
	b.Grow(len(args))
	for _, t := range args {
		if t.IsConst() || (t.IsVar() && bound[t.Name]) {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return BindingPattern(b.String())
}

// HasBound reports whether the pattern binds at least one position —
// the applicability condition for demand-driven evaluation.
func (bp BindingPattern) HasBound() bool {
	return strings.IndexByte(string(bp), 'b') >= 0
}

// Bound returns the indices of the bound positions, in order.
func (bp BindingPattern) Bound() []int {
	var out []int
	for i := 0; i < len(bp); i++ {
		if bp[i] == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// Project returns the terms at the pattern's bound positions, in
// order — the arguments a magic predicate for this pattern carries.
func (bp BindingPattern) Project(args []ast.Term) []ast.Term {
	out := make([]ast.Term, 0, len(args))
	for i := 0; i < len(bp) && i < len(args); i++ {
		if bp[i] == 'b' {
			out = append(out, args[i])
		}
	}
	return out
}
