package qtree

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the query forest as indented text, in the spirit of
// Figure 1 of the paper: one tree per root, goal nodes annotated with
// their adornment triplets, rule nodes shown as the rules they carry.
// Classes already printed are referenced by name instead of being
// re-expanded (the forest encodes recursion by sharing).
func (t *Tree) Print() string {
	var b strings.Builder
	printed := map[int]bool{}
	for i, root := range t.Roots {
		fmt.Fprintf(&b, "=== tree %d: root %s ===\n", i+1, t.nodeName(root))
		t.printNode(&b, root, 0, printed)
	}
	if len(t.Roots) == 0 {
		b.WriteString("(empty forest: the query predicate is unsatisfiable w.r.t. the constraints)\n")
	}
	return b.String()
}

// nodeName renders a goal node compactly: pred^adornment{label}.
func (t *Tree) nodeName(n *Node) string {
	live := ""
	if !n.Live {
		live = " [pruned]"
	}
	return fmt.Sprintf("%s^a%d#%d%s", n.Pred, n.AdornID, n.ID, live)
}

func (t *Tree) printNode(b *strings.Builder, n *Node, depth int, printed map[int]bool) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s %s\n", ind, t.nodeName(n), t.describeAdorn(n))
	if printed[n.ID] {
		fmt.Fprintf(b, "%s  (see above)\n", ind)
		return
	}
	printed[n.ID] = true
	for _, rn := range n.RuleKids {
		live := ""
		if !rn.Live {
			live = " [pruned]"
		}
		fmt.Fprintf(b, "%s  rule: %s%s\n", ind, rn.AR.Rule, live)
		for _, c := range rn.Children {
			if c != nil {
				t.printNode(b, c, depth+2, printed)
			}
		}
	}
}

// describeAdorn summarizes a node's adornment: for each non-trivial
// triplet, the constraint index and the unmapped atoms.
func (t *Tree) describeAdorn(n *Node) string {
	ad := t.Res.Adorn[n.Pred][n.AdornID]
	var parts []string
	for _, tr := range ad.Triplets {
		plan := t.Res.Plans[tr.IC]
		if len(tr.Unmapped) == len(plan.IC.Pos) && len(tr.Sigma) == 0 {
			continue // trivial
		}
		var atoms []string
		for _, ui := range tr.Unmapped {
			atoms = append(atoms, plan.IC.Pos[ui].String())
		}
		parts = append(parts, fmt.Sprintf("ic%d:{%s}", tr.IC, strings.Join(atoms, ", ")))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}
