package main

// P3: compiled join plans (interned terms, slot bindings, greedy join
// ordering) versus the legacy string-keyed engine. Same programs, same
// databases, Workers fixed at 1 so allocation counts are deterministic;
// the table reports wall clock (best of 3), a per-run allocation count
// (runtime.MemStats.Mallocs delta), join probes, and whether the two
// engines agreed bit-for-bit on answers, derived tuples, and probes.
// With -out the rows are also written as JSON (committed as
// BENCH_3.json for regression tracking).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	sqo "repro"
	"repro/internal/workload"
)

type p3Row struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	Probes   int64  `json:"probes"`
	Answers  int    `json:"answers"`
	Derived  int64  `json:"derived"`
}

type p3Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p3Row `json:"results"`
}

// measureAllocs runs one evaluation and returns the measurement plus
// the number of heap allocations it performed.
func measureAllocs(p *sqo.Program, db *sqo.DB, opts sqo.EvalOptions) (measurement, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	m := measureWith(p, db, opts)
	runtime.ReadMemStats(&after)
	return m, after.Mallocs - before.Mallocs
}

func runP3() {
	type p3case struct {
		name string
		prog *sqo.Program
		db   *sqo.DB
	}
	tc := sqo.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	gp := sqo.MustParseProgram(goodPathSrc)
	fig := sqo.MustParseProgram(figure1Src)
	cases := []p3case{
		{"transclosure chain(250)", tc, sqo.NewDBFrom(workload.Chain(1, 250))},
		{"goodpath(600,100,150)", gp, sqo.NewDBFrom(workload.GoodPath(600, 100, 150))},
		{"figure1 ABComb(8,14,14)", fig, sqo.NewDBFrom(workload.ABComb(8, 14, 14))},
	}
	if *quick {
		cases = []p3case{
			{"transclosure chain(120)", tc, sqo.NewDBFrom(workload.Chain(1, 120))},
			{"goodpath(200,100,60)", gp, sqo.NewDBFrom(workload.GoodPath(200, 100, 60))},
		}
	}
	legacy := sqo.DefaultEvalOptions()
	legacy.CompilePlans = false
	legacy.Workers = 1
	compiled := sqo.DefaultEvalOptions()
	compiled.Workers = 1

	report := p3Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}
	header("workload", "engine", "time", "allocs", "probes", "speedup", "agree")
	for _, c := range cases {
		var rows [2]p3Row
		var ms [2]measurement
		for ei, eng := range []struct {
			name string
			opts sqo.EvalOptions
		}{{"legacy", legacy}, {"compiled", compiled}} {
			m, allocs := measureAllocs(c.prog, c.db, eng.opts)
			// Best of 3 to damp scheduler noise; allocations are
			// deterministic, the first run's count stands.
			for rep := 0; rep < 2; rep++ {
				if r := measureWith(c.prog, c.db, eng.opts); r.elapsed < m.elapsed {
					m.elapsed = r.elapsed
				}
			}
			ms[ei] = m
			rows[ei] = p3Row{
				Workload: c.name,
				Engine:   eng.name,
				NsOp:     m.elapsed.Nanoseconds(),
				AllocsOp: allocs,
				Probes:   m.probes,
				Answers:  m.answers,
				Derived:  m.derived,
			}
		}
		agree := ms[0].answers == ms[1].answers && ms[0].derived == ms[1].derived && ms[0].probes == ms[1].probes
		for ei := range rows {
			speedup := ""
			if ei == 1 {
				speedup = fmt.Sprintf("%.1fx", float64(rows[0].NsOp)/float64(rows[1].NsOp))
			}
			fmt.Printf("%-24s | %-8s | %12v | %9d | %9d | %7s | %v\n",
				rows[ei].Workload, rows[ei].Engine,
				time.Duration(rows[ei].NsOp).Round(time.Microsecond),
				rows[ei].AllocsOp, rows[ei].Probes, speedup, agree)
		}
		report.Rows = append(report.Rows, rows[:]...)
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
