package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	sqo "repro"
)

// CacheKey returns the canonical cache key for an optimization
// request: a SHA-256 over the parsed program (rendered in canonical
// source syntax, query declaration included), every integrity
// constraint, and the optimizer pass selection. Requests that differ
// only in whitespace, comments, or atom spelling of the *source text*
// therefore share a key, while any semantic difference — one rule, one
// constraint, one pass toggle — produces a distinct one. The goal
// terms are part of the key (via GoalAtom): cached optimized programs
// carry the goal that drives the magic-sets rewrite downstream, so
// `?- path(a, Y).` and `?- path(X, b).` — same program, different
// adornment — must not share an entry.
func CacheKey(p *sqo.Program, ics []sqo.IC, opts sqo.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "program\x00%s\x00query\x00%s\x00", p.String(), p.GoalAtom().Key())
	fmt.Fprintf(h, "ics\x00%d\x00", len(ics))
	for _, ic := range ics {
		fmt.Fprintf(h, "%s\x00", ic.String())
	}
	fmt.Fprintf(h, "opts\x00%t%t%t", opts.NormalizeOrder, opts.LocalRewrite, opts.PushOrder)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64 // lookups served from a stored entry
	Misses    int64 // lookups that ran a fresh rewrite
	Coalesced int64 // lookups that joined an in-flight identical rewrite
	Evictions int64 // entries dropped by LRU pressure
	Size      int   // entries currently stored
}

// Cache is a bounded LRU cache of optimization outcomes keyed by
// CacheKey, with singleflight deduplication: when several requests ask
// for the same (program, ics, options) concurrently, exactly one
// rewrite runs and the rest wait for its result. Outcomes are stored
// by pointer and must be treated as immutable by callers.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
	stats   CacheStats

	// metrics, when non-nil, mirrors the stats counters into the
	// server's registry as they change.
	metrics *Metrics
}

type cacheEntry struct {
	key string
	res *sqo.Result
}

// flight is one in-progress rewrite that concurrent identical
// requests wait on.
type flight struct {
	done chan struct{}
	res  *sqo.Result
	err  error
}

// NewCache returns a cache bounded to max entries (max < 1 is treated
// as 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.entries)
	return s
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get looks the key up and promotes it to most-recently-used. It does
// not touch the hit/miss counters; GetOrCompute owns those.
func (c *Cache) get(key string) (*sqo.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores the key, evicting from the LRU tail if over capacity.
func (c *Cache) add(key string, res *sqo.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.stats.Evictions++
		if c.metrics != nil {
			c.metrics.CacheEvictions.Add(1)
		}
	}
	if c.metrics != nil {
		c.metrics.CacheSize.Store(int64(len(c.entries)))
	}
}

// GetOrCompute returns the cached outcome for key, computing it with
// compute on a miss. Concurrent calls with the same key during a miss
// coalesce onto a single compute call (singleflight); the extra
// callers report hit=true, since they did not pay for a rewrite.
// Errors are never cached — every waiter receives the error and a
// later call retries. A waiter whose ctx ends returns early with the
// ctx error while the computation continues for the others.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() (*sqo.Result, error)) (res *sqo.Result, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.flights[key]; ok {
		// Someone is already rewriting this exact request: wait.
		c.stats.Coalesced++
		c.stats.Hits++
		if c.metrics != nil {
			c.metrics.CacheCoalesced.Add(1)
			c.metrics.CacheHits.Add(1)
		}
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, true, f.err
			}
			return f.res, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	// Miss: this caller leads the flight.
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	if c.metrics != nil {
		c.metrics.CacheMisses.Add(1)
	}
	c.mu.Unlock()

	f.res, f.err = compute()
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	c.add(key, f.res)
	return f.res, false, nil
}
