package rewrite

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/unify"
)

// PropagateHeadEqualities realizes the paper's footnote 1 ("during the
// construction of t some variables of the root may be equated") as a
// program transformation: whenever EVERY rule head of an IDB predicate
// forces an equality between two argument positions (or pins a
// position to a constant), every subgoal occurrence of that predicate
// is unified accordingly, equating the caller's variables. The pass
// iterates to a fixpoint, since a substitution in a rule body can
// equate that rule's own head arguments and thereby propagate further
// up.
//
// The transformation is an equivalence: tuples of the predicate can
// only ever have the forced shape, so unifying the occurrence changes
// no answers. It matters for precision of the query-tree algorithm:
// without it, an equality forced inside a subtree is invisible to
// sibling subgoals of the calling rule.
func PropagateHeadEqualities(p *ast.Program) *ast.Program {
	out := p.Clone()
	for iter := 0; iter < len(out.Rules)+8; iter++ {
		forced := forcedHeadShapes(out)
		changed := false
		for ri := range out.Rules {
			r := out.Rules[ri]
			s := unify.Subst{}
			for _, sub := range r.Pos {
				shape, ok := forced[sub.Pred]
				if !ok {
					continue
				}
				// Unify shape-side first so that shape variables bind
				// to occurrence terms (never the other way round) and
				// repeated classes equate the occurrence's variables.
				if s2, ok := unify.Unify(shapeAtom(sub.Pred, shape, len(sub.Args)), sub, s); ok {
					s = s2
				}
				// A failed unification means the subgoal can never be
				// satisfied (e.g. p(1, 2) where all heads force
				// equality); the rule is dead, but removing it here
				// would change IsInit bookkeeping — the query tree
				// prunes it anyway.
			}
			if len(s) > 0 {
				nr := s.ApplyRule(r)
				if nr.String() != r.String() {
					out.Rules[ri] = nr
					changed = true
				}
			}
		}
		if !changed {
			return out
		}
	}
	return out
}

// headShape describes what every head of a predicate forces: for each
// argument position, either a shared equivalence class id or a pinned
// constant.
type headShape struct {
	class []int      // position -> class id
	pin   []ast.Term // class id -> constant (zero Term if none)
}

// forcedHeadShapes computes, per IDB predicate, the equalities and
// constants common to all of its rule heads. Predicates whose heads
// force nothing are omitted.
func forcedHeadShapes(p *ast.Program) map[string]headShape {
	shapes := map[string]headShape{}
	for _, r := range p.Rules {
		h := r.Head
		cur := shapeOf(h)
		prev, ok := shapes[h.Pred]
		if !ok {
			shapes[h.Pred] = cur
			continue
		}
		shapes[h.Pred] = joinShapes(prev, cur)
	}
	// Drop shapes that force nothing (all classes distinct, no pins).
	for pred, sh := range shapes {
		interesting := false
		seen := map[int]bool{}
		for _, c := range sh.class {
			if seen[c] {
				interesting = true // repeated class: forced equality
			}
			seen[c] = true
		}
		for _, t := range sh.pin {
			if t.IsConst() {
				interesting = true // pinned constant
			}
		}
		if !interesting {
			delete(shapes, pred)
		}
	}
	return shapes
}

// shapeOf extracts the equality/constant shape of one head atom.
func shapeOf(h ast.Atom) headShape {
	sh := headShape{class: make([]int, len(h.Args))}
	byKey := map[string]int{}
	for i, t := range h.Args {
		k := t.Key()
		id, ok := byKey[k]
		if !ok {
			id = len(sh.pin)
			byKey[k] = id
			if t.IsConst() {
				sh.pin = append(sh.pin, t)
			} else {
				sh.pin = append(sh.pin, ast.Term{})
			}
		}
		sh.class[i] = id
	}
	return sh
}

// joinShapes computes the least-restrictive shape implied by both: two
// positions stay equal only if equal in both; a pin survives only if
// both pin the same constant.
func joinShapes(a, b headShape) headShape {
	n := len(a.class)
	out := headShape{class: make([]int, n)}
	byPair := map[[2]int]int{}
	for i := 0; i < n; i++ {
		key := [2]int{a.class[i], b.class[i]}
		id, ok := byPair[key]
		if !ok {
			id = len(out.pin)
			byPair[key] = id
			pa, pb := a.pin[a.class[i]], b.pin[b.class[i]]
			if pa.IsConst() && pb.IsConst() && pa.Equal(pb) {
				out.pin = append(out.pin, pa)
			} else {
				out.pin = append(out.pin, ast.Term{})
			}
		}
		out.class[i] = id
	}
	return out
}

// shapeAtom materializes a shape as an atom with fresh variables per
// class (or the pinned constant), suitable for unification against an
// occurrence.
func shapeAtom(pred string, sh headShape, arity int) ast.Atom {
	args := make([]ast.Term, arity)
	for i := 0; i < arity; i++ {
		c := sh.class[i]
		if sh.pin[c].IsConst() {
			args[i] = sh.pin[c]
		} else {
			args[i] = ast.V(fmt.Sprintf("Hq#%s#%d", pred, c))
		}
	}
	return ast.NewAtom(pred, args...)
}
