// Package residue implements residue computation in the style of
// Chakravarthy, Grant & Minker ("Foundations of semantic query
// optimization for deductive databases", 1988) — the prior art the
// paper builds on and the baseline its query-tree algorithm is
// compared against (ablation A2 in DESIGN.md).
//
// Given a rule r and an integrity constraint c, a partial mapping τ of
// a subset of c's positive atoms into the body of r yields a residue:
// the conjuncts of c not mapped by τ, with τ applied. Every consistent
// database satisfies the negation of each residue for every
// instantiation of r, so residues may be attached to r as extra
// (negated) conditions, or — when a residue is empty — r may be
// deleted outright. The limitation of this per-rule view, and the
// point of the paper, is that interactions spanning several rules of a
// recursive program are invisible to it.
package residue

import (
	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/unify"
)

// Residue is the unmapped remainder of an integrity constraint under a
// partial mapping into a rule body. Variables that were mapped have
// been replaced by rule terms; remaining variables are existentially
// quantified "fresh" variables of the constraint.
type Residue struct {
	Pos []ast.Atom
	Neg []ast.Atom
	Cmp []ast.Cmp
}

// Empty reports whether nothing of the constraint remains unmapped —
// i.e. the constraint maps fully into the rule body, so the rule can
// never fire on a consistent database.
func (res Residue) Empty() bool {
	return len(res.Pos) == 0 && len(res.Neg) == 0 && len(res.Cmp) == 0
}

// key canonically identifies a residue for deduplication.
func (res Residue) key() string {
	return ast.AtomsKey(res.Pos) + "|!" + ast.AtomsKey(res.Neg) + "|" + ast.CmpsKey(res.Cmp)
}

// Compute returns the residues of ic with respect to rule r, one per
// homomorphism from each non-empty subset of ic's positive atoms into
// the positive subgoals of r. Residues are deduplicated. The trivial
// residue (empty mapping) is not returned: it carries no information
// beyond the constraint itself.
func Compute(r ast.Rule, ic ast.IC) []Residue {
	// Rename the constraint apart from the rule so one-way matching is
	// well-defined.
	var fr ast.Freshener
	taken := map[string]bool{}
	for _, v := range r.Vars() {
		taken[v] = true
	}
	icr := ic
	for hasCollision(ic, taken) {
		icr = ast.RenameIC(icr, fr.Next())
		if !hasCollision(icr, taken) {
			break
		}
	}
	ic = icr

	var out []Residue
	seen := map[string]bool{}
	n := len(ic.Pos)
	// Enumerate non-empty subsets of the positive atoms.
	for mask := 1; mask < 1<<n; mask++ {
		var mapped []ast.Atom
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				mapped = append(mapped, ic.Pos[i])
			}
		}
		unify.Homomorphisms(mapped, r.Pos, func(h unify.Subst) bool {
			res := Residue{}
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					res.Pos = append(res.Pos, h.ApplyAtom(ic.Pos[i]))
				}
			}
			for _, a := range ic.Neg {
				res.Neg = append(res.Neg, h.ApplyAtom(a))
			}
			for _, c := range ic.Cmp {
				res.Cmp = append(res.Cmp, h.ApplyCmp(c))
			}
			if k := res.key(); !seen[k] {
				seen[k] = true
				out = append(out, res)
			}
			return true
		})
	}
	return out
}

func hasCollision(ic ast.IC, taken map[string]bool) bool {
	for _, v := range ic.Vars() {
		if taken[v] {
			return true
		}
	}
	return false
}

// groundedIn reports whether every variable of the residue occurs in
// the rule (i.e. the partial mapping instantiated the whole residue
// with rule terms), so its negation is expressible as extra literals
// of the rule.
func (res Residue) groundedIn(r ast.Rule) bool {
	ruleVars := map[string]bool{}
	for _, v := range r.Vars() {
		ruleVars[v] = true
	}
	check := func(v string) bool { return ruleVars[v] }
	for _, a := range res.Pos {
		for _, v := range a.Vars(nil) {
			if !check(v) {
				return false
			}
		}
	}
	for _, a := range res.Neg {
		for _, v := range a.Vars(nil) {
			if !check(v) {
				return false
			}
		}
	}
	for _, c := range res.Cmp {
		for _, v := range c.Vars(nil) {
			if !check(v) {
				return false
			}
		}
	}
	return true
}

// OptimizeRule applies all residues of the given constraints to the
// rule. It returns the rewritten rule set (several rules when the
// negation of a multi-atom order residue forces a case split, none
// when some residue proves the rule unsatisfiable) and whether the
// rule was dropped.
func OptimizeRule(r ast.Rule, ics []ast.IC) ([]ast.Rule, bool) {
	rules := []ast.Rule{r.Clone()}
	for _, ic := range ics {
		var next []ast.Rule
		for _, cur := range rules {
			rs, dropped := applyICToRule(cur, ic)
			if !dropped {
				next = append(next, rs...)
			}
		}
		rules = next
		if len(rules) == 0 {
			return nil, true
		}
	}
	// Final order-consistency sweep: a rule whose order atoms are
	// jointly unsatisfiable can never fire.
	var live []ast.Rule
	for _, cur := range rules {
		if order.NewSet(cur.Cmp...).Satisfiable() {
			live = append(live, cur)
		}
	}
	return live, len(live) == 0
}

// applyICToRule folds one constraint's residues into one rule.
func applyICToRule(r ast.Rule, ic ast.IC) ([]ast.Rule, bool) {
	rules := []ast.Rule{r}
	for _, res := range Compute(r, ic) {
		switch {
		case res.Empty():
			// The whole constraint maps into the body: the rule is
			// unsatisfiable on consistent databases.
			return nil, true

		case len(res.Pos) == 0 && len(res.Neg) == 0 && res.groundedIn(r):
			// Order-only residue o1 ∧ ... ∧ ok over rule variables:
			// if the ground conjuncts all hold and no variables remain,
			// the rule is unsatisfiable; otherwise attach
			// ¬o1 ∨ ... ∨ ¬ok by splitting each current rule into k
			// variants.
			var next []ast.Rule
			for _, cur := range rules {
				curSet := order.NewSet(cur.Cmp...)
				if curSet.ImpliesAll(res.Cmp) {
					// The rule already forces the residue: unsatisfiable.
					continue
				}
				for _, c := range res.Cmp {
					if curSet.Implies(c.Negate()) {
						// This disjunct is already guaranteed; the split
						// collapses to the rule itself.
						next = append(next, cur)
						break
					}
				}
				if len(next) > 0 && sameRule(next[len(next)-1], cur) {
					continue
				}
				for _, c := range res.Cmp {
					v := cur.Clone()
					v.Cmp = append(v.Cmp, c.Negate())
					if order.NewSet(v.Cmp...).Satisfiable() {
						next = append(next, v)
					}
				}
			}
			if len(next) == 0 {
				return nil, true
			}
			rules = next

		case len(res.Pos) == 1 && len(res.Neg) == 0 && len(res.Cmp) == 0 && res.groundedIn(r):
			// Single positive EDB atom remains: its absence is
			// guaranteed, attach it negated.
			var next []ast.Rule
			for _, cur := range rules {
				v := cur.Clone()
				if !hasNeg(v, res.Pos[0]) {
					v.Neg = append(v.Neg, res.Pos[0])
				}
				next = append(next, v)
			}
			rules = next

		case len(res.Pos) == 0 && len(res.Neg) == 1 && len(res.Cmp) == 0 && res.groundedIn(r):
			// Single negated EDB atom remains: the atom's presence is
			// guaranteed, attach it positively.
			var next []ast.Rule
			for _, cur := range rules {
				v := cur.Clone()
				if !hasPos(v, res.Neg[0]) {
					v.Pos = append(v.Pos, res.Neg[0])
				}
				next = append(next, v)
			}
			rules = next
		}
		// Residues with free variables or mixed shapes are not
		// expressible as extra literals; the per-rule method skips
		// them (precisely the information the query tree recovers).
	}
	return rules, false
}

func sameRule(a, b ast.Rule) bool { return a.String() == b.String() }

func hasNeg(r ast.Rule, a ast.Atom) bool {
	for _, n := range r.Neg {
		if n.Equal(a) {
			return true
		}
	}
	return false
}

func hasPos(r ast.Rule, a ast.Atom) bool {
	for _, p := range r.Pos {
		if p.Equal(a) {
			return true
		}
	}
	return false
}

// Optimize applies OptimizeRule to every rule of the program — the
// [CGM88]-style per-rule semantic optimizer used as a baseline.
func Optimize(p *ast.Program, ics []ast.IC) *ast.Program {
	out := &ast.Program{Query: p.Query}
	for _, r := range p.Rules {
		rs, dropped := OptimizeRule(r, ics)
		if !dropped {
			out.Rules = append(out.Rules, rs...)
		}
	}
	return out
}
