package store_test

// Crash-recovery differential test. A child process (this test binary
// re-executed with -test.run=TestCrashHelper) drives a randomized
// mutation workload against a durable sqod server and prints one ACK
// line per completed operation; the parent hard-kills it (SIGKILL — no
// drain, no final checkpoint) after a scenario-chosen number of acks,
// then recovers the directory and proves the recovered state is
// exactly the state an uninterrupted in-memory run reaches after some
// prefix of the schedule:
//
//   - the prefix covers every acknowledged operation (an acked write
//     is never lost),
//   - the durable mirror — datasets, views, interned rows, per-column
//     sketches — is bit-identical (store.DiffState), and
//   - the recovered server answers every surviving view identically.
//
// The prefix search over [acked, total] is the crash semantics: the
// kill can land between a WAL append and its ACK, so recovery may
// legitimately include a small suffix of unacknowledged operations,
// but never a partial one and never a gap.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/workload"
)

type crashOp struct {
	method, path, body string
}

func factsSrc(facts []ast.Atom) string {
	var b strings.Builder
	for _, a := range facts {
		b.WriteString(a.String())
		b.WriteString(".\n")
	}
	return b.String()
}

func viewBody(prog, ics string, optimize bool) string {
	body, _ := json.Marshal(map[string]any{"program": prog, "ics": ics, "optimize": optimize})
	return string(body)
}

// crashSchedule derives a deterministic mutation workload from seed:
// dataset creates/deletes/replaces, fact batches in and out, view
// registrations and drops — every durable operation kind, in an order
// that keeps re-running the same seed byte-for-byte reproducible.
func crashSchedule(seed int64) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	prog, ics, facts := workload.RandomProgram(seed + 1000)
	ops := []crashOp{
		{http.MethodPost, "/v1/datasets/d0", factsSrc(facts)},
		{http.MethodPost, "/v1/datasets/d0/views/v0", viewBody(prog, ics, true)},
	}
	n := 10 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0: // insert a fresh batch
			ops = append(ops, crashOp{http.MethodPost, "/v1/datasets/d0/facts",
				factsSrc(workload.MonotoneRandomGraph(20, 3+rng.Intn(5), rng.Int63()))})
		case 1: // retract a sample of the original facts
			k := 1 + rng.Intn(3)
			sample := make([]ast.Atom, 0, k)
			for j := 0; j < k; j++ {
				sample = append(sample, facts[rng.Intn(len(facts))])
			}
			ops = append(ops, crashOp{http.MethodDelete, "/v1/datasets/d0/facts", factsSrc(sample)})
		case 2: // second dataset (409 once it exists — still deterministic)
			ops = append(ops, crashOp{http.MethodPost, "/v1/datasets/d1",
				factsSrc(workload.MonotoneRandomGraph(12, 10, rng.Int63()))})
		case 3: // wholesale replace (PUT logs the diff as one fact batch)
			ops = append(ops, crashOp{http.MethodPut, "/v1/datasets/d1",
				factsSrc(workload.MonotoneRandomGraph(12, 8, rng.Int63()))})
		case 4: // second view in and out
			if rng.Intn(2) == 0 {
				ops = append(ops, crashOp{http.MethodPost, "/v1/datasets/d0/views/v1",
					viewBody("tc(X, Y) :- step(X, Y).\ntc(X, Y) :- step(X, Z), tc(Z, Y).\n?- tc.\n", "", rng.Intn(2) == 0)})
			} else {
				ops = append(ops, crashOp{http.MethodDelete, "/v1/datasets/d0/views/v1", ""})
			}
		default:
			ops = append(ops, crashOp{http.MethodDelete, "/v1/datasets/d1", ""})
		}
	}
	return ops
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newServerOn builds a server over an opened store, replaying its
// recovered state.
func newServerOn(st *store.Store, rec *store.Recovered) *server.Server {
	return server.New(server.Config{Store: st, Recovered: rec, Logger: quietLogger()})
}

func driveOp(h http.Handler, op crashOp) int {
	req := httptest.NewRequest(op.method, op.path, strings.NewReader(op.body))
	if op.method != http.MethodGet {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code
}

// TestCrashHelper is the child-process body; it only runs when the
// parent sets SQOD_CRASH_DIR.
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv("SQOD_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-test helper; driven by TestCrashRecoveryDifferential")
	}
	seed, _ := strconv.ParseInt(os.Getenv("SQOD_CRASH_SEED"), 10, 64)
	ckpt, _ := strconv.Atoi(os.Getenv("SQOD_CRASH_CKPT"))
	policy, err := store.ParseFsyncPolicy(os.Getenv("SQOD_CRASH_FSYNC"))
	if err != nil {
		t.Fatal(err)
	}
	st, rec, err := store.Open(dir, store.Options{
		Fsync: policy, FsyncInterval: time.Millisecond, CheckpointEvery: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := newServerOn(st, rec).Handler()
	for i, op := range crashSchedule(seed) {
		code := driveOp(h, op)
		// The ACK goes to stdout only after the handler returned, i.e.
		// after the WAL append (under -fsync=always, after the fsync).
		fmt.Printf("ACK %d %d\n", i, code)
	}
	fmt.Println("DONE")
}

type crashScenario struct {
	name      string
	seed      int64
	fsync     string
	ckpt      int // checkpoint-every; 0 = never during the run
	killAfter int // SIGKILL after this many acks (≥ schedule length = clean exit)
}

func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []crashScenario{
		{"always-nockpt", 1, "always", 0, 4},
		{"always-ckpt5", 2, "always", 5, 11},
		{"never-ckpt3", 3, "never", 3, 7},
		{"interval-clean-exit", 4, "interval", 4, 999},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			acked := runChildUntilKilled(t, exe, dir, sc)
			verifyRecovered(t, dir, sc, acked)
		})
	}
}

// runChildUntilKilled starts the helper, counts its ACK lines, and
// SIGKILLs it after sc.killAfter of them. Returns the number of
// operations acknowledged before the kill landed (the child may print
// more acks than the threshold while the signal is in flight; all of
// them are durability promises, so all of them count).
func runChildUntilKilled(t *testing.T, exe, dir string, sc crashScenario) int {
	t.Helper()
	cmd := exec.Command(exe, "-test.run=TestCrashHelper$")
	cmd.Env = append(os.Environ(),
		"SQOD_CRASH_DIR="+dir,
		"SQOD_CRASH_SEED="+strconv.FormatInt(sc.seed, 10),
		"SQOD_CRASH_CKPT="+strconv.Itoa(sc.ckpt),
		"SQOD_CRASH_FSYNC="+sc.fsync,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	safety := time.AfterFunc(60*time.Second, func() { _ = cmd.Process.Kill() })
	defer safety.Stop()

	acked := 0
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "ACK ") {
			acked++
			if acked == sc.killAfter {
				_ = cmd.Process.Kill() // SIGKILL: no drain, no checkpoint
			}
		}
	}
	_ = cmd.Wait() // exit status is irrelevant; the kill is the point
	if acked == 0 {
		t.Fatal("child acknowledged no operations")
	}
	return acked
}

// verifyRecovered recovers dir and searches for the schedule prefix
// whose uninterrupted in-memory replay matches it bit-for-bit.
func verifyRecovered(t *testing.T, dir string, sc crashScenario, acked int) {
	t.Helper()
	recSt, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	defer recSt.Close()
	recSrv := newServerOn(recSt, rec)

	schedule := crashSchedule(sc.seed)
	total := len(schedule)
	if acked > total {
		acked = total
	}
	var lastDiff string
	for i := acked; i <= total; i++ {
		// An ephemeral store under a live server replays the prefix the
		// way the child originally ran it: same handlers, same WAL-op
		// order, same symbol-id assignment — so spilled sketches must
		// match bit for bit, not just approximately.
		memSt, memRec, err := store.Open("", store.Options{CheckpointEvery: sc.ckpt})
		if err != nil {
			t.Fatal(err)
		}
		memSrv := newServerOn(memSt, memRec)
		h := memSrv.Handler()
		for _, op := range schedule[:i] {
			driveOp(h, op)
		}
		if diff := memSt.DiffState(recSt); diff != "" {
			lastDiff = fmt.Sprintf("prefix %d: %s", i, diff)
			continue
		}
		compareServers(t, memSrv, recSrv)
		t.Logf("recovered state = uninterrupted replay of %d/%d ops (%d acked, fsync=%s)",
			i, total, acked, sc.fsync)
		return
	}
	t.Fatalf("recovered state matches no schedule prefix in [%d, %d]; last diff: %s",
		acked, total, lastDiff)
}

// compareServers checks the recovered server against the replay server
// at the HTTP surface: same dataset inventory and identical answers
// for every registered view.
func compareServers(t *testing.T, memSrv, recSrv *server.Server) {
	t.Helper()
	memH, recH := memSrv.Handler(), recSrv.Handler()

	list := func(h http.Handler) []server.DatasetInfo {
		req := httptest.NewRequest(http.MethodGet, "/v1/datasets", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var infos []server.DatasetInfo
		if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
			t.Fatalf("datasets list: %v", err)
		}
		for i := range infos {
			infos[i].LastModified = time.Time{} // wall clock differs by construction
		}
		return infos
	}
	mem, recd := list(memH), list(recH)
	if fmt.Sprintf("%+v", mem) != fmt.Sprintf("%+v", recd) {
		t.Fatalf("dataset inventory differs:\nreplay:    %+v\nrecovered: %+v", mem, recd)
	}

	for _, info := range mem {
		for _, view := range info.Views {
			path := "/v1/datasets/" + info.Name + "/views/" + view
			answers := func(h http.Handler) (string, int) {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				var resp struct {
					Answers     []string `json:"answers"`
					AnswerCount int      `json:"answer_count"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatalf("view %s: %v", path, err)
				}
				return strings.Join(resp.Answers, ";"), resp.AnswerCount
			}
			ma, mc := answers(memH)
			ra, rc := answers(recH)
			if ma != ra || mc != rc {
				t.Fatalf("view %s answers differ after recovery:\nreplay:    %s\nrecovered: %s", path, ma, ra)
			}
		}
	}
}
