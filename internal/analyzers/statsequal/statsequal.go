// Package statsequal is a build-time analyzer for the eval.Stats
// comparison contract: every field of the Stats struct must be either
// compared by the Equal method or deliberately listed in the
// statsEqualExcluded set, and the exclusion set must not name stale or
// double-accounted fields. The contract matters because differential
// tests across engines, policies, and worker counts use Equal as the
// determinism oracle — a field added to Stats but forgotten in both
// places silently escapes that oracle.
//
// The analysis is purely syntactic (go/ast, no type checking, no
// third-party dependencies), which is all the pattern needs: the
// struct, the method, and the map literal live side by side in one
// package. cmd/statsequal wraps it in the `go vet -vettool` driver
// protocol so CI runs it as a vet pass; the reflection-based
// TestStatsEqualPartition in internal/eval enforces the same contract
// behaviorally.
package statsequal

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// Finding is one contract violation, positioned for file:line:col
// diagnostics.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Check analyzes one package's files. It looks for a struct type named
// Stats, an Equal method with a Stats receiver, and a package-level
// map literal named statsEqualExcluded. When the package does not
// define both the struct and the method the check does not apply and
// Check returns nil — the pattern under enforcement is specifically
// eval's comparison contract, not every type that happens to be called
// Stats.
func Check(files []*ast.File) []Finding {
	var (
		statsDecl *ast.StructType
		equalBody *ast.BlockStmt
		excluded  = map[string]token.Pos{}
	)
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := s.Type.(*ast.StructType); ok && s.Name.Name == "Stats" {
							statsDecl = st
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							if name.Name != "statsEqualExcluded" || i >= len(s.Values) {
								continue
							}
							if lit, ok := s.Values[i].(*ast.CompositeLit); ok {
								for _, elt := range lit.Elts {
									kv, ok := elt.(*ast.KeyValueExpr)
									if !ok {
										continue
									}
									if key, ok := kv.Key.(*ast.BasicLit); ok && key.Kind == token.STRING {
										if name, err := strconv.Unquote(key.Value); err == nil {
											excluded[name] = key.Pos()
										}
									}
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "Equal" && d.Recv != nil && recvIsStats(d.Recv) {
					equalBody = d.Body
				}
			}
		}
	}
	if statsDecl == nil || equalBody == nil {
		return nil
	}

	compared := comparedFields(equalBody)
	var out []Finding
	fields := map[string]bool{}
	for _, f := range statsDecl.Fields.List {
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			fields[name.Name] = true
			inEqual := compared[name.Name]
			_, inExcluded := excluded[name.Name]
			switch {
			case !inEqual && !inExcluded:
				out = append(out, Finding{Pos: name.Pos(),
					Message: fmt.Sprintf("Stats field %s is neither compared in Equal nor listed in statsEqualExcluded; add it to one of them", name.Name)})
			case inEqual && inExcluded:
				out = append(out, Finding{Pos: excluded[name.Name],
					Message: fmt.Sprintf("Stats field %s is both compared in Equal and listed in statsEqualExcluded; drop one", name.Name)})
			}
		}
	}
	for name, pos := range excluded {
		if !fields[name] {
			out = append(out, Finding{Pos: pos,
				Message: fmt.Sprintf("statsEqualExcluded names %s, which is not a field of Stats", name)})
		}
	}
	sortFindings(out)
	return out
}

// recvIsStats reports whether the receiver type is Stats or *Stats.
func recvIsStats(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Stats"
}

// comparedFields collects the field names the Equal body reads through
// any selector on a plain identifier (s.Iterations, o.RuleFirings, a
// range over s.RoundDeltas, ...). Purely syntactic: any mention counts
// as compared, which is the right bias — the analyzer exists to catch
// fields mentioned nowhere.
func comparedFields(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if _, ok := sel.X.(*ast.Ident); ok {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

// sortFindings orders findings by position so output is deterministic
// regardless of map iteration order.
func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Pos < fs[j-1].Pos; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
