package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a datalog program: a set of rules together with a
// distinguished query (goal) predicate.
type Program struct {
	Rules []Rule
	// Query names the distinguished IDB query predicate.
	Query string
	// Goal optionally carries the query's argument terms, written
	// `?- pred(t1, ..., tn).` in source syntax. nil means the bare
	// `?- pred.` form (ask for the whole relation). Constants in the
	// goal are selections on the query predicate — evaluation returns
	// only the tuples matching them — and they are the binding
	// information the magic-sets rewrite (internal/magic) turns into
	// demand predicates. Repeated goal variables additionally require
	// equal values at their positions.
	Goal []Term
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	out := &Program{Query: p.Query, Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		out.Rules[i] = r.Clone()
	}
	if p.Goal != nil {
		out.Goal = append([]Term(nil), p.Goal...)
	}
	return out
}

// GoalAtom returns the query as an atom: the query predicate applied
// to the goal terms (no arguments for the bare `?- pred.` form).
func (p *Program) GoalAtom() Atom {
	return Atom{Pred: p.Query, Args: p.Goal}
}

// MatchesGoal reports whether a tuple of the query relation satisfies
// the goal: constants must be equal at their positions, and positions
// sharing a goal variable must hold equal values. A nil goal matches
// everything. The tuple must have exactly len(p.Goal) terms when a
// goal is present.
func (p *Program) MatchesGoal(tuple []Term) bool {
	if len(p.Goal) == 0 {
		return true
	}
	if len(tuple) != len(p.Goal) {
		return false
	}
	var binding map[string]Term
	for i, g := range p.Goal {
		if g.IsConst() {
			if !g.Equal(tuple[i]) {
				return false
			}
			continue
		}
		if binding == nil {
			binding = make(map[string]Term, len(p.Goal))
		}
		if prev, ok := binding[g.Name]; ok {
			if !prev.Equal(tuple[i]) {
				return false
			}
			continue
		}
		binding[g.Name] = tuple[i]
	}
	return true
}

// IDB returns the set of IDB predicates: those appearing in rule heads.
func (p *Program) IDB() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// EDB returns the set of EDB predicates: those appearing only in rule
// bodies (positively or negatively), never in heads.
func (p *Program) EDB() map[string]bool {
	idb := p.IDB()
	edb := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Pos {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
		for _, a := range r.Neg {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
	}
	return edb
}

// PredArity returns the arity of every predicate mentioned in the
// program, or an error if some predicate is used with two different
// arities.
func (p *Program) PredArity() (map[string]int, error) {
	ar := map[string]int{}
	note := func(a Atom) error {
		if n, ok := ar[a.Pred]; ok && n != a.Arity() {
			return fmt.Errorf("predicate %s used with arities %d and %d", a.Pred, n, a.Arity())
		}
		ar[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Pos {
			if err := note(a); err != nil {
				return nil, err
			}
		}
		for _, a := range r.Neg {
			if err := note(a); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}

// RulesFor returns the rules whose head predicate is pred, in program
// order.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// Validate checks the well-formedness conditions the optimizer assumes:
// consistent arities, safety of every rule, negation applied only to
// EDB predicates, and that the query predicate is an IDB predicate.
func (p *Program) Validate() error {
	if _, err := p.PredArity(); err != nil {
		return err
	}
	// A query predicate with no rules is permitted and denotes the
	// empty relation — the natural output of optimizing a query that
	// is unsatisfiable with respect to its constraints.
	idb := p.IDB()
	if len(p.Goal) > 0 {
		if p.Query == "" {
			return fmt.Errorf("goal %s given without a query predicate", Atom{Pred: "?", Args: p.Goal})
		}
		ar, _ := p.PredArity() // already checked above
		if n, ok := ar[p.Query]; ok && n != len(p.Goal) {
			return fmt.Errorf("goal %s has arity %d but predicate %s has arity %d",
				p.GoalAtom(), len(p.Goal), p.Query, n)
		}
	}
	for _, r := range p.Rules {
		if err := r.Safe(); err != nil {
			return err
		}
		for _, a := range r.Neg {
			if idb[a.Pred] {
				return fmt.Errorf("rule %s negates IDB predicate %s; only EDB predicates may be negated", r, a.Pred)
			}
		}
	}
	return nil
}

// ValidateICs checks that a set of integrity constraints is
// well-formed with respect to the program: no IDB predicates in ic
// bodies, and consistent arities with the program's EDB predicates.
func (p *Program) ValidateICs(ics []IC) error {
	idb := p.IDB()
	ar, err := p.PredArity()
	if err != nil {
		return err
	}
	for i, ic := range ics {
		for _, a := range append(append([]Atom{}, ic.Pos...), ic.Neg...) {
			if idb[a.Pred] {
				return fmt.Errorf("ic %d (%s): IDB predicate %s not allowed in ic bodies", i, ic, a.Pred)
			}
			if n, ok := ar[a.Pred]; ok && n != a.Arity() {
				return fmt.Errorf("ic %d (%s): predicate %s has arity %d in the program but %d here", i, ic, a.Pred, n, a.Arity())
			}
		}
		// Every variable of an order atom or negated atom should occur
		// in some atom of the ic; otherwise the ic can never be
		// evaluated meaningfully against a database.
		posVars := map[string]bool{}
		for _, a := range ic.Pos {
			for _, v := range a.Vars(nil) {
				posVars[v] = true
			}
		}
		for _, a := range ic.Neg {
			for _, v := range a.Vars(nil) {
				posVars[v] = true
			}
		}
		for _, c := range ic.Cmp {
			for _, v := range c.Vars(nil) {
				if !posVars[v] {
					return fmt.Errorf("ic %d (%s): order-atom variable %s occurs in no relational atom", i, ic, v)
				}
			}
		}
	}
	return nil
}

// String renders the program in source syntax, one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedPreds returns the program's predicates sorted by name,
// IDB and EDB combined; handy for deterministic output.
func (p *Program) SortedPreds() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
		for _, a := range r.Pos {
			set[a.Pred] = true
		}
		for _, a := range r.Neg {
			set[a.Pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
