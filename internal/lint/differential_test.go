package lint

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

// TestDeadRulesDeletableDifferential is the soundness check behind the
// "may be deleted" wording: over random workload programs (augmented
// with rules the constraints doom), every rule the linter flags as
// deletable (unsat-body, dead-rule, subsumed-rule) can be removed
// without changing ANY relation of the full evaluation, and every rule
// flagged unreachable can be removed without changing the query
// answers.
func TestDeadRulesDeletableDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			progSrc, icsSrc, facts := workload.RandomProgram(seed)
			// Inject rules the constraints doom: step is strictly
			// increasing (:- step(X,Y), X >= Y), so deadp's body is
			// unsatisfiable and deadq can only fire through deadp.
			progSrc += "deadp(X, Y) :- step(X, Y), Y <= X.\n"
			progSrc += "deadq(X) :- deadp(X, Y), mark(Y).\n"
			p, err := parser.ParseProgram(progSrc)
			if err != nil {
				t.Fatal(err)
			}
			ics, err := parser.ParseICs(icsSrc)
			if err != nil {
				t.Fatal(err)
			}
			rep := Run(context.Background(), p, ics, facts, Options{})

			deletable := map[ast.Pos]bool{}
			queryOnly := map[ast.Pos]bool{}
			for _, f := range rep.Findings {
				switch f.ID {
				case "unsat-body", "dead-rule", "subsumed-rule":
					deletable[f.Pos()] = true
				case "unreachable-rule":
					queryOnly[f.Pos()] = true
				}
			}
			if !deletable[posOfRule(t, p, "deadp")] {
				t.Errorf("injected unsatisfiable deadp rule not flagged; findings: %v", rep.Findings)
			}
			if !deletable[posOfRule(t, p, "deadq")] && !queryOnly[posOfRule(t, p, "deadq")] {
				t.Errorf("injected dead deadq rule not flagged; findings: %v", rep.Findings)
			}

			db := eval.NewDB()
			db.AddFacts(facts)
			origIDB, _, err := eval.Eval(p, db)
			if err != nil {
				t.Fatal(err)
			}
			// Sanity: a rule the linter calls deletable must not have
			// derived anything... its head predicate may still be
			// populated by sibling rules, so the check is on the
			// pruned program's output, below.
			pruned := pruneRules(p, deletable)
			prunedIDB, _, err := eval.Eval(pruned, db)
			if err != nil {
				t.Fatal(err)
			}
			if diff := dbDiff(origIDB, prunedIDB); diff != "" {
				t.Fatalf("deleting lint-flagged rules changed Eval output:\n%s", diff)
			}

			// Unreachable rules preserve only the query answers.
			if len(queryOnly) > 0 {
				q1, _, err := eval.Query(p, db)
				if err != nil {
					t.Fatal(err)
				}
				pruned2 := pruneRules(pruned, queryOnly)
				q2, _, err := eval.Query(pruned2, db)
				if err != nil {
					t.Fatal(err)
				}
				if !sameTuples(q1, q2) {
					t.Fatalf("deleting unreachable rules changed query answers: %v vs %v", q1, q2)
				}
			}
		})
	}
}

func posOfRule(t *testing.T, p *ast.Program, headPred string) ast.Pos {
	t.Helper()
	for _, r := range p.Rules {
		if r.Head.Pred == headPred {
			return r.At
		}
	}
	t.Fatalf("no rule for %s", headPred)
	return ast.Pos{}
}

func pruneRules(p *ast.Program, drop map[ast.Pos]bool) *ast.Program {
	out := &ast.Program{Query: p.Query}
	for _, r := range p.Rules {
		if !drop[r.At] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// dbDiff compares the non-empty relations of two databases and
// describes the first discrepancy.
func dbDiff(a, b *eval.DB) string {
	keys := func(db *eval.DB) map[string][]string {
		out := map[string][]string{}
		for _, pred := range db.Preds() {
			rel := db.Lookup(pred)
			if rel == nil || rel.Len() == 0 {
				continue
			}
			var ks []string
			for _, tup := range rel.Tuples() {
				ks = append(ks, tup.Key())
			}
			sort.Strings(ks)
			out[pred] = ks
		}
		return out
	}
	ka, kb := keys(a), keys(b)
	if !reflect.DeepEqual(ka, kb) {
		return fmt.Sprintf("relations differ:\n  a: %v\n  b: %v", ka, kb)
	}
	return ""
}

func sameTuples(a, b []eval.Tuple) bool {
	ka := make([]string, len(a))
	for i, t := range a {
		ka[i] = t.Key()
	}
	kb := make([]string, len(b))
	for i, t := range b {
		kb[i] = t.Key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}
