package server

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

const magicTestProgram = `
	path(X, Y) :- step(X, Y).
	path(X, Y) :- step(X, Z), path(Z, Y).
	?- path(1, Y).
`

// TestServerMagicPointQuery exercises the goal-directed surface end to
// end: a bound point query evaluates through the magic rewrite by
// default and reports magic:true, per-request "magic":"off" falls back
// to bottom-up with identical answers, an unbound query never applies
// magic, invalid modes answer 400, and sqod_eval_magic_total counts
// exactly the magic evaluations.
func TestServerMagicPointQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "g", serverTestFacts)

	type resp struct {
		Answers []string `json:"answers"`
		Magic   bool     `json:"magic"`
	}
	query := func(program, mode string) resp {
		t.Helper()
		var out resp
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
			"program": program,
			"dataset": "g",
			"magic":   mode,
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("query(magic=%q): %d %s", mode, code, raw)
		}
		return out
	}

	withMagic := query(magicTestProgram, "")
	if !withMagic.Magic {
		t.Fatal("bound point query did not evaluate via magic by default")
	}
	// Reachable from 1: 2, 3, 4, 5.
	if len(withMagic.Answers) != 4 {
		t.Fatalf("answers = %v, want 4 nodes reachable from 1", withMagic.Answers)
	}
	withoutMagic := query(magicTestProgram, "off")
	if withoutMagic.Magic {
		t.Fatal("magic=off still reports magic:true")
	}
	if !reflect.DeepEqual(withMagic.Answers, withoutMagic.Answers) {
		t.Fatalf("magic changed answers:\n%v\nvs\n%v", withMagic.Answers, withoutMagic.Answers)
	}

	unbound := query(serverTestProgram, "on")
	if unbound.Magic {
		t.Fatal("goal-less query reports magic:true")
	}

	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
		"program": magicTestProgram,
		"dataset": "g",
		"magic":   "sometimes",
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid magic mode: %d %s, want 400", code, raw)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if want := "sqod_eval_magic_total 1"; !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing %q:\n%s", want, body)
	}
}

// TestServerMagicCacheKeyedByGoal: two requests over the same rules
// but different goal bindings must not share an optimizer cache entry
// — the goal drives the adornment.
func TestServerMagicCacheKeyedByGoal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "g", serverTestFacts)

	type resp struct {
		Answers  []string `json:"answers"`
		CacheHit bool     `json:"cache_hit"`
	}
	query := func(program string) resp {
		t.Helper()
		var out resp
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
			"program": program,
			"dataset": "g",
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("query: %d %s", code, raw)
		}
		return out
	}

	from1 := query(magicTestProgram)
	if from1.CacheHit {
		t.Fatal("first query should miss the cache")
	}
	from2 := query(strings.Replace(magicTestProgram, "?- path(1, Y).", "?- path(2, Y).", 1))
	if from2.CacheHit {
		t.Fatal("different goal binding hit the first goal's cache entry")
	}
	if reflect.DeepEqual(from1.Answers, from2.Answers) {
		t.Fatalf("distinct goals answered identically: %v", from1.Answers)
	}
	again := query(magicTestProgram)
	if !again.CacheHit {
		t.Fatal("identical goal query should hit the cache")
	}
	if !reflect.DeepEqual(again.Answers, from1.Answers) {
		t.Fatalf("cached evaluation changed answers:\n%v\nvs\n%v", again.Answers, from1.Answers)
	}
}
