package main

// P10: boundedness analysis and recursion elimination — compiling
// provably bounded fixpoints into flat joins, against evaluating the
// recursion as written.
//
// Every workload runs through the same QueryCtx entry point; modes
// differ only in EvalOptions.Elim (and, where noted, Magic). Answers
// must be identical across modes — the run aborts otherwise — and the
// measured quantities are the deterministic work counters (tuples
// derived, join probes) plus best-of-three wall clock.
//
// The workloads bracket where elimination wins and what it costs when
// it cannot:
//
//   - trendy-point: the classical bounded program (buys/likes/trendy,
//     witness depth 2) under a bound point query. The fixpoint+magic
//     row is the instructive one: magic alone is impotent here because
//     the recursive subgoal buys(Z, Y) carries no binding, so demand
//     degenerates to the full relation. After elimination the program
//     is two flat rules and the goal's binding restricts both — the
//     elim+magic row is where the >=10x drop in derived tuples and
//     probes comes from.
//   - trendy-full: the same program with an unbound goal. No binding
//     for magic to exploit; elimination still wins whatever it saves
//     by skipping fixpoint iteration, which is honest but modest.
//   - piecewise-full: a piecewise-linear bounded program whose
//     boundedness witness is the 3-fold unfolding — the analyzer has
//     to climb the ladder past depth 2 to prove it.
//   - tc-fallback-point: genuinely unbounded transitive closure. The
//     elim-auto row pays for the boundedness analysis, is refused
//     (ErrNotBounded), and falls back to the identical fixpoint — same
//     counters, wall clock reporting the honest overhead of asking.
//
// With -out the rows are written as JSON (committed as BENCH_10.json
// for regression tracking).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	sqo "repro"
	"repro/internal/ast"
)

type p10Row struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Answers  int    `json:"answers"`
	Derived  int64  `json:"derived"`
	Probes   int64  `json:"probes"`
	Elim     bool   `json:"elim_applied"`
	WallNs   int64  `json:"wall_ns"`
}

type p10Report struct {
	CPUs   int      `json:"cpus"`
	GOOS   string   `json:"goos"`
	GOARCH string   `json:"goarch"`
	Go     string   `json:"go_version"`
	Rows   []p10Row `json:"results"`
}

// p10TrendyFacts builds the bounded workload's EDB: trendy(i) for each
// person, and likes(i, 1000+i*100+j) so every person likes their own
// distinct items.
func p10TrendyFacts(people, items int) []ast.Atom {
	var out []ast.Atom
	for i := 0; i < people; i++ {
		out = append(out, ast.NewAtom("trendy", ast.N(float64(i))))
		for j := 0; j < items; j++ {
			out = append(out, ast.NewAtom("likes", ast.N(float64(i)), ast.N(float64(1000+i*100+j))))
		}
	}
	return out
}

// p10Measure evaluates the program in one mode, best of three; the
// caller compares answers across modes.
func p10Measure(p *sqo.Program, db *sqo.DB, elim sqo.ElimMode, magic sqo.MagicMode) (p10Row, []string) {
	opts := sqo.DefaultEvalOptions()
	opts.Elim = elim
	opts.Magic = magic
	var row p10Row
	var answers []string
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		tuples, stats, err := sqo.QueryWith(p, db, opts)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start).Nanoseconds()
		if trial == 0 || wall < row.WallNs {
			row = p10Row{
				Answers: len(tuples),
				Derived: stats.TuplesDerived,
				Probes:  stats.JoinProbes,
				Elim:    stats.ElimApplied,
				WallNs:  wall,
			}
		}
		answers = answers[:0]
		for _, t := range tuples {
			answers = append(answers, t.String())
		}
		sort.Strings(answers)
	}
	return row, answers
}

func runP10() {
	people, items := 50, 20
	chains, chainLen := 15, 40
	if *quick {
		people, items = 20, 8
		chains, chainLen = 6, 20
	}

	const trendyPoint = `
		buys(X, Y) :- likes(X, Y).
		buys(X, Y) :- trendy(X), buys(Z, Y).
		?- buys(0, Y).
	`
	const trendyFull = `
		buys(X, Y) :- likes(X, Y).
		buys(X, Y) :- trendy(X), buys(Z, Y).
		?- buys.
	`
	const piecewise = `
		q(X, Y) :- likes(X, Y).
		q(X, Y) :- trendy(X), q(Z, Y).
		q(X, Y) :- trendy(Y), q(X, Z).
		?- q.
	`
	const tcPoint = `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).
	`

	type mode struct {
		name  string
		elim  sqo.ElimMode
		magic sqo.MagicMode
	}
	fixpointOnly := []mode{
		{"fixpoint", sqo.ElimOff, sqo.MagicOff},
		{"elim", sqo.ElimOn, sqo.MagicOff},
	}
	cases := []struct {
		name  string
		src   string
		facts []ast.Atom
		modes []mode
	}{
		{"trendy-point", trendyPoint, p10TrendyFacts(people, items), []mode{
			{"fixpoint", sqo.ElimOff, sqo.MagicOff},
			{"fixpoint+magic", sqo.ElimOff, sqo.MagicOn},
			{"elim", sqo.ElimOn, sqo.MagicOff},
			{"elim+magic", sqo.ElimOn, sqo.MagicOn},
		}},
		{"trendy-full", trendyFull, p10TrendyFacts(people, items), fixpointOnly},
		{"piecewise-full", piecewise, p10TrendyFacts(people/2, items/2), fixpointOnly},
		{"tc-fallback-point", tcPoint, p8DisjointChains(chains, chainLen), []mode{
			{"fixpoint", sqo.ElimOff, sqo.MagicOff},
			{"elim-auto", sqo.ElimAuto, sqo.MagicOff},
		}},
	}

	report := p10Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}

	header("workload", "mode", "elim", "answers", "derived", "probes", "wall")
	for _, c := range cases {
		unit, err := sqo.Parse(c.src)
		if err != nil {
			log.Fatal(err)
		}
		db := sqo.NewDBFrom(c.facts)
		var baseAnswers []string
		var baseDerived, baseProbes int64
		for i, m := range c.modes {
			row, answers := p10Measure(unit.Program, db, m.elim, m.magic)
			row.Workload, row.Mode = c.name, m.name
			if i == 0 {
				baseAnswers, baseDerived, baseProbes = answers, row.Derived, row.Probes
			} else if !reflect.DeepEqual(answers, baseAnswers) {
				log.Fatalf("%s/%s: answers diverge from fixpoint (%d vs %d)",
					c.name, m.name, len(answers), len(baseAnswers))
			}
			report.Rows = append(report.Rows, row)
			note := ""
			if i > 0 && row.Elim && baseDerived > 0 {
				note = fmt.Sprintf("  (%s fewer derived, %s fewer probes)",
					ratio(baseDerived, row.Derived), ratio(baseProbes, row.Probes))
			}
			fmt.Printf("%-17s | %-14s | %-5v | %7d | %8d | %8d | %8v%s\n",
				row.Workload, row.Mode, row.Elim, row.Answers, row.Derived, row.Probes,
				time.Duration(row.WallNs).Round(10*time.Microsecond), note)
		}
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
