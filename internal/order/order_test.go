package order

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func cmp(l ast.Term, op ast.CmpOp, r ast.Term) ast.Cmp { return ast.NewCmp(l, op, r) }

var (
	x = ast.V("X")
	y = ast.V("Y")
	z = ast.V("Z")
	w = ast.V("W")
)

func TestEmptySetSatisfiable(t *testing.T) {
	if !NewSet().Satisfiable() {
		t.Fatal("empty conjunction must be satisfiable")
	}
}

func TestSimpleSatisfiable(t *testing.T) {
	cases := []*Set{
		NewSet(cmp(x, ast.LT, y)),
		NewSet(cmp(x, ast.LT, y), cmp(y, ast.LT, z)),
		NewSet(cmp(x, ast.LE, y), cmp(y, ast.LE, x)), // forces X=Y, fine
		NewSet(cmp(x, ast.NE, y)),
		NewSet(cmp(x, ast.EQ, y), cmp(y, ast.EQ, z)),
		NewSet(cmp(x, ast.GT, ast.N(0)), cmp(x, ast.LT, ast.N(1))), // density
		NewSet(cmp(x, ast.GE, ast.N(5)), cmp(x, ast.LE, ast.N(5))), // pinned
	}
	for i, s := range cases {
		if !s.Satisfiable() {
			t.Errorf("case %d (%s) should be satisfiable", i, s)
		}
	}
}

func TestSimpleUnsatisfiable(t *testing.T) {
	cases := []*Set{
		NewSet(cmp(x, ast.LT, x)),
		NewSet(cmp(x, ast.LT, y), cmp(y, ast.LT, x)),
		NewSet(cmp(x, ast.LT, y), cmp(y, ast.LE, x)),
		NewSet(cmp(x, ast.EQ, y), cmp(x, ast.NE, y)),
		NewSet(cmp(x, ast.NE, x)),
		NewSet(cmp(ast.N(2), ast.LT, ast.N(1))),
		NewSet(cmp(ast.N(1), ast.EQ, ast.N(2))),
		NewSet(cmp(x, ast.LT, ast.N(1)), cmp(x, ast.GT, ast.N(2))),
		NewSet(cmp(x, ast.LT, y), cmp(y, ast.LT, z), cmp(z, ast.LT, x)),
		// X and Y both pinned to 5, yet required different:
		NewSet(cmp(x, ast.GE, ast.N(5)), cmp(x, ast.LE, ast.N(5)),
			cmp(y, ast.GE, ast.N(5)), cmp(y, ast.LE, ast.N(5)),
			cmp(x, ast.NE, y)),
	}
	for i, s := range cases {
		if s.Satisfiable() {
			t.Errorf("case %d (%s) should be unsatisfiable", i, s)
		}
	}
}

func TestConstantSandwich(t *testing.T) {
	// 3 <= X <= 3 pins X to 3; X < 3 then contradicts.
	s := NewSet(cmp(ast.N(3), ast.LE, x), cmp(x, ast.LE, ast.N(3)))
	if !s.Satisfiable() {
		t.Fatal("pinning is satisfiable")
	}
	s2 := s.Clone()
	s2.Add(cmp(x, ast.NE, ast.N(3)))
	if s2.Satisfiable() {
		t.Fatal("X pinned to 3 and X != 3 must be unsatisfiable")
	}
	// Strict sandwich between adjacent-looking integers is fine (dense).
	s3 := NewSet(cmp(ast.N(3), ast.LT, x), cmp(x, ast.LT, ast.N(4)))
	if !s3.Satisfiable() {
		t.Fatal("dense order: 3 < X < 4 is satisfiable")
	}
	// Strict empty sandwich: 3 < X < 3.
	s4 := NewSet(cmp(ast.N(3), ast.LT, x), cmp(x, ast.LT, ast.N(3)))
	if s4.Satisfiable() {
		t.Fatal("3 < X < 3 must be unsatisfiable")
	}
}

func TestStringConstants(t *testing.T) {
	s := NewSet(cmp(x, ast.EQ, ast.S("a")), cmp(x, ast.EQ, ast.S("b")))
	if s.Satisfiable() {
		t.Fatal("X = a and X = b must be unsatisfiable")
	}
	s2 := NewSet(cmp(ast.S("a"), ast.LT, x), cmp(x, ast.LT, ast.S("b")))
	if !s2.Satisfiable() {
		t.Fatal("a < X < b is satisfiable")
	}
	// Numbers precede strings in the constant order.
	s3 := NewSet(cmp(ast.S("a"), ast.LT, ast.N(0)))
	if s3.Satisfiable() {
		t.Fatal("strings follow numbers")
	}
}

func TestImplication(t *testing.T) {
	s := NewSet(cmp(x, ast.LT, y), cmp(y, ast.LT, z))
	checks := []struct {
		c    ast.Cmp
		want bool
	}{
		{cmp(x, ast.LT, z), true},
		{cmp(x, ast.LE, z), true},
		{cmp(x, ast.NE, z), true},
		{cmp(z, ast.GT, x), true},
		{cmp(x, ast.EQ, z), false},
		{cmp(z, ast.LT, x), false},
		{cmp(x, ast.LT, w), false}, // unconstrained variable
		{cmp(x, ast.LE, x), true},  // tautology
		{cmp(ast.N(1), ast.LT, ast.N(2)), true},
	}
	for _, c := range checks {
		if got := s.Implies(c.c); got != c.want {
			t.Errorf("Implies(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestImplicationFromEquality(t *testing.T) {
	s := NewSet(cmp(x, ast.EQ, y), cmp(y, ast.LE, z), cmp(z, ast.LE, y))
	for _, c := range []ast.Cmp{
		cmp(x, ast.EQ, z), cmp(x, ast.LE, z), cmp(x, ast.GE, z), cmp(y, ast.EQ, z),
	} {
		if !s.Implies(c) {
			t.Errorf("should imply %v", c)
		}
	}
	if s.Implies(cmp(x, ast.LT, z)) {
		t.Error("must not imply strict inequality between equals")
	}
}

func TestUnsatImpliesEverything(t *testing.T) {
	s := NewSet(cmp(x, ast.LT, x))
	if !s.Implies(cmp(y, ast.EQ, z)) {
		t.Fatal("ex falso quodlibet")
	}
}

func TestContradicts(t *testing.T) {
	s := NewSet(cmp(x, ast.LT, y))
	if !s.Contradicts(cmp(y, ast.LT, x)) {
		t.Fatal("should contradict")
	}
	if s.Contradicts(cmp(y, ast.LT, z)) {
		t.Fatal("should not contradict")
	}
}

func TestForcedEqualities(t *testing.T) {
	s := NewSet(cmp(x, ast.LE, y), cmp(y, ast.LE, x), cmp(y, ast.EQ, z))
	eqs := s.ForcedEqualities()
	// All of X, Y, Z in one class; representative is least var name X.
	if len(eqs) != 2 {
		t.Fatalf("got %v", eqs)
	}
	if !eqs["Y"].Equal(ast.V("X")) || !eqs["Z"].Equal(ast.V("X")) {
		t.Fatalf("representatives wrong: %v", eqs)
	}
}

func TestForcedEqualitiesPinnedToConstant(t *testing.T) {
	s := NewSet(cmp(ast.N(5), ast.LE, x), cmp(x, ast.LE, ast.N(5)), cmp(x, ast.EQ, y))
	eqs := s.ForcedEqualities()
	if !eqs["X"].Equal(ast.N(5)) || !eqs["Y"].Equal(ast.N(5)) {
		t.Fatalf("pinned variables must map to the constant: %v", eqs)
	}
}

func TestForcedEqualitiesNoneForStrict(t *testing.T) {
	s := NewSet(cmp(x, ast.LT, y))
	if eqs := s.ForcedEqualities(); len(eqs) != 0 {
		t.Fatalf("no equalities expected, got %v", eqs)
	}
}

func TestAddDeduplicates(t *testing.T) {
	s := NewSet(cmp(x, ast.LT, y), cmp(x, ast.LT, y), cmp(y, ast.GT, x))
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (x<y, x<y, y>x are the same atom)", s.Len())
	}
}

func TestEvalGround(t *testing.T) {
	if !EvalGround([]ast.Cmp{cmp(ast.N(1), ast.LT, ast.N(2)), cmp(ast.N(2), ast.LE, ast.N(2))}) {
		t.Fatal("ground conjunction should hold")
	}
	if EvalGround([]ast.Cmp{cmp(ast.N(3), ast.LT, ast.N(2))}) {
		t.Fatal("3 < 2 is false")
	}
}

func TestEvalGroundPanicsOnVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalGround([]ast.Cmp{cmp(x, ast.LT, ast.N(2))})
}

// TestSatisfiableAgainstBruteForce cross-checks the solver against a
// brute-force assignment search on random small instances over a fixed
// finite domain. A conjunction the brute force satisfies over
// {0,...,5} must be satisfiable for the solver (the finite domain
// embeds in the dense one). The converse need not hold (density), so
// we only check that direction plus a density-aware converse: if the
// solver says unsatisfiable, the brute force must fail too.
func TestSatisfiableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	vars := []ast.Term{x, y, z, w}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(5)
		s := NewSet()
		for i := 0; i < n; i++ {
			l := vars[rng.Intn(len(vars))]
			var r ast.Term
			if rng.Intn(4) == 0 {
				r = ast.N(float64(rng.Intn(4)))
			} else {
				r = vars[rng.Intn(len(vars))]
			}
			s.Add(cmp(l, ops[rng.Intn(len(ops))], r))
		}
		bruteSat := bruteForceSat(s)
		solverSat := s.Satisfiable()
		if bruteSat && !solverSat {
			t.Fatalf("trial %d: brute force found assignment but solver says unsat: %s", trial, s)
		}
		if !solverSat && bruteSat {
			t.Fatalf("trial %d: solver unsat but brute sat: %s", trial, s)
		}
		// For these instances (constants in {0..3}, domain {0..5} with
		// halves), density is covered by including midpoints:
		if solverSat && !bruteSatDense(s) {
			t.Fatalf("trial %d: solver sat but no assignment over refined grid: %s", trial, s)
		}
	}
}

func bruteForceSat(s *Set) bool {
	return bruteOver(s, []float64{0, 1, 2, 3, 4, 5})
}

// bruteSatDense uses a grid with midpoints and outliers so that any
// satisfiable constraint over constants {0..3} has a witness.
func bruteSatDense(s *Set) bool {
	return bruteOver(s, []float64{-1, -0.5, 0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4})
}

func bruteOver(s *Set, domain []float64) bool {
	varNames := map[string]bool{}
	for _, a := range s.Atoms() {
		for _, v := range a.Vars(nil) {
			varNames[v] = true
		}
	}
	var names []string
	for v := range varNames {
		names = append(names, v)
	}
	assign := map[string]float64{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			for _, a := range s.Atoms() {
				l, r := groundTerm(a.Left, assign), groundTerm(a.Right, assign)
				if !ast.NewCmp(l, a.Op, r).Eval() {
					return false
				}
			}
			return true
		}
		for _, d := range domain {
			assign[names[i]] = d
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func groundTerm(t ast.Term, assign map[string]float64) ast.Term {
	if t.IsVar() {
		return ast.N(assign[t.Name])
	}
	return t
}

func TestImpliesAgainstBruteForce(t *testing.T) {
	// If solver says C ⊨ a, then every brute-force witness of C over
	// the refined grid must satisfy a.
	rng := rand.New(rand.NewSource(999))
	vars := []ast.Term{x, y, z}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	grid := []float64{-1, -0.5, 0, 0.5, 1, 1.5, 2, 2.5, 3}
	for trial := 0; trial < 300; trial++ {
		s := NewSet()
		for i := 0; i < 1+rng.Intn(3); i++ {
			s.Add(cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], vars[rng.Intn(3)]))
		}
		goal := cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], vars[rng.Intn(3)])
		if !s.Implies(goal) {
			continue
		}
		// enumerate all witnesses of s over grid; each must satisfy goal.
		names := []string{"X", "Y", "Z"}
		assign := map[string]float64{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(names) {
				for _, a := range s.Atoms() {
					if !ast.NewCmp(groundTerm(a.Left, assign), a.Op, groundTerm(a.Right, assign)).Eval() {
						return
					}
				}
				if !ast.NewCmp(groundTerm(goal.Left, assign), goal.Op, groundTerm(goal.Right, assign)).Eval() {
					t.Fatalf("trial %d: %s implies %v per solver, but witness %v violates it", trial, s, goal, assign)
				}
				return
			}
			for _, d := range grid {
				assign[names[i]] = d
				rec(i + 1)
			}
		}
		rec(0)
	}
}
