package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/rewrite"
)

// TestPositions asserts that every parsed node carries the line/column
// of its opening token: rules and their head/body atoms, integrity
// constraints, and ground facts.
func TestPositions(t *testing.T) {
	src := `% a leading comment shifts everything down one line
path(X, Y) :- step(X, Y).
path(X, Y) :-
    step(X, Z),
    path(Z, Y), X < 100, Z = 3.
?- path.
:- startPoint(X), endPoint(Y), Y <= X.
step(1, 2).
`
	unit, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rules := unit.Program.Rules
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}

	wantPos := func(what string, got, want ast.Pos) {
		t.Helper()
		if got != want {
			t.Errorf("%s: at %s, want %s", what, got, want)
		}
	}
	wantPos("rule 0", rules[0].At, ast.At(2, 1))
	wantPos("rule 0 head", rules[0].Head.At, ast.At(2, 1))
	wantPos("rule 0 body atom", rules[0].Pos[0].At, ast.At(2, 15))
	wantPos("rule 1", rules[1].At, ast.At(3, 1))
	wantPos("rule 1 subgoal 0", rules[1].Pos[0].At, ast.At(4, 5))
	wantPos("rule 1 subgoal 1", rules[1].Pos[1].At, ast.At(5, 5))

	if len(unit.ICs) != 1 {
		t.Fatalf("got %d ics, want 1", len(unit.ICs))
	}
	wantPos("ic", unit.ICs[0].At, ast.At(7, 1))
	wantPos("ic atom 0", unit.ICs[0].Pos[0].At, ast.At(7, 4))
	wantPos("ic atom 1", unit.ICs[0].Pos[1].At, ast.At(7, 19))

	if len(unit.Facts) != 1 {
		t.Fatalf("got %d facts, want 1", len(unit.Facts))
	}
	wantPos("fact", unit.Facts[0].At, ast.At(8, 1))
}

// TestPositionsSurviveCanonicalizer asserts that the order-atom
// canonicalization pass (equality substitution, tautology pruning,
// cloning) preserves source positions, so diagnostics computed on the
// normalized program still point at the original source. Rule 1
// exercises the substitution path: Z = 3 is a forced equality, so the
// rule is rebuilt through Subst.ApplyRule rather than Clone.
func TestPositionsSurviveCanonicalizer(t *testing.T) {
	src := `
path(X, Y) :- step(X, Y).
path(X, Y) :-
    step(X, Z),
    path(Z, Y), X < 100, Z = 3.
?- path.
`
	unit, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	norm := rewrite.NormalizeOrder(unit.Program)
	if len(norm.Rules) != len(unit.Program.Rules) {
		t.Fatalf("canonicalizer dropped rules: got %d, want %d", len(norm.Rules), len(unit.Program.Rules))
	}
	for i, nr := range norm.Rules {
		orig := unit.Program.Rules[i]
		if nr.At != orig.At {
			t.Errorf("rule %d: position %s, want %s", i, nr.At, orig.At)
		}
		if nr.Head.At != orig.Head.At {
			t.Errorf("rule %d head: position %s, want %s", i, nr.Head.At, orig.Head.At)
		}
		for j := range nr.Pos {
			if nr.Pos[j].At != orig.Pos[j].At {
				t.Errorf("rule %d subgoal %d: position %s, want %s", i, j, nr.Pos[j].At, orig.Pos[j].At)
			}
		}
	}
	// The same must hold for a plain deep copy.
	clone := unit.Program.Clone()
	for i := range clone.Rules {
		if clone.Rules[i].At != unit.Program.Rules[i].At {
			t.Errorf("clone rule %d: position %s, want %s", i, clone.Rules[i].At, unit.Program.Rules[i].At)
		}
	}
}
