// Package cqc is the conjunctive-query containment core:
// CQ containment by containment mappings (with sound handling of
// order atoms, and Klug's complete linearization variant) and
// union-of-CQ containment via the Sagiv–Yannakakis theorem. It
// depends only on the AST and unification layers, so packages below
// the optimizer stack — the boundedness analyzer feeding eval.QueryCtx
// in particular — can decide containment without dragging the
// query-tree machinery into their import closure. Package contain
// builds the program-level reductions (Proposition 5.1) on top of
// this core and re-exports it unchanged.
package cqc

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/unify"
)

// CQ is a conjunctive query, represented as a single rule: the head
// lists the distinguished variables, the body is a conjunction of
// positive EDB atoms, negated EDB atoms, and order atoms.
type CQ = ast.Rule

// Contained reports whether q1 ⊑ q2 holds for conjunctive queries
// without order atoms or negation, by searching for a containment
// mapping: a homomorphism from q2's body into q1's body that maps
// q2's head to q1's head.
func Contained(q1, q2 CQ) (bool, error) {
	if q1.HasCmp() || q2.HasCmp() || q1.HasNeg() || q2.HasNeg() {
		return false, fmt.Errorf("cqc: Contained handles pure CQs; use ContainedOrder for order atoms")
	}
	return containmentMapping(q1, q2, nil), nil
}

// containmentMapping searches for a homomorphism from q2 into q1
// (body atoms into body atoms, head onto head). When check is non-nil
// it is invoked per candidate mapping and must approve it.
func containmentMapping(q1, q2 CQ, check func(unify.Subst) bool) bool {
	// Rename q2 apart from q1.
	var fr ast.Freshener
	q2 = ast.RenameRule(q2, fr.Next())
	// The head must map exactly: seed the homomorphism search with the
	// head match.
	seed, ok := unify.Match(q2.Head, q1.Head, nil)
	if !ok {
		return false
	}
	found := false
	var rec func(i int, s unify.Subst) bool
	rec = func(i int, s unify.Subst) bool {
		if i == len(q2.Pos) {
			if check == nil || check(s) {
				found = true
				return false // stop
			}
			return true
		}
		for _, d := range q1.Pos {
			if next, ok := unify.Match(q2.Pos[i], d, s); ok {
				if !rec(i+1, next) {
					return false
				}
			}
		}
		return true
	}
	rec(0, seed)
	return found
}

// ContainedOrder reports whether q1 ⊑ q2 for CQs whose bodies may
// carry order atoms (no negation). The test searches for a containment
// mapping h such that q1's order constraints imply h(q2's order
// constraints). This criterion is sound always, and complete whenever
// a single mapping suffices (in particular for q2 without order atoms,
// and for the common case where q1's constraints pin a total order);
// in general, completeness would require case analysis over the linear
// extensions of q1's constraints [Klu88], which ContainedOrderComplete
// provides.
func ContainedOrder(q1, q2 CQ) (bool, error) {
	if q1.HasNeg() || q2.HasNeg() {
		return false, fmt.Errorf("cqc: negation is not supported in CQ containment")
	}
	if !order.NewSet(q1.Cmp...).Satisfiable() {
		return true, nil // the empty query is contained in anything
	}
	return containedOrderMapping(q1, q2), nil
}

// containedOrderMapping searches for a containment mapping h from q2
// into q1 with q1.Cmp ⊨ h(q2.Cmp).
func containedOrderMapping(q1, q2 CQ) bool {
	var fr ast.Freshener
	ren := fr.Next()
	q2r := ast.RenameRule(q2, ren)
	seed, ok := unify.Match(q2r.Head, q1.Head, nil)
	if !ok {
		return false
	}
	q1Set := order.NewSet(q1.Cmp...)
	found := false
	var rec func(i int, s unify.Subst) bool
	rec = func(i int, s unify.Subst) bool {
		if i == len(q2r.Pos) {
			for _, c := range q2r.Cmp {
				if !q1Set.Implies(s.ApplyCmp(c)) {
					return true // keep searching
				}
			}
			found = true
			return false
		}
		for _, d := range q1.Pos {
			if next, ok := unify.Match(q2r.Pos[i], d, s); ok {
				if !rec(i+1, next) {
					return false
				}
			}
		}
		return true
	}
	rec(0, seed)
	return found
}

// ContainedOrderComplete decides q1 ⊑ q2 for CQs with order atoms (no
// negation) completely, via Klug's linearization argument: q1 ⊑ q2
// iff for every total preorder π of q1's terms consistent with q1's
// order atoms, there is a containment mapping h with π ⊨ h(q2.Cmp).
// The enumeration is exponential in the number of q1's terms; use for
// small queries.
func ContainedOrderComplete(q1, q2 CQ) (bool, error) {
	if q1.HasNeg() || q2.HasNeg() {
		return false, fmt.Errorf("cqc: negation is not supported in CQ containment")
	}
	q1Set := order.NewSet(q1.Cmp...)
	if !q1Set.Satisfiable() {
		return true, nil
	}
	terms := ruleTerms(q1)
	all := true
	enumerateLinearizations(terms, q1Set, func(lin *order.Set) bool {
		// For this linearization, is there a mapping?
		q1lin := q1.Clone()
		q1lin.Cmp = lin.Atoms()
		if !containedOrderMapping(q1lin, q2) {
			all = false
			return false
		}
		return true
	})
	return all, nil
}

// ruleTerms collects the distinct terms (variables and constants) of
// a rule's positive atoms, order atoms, and head.
func ruleTerms(r ast.Rule) []ast.Term {
	seen := map[string]bool{}
	var out []ast.Term
	add := func(t ast.Term) {
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	for _, t := range r.Head.Args {
		add(t)
	}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range r.Cmp {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// enumerateLinearizations enumerates the total preorders of the given
// terms consistent with the constraint set, invoking fn with each
// (expressed as a constraint set pinning the full order). fn returns
// false to stop early.
func enumerateLinearizations(terms []ast.Term, base *order.Set, fn func(*order.Set) bool) {
	// Build orderings recursively: maintain a sequence of equivalence
	// groups; each new term either joins an existing group or is
	// inserted between/around groups.
	var rec func(i int, groups [][]ast.Term) bool
	rec = func(i int, groups [][]ast.Term) bool {
		if i == len(terms) {
			lin := base.Clone()
			// Express the preorder as constraints.
			for gi, g := range groups {
				for k := 1; k < len(g); k++ {
					lin.Add(ast.NewCmp(g[0], ast.EQ, g[k]))
				}
				if gi+1 < len(groups) {
					lin.Add(ast.NewCmp(g[0], ast.LT, groups[gi+1][0]))
				}
			}
			if !lin.Satisfiable() {
				return true // inconsistent with base; skip
			}
			return fn(lin)
		}
		t := terms[i]
		// Join an existing group.
		for gi := range groups {
			ng := make([][]ast.Term, len(groups))
			copy(ng, groups)
			ng[gi] = append(append([]ast.Term{}, groups[gi]...), t)
			if !rec(i+1, ng) {
				return false
			}
		}
		// Insert as a new group at every gap.
		for pos := 0; pos <= len(groups); pos++ {
			ng := make([][]ast.Term, 0, len(groups)+1)
			ng = append(ng, groups[:pos]...)
			ng = append(ng, []ast.Term{t})
			ng = append(ng, groups[pos:]...)
			if !rec(i+1, ng) {
				return false
			}
		}
		return true
	}
	rec(0, nil)
}

// UCQContained reports whether the union of CQs qs1 is contained in
// the union qs2 (pure CQs): by the Sagiv–Yannakakis theorem this holds
// iff every disjunct of qs1 is contained in some disjunct of qs2.
func UCQContained(qs1, qs2 []CQ) (bool, error) {
	for _, q1 := range qs1 {
		ok := false
		for _, q2 := range qs2 {
			c, err := Contained(q1, q2)
			if err != nil {
				return false, err
			}
			if c {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
