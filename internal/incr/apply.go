package incr

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/eval"
)

// Apply ingests a batch of EDB insertions and retractions and updates
// every derived relation incrementally, returning the net change to
// the query predicate's answers. Batch semantics are delete-then-
// insert: a fact both retracted and added ends up present. Unknown
// predicates (not mentioned by the program) are ignored; updating a
// derived predicate is an error. On error the view keeps its EDB
// (every ingested batch is final) but marks the IDB stale; the next
// operation repairs it with a full rebuild.
func (v *View) Apply(adds, dels []ast.Atom) (Changes, error) {
	return v.ApplyCtx(context.Background(), adds, dels)
}

// ApplyCtx is Apply under a context: cancellation or deadline expiry
// aborts the update mid-propagation (leaving the view broken, see
// Apply).
func (v *View) ApplyCtx(ctx context.Context, adds, dels []ast.Atom) (Changes, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}

	// Canonicalize the batch to net EDB deltas against current state:
	// net⁻ = retractions of present facts not re-added, net⁺ = additions
	// of absent facts.
	plus := map[string]map[string][]uint32{}
	minus := map[string]map[string][]uint32{}
	var buf []uint32
	intern1 := func(a ast.Atom) ([]uint32, error) {
		if v.idbPr[a.Pred] {
			return nil, fmt.Errorf("incr: %s is a derived predicate; only EDB facts can be updated", a.Pred)
		}
		if _, ok := v.arity[a.Pred]; !ok {
			return nil, nil // not mentioned by the program: no effect
		}
		var err error
		buf, err = v.dp.InternFact(a.Pred, a.Args, buf[:0])
		if err != nil {
			return nil, err
		}
		return append([]uint32(nil), buf...), nil
	}
	for _, a := range dels {
		row, err := intern1(a)
		if err != nil {
			return Changes{}, err
		}
		if row == nil || !v.curView(a.Pred).Contains(row) {
			continue
		}
		if minus[a.Pred] == nil {
			minus[a.Pred] = map[string][]uint32{}
		}
		minus[a.Pred][rowKey(row)] = row
	}
	for _, a := range adds {
		row, err := intern1(a)
		if err != nil {
			return Changes{}, err
		}
		if row == nil {
			continue
		}
		k := rowKey(row)
		if m := minus[a.Pred]; m != nil {
			delete(m, k) // delete-then-insert: the add wins
		}
		if v.curView(a.Pred).Contains(row) {
			continue
		}
		if plus[a.Pred] == nil {
			plus[a.Pred] = map[string][]uint32{}
		}
		plus[a.Pred][k] = row
	}
	for pred, m := range minus {
		if len(m) == 0 {
			delete(minus, pred)
		}
	}

	if v.broken {
		return v.fullRebuild(ctx, plus, minus)
	}
	if len(plus) == 0 && len(minus) == 0 {
		v.stats.Applies++
		return Changes{}, nil
	}
	for pred := range plus {
		if v.negPreds[pred] {
			return v.fullRebuild(ctx, plus, minus)
		}
	}
	for pred := range minus {
		if v.negPreds[pred] {
			return v.fullRebuild(ctx, plus, minus)
		}
	}

	// Freeze pre-update state of every relation, then ingest the EDB
	// deltas (snapshots stay valid: deletions rebuild into a fresh
	// relation, additions append past the frozen prefix).
	oldViews := map[string]eval.RelView{}
	for pred, rel := range v.rels {
		oldViews[pred] = rel.View()
	}
	deltaPlus, deltaMinus := v.ingestEDB(plus, minus)

	for i := range v.strata {
		st := &v.strata[i]
		if !v.strAffected(st, deltaPlus, deltaMinus) {
			continue
		}
		err := ctx.Err()
		switch {
		case err != nil:
		case st.recursive:
			err = v.applyDRed(ctx, st, oldViews, deltaPlus, deltaMinus)
		default:
			err = v.applyCounting(ctx, st, oldViews, deltaPlus, deltaMinus)
		}
		if err != nil {
			v.broken = true
			v.lastGood = oldViews[v.prog.Query]
			return Changes{}, err
		}
	}

	v.stats.Applies++
	v.version++
	ch := Changes{}
	if d := deltaPlus[v.prog.Query]; nonEmpty(d) {
		ch.Added = v.externSorted(d.View())
		v.stats.TuplesAdded += int64(d.Len())
	}
	if d := deltaMinus[v.prog.Query]; nonEmpty(d) {
		ch.Removed = v.externSorted(d.View())
		v.stats.TuplesRemoved += int64(d.Len())
	}
	return ch, nil
}

// ingestEDB applies the net deltas to the EDB relations and returns
// them as interned delta relations keyed by predicate (the same maps
// the strata passes then extend with derived deltas). Rows are added
// in sorted key order for determinism.
func (v *View) ingestEDB(plus, minus map[string]map[string][]uint32) (deltaPlus, deltaMinus map[string]*eval.IRel) {
	deltaPlus = map[string]*eval.IRel{}
	deltaMinus = map[string]*eval.IRel{}
	predSet := map[string]bool{}
	for pred := range plus {
		predSet[pred] = true
	}
	for pred := range minus {
		predSet[pred] = true
	}
	preds := make([]string, 0, len(predSet))
	for pred := range predSet {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		ar := v.arity[pred]
		dm := v.irelFromMap(ar, minus[pred])
		dpl := v.irelFromMap(ar, plus[pred])
		if dm.Len() > 0 {
			v.rels[pred] = v.rebuildExcluding(v.rels[pred], dm)
		}
		rel := v.rels[pred]
		if rel == nil {
			rel = v.dp.NewIRel(ar)
			v.rels[pred] = rel
		}
		for i := 0; i < dpl.Len(); i++ {
			rel.Add(dpl.Row(i))
		}
		if dm.Len() > 0 {
			deltaMinus[pred] = dm
		}
		if dpl.Len() > 0 {
			deltaPlus[pred] = dpl
		}
	}
	return deltaPlus, deltaMinus
}

func (v *View) irelFromMap(arity int, m map[string][]uint32) *eval.IRel {
	ir := v.dp.NewIRel(arity)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ir.Add(m[k])
	}
	return ir
}

func (v *View) irelFromRows(arity int, rows [][]uint32) *eval.IRel {
	ir := v.dp.NewIRel(arity)
	for _, row := range rows {
		ir.Add(row)
	}
	return ir
}

// rebuildExcluding copies rel minus the dropped rows into a fresh
// relation. The old object is left untouched for live snapshots.
func (v *View) rebuildExcluding(rel *eval.IRel, drop *eval.IRel) *eval.IRel {
	if rel == nil {
		return v.dp.NewIRel(drop.Arity())
	}
	out := v.dp.NewIRel(rel.Arity())
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		if drop.Contains(row) {
			continue
		}
		out.Add(row)
	}
	return out
}

func nonEmpty(ir *eval.IRel) bool { return ir != nil && ir.Len() > 0 }

// strAffected reports whether any rule of the stratum reads a
// predicate with a pending delta.
func (v *View) strAffected(st *stratum, deltaPlus, deltaMinus map[string]*eval.IRel) bool {
	for _, ri := range st.rules {
		for _, a := range v.prog.Rules[ri].Pos {
			if nonEmpty(deltaPlus[a.Pred]) || nonEmpty(deltaMinus[a.Pred]) {
				return true
			}
		}
	}
	return false
}

// applyCounting maintains a non-recursive stratum (one predicate, no
// self-dependency) by exact finite differencing of derivation counts.
// For each rule and each subgoal occurrence, the delta join reads
// post-update state at subgoal positions before the occurrence and
// pre-update state at positions after it; summed with sign over Δ⁺ and
// Δ⁻ occurrences, the telescoping enumerates every firing gained or
// lost exactly once, so the per-tuple counts remain equal to a
// from-scratch evaluation's and count>0 decides presence.
func (v *View) applyCounting(ctx context.Context, st *stratum, oldViews map[string]eval.RelView, deltaPlus, deltaMinus map[string]*eval.IRel) error {
	pred := st.preds[0]
	cnts := v.counts[pred]
	touched := map[string][]uint32{}
	before := map[string]int64{}
	for _, ri := range st.rules {
		r := v.prog.Rules[ri]
		for occ := range r.Pos {
			q := r.Pos[occ].Pred
			for _, sd := range [2]struct {
				sign int64
				d    *eval.IRel
			}{{+1, deltaPlus[q]}, {-1, deltaMinus[q]}} {
				if !nonEmpty(sd.d) {
					continue
				}
				subs := make([]eval.RelView, len(r.Pos))
				for j, a := range r.Pos {
					switch {
					case j == occ:
						subs[j] = sd.d.View()
					case j < occ:
						subs[j] = v.curView(a.Pred)
					default:
						subs[j] = oldViews[a.Pred]
					}
				}
				sign := sd.sign
				probes, err := v.runDelta(ctx, ri, occ, subs, v.negView, func(h []uint32) error {
					k := rowKey(h)
					if _, ok := before[k]; !ok {
						before[k] = cnts[k]
						touched[k] = append([]uint32(nil), h...)
					}
					cnts[k] += sign
					return nil
				})
				v.stats.DeltaProbes += probes
				if err != nil {
					return err
				}
			}
		}
	}
	v.stats.DeltaRounds++
	keys := make([]string, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var addRows, delRows [][]uint32
	for _, k := range keys {
		c := cnts[k]
		if c < 0 {
			return fmt.Errorf("incr: internal error: negative derivation count for %s", pred)
		}
		if c == 0 {
			delete(cnts, k)
		}
		was, is := before[k] > 0, c > 0
		switch {
		case was && !is:
			delRows = append(delRows, touched[k])
		case !was && is:
			addRows = append(addRows, touched[k])
		}
	}
	if len(addRows) == 0 && len(delRows) == 0 {
		return nil
	}
	dm := v.irelFromRows(v.arity[pred], delRows)
	dpl := v.irelFromRows(v.arity[pred], addRows)
	if dm.Len() > 0 {
		v.rels[pred] = v.rebuildExcluding(v.rels[pred], dm)
		deltaMinus[pred] = dm
	}
	if dpl.Len() > 0 {
		rel := v.rels[pred]
		for i := 0; i < dpl.Len(); i++ {
			rel.Add(dpl.Row(i))
		}
		deltaPlus[pred] = dpl
	}
	return nil
}

// applyDRed maintains a recursive stratum by delete-rederive:
//
//  1. Overdelete: propagate the incoming deletions (and then the
//     intra-stratum overdeletions, round by round) through the
//     stratum's rules over pre-update state, collecting in D every
//     tuple with a potentially-lost derivation.
//  2. Rederive: remove D, then put back every overdeleted tuple still
//     derivable from surviving state, iterating until no progress
//     (head-bound derivability plans make each check a join seeded
//     with the candidate tuple).
//  3. Insert: semi-naive propagation of the incoming insertions over
//     post-update state.
//
// Soundness of (2): a tuple of old∖D has, by induction on the
// overdeletion fixpoint, a derivation avoiding every deleted and
// overdeleted fact; stratum rules are monotone (negation-touched
// updates never reach DRed), so that derivation survives in the new
// state. Completeness: any tuple of the new fixpoint not in old∖D is
// reached by (2)'s progress loop or (3)'s propagation.
func (v *View) applyDRed(ctx context.Context, st *stratum, oldViews map[string]eval.RelView, deltaPlus, deltaMinus map[string]*eval.IRel) error {
	newRound := func() map[string]*eval.IRel {
		m := make(map[string]*eval.IRel, len(st.preds))
		for _, p := range st.preds {
			m[p] = v.dp.NewIRel(v.arity[p])
		}
		return m
	}
	roundTotal := func(m map[string]*eval.IRel) int {
		n := 0
		for _, ir := range m {
			n += ir.Len()
		}
		return n
	}

	// Phase 1: overdelete over pre-update state.
	D := newRound()
	round := newRound()
	emitDel := func(p string) func([]uint32) error {
		old := oldViews[p]
		return func(h []uint32) error {
			if !old.Contains(h) {
				return nil // a firing that never contributed a tuple
			}
			if D[p].Add(h) {
				round[p].Add(h)
			}
			return nil
		}
	}
	oldSubs := func(r ast.Rule, occ int, d *eval.IRel) []eval.RelView {
		subs := make([]eval.RelView, len(r.Pos))
		for j, a := range r.Pos {
			if j == occ {
				subs[j] = d.View()
			} else {
				subs[j] = oldViews[a.Pred]
			}
		}
		return subs
	}
	for _, ri := range st.rules {
		r := v.prog.Rules[ri]
		for occ, a := range r.Pos {
			if st.inStr[a.Pred] || !nonEmpty(deltaMinus[a.Pred]) {
				continue
			}
			probes, err := v.runDelta(ctx, ri, occ, oldSubs(r, occ, deltaMinus[a.Pred]), v.negView, emitDel(r.Head.Pred))
			v.stats.DeltaProbes += probes
			if err != nil {
				return err
			}
		}
	}
	for roundTotal(round) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		v.stats.DeltaRounds++
		prev := round
		round = newRound()
		for _, ri := range st.rules {
			r := v.prog.Rules[ri]
			for occ, a := range r.Pos {
				if !st.inStr[a.Pred] || prev[a.Pred].Len() == 0 {
					continue
				}
				probes, err := v.runDelta(ctx, ri, occ, oldSubs(r, occ, prev[a.Pred]), v.negView, emitDel(r.Head.Pred))
				v.stats.DeltaProbes += probes
				if err != nil {
					return err
				}
			}
		}
	}

	// Phase 2: remove D, then rederive survivors until a fixpoint.
	if roundTotal(D) > 0 {
		for _, p := range st.preds {
			if D[p].Len() > 0 {
				v.rels[p] = v.rebuildExcluding(v.rels[p], D[p])
			}
		}
		for {
			progress := false
			for _, p := range st.preds {
				d := D[p]
				for i := 0; i < d.Len(); i++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					row := d.Row(i)
					if v.rels[p].Contains(row) {
						continue
					}
					ok, err := v.derivableAny(ctx, p, row)
					if err != nil {
						return err
					}
					if ok {
						v.rels[p].Add(row)
						progress = true
					}
				}
			}
			if !progress {
				break
			}
			v.stats.DeltaRounds++
		}
	}

	// Phase 3: semi-naive insertion over post-update state. Side views
	// are frozen per RunDelta call; everything emitted lands in the
	// next round's delta, so nothing is missed.
	ins := newRound()
	round = newRound()
	emitIns := func(p string) func([]uint32) error {
		return func(h []uint32) error {
			if v.rels[p].Add(h) {
				round[p].Add(h)
				ins[p].Add(h)
			}
			return nil
		}
	}
	curSubs := func(r ast.Rule, occ int, d *eval.IRel) []eval.RelView {
		subs := make([]eval.RelView, len(r.Pos))
		for j, a := range r.Pos {
			if j == occ {
				subs[j] = d.View()
			} else {
				subs[j] = v.curView(a.Pred)
			}
		}
		return subs
	}
	for _, ri := range st.rules {
		r := v.prog.Rules[ri]
		for occ, a := range r.Pos {
			if st.inStr[a.Pred] || !nonEmpty(deltaPlus[a.Pred]) {
				continue
			}
			probes, err := v.runDelta(ctx, ri, occ, curSubs(r, occ, deltaPlus[a.Pred]), v.negView, emitIns(r.Head.Pred))
			v.stats.DeltaProbes += probes
			if err != nil {
				return err
			}
		}
	}
	for roundTotal(round) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		v.stats.DeltaRounds++
		prev := round
		round = newRound()
		for _, ri := range st.rules {
			r := v.prog.Rules[ri]
			for occ, a := range r.Pos {
				if !st.inStr[a.Pred] || prev[a.Pred].Len() == 0 {
					continue
				}
				probes, err := v.runDelta(ctx, ri, occ, curSubs(r, occ, prev[a.Pred]), v.negView, emitIns(r.Head.Pred))
				v.stats.DeltaProbes += probes
				if err != nil {
					return err
				}
			}
		}
	}

	// Net deltas: deletions of D that stayed out, insertions that were
	// not present before. A tuple overdeleted and then re-derived by
	// phase 3 cancels out in both directions.
	for _, p := range st.preds {
		var netMinus, netPlus [][]uint32
		d := D[p]
		for i := 0; i < d.Len(); i++ {
			if !v.rels[p].Contains(d.Row(i)) {
				netMinus = append(netMinus, d.Row(i))
			}
		}
		in, old := ins[p], oldViews[p]
		for i := 0; i < in.Len(); i++ {
			if !old.Contains(in.Row(i)) {
				netPlus = append(netPlus, in.Row(i))
			}
		}
		if len(netMinus) > 0 {
			deltaMinus[p] = v.irelFromRows(v.arity[p], netMinus)
		}
		if len(netPlus) > 0 {
			deltaPlus[p] = v.irelFromRows(v.arity[p], netPlus)
		}
	}
	return nil
}

// derivableAny reports whether some rule for pred can fire with its
// head bound to row over current state.
func (v *View) derivableAny(ctx context.Context, pred string, row []uint32) (bool, error) {
	for _, ri := range v.rulesFor[pred] {
		r := v.prog.Rules[ri]
		subs := make([]eval.RelView, len(r.Pos))
		for j, a := range r.Pos {
			subs[j] = v.curView(a.Pred)
		}
		ok, probes, err := v.dp.Derivable(ctx, ri, row, subs, v.negView)
		v.stats.RederiveChecks++
		v.stats.DeltaProbes += probes
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// fullRebuild ingests the EDB deltas and recomputes every derived
// relation from scratch. It is the fallback for updates touching
// negated predicates and the repair path for broken views; Changes are
// diffed against the last state the caller observed.
func (v *View) fullRebuild(ctx context.Context, plus, minus map[string]map[string][]uint32) (Changes, error) {
	prevQ := v.lastGood
	if !v.broken {
		prevQ = v.curView(v.prog.Query)
	}
	v.ingestEDB(plus, minus)
	v.stats.FullRebuilds++
	if err := v.rebuildIDB(ctx); err != nil {
		v.broken = true
		v.lastGood = prevQ
		return Changes{}, err
	}
	v.broken = false
	v.lastGood = eval.RelView{}
	v.version++
	v.stats.Applies++

	ch := Changes{}
	newQ := v.curView(v.prog.Query)
	var added, removed [][]uint32
	for i := 0; i < newQ.Len(); i++ {
		if !prevQ.Contains(newQ.Row(i)) {
			added = append(added, newQ.Row(i))
		}
	}
	for i := 0; i < prevQ.Len(); i++ {
		if !newQ.Contains(prevQ.Row(i)) {
			removed = append(removed, prevQ.Row(i))
		}
	}
	if len(added) > 0 {
		ch.Added = v.externSorted(v.irelFromRows(newQ.Rel.Arity(), added).View())
		v.stats.TuplesAdded += int64(len(added))
	}
	if len(removed) > 0 {
		ch.Removed = v.externSorted(v.irelFromRows(prevQ.Rel.Arity(), removed).View())
		v.stats.TuplesRemoved += int64(len(removed))
	}
	return ch, nil
}

// repairLocked rebuilds a broken view in place (no-op when consistent).
// Read paths call it so a failed Apply can never surface stale answers.
func (v *View) repairLocked(ctx context.Context) error {
	if !v.broken {
		return nil
	}
	v.stats.FullRebuilds++
	if err := v.rebuildIDB(ctx); err != nil {
		return err
	}
	v.broken = false
	v.lastGood = eval.RelView{}
	v.version++
	return nil
}
