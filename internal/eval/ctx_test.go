package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/parser"
)

// chainProgram builds a transitive-closure workload big enough that
// evaluation takes visibly long (hundreds of rounds over a growing
// IDB), so a mid-fixpoint cancellation has something to interrupt.
func chainProgram(t testing.TB, n int) (*ast.Program, *DB) {
	t.Helper()
	p, err := parser.ParseProgram(`
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
		?- p.
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	for i := 0; i < n; i++ {
		db.AddFact(ast.NewAtom("e", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	return p, db
}

func TestEvalCtxNilAndBackground(t *testing.T) {
	p, db := chainProgram(t, 20)
	for _, ctx := range []context.Context{nil, context.Background()} {
		idb, stats, err := EvalCtx(ctx, p, db, DefaultOptions())
		if err != nil {
			t.Fatalf("EvalCtx(%v): %v", ctx, err)
		}
		want := 20 * 21 / 2
		if got := idb.Count("p"); got != want {
			t.Fatalf("answers = %d, want %d", got, want)
		}
		if stats.Iterations == 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestEvalCtxAlreadyCancelled(t *testing.T) {
	p, db := chainProgram(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EvalCtx(ctx, p, db, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEvalCtxCancelMidFixpoint cancels a long evaluation from another
// goroutine and requires (a) a prompt return with context.Canceled,
// and (b) no goroutine leak from the worker pool.
func TestEvalCtxCancelMidFixpoint(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, db := chainProgram(t, 600)
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		opts := DefaultOptions()
		opts.Workers = workers
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, _, err := EvalCtx(ctx, p, db, opts)
			done <- err
		}()
		time.Sleep(30 * time.Millisecond) // let the fixpoint get going
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: evaluation did not stop within 10s of cancel (started %v ago)",
				workers, time.Since(start))
		}
		// The pool's goroutines must all have exited. NumGoroutine is
		// noisy; poll briefly before declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("workers=%d: goroutines leaked: before=%d after=%d",
					workers, before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestEvalCtxDeadline(t *testing.T) {
	p, db := chainProgram(t, 600)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := EvalCtx(ctx, p, db, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline overshoot: returned after %v", elapsed)
	}
}

func TestErrBudgetSentinel(t *testing.T) {
	p, db := chainProgram(t, 100)
	opts := DefaultOptions()
	opts.MaxTuples = 10
	_, _, err := EvalWith(p, db, opts)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget error must not look like cancellation: %v", err)
	}
}

// TestEvalCtxDeterminismUnaffected: threading a live (never cancelled)
// context must not change answers or stats relative to EvalWith.
func TestEvalCtxDeterminismUnaffected(t *testing.T) {
	p, db := chainProgram(t, 60)
	idb1, s1, err := EvalWith(p, db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	idb2, s2, err := EvalCtx(ctx, p, db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatalf("stats diverged: %+v vs %+v", *s1, *s2)
	}
	a1, a2 := idb1.SortedFacts("p"), idb2.SortedFacts("p")
	if len(a1) != len(a2) {
		t.Fatalf("answer counts diverged: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("answers diverged at %d: %s vs %s", i, a1[i], a2[i])
		}
	}
}
