package shard

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the coordinator's instrumentation registry, rendered in
// the Prometheus text format at /metrics. Hand-rolled on sync/atomic
// like the server's registry — the repository takes no dependencies.
type Metrics struct {
	mu        sync.Mutex
	peerReqs  map[peerCode]*int64 // peer×status → requests (code 0 = transport error)
	unhealthy map[string]*int64   // peer → 0/1 gauge
	started   time.Time

	// scatter latency histogram
	scatterCounts [nScatterBuckets + 1]atomic.Int64
	scatterSumNs  atomic.Int64
	scatterTotal  atomic.Int64
}

type peerCode struct {
	peer string
	code int
}

var scatterBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

const nScatterBuckets = 12 // len(scatterBuckets); array length must be constant

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		peerReqs:  map[peerCode]*int64{},
		unhealthy: map[string]*int64{},
		started:   time.Now(),
	}
}

// ObservePeer records one upstream request to peer finishing with the
// given HTTP status (0 for a transport-level failure).
func (m *Metrics) ObservePeer(peer string, code int) {
	m.mu.Lock()
	c, ok := m.peerReqs[peerCode{peer, code}]
	if !ok {
		c = new(int64)
		m.peerReqs[peerCode{peer, code}] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

// SetUnhealthy records the probe verdict for peer (true = failing).
func (m *Metrics) SetUnhealthy(peer string, bad bool) {
	m.mu.Lock()
	g, ok := m.unhealthy[peer]
	if !ok {
		g = new(int64)
		m.unhealthy[peer] = g
	}
	m.mu.Unlock()
	v := int64(0)
	if bad {
		v = 1
	}
	atomic.StoreInt64(g, v)
}

// ObserveScatter records one scatter-gather round trip.
func (m *Metrics) ObserveScatter(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(scatterBuckets, s)
	m.scatterCounts[i].Add(1)
	m.scatterSumNs.Add(int64(d))
	m.scatterTotal.Add(1)
}

// ServeHTTP renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	m.mu.Lock()
	reqKeys := make([]peerCode, 0, len(m.peerReqs))
	for k := range m.peerReqs {
		reqKeys = append(reqKeys, k)
	}
	healthKeys := make([]string, 0, len(m.unhealthy))
	for k := range m.unhealthy {
		healthKeys = append(healthKeys, k)
	}
	m.mu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].peer != reqKeys[j].peer {
			return reqKeys[i].peer < reqKeys[j].peer
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(healthKeys)

	b.WriteString("# HELP sqod_peer_requests_total Upstream requests to cluster peers by status (code 0 = transport error).\n# TYPE sqod_peer_requests_total counter\n")
	for _, k := range reqKeys {
		m.mu.Lock()
		v := atomic.LoadInt64(m.peerReqs[k])
		m.mu.Unlock()
		fmt.Fprintf(&b, "sqod_peer_requests_total{peer=%q,code=\"%d\"} %d\n", k.peer, k.code, v)
	}

	b.WriteString("# HELP sqod_peer_unhealthy Health-probe verdict per peer (1 = failing /readyz).\n# TYPE sqod_peer_unhealthy gauge\n")
	for _, k := range healthKeys {
		m.mu.Lock()
		v := atomic.LoadInt64(m.unhealthy[k])
		m.mu.Unlock()
		fmt.Fprintf(&b, "sqod_peer_unhealthy{peer=%q} %d\n", k, v)
	}

	b.WriteString("# HELP sqod_scatter_seconds Scatter-gather fan-out latency.\n# TYPE sqod_scatter_seconds histogram\n")
	cum := int64(0)
	for i, ub := range scatterBuckets {
		cum += m.scatterCounts[i].Load()
		fmt.Fprintf(&b, "sqod_scatter_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.scatterCounts[nScatterBuckets].Load()
	fmt.Fprintf(&b, "sqod_scatter_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "sqod_scatter_seconds_sum %.6f\n", float64(m.scatterSumNs.Load())/1e9)
	fmt.Fprintf(&b, "sqod_scatter_seconds_count %d\n", m.scatterTotal.Load())

	fmt.Fprintf(&b, "# HELP sqod_coordinator_uptime_seconds Seconds since the coordinator started.\n# TYPE sqod_coordinator_uptime_seconds gauge\nsqod_coordinator_uptime_seconds %.3f\n",
		time.Since(m.started).Seconds())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
