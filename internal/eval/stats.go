package eval

// Per-relation statistics for the cost-based join-ordering policies
// (Options.Policy). Every irel maintains, next to its row count, one
// small fixed-size sketch per column estimating the number of distinct
// values in that column. The sketches are updated on insert only —
// irel is append-only, and the retraction path in internal/incr
// rebuilds shrinking relations into fresh irels, whose sketches are
// rebuilt from the surviving rows — so they are exact bookkeeping, not
// a probabilistic deletion structure.
//
// Each sketch is hybrid: below sketchExactMax distinct values it keeps
// the exact value set (a map), so estimates on small relations are
// exact; past the threshold it spills into a fixed sketchBuckets-bit
// table and estimates by linear counting (Whang et al.):
//
//	distinct ≈ m · ln(m / zeroBits)
//
// which stays within a few percent up to several distinct values per
// bit. Updates after the spill are one multiply, one shift, and one
// bit-set — cheap enough to leave on unconditionally, which is what
// keeps the statistics current across semi-naive rounds and
// internal/incr deltas without any refresh machinery.

import "math"

const (
	// sketchExactMax is the number of distinct values a column tracks
	// exactly before spilling to the bit table.
	sketchExactMax = 128
	// sketchBuckets is the bit-table width after the spill (power of
	// two; 4096 bits = 512 bytes per spilled column).
	sketchBuckets = 4096
	sketchMask    = sketchBuckets - 1
)

// colSketch estimates the number of distinct values in one column.
// Same concurrency contract as the owning irel: single writer (add),
// any number of readers of a frozen relation (distinct).
type colSketch struct {
	exact map[uint32]struct{}
	bits  []uint64 // sketchBuckets bits once spilled; nil before
	ones  int      // set bits
}

// hash32 mixes an interned id into a bucket-selection hash
// (multiplicative hashing with a xor-fold; ids are dense, so the raw
// value must not be used directly).
func hash32(v uint32) uint32 {
	v *= 2654435761
	v ^= v >> 16
	return v
}

func (c *colSketch) add(v uint32) {
	if c.bits == nil {
		if c.exact == nil {
			c.exact = make(map[uint32]struct{}, 8)
		}
		if _, ok := c.exact[v]; ok {
			return
		}
		c.exact[v] = struct{}{}
		if len(c.exact) > sketchExactMax {
			c.spill()
		}
		return
	}
	c.set(hash32(v) & sketchMask)
}

// spill folds the exact set into the bit table and drops it.
func (c *colSketch) spill() {
	c.bits = make([]uint64, sketchBuckets/64)
	for v := range c.exact {
		c.set(hash32(v) & sketchMask)
	}
	c.exact = nil
}

func (c *colSketch) set(b uint32) {
	w, m := b>>6, uint64(1)<<(b&63)
	if c.bits[w]&m == 0 {
		c.bits[w] |= m
		c.ones++
	}
}

// distinct returns the estimated distinct count: exact below the spill
// threshold, linear counting above it.
func (c *colSketch) distinct() int {
	if c.bits == nil {
		return len(c.exact)
	}
	zeros := sketchBuckets - c.ones
	if zeros == 0 {
		// Saturated table: linear counting can no longer resolve the
		// count; report the largest estimate the sketch can express.
		return int(float64(sketchBuckets) * math.Log(float64(sketchBuckets)))
	}
	return int(math.Round(float64(sketchBuckets) * math.Log(float64(sketchBuckets)/float64(zeros))))
}

// distinct returns the estimated number of distinct values in column j
// (0 for an empty relation). Read-only on a frozen relation.
func (r *irel) distinct(j int) int {
	if r.stats == nil {
		return 0
	}
	return r.stats[j].distinct()
}
