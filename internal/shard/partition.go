// Package shard is the distribution subsystem: deterministic hash
// partitioners that split relations (and place datasets) across shards,
// and a cluster coordinator that scatter-gathers queries over a set of
// sqod worker nodes (coordinator.go).
//
// Partitioning is content-based: keys are the rendered canonical form
// of a term (ast.Term.Key) or a dataset name, never per-evaluation
// intern ids. That makes shard assignment stable across runs, across
// processes, and across symbol-table growth — the property the
// determinism tests pin and the cluster relies on for placement.
package shard

import "fmt"

// Partitioner maps a partition key to a shard index in [0, n). The
// mapping must be a pure function of (key, n): two calls with the same
// arguments return the same shard, in any process, forever.
type Partitioner interface {
	// Name returns the partitioner's registry name (the string Parse
	// accepts).
	Name() string
	// Shard returns the owning shard for key among n shards. n < 2
	// always returns 0.
	Shard(key string, n int) int
}

// fnv1a is FNV-1a over the key bytes — the same hash family the eval
// layer uses for interned rows, chosen here for its stability: the
// constants are fixed by the algorithm, so assignments never change
// across Go versions (unlike maphash or map iteration order).
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// decorrelates the per-shard scores derived from one key hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Modulo partitions by key-hash modulo shard count: the cheapest
// possible assignment, with the classic drawback that changing n
// remaps almost every key.
type Modulo struct{}

func (Modulo) Name() string { return "modulo" }

func (Modulo) Shard(key string, n int) int {
	if n < 2 {
		return 0
	}
	return int(fnv1a(key) % uint64(n))
}

// Rendezvous is highest-random-weight (HRW) consistent hashing: each
// shard scores the key and the highest score owns it. Growing from n
// to n+1 shards moves only the ~1/(n+1) of keys the new shard wins;
// every other assignment is untouched (the minimal-disruption property
// TestRendezvousMinimalDisruption pins).
type Rendezvous struct{}

func (Rendezvous) Name() string { return "rendezvous" }

func (Rendezvous) Shard(key string, n int) int {
	if n < 2 {
		return 0
	}
	h := fnv1a(key)
	best, bestScore := 0, uint64(0)
	for i := 0; i < n; i++ {
		s := mix64(h ^ mix64(uint64(i)+1))
		if i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Parse resolves a partitioner by name; the empty string means Modulo
// (the zero-config default).
func Parse(name string) (Partitioner, error) {
	switch name {
	case "", "modulo":
		return Modulo{}, nil
	case "rendezvous":
		return Rendezvous{}, nil
	}
	return nil, fmt.Errorf("shard: unknown partitioner %q (want modulo or rendezvous)", name)
}

// Place returns the member of peers that owns name under rendezvous
// hashing, scoring each peer by its own string so the assignment does
// not depend on the order peers are listed in. Ties (astronomically
// unlikely) break toward the lexicographically smaller peer. Returns
// "" for an empty peer list.
func Place(name string, peers []string) string {
	if len(peers) == 0 {
		return ""
	}
	h := fnv1a(name)
	best, bestScore := "", uint64(0)
	for _, p := range peers {
		s := mix64(h ^ fnv1a(p))
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// Balance reports the max/mean load ratio of distributing keys over n
// shards with p — a quick skew diagnostic used by tests and sqobench.
func Balance(p Partitioner, keys []string, n int) float64 {
	if n < 1 || len(keys) == 0 {
		return 1
	}
	counts := make([]int, n)
	for _, k := range keys {
		counts[p.Shard(k, n)]++
	}
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	return float64(maxc) / (float64(len(keys)) / float64(n))
}

// MaxShards bounds Options-level shard counts: owners are stored one
// byte per row in the eval layer.
const MaxShards = 256
