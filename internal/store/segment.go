package store

// Checkpoint segments and the manifest. A segment is an immutable
// snapshot of the whole store — symbol table, datasets, views,
// interned rows, per-column sketches — written at checkpoint so the
// WAL can be truncated. The format is flat and 4-byte aligned
// throughout (strings are padded), so a reader can memory-map the file
// and view each predicate's row block as a ready-to-scan [nrows×arity]
// array of uint32 without any per-row decoding:
//
//	[4]byte   magic "sqos"
//	uint32    format version (1)
//	uint32    nsyms
//	  nsyms × { uint32 kind; num: 8B float bits | str: uint32 len + padded bytes }
//	uint32    ndatasets
//	  per dataset:
//	    uint32  name symbol
//	    uint32  nviews
//	      nviews × { uint32 name symbol, padded string prog, padded
//	                 string ics, uint32 optimized }
//	    uint32  npreds
//	      per predicate (sorted by name):
//	        uint32  name symbol
//	        uint32  arity
//	        uint32  nrows
//	        arity × { uint32 len, sketch bytes (eval encoding), pad }
//	        nrows × arity × uint32   row block, lexicographically sorted
//	uint32    CRC32 (IEEE) of everything above
//
// Every list is sorted (symbols by id, datasets/views/predicates by
// name, rows lexicographically), so the file is a deterministic
// function of the store state. The manifest is a tiny text file naming
// the current segment and WAL; it is replaced atomically
// (write-temp + rename + directory fsync), which makes checkpointing
// crash-safe: until the rename lands, recovery sees the old
// segment+WAL pair; after it, the new pair. Files the manifest no
// longer references are deleted after the rename and garbage-collected
// at recovery if a crash interrupted the cleanup.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/eval"
)

const (
	segMagic   = "sqos"
	segVersion = 1

	manifestName = "MANIFEST"
	segPrefix    = "seg"
	segExt       = ".sqos"
	walPrefix    = "wal"
	walExt       = ".log"
)

// --- segment encoding -------------------------------------------------

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// appendPadded appends a length-prefixed byte string padded to the
// next 4-byte boundary.
func appendPadded(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	buf = append(buf, s...)
	for len(buf)%4 != 0 {
		buf = append(buf, 0)
	}
	return buf
}

// encodeSegment renders the full store state. Caller holds s.mu.
func (s *Store) encodeSegment() []byte {
	buf := make([]byte, 0, 4096)
	buf = append(buf, segMagic...)
	buf = appendU32(buf, segVersion)

	buf = appendU32(buf, uint32(len(s.syms.syms)))
	for _, sym := range s.syms.syms {
		buf = appendU32(buf, uint32(sym.kind))
		if sym.kind == symNum {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sym.val))
		} else {
			buf = appendPadded(buf, sym.name)
		}
	}

	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = appendU32(buf, uint32(len(names)))
	for _, name := range names {
		ds := s.datasets[name]
		buf = appendU32(buf, s.syms.internStr(name))

		views := viewList(ds)
		buf = appendU32(buf, uint32(len(views)))
		for _, v := range views {
			buf = appendU32(buf, s.syms.internStr(v.Name))
			buf = appendPadded(buf, v.Program)
			buf = appendPadded(buf, v.ICs)
			var opt uint32
			if v.Optimized {
				opt = 1
			}
			buf = appendU32(buf, opt)
		}

		preds := make([]string, 0, len(ds.preds))
		for p := range ds.preds {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		buf = appendU32(buf, uint32(len(preds)))
		for _, p := range preds {
			ps := ds.preds[p]
			buf = appendU32(buf, s.syms.internStr(p))
			buf = appendU32(buf, uint32(ps.arity))
			buf = appendU32(buf, uint32(len(ps.rows)))
			for j := 0; j < ps.arity; j++ {
				enc := ps.sketches[j].AppendEncoded(nil)
				buf = appendU32(buf, uint32(len(enc)))
				buf = append(buf, enc...)
				for len(buf)%4 != 0 {
					buf = append(buf, 0)
				}
			}
			for _, row := range ps.sortedRows() {
				for _, v := range row {
					buf = appendU32(buf, v)
				}
			}
		}
	}

	return appendU32(buf, crc32.ChecksumIEEE(buf))
}

// segReader walks a segment with explicit bounds checks; every failure
// wraps ErrCorrupt.
type segReader struct {
	data []byte
	off  int
	err  error
}

func (r *segReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: segment: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *segReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.data)-r.off < 4 {
		r.fail("unexpected end at %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *segReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("short read (%d bytes at %d)", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *segReader) padded() string {
	n := int(r.u32())
	b := r.bytes(n)
	if pad := (4 - n%4) % 4; pad > 0 {
		r.bytes(pad)
	}
	return string(b)
}

// count bounds an element count against the bytes remaining (each
// element costs at least min bytes).
func (r *segReader) count(min int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if min < 4 {
		min = 4
	}
	if int64(n) > int64((len(r.data)-r.off)/min+1) {
		r.fail("implausible count %d at %d", n, r.off)
		return 0
	}
	return int(n)
}

// loadSegment parses a segment image into the (empty) store mirror and
// symbol table. Caller holds s.mu.
func (s *Store) loadSegment(data []byte) error {
	if len(data) < len(segMagic)+8 || string(data[:4]) != segMagic {
		return fmt.Errorf("%w: segment: bad magic", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != trailer {
		return fmt.Errorf("%w: segment: CRC mismatch", ErrCorrupt)
	}
	r := &segReader{data: body, off: 4}
	if v := r.u32(); r.err == nil && v != segVersion {
		return fmt.Errorf("%w: segment: unsupported version %d", ErrCorrupt, v)
	}

	nsyms := r.count(4)
	for i := 0; i < nsyms && r.err == nil; i++ {
		kind := symKind(r.u32())
		var sym symbol
		switch kind {
		case symNum:
			b := r.bytes(8)
			if r.err != nil {
				break
			}
			sym = symbol{kind: symNum, val: math.Float64frombits(binary.LittleEndian.Uint64(b))}
		case symStr:
			sym = symbol{kind: symStr, name: r.padded()}
		default:
			r.fail("unknown symbol kind %d", kind)
		}
		if r.err != nil {
			break
		}
		if err := s.syms.install(uint32(i), sym); err != nil {
			return err
		}
	}
	if r.err != nil {
		return r.err
	}

	sym := func() (string, bool) {
		id := r.u32()
		if r.err != nil || !s.syms.valid(id) {
			r.fail("dangling symbol id %d", id)
			return "", false
		}
		return s.syms.str(id), true
	}

	ndatasets := r.count(8)
	for i := 0; i < ndatasets && r.err == nil; i++ {
		name, ok := sym()
		if !ok {
			break
		}
		ds := newDsState()
		s.datasets[name] = ds

		nviews := r.count(16)
		for j := 0; j < nviews && r.err == nil; j++ {
			vname, ok := sym()
			if !ok {
				break
			}
			prog := r.padded()
			ics := r.padded()
			opt := r.u32()
			if r.err == nil {
				ds.views[vname] = ViewDef{Name: vname, Program: prog, ICs: ics, Optimized: opt != 0}
			}
		}

		npreds := r.count(12)
		for j := 0; j < npreds && r.err == nil; j++ {
			pname, ok := sym()
			if !ok {
				break
			}
			arity := int(r.u32())
			nrows := int(r.u32())
			if r.err != nil {
				break
			}
			if arity < 0 || arity > 1<<16 {
				r.fail("implausible arity %d", arity)
				break
			}
			ps := newPredState(arity)
			ds.preds[pname] = ps
			for c := 0; c < arity && r.err == nil; c++ {
				n := int(r.u32())
				b := r.bytes(n)
				if pad := (4 - n%4) % 4; pad > 0 {
					r.bytes(pad)
				}
				if r.err != nil {
					break
				}
				sk, used, err := eval.DecodeColSketch(b)
				if err != nil || used != n {
					r.fail("bad sketch for %s.%s[%d]: %v", name, pname, c, err)
					break
				}
				ps.sketches[c] = sk
			}
			if r.err != nil {
				break
			}
			if arity > 0 && nrows > (len(r.data)-r.off)/(4*arity) {
				r.fail("implausible row count %d", nrows)
				break
			}
			for k := 0; k < nrows && r.err == nil; k++ {
				row := make([]uint32, arity)
				for c := range row {
					row[c] = r.u32()
				}
				if r.err == nil {
					// Rows land verbatim (sketches came from disk, not from
					// re-adding), so recovered state is byte-for-byte the
					// checkpointed state.
					ps.rows[rowKey(row)] = row
				}
			}
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("%w: segment: %d trailing bytes", ErrCorrupt, len(body)-r.off)
	}
	return nil
}

// --- manifest ---------------------------------------------------------

type manifest struct {
	seq     uint64
	segment string // base name, "" when no checkpoint exists yet
	wal     string // base name
}

func (m manifest) render() string {
	seg := m.segment
	if seg == "" {
		seg = "-"
	}
	return fmt.Sprintf("sqod-store v1\nseq %d\nsegment %s\nwal %s\n", m.seq, seg, m.wal)
}

func parseManifest(data []byte) (manifest, error) {
	var m manifest
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 4 || lines[0] != "sqod-store v1" {
		return m, fmt.Errorf("%w: manifest: bad header", ErrCorrupt)
	}
	if _, err := fmt.Sscanf(lines[1], "seq %d", &m.seq); err != nil {
		return m, fmt.Errorf("%w: manifest: bad seq", ErrCorrupt)
	}
	var seg, wal string
	if _, err := fmt.Sscanf(lines[2], "segment %s", &seg); err != nil {
		return m, fmt.Errorf("%w: manifest: bad segment", ErrCorrupt)
	}
	if _, err := fmt.Sscanf(lines[3], "wal %s", &wal); err != nil {
		return m, fmt.Errorf("%w: manifest: bad wal", ErrCorrupt)
	}
	if seg != "-" {
		m.segment = seg
	}
	m.wal = wal
	return m, nil
}

// writeFileAtomic writes data to path via a temp file, an fsync, a
// rename, and a directory fsync — the write is all-or-nothing across
// crashes.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- recovery ---------------------------------------------------------

// recover loads the manifest, the segment it names, and the WAL tail,
// rebuilding the mirror and filling rec. Caller is Open; s.mu is not
// yet shared.
func (s *Store) recover(rec *Recovered) error {
	mpath := filepath.Join(s.dir, manifestName)
	mdata, err := os.ReadFile(mpath)
	switch {
	case os.IsNotExist(err):
		// Fresh store: seq 1, empty WAL, no segment.
		s.seq = 1
		s.walName = filepath.Base(filename(s.dir, walPrefix, s.seq, walExt))
		if err := writeFileAtomic(filepath.Join(s.dir, s.walName), nil); err != nil {
			return fmt.Errorf("store: init wal: %w", err)
		}
		if err := writeFileAtomic(mpath, []byte(manifest{seq: s.seq, wal: s.walName}.render())); err != nil {
			return fmt.Errorf("store: init manifest: %w", err)
		}
	case err != nil:
		return fmt.Errorf("store: reading manifest: %w", err)
	default:
		m, err := parseManifest(mdata)
		if err != nil {
			return err
		}
		s.seq = m.seq
		s.segName = m.segment
		s.walName = m.wal
	}

	if s.segName != "" {
		data, unmap, err := mapFile(filepath.Join(s.dir, s.segName))
		if err != nil {
			return fmt.Errorf("store: mapping segment %s: %w", s.segName, err)
		}
		lerr := s.loadSegment(data)
		unmap()
		if lerr != nil {
			return lerr
		}
	}
	rec.Datasets = s.snapshotLocked()

	wpath := filepath.Join(s.dir, s.walName)
	wdata, err := os.ReadFile(wpath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: reading wal: %w", err)
	}
	res := replay(wdata, s.syms)
	for _, op := range res.ops {
		rec.Tail = append(rec.Tail, s.publicOp(op))
		s.apply(op)
	}
	rec.WALRecords = res.records
	rec.WALBytes = int64(res.goodBytes)
	s.sinceCkpt = res.records
	if res.truncated != nil {
		rec.Truncated = true
		if err := os.Truncate(wpath, int64(res.goodBytes)); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}

	f, err := os.OpenFile(wpath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening wal for append: %w", err)
	}
	s.wal = f
	s.gc()
	return nil
}

// gc removes seg/wal files the manifest no longer references (left
// behind if a crash interrupted post-checkpoint cleanup).
func (s *Store) gc() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		owned := (strings.HasPrefix(name, segPrefix+"-") && strings.HasSuffix(name, segExt)) ||
			(strings.HasPrefix(name, walPrefix+"-") && strings.HasSuffix(name, walExt)) ||
			strings.HasPrefix(name, ".tmp-")
		if owned && name != s.segName && name != s.walName {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// --- checkpoint -------------------------------------------------------

// checkpointLocked writes the state as a new segment, switches to a
// fresh WAL, and commits both via the manifest. Caller holds s.mu.
func (s *Store) checkpointLocked() error {
	s.sinceCkpt = 0
	if s.dir == "" {
		s.checkpoints++
		return nil
	}
	// An interval-policy WAL may have unsynced acked records; the old
	// WAL is about to be deleted, so its state must be fully inside the
	// segment — it is (the mirror covers every appended record), but
	// sync anyway so a crash between rename and delete leaves a
	// consistent pair either way.
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("syncing wal: %w", err)
		}
	}

	newSeq := s.seq + 1
	segName := filepath.Base(filename(s.dir, segPrefix, newSeq, segExt))
	walName := filepath.Base(filename(s.dir, walPrefix, newSeq, walExt))
	if err := writeFileAtomic(filepath.Join(s.dir, segName), s.encodeSegment()); err != nil {
		return fmt.Errorf("writing segment: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, walName), nil); err != nil {
		return fmt.Errorf("creating wal: %w", err)
	}
	m := manifest{seq: newSeq, segment: segName, wal: walName}
	if err := writeFileAtomic(filepath.Join(s.dir, manifestName), []byte(m.render())); err != nil {
		return fmt.Errorf("writing manifest: %w", err)
	}

	// The manifest rename committed the checkpoint; everything after is
	// cleanup.
	oldWal, oldSeg := s.walName, s.segName
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("opening new wal: %w", err)
	}
	if s.wal != nil {
		s.wal.Close()
	}
	s.wal = f
	s.seq, s.segName, s.walName = newSeq, segName, walName
	s.checkpoints++
	if oldWal != "" && oldWal != walName {
		os.Remove(filepath.Join(s.dir, oldWal))
	}
	if oldSeg != "" && oldSeg != segName {
		os.Remove(filepath.Join(s.dir, oldSeg))
	}
	return nil
}
