package shard

import (
	"fmt"
	"testing"
)

// TestGoldenAssignments pins concrete shard assignments forever: the
// partitioners are part of the on-the-wire cluster contract (dataset
// placement) and the eval determinism contract, so any change to the
// hash is a breaking change and must fail loudly here.
func TestGoldenAssignments(t *testing.T) {
	cases := []struct {
		part Partitioner
		key  string
		n2   int
		n4   int
		n8   int
	}{
		{Modulo{}, "", 1, 1, 5},
		{Modulo{}, "n:0", 1, 3, 3},
		{Modulo{}, "n:3", 0, 2, 6},
		{Modulo{}, "n:17", 1, 1, 5},
		{Modulo{}, "s:alice", 0, 0, 0},
		{Modulo{}, "s:bob", 1, 3, 3},
		{Rendezvous{}, "", 1, 3, 3},
		{Rendezvous{}, "n:0", 0, 0, 0},
		{Rendezvous{}, "n:3", 0, 3, 5},
		{Rendezvous{}, "n:17", 1, 1, 1},
		{Rendezvous{}, "s:alice", 0, 2, 7},
		{Rendezvous{}, "s:bob", 1, 1, 7},
	}
	for _, c := range cases {
		for _, g := range []struct{ n, want int }{{2, c.n2}, {4, c.n4}, {8, c.n8}} {
			if got := c.part.Shard(c.key, g.n); got != g.want {
				t.Errorf("%s.Shard(%q, %d) = %d, want %d", c.part.Name(), c.key, g.n, got, g.want)
			}
		}
	}
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	for ds, want := range map[string]string{
		"alpha": "http://c:8080",
		"beta":  "http://a:8080",
		"gamma": "http://b:8080",
	} {
		if got := Place(ds, peers); got != want {
			t.Errorf("Place(%q) = %q, want %q", ds, got, want)
		}
	}
}

func TestShardRangeAndDeterminism(t *testing.T) {
	for _, p := range []Partitioner{Modulo{}, Rendezvous{}} {
		for _, n := range []int{0, 1, 2, 3, 7, 256} {
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("n:%d", i)
				got := p.Shard(key, n)
				if got != p.Shard(key, n) {
					t.Fatalf("%s: nondeterministic for %q", p.Name(), key)
				}
				if n < 2 {
					if got != 0 {
						t.Fatalf("%s.Shard(%q, %d) = %d, want 0", p.Name(), key, n, got)
					}
					continue
				}
				if got < 0 || got >= n {
					t.Fatalf("%s.Shard(%q, %d) = %d out of range", p.Name(), key, n, got)
				}
			}
		}
	}
}

// TestRendezvousMinimalDisruption: growing the shard count moves only
// keys won by the new shard — every key not assigned to shard n keeps
// its old owner.
func TestRendezvousMinimalDisruption(t *testing.T) {
	p := Rendezvous{}
	for n := 2; n <= 8; n++ {
		moved := 0
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("n:%d", i)
			old, niu := p.Shard(key, n), p.Shard(key, n+1)
			if old != niu {
				moved++
				if niu != n {
					t.Fatalf("n=%d: key %q moved %d -> %d, not to the new shard", n, key, old, niu)
				}
			}
		}
		if moved == 0 {
			t.Fatalf("n=%d: new shard won zero of 500 keys", n)
		}
	}
}

func TestBalance(t *testing.T) {
	keys := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		keys = append(keys, fmt.Sprintf("n:%d", i))
	}
	for _, p := range []Partitioner{Modulo{}, Rendezvous{}} {
		for _, n := range []int{2, 4, 8} {
			if r := Balance(p, keys, n); r > 1.35 {
				t.Errorf("%s over %d shards: max/mean load %.2f too skewed", p.Name(), n, r)
			}
		}
	}
	if Balance(Modulo{}, nil, 4) != 1 || Balance(Modulo{}, keys, 0) != 1 {
		t.Error("degenerate Balance inputs should report 1")
	}
}

func TestParse(t *testing.T) {
	for name, want := range map[string]string{"": "modulo", "modulo": "modulo", "rendezvous": "rendezvous"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse must reject unknown names")
	}
}

func TestPlace(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	if Place("ds", nil) != "" {
		t.Fatal("empty peer list should place nowhere")
	}
	// Order independence: every permutation of the peer list yields the
	// same owner — the cluster's coordinator and a restarted replacement
	// must agree even if -peers was written in a different order.
	perms := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0]},
		{peers[2], peers[1], peers[0]},
	}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("dataset-%d", i)
		owner := Place(name, perms[0])
		for _, perm := range perms[1:] {
			if got := Place(name, perm); got != owner {
				t.Fatalf("Place(%q) order-dependent: %q vs %q", name, owner, got)
			}
		}
	}
	// Removing a non-owner peer never reassigns a dataset it didn't own.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("dataset-%d", i)
		owner := Place(name, peers)
		for _, drop := range peers {
			if drop == owner {
				continue
			}
			rest := make([]string, 0, 2)
			for _, p := range peers {
				if p != drop {
					rest = append(rest, p)
				}
			}
			if got := Place(name, rest); got != owner {
				t.Fatalf("Place(%q): dropping non-owner %q moved it %q -> %q", name, drop, owner, got)
			}
		}
	}
}
