package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a datalog program: a set of rules together with a
// distinguished query (goal) predicate.
type Program struct {
	Rules []Rule
	// Query names the distinguished IDB query predicate.
	Query string
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	out := &Program{Query: p.Query, Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		out.Rules[i] = r.Clone()
	}
	return out
}

// IDB returns the set of IDB predicates: those appearing in rule heads.
func (p *Program) IDB() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// EDB returns the set of EDB predicates: those appearing only in rule
// bodies (positively or negatively), never in heads.
func (p *Program) EDB() map[string]bool {
	idb := p.IDB()
	edb := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Pos {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
		for _, a := range r.Neg {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
	}
	return edb
}

// PredArity returns the arity of every predicate mentioned in the
// program, or an error if some predicate is used with two different
// arities.
func (p *Program) PredArity() (map[string]int, error) {
	ar := map[string]int{}
	note := func(a Atom) error {
		if n, ok := ar[a.Pred]; ok && n != a.Arity() {
			return fmt.Errorf("predicate %s used with arities %d and %d", a.Pred, n, a.Arity())
		}
		ar[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Pos {
			if err := note(a); err != nil {
				return nil, err
			}
		}
		for _, a := range r.Neg {
			if err := note(a); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}

// RulesFor returns the rules whose head predicate is pred, in program
// order.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// Validate checks the well-formedness conditions the optimizer assumes:
// consistent arities, safety of every rule, negation applied only to
// EDB predicates, and that the query predicate is an IDB predicate.
func (p *Program) Validate() error {
	if _, err := p.PredArity(); err != nil {
		return err
	}
	// A query predicate with no rules is permitted and denotes the
	// empty relation — the natural output of optimizing a query that
	// is unsatisfiable with respect to its constraints.
	idb := p.IDB()
	for _, r := range p.Rules {
		if err := r.Safe(); err != nil {
			return err
		}
		for _, a := range r.Neg {
			if idb[a.Pred] {
				return fmt.Errorf("rule %s negates IDB predicate %s; only EDB predicates may be negated", r, a.Pred)
			}
		}
	}
	return nil
}

// ValidateICs checks that a set of integrity constraints is
// well-formed with respect to the program: no IDB predicates in ic
// bodies, and consistent arities with the program's EDB predicates.
func (p *Program) ValidateICs(ics []IC) error {
	idb := p.IDB()
	ar, err := p.PredArity()
	if err != nil {
		return err
	}
	for i, ic := range ics {
		for _, a := range append(append([]Atom{}, ic.Pos...), ic.Neg...) {
			if idb[a.Pred] {
				return fmt.Errorf("ic %d (%s): IDB predicate %s not allowed in ic bodies", i, ic, a.Pred)
			}
			if n, ok := ar[a.Pred]; ok && n != a.Arity() {
				return fmt.Errorf("ic %d (%s): predicate %s has arity %d in the program but %d here", i, ic, a.Pred, n, a.Arity())
			}
		}
		// Every variable of an order atom or negated atom should occur
		// in some atom of the ic; otherwise the ic can never be
		// evaluated meaningfully against a database.
		posVars := map[string]bool{}
		for _, a := range ic.Pos {
			for _, v := range a.Vars(nil) {
				posVars[v] = true
			}
		}
		for _, a := range ic.Neg {
			for _, v := range a.Vars(nil) {
				posVars[v] = true
			}
		}
		for _, c := range ic.Cmp {
			for _, v := range c.Vars(nil) {
				if !posVars[v] {
					return fmt.Errorf("ic %d (%s): order-atom variable %s occurs in no relational atom", i, ic, v)
				}
			}
		}
	}
	return nil
}

// String renders the program in source syntax, one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedPreds returns the program's predicates sorted by name,
// IDB and EDB combined; handy for deterministic output.
func (p *Program) SortedPreds() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
		for _, a := range r.Pos {
			set[a.Pred] = true
		}
		for _, a := range r.Neg {
			set[a.Pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
