package eval

// Exported delta-execution surface for incremental view maintenance
// (package incr). A DeltaProgram compiles one program into join plans
// for every (rule, occurrence) pair — including EDB occurrences, which
// full evaluation never delta-restricts but incremental maintenance
// must (the external Δ is an EDB delta) — plus one head-bound
// derivability plan per rule, all sharing a single interner whose ids
// stay stable for the life of the handle. The caller owns relation
// storage (IRel) and decides, per run, which version of each relation
// every subgoal reads (RelView prefix snapshots); that per-subgoal
// old/new freedom is exactly what the counting and DRed delta passes
// need and what the in-engine evaluators never expose.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ast"
)

// errStopRun stops a derivability run at its first complete firing.
var errStopRun = errors.New("eval: stop delta run")

// DeltaProgram is a compiled handle for delta evaluation of one
// validated program. Its compiled surface is immutable after
// CompileDeltaProgram (the policy plan cache below is internally
// synchronized) and safe for concurrent RunDelta/Derivable calls only
// when the views passed in are not being written — the intended
// single-writer discipline of incremental maintenance.
type DeltaProgram struct {
	prog      *ast.Program
	idbPr     map[string]bool
	arity     map[string]int
	in        *interner
	plans     map[planKey]*plan
	headPlans []*plan // per rule: head variables pre-bound (Derivable)
	// Cost-ordered plans compiled on demand by RunDeltaPolicy, keyed by
	// order signature. Guarded by mu — unlike the engine, delta runs
	// have no single-threaded barrier to plan at.
	mu      sync.Mutex
	byOrder map[planKey]map[string]*plan
}

// CompileDeltaProgram validates p and compiles its plans. Unlike the
// in-engine prepare step, every positive occurrence of every rule gets
// a delta plan (occ ranges over all subgoals, not just IDB ones).
func CompileDeltaProgram(p *ast.Program) (*DeltaProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arity, err := p.PredArity()
	if err != nil {
		return nil, err
	}
	dp := &DeltaProgram{
		prog:      p,
		idbPr:     p.IDB(),
		arity:     arity,
		in:        newInterner(),
		plans:     make(map[planKey]*plan, 2*len(p.Rules)),
		headPlans: make([]*plan, len(p.Rules)),
	}
	for i, r := range p.Rules {
		dp.plans[planKey{i, -1}] = compilePlan(dp.in, dp.idbPr, r, i, -1)
		for occ := range r.Pos {
			dp.plans[planKey{i, occ}] = compilePlan(dp.in, dp.idbPr, r, i, occ)
		}
		dp.headPlans[i] = compilePlanBound(dp.in, dp.idbPr, r, i, -1, true)
	}
	return dp, nil
}

// Program returns the compiled program. Callers must not mutate it.
func (dp *DeltaProgram) Program() *ast.Program { return dp.prog }

// IsIDB reports whether pred is derived by some rule of the program.
func (dp *DeltaProgram) IsIDB(pred string) bool { return dp.idbPr[pred] }

// PredArity returns the arity of a predicate the program mentions.
func (dp *DeltaProgram) PredArity(pred string) (int, bool) {
	n, ok := dp.arity[pred]
	return n, ok
}

// IRel is an interned relation owned by the caller: flat rows of
// DeltaProgram-interned ids, append-only, set-semantic (Add dedups).
type IRel struct{ r *irel }

// NewIRel returns an empty relation of the given arity.
func (dp *DeltaProgram) NewIRel(arity int) *IRel {
	return &IRel{r: newIrel(arity, 0)}
}

// Len returns the number of rows.
func (ir *IRel) Len() int { return ir.r.n }

// Arity returns the relation's arity.
func (ir *IRel) Arity() int { return ir.r.arity }

// Row returns row i. The slice aliases internal storage: callers must
// not modify it, and must not retain it across an Add (which may grow
// the backing array).
func (ir *IRel) Row(i int) []uint32 { return ir.r.row(i) }

// Add appends a row unless already present, copying the values, and
// reports whether the row was new.
func (ir *IRel) Add(row []uint32) bool { return ir.r.add(row) }

// Contains reports whether the relation holds the row.
func (ir *IRel) Contains(row []uint32) bool { return ir.r.contains(row) }

// DistinctEstimate returns the estimated number of distinct values in
// column j — exact for small relations, a linear-counting sketch
// estimate past the spill threshold (see stats.go). This is the
// statistic RunDeltaPolicy's cost model consumes, exported so
// incremental-maintenance tests can pin sketch maintenance across
// retraction-driven rebuilds.
func (ir *IRel) DistinctEstimate(j int) int { return ir.r.distinct(j) }

// View returns a snapshot of the relation's current contents. Because
// IRel is append-only, the snapshot stays frozen while later rows are
// added — the cheap MVCC that lets a delta pass read "old" state while
// building "new".
func (ir *IRel) View() RelView {
	if ir == nil {
		return RelView{}
	}
	return RelView{Rel: ir, Hi: ir.r.n}
}

// RelView is a prefix snapshot of an append-only relation: rows
// [0, Hi) of Rel. The zero value is an empty relation.
type RelView struct {
	Rel *IRel
	Hi  int
}

// Len returns the number of visible rows.
func (v RelView) Len() int {
	if v.Rel == nil {
		return 0
	}
	return v.Hi
}

// Contains reports membership within the prefix in O(1): the backing
// hash set stores row indexes, so a hit beyond Hi is a row appended
// after the snapshot and reads as absent.
func (v RelView) Contains(row []uint32) bool {
	if v.Rel == nil || v.Hi == 0 {
		return false
	}
	idx := v.Rel.r.set.findIdx(row)
	return idx >= 0 && int(idx) < v.Hi
}

// Row returns row i of the snapshot (caller must not modify).
func (v RelView) Row(i int) []uint32 { return v.Rel.r.row(i) }

// InternFact interns a ground tuple of pred, appending the row to buf
// and returning it. Errors on unknown predicates, arity mismatches, and
// non-ground arguments.
func (dp *DeltaProgram) InternFact(pred string, args []ast.Term, buf []uint32) ([]uint32, error) {
	ar, ok := dp.arity[pred]
	if !ok {
		return nil, fmt.Errorf("eval: predicate %s is not mentioned by the program", pred)
	}
	if len(args) != ar {
		return nil, fmt.Errorf("eval: %s expects %d arguments, got %d", pred, ar, len(args))
	}
	for _, t := range args {
		if !t.IsConst() {
			return nil, fmt.Errorf("eval: fact %s(...) has non-ground argument %s", pred, t)
		}
		buf = append(buf, dp.in.intern(t))
	}
	return buf, nil
}

// Tuple converts an interned row back to terms.
func (dp *DeltaProgram) Tuple(row []uint32) Tuple {
	out := make(Tuple, len(row))
	for i, id := range row {
		out[i] = dp.in.term(id)
	}
	return out
}

// Atom converts an interned row of pred back to a ground atom.
func (dp *DeltaProgram) Atom(pred string, row []uint32) ast.Atom {
	return ast.Atom{Pred: pred, Args: dp.Tuple(row)}
}

// dRun is the delta-plan executor: cTaskRun with caller-supplied
// per-subgoal views instead of engine-owned snapshot relations, and an
// emit callback instead of an output buffer (delta passes want every
// firing, with the caller deciding dedup and counting semantics).
type dRun struct {
	dp        *DeltaProgram
	ctx       context.Context
	pl        *plan
	subs      []RelView // indexed by subgoal index (subPlan.subIdx)
	negs      func(string) RelView
	emit      func([]uint32) error
	binding   []uint32
	probeBufs [][]uint32
	negBuf    []uint32
	headBuf   []uint32
	probes    int64
}

func (dp *DeltaProgram) newRun(ctx context.Context, pl *plan, subs []RelView, negs func(string) RelView, emit func([]uint32) error) *dRun {
	tr := &dRun{dp: dp, ctx: ctx, pl: pl, subs: subs, negs: negs, emit: emit}
	tr.binding = make([]uint32, pl.nSlots)
	tr.probeBufs = make([][]uint32, len(pl.subs))
	for i := range pl.subs {
		if n := len(pl.subs[i].boundPos); n > 0 {
			tr.probeBufs[i] = make([]uint32, n)
		}
	}
	if pl.maxNegArity > 0 {
		tr.negBuf = make([]uint32, pl.maxNegArity)
	}
	tr.headBuf = make([]uint32, len(pl.head.isConst))
	return tr
}

// RunDelta evaluates rule ruleIdx with subgoal occ (by subgoal index;
// -1 for the full join) delta-restricted, reading each positive subgoal
// j from subs[j] and each negated subgoal from negs(pred) (nil negs
// reads every negated instance as absent). emit is called once per
// complete rule firing with the instantiated head row; the slice is
// reused across calls, so copy it to retain, and a non-nil emit error
// aborts the run and is returned verbatim. No dedup, budget, or
// firing/derivation accounting happens here — only join probes are
// counted (the returned int64); delta passes own those semantics.
// Emitting may append to the very relations being read: views bound
// the iteration to their frozen prefix.
func (dp *DeltaProgram) RunDelta(ctx context.Context, ruleIdx, occ int, subs []RelView, negs func(string) RelView, emit func([]uint32) error) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pl, ok := dp.plans[planKey{ruleIdx, occ}]
	if !ok {
		return 0, fmt.Errorf("eval: no plan for rule %d occurrence %d", ruleIdx, occ)
	}
	if got, want := len(subs), len(dp.prog.Rules[ruleIdx].Pos); got != want {
		return 0, fmt.Errorf("eval: rule %d has %d subgoals, got %d views", ruleIdx, want, got)
	}
	tr := dp.newRun(ctx, pl, subs, negs, emit)
	err := tr.joinFrom(0)
	return tr.probes, err
}

// RunDeltaPolicy is RunDelta under a join-order policy. Greedy (or "")
// runs the precompiled plan unchanged. Cost and adaptive order the
// join per call from the views' statistics — row counts come from each
// view's prefix length, distinct estimates from the backing relation's
// sketches (a full-relation approximation of the prefix; documented
// slack the cost model tolerates) — and adaptive additionally returns
// immediately when any positive subgoal's view is empty. There is no
// mid-run reorder in delta passes: they are short-lived and the emit
// contract (every firing, caller-owned dedup) leaves no safe
// checkpoint. Emission order can differ across policies; the counting
// and DRed passes are order-insensitive (signed sums and sets), which
// is what keeps View answers, counts, and provenance identical under
// every policy.
func (dp *DeltaProgram) RunDeltaPolicy(ctx context.Context, ruleIdx, occ int, policy JoinOrderPolicy, subs []RelView, negs func(string) RelView, emit func([]uint32) error) (int64, error) {
	if policy == "" || policy == PolicyGreedy {
		return dp.RunDelta(ctx, ruleIdx, occ, subs, negs, emit)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	base, ok := dp.plans[planKey{ruleIdx, occ}]
	if !ok {
		return 0, fmt.Errorf("eval: no plan for rule %d occurrence %d", ruleIdx, occ)
	}
	r := dp.prog.Rules[ruleIdx]
	if got, want := len(subs), len(r.Pos); got != want {
		return 0, fmt.Errorf("eval: rule %d has %d subgoals, got %d views", ruleIdx, want, got)
	}
	if policy == PolicyAdaptive && len(r.Pos) > 0 {
		for _, v := range subs {
			if v.Len() == 0 {
				return 0, nil // early exit: the rule cannot fire
			}
		}
	}
	order, _ := costJoinOrder(r, occ, func(si int) relEstimate { return viewEstimate(subs[si]) }, nil)
	pl := base
	if !intsEqual(order, base.order) {
		pl = dp.planForOrder(ruleIdx, occ, order)
	}
	tr := dp.newRun(ctx, pl, subs, negs, emit)
	err := tr.joinFrom(0)
	return tr.probes, err
}

// viewEstimate snapshots a view's statistics for the cost model.
func viewEstimate(v RelView) relEstimate {
	if v.Rel == nil || v.Hi == 0 {
		return relEstimate{}
	}
	rel := v.Rel.r
	d := make([]int, rel.arity)
	for j := range d {
		d[j] = rel.distinct(j)
	}
	return relEstimate{n: v.Hi, distinct: d}
}

// planForOrder returns the cached plan for a cost-chosen order,
// compiling it on first use. The recompile only read-hits the shared
// interner — every constant the rule mentions was interned when the
// base plans were compiled — so it is safe alongside concurrent
// greedy-plan readers.
func (dp *DeltaProgram) planForOrder(ruleIdx, occ int, order []int) *plan {
	sig := orderSig(order)
	k := planKey{ruleIdx, occ}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if dp.byOrder == nil {
		dp.byOrder = map[planKey]map[string]*plan{}
	}
	m := dp.byOrder[k]
	if m == nil {
		m = map[string]*plan{}
		dp.byOrder[k] = m
	}
	if pl := m[sig]; pl != nil {
		return pl
	}
	pl := compilePlanOrdered(dp.in, dp.idbPr, dp.prog.Rules[ruleIdx], ruleIdx, occ, false, order)
	m[sig] = pl
	return pl
}

// Derivable reports whether head — an interned row of rule ruleIdx's
// head predicate — has at least one firing over the supplied views. It
// uses the rule's head-bound plan: the candidate row seeds the binding
// slots, so every subgoal sees the head's variables as bound and the
// join explores only instantiations that could derive exactly this
// row. Probe count is returned for accounting.
func (dp *DeltaProgram) Derivable(ctx context.Context, ruleIdx int, head []uint32, subs []RelView, negs func(string) RelView) (bool, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pl := dp.headPlans[ruleIdx]
	if got, want := len(subs), len(dp.prog.Rules[ruleIdx].Pos); got != want {
		return false, 0, fmt.Errorf("eval: rule %d has %d subgoals, got %d views", ruleIdx, want, got)
	}
	tr := dp.newRun(ctx, pl, subs, negs, nil)
	tr.emit = func([]uint32) error { return errStopRun }
	// Seed the binding from the candidate row: constants must match
	// outright; variable slots take the row's value, and a second pass
	// catches repeated head variables whose positions disagree (the
	// last write wins in pass one, so any mismatch survives to pass
	// two).
	for j, c := range pl.head.isConst {
		if c {
			if head[j] != pl.head.vals[j] {
				return false, 0, nil
			}
		} else {
			tr.binding[pl.head.vals[j]] = head[j]
		}
	}
	for j, c := range pl.head.isConst {
		if !c && tr.binding[pl.head.vals[j]] != head[j] {
			return false, 0, nil
		}
	}
	err := tr.joinFrom(0)
	if err == errStopRun {
		return true, tr.probes, nil
	}
	return false, tr.probes, err
}

// joinFrom mirrors cTaskRun.joinFrom over caller views: iteration is
// clamped to each view's prefix on both the index path (chains are in
// ascending row order, so the first out-of-prefix candidate ends the
// chain) and the scan path. Indexes are always used when the plan is
// indexable — delta passes have no ablation knob.
func (tr *dRun) joinFrom(depth int) error {
	pl := tr.pl
	if depth == len(pl.subs) {
		return tr.finish()
	}
	sp := &pl.subs[depth]
	v := tr.subs[sp.subIdx]
	if v.Rel == nil || v.Hi == 0 {
		return nil
	}
	rel := v.Rel.r
	if sp.indexable && len(sp.boundPos) > 0 {
		vals := tr.probeBufs[depth]
		for k, c := range sp.boundConst {
			if c {
				vals[k] = sp.boundVal[k]
			} else {
				vals[k] = tr.binding[sp.boundVal[k]]
			}
		}
		ix := rel.index(sp.mask, sp.boundPos)
		for ri := ix.lookup(rel, vals); ri >= 0; ri = ix.next[ri] {
			if int(ri) >= v.Hi {
				break // ascending chain: everything further is post-snapshot
			}
			if err := tr.tryRow(depth, rel.row(int(ri)), false); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < v.Hi; i++ {
		if err := tr.tryRow(depth, rel.row(i), true); err != nil {
			return err
		}
	}
	return nil
}

func (tr *dRun) tryRow(depth int, row []uint32, verify bool) error {
	tr.probes++
	if tr.probes&cancelPollMask == 0 {
		if err := tr.ctx.Err(); err != nil {
			return err
		}
	}
	sp := &tr.pl.subs[depth]
	if verify {
		for k, p := range sp.boundPos {
			want := sp.boundVal[k]
			if !sp.boundConst[k] {
				want = tr.binding[want]
			}
			if row[p] != want {
				return nil
			}
		}
	}
	for k, p := range sp.bindPos {
		tr.binding[sp.bindSlot[k]] = row[p]
	}
	for k, p := range sp.checkPos {
		if row[p] != tr.binding[sp.checkSlot[k]] {
			return nil
		}
	}
	for i := range sp.cmps {
		if !tr.evalCmp(&sp.cmps[i]) {
			return nil
		}
	}
	for i := range sp.negs {
		if tr.negContains(&sp.negs[i]) {
			return nil
		}
	}
	return tr.joinFrom(depth + 1)
}

func (tr *dRun) evalCmp(c *cmpPlan) bool {
	l, r := c.l, c.r
	if !c.lConst {
		l = tr.binding[l]
	}
	if !c.rConst {
		r = tr.binding[r]
	}
	switch c.op {
	case ast.EQ:
		return l == r
	case ast.NE:
		return l != r
	}
	return ast.NewCmp(tr.dp.in.term(l), c.op, tr.dp.in.term(r)).Eval()
}

func (tr *dRun) negContains(tpl *atomTpl) bool {
	if tr.negs == nil {
		return false
	}
	buf := tr.negBuf[:len(tpl.isConst)]
	for j, c := range tpl.isConst {
		if c {
			buf[j] = tpl.vals[j]
		} else {
			buf[j] = tr.binding[tpl.vals[j]]
		}
	}
	return tr.negs(tpl.pred).Contains(buf)
}

func (tr *dRun) finish() error {
	pl := tr.pl
	for i := range pl.finishCmps {
		if !tr.evalCmp(&pl.finishCmps[i]) {
			return nil
		}
	}
	for i := range pl.finishNegs {
		if tr.negContains(&pl.finishNegs[i]) {
			return nil
		}
	}
	row := tr.headBuf
	for j, c := range pl.head.isConst {
		if c {
			row[j] = pl.head.vals[j]
		} else {
			row[j] = tr.binding[pl.head.vals[j]]
		}
	}
	return tr.emit(row)
}
