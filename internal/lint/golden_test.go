package lint

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenExamples locks the exact text and JSON renderings of the
// linter over the checked-in example programs, including the Figure 1
// transitive-closure program. Regenerate with:
//
//	go test ./internal/lint -run Golden -update
func TestGoldenExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/lint/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example programs under examples/lint/")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".dl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			unit, err := parser.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rep := Run(context.Background(), unit.Program, unit.ICs, unit.Facts, Options{})

			var text, js bytes.Buffer
			if err := WriteText(&text, name+".dl", rep); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&js, rep); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", name+".txt"), text.Bytes())
			compareGolden(t, filepath.Join("testdata", name+".json"), js.Bytes())
		})
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s out of date (run with -update):\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}
