package unify

import (
	"testing"

	"repro/internal/ast"
)

func atom(pred string, args ...ast.Term) ast.Atom { return ast.NewAtom(pred, args...) }

func TestSubstWalkChains(t *testing.T) {
	s := Subst{"X": ast.V("Y"), "Y": ast.N(3)}
	if got := s.Walk(ast.V("X")); !got.Equal(ast.N(3)) {
		t.Fatalf("Walk(X) = %v", got)
	}
	if got := s.Walk(ast.V("Z")); !got.Equal(ast.V("Z")) {
		t.Fatalf("Walk(unbound) = %v", got)
	}
	if got := s.Walk(ast.N(7)); !got.Equal(ast.N(7)) {
		t.Fatalf("Walk(const) = %v", got)
	}
}

func TestUnifyBasics(t *testing.T) {
	// p(X, 1) ≗ p(2, Y) → X=2, Y=1
	s, ok := Unify(atom("p", ast.V("X"), ast.N(1)), atom("p", ast.N(2), ast.V("Y")), nil)
	if !ok {
		t.Fatal("should unify")
	}
	if !s.Walk(ast.V("X")).Equal(ast.N(2)) || !s.Walk(ast.V("Y")).Equal(ast.N(1)) {
		t.Fatalf("bindings wrong: %v", s)
	}
}

func TestUnifyFailures(t *testing.T) {
	if _, ok := Unify(atom("p", ast.N(1)), atom("q", ast.N(1)), nil); ok {
		t.Error("different predicates must not unify")
	}
	if _, ok := Unify(atom("p", ast.N(1)), atom("p", ast.N(1), ast.N(2)), nil); ok {
		t.Error("different arities must not unify")
	}
	if _, ok := Unify(atom("p", ast.N(1)), atom("p", ast.N(2)), nil); ok {
		t.Error("distinct constants must not unify")
	}
}

func TestUnifySharedVariables(t *testing.T) {
	// p(X, X) ≗ p(1, Y) → X=1, Y=1
	s, ok := Unify(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.N(1), ast.V("Y")), nil)
	if !ok {
		t.Fatal("should unify")
	}
	if !s.Walk(ast.V("Y")).Equal(ast.N(1)) {
		t.Fatalf("Y should resolve to 1, got %v", s.Walk(ast.V("Y")))
	}
	// p(X, X) ≗ p(1, 2) must fail.
	if _, ok := Unify(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.N(1), ast.N(2)), nil); ok {
		t.Fatal("conflicting bindings must fail")
	}
}

func TestUnifyDoesNotMutateInput(t *testing.T) {
	base := Subst{"Z": ast.N(9)}
	s, ok := Unify(atom("p", ast.V("X")), atom("p", ast.N(1)), base)
	if !ok {
		t.Fatal("should unify")
	}
	if len(base) != 1 {
		t.Fatal("input substitution mutated")
	}
	if !s.Walk(ast.V("Z")).Equal(ast.N(9)) {
		t.Fatal("existing binding lost")
	}
}

func TestMatchOneWay(t *testing.T) {
	// Pattern a(X, Y) matches target a(U, V) mapping X->U, Y->V.
	s, ok := Match(atom("a", ast.V("X"), ast.V("Y")), atom("a", ast.V("U"), ast.V("V")), nil)
	if !ok {
		t.Fatal("should match")
	}
	if !s.Walk(ast.V("X")).Equal(ast.V("U")) {
		t.Fatalf("X -> %v", s.Walk(ast.V("X")))
	}
	// One-way: target variables must not be bound.
	if _, bound := s["U"]; bound {
		t.Fatal("target variable was bound")
	}
	// Pattern a(X, X) must NOT match a(U, V): U and V are distinct
	// "constants" from the pattern's point of view.
	if _, ok := Match(atom("a", ast.V("X"), ast.V("X")), atom("a", ast.V("U"), ast.V("V")), nil); ok {
		t.Fatal("repeated pattern variable must not match distinct target variables")
	}
	// But a(X, Y) matches a(U, U) with X=Y=U.
	if _, ok := Match(atom("a", ast.V("X"), ast.V("Y")), atom("a", ast.V("U"), ast.V("U")), nil); !ok {
		t.Fatal("should match with both mapped to U")
	}
	// Constants in the pattern must match exactly.
	if _, ok := Match(atom("a", ast.N(1)), atom("a", ast.N(2)), nil); ok {
		t.Fatal("constant mismatch must fail")
	}
	if _, ok := Match(atom("a", ast.N(1)), atom("a", ast.V("U")), nil); ok {
		t.Fatal("pattern constant cannot match a target variable")
	}
}

func TestHomomorphismsEnumeration(t *testing.T) {
	// Map {e(X,Y), e(Y,Z)} into {e(a,b), e(b,c)}.
	src := []ast.Atom{
		atom("e", ast.V("X"), ast.V("Y")),
		atom("e", ast.V("Y"), ast.V("Z")),
	}
	dst := []ast.Atom{
		atom("e", ast.S("a"), ast.S("b")),
		atom("e", ast.S("b"), ast.S("c")),
	}
	var homs []Subst
	Homomorphisms(src, dst, func(s Subst) bool {
		homs = append(homs, s)
		return true
	})
	// Only one: X->a, Y->b, Z->c. (e(b,c) then needs e(c,?) — absent.)
	if len(homs) != 1 {
		t.Fatalf("got %d homomorphisms, want 1: %v", len(homs), homs)
	}
	h := homs[0]
	if !h.Walk(ast.V("X")).Equal(ast.S("a")) || !h.Walk(ast.V("Z")).Equal(ast.S("c")) {
		t.Fatalf("hom wrong: %v", h)
	}
}

func TestHomomorphismsFolding(t *testing.T) {
	// {e(X,Y)} into {e(a,a)}: X and Y may collapse to the same value.
	src := []ast.Atom{atom("e", ast.V("X"), ast.V("Y"))}
	dst := []ast.Atom{atom("e", ast.S("a"), ast.S("a"))}
	if !HasHomomorphism(src, dst) {
		t.Fatal("folding homomorphism must exist")
	}
	// Reverse direction: {e(X,X)} into {e(a,b)} must fail.
	if HasHomomorphism([]ast.Atom{atom("e", ast.V("X"), ast.V("X"))}, []ast.Atom{atom("e", ast.S("a"), ast.S("b"))}) {
		t.Fatal("e(X,X) must not map into e(a,b)")
	}
}

func TestHomomorphismsCount(t *testing.T) {
	// {e(X,Y)} into a 2-cycle {e(a,b), e(b,a)}: two homomorphisms.
	src := []ast.Atom{atom("e", ast.V("X"), ast.V("Y"))}
	dst := []ast.Atom{atom("e", ast.S("a"), ast.S("b")), atom("e", ast.S("b"), ast.S("a"))}
	n := 0
	Homomorphisms(src, dst, func(Subst) bool { n++; return true })
	if n != 2 {
		t.Fatalf("got %d homomorphisms, want 2", n)
	}
	// Path of length 2 into the 2-cycle: e(X,Y), e(Y,Z) has 2 homs
	// (a→b→a and b→a→b).
	src2 := []ast.Atom{atom("e", ast.V("X"), ast.V("Y")), atom("e", ast.V("Y"), ast.V("Z"))}
	n2 := 0
	Homomorphisms(src2, dst, func(Subst) bool { n2++; return true })
	if n2 != 2 {
		t.Fatalf("got %d homomorphisms, want 2", n2)
	}
}

func TestHomomorphismsEarlyStop(t *testing.T) {
	src := []ast.Atom{atom("e", ast.V("X"), ast.V("Y"))}
	dst := []ast.Atom{atom("e", ast.S("a"), ast.S("b")), atom("e", ast.S("b"), ast.S("a"))}
	n := 0
	Homomorphisms(src, dst, func(Subst) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop failed: callback ran %d times", n)
	}
}

func TestHomomorphismsEmptySource(t *testing.T) {
	// The empty conjunction maps into anything, exactly once.
	n := 0
	ok := Homomorphisms(nil, []ast.Atom{atom("e", ast.S("a"), ast.S("b"))}, func(Subst) bool { n++; return true })
	if !ok || n != 1 {
		t.Fatalf("empty source: ok=%v n=%d", ok, n)
	}
}

func TestHomomorphismsIntoTargetWithVariables(t *testing.T) {
	// Symbolic targets: map ic atoms into a rule body with variables.
	// ic: a(X, Y), b(Y, Z); body: a(U, V), b(V, W) — one hom.
	src := []ast.Atom{atom("a", ast.V("X"), ast.V("Y")), atom("b", ast.V("Y"), ast.V("Z"))}
	dst := []ast.Atom{atom("a", ast.V("U"), ast.V("V")), atom("b", ast.V("V"), ast.V("W"))}
	n := 0
	Homomorphisms(src, dst, func(s Subst) bool {
		n++
		if !s.Walk(ast.V("Y")).Equal(ast.V("V")) {
			t.Errorf("Y must map to V, got %v", s.Walk(ast.V("Y")))
		}
		return true
	})
	if n != 1 {
		t.Fatalf("got %d homs, want 1", n)
	}
	// body with broken join: a(U, V), b(V2, W) — no hom.
	dst2 := []ast.Atom{atom("a", ast.V("U"), ast.V("V")), atom("b", ast.V("V2"), ast.V("W"))}
	if HasHomomorphism(src, dst2) {
		t.Fatal("join variable mismatch must prevent homomorphism")
	}
}

func TestApplyRule(t *testing.T) {
	r := ast.Rule{
		Head: atom("p", ast.V("X"), ast.V("Y")),
		Pos:  []ast.Atom{atom("e", ast.V("X"), ast.V("Y"))},
		Neg:  []ast.Atom{atom("f", ast.V("X"))},
		Cmp:  []ast.Cmp{ast.NewCmp(ast.V("X"), ast.LT, ast.V("Y"))},
	}
	s := Subst{"X": ast.N(1)}
	out := s.ApplyRule(r)
	if !out.Head.Args[0].Equal(ast.N(1)) || !out.Neg[0].Args[0].Equal(ast.N(1)) || !out.Cmp[0].Left.Equal(ast.N(1)) {
		t.Fatalf("ApplyRule incomplete: %s", out)
	}
	if !r.Head.Args[0].IsVar() {
		t.Fatal("ApplyRule mutated input")
	}
}

func TestApplyIC(t *testing.T) {
	ic := ast.IC{
		Pos: []ast.Atom{atom("a", ast.V("X"))},
		Neg: []ast.Atom{atom("b", ast.V("X"))},
		Cmp: []ast.Cmp{ast.NewCmp(ast.V("X"), ast.NE, ast.N(0))},
	}
	s := Subst{"X": ast.S("c")}
	out := s.ApplyIC(ic)
	if !out.Pos[0].Args[0].Equal(ast.S("c")) || !out.Neg[0].Args[0].Equal(ast.S("c")) || !out.Cmp[0].Left.Equal(ast.S("c")) {
		t.Fatalf("ApplyIC incomplete: %s", out)
	}
}

func TestFreeze(t *testing.T) {
	atoms := []ast.Atom{atom("e", ast.V("X"), ast.V("Y")), atom("f", ast.V("X"), ast.N(3))}
	frozen, m := Freeze(atoms)
	if len(m) != 2 {
		t.Fatalf("froze %d vars, want 2", len(m))
	}
	if frozen[0].Args[0].IsVar() || frozen[1].Args[0].IsVar() {
		t.Fatal("variables survived freezing")
	}
	if !frozen[0].Args[0].Equal(frozen[1].Args[0]) {
		t.Fatal("same variable must freeze to same constant")
	}
	if frozen[0].Args[0].Equal(frozen[0].Args[1]) {
		t.Fatal("distinct variables must freeze to distinct constants")
	}
	if !frozen[1].Args[1].Equal(ast.N(3)) {
		t.Fatal("constants must survive freezing")
	}
	// Original atoms untouched.
	if !atoms[0].Args[0].IsVar() {
		t.Fatal("Freeze mutated input")
	}
}

func TestSubstString(t *testing.T) {
	s := Subst{"X": ast.N(1), "A": ast.V("B")}
	if got := s.String(); got != "{A->B, X->1}" {
		t.Fatalf("String = %q", got)
	}
}
