package eval

// Regression tests for the DB.Clone / lazy-index / interner audit
// behind goal-directed evaluation: a magic-rewritten program evaluates
// against the same EDB as the bottom-up run (often interleaved with
// it, and with clones of it), so evaluation must never mutate the
// input database, clones must not share lazy index state with their
// source, and the compiled engine's term interner must be private to
// each evaluation rather than accumulating across the original and
// rewritten programs.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func tcPointQuery(t *testing.T) (*ast.Program, *DB) {
	t.Helper()
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).`)
	return p, disjointChainsDB(3, 10)
}

// TestMagicSharedDBRepeatable: alternating bottom-up and magic
// evaluations over one shared DB answer identically every time and
// leave the EDB untouched — the magic program's '#'-named predicates
// and fresh interner must not leak anything into the input database.
func TestMagicSharedDBRepeatable(t *testing.T) {
	p, db := tcPointQuery(t)
	edbBefore := db.SortedFacts("edge")
	predsBefore := db.Preds()

	var want []string
	for round := 0; round < 3; round++ {
		for _, mode := range []MagicMode{MagicOff, MagicAuto} {
			for _, compile := range []bool{false, true} {
				opts := DefaultOptions()
				opts.CompilePlans = compile
				opts.Magic = mode
				tuples, _, err := QueryCtx(context.Background(), p, db, opts)
				if err != nil {
					t.Fatalf("round %d mode %s compile %v: %v", round, mode, compile, err)
				}
				got := answerSet(tuples)
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d mode %s compile %v: answers drifted\n got %v\nwant %v",
						round, mode, compile, got, want)
				}
			}
		}
	}
	if got := db.SortedFacts("edge"); !reflect.DeepEqual(got, edbBefore) {
		t.Error("evaluation mutated the shared EDB")
	}
	if got := db.Preds(); !reflect.DeepEqual(got, predsBefore) {
		t.Errorf("evaluation added relations to the shared EDB: %v -> %v", predsBefore, got)
	}
}

// TestCloneIndependentAfterLazyIndexes: force lazy index construction
// on the source via an indexed evaluation, then clone, mutate the
// clone, and check the two databases answer independently — the clone
// must not inherit (or corrupt) the source's indexes, and the source's
// incremental index maintenance must not observe the clone's adds.
func TestCloneIndependentAfterLazyIndexes(t *testing.T) {
	p, db := tcPointQuery(t)
	opts := DefaultOptions()
	baseTuples, _, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := answerSet(baseTuples)

	clone := db.Clone()
	// Extend the first chain in the clone only; node 10 gains an edge.
	clone.AddFact(ast.NewAtom("edge", ast.N(10), ast.N(99)))

	cloneTuples, _, err := QueryCtx(context.Background(), p, clone, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cloneTuples) != len(baseTuples)+1 {
		t.Errorf("clone answers %d tuples, want %d (the added edge extends the reachable set by one)",
			len(cloneTuples), len(baseTuples)+1)
	}

	againTuples, _, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerSet(againTuples); !reflect.DeepEqual(got, base) {
		t.Fatalf("source answers changed after mutating a clone\n got %v\nwant %v", got, base)
	}
	if db.Contains(ast.NewAtom("edge", ast.N(10), ast.N(99))) {
		t.Error("clone mutation leaked into the source database")
	}
}

// TestCloneThenMagicBothDirections: evaluating the magic rewrite on a
// clone while the original DB keeps serving bottom-up queries (and
// vice versa) yields consistent answers — the pattern sqod's rewrite
// cache produces under concurrent point queries, serialized here.
func TestCloneThenMagicBothDirections(t *testing.T) {
	p, db := tcPointQuery(t)
	clone := db.Clone()

	off := DefaultOptions()
	off.Magic = MagicOff
	on := DefaultOptions()
	on.Magic = MagicOn

	wantTuples, _, err := QueryCtx(context.Background(), p, db, off)
	if err != nil {
		t.Fatal(err)
	}
	want := answerSet(wantTuples)
	for i, tc := range []struct {
		db   *DB
		opts Options
	}{
		{clone, on}, {db, on}, {clone, off}, {db, off},
	} {
		tuples, _, err := QueryCtx(context.Background(), p, tc.db, tc.opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := answerSet(tuples); !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: answers diverged\n got %v\nwant %v", i, got, want)
		}
	}
}
