// Package lint is a semantic static analyzer for datalog programs
// with integrity constraints. It layers the decision procedures of the
// paper — conjunctive-query satisfiability (Theorem 5.2), program
// emptiness via initialization rules (Proposition 5.2), and query
// containment (Proposition 5.1) — into a multi-rule linter with
// structured diagnostics:
//
//   - L1 unsat-body: a rule whose body is unsatisfiable w.r.t. the
//     constraints can never fire.
//   - L2 empty-predicate / dead-rule / unreachable-rule: IDB predicates
//     provably empty on every consistent database, rules that depend on
//     them, and rules the query predicate cannot reach.
//   - L3 subsumed-rule: a rule contained in a sibling rule for the same
//     predicate is redundant.
//   - L4 guardrails: constraint features that push the underlying
//     questions into semi-decidable or undecidable territory
//     (Theorems 5.3 and 5.4).
//   - L5 hygiene: arity mismatches, unsafe rules, IDB predicates in
//     constraint bodies, singleton variables, unused EDB predicates.
//   - L6 goal-directed: a query goal that binds arguments (a point
//     query like '?- path(a, Y).') evaluated without the magic-sets
//     rewrite materializes the whole relation; the check cites the
//     goal's adornment.
//   - L7 bounded-recursion: a self-recursive predicate whose recursion
//     is provably bounded is eliminable — its fixpoint equals a flat
//     union of conjunctive queries; the check cites the witness
//     unfolding depth. The verdict is three-valued: bounded (Warning,
//     unless the caller evaluates with elimination enabled),
//     not-bounded-within-budget and unknown (both Info).
//
// Every semantic verdict the linter relies on is three-valued; budget
// exhaustion surfaces as an explicit Info finding, never as a false
// positive.
package lint

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/ast"
	"repro/internal/emptiness"
)

// Severity classifies a finding.
type Severity int

const (
	// Info findings are advisory: notes about undecidable territory or
	// exhausted budgets.
	Info Severity = iota
	// Warning findings identify code that is almost certainly
	// unintended but does not change query answers when kept.
	Warning
	// Error findings identify defects: rules that can never fire,
	// empty queries, or programs the optimizer would reject.
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the lower-case severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Finding is one diagnostic: a check family (L1..L7), a stable rule
// identifier, a severity, a source position, and a message.
type Finding struct {
	Check    string   `json:"check"`
	ID       string   `json:"id"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// Pos returns the finding's source position.
func (f Finding) Pos() ast.Pos { return ast.At(f.Line, f.Col) }

// Report is the result of a lint run.
type Report struct {
	Findings []Finding `json:"findings"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
	Infos    int       `json:"infos"`
	// Timings records wall-clock time per check family (L1..L7); it is
	// excluded from JSON so renderings stay deterministic.
	Timings map[string]time.Duration `json:"-"`
}

// HasErrors reports whether any Error-severity finding was emitted.
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// Options bounds the semantic checks.
type Options struct {
	// Emptiness bounds the satisfiability procedures behind L1 and L2
	// (chase steps, linearization count).
	Emptiness emptiness.Options
	// MaxSubsumptionAtoms bounds the body size of rules considered by
	// the L3 containment check (default 8); containment is NP-complete
	// in the body size.
	MaxSubsumptionAtoms int
	// MaxSubsumptionRules bounds the number of rules per head
	// predicate compared pairwise by L3 (default 16).
	MaxSubsumptionRules int
	// MagicEnabled declares that the caller evaluates goal queries
	// with the magic-sets rewrite enabled (eval Magic mode "auto" or
	// "on"); it suppresses the L6 bound-query advisory. Standalone
	// lint runs leave it false — a source file alone says nothing
	// about how it will be evaluated.
	MagicEnabled bool
	// ElimEnabled declares that the caller evaluates with
	// bounded-recursion elimination enabled (eval Elim mode "auto" or
	// "on"); it suppresses the L7 bounded-recursion advisory the same
	// way MagicEnabled suppresses L6. The negative-verdict Info
	// findings of L7 are emitted regardless.
	ElimEnabled bool
}

func (o *Options) defaults() {
	if o.MaxSubsumptionAtoms == 0 {
		o.MaxSubsumptionAtoms = 8
	}
	if o.MaxSubsumptionRules == 0 {
		o.MaxSubsumptionRules = 16
	}
}

// Run lints the program against its integrity constraints and optional
// EDB facts. The context bounds the semantic checks: cancellation
// degrades verdicts to Unknown (reported as Info), never to a wrong
// answer. Run always returns a report; it has no error mode.
func Run(ctx context.Context, p *ast.Program, ics []ast.IC, facts []ast.Atom, opts Options) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.defaults()
	l := &linter{
		ctx:   ctx,
		p:     p,
		ics:   ics,
		facts: facts,
		opts:  opts,
		idb:   p.IDB(),
		rep:   &Report{Findings: []Finding{}, Timings: map[string]time.Duration{}},
	}
	structuralOK := true
	l.timed("L5", func() { structuralOK = l.hygiene() })
	l.timed("L4", func() { l.guardrails() })
	// Semantic checks assume consistent arities, safe rules, and
	// constraints free of IDB predicates; skip them when the structure
	// is broken rather than report nonsense on top of the real defect.
	if structuralOK {
		l.timed("L1", func() { l.unsatRules() })
		l.timed("L2", func() { l.emptyAndDead() })
		l.timed("L3", func() { l.subsumedRules() })
		l.timed("L6", func() { l.goalDirected() })
		l.timed("L7", func() { l.boundedRecursion() })
	}
	if ctx.Err() != nil {
		l.add(Finding{Check: "lint", ID: "aborted", Severity: Info,
			Message: "lint budget exhausted before all checks completed; remaining verdicts are unknown"})
	}
	sort.SliceStable(l.rep.Findings, func(i, j int) bool {
		a, b := l.rep.Findings[i], l.rep.Findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.ID < b.ID
	})
	for _, f := range l.rep.Findings {
		switch f.Severity {
		case Error:
			l.rep.Errors++
		case Warning:
			l.rep.Warnings++
		default:
			l.rep.Infos++
		}
	}
	return l.rep
}

type linter struct {
	ctx   context.Context
	p     *ast.Program
	ics   []ast.IC
	facts []ast.Atom
	opts  Options
	idb   map[string]bool
	rep   *Report

	// sat holds the L1 verdict per rule index, consumed by L2.
	sat []emptiness.Verdict
	// flagged marks rule indices already reported as deletable
	// (unsat-body, dead-rule, or subsumed-rule), so later checks
	// neither re-flag them nor use them as subsumption witnesses.
	flagged map[int]bool
}

func (l *linter) add(f Finding) { l.rep.Findings = append(l.rep.Findings, f) }

func (l *linter) addAt(check, id string, sev Severity, at ast.Pos, msg string) {
	l.add(Finding{Check: check, ID: id, Severity: sev, Line: at.Line, Col: at.Col, Message: msg})
}

func (l *linter) timed(name string, fn func()) {
	start := time.Now()
	fn()
	l.rep.Timings[name] = time.Since(start)
}
