package adorn

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func mustSpecialize(t *testing.T, src string) *SpecProgram {
	t.Helper()
	sp, err := Specialize(parser.MustParseProgram(src))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestSpecializeIdentityForDistinctVars(t *testing.T) {
	sp := mustSpecialize(t, `
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	if len(sp.Base) != 1 {
		t.Fatalf("expected one specialized predicate, got %v", sp.SortedSpecPreds())
	}
	if sp.Base[sp.Query] != "path" {
		t.Fatalf("Base[%s] = %s", sp.Query, sp.Base[sp.Query])
	}
	if len(sp.Prog.Rules) != 2 {
		t.Fatalf("got %d rules:\n%s", len(sp.Prog.Rules), sp.Prog)
	}
	// Heads use the canonical pattern variables.
	if sp.Prog.Rules[0].Head.Args[0].Name != "V0" {
		t.Fatalf("head not canonicalized: %s", sp.Prog.Rules[0])
	}
}

func TestSpecializeSplitsRepeatedVarPattern(t *testing.T) {
	// q uses p(Z, Z): p must be specialized for the equated pattern.
	sp := mustSpecialize(t, `
		p(X, Y) :- e(X, Y).
		q(Z) :- p(Z, Z).
		?- q.
	`)
	// Specialized predicates: q (all-distinct) and p with pattern (V0, V0).
	if len(sp.Base) != 2 {
		t.Fatalf("expected 2 specialized predicates, got %v", sp.SortedSpecPreds())
	}
	var pSpec string
	for name, base := range sp.Base {
		if base == "p" {
			pSpec = name
		}
	}
	pat := sp.Pattern[pSpec]
	if !pat.Args[0].Equal(pat.Args[1]) {
		t.Fatalf("pattern should equate both args: %s", pat)
	}
	// The specialized p rule must have an equated body: e(V0, V0).
	for _, r := range sp.Prog.Rules {
		if r.Head.Pred == pSpec {
			if !r.Pos[0].Args[0].Equal(r.Pos[0].Args[1]) {
				t.Fatalf("body not equated: %s", r)
			}
		}
	}
}

func TestSpecializeConstantPattern(t *testing.T) {
	// q uses p(Z, 5): pattern embeds the constant.
	sp := mustSpecialize(t, `
		p(X, Y) :- e(X, Y).
		q(Z) :- p(Z, 5).
		?- q.
	`)
	var pSpec string
	for name, base := range sp.Base {
		if base == "p" {
			pSpec = name
		}
	}
	if pSpec == "" {
		t.Fatalf("p not specialized: %v", sp.SortedSpecPreds())
	}
	if !sp.Pattern[pSpec].Args[1].Equal(ast.N(5)) {
		t.Fatalf("pattern lacks the constant: %s", sp.Pattern[pSpec])
	}
	// The specialized rule's body must bind the constant: e(V0, 5).
	for _, r := range sp.Prog.Rules {
		if r.Head.Pred == pSpec && !r.Pos[0].Args[1].Equal(ast.N(5)) {
			t.Fatalf("constant not propagated: %s", r)
		}
	}
}

func TestSpecializeDropsNonUnifiableRules(t *testing.T) {
	// The rule head p(X, X) cannot produce the pattern p(V0, 5) unless
	// unified; p(1, 2) can never produce p(V0, V0)... here: head with
	// distinct constants vs equated pattern.
	sp := mustSpecialize(t, `
		p(X, Y) :- e(X, Y).
		p(1, 2) :- f(1).
		q(Z) :- p(Z, Z).
		?- q.
	`)
	// p(1,2) cannot unify with pattern p(V0,V0): only one specialized
	// p rule must remain.
	var pRules int
	for _, r := range sp.Prog.Rules {
		if sp.Base[r.Head.Pred] == "p" {
			pRules++
		}
	}
	if pRules != 1 {
		t.Fatalf("got %d specialized p rules, want 1:\n%s", pRules, sp.Prog)
	}
}

func TestSpecializeRequiresQuery(t *testing.T) {
	p := parser.MustParseProgram(`p(X) :- e(X).`)
	if _, err := Specialize(p); err == nil {
		t.Fatal("expected missing-query error")
	}
}

func TestBottomUpFigure1AdornmentsExact(t *testing.T) {
	sp := mustSpecialize(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- b(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Z), p(Z, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := BottomUp(sp, ics)
	if err != nil {
		t.Fatal(err)
	}
	ads := res.Adorn[sp.Query]
	if len(ads) != 3 {
		t.Fatalf("got %d adornments, want 3 (p1, p2, p3)", len(ads))
	}
	// P1 must have exactly 6 adorned rules (s1..s6): the combinations
	// r3×p2, r3×p3 are inconsistent and r1, r2, r3×p1, r4×p1, r4×p2,
	// r4×p3 survive.
	if len(res.Rules) != 6 {
		for _, ar := range res.Rules {
			t.Logf("rule %s head=%d children=%v", ar.Rule, ar.HeadAdornID, ar.ChildAdornIDs)
		}
		t.Fatalf("got %d adorned rules, want 6", len(res.Rules))
	}
}

func TestBottomUpTripletProvenance(t *testing.T) {
	sp := mustSpecialize(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := BottomUp(sp, ics)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-trivial rule triplet with a head projection must point
	// at a valid triplet of the head adornment.
	for _, ar := range res.Rules {
		headAd := res.Adorn[ar.HeadPred][ar.HeadAdornID]
		for _, rt := range ar.Triplets {
			if rt.HeadTriplet >= 0 {
				if rt.HeadTriplet >= len(headAd.Triplets) {
					t.Fatalf("dangling head-triplet index %d in rule %s", rt.HeadTriplet, ar.Rule)
				}
				ht := headAd.Triplets[rt.HeadTriplet]
				if ht.IC != rt.IC {
					t.Fatalf("head triplet constraint mismatch: %d vs %d", ht.IC, rt.IC)
				}
				if len(ht.Unmapped) != len(rt.Unmapped) {
					t.Fatalf("head triplet unmapped mismatch")
				}
			}
			if len(rt.ChildChoice) != len(ar.Rule.Pos) {
				t.Fatalf("child choice arity mismatch")
			}
		}
	}
}

func TestBottomUpTrivialTripletEverywhere(t *testing.T) {
	sp := mustSpecialize(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := BottomUp(sp, ics)
	if err != nil {
		t.Fatal(err)
	}
	for pred, ads := range res.Adorn {
		for ai, ad := range ads {
			found := false
			for _, tr := range ad.Triplets {
				if tr.IC == 0 && len(tr.Unmapped) == 2 && len(tr.Sigma) == 0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("adornment %d of %s lacks the trivial triplet: %s", ai, pred, ad)
			}
		}
	}
}

func TestBottomUpNoICsSingleAdornment(t *testing.T) {
	sp := mustSpecialize(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`)
	res, err := BottomUp(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Adorn[sp.Query]) != 1 {
		t.Fatalf("without constraints there must be a single (empty) adornment, got %d", len(res.Adorn[sp.Query]))
	}
	if len(res.Rules) != 2 {
		t.Fatalf("got %d adorned rules, want 2", len(res.Rules))
	}
}

func TestBottomUpWarningsForUnsupported(t *testing.T) {
	sp := mustSpecialize(t, `
		p(X) :- e(X, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), !f(Y, Z).`)
	res, err := BottomUp(sp, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "not local") {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

func TestTripletKeyCanonical(t *testing.T) {
	a := Triplet{IC: 0, Unmapped: []int{0, 1}, Sigma: map[string]Image{
		"X": {Positions: []int{0}},
		"Y": {Positions: []int{1, 2}},
	}}
	b := Triplet{IC: 0, Unmapped: []int{0, 1}, Sigma: map[string]Image{
		"Y": {Positions: []int{1, 2}},
		"X": {Positions: []int{0}},
	}}
	if a.Key() != b.Key() {
		t.Fatal("sigma insertion order must not affect the key")
	}
	c := Triplet{IC: 1, Unmapped: []int{0, 1}, Sigma: a.Sigma}
	if a.Key() == c.Key() {
		t.Fatal("different constraints must differ")
	}
	n5 := ast.N(5)
	d := Triplet{IC: 0, Unmapped: []int{0, 1}, Sigma: map[string]Image{"X": {Const: &n5}}}
	e := Triplet{IC: 0, Unmapped: []int{0, 1}, Sigma: map[string]Image{"X": {Positions: []int{5}}}}
	if d.Key() == e.Key() {
		t.Fatal("constant images must differ from positional ones")
	}
}

func TestAdornmentDedup(t *testing.T) {
	tr := Triplet{IC: 0, Unmapped: []int{0}, Sigma: map[string]Image{}}
	ad := NewAdornment([]Triplet{tr, tr, tr})
	if len(ad.Triplets) != 1 {
		t.Fatalf("got %d triplets, want 1", len(ad.Triplets))
	}
	if ad.TripletIndex(tr.Key()) != 0 {
		t.Fatal("TripletIndex wrong")
	}
	if ad.TripletIndex("nope") != -1 {
		t.Fatal("missing key must return -1")
	}
}

func TestImageTermAt(t *testing.T) {
	atom := ast.NewAtom("p", ast.V("X"), ast.V("Y"), ast.V("X"))
	im := Image{Positions: []int{0, 2}}
	tm, ok := im.termAt(atom)
	if !ok || !tm.Equal(ast.V("X")) {
		t.Fatalf("termAt = %v, %v", tm, ok)
	}
	// Multi-position image over differing terms must fail.
	im2 := Image{Positions: []int{0, 1}}
	if _, ok := im2.termAt(atom); ok {
		t.Fatal("expected failure: positions hold different variables")
	}
	n7 := ast.N(7)
	im3 := Image{Const: &n7}
	tm3, ok := im3.termAt(atom)
	if !ok || !tm3.Equal(ast.N(7)) {
		t.Fatal("constant image must resolve to the constant")
	}
}

func TestImageOf(t *testing.T) {
	head := ast.NewAtom("p", ast.V("X"), ast.V("Y"), ast.V("X"))
	im, ok := imageOf(ast.V("X"), head)
	if !ok || len(im.Positions) != 2 {
		t.Fatalf("imageOf(X) = %+v, %v", im, ok)
	}
	if _, ok := imageOf(ast.V("Z"), head); ok {
		t.Fatal("absent variable must fail")
	}
	im2, ok := imageOf(ast.N(3), head)
	if !ok || im2.Const == nil {
		t.Fatal("constants always have images")
	}
}
