package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// --- differential harness -------------------------------------------------

// engineRun captures everything observable from one evaluation:
// relations (as sorted fact strings per predicate), Stats, and the
// rendered derivation tree of every query answer.
type engineRun struct {
	preds map[string][]string
	stats Stats
	prov  string
}

func runEngine(t *testing.T, p *ast.Program, db *DB, opts Options) engineRun {
	t.Helper()
	idb, prov, stats, err := evalProvOpts(context.Background(), p, db, opts)
	if err != nil {
		t.Fatalf("opts %+v: %v", opts, err)
	}
	out := engineRun{preds: map[string][]string{}, stats: *stats}
	idbPreds := p.IDB()
	for _, pred := range idb.Preds() {
		out.preds[pred] = idb.SortedFacts(pred)
		for _, f := range idb.Facts(pred) {
			d, err := prov.Tree(f, idbPreds, db)
			if err != nil {
				t.Fatalf("opts %+v: no derivation for %s: %v", opts, f, err)
			}
			out.prov += d.String()
		}
	}
	return out
}

// requireCompiledIdentical runs the legacy and compiled engines over
// every (Workers, Seminaive, UseIndex) combination and asserts the
// answers, Stats, and provenance are bit-identical pairwise.
func requireCompiledIdentical(t *testing.T, label string, p *ast.Program, db *DB) {
	t.Helper()
	for _, seminaive := range []bool{true, false} {
		for _, useIndex := range []bool{true, false} {
			for _, workers := range []int{1, 4} {
				base := Options{Seminaive: seminaive, UseIndex: useIndex, Workers: workers}
				legacy := base
				compiled := base
				compiled.CompilePlans = true
				lr := runEngine(t, p, db, legacy)
				cr := runEngine(t, p, db, compiled)
				ctx := fmt.Sprintf("%s (seminaive=%v index=%v workers=%d)", label, seminaive, useIndex, workers)
				if !lr.stats.Equal(&cr.stats) {
					t.Fatalf("%s: stats differ:\nlegacy   %+v\ncompiled %+v", ctx, lr.stats, cr.stats)
				}
				if !reflect.DeepEqual(lr.preds, cr.preds) {
					t.Fatalf("%s: relations differ:\nlegacy   %v\ncompiled %v", ctx, lr.preds, cr.preds)
				}
				if lr.prov != cr.prov {
					t.Fatalf("%s: provenance differs:\nlegacy:\n%s\ncompiled:\n%s", ctx, lr.prov, cr.prov)
				}
			}
		}
	}
}

// plansAllStatic reports whether every plan of p keeps the legacy
// static join order (greedy coincides with it). When true the
// engines must agree bit-identically on Stats; when false only the
// answers are comparable across engines.
func plansAllStatic(p *ast.Program) bool {
	idb := p.IDB()
	in := newInterner()
	for i, r := range p.Rules {
		if !compilePlan(in, idb, r, i, -1).staticOrder {
			return false
		}
		for occ, a := range r.Pos {
			if idb[a.Pred] && !compilePlan(in, idb, r, i, occ).staticOrder {
				return false
			}
		}
	}
	return true
}

// --- named workloads ------------------------------------------------------

func TestCompiledDifferentialTransClosure(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	if !plansAllStatic(p) {
		t.Fatal("greedy order diverges from static on transitive closure")
	}
	requireCompiledIdentical(t, "trans closure", p, chainEDB(40))
}

func TestCompiledDifferentialGoodPath(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	db := chainEDB(30)
	db.AddFact(ast.NewAtom("startPoint", ast.N(3)))
	db.AddFact(ast.NewAtom("endPoint", ast.N(20)))
	if !plansAllStatic(p) {
		t.Fatal("greedy order diverges from static on goodPath")
	}
	requireCompiledIdentical(t, "goodPath", p, db)
}

func TestCompiledDifferentialMultiRule(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X, Y) :- edge(X, Y), !blocked(X).
		reach(X, Y) :- edge(X, Z), reach(Z, Y), !blocked(X).
		back(X, Y) :- edge(Y, X).
		back(X, Y) :- back(X, Z), back(Z, Y).
		meet(X, Y) :- reach(X, Y), back(X, Y).
		joined(X, Z) :- reach(X, Y), reach(Y, Z).
		far(X, Y) :- reach(X, Y), X < Y.
		sym(X, Y) :- reach(X, Y), reach(Y, X), X != Y.
		?- meet.
	`)
	db := NewDB()
	for i := 0; i < 10; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i+1)%10))))
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i*3)%10))))
	}
	db.AddFact(ast.NewAtom("blocked", ast.N(3)))
	if !plansAllStatic(p) {
		t.Fatal("greedy order diverges from static on multi-rule")
	}
	requireCompiledIdentical(t, "multi-rule", p, db)
}

func TestCompiledDifferentialEdgeCases(t *testing.T) {
	// Zero-ary predicates, constants in heads and bodies, repeated
	// variables, negation on an absent relation — every structural edge
	// the legacy engine handles.
	p := parser.MustParseProgram(`
		halt :- reach(X), final(X).
		reach(X) :- start(X).
		reach(Y) :- reach(X), step(X, Y).
		loop(X) :- selfstep(X, X).
		tagged(X, 99) :- reach(X), !missing(X).
		?- halt.
	`)
	db := chainEDB(6)
	db.AddFact(ast.NewAtom("start", ast.N(1)))
	db.AddFact(ast.NewAtom("final", ast.N(5)))
	db.AddFact(ast.NewAtom("selfstep", ast.N(2), ast.N(2)))
	db.AddFact(ast.NewAtom("selfstep", ast.N(2), ast.N(3)))
	requireCompiledIdentical(t, "edge cases", p, db)
}

func TestCompiledZeroSubgoalRules(t *testing.T) {
	// Rules with no positive subgoals exercise the finish-step filter
	// path: their comparisons can never become ground mid-join.
	p := &ast.Program{
		Rules: []ast.Rule{
			{Head: ast.NewAtom("flag", ast.N(1))},
			{Head: ast.NewAtom("flag", ast.N(2)), Cmp: []ast.Cmp{ast.NewCmp(ast.N(2), ast.LT, ast.N(3))}},
			{Head: ast.NewAtom("flag", ast.N(3)), Cmp: []ast.Cmp{ast.NewCmp(ast.N(3), ast.LT, ast.N(2))}},
		},
		Query: "flag",
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	requireCompiledIdentical(t, "zero-subgoal", p, NewDB())
	idb, _, err := Eval(p, NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if got := idb.SortedFacts("flag"); !reflect.DeepEqual(got, []string{"flag(1)", "flag(2)"}) {
		t.Fatalf("flag = %v", got)
	}
}

// TestCompiledGreedyReorder pins a workload where the greedy planner
// genuinely reorders (a constant-bearing subgoal moves first): the
// compiled engine must still produce the same answers as legacy, and
// its Stats must stay worker-invariant.
func TestCompiledGreedyReorder(t *testing.T) {
	p := parser.MustParseProgram(`
		out(X, Y) :- e(X, Y), f(Y, 3).
		?- out.
	`)
	if plansAllStatic(p) {
		t.Fatal("expected greedy order to diverge (f has a constant)")
	}
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	for i := 0; i < 60; i++ {
		db.AddFact(ast.NewAtom("e", ast.N(float64(rng.Intn(10))), ast.N(float64(rng.Intn(10)))))
		db.AddFact(ast.NewAtom("f", ast.N(float64(rng.Intn(10))), ast.N(float64(rng.Intn(5)))))
	}
	legacyIDB, _, err := EvalWith(p, db, Options{Seminaive: true, UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats []*Stats
	for _, w := range []int{1, 4} {
		idb, st, err := EvalWith(p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(idb.SortedFacts("out"), legacyIDB.SortedFacts("out")) {
			t.Fatalf("workers=%d: answers differ from legacy", w)
		}
		stats = append(stats, st)
	}
	if !stats[0].Equal(stats[1]) {
		t.Fatalf("compiled stats vary with workers: %+v vs %+v", *stats[0], *stats[1])
	}
}

// --- randomized programs --------------------------------------------------

// TestCompiledDifferentialRandomPrograms generates random programs
// (random rule subsets, constants, comparisons, negation) over random
// databases. Answers must always match the legacy engine; whenever the
// greedy order coincides with the static order, Stats and provenance
// must be bit-identical too.
func TestCompiledDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	extras := []string{
		"q(X, Y) :- p(X, Y), f(Y, %c).\n",
		"q(X, Y) :- f(X, %c), p(X, Y).\n",
		"r(X) :- p(X, X).\n",
		"s(X, Y) :- p(X, Y), X < Y, !g(X).\n",
		"u(X) :- e(X, Y), f(Y, %c), Y > %c.\n",
		"v(X, Z) :- p(X, Y), p(Y, Z), X != Z.\n",
	}
	for trial := 0; trial < 12; trial++ {
		src := "p(X, Y) :- e(X, Y).\np(X, Z) :- e(X, Y), p(Y, Z).\n"
		for _, ex := range extras {
			if rng.Intn(2) == 0 {
				continue
			}
			for {
				i := indexByte(ex, '%')
				if i < 0 {
					break
				}
				ex = ex[:i] + fmt.Sprintf("%d", rng.Intn(5)) + ex[i+2:]
			}
			src += ex
		}
		src += "?- p.\n"
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDB()
		n := 4 + rng.Intn(5)
		for i := 0; i < n*3; i++ {
			db.AddFact(ast.NewAtom("e", ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(n)))))
			db.AddFact(ast.NewAtom("f", ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(5)))))
		}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				db.AddFact(ast.NewAtom("g", ast.N(float64(i))))
			}
		}
		if plansAllStatic(p) {
			requireCompiledIdentical(t, fmt.Sprintf("random trial %d", trial), p, db)
			continue
		}
		// Reordered plans: require identical answers and per-engine
		// worker-invariant stats.
		legacy := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true})
		var prev *engineRun
		for _, w := range []int{1, 4} {
			cr := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: w})
			if !reflect.DeepEqual(cr.preds, legacy.preds) {
				t.Fatalf("trial %d workers=%d: answers differ from legacy\n%s", trial, w, src)
			}
			if prev != nil && (!cr.stats.Equal(&prev.stats) || cr.prov != prev.prov) {
				t.Fatalf("trial %d: compiled run varies with workers\n%s", trial, src)
			}
			c := cr
			prev = &c
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// --- budget and cancellation parity --------------------------------------

func TestCompiledBudgetParity(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(100)
	for _, w := range []int{1, 4} {
		legacy := Options{Seminaive: true, UseIndex: true, MaxTuples: 50, Workers: w}
		compiled := legacy
		compiled.CompilePlans = true
		_, _, lerr := EvalWith(p, db, legacy)
		_, _, cerr := EvalWith(p, db, compiled)
		if !errors.Is(lerr, ErrBudget) || !errors.Is(cerr, ErrBudget) {
			t.Fatalf("workers=%d: expected budget errors, got %v / %v", w, lerr, cerr)
		}
		if lerr.Error() != cerr.Error() {
			t.Fatalf("workers=%d: error text differs: %q vs %q", w, lerr, cerr)
		}
	}
}

func TestCompiledCancellation(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EvalCtx(ctx, p, db, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// --- unit tests for the interned layer ------------------------------------

func TestInternerRoundTrip(t *testing.T) {
	in := newInterner()
	terms := []ast.Term{ast.N(1), ast.S("x"), ast.S("1"), ast.N(1.5), ast.N(1)}
	ids := make([]uint32, len(terms))
	for i, tm := range terms {
		ids[i] = in.intern(tm)
	}
	if ids[0] != ids[4] {
		t.Fatal("equal terms must share an id")
	}
	if ids[0] == ids[2] {
		t.Fatal("number 1 and string 1 must differ")
	}
	for i, tm := range terms {
		if !in.term(ids[i]).Equal(tm) {
			t.Fatalf("roundtrip failed for %v", tm)
		}
		if in.termKey(ids[i]) != tm.Key() {
			t.Fatalf("termKey mismatch for %v", tm)
		}
	}
}

func TestIrelAddContains(t *testing.T) {
	r := newIrel(2, 0)
	if !r.add([]uint32{1, 2}) || r.add([]uint32{1, 2}) {
		t.Fatal("dedup broken")
	}
	for i := uint32(0); i < 2000; i++ {
		r.add([]uint32{i % 50, i})
	}
	if !r.contains([]uint32{1, 2}) || r.contains([]uint32{2, 1}) {
		t.Fatal("contains broken")
	}
	if r.n != 2001 {
		t.Fatalf("n = %d", r.n)
	}
}

func TestIrelZeroArity(t *testing.T) {
	r := newIrel(0, 0)
	if r.contains(nil) {
		t.Fatal("empty zero-ary relation must not contain the empty row")
	}
	if !r.add(nil) || r.add(nil) {
		t.Fatal("zero-ary add/dedup broken")
	}
	if !r.contains(nil) || r.n != 1 {
		t.Fatal("zero-ary contains broken")
	}
}

func TestRowIndexChainsAscending(t *testing.T) {
	r := newIrel(2, 0)
	for i := uint32(0); i < 500; i++ {
		r.add([]uint32{i % 7, i})
	}
	ix := r.index(1<<0, []int{0})
	for key := uint32(0); key < 7; key++ {
		var got []int32
		for ri := ix.lookup(r, []uint32{key}); ri >= 0; ri = ix.next[ri] {
			got = append(got, ri)
		}
		var want []int32
		for i := 0; i < r.n; i++ {
			if r.row(i)[0] == key {
				want = append(want, int32(i))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d: chain %v, want ascending %v", key, got, want)
		}
	}
	if ix.lookup(r, []uint32{9}) != -1 {
		t.Fatal("missing key must return -1")
	}
	// Incremental append after the index exists.
	r.add([]uint32{3, 9999})
	last := int32(-1)
	for ri := ix.lookup(r, []uint32{3}); ri >= 0; ri = ix.next[ri] {
		last = ri
	}
	if last != int32(r.n-1) {
		t.Fatalf("appended row not at chain tail: %d", last)
	}
}

func TestGreedyJoinOrder(t *testing.T) {
	r := parser.MustParseProgram(`
		out(X, Y) :- e(X, Y), f(Y, 3).
		?- out.
	`).Rules[0]
	if got := greedyJoinOrder(r, -1); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("constants must pull f first: %v", got)
	}
	// Delta occurrence stays first even when another subgoal scores
	// higher.
	if got := greedyJoinOrder(r, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("delta occurrence must stay first: %v", got)
	}
	r2 := parser.MustParseProgram(`
		tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).
		?- tri.
	`).Rules[0]
	// No constants anywhere: ties break to the lowest index, i.e. the
	// legacy static order.
	if got := greedyJoinOrder(r2, -1); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("tie-break must keep static order: %v", got)
	}
	if got := greedyJoinOrder(r2, 2); !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Fatalf("delta-first then bound-greedy: %v", got)
	}
}

func TestDBCloneDirectCopy(t *testing.T) {
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(2)))
	db.AddFact(ast.NewAtom("e", ast.N(2), ast.N(3)))
	clone := db.Clone()
	if clone.Count("e") != 2 || !clone.Contains(ast.NewAtom("e", ast.N(1), ast.N(2))) {
		t.Fatal("clone lost tuples")
	}
	// Adding to the clone must not affect the original (seen maps are
	// independent).
	clone.AddFact(ast.NewAtom("e", ast.N(9), ast.N(9)))
	if db.Count("e") != 2 {
		t.Fatal("clone shares state with original")
	}
	if !clone.Contains(ast.NewAtom("e", ast.N(9), ast.N(9))) {
		t.Fatal("clone add failed")
	}
}
