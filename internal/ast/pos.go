package ast

import "strconv"

// Pos is a source position: the 1-based line and column of the token
// that opened the node. The zero value means "unknown" and marks nodes
// synthesized by rewrites rather than parsed from source. Positions are
// carried by Atom, Rule, and IC; order atoms and terms share the
// position of their enclosing node.
//
// Positions are metadata: they take no part in structural equality,
// canonical keys, or isomorphism, and every structural operation
// (Clone, renaming, substitution) preserves them, so diagnostics keep
// pointing at source even after the canonicalization passes run.
type Pos struct {
	Line int
	Col  int
}

// At builds a position; zero arguments of either kind yield positions
// that are still IsValid as long as Line is positive.
func At(line, col int) Pos { return Pos{Line: line, Col: col} }

// IsValid reports whether the position was recorded from source.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" when the position is unknown.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}
