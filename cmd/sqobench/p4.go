package main

// P4: incremental view maintenance (internal/incr) versus full
// recomputation. For each workload a view is materialized once; each
// delta row then times View.Apply for the delta (best of 3, restoring
// the base state with the inverse delta between repetitions) against
// a from-scratch evaluation of the mutated database. Workers fixed at
// 1: maintenance is single-writer, so the comparison is engine vs
// engine, not engine vs parallelism. "agree" verifies the view's
// answers match the from-scratch answers bit-for-bit after the delta.
// With -out the rows are written as JSON (committed as BENCH_4.json).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	sqo "repro"
	"repro/internal/ast"
	"repro/internal/workload"
)

type p4Row struct {
	Workload string `json:"workload"`
	Delta    string `json:"delta"`
	IncrNs   int64  `json:"incr_ns"`
	FullNs   int64  `json:"full_ns"`
	Changed  int    `json:"changed"` // answers added + removed by the delta
	Answers  int    `json:"answers"` // answers after the delta
	Agree    bool   `json:"agree"`
}

type p4Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p4Row `json:"results"`
}

type p4Delta struct {
	name string
	adds []sqo.Atom
	dels []sqo.Atom
}

// p4ViewAnswers renders the view's sorted answers for agreement checks.
func p4ViewAnswers(v *sqo.View) []string {
	tuples, err := v.Answers()
	if err != nil {
		log.Fatal(err)
	}
	out := make([]string, len(tuples))
	for i, t := range tuples {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func p4QueryAnswers(p *sqo.Program, db *sqo.DB, opts sqo.EvalOptions) []string {
	tuples, _, err := sqo.QueryWith(p, db, opts)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]string, len(tuples))
	for i, t := range tuples {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

// p4Mutate applies a delta to a fact list (retractions first, then
// insertions — the same delete-then-insert semantics as View.Apply).
func p4Mutate(base []sqo.Atom, d p4Delta) []sqo.Atom {
	drop := map[string]bool{}
	for _, a := range d.dels {
		drop[a.String()] = true
	}
	out := make([]sqo.Atom, 0, len(base)+len(d.adds))
	for _, a := range base {
		if !drop[a.String()] {
			out = append(out, a)
		}
	}
	return append(out, d.adds...)
}

func runP4() {
	type p4case struct {
		name   string
		prog   *sqo.Program
		facts  []sqo.Atom
		deltas []p4Delta
	}
	num := func(i int) sqo.Term { return ast.N(float64(i)) }
	step := func(x, y int) sqo.Atom { return ast.NewAtom("step", num(x), num(y)) }

	tc := sqo.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	chainN := 250
	randNodes, randEdges := 150, 450
	if *quick {
		chainN = 120
		randNodes, randEdges = 80, 240
	}

	// 1% of the chain as shortcut edges (already implied by the
	// closure: a small delta whose maintenance discovers no new
	// answers — the best case for incremental).
	var shortcuts []sqo.Atom
	for i := 1; i <= chainN/100+1; i++ {
		at := i * chainN / (chainN/100 + 2)
		shortcuts = append(shortcuts, step(at, at+2))
	}

	genSrc, _, _ := workload.RandomProgram(1)
	gen, err := sqo.ParseProgram(genSrc)
	if err != nil {
		log.Fatal(err)
	}
	genFacts := workload.MonotoneRandomGraph(randNodes, randEdges, 99)
	for i := 0; i < randNodes; i += 3 {
		genFacts = append(genFacts, ast.NewAtom("mark", num(i)))
	}
	var genBatch []sqo.Atom
	genBatch = append(genBatch, workload.MonotoneRandomGraph(randNodes, randEdges/100+1, 7)...)

	cases := []p4case{
		{
			name:  fmt.Sprintf("transclosure chain(%d)", chainN),
			prog:  tc,
			facts: workload.Chain(1, chainN),
			deltas: []p4Delta{
				{name: "add 1 (extend head)", adds: []sqo.Atom{step(0, 1)}},
				{name: "retract 1 (split mid)", dels: []sqo.Atom{step(chainN/2, chainN/2+1)}},
				{name: "add 1% (shortcuts)", adds: shortcuts},
			},
		},
		{
			name:  fmt.Sprintf("random(seed 1) n=%d m=%d", randNodes, randEdges),
			prog:  gen,
			facts: genFacts,
			deltas: []p4Delta{
				{name: "add 1 edge", adds: []sqo.Atom{step(0, randNodes-1)}},
				{name: "retract 1 edge", dels: []sqo.Atom{genFacts[0]}},
				{name: "add 1% edges", adds: genBatch},
			},
		},
	}

	evalOpts := sqo.DefaultEvalOptions()
	evalOpts.Workers = 1

	report := p4Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}
	header("workload", "delta", "incremental", "recompute", "speedup", "changed", "agree")
	for _, c := range cases {
		view, err := sqo.Materialize(c.prog, sqo.NewDBFrom(c.facts), sqo.ViewOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range c.deltas {
			// Forward apply, inverse apply to restore, best of 3.
			var incrNs int64
			var changed, answersAfter int
			agree := true
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				ch, err := view.Apply(d.adds, d.dels)
				elapsed := time.Since(start).Nanoseconds()
				if err != nil {
					log.Fatal(err)
				}
				if rep == 0 || elapsed < incrNs {
					incrNs = elapsed
				}
				changed = len(ch.Added) + len(ch.Removed)
				if rep == 0 {
					got := p4ViewAnswers(view)
					want := p4QueryAnswers(c.prog, sqo.NewDBFrom(p4Mutate(c.facts, d)), evalOpts)
					answersAfter = len(want)
					agree = len(got) == len(want)
					for i := 0; agree && i < len(got); i++ {
						agree = got[i] == want[i]
					}
				}
				if _, err := view.Apply(d.dels, d.adds); err != nil {
					log.Fatal(err)
				}
			}

			mutatedDB := sqo.NewDBFrom(p4Mutate(c.facts, d))
			var fullNs int64
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, _, err := sqo.EvalWith(c.prog, mutatedDB, evalOpts); err != nil {
					log.Fatal(err)
				}
				if elapsed := time.Since(start).Nanoseconds(); rep == 0 || elapsed < fullNs {
					fullNs = elapsed
				}
			}

			fmt.Printf("%-28s | %-22s | %11v | %11v | %7s | %7d | %v\n",
				c.name, d.name,
				time.Duration(incrNs).Round(time.Microsecond),
				time.Duration(fullNs).Round(time.Microsecond),
				fmt.Sprintf("%.1fx", float64(fullNs)/float64(incrNs)),
				changed, agree)
			report.Rows = append(report.Rows, p4Row{
				Workload: c.name,
				Delta:    d.name,
				IncrNs:   incrNs,
				FullNs:   fullNs,
				Changed:  changed,
				Answers:  answersAfter,
				Agree:    agree,
			})
		}
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
