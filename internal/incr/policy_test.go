package incr

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

// These tests cover the two incr-side obligations of the ordering-policy
// work: (1) the per-column distinct sketches that feed the cost model
// must stay correct across retractions, which in this layer means the
// rebuilt relations after a deleting Apply must carry the same
// statistics as a from-scratch materialization of the same EDB; and
// (2) view maintenance must produce identical answers, derivation
// counts, Changes, and provenance under every join-order policy —
// policies may only change the order work happens in, never what is
// derived or how often.

// sketchSnapshot renders every relation's row count and per-column
// distinct estimates into a comparable map.
func sketchSnapshot(v *View) map[string]string {
	out := map[string]string{}
	for pred, rel := range v.rels {
		s := fmt.Sprintf("n=%d", rel.Len())
		for j := 0; j < rel.Arity(); j++ {
			s += fmt.Sprintf(" d%d=%d", j, rel.DistinctEstimate(j))
		}
		out[pred] = s
	}
	return out
}

// TestIncrSketchMaintainedAcrossRetractions drives a view through
// add/delete batches (deletions force the counting layer to rebuild
// relations, which is where stale sketches would survive if statistics
// were not insert-complete) and checks that every relation's sketch
// matches a fresh Materialize over the same final EDB. Both views hold
// the same row sets, so exact counts and spill-mode estimates alike
// must agree bit-for-bit.
func TestIncrSketchMaintainedAcrossRetractions(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		tagged(X) :- path(X, Y), tag(Y).
		?- tagged.`)
	fs := factSet{}
	var seed []ast.Atom
	for i := 0; i < 12; i++ {
		seed = append(seed, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	seed = append(seed, ast.NewAtom("tag", ast.N(5)), ast.NewAtom("tag", ast.N(9)))
	fs.apply(seed, nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 6; step++ {
		var adds, dels []ast.Atom
		for n := 3; n > 0; n-- {
			i := rng.Intn(14)
			adds = append(adds, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(rng.Intn(14)))))
		}
		for n := 2; n > 0; n-- {
			i := rng.Intn(13)
			dels = append(dels, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
		}
		if _, err := v.Apply(adds, dels); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		fs.apply(adds, dels)

		fresh, err := Materialize(p, fs.db(), Options{})
		if err != nil {
			t.Fatalf("step %d: fresh Materialize: %v", step, err)
		}
		got, want := sketchSnapshot(v), sketchSnapshot(fresh)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: sketches diverged from fresh materialization:\nview  %v\nfresh %v", step, got, want)
		}
	}
}

// TestIncrSketchSpillAcrossRetraction repeats the check past the
// exact→spill threshold. Spilled estimates hash interned term IDs, and
// a maintained view interns terms in a different order than a fresh
// build (it saw the since-retracted rows too), so estimates are not
// bit-identical across views — only columns still in exact mode are.
// What must hold after retraction: exact-mode columns match a fresh
// build, and the spilled column estimates the surviving distinct count
// within linear counting's error bound, not the pre-retraction count.
func TestIncrSketchSpillAcrossRetraction(t *testing.T) {
	p := parser.MustParseProgram(`
		hit(X) :- wide(X, Y), probe(Y).
		?- hit.`)
	fs := factSet{}
	var seed []ast.Atom
	for i := 0; i < 600; i++ {
		seed = append(seed, ast.NewAtom("wide", ast.N(float64(i%7)), ast.N(float64(i))))
	}
	seed = append(seed, ast.NewAtom("probe", ast.N(3)))
	fs.apply(seed, nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dels []ast.Atom
	for i := 100; i < 400; i++ {
		dels = append(dels, ast.NewAtom("wide", ast.N(float64(i%7)), ast.N(float64(i))))
	}
	if _, err := v.Apply(nil, dels); err != nil {
		t.Fatal(err)
	}
	fs.apply(nil, dels)
	fresh, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wide, fwide := v.rels["wide"], fresh.rels["wide"]
	if wide.Len() != 300 || fwide.Len() != 300 {
		t.Fatalf("wide has %d rows (fresh %d), want 300", wide.Len(), fwide.Len())
	}
	if got, want := wide.DistinctEstimate(0), fwide.DistinctEstimate(0); got != want {
		t.Fatalf("exact-mode column 0 diverged: view %d, fresh %d", got, want)
	}
	if d := wide.DistinctEstimate(1); d < 225 || d > 375 {
		t.Fatalf("wide column 1 distinct = %d, want within 25%% of 300 (pre-retraction count was 600)", d)
	}
}

// incrPolicies are the option sets the Apply differential runs under.
// The empty string exercises the zero-value (greedy) default path.
var incrPolicies = []eval.JoinOrderPolicy{"", eval.PolicyCost, eval.PolicyAdaptive}

// TestIncrPolicyDifferentialApply maintains one view per policy through
// an identical randomized add/retract sequence over each program shape
// and asserts that answers, Changes, derivation counts, and provenance
// explanations never diverge across policies. The greedy view is also
// checked against from-scratch evaluation, anchoring the whole set to
// ground truth.
func TestIncrPolicyDifferentialApply(t *testing.T) {
	for _, pc := range incrPrograms {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			p := parser.MustParseProgram(pc.src)
			universe := pc.universe()
			rng := rand.New(rand.NewSource(41))
			fs := factSet{}
			var seed []ast.Atom
			for _, a := range universe {
				if rng.Intn(3) == 0 {
					seed = append(seed, a)
				}
			}
			fs.apply(seed, nil)

			views := make([]*View, len(incrPolicies))
			for i, pol := range incrPolicies {
				v, err := Materialize(p, fs.db(), Options{Policy: pol})
				if err != nil {
					t.Fatalf("Materialize(policy=%q): %v", pol, err)
				}
				views[i] = v
			}
			requireConsistent(t, "init", views[0], p, fs)

			for step := 0; step < 6; step++ {
				label := fmt.Sprintf("step %d", step)
				var adds, dels []ast.Atom
				for n := rng.Intn(4); n > 0; n-- {
					adds = append(adds, universe[rng.Intn(len(universe))])
				}
				for n := rng.Intn(4); n > 0; n-- {
					dels = append(dels, universe[rng.Intn(len(universe))])
				}
				fs.apply(adds, dels)

				changes := make([]map[string][]string, len(views))
				for i, v := range views {
					ch, err := v.Apply(adds, dels)
					if err != nil {
						t.Fatalf("%s: Apply(policy=%q): %v", label, incrPolicies[i], err)
					}
					changes[i] = map[string][]string{
						"added":   renderTuples(p.Query, ch.Added),
						"removed": renderTuples(p.Query, ch.Removed),
					}
				}
				requireConsistent(t, label, views[0], p, fs)
				base := views[0]
				baseAnswers := answersOf(t, base)
				for i := 1; i < len(views); i++ {
					pol := incrPolicies[i]
					if !reflect.DeepEqual(changes[i], changes[0]) {
						t.Fatalf("%s: Changes diverged under policy %q:\ngreedy %v\n%-6s %v",
							label, pol, changes[0], pol, changes[i])
					}
					if got := answersOf(t, views[i]); !reflect.DeepEqual(got, baseAnswers) {
						t.Fatalf("%s: answers diverged under policy %q:\ngreedy %v\n%-6s %v",
							label, pol, baseAnswers, pol, got)
					}
					for pred := range p.IDB() {
						got, want := views[i].DerivationCounts(pred), base.DerivationCounts(pred)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: %s derivation counts diverged under policy %q:\ngreedy %v\n%-6s %v",
								label, pred, pol, want, pol, got)
						}
					}
					for j := 0; j < len(baseAnswers) && j < 2; j++ {
						// Explain recomputes provenance; keep it cheap.
						fact := ast.NewAtom(p.Query, mustAnswerTuple(t, base, j)...)
						dg, err := base.Explain(fact)
						if err != nil {
							t.Fatalf("%s: greedy Explain(%s): %v", label, fact, err)
						}
						dp, err := views[i].Explain(fact)
						if err != nil {
							t.Fatalf("%s: policy %q Explain(%s): %v", label, pol, fact, err)
						}
						if dg.String() != dp.String() {
							t.Fatalf("%s: provenance of %s diverged under policy %q:\ngreedy %s\n%-6s %s",
								label, fact, pol, dg, pol, dp)
						}
					}
				}
			}
		})
	}
}

// mustAnswerTuple returns the j-th answer tuple in sorted render order,
// so every view explains the same facts.
func mustAnswerTuple(t *testing.T, v *View, j int) eval.Tuple {
	t.Helper()
	ts, err := v.Answers()
	if err != nil {
		t.Fatal(err)
	}
	type kt struct {
		k string
		t eval.Tuple
	}
	all := make([]kt, len(ts))
	for i, tup := range ts {
		all[i] = kt{ast.NewAtom(v.Program().Query, tup...).String(), tup}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].k < all[b].k })
	return all[j].t
}

// TestIncrRejectsUnknownPolicy: Materialize must fail fast on a policy
// name the eval layer does not recognize, rather than silently running
// greedy.
func TestIncrRejectsUnknownPolicy(t *testing.T) {
	p := parser.MustParseProgram(`q(X) :- e(X). ?- q.`)
	_, err := Materialize(p, eval.NewDB(), Options{Policy: "fastest"})
	if err == nil {
		t.Fatal("Materialize accepted unknown policy")
	}
}
