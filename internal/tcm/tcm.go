// Package tcm implements two-counter (Minsky) machines and the
// reduction of their halting problem to datalog satisfiability with
// {¬}-integrity constraints — the construction behind Theorem 5.4 and
// its appendix proof. The package provides a machine interpreter, the
// exact program + constraint set of the appendix (with the predicates
// dom, eq, neq, succ, zero, cnfg), and an encoder that turns a finite
// run into a concrete extensional database, so the correspondence
// "program satisfiable iff the machine halts" can be exercised
// end-to-end on real inputs.
package tcm

import "fmt"

// CounterTest is a transition's guard on one counter.
type CounterTest int

const (
	// Any matches regardless of the counter value.
	Any CounterTest = iota
	// IfZero matches only when the counter is zero.
	IfZero
	// IfPos matches only when the counter is positive.
	IfPos
)

func (t CounterTest) String() string {
	switch t {
	case IfZero:
		return "=0"
	case IfPos:
		return ">0"
	default:
		return "*"
	}
}

// CounterOp is a transition's effect on one counter.
type CounterOp int

const (
	// Keep leaves the counter unchanged.
	Keep CounterOp = iota
	// Inc increments the counter.
	Inc
	// Dec decrements the counter (the transition is inapplicable when
	// the counter is zero).
	Dec
)

func (o CounterOp) String() string {
	switch o {
	case Inc:
		return "+1"
	case Dec:
		return "-1"
	default:
		return "·"
	}
}

// Transition is one instruction: in state State with counters
// matching the two guards, move to Next applying the two ops.
type Transition struct {
	State    int
	C1, C2   CounterTest
	Next     int
	Op1, Op2 CounterOp
}

// String renders the transition.
func (tr Transition) String() string {
	return fmt.Sprintf("δ(%d, c1%s, c2%s) = (%d, c1%s, c2%s)",
		tr.State, tr.C1, tr.C2, tr.Next, tr.Op1, tr.Op2)
}

// Machine is a deterministic two-counter machine. By convention (and
// as required by the Theorem 5.4 encoding) the start state is 0 and
// both counters start at zero.
type Machine struct {
	// States is the number of states (numbered 0..States-1).
	States int
	// Halt is the halting state; reaching it stops the machine.
	Halt int
	// Trans lists the transitions; at each step the first applicable
	// transition fires.
	Trans []Transition
}

// Config is a machine configuration.
type Config struct {
	Time   int
	State  int
	C1, C2 int
}

// Validate checks structural sanity.
func (m *Machine) Validate() error {
	if m.States <= 0 {
		return fmt.Errorf("tcm: machine needs at least one state")
	}
	if m.Halt < 0 || m.Halt >= m.States {
		return fmt.Errorf("tcm: halt state %d out of range", m.Halt)
	}
	if m.Halt == 0 {
		return fmt.Errorf("tcm: halt state cannot be the start state 0 (the encoding requires a zero start state)")
	}
	for _, tr := range m.Trans {
		if tr.State < 0 || tr.State >= m.States || tr.Next < 0 || tr.Next >= m.States {
			return fmt.Errorf("tcm: transition %s references an unknown state", tr)
		}
		if tr.Op1 == Dec && tr.C1 == IfZero {
			return fmt.Errorf("tcm: transition %s decrements a counter guarded to be zero", tr)
		}
		if tr.Op2 == Dec && tr.C2 == IfZero {
			return fmt.Errorf("tcm: transition %s decrements a counter guarded to be zero", tr)
		}
	}
	return nil
}

// matches reports whether the guard accepts the counter value.
func (t CounterTest) matches(c int) bool {
	switch t {
	case IfZero:
		return c == 0
	case IfPos:
		return c > 0
	default:
		return true
	}
}

func (o CounterOp) apply(c int) (int, bool) {
	switch o {
	case Inc:
		return c + 1, true
	case Dec:
		if c == 0 {
			return 0, false
		}
		return c - 1, true
	default:
		return c, true
	}
}

// Step applies the first applicable transition; ok is false when the
// machine is stuck or already halted.
func (m *Machine) Step(c Config) (Config, bool) {
	if c.State == m.Halt {
		return c, false
	}
	for _, tr := range m.Trans {
		if tr.State != c.State || !tr.C1.matches(c.C1) || !tr.C2.matches(c.C2) {
			continue
		}
		n1, ok1 := tr.Op1.apply(c.C1)
		n2, ok2 := tr.Op2.apply(c.C2)
		if !ok1 || !ok2 {
			continue
		}
		return Config{Time: c.Time + 1, State: tr.Next, C1: n1, C2: n2}, true
	}
	return c, false
}

// Run executes from the initial configuration for at most maxSteps
// steps, returning the trace (including the initial configuration) and
// whether the halting state was reached.
func (m *Machine) Run(maxSteps int) ([]Config, bool) {
	cfg := Config{}
	trace := []Config{cfg}
	for i := 0; i < maxSteps; i++ {
		if cfg.State == m.Halt {
			return trace, true
		}
		next, ok := m.Step(cfg)
		if !ok {
			return trace, false
		}
		cfg = next
		trace = append(trace, cfg)
	}
	return trace, cfg.State == m.Halt
}

// Halting2Step returns a tiny machine that increments c1 twice and
// halts: 0 → 1 → 2(halt).
func Halting2Step() *Machine {
	return &Machine{
		States: 3,
		Halt:   2,
		Trans: []Transition{
			{State: 0, Next: 1, Op1: Inc},
			{State: 1, Next: 2, Op1: Inc},
		},
	}
}

// CountdownMachine counts c1 up to n, then back down to zero, then
// halts — exercising Inc, Dec, and both guards.
func CountdownMachine(n int) *Machine {
	// state 0: c1 < n (tracked via c2 as the "phase" being zero):
	// increment until c2... encode instead with states:
	// state 0 (pump): inc c1, dec budget in c2? Simpler: use two
	// states: 0 pumps c1 n times via unary states... To stay small:
	// state 0: if c1 = 0, inc c1, stay? That never reaches n.
	// Use a chain of n pump states followed by a drain state.
	m := &Machine{States: n + 3, Halt: n + 2}
	for i := 0; i < n; i++ {
		m.Trans = append(m.Trans, Transition{State: i, Next: i + 1, Op1: Inc})
	}
	drain := n
	m.Trans = append(m.Trans,
		Transition{State: drain, C1: IfPos, Next: drain, Op1: Dec},
		Transition{State: drain, C1: IfZero, Next: n + 2},
	)
	return m
}

// Diverging returns a machine that pumps c1 forever and never reaches
// its halting state.
func Diverging() *Machine {
	return &Machine{
		States: 2,
		Halt:   1,
		Trans: []Transition{
			{State: 0, Next: 0, Op1: Inc},
		},
	}
}
