// sqoc — the semantic query optimizer compiler.
//
// Reads a datalog source (rules, integrity constraints, an optional
// '?- pred.' query declaration, and optionally ground facts) from a
// file or standard input, rewrites the program to completely
// incorporate the constraints, and prints the rewritten program. With
// facts present (or a separate facts file) it also evaluates both
// versions and reports the answers and the work saved.
//
// Usage:
//
//	sqoc [-facts file] [-explain] [-baseline] [-stats] [-parallel n]
//	     [-order greedy|cost|adaptive] [-magic auto|on|off]
//	     [-elim auto|on|off] [-timeout d] [-budget n] [file]
//
// Exit status:
//
//	0  success
//	1  usage, parse, or optimization errors
//	3  the -budget derived-tuple budget was exhausted
//	4  the -timeout deadline expired (or the run was interrupted)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	sqo "repro"
)

// Distinct exit codes so scripts can tell resource exhaustion from
// ordinary failure.
const (
	exitBudget  = 3
	exitTimeout = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqoc: ")
	factsPath := flag.String("facts", "", "file of ground facts to evaluate both programs on")
	explain := flag.Bool("explain", false, "print the query forest (Figure 1 style)")
	baseline := flag.Bool("baseline", false, "also print the [CGM88] per-rule baseline rewriting")
	stats := flag.Bool("stats", false, "print query-tree statistics")
	why := flag.Bool("why", false, "print a derivation tree for each answer (requires facts)")
	lintFlag := flag.Bool("lint", false, "run the semantic linter before optimizing; exit 1 on lint errors")
	parallel := flag.Int("parallel", 0, "evaluation workers (0 = one per CPU, 1 = sequential)")
	order := flag.String("order", "", "join-order policy: greedy (default), cost, or adaptive")
	magicFlag := flag.String("magic", "", "magic-sets rewrite for goal queries like '?- path(a, Y).': auto (default), on, or off")
	elimFlag := flag.String("elim", "", "bounded-recursion elimination (compile provably bounded fixpoints into flat joins): auto (default), on, or off")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on optimization + evaluation (0 = none)")
	budget := flag.Int64("budget", 0, "derived-tuple budget per evaluation (0 = unlimited)")
	shards := flag.Int("shards", 0, "hash-partition evaluation across this many shards (0/1 = off); answers are identical at any count")
	shardPart := flag.String("shard-partitioner", "", "shard hash: modulo (default) or rendezvous")
	flag.Parse()

	policy, err := sqo.ParseJoinOrderPolicy(*order)
	if err != nil {
		log.Fatal(err)
	}
	magicMode, err := sqo.ParseMagicMode(*magicFlag)
	if err != nil {
		log.Fatal(err)
	}
	elimMode, err := sqo.ParseElimMode(*elimFlag)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	unit, err := sqo.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if unit.Program.Query == "" {
		log.Fatal("no query declaration ('?- pred.') in input")
	}

	if *lintFlag {
		rep := sqo.Lint(ctx, unit.Program, unit.ICs, unit.Facts,
			sqo.LintOptions{
				MagicEnabled: magicMode != sqo.MagicOff,
				ElimEnabled:  elimMode != sqo.ElimOff,
			})
		if len(rep.Findings) > 0 {
			if err := sqo.WriteLintText(os.Stderr, flag.Arg(0), rep); err != nil {
				log.Fatal(err)
			}
		}
		if rep.HasErrors() {
			log.Fatal("lint found errors; not optimizing")
		}
	}

	res, err := sqo.OptimizeCtx(ctx, unit.Program, unit.ICs, sqo.DefaultOptions())
	if err != nil {
		fatal(err, *timeout, *budget)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	if !res.Satisfiable {
		fmt.Println("% the query predicate is UNSATISFIABLE with respect to the constraints")
	}
	fmt.Print(sqo.FormatProgram(res.Program))

	if *baseline {
		fmt.Println("\n% --- [CGM88] per-rule baseline ---")
		fmt.Print(sqo.FormatProgram(sqo.BaselineOptimize(unit.Program, unit.ICs)))
	}
	if *explain {
		fmt.Println("\n% --- query forest ---")
		fmt.Print(sqo.Explain(res))
	}
	if *stats {
		s := res.Tree.Stats()
		fmt.Printf("\n%% goal nodes=%d (live %d) rule nodes=%d (live %d) roots=%d (live %d) adornments=%d\n",
			s.GoalNodes, s.LiveGoals, s.RuleNodes, s.LiveRules, s.Roots, s.LiveRoots, s.Adornments)
	}

	facts := unit.Facts
	if *factsPath != "" {
		fsrc, err := os.ReadFile(*factsPath)
		if err != nil {
			log.Fatal(err)
		}
		extra, err := sqo.ParseFacts(string(fsrc))
		if err != nil {
			log.Fatal(err)
		}
		facts = append(facts, extra...)
	}
	if len(facts) > 0 {
		db := sqo.NewDBFrom(facts)
		opts := sqo.DefaultEvalOptions()
		opts.Workers = *parallel
		opts.MaxTuples = *budget
		opts.Policy = policy
		opts.Magic = magicMode
		opts.Elim = elimMode
		opts.Shards = *shards
		opts.ShardPartitioner = *shardPart
		origTuples, origStats, err := sqo.QueryCtx(ctx, unit.Program, db, opts)
		if err != nil {
			fatal(err, *timeout, *budget)
		}
		optTuples, optStats, err := sqo.QueryCtx(ctx, res.Program, db, opts)
		if err != nil {
			fatal(err, *timeout, *budget)
		}
		goalNote := ""
		if optStats.ElimApplied {
			goalNote += " (bounded recursion eliminated)"
		}
		if optStats.MagicApplied {
			goalNote += " (magic-sets, goal-directed)"
		}
		fmt.Printf("\n%% original : %d answers, %d tuples derived, %d join probes\n",
			len(origTuples), origStats.TuplesDerived, origStats.JoinProbes)
		fmt.Printf("%% optimized: %d answers, %d tuples derived, %d join probes%s\n",
			len(optTuples), optStats.TuplesDerived, optStats.JoinProbes, goalNote)
		for _, t := range optTuples {
			fmt.Printf("%s%s.\n", unit.Program.Query, t)
		}
		if *why {
			_, explain, _, err := sqo.EvalProv(unit.Program, db)
			if err != nil {
				log.Fatal(err)
			}
			for _, t := range origTuples {
				fact := sqo.Atom{Pred: unit.Program.Query, Args: t}
				d, err := explain(fact)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("\n%% derivation of %s:\n%s", fact, d)
			}
		}
	}
}

// fatal prints a clear diagnosis and exits with the status matching
// the failure class: budget exhaustion and deadline expiry each get a
// distinct code so callers can react without parsing messages.
func fatal(err error, timeout time.Duration, budget int64) {
	switch {
	case errors.Is(err, sqo.ErrBudget):
		log.Printf("derived-tuple budget of %d exhausted before the fixpoint completed: %v", budget, err)
		log.Printf("raise -budget or tighten the program/constraints")
		os.Exit(exitBudget)
	case errors.Is(err, context.DeadlineExceeded):
		log.Printf("timed out after %v: %v", timeout, err)
		log.Printf("raise -timeout, or reduce the workload")
		os.Exit(exitTimeout)
	case errors.Is(err, context.Canceled):
		log.Printf("canceled: %v", err)
		os.Exit(exitTimeout)
	default:
		log.Fatal(err)
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
