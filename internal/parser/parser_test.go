package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParsePaperExample31(t *testing.T) {
	src := `
		% Example 3.1 of the paper.
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Program
	if p.Query != "goodPath" {
		t.Fatalf("query = %q", p.Query)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r2 := p.Rules[1]
	if r2.Head.Pred != "path" || len(r2.Pos) != 2 || r2.Pos[1].Pred != "path" {
		t.Fatalf("recursive rule wrong: %s", r2)
	}
}

func TestParseICs(t *testing.T) {
	src := `
		:- startPoint(X), endPoint(Y), Y <= X.
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`
	ics, err := ParseICs(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ics) != 3 {
		t.Fatalf("got %d ics", len(ics))
	}
	if len(ics[0].Pos) != 2 || len(ics[0].Cmp) != 1 {
		t.Fatalf("ic0 shape wrong: %s", ics[0])
	}
	if ics[0].Cmp[0].Op != ast.LE {
		t.Fatalf("ic0 op = %v", ics[0].Cmp[0].Op)
	}
	if ics[2].Cmp[0].Op != ast.GE {
		t.Fatalf("ic2 op = %v", ics[2].Cmp[0].Op)
	}
}

func TestParseNegation(t *testing.T) {
	src := `reach(X) :- node(X), !blocked(X).`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if len(r.Neg) != 1 || r.Neg[0].Pred != "blocked" {
		t.Fatalf("negation not parsed: %s", r)
	}
}

func TestParseNegationInIC(t *testing.T) {
	src := `:- succ(X, Y), !dom(X).`
	ics, err := ParseICs(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ics[0].Neg) != 1 || ics[0].Neg[0].Pred != "dom" {
		t.Fatalf("ic negation not parsed: %s", ics[0])
	}
}

func TestParseFacts(t *testing.T) {
	src := `
		step(1, 2).
		step(2, 3).
		startPoint(1).
		label(1, "node one").
		kind(a, b).
	`
	fs, err := ParseFacts(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 {
		t.Fatalf("got %d facts", len(fs))
	}
	if fs[0].Args[0].Val != 1 || fs[0].Args[1].Val != 2 {
		t.Fatalf("fact 0 wrong: %s", fs[0])
	}
	if fs[3].Args[1].Kind != ast.Str || fs[3].Args[1].Name != "node one" {
		t.Fatalf("quoted string wrong: %s", fs[3])
	}
	if fs[4].Args[0].Kind != ast.Str || fs[4].Args[0].Name != "a" {
		t.Fatalf("bare symbolic constant wrong: %s", fs[4])
	}
}

func TestParseNonGroundFactRejected(t *testing.T) {
	if _, err := Parse(`step(X, 2).`); err == nil {
		t.Fatal("expected non-ground fact error")
	}
}

func TestParseZeroAryAtom(t *testing.T) {
	src := `
		halt :- reach(T), final(T).
		?- halt.
	`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Pred != "halt" || p.Rules[0].Head.Arity() != 0 {
		t.Fatalf("0-ary head wrong: %s", p.Rules[0])
	}
}

func TestParseNumbers(t *testing.T) {
	fs, err := ParseFacts(`v(1). v(-2). v(3.5). v(-0.25). v(100).`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3.5, -0.25, 100}
	for i, f := range fs {
		if f.Args[0].Val != want[i] {
			t.Errorf("fact %d = %v, want %v", i, f.Args[0].Val, want[i])
		}
	}
}

func TestParseNumberFollowedByDot(t *testing.T) {
	// `X < 100.` — the dot terminates the rule, it is not a decimal point.
	p, err := ParseProgram(`p(X) :- e(X), X < 100.`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Cmp[0].Right.Val != 100 {
		t.Fatalf("constant wrong: %v", p.Rules[0].Cmp[0])
	}
}

func TestParseAllComparisonOps(t *testing.T) {
	src := `p(X, Y) :- e(X, Y), X < Y, X <= Y, Y > X, Y >= X, X = X, X != Y.`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	if len(p.Rules[0].Cmp) != len(ops) {
		t.Fatalf("got %d cmps", len(p.Rules[0].Cmp))
	}
	for i, op := range ops {
		if p.Rules[0].Cmp[i].Op != op {
			t.Errorf("cmp %d op = %v, want %v", i, p.Rules[0].Cmp[i].Op, op)
		}
	}
}

func TestParseCmpBetweenConstants(t *testing.T) {
	p, err := ParseProgram(`p(X) :- e(X), 1 < 2.`)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Rules[0].Cmp[0]
	if !c.Left.IsConst() || !c.Right.IsConst() {
		t.Fatalf("constants not parsed in cmp: %v", c)
	}
}

func TestParseStringEscapes(t *testing.T) {
	fs, err := ParseFacts(`s("a\nb"). s("q\"q"). s("back\\slash"). s("tab\there").`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a\nb", `q"q`, `back\slash`, "tab\there"}
	for i, f := range fs {
		if f.Args[0].Name != want[i] {
			t.Errorf("string %d = %q, want %q", i, f.Args[0].Name, want[i])
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "% full line\np(X) :- e(X). % trailing\n% another\n"
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []string{
		`p(X) :- e(X)`,         // missing dot
		`p(X) :- .`,            // empty body
		`p(X) :- e(X,).`,       // trailing comma in args
		`p(X) :- X <.`,         // missing rhs
		`p(X) :- e(X), & .`,    // bad char
		`:- .`,                 // empty ic body
		`p("unterminated`,      // unterminated string
		`p(X) :- e(X), X ! Y.`, // lone bang as operator
		`?- .`,                 // missing query name
		`p(-a).`,               // '-' must precede digits
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("no error for %q", src)
			continue
		}
		var pe *Error
		if !asError(err, &pe) {
			// Some wrapper errors (fact/rule misplacement) are plain;
			// only lexical/syntactic errors need positions.
			continue
		}
		if pe.Line < 1 || pe.Col < 1 {
			t.Errorf("bad position in error %v for %q", err, src)
		}
		if !strings.Contains(err.Error(), ":") {
			t.Errorf("error %q lacks position prefix", err)
		}
	}
}

func asError(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestParseRoundTrip(t *testing.T) {
	// Parse → print → parse must be identity on the AST.
	src := `
		p(X, Y) :- e(X, Z), p(Z, Y), !blocked(Z), X < 100, Z != Y.
		p(X, Y) :- e(X, Y).
		q(X) :- p(X, X).
		?- q.
	`
	p1, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := p1.String() + "?- " + p1.Query + ".\n"
	p2, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
	}
	if p1.String() != p2.String() {
		t.Fatalf("round trip changed program:\n%s\nvs\n%s", p1, p2)
	}
	if p2.Query != "q" {
		t.Fatalf("query lost: %q", p2.Query)
	}
}

func TestParseICRoundTrip(t *testing.T) {
	src := `
		:- startPoint(X), endPoint(Y), Y <= X.
		:- step(X, Y), !dom(X).
		:- a(X, Y), b(Y, Z).
	`
	ics1, err := ParseICs(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, ic := range ics1 {
		sb.WriteString(ic.String())
		sb.WriteByte('\n')
	}
	ics2, err := ParseICs(sb.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, sb.String())
	}
	if len(ics1) != len(ics2) {
		t.Fatalf("ic count changed: %d vs %d", len(ics1), len(ics2))
	}
	for i := range ics1 {
		if ics1[i].String() != ics2[i].String() {
			t.Errorf("ic %d changed: %s vs %s", i, ics1[i], ics2[i])
		}
	}
}

func TestStrictParseVariants(t *testing.T) {
	if _, err := ParseProgram(`:- a(X).`); err == nil {
		t.Error("ParseProgram must reject ics")
	}
	if _, err := ParseProgram(`a(1).`); err == nil {
		t.Error("ParseProgram must reject facts")
	}
	if _, err := ParseICs(`p(X) :- e(X).`); err == nil {
		t.Error("ParseICs must reject rules")
	}
	if _, err := ParseICs(`a(1).`); err == nil {
		t.Error("ParseICs must reject facts")
	}
	if _, err := ParseFacts(`p(X) :- e(X).`); err == nil {
		t.Error("ParseFacts must reject rules")
	}
	if _, err := ParseFacts(`:- a(X).`); err == nil {
		t.Error("ParseFacts must reject ics")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseProgram must panic on bad input")
		}
	}()
	MustParseProgram(`p(X :-`)
}

func TestParseVariableStyles(t *testing.T) {
	p, err := ParseProgram(`p(X1, _y, Long_Var) :- e(X1, _y, Long_Var).`)
	if err != nil {
		t.Fatal(err)
	}
	args := p.Rules[0].Head.Args
	for i, name := range []string{"X1", "_y", "Long_Var"} {
		if !args[i].IsVar() || args[i].Name != name {
			t.Errorf("arg %d = %v, want var %s", i, args[i], name)
		}
	}
}

// TestRandomRoundTrip generates random programs from the AST side,
// prints them, and reparses: the printed form must parse back to a
// structurally identical program.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	vars := []ast.Term{ast.V("X"), ast.V("Y"), ast.V("Z"), ast.V("W")}
	consts := []ast.Term{ast.N(0), ast.N(1.5), ast.N(-3), ast.S("a"), ast.S("hello world")}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	term := func() ast.Term {
		if rng.Intn(3) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return vars[rng.Intn(len(vars))]
	}
	for trial := 0; trial < 200; trial++ {
		var prog ast.Program
		for r := 0; r < 1+rng.Intn(3); r++ {
			// Safety: bind every variable with a catch-all subgoal.
			rule := ast.Rule{
				Head: ast.NewAtom("p", vars[rng.Intn(len(vars))], term()),
				Pos: []ast.Atom{ast.NewAtom("all",
					vars[0], vars[1], vars[2], vars[3])},
			}
			for i := 0; i < rng.Intn(3); i++ {
				rule.Pos = append(rule.Pos, ast.NewAtom("e", term(), term()))
			}
			for i := 0; i < rng.Intn(2); i++ {
				rule.Neg = append(rule.Neg, ast.NewAtom("f", vars[rng.Intn(len(vars))]))
			}
			for i := 0; i < rng.Intn(3); i++ {
				rule.Cmp = append(rule.Cmp, ast.NewCmp(term(), ops[rng.Intn(len(ops))], term()))
			}
			prog.Rules = append(prog.Rules, rule)
		}
		printed := prog.String()
		reparsed, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("trial %d: printed program does not reparse: %v\n%s", trial, err, printed)
		}
		if reparsed.String() != printed {
			t.Fatalf("trial %d: round trip changed the program:\n%s\nvs\n%s", trial, printed, reparsed)
		}
	}
}
