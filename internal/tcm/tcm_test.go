package tcm

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
)

func TestHalting2Step(t *testing.T) {
	m := Halting2Step()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	trace, halted := m.Run(10)
	if !halted {
		t.Fatal("machine should halt")
	}
	if len(trace) != 3 {
		t.Fatalf("trace length = %d, want 3", len(trace))
	}
	final := trace[len(trace)-1]
	if final.State != 2 || final.C1 != 2 || final.C2 != 0 {
		t.Fatalf("final config = %+v", final)
	}
}

func TestCountdownMachine(t *testing.T) {
	m := CountdownMachine(3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	trace, halted := m.Run(100)
	if !halted {
		t.Fatalf("countdown machine should halt; trace = %v", trace)
	}
	// Counter goes up to 3 and back to 0.
	maxC1 := 0
	for _, c := range trace {
		if c.C1 > maxC1 {
			maxC1 = c.C1
		}
	}
	if maxC1 != 3 {
		t.Fatalf("max c1 = %d, want 3", maxC1)
	}
	final := trace[len(trace)-1]
	if final.C1 != 0 {
		t.Fatalf("final c1 = %d, want 0", final.C1)
	}
}

func TestDiverging(t *testing.T) {
	m := Diverging()
	trace, halted := m.Run(50)
	if halted {
		t.Fatal("diverging machine must not halt")
	}
	if len(trace) != 51 {
		t.Fatalf("trace length = %d, want 51 (50 steps + initial)", len(trace))
	}
	if trace[50].C1 != 50 {
		t.Fatalf("c1 = %d after 50 pumps", trace[50].C1)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []*Machine{
		{States: 0, Halt: 0},
		{States: 2, Halt: 5},
		{States: 2, Halt: 0}, // halt == start
		{States: 3, Halt: 2, Trans: []Transition{{State: 0, Next: 7}}},
		{States: 3, Halt: 2, Trans: []Transition{{State: 0, Next: 1, C1: IfZero, Op1: Dec}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEncodeShapes(t *testing.T) {
	enc, err := Encode(Halting2Step())
	if err != nil {
		t.Fatal(err)
	}
	if enc.Program.Query != "halt" {
		t.Fatalf("query = %s", enc.Program.Query)
	}
	if len(enc.Program.Rules) != 3 {
		t.Fatalf("program rules = %d, want 3 (reach base, reach step, halt)", len(enc.Program.Rules))
	}
	if err := enc.Program.Validate(); err != nil {
		t.Fatalf("encoded program invalid: %v", err)
	}
	if err := enc.Program.ValidateICs(enc.ICs); err != nil {
		t.Fatalf("encoded ics invalid: %v", err)
	}
	// 2 transitions × 3 mismatch ics + fixed infrastructure ics.
	if len(enc.ICs) < 20 {
		t.Fatalf("suspiciously few ics: %d", len(enc.ICs))
	}
}

func TestStateChain(t *testing.T) {
	s := ast.V("S")
	c0 := stateChain(0, s, "Z")
	if len(c0) != 1 || c0[0].Pred != "zero" || !c0[0].Args[0].Equal(s) {
		t.Fatalf("chain(0) = %v", c0)
	}
	c2 := stateChain(2, s, "Z")
	// zero(Z0), succ(Z0, Z1), succ(Z1, S)
	if len(c2) != 3 || c2[0].Pred != "zero" || c2[2].Pred != "succ" || !c2[2].Args[1].Equal(s) {
		t.Fatalf("chain(2) = %v", c2)
	}
}

func TestTraceDBOfHaltingRunIsConsistent(t *testing.T) {
	m := Halting2Step()
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, halted := m.Run(10)
	if !halted {
		t.Fatal("machine should halt")
	}
	db := TraceDB(m, trace)
	ok, err := chase.IsConsistent(db, enc.ICs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the database of a correct halting run must satisfy every constraint")
	}
}

func TestTraceDBDerivesHalt(t *testing.T) {
	m := Halting2Step()
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := m.Run(10)
	edb := eval.NewDB()
	edb.AddFacts(TraceDB(m, trace))
	tuples, _, err := eval.Query(enc.Program, edb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("halt should be derived exactly once, got %d", len(tuples))
	}
}

func TestTraceDBDivergingNoHalt(t *testing.T) {
	m := Diverging()
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, halted := m.Run(8)
	if halted {
		t.Fatal("diverging machine halted?")
	}
	db := TraceDB(m, trace)
	ok, err := chase.IsConsistent(db, enc.ICs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a correct (non-halting) prefix must still satisfy the constraints")
	}
	edb := eval.NewDB()
	edb.AddFacts(db)
	tuples, _, err := eval.Query(enc.Program, edb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Fatalf("halt must not be derivable, got %d tuples", len(tuples))
	}
}

func TestCorruptedTraceViolatesICs(t *testing.T) {
	m := Halting2Step()
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := m.Run(10)
	// Corrupt the run: claim the machine jumped straight to state 2 at
	// time 1 without the second increment.
	trace[1].State = 2
	db := TraceDB(m, trace)
	ok, err := chase.IsConsistent(db, enc.ICs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a corrupted trace must violate some transition constraint")
	}
}

func TestCorruptedCounterViolatesICs(t *testing.T) {
	m := Halting2Step()
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := m.Run(10)
	trace[1].C1 = 0 // the first step increments c1; claim it did not
	db := TraceDB(m, trace)
	ok, err := chase.IsConsistent(db, enc.ICs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a corrupted counter must violate the c1-mismatch constraint")
	}
}

func TestReachComputesTimes(t *testing.T) {
	m := CountdownMachine(2)
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	trace, halted := m.Run(100)
	if !halted {
		t.Fatal("should halt")
	}
	edb := eval.NewDB()
	edb.AddFacts(TraceDB(m, trace))
	idb, _, err := eval.Eval(enc.Program, edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := idb.Count("reach"); got != len(trace) {
		t.Fatalf("reach has %d tuples, want %d (one per configuration)", got, len(trace))
	}
	if idb.Count("halt") != 1 {
		t.Fatal("halt should be derived")
	}
}
