package server

import (
	"sort"
	"sync"

	sqo "repro"
)

// dataset is one registered fact set. The database is immutable after
// registration: queries that add inline facts clone it first, so any
// number of evaluations may read it concurrently.
type dataset struct {
	name  string
	db    *sqo.DB
	facts int
}

// DatasetInfo describes one registered dataset over the wire.
type DatasetInfo struct {
	Name       string         `json:"name"`
	Facts      int            `json:"facts"`
	Predicates map[string]int `json:"predicates"`
}

func (d *dataset) describe() DatasetInfo {
	preds := map[string]int{}
	for _, p := range d.db.Preds() {
		preds[p] = d.db.Count(p)
	}
	return DatasetInfo{Name: d.name, Facts: d.facts, Predicates: preds}
}

// datasetStore is the concurrent registry of named datasets.
type datasetStore struct {
	mu      sync.RWMutex
	byName  map[string]*dataset
	metrics *Metrics
}

func newDatasetStore(m *Metrics) *datasetStore {
	return &datasetStore{byName: map[string]*dataset{}, metrics: m}
}

// put registers (or replaces) a dataset built from the given facts.
func (st *datasetStore) put(name string, facts []sqo.Atom) *dataset {
	ds := &dataset{name: name, db: sqo.NewDBFrom(facts), facts: len(facts)}
	st.mu.Lock()
	st.byName[name] = ds
	n := len(st.byName)
	st.mu.Unlock()
	if st.metrics != nil {
		st.metrics.Datasets.Store(int64(n))
	}
	return ds
}

// get returns the dataset named name.
func (st *datasetStore) get(name string) (*dataset, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ds, ok := st.byName[name]
	return ds, ok
}

// list describes all datasets, sorted by name.
func (st *datasetStore) list() []DatasetInfo {
	st.mu.RLock()
	out := make([]DatasetInfo, 0, len(st.byName))
	for _, ds := range st.byName {
		out = append(out, ds.describe())
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
