package order

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

// Property: satisfiability is antitone in the constraint set — any
// subset of a satisfiable conjunction is satisfiable.
func TestSatisfiabilityAntitone(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	vars := []ast.Term{x, y, z, w}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	for trial := 0; trial < 300; trial++ {
		var atoms []ast.Cmp
		for i := 0; i < 1+rng.Intn(6); i++ {
			var r ast.Term
			if rng.Intn(3) == 0 {
				r = ast.N(float64(rng.Intn(3)))
			} else {
				r = vars[rng.Intn(len(vars))]
			}
			atoms = append(atoms, cmp(vars[rng.Intn(len(vars))], ops[rng.Intn(len(ops))], r))
		}
		full := NewSet(atoms...)
		if !full.Satisfiable() {
			continue
		}
		// Every single-atom removal stays satisfiable.
		for skip := range atoms {
			sub := NewSet()
			for i, a := range atoms {
				if i != skip {
					sub.Add(a)
				}
			}
			if !sub.Satisfiable() {
				t.Fatalf("trial %d: %s satisfiable but subset %s is not", trial, full, sub)
			}
		}
	}
}

// Property: implication is reflexive and transitive on atoms drawn
// from the conjunction's own closure.
func TestImplicationReflexiveOnMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(999331))
	vars := []ast.Term{x, y, z}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	for trial := 0; trial < 300; trial++ {
		var atoms []ast.Cmp
		for i := 0; i < 1+rng.Intn(4); i++ {
			atoms = append(atoms, cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], vars[rng.Intn(3)]))
		}
		s := NewSet(atoms...)
		if !s.Satisfiable() {
			continue
		}
		for _, a := range atoms {
			if !s.Implies(a) {
				t.Fatalf("trial %d: %s does not imply its own member %v", trial, s, a)
			}
		}
	}
}

// Property: Implies(c) and Contradicts(c.Negate()) coincide for
// satisfiable sets — both say "every model satisfies c".
func TestImpliesContradictsDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	vars := []ast.Term{x, y, z}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}
	for trial := 0; trial < 300; trial++ {
		var atoms []ast.Cmp
		for i := 0; i < 1+rng.Intn(3); i++ {
			atoms = append(atoms, cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], vars[rng.Intn(3)]))
		}
		s := NewSet(atoms...)
		if !s.Satisfiable() {
			continue
		}
		goal := cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], vars[rng.Intn(3)])
		if s.Implies(goal) != s.Contradicts(goal.Negate()) {
			t.Fatalf("trial %d: Implies/Contradicts disagree on %v for %s", trial, goal, s)
		}
	}
}

// Property: ForcedEqualities is sound — substituting the forced
// representative preserves satisfiability, and asserting the contrary
// inequality is contradictory.
func TestForcedEqualitiesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	vars := []ast.Term{x, y, z}
	ops := []ast.CmpOp{ast.LT, ast.LE, ast.GE, ast.GT, ast.EQ}
	for trial := 0; trial < 300; trial++ {
		var atoms []ast.Cmp
		for i := 0; i < 2+rng.Intn(3); i++ {
			var r ast.Term
			if rng.Intn(4) == 0 {
				r = ast.N(float64(rng.Intn(2)))
			} else {
				r = vars[rng.Intn(3)]
			}
			atoms = append(atoms, cmp(vars[rng.Intn(3)], ops[rng.Intn(len(ops))], r))
		}
		s := NewSet(atoms...)
		if !s.Satisfiable() {
			continue
		}
		for v, rep := range s.ForcedEqualities() {
			if !s.Implies(cmp(ast.V(v), ast.EQ, rep)) {
				t.Fatalf("trial %d: %s reports %s = %v but does not imply it", trial, s, v, rep)
			}
			if !s.Contradicts(cmp(ast.V(v), ast.NE, rep)) {
				t.Fatalf("trial %d: %s allows %s != %v despite forcing equality", trial, s, v, rep)
			}
		}
	}
}
