package qtree

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

// figure1Program is the running example of Section 4 / Figure 1.
const figure1Program = `
	p(X, Y) :- a(X, Y).
	p(X, Y) :- b(X, Y).
	p(X, Y) :- a(X, Z), p(Z, Y).
	p(X, Y) :- b(X, Z), p(Z, Y).
	?- p.
`

const figure1IC = `:- a(X, Y), b(Y, Z).`

func TestFigure1Adornments(t *testing.T) {
	// The bottom-up phase must discover exactly the three adornments
	// p1, p2, p3 of the paper.
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	res := out.Tree.Res
	q := res.Spec.Query
	if got := len(res.Adorn[q]); got != 3 {
		t.Fatalf("got %d adornments for p, want 3 (p1, p2, p3):\n%v", got, res.Adorn[q])
	}
	// Count non-trivial triplets per adornment: p1 and p2 have one,
	// p3 has two.
	var counts []int
	for _, ad := range res.Adorn[q] {
		n := 0
		for _, tr := range ad.Triplets {
			if len(tr.Unmapped) < 2 { // ic has 2 atoms; non-trivial = 1 or 0 unmapped
				n++
			}
		}
		counts = append(counts, n)
	}
	got := map[int]int{}
	for _, c := range counts {
		got[c]++
	}
	if got[1] != 2 || got[2] != 1 {
		t.Fatalf("non-trivial triplet counts per adornment = %v, want two adornments with 1 and one with 2", counts)
	}
}

func TestFigure1RewrittenRules(t *testing.T) {
	// The rewritten program must be exactly the six rules s1–s6 (plus
	// wrapper rules): in particular there is NO rule combining an
	// a-edge with the b-then-a class, and no rule combining a b-edge
	// step with the a-closure class in the forbidden order.
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Fatal("query should be satisfiable")
	}
	var core, wrappers int
	for _, r := range out.Program.Rules {
		if r.Head.Pred == "p" {
			wrappers++
		} else {
			core++
		}
	}
	if core != 6 {
		t.Fatalf("got %d core rules, want 6 (s1..s6):\n%s", core, out.Program)
	}
	if wrappers != 3 {
		t.Fatalf("got %d wrapper rules, want 3 (one per root):\n%s", wrappers, out.Program)
	}
}

func TestFigure1SemanticsPreserved(t *testing.T) {
	p := parser.MustParseProgram(figure1Program)
	ics := parser.MustParseICs(figure1IC)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	// A database satisfying the ic: b-edges then a-edges (no a before b).
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		b(1, 2). b(2, 3).
		a(3, 4). a(4, 5).
	`))
	want, _, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("p"), got.SortedFacts("p")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) == 0 {
		t.Fatal("sanity: expected non-empty answer")
	}
}

func TestFigure1AvoidsForbiddenJoins(t *testing.T) {
	// On an inconsistent database (a-edge followed by b-edge), the
	// REWRITTEN program must not derive the paths that cross a→b,
	// demonstrating that the forbidden join was compiled away.
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`a(1, 2). b(2, 3).`))
	idb, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range idb.SortedFacts("p") {
		if f == "p(1, 3)" {
			t.Fatal("rewritten program derived a path crossing a→b; the constraint was not incorporated")
		}
	}
	// The single-edge paths must still be there.
	facts := idb.SortedFacts("p")
	if len(facts) != 2 {
		t.Fatalf("want exactly the two single edges, got %v", facts)
	}
}

func TestFigure1Print(t *testing.T) {
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	s := out.Tree.Print()
	if !strings.Contains(s, "=== tree 1") || !strings.Contains(s, "=== tree 3") {
		t.Fatalf("expected a three-tree forest:\n%s", s)
	}
	if strings.Contains(s, "unsatisfiable") {
		t.Fatalf("forest should not be empty:\n%s", s)
	}
}

func TestExample31ResidueAttached(t *testing.T) {
	// Example 3.1: the optimizer must add Y > X to the goodPath rule.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.Program.Rules {
		hasStart := false
		for _, a := range r.Pos {
			if a.Pred == "startPoint" {
				hasStart = true
			}
		}
		if !hasStart {
			continue
		}
		for _, c := range r.Cmp {
			// Y > X over the rule's variables (names may differ).
			if c.Op == ast.GT || c.Op == ast.LT {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("residue Y > X not attached:\n%s", out.Program)
	}
}

func TestExample31SemanticsPreserved(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent DB: all end points above all start points.
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		step(1, 2). step(2, 3). step(3, 4). step(2, 5). step(5, 4).
		startPoint(1). startPoint(2).
		endPoint(4). endPoint(5).
	`))
	want, _, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("goodPath"), got.SortedFacts("goodPath")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) == 0 {
		t.Fatal("sanity: expected answers")
	}
}

func TestSection3ThresholdPushed(t *testing.T) {
	// Section 3, ics (1) and (2): the rewritten program must carry the
	// X >= 100 threshold into the recursive path predicate, so that
	// sub-100 path tuples are never derived.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a database with two chains, one far below 100.
	db := eval.NewDB()
	for i := 1; i < 40; i++ {
		db.AddFact(ast.NewAtom("step", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	for i := 100; i < 120; i++ {
		db.AddFact(ast.NewAtom("step", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	db.AddFact(ast.NewAtom("startPoint", ast.N(100)))
	db.AddFact(ast.NewAtom("endPoint", ast.N(120)))

	wantIdb, wantStats, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	gotIdb, gotStats, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := wantIdb.SortedFacts("goodPath"), gotIdb.SortedFacts("goodPath")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) != 1 {
		t.Fatalf("want exactly goodPath(100, 120), got %v", w)
	}
	// The optimization claim: dramatically fewer tuples derived
	// (sub-100 paths are never built).
	if gotStats.TuplesDerived >= wantStats.TuplesDerived/2 {
		t.Fatalf("rewritten program should derive far fewer tuples: %d vs %d",
			gotStats.TuplesDerived, wantStats.TuplesDerived)
	}
}

func TestUnsatisfiableQueryDetected(t *testing.T) {
	// The constraint makes the rule body unsatisfiable: a join of a
	// and b through the same variable.
	p := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		?- q.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatal("query should be unsatisfiable")
	}
	if len(out.Program.RulesFor("q")) != 0 {
		t.Fatalf("unsatisfiable query must have no rules:\n%s", out.Program)
	}
}

func TestRecursiveUnsatisfiability(t *testing.T) {
	// The base case is unsatisfiable, so the whole recursion is empty —
	// visible only by looking across rules (per-rule residues cannot
	// see it... here even the base rule alone is enough, but the
	// recursive rule survives per-rule analysis and must be pruned by
	// the tree's productivity computation).
	p := parser.MustParseProgram(`
		q(X, Y) :- a(X, Z), b(Z, Y).
		q(X, Y) :- c(X, Z), q(Z, Y).
		?- q.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatal("query should be unsatisfiable: the recursion has no consistent base")
	}
}

func TestNegatedICLocal(t *testing.T) {
	// ic: every edge source must be in dom. A rule that requires a
	// source NOT in dom is unsatisfiable after the case split.
	p := parser.MustParseProgram(`
		q(X, Y) :- e(X, Y), !dom(X).
		ok(X, Y) :- e(X, Y).
		?- q.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), !dom(X).`)
	// Wait: the ic says e(X,Y) ∧ ¬dom(X) is forbidden, so the rule q
	// can never fire on a consistent database.
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("q should be unsatisfiable:\n%s", out.Program)
	}
}

func TestNegatedICLocalPositiveSide(t *testing.T) {
	// Same constraint, but the rule requires dom(X): satisfiable.
	p := parser.MustParseProgram(`
		q(X, Y) :- e(X, Y), dom(X).
		?- q.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), !dom(X).`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Fatal("q should be satisfiable")
	}
}

func TestNonLocalNegationWarned(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- e(X, Y).
		?- q.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), !f(Y, Z).`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Warnings) == 0 {
		t.Fatal("non-local negated atom should produce a warning")
	}
	if !out.Satisfiable {
		t.Fatal("skipping the constraint must leave the query satisfiable")
	}
}

func TestNoICsIdentity(t *testing.T) {
	// With no constraints the rewritten program must be equivalent to
	// the original (possibly renamed).
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	out, err := Optimize(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`step(1, 2). step(2, 3). step(3, 1).`))
	want, _, _ := eval.Eval(p, db)
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("path"), got.SortedFacts("path")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
}

func TestMultipleICsCombination(t *testing.T) {
	// Two pure ics interact: no a-after-b and no b-after-a — paths are
	// single-flavor only.
	p := parser.MustParseProgram(figure1Program)
	ics := parser.MustParseICs(`
		:- a(X, Y), b(Y, Z).
		:- b(X, Y), a(Y, Z).
	`)
	out, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`a(1, 2). a(2, 3). b(10, 11). b(11, 12).`))
	want, _, _ := eval.Eval(p, db)
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("p"), got.SortedFacts("p")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
}

func TestStatsPopulated(t *testing.T) {
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	s := out.Tree.Stats()
	if s.GoalNodes == 0 || s.RuleNodes == 0 || s.Roots != 3 || s.LiveRoots != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Adornments < 3 {
		t.Fatalf("expected at least 3 adornments, got %d", s.Adornments)
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	// No query predicate.
	p := parser.MustParseProgram(`q(X) :- e(X).`)
	if _, err := Optimize(p, nil); err == nil {
		t.Fatal("expected missing-query error")
	}
	// IC mentions an IDB predicate.
	p2 := parser.MustParseProgram(`
		q(X) :- e(X).
		?- q.
	`)
	ics := parser.MustParseICs(`:- q(X).`)
	if _, err := Optimize(p2, ics); err == nil {
		t.Fatal("expected IDB-in-ic error")
	}
}

func TestAblationCoreOnly(t *testing.T) {
	// The core algorithm alone (no pre-passes) must still handle the
	// pure Figure 1 example identically.
	out, err := OptimizeWith(parser.MustParseProgram(figure1Program),
		parser.MustParseICs(figure1IC), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var core int
	for _, r := range out.Program.Rules {
		if r.Head.Pred != "p" {
			core++
		}
	}
	if core != 6 {
		t.Fatalf("core-only pipeline: got %d core rules, want 6:\n%s", core, out.Program)
	}
}
