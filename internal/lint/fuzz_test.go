package lint

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/emptiness"
	"repro/internal/parser"
)

// FuzzLint asserts the linter's two contracts on arbitrary inputs: it
// never panics, and its verdicts are deterministic — two runs over the
// same parsed unit produce identical findings (budgets are step
// counts, not wall-clock, so this must hold exactly).
func FuzzLint(f *testing.F) {
	f.Add(`
p(X, Y) :- a(X, Y).
p(X, Y) :- a(X, Z), p(Z, Y).
?- p.
:- a(X, Y), b(Y, Z).
`)
	f.Add(`
p(X) :- a(X, Y), b(Y, X).
q(X) :- p(X).
?- q.
:- a(X, Y), b(Y, Z).
a(1, 2).
`)
	f.Add(`
s(X) :- e(X, Y).
s(X) :- e(X, Y), f(Y, Y).
narrow(X) :- e(X, Y), X > 0, Y < 5.
?- s.
:- e(X, Y), X > Y, !g(X).
:- f(X, Y), X < Z, h(Z, Z).
`)
	f.Add(`q(X) :- a(X).
q(X) :- a(X), a(X).
?- q.
:- a(X), !b(X, X).
:- b(X, Y), X >= Y.`)

	opts := Options{
		Emptiness: emptiness.Options{
			ChaseSteps:        200,
			MaxLinearizations: 500,
		},
		MaxSubsumptionAtoms: 6,
	}
	f.Fuzz(func(t *testing.T, src string) {
		unit, err := parser.Parse(src)
		if err != nil {
			return
		}
		a := Run(context.Background(), unit.Program, unit.ICs, unit.Facts, opts)
		b := Run(context.Background(), unit.Program, unit.ICs, unit.Facts, opts)
		if !reflect.DeepEqual(a.Findings, b.Findings) {
			t.Fatalf("nondeterministic findings for %q:\n%v\nvs\n%v", src, a.Findings, b.Findings)
		}
		if a.Errors+a.Warnings+a.Infos != len(a.Findings) {
			t.Fatalf("severity counts (%d+%d+%d) disagree with findings (%d)",
				a.Errors, a.Warnings, a.Infos, len(a.Findings))
		}
	})
}
