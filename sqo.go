// Package sqo is a semantic query optimizer for datalog programs — a
// from-scratch reproduction of
//
//	Alon Y. Levy and Yehoshua Sagiv,
//	"Semantic Query Optimization in Datalog Programs",
//	PODS 1995.
//
// Given a datalog program (function-free Horn rules with optional
// dense-order comparison atoms and negated EDB subgoals) and a set of
// integrity constraints (rules with empty heads), the optimizer
// rewrites the program so that it completely incorporates the
// constraints: every goal node of every symbolic derivation tree of
// the rewritten program is query reachable on some database satisfying
// the constraints. Sequences of rule applications that the constraints
// doom to emptiness are compiled away, selections implied by the
// constraints are pushed to the earliest point of evaluation, and
// residues of partially-applicable constraints are attached as extra
// comparison filters (Theorems 4.1 and 4.2 of the paper).
//
// The package also exposes the surrounding theory of Section 5:
// query-predicate satisfiability, program emptiness (Proposition 5.2),
// conjunctive-query and program/UCQ containment with both directions
// of the Proposition 5.1 reduction, and the two-counter-machine
// construction behind the Theorem 5.4 undecidability result.
//
// # Quick start
//
//	unit, _ := sqo.Parse(`
//	    path(X, Y) :- step(X, Y).
//	    path(X, Y) :- step(X, Z), path(Z, Y).
//	    goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
//	    ?- goodPath.
//	`)
//	ics, _ := sqo.ParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
//	res, _ := sqo.Optimize(unit.Program, ics)
//	fmt.Println(res.Program) // the rewritten program
//
// See the examples/ directory for complete runnable programs.
package sqo

import (
	"context"
	"fmt"
	"io"

	"repro/internal/ast"
	"repro/internal/bounded"
	"repro/internal/contain"
	"repro/internal/emptiness"
	"repro/internal/eval"
	"repro/internal/incr"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/qtree"
	"repro/internal/residue"
	"repro/internal/tcm"
)

// Program is a datalog program with a distinguished query predicate.
type Program = ast.Program

// Rule is a single Horn rule (also used to represent conjunctive
// queries: head = distinguished variables, body = the conjunction).
type Rule = ast.Rule

// IC is an integrity constraint — a rule with an empty head.
type IC = ast.IC

// Atom is a relational atom.
type Atom = ast.Atom

// Term is a variable or constant.
type Term = ast.Term

// DB is an extensional or intensional database.
type DB = eval.DB

// Stats reports evaluation instrumentation (rounds, rule firings,
// join probes, derived tuples).
type Stats = eval.Stats

// Unit is a parsed source text: program, constraints, and ground facts.
type Unit = parser.Unit

// Result is the outcome of semantic query optimization.
type Result = qtree.Outcome

// Options selects optimizer passes (ablation support); use
// DefaultOptions for the paper's full pipeline.
type Options = qtree.Options

// Machine is a two-counter machine (Theorem 5.4 apparatus).
type Machine = tcm.Machine

// Parse parses a source text containing rules, integrity constraints,
// ground facts, and an optional query declaration, in any order.
func Parse(src string) (*Unit, error) { return parser.Parse(src) }

// ParseProgram parses rules plus an optional query declaration.
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// ParseICs parses integrity constraints.
func ParseICs(src string) ([]IC, error) { return parser.ParseICs(src) }

// ParseFacts parses ground facts.
func ParseFacts(src string) ([]Atom, error) { return parser.ParseFacts(src) }

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(src string) *Program { return parser.MustParseProgram(src) }

// MustParseICs is ParseICs, panicking on error.
func MustParseICs(src string) []IC { return parser.MustParseICs(src) }

// MustParseFacts is ParseFacts, panicking on error.
func MustParseFacts(src string) []Atom { return parser.MustParseFacts(src) }

// DefaultOptions enables the full optimization pipeline.
func DefaultOptions() Options { return qtree.DefaultOptions() }

// Optimize rewrites the program to completely incorporate the
// integrity constraints (the paper's main algorithm: local-atom
// rewriting, selection pushing, bottom-up adornments, top-down query
// tree, pruning, and residue attachment).
func Optimize(p *Program, ics []IC) (*Result, error) {
	return qtree.Optimize(p, ics)
}

// OptimizeWith is Optimize with explicit pass selection.
func OptimizeWith(p *Program, ics []IC, opts Options) (*Result, error) {
	return qtree.OptimizeWith(p, ics, opts)
}

// OptimizeCtx is OptimizeWith under a context: cancellation or
// deadline expiry aborts the rewrite at the next pass boundary and
// returns the context's error.
func OptimizeCtx(ctx context.Context, p *Program, ics []IC, opts Options) (*Result, error) {
	return qtree.OptimizeCtx(ctx, p, ics, opts)
}

// BaselineOptimize applies the per-rule residue method of [CGM88] —
// the prior art the paper improves on; used for comparison.
func BaselineOptimize(p *Program, ics []IC) *Program {
	return residue.Optimize(p, ics)
}

// NewDB returns an empty database.
func NewDB() *DB { return eval.NewDB() }

// NewDBFrom returns a database holding the given ground facts.
func NewDBFrom(facts []Atom) *DB {
	db := eval.NewDB()
	db.AddFacts(facts)
	return db
}

// Eval evaluates the program bottom-up (semi-naive, hash-indexed,
// parallel across one worker per CPU) over the extensional database,
// returning the IDB relations. Results and Stats are deterministic
// regardless of worker count.
func Eval(p *Program, edb *DB) (*DB, *Stats, error) { return eval.Eval(p, edb) }

// EvalOptions configures the evaluation engine: naive vs semi-naive,
// hash indexes, the derived-tuple budget, the worker pool size
// (Workers: 0 = one per CPU, 1 = sequential), plan compilation
// (CompilePlans: interned terms + compiled join plans; see
// DefaultEvalOptions), and the join-order policy (Policy; see
// JoinOrderPolicy).
type EvalOptions = eval.Options

// JoinOrderPolicy selects how the compiled-plan engine orders the
// subgoals of each rule: PolicyGreedy (static, most-bound-first),
// PolicyCost (per-round orders from maintained relation statistics),
// or PolicyAdaptive (cost orders plus run-time adaptivity). Answers,
// derivation counts, and provenance are identical under every policy;
// only join work differs.
type JoinOrderPolicy = eval.JoinOrderPolicy

// Join-order policies accepted by EvalOptions.Policy and
// ViewOptions.Policy.
const (
	PolicyGreedy   = eval.PolicyGreedy
	PolicyCost     = eval.PolicyCost
	PolicyAdaptive = eval.PolicyAdaptive
)

// ParseJoinOrderPolicy parses a policy name ("greedy", "cost",
// "adaptive"; the empty string means greedy), for wiring flags and
// config knobs to EvalOptions.Policy.
func ParseJoinOrderPolicy(s string) (JoinOrderPolicy, error) {
	return eval.ParseJoinOrderPolicy(s)
}

// MagicMode controls the magic-sets demand rewrite applied by
// Query/QueryWith/QueryCtx when the program's query carries a goal
// with bound arguments (written `?- pred(a, Y).`): MagicAuto (the
// default) and MagicOn rewrite such queries for goal-directed
// evaluation, falling back to bottom-up when the rewrite is
// inapplicable; MagicOff always evaluates bottom-up. Answers are
// identical in every mode.
type MagicMode = eval.MagicMode

// Magic modes accepted by EvalOptions.Magic.
const (
	MagicAuto = eval.MagicAuto
	MagicOn   = eval.MagicOn
	MagicOff  = eval.MagicOff
)

// ParseMagicMode parses a magic mode name ("auto", "on", "off"; the
// empty string means auto), for wiring flags and config knobs to
// EvalOptions.Magic.
func ParseMagicMode(s string) (MagicMode, error) {
	return eval.ParseMagicMode(s)
}

// ElimMode controls the bounded-recursion elimination rewrite applied
// by Query/QueryWith/QueryCtx ahead of the magic-sets rewrite:
// ElimAuto (the default) and ElimOn run the boundedness analyzer and,
// for predicates whose recursion is provably bounded, replace the
// fixpoint with the equivalent flat union of conjunctive queries,
// falling back to fixpoint evaluation when no predicate is provably
// bounded; ElimOff skips the analysis entirely. Answers are identical
// in every mode.
type ElimMode = eval.ElimMode

// Elim modes accepted by EvalOptions.Elim.
const (
	ElimAuto = eval.ElimAuto
	ElimOn   = eval.ElimOn
	ElimOff  = eval.ElimOff
)

// ParseElimMode parses an elim mode name ("auto", "on", "off"; the
// empty string means auto), for wiring flags and config knobs to
// EvalOptions.Elim.
func ParseElimMode(s string) (ElimMode, error) {
	return eval.ParseElimMode(s)
}

// ErrNotBounded is returned by EliminateRecursion when no
// self-recursive predicate of the program is provably bounded within
// the analyzer's budgets; test with errors.Is. Query evaluation never
// surfaces it — QueryCtx falls back to the fixpoint silently, exactly
// like an inapplicable magic rewrite.
var ErrNotBounded = bounded.ErrNotBounded

// EliminateRecursion runs the boundedness analyzer on p's
// self-recursive predicates and, for every predicate whose k-fold
// unfolding is contained in its (k-1)-fold unfolding (checked with the
// CQ-containment procedure under the analyzer's default budgets),
// returns an equivalent program with that predicate's fixpoint
// compiled into a flat union of conjunctive queries. The input is not
// mutated. Returns ErrNotBounded when nothing is eliminable — callers
// that want the fallback applied automatically should set
// EvalOptions.Elim instead of calling this directly.
func EliminateRecursion(p *Program) (*Program, error) {
	res, err := bounded.Rewrite(p, bounded.Options{})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// DefaultEvalOptions returns the engine defaults used by Eval:
// semi-naive, hash-indexed, compiled join plans with the greedy
// join-order policy, one worker per CPU. Start from it when overriding
// a single knob so new defaults (like CompilePlans) are picked up
// automatically.
func DefaultEvalOptions() EvalOptions { return eval.DefaultOptions() }

// EvalWith evaluates with explicit engine options.
func EvalWith(p *Program, edb *DB, opts EvalOptions) (*DB, *Stats, error) {
	return eval.EvalWith(p, edb, opts)
}

// EvalCtx is EvalWith under a context: cancellation (or deadline
// expiry) stops the fixpoint promptly — it is checked at every round
// barrier and periodically inside long join scans — returning the
// context's error. Use it to bound per-request evaluation time or to
// stop work when a client disconnects.
func EvalCtx(ctx context.Context, p *Program, edb *DB, opts EvalOptions) (*DB, *Stats, error) {
	return eval.EvalCtx(ctx, p, edb, opts)
}

// ErrBudget is wrapped by evaluation errors caused by exceeding
// EvalOptions.MaxTuples; test with errors.Is to distinguish budget
// exhaustion from cancellation.
var ErrBudget = eval.ErrBudget

// Query evaluates the program and returns the query predicate's tuples.
func Query(p *Program, edb *DB) ([]eval.Tuple, *Stats, error) { return eval.Query(p, edb) }

// QueryWith is Query with explicit engine options.
func QueryWith(p *Program, edb *DB, opts EvalOptions) ([]eval.Tuple, *Stats, error) {
	return eval.QueryWith(p, edb, opts)
}

// QueryCtx is QueryWith under a context; see EvalCtx for the
// cancellation contract.
func QueryCtx(ctx context.Context, p *Program, edb *DB, opts EvalOptions) ([]eval.Tuple, *Stats, error) {
	return eval.QueryCtx(ctx, p, edb, opts)
}

// Satisfiable decides whether the program's query predicate has any
// derivation on a database satisfying the constraints (Theorem 5.1's
// decision procedure, for the decidable constraint classes).
func Satisfiable(p *Program, ics []IC) (bool, error) {
	return contain.ProgramSatisfiable(p, ics)
}

// EmptinessOptions bounds the emptiness decision procedures.
type EmptinessOptions = emptiness.Options

// Empty decides program emptiness via Proposition 5.2 (all
// initialization rules unsatisfiable). decided is false when a chase
// budget was exhausted (the {¬}-constraint cases are only
// semi-decidable, Theorem 5.4).
func Empty(p *Program, ics []IC, opts EmptinessOptions) (empty, decided bool, err error) {
	return emptiness.Empty(p, ics, opts)
}

// CQContained decides containment of pure conjunctive queries by
// containment mapping.
func CQContained(q1, q2 Rule) (bool, error) { return contain.Contained(q1, q2) }

// CQContainedOrder decides CQ containment in the presence of order
// atoms, completely (via linearization case analysis).
func CQContainedOrder(q1, q2 Rule) (bool, error) {
	return contain.ContainedOrderComplete(q1, q2)
}

// ProgramContainedInUCQ decides containment of a datalog program in a
// union of conjunctive queries via the Proposition 5.1 reduction.
func ProgramContainedInUCQ(p *Program, ucq []Rule) (bool, error) {
	return contain.ProgramContainedInUCQ(p, ucq)
}

// EncodeTwoCounter builds the Theorem 5.4 reduction for a two-counter
// machine: a program whose query predicate (halt) is satisfiable with
// respect to the returned constraints iff the machine halts.
func EncodeTwoCounter(m *Machine) (*Program, []IC, error) {
	enc, err := tcm.Encode(m)
	if err != nil {
		return nil, nil, err
	}
	return enc.Program, enc.ICs, nil
}

// TwoCounterTraceDB materializes a bounded run of the machine as a
// concrete database over the encoding's vocabulary; the database
// satisfies the constraints exactly when the trace is a correct
// computation.
func TwoCounterTraceDB(m *Machine, maxSteps int) (facts []Atom, halted bool) {
	trace, h := m.Run(maxSteps)
	return tcm.TraceDB(m, trace), h
}

// Explain renders the optimizer's query forest (Figure 1 of the
// paper) as indented text.
func Explain(res *Result) string {
	if res == nil || res.Tree == nil {
		return "(no query tree)"
	}
	return res.Tree.Print()
}

// FormatProgram renders a program in source syntax including the
// query declaration (with its goal arguments, when present).
func FormatProgram(p *Program) string {
	s := p.String()
	if p.Query != "" {
		s += fmt.Sprintf("?- %s.\n", p.GoalAtom())
	}
	return s
}

// SatisfiabilityAsNonContainment builds the converse Proposition 5.1
// reduction: the query predicate of p is satisfiable w.r.t. ics iff
// the returned program is NOT contained in the returned union of
// conjunctive queries.
func SatisfiabilityAsNonContainment(p *Program, ics []IC) (*Program, []Rule, error) {
	return contain.SatisfiabilityAsNonContainment(p, ics)
}

// Derivation is a ground derivation tree for an answer (the ground
// counterpart of the paper's symbolic derivation trees).
type Derivation = eval.Derivation

// View is an incrementally maintained materialization of a program
// over a mutable extensional database. Build one with Materialize,
// then push fact-level updates through View.Apply; non-recursive
// predicates are maintained by counting, recursive strata by
// delete-rederive (DRed). Answers, derivation counts, and provenance
// stay identical to evaluating the program from scratch on the
// current database.
type View = incr.View

// ViewChanges reports the query-predicate tuples added and removed by
// one View.Apply call.
type ViewChanges = incr.Changes

// ViewOptions configures incremental maintenance (derived-tuple
// budget shared with full rebuilds, and the join-order policy for
// delta passes; see JoinOrderPolicy).
type ViewOptions = incr.Options

// ViewStats reports incremental-maintenance instrumentation.
type ViewStats = incr.Stats

// Materialize evaluates the program once and returns a View that
// maintains the result under fact insertions and retractions.
func Materialize(p *Program, edb *DB, opts ViewOptions) (*View, error) {
	return incr.Materialize(p, edb, opts)
}

// MaterializeCtx is Materialize under a context; the initial fixpoint
// honors the same cancellation contract as EvalCtx.
func MaterializeCtx(ctx context.Context, p *Program, edb *DB, opts ViewOptions) (*View, error) {
	return incr.MaterializeCtx(ctx, p, edb, opts)
}

// EvalProv evaluates the program while recording provenance, and
// returns a function that reconstructs the derivation tree of any
// derived fact.
func EvalProv(p *Program, edb *DB) (*DB, func(Atom) (*Derivation, error), *Stats, error) {
	idb, prov, stats, err := eval.EvalProv(p, edb)
	if err != nil {
		return nil, nil, nil, err
	}
	idbPreds := p.IDB()
	explain := func(fact Atom) (*Derivation, error) {
		return prov.Tree(fact, idbPreds, edb)
	}
	return idb, explain, stats, nil
}

// LintOptions bounds the semantic checks of the static analyzer.
type LintOptions = lint.Options

// LintReport is the structured result of a lint run.
type LintReport = lint.Report

// LintFinding is one diagnostic of a lint run.
type LintFinding = lint.Finding

// Lint runs the semantic static analyzer: unsatisfiable rule bodies,
// empty predicates and dead rules, subsumed rules, undecidability
// guardrails, and hygiene checks. The context bounds the semantic
// checks; cancellation degrades verdicts to Unknown, never to a wrong
// answer.
func Lint(ctx context.Context, p *Program, ics []IC, facts []Atom, opts LintOptions) *LintReport {
	return lint.Run(ctx, p, ics, facts, opts)
}

// WriteLintText renders a lint report in compiler-diagnostic text
// form, prefixing each finding with name when non-empty.
func WriteLintText(w io.Writer, name string, rep *LintReport) error {
	return lint.WriteText(w, name, rep)
}

// WriteLintJSON renders a lint report as deterministic indented JSON.
func WriteLintJSON(w io.Writer, rep *LintReport) error {
	return lint.WriteJSON(w, rep)
}
