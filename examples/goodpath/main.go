// goodpath demonstrates the Section 3 threshold example on a sizable
// workload: two step chains, one entirely below the threshold 100
// that the constraints render irrelevant. The rewritten program pushes
// X >= 100 into the recursive path predicate, so the low chain's
// quadratically many path tuples are never materialized.
//
// Usage: goodpath [lowN] [highN]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	sqo "repro"
	"repro/internal/workload"
)

func main() {
	lowN, highN := 300, 60
	if len(os.Args) > 1 {
		lowN, _ = strconv.Atoi(os.Args[1])
	}
	if len(os.Args) > 2 {
		highN, _ = strconv.Atoi(os.Args[2])
	}

	program := sqo.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := sqo.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)

	res, err := sqo.Optimize(program, ics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== rewritten program ==")
	fmt.Print(sqo.FormatProgram(res.Program))

	db := sqo.NewDBFrom(workload.GoodPath(lowN, 100, highN))

	run := func(name string, p *sqo.Program) {
		start := time.Now()
		tuples, stats, err := sqo.Query(p, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s answers=%d derived=%d probes=%d time=%v\n",
			name, len(tuples), stats.TuplesDerived, stats.JoinProbes, time.Since(start).Round(time.Microsecond))
	}
	fmt.Printf("\n== evaluation (lowN=%d highN=%d) ==\n", lowN, highN)
	run("original", program)
	run("optimized", res.Program)
}
