// Package server implements sqod, the long-running semantic query
// optimization service: HTTP/JSON endpoints to register fact datasets,
// submit programs with integrity constraints, and run optimized
// queries. The Levy–Sagiv rewrite is an ahead-of-time transformation
// whose cost amortizes over every query served against it, so the
// server keeps an LRU cache of optimized programs (keyed by a
// canonical hash of program + constraints + options, with singleflight
// deduplication), bounds concurrent evaluations with fast 429s,
// cancels the fixpoint when a request times out or its client
// disconnects, and exposes live counters at /metrics.
//
// Datasets are mutable (fact-level insert/retract endpoints, replace
// via PUT), and materialized views attached to a dataset survive
// those updates: each mutation is pushed through sqo.View.Apply,
// which maintains the answers incrementally (counting / DRed) under
// the same admission control and a per-update deadline.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	sqo "repro"
	"repro/internal/store"
)

// Config tunes the server; the zero value is usable (see defaults in
// New).
type Config struct {
	// MaxInflight bounds concurrently running evaluations; requests
	// beyond the bound are rejected immediately with 429 rather than
	// queued behind work that may never finish in time. Default:
	// 2×GOMAXPROCS.
	MaxInflight int
	// CacheSize bounds the optimized-program LRU cache. Default: 128.
	CacheSize int
	// DefaultTimeout applies to queries that set no timeout_ms.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default: 5m.
	MaxTimeout time.Duration
	// UpdateTimeout bounds one dataset mutation end to end, including
	// incremental maintenance of every attached view. Default:
	// DefaultTimeout.
	UpdateTimeout time.Duration
	// MaxTuples is the per-query derived-tuple budget (0 = unlimited).
	MaxTuples int64
	// Workers is the evaluation worker-pool size (0 = one per CPU).
	Workers int
	// JoinOrder is the default join-order policy for evaluations and
	// views: "greedy" (or empty), "cost", or "adaptive". Queries can
	// override it per request with join_order. Invalid names fall back
	// to greedy with a logged warning rather than refusing to start.
	JoinOrder string
	// MaxBodyBytes bounds request bodies. Default: 8 MiB.
	MaxBodyBytes int64
	// EnablePprof registers net/http/pprof handlers under /debug/pprof/
	// on the server's mux. The profiles expose internals (goroutine
	// stacks, heap contents), so only enable it where the listen
	// address is trusted.
	EnablePprof bool
	// Logger receives structured request logs; default slog.Default().
	Logger *slog.Logger
	// Store, when set, makes the mutable-dataset surface durable: every
	// dataset/fact/view mutation is appended to its write-ahead log
	// before the request is acknowledged. Nil (the default) keeps
	// today's purely in-memory behavior.
	Store *store.Store
	// Recovered carries the state Store reconstructed at open; New
	// replays it — checkpoint base first, then the WAL tail through the
	// incremental view-maintenance path — before serving.
	Recovered *store.Recovered
	// AsyncRestore runs the Recovered replay in the background instead
	// of blocking New. Until it completes, /readyz reports 503 and every
	// dataset-touching endpoint fails fast with code "not_ready" —
	// /healthz stays pure liveness so orchestrators don't kill a node
	// for the crime of recovering a large WAL. Cluster coordinators use
	// /readyz to exclude still-restoring workers from placement.
	AsyncRestore bool
}

// Server is the sqod service. Create with New, expose via Handler.
type Server struct {
	cfg     Config
	log     *slog.Logger
	metrics *Metrics
	cache   *Cache
	sem     chan struct{} // admission-control semaphore
	policy  sqo.JoinOrderPolicy
	store   *store.Store // nil when running in-memory
	ready   atomic.Bool  // false until durable-state restore completes

	datasets *datasetStore
}

// New returns a configured server.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	policy, err := sqo.ParseJoinOrderPolicy(cfg.JoinOrder)
	if err != nil {
		cfg.Logger.Warn("invalid join-order policy; falling back to greedy",
			"join_order", cfg.JoinOrder, "err", err)
		policy = sqo.PolicyGreedy
	}
	m := NewMetrics()
	c := NewCache(cfg.CacheSize)
	c.metrics = m
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		metrics:  m,
		cache:    c,
		sem:      make(chan struct{}, cfg.MaxInflight),
		policy:   policy,
		store:    cfg.Store,
		datasets: newDatasetStore(m),
	}
	if s.store != nil {
		m.StoreStats = func() (int64, int64, int64) {
			c := s.store.Counters()
			return c.Appends, c.Bytes, c.Checkpoints
		}
		if cfg.Recovered != nil {
			if cfg.AsyncRestore {
				go func() {
					s.restore(cfg.Recovered)
					s.ready.Store(true)
				}()
				return s
			}
			s.restore(cfg.Recovered)
		}
	}
	s.ready.Store(true)
	return s
}

// Ready reports whether durable-state restore has completed (always
// true without a store or with synchronous restore).
func (s *Server) Ready() bool { return s.ready.Load() }

// Metrics exposes the server's registry (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the optimized-program cache (for tests and embedding).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the server's routed HTTP handler with request
// logging and latency instrumentation applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.instrument("metrics", s.metrics.ServeHTTP))
	mux.Handle("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		// Pure liveness: true as long as the process serves HTTP, even
		// mid-restore. Readiness is /readyz.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.Handle("GET /readyz", s.instrument("readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "restoring")
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	mux.Handle("PUT /v1/datasets/{name}", s.gated("dataset_put", s.handleDatasetPut))
	mux.Handle("POST /v1/datasets/{name}", s.gated("dataset_post", s.handleDatasetPost))
	mux.Handle("DELETE /v1/datasets/{name}", s.gated("dataset_delete", s.handleDatasetDelete))
	mux.Handle("GET /v1/datasets", s.gated("dataset_list", s.handleDatasetList))
	mux.Handle("POST /v1/datasets/{name}/facts", s.gated("facts_add", s.handleFactsAdd))
	mux.Handle("DELETE /v1/datasets/{name}/facts", s.gated("facts_delete", s.handleFactsDelete))
	mux.Handle("POST /v1/datasets/{name}/views/{view}", s.gated("view_create", s.handleViewCreate))
	mux.Handle("GET /v1/datasets/{name}/views/{view}", s.gated("view_get", s.handleViewGet))
	mux.Handle("DELETE /v1/datasets/{name}/views/{view}", s.gated("view_delete", s.handleViewDelete))
	mux.Handle("POST /v1/optimize", s.instrument("optimize", s.handleOptimize))
	mux.Handle("POST /v1/lint", s.instrument("lint", s.handleLint))
	mux.Handle("POST /v1/query", s.gated("query", s.handleQuery))
	if s.cfg.EnablePprof {
		// net/http/pprof only self-registers on http.DefaultServeMux;
		// a custom mux needs the handlers wired explicitly.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// gated wraps a dataset-touching handler so it fails fast with 503
// "not_ready" while an asynchronous restore is still replaying durable
// state — serving a partial dataset would silently return wrong
// answers. Pure-compute endpoints (optimize, lint) stay ungated.
func (s *Server) gated(endpoint string, h http.HandlerFunc) http.Handler {
	return s.instrument(endpoint, func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, "not_ready",
				"server is restoring durable state; retry shortly")
			return
		}
		h(w, r)
	})
}

// instrument wraps a handler with body limiting, latency observation,
// and one structured log line per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		s.metrics.ObserveRequest(endpoint, sw.code, elapsed)
		s.log.Info("request",
			"endpoint", endpoint,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"dur_ms", float64(elapsed.Microseconds())/1000,
			"bytes", sw.bytes,
			"remote", r.RemoteAddr,
		)
	})
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// admit reserves an evaluation slot, or reports failure immediately
// (fast 429) when MaxInflight slots are taken. The caller must invoke
// the returned release exactly once on success.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		s.metrics.InflightEvals.Add(1)
		return func() {
			s.metrics.InflightEvals.Add(-1)
			<-s.sem
		}, true
	default:
		s.metrics.AdmissionRejections.Add(1)
		return nil, false
	}
}

// --- datasets ---------------------------------------------------------

// handleDatasetPut registers or replaces a named dataset. The body is
// datalog ground facts in source syntax. Replacing a live dataset is
// expressed as the add/retract batch that turns the old fact set into
// the new one, so attached materialized views survive a PUT and are
// maintained incrementally through it.
func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "dataset name missing")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	facts, err := sqo.ParseFacts(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", "parsing facts: %v", err)
		return
	}
	ds, created, err := s.datasets.create(name, facts, time.Now(), s.persistCreate(name, facts))
	if err != nil {
		s.writeStoreError(w, "create", name, err)
		return
	}
	if created {
		writeJSON(w, http.StatusOK, ds.describe())
		return
	}
	ds.mu.Lock()
	adds, dels := ds.diffLocked(facts)
	ds.mu.Unlock()
	s.updateDataset(w, r, ds, adds, dels)
}

// persistCreate returns the WAL-append callback for a dataset create,
// or nil when the server runs in-memory.
func (s *Server) persistCreate(name string, facts []sqo.Atom) func() error {
	if s.store == nil {
		return nil
	}
	return func() error { return s.store.AppendDatasetCreate(name, facts) }
}

// writeStoreError reports a failed write-ahead append. The mutation
// was NOT applied — durability is part of the acknowledgment contract,
// so a store failure fails the request.
func (s *Server) writeStoreError(w http.ResponseWriter, op, name string, err error) {
	s.log.Error("wal append failed", "op", op, "name", name, "err", err)
	writeError(w, http.StatusInternalServerError, "store_error", "durable %s failed: %v", op, err)
}

// handleDatasetPost registers a new dataset, answering 409 when the
// name is already taken (PUT is the create-or-replace form).
func (s *Server) handleDatasetPost(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "dataset name missing")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	facts, err := sqo.ParseFacts(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", "parsing facts: %v", err)
		return
	}
	ds, created, err := s.datasets.create(name, facts, time.Now(), s.persistCreate(name, facts))
	if err != nil {
		s.writeStoreError(w, "create", name, err)
		return
	}
	if !created {
		writeError(w, http.StatusConflict, "dataset_exists", "dataset %q is already registered (PUT replaces)", name)
		return
	}
	writeJSON(w, http.StatusOK, ds.describe())
}

// handleDatasetList lists registered datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.datasets.list())
}

// --- optimize ---------------------------------------------------------

type optimizeRequest struct {
	// Program is datalog source: rules plus a '?- pred.' declaration.
	Program string `json:"program"`
	// ICs are integrity constraints in source syntax (':- body.').
	ICs string `json:"ics,omitempty"`
}

type optimizeResponse struct {
	Program     string   `json:"program"`
	Satisfiable bool     `json:"satisfiable"`
	Explain     string   `json:"explain,omitempty"`
	Warnings    []string `json:"warnings,omitempty"`
	// Diagnostics carries the semantic linter's findings on the
	// program as submitted (advisory; POST /v1/lint for the full
	// report form).
	Diagnostics []sqo.LintFinding `json:"diagnostics,omitempty"`
	CacheHit    bool              `json:"cache_hit"`
	OptimizeMS  float64           `json:"optimize_ms"`
}

// optimizeCached parses, hashes, and rewrites through the cache.
func (s *Server) optimizeCached(ctx context.Context, programSrc, icsSrc string) (*sqo.Result, bool, error) {
	prog, err := sqo.ParseProgram(programSrc)
	if err != nil {
		return nil, false, &requestError{status: http.StatusBadRequest, code: "parse_error", msg: fmt.Sprintf("parsing program: %v", err)}
	}
	if prog.Query == "" {
		return nil, false, &requestError{status: http.StatusBadRequest, code: "bad_request", msg: "program has no query declaration ('?- pred.')"}
	}
	ics, err := sqo.ParseICs(icsSrc)
	if err != nil {
		return nil, false, &requestError{status: http.StatusBadRequest, code: "parse_error", msg: fmt.Sprintf("parsing ics: %v", err)}
	}
	opts := sqo.DefaultOptions()
	key := CacheKey(prog, ics, opts)
	res, hit, err := s.cache.GetOrCompute(ctx, key, func() (*sqo.Result, error) {
		return sqo.OptimizeCtx(ctx, prog, ics, opts)
	})
	if err != nil {
		if ctxErr := classifyCtxErr(err); ctxErr != nil {
			return nil, hit, ctxErr
		}
		return nil, hit, &requestError{status: http.StatusUnprocessableEntity, code: "optimize_error", msg: err.Error()}
	}
	return res, hit, nil
}

// requestError carries an HTTP status through the handler helpers.
type requestError struct {
	status int
	code   string
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func classifyCtxErr(err error) *requestError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &requestError{status: http.StatusGatewayTimeout, code: "timeout", msg: "deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &requestError{status: 499, code: "canceled", msg: "request canceled"}
	}
	return nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON: %v", err)
		return
	}
	release, ok := s.admit()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", "too many in-flight requests (limit %d)", s.cfg.MaxInflight)
		return
	}
	defer release()

	start := time.Now()
	res, hit, err := s.optimizeCached(r.Context(), req.Program, req.ICs)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, optimizeResponse{
		Program:     sqo.FormatProgram(res.Program),
		Satisfiable: res.Satisfiable,
		Explain:     sqo.Explain(res),
		Warnings:    res.Warnings,
		Diagnostics: s.lintDiagnostics(r.Context(), req.Program, req.ICs),
		CacheHit:    hit,
		OptimizeMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	var re *requestError
	if errors.As(err, &re) {
		switch re.code {
		case "timeout":
			s.metrics.QueryTimeouts.Add(1)
		case "canceled":
			s.metrics.QueryCancels.Add(1)
		}
		writeError(w, re.status, re.code, "%s", re.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", "%v", err)
}

// --- query ------------------------------------------------------------

type queryRequest struct {
	// Program is datalog source: rules plus a '?- pred.' declaration.
	Program string `json:"program"`
	// ICs are integrity constraints in source syntax.
	ICs string `json:"ics,omitempty"`
	// Dataset names a registered dataset to evaluate against.
	Dataset string `json:"dataset,omitempty"`
	// Facts are additional inline ground facts (source syntax); they
	// are combined with the dataset when both are present.
	Facts string `json:"facts,omitempty"`
	// TimeoutMS bounds evaluation wall-clock (0 → server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Optimize selects whether to run the Levy–Sagiv rewrite before
	// evaluating (default true; false evaluates the program as sent,
	// for A/B measurements).
	Optimize *bool `json:"optimize,omitempty"`
	// Workers overrides the evaluation pool size (0 → server default).
	Workers int `json:"workers,omitempty"`
	// MaxTuples overrides the derived-tuple budget (0 → server
	// default).
	MaxTuples int64 `json:"max_tuples,omitempty"`
	// IncludeRoundDeltas opts into per-round delta sizes in the
	// response (round → relation → tuples derived that round).
	IncludeRoundDeltas bool `json:"include_round_deltas,omitempty"`
	// JoinOrder overrides the server's join-order policy for this
	// query: "greedy", "cost", or "adaptive" (empty → server default).
	// Answers are identical under every policy; only join work differs.
	JoinOrder string `json:"join_order,omitempty"`
	// Magic controls the magic-sets demand rewrite for goal queries
	// (`?- pred(a, Y).`): "auto" (the default — rewrite when the goal
	// binds an argument), "on", or "off". Answers are identical in
	// every mode; only the portion of the fixpoint computed differs.
	Magic string `json:"magic,omitempty"`
	// Elim controls bounded-recursion elimination: "auto" (the default
	// — compile provably bounded fixpoints into flat joins), "on", or
	// "off". Answers are identical in every mode; only the evaluation
	// strategy differs. The boundedness verdict is cached alongside
	// the rewrite cache, keyed by program and goal.
	Elim string `json:"elim,omitempty"`
}

type queryStats struct {
	Rounds        int   `json:"rounds"`
	TuplesDerived int64 `json:"tuples_derived"`
	RuleFirings   int64 `json:"rule_firings"`
	JoinProbes    int64 `json:"join_probes"`
}

type queryResponse struct {
	Query       string   `json:"query"`
	Answers     []string `json:"answers"`
	AnswerCount int      `json:"answer_count"`
	Satisfiable bool     `json:"satisfiable"`
	Optimized   bool     `json:"optimized"`
	CacheHit    bool     `json:"cache_hit"`
	JoinOrder   string   `json:"join_order"`
	// Magic reports whether this evaluation went through the
	// magic-sets demand rewrite (false for unbound or absent goals,
	// magic "off", or rewrite fallback).
	Magic bool `json:"magic"`
	// Elim reports whether this evaluation went through the
	// bounded-recursion elimination rewrite (false when no predicate
	// is provably bounded, or elim "off").
	Elim  bool       `json:"elim"`
	Stats queryStats `json:"stats"`
	// RoundDeltas is present only when the request set
	// include_round_deltas: element i maps relation → tuples newly
	// derived in fixpoint round i (relations with no new tuples are
	// omitted; a fixpoint-detection round is an empty object).
	RoundDeltas []map[string]int64 `json:"round_deltas,omitempty"`
	OptimizeMS  float64            `json:"optimize_ms"`
	EvalMS      float64            `json:"eval_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON: %v", err)
		return
	}
	if req.Dataset == "" && req.Facts == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "one of dataset or facts is required")
		return
	}
	policy := s.policy
	if req.JoinOrder != "" {
		p, err := sqo.ParseJoinOrderPolicy(req.JoinOrder)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		policy = p
	}
	magicMode, err := sqo.ParseMagicMode(req.Magic)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	elimMode, err := sqo.ParseElimMode(req.Elim)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	// Resolve the database before admission: cheap, and 404s should
	// not consume evaluation slots.
	var db *sqo.DB
	if req.Dataset != "" {
		ds, ok := s.datasets.get(req.Dataset)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", req.Dataset)
			return
		}
		db = ds.snapshot()
	}
	if req.Facts != "" {
		facts, err := sqo.ParseFacts(req.Facts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse_error", "parsing facts: %v", err)
			return
		}
		if db == nil {
			db = sqo.NewDBFrom(facts)
		} else {
			// Copy-on-extend: registered datasets are shared across
			// requests and must not observe per-request facts.
			db = db.Clone()
			db.AddFacts(facts)
		}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	release, ok := s.admit()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", "too many in-flight requests (limit %d)", s.cfg.MaxInflight)
		return
	}
	defer release()

	// The request context is the root: client disconnects propagate
	// into the fixpoint. The timeout rides on top of it.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	doOptimize := req.Optimize == nil || *req.Optimize
	var (
		prog        *sqo.Program
		cacheHit    bool
		satisfiable = true
		optimizeMS  float64
	)
	if doOptimize {
		optStart := time.Now()
		res, hit, err := s.optimizeCached(ctx, req.Program, req.ICs)
		if err != nil {
			s.writeRequestError(w, err)
			return
		}
		optimizeMS = float64(time.Since(optStart).Microseconds()) / 1000
		prog, cacheHit, satisfiable = res.Program, hit, res.Satisfiable
	} else {
		p, err := sqo.ParseProgram(req.Program)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse_error", "parsing program: %v", err)
			return
		}
		if p.Query == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "program has no query declaration ('?- pred.')")
			return
		}
		prog = p
	}

	// Pre-apply bounded-recursion elimination through the rewrite
	// cache: the boundedness analysis is pure static work keyed by the
	// (possibly optimized) program and its goal, so concurrent
	// identical queries share one analysis and repeats hit the LRU. A
	// negative verdict is cached too, as an entry with a nil Program —
	// ErrNotBounded is an outcome here, not an error.
	elimApplied := false
	if elimMode != sqo.ElimOff {
		key := "elim\x00" + CacheKey(prog, nil, sqo.Options{})
		res, _, err := s.cache.GetOrCompute(ctx, key, func() (*sqo.Result, error) {
			rewritten, err := sqo.EliminateRecursion(prog)
			if errors.Is(err, sqo.ErrNotBounded) {
				return &sqo.Result{}, nil
			}
			if err != nil {
				return nil, err
			}
			return &sqo.Result{Program: rewritten, Satisfiable: true}, nil
		})
		if err != nil {
			if ctxErr := classifyCtxErr(err); ctxErr != nil {
				s.writeRequestError(w, ctxErr)
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "eval_error", "%v", err)
			return
		}
		if res.Program != nil {
			prog = res.Program
			elimApplied = true
		}
	}

	evalOpts := sqo.DefaultEvalOptions()
	evalOpts.Workers = s.cfg.Workers
	evalOpts.MaxTuples = s.cfg.MaxTuples
	evalOpts.Policy = policy
	evalOpts.Magic = magicMode
	// Elimination already ran (or was declined) above; keep QueryCtx
	// from re-running the analysis per request.
	evalOpts.Elim = sqo.ElimOff
	if req.Workers > 0 {
		evalOpts.Workers = req.Workers
	}
	if req.MaxTuples > 0 {
		evalOpts.MaxTuples = req.MaxTuples
	}

	evalStart := time.Now()
	tuples, stats, err := sqo.QueryCtx(ctx, prog, db, evalOpts)
	evalMS := float64(time.Since(evalStart).Microseconds()) / 1000
	if err != nil {
		if ctxErr := classifyCtxErr(err); ctxErr != nil {
			s.writeRequestError(w, ctxErr)
			return
		}
		if errors.Is(err, sqo.ErrBudget) {
			s.metrics.QueryBudgets.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "budget_exceeded", "%v", err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "eval_error", "%v", err)
		return
	}
	s.metrics.AddStats(stats.Iterations, stats.TuplesDerived, stats.RuleFirings, stats.JoinProbes)
	s.metrics.AddPolicy(policy)
	if stats.MagicApplied {
		s.metrics.EvalMagic.Add(1)
	}
	if elimApplied {
		s.metrics.EvalElim.Add(1)
	}

	answers := make([]string, len(tuples))
	for i, t := range tuples {
		answers[i] = t.String()
	}
	sort.Strings(answers)
	resp := queryResponse{
		Query:       prog.Query,
		Answers:     answers,
		AnswerCount: len(answers),
		Satisfiable: satisfiable,
		Optimized:   doOptimize,
		CacheHit:    cacheHit,
		JoinOrder:   string(policy),
		Magic:       stats.MagicApplied,
		Elim:        elimApplied,
		Stats: queryStats{
			Rounds:        stats.Iterations,
			TuplesDerived: stats.TuplesDerived,
			RuleFirings:   stats.RuleFirings,
			JoinProbes:    stats.JoinProbes,
		},
		OptimizeMS: optimizeMS,
		EvalMS:     evalMS,
	}
	if req.IncludeRoundDeltas {
		resp.RoundDeltas = stats.RoundDeltas
	}
	writeJSON(w, http.StatusOK, resp)
}
