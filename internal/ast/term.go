// Package ast defines the abstract syntax of datalog programs with
// dense-order comparison atoms, negated EDB subgoals, and integrity
// constraints (rules with empty heads), exactly as used in
// Levy & Sagiv, "Semantic Query Optimization in Datalog Programs"
// (PODS 1995).
//
// The package also provides the structural operations the optimizer is
// built on: variable collection, substitution application, renaming
// apart, canonical forms, and atom isomorphism.
package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of terms.
type TermKind uint8

const (
	// Var is a datalog variable (written with a leading upper-case
	// letter or underscore, e.g. X, Y1, _Tmp).
	Var TermKind = iota
	// Num is a numeric constant drawn from the dense order.
	Num
	// Str is a symbolic (string) constant.
	Str
)

// Term is a variable or a constant. Terms are small values and are
// passed by value throughout.
type Term struct {
	Kind TermKind
	// Name holds the variable name (Kind == Var) or the string
	// constant (Kind == Str).
	Name string
	// Val holds the numeric constant when Kind == Num.
	Val float64
}

// V returns a variable term with the given name.
func V(name string) Term { return Term{Kind: Var, Name: name} }

// N returns a numeric constant term.
func N(v float64) Term { return Term{Kind: Num, Val: v} }

// S returns a string constant term.
func S(s string) Term { return Term{Kind: Str, Name: s} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// IsConst reports whether t is a constant (numeric or string).
func (t Term) IsConst() bool { return t.Kind != Var }

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case Num:
		return t.Val == u.Val
	default:
		return t.Name == u.Name
	}
}

// Compare totally orders constant terms: numeric constants order
// numerically and precede all string constants, which order
// lexicographically. Compare panics if either term is a variable.
// The induced order is dense-enough for the solver's purposes: between
// any two distinct numeric constants another constant exists, and the
// order has no greatest element.
func (t Term) Compare(u Term) int {
	if t.IsVar() || u.IsVar() {
		panic("ast: Compare called on a variable term")
	}
	if t.Kind == Num && u.Kind == Num {
		switch {
		case t.Val < u.Val:
			return -1
		case t.Val > u.Val:
			return 1
		default:
			return 0
		}
	}
	if t.Kind == Num {
		return -1 // all numbers precede all strings
	}
	if u.Kind == Num {
		return 1
	}
	return strings.Compare(t.Name, u.Name)
}

// Key returns a compact string key unique to the term, suitable for
// use as a map key alongside terms of all kinds.
func (t Term) Key() string {
	switch t.Kind {
	case Var:
		return "?" + t.Name
	case Num:
		return "#" + strconv.FormatFloat(t.Val, 'g', -1, 64)
	default:
		return "$" + t.Name
	}
}

// String renders the term in source syntax.
func (t Term) String() string {
	switch t.Kind {
	case Var:
		return t.Name
	case Num:
		return strconv.FormatFloat(t.Val, 'g', -1, 64)
	default:
		if needsQuote(t.Name) {
			return fmt.Sprintf("%q", t.Name)
		}
		return t.Name
	}
}

// needsQuote reports whether a string constant cannot be written as a
// bare lower-case identifier.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z', r == '_':
			if i == 0 {
				return true // would parse as a variable
			}
		case r >= '0' && r <= '9':
			if i == 0 {
				return true
			}
		default:
			return true
		}
	}
	return false
}
