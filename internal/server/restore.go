package server

import (
	"context"
	"time"

	sqo "repro"
	"repro/internal/store"
)

// restore rebuilds the mutable-dataset surface from recovered store
// state: the checkpoint base first (datasets created whole, views
// re-materialized once from their stored sources), then the WAL tail
// in log order — fact batches flow through the same updateLocked path
// live mutations use, so every view registered by the time a batch
// replays is repaired incrementally (counting / delete-rederive)
// rather than re-evaluated from scratch. Runs inside New, before the
// handler serves, with no deadline: recovery must finish, not race a
// timer. Nothing here appends to the WAL — the store already holds
// these operations.
func (s *Server) restore(rec *store.Recovered) {
	start := time.Now()
	ctx := context.Background()
	views := 0
	for _, snap := range rec.Datasets {
		ds, _, _ := s.datasets.create(snap.Name, snap.Facts, start, nil)
		for _, def := range snap.Views {
			if s.restoreView(ctx, ds, def) {
				views++
			}
		}
	}
	for _, op := range rec.Tail {
		switch op.Kind {
		case store.OpDatasetCreate:
			s.datasets.create(op.Dataset, op.Adds, time.Now(), nil)
		case store.OpDatasetDelete:
			if ds, ok, _ := s.datasets.delete(op.Dataset, nil); ok {
				ds.mu.Lock()
				n := len(ds.views)
				ds.views = map[string]*matView{}
				ds.mu.Unlock()
				s.metrics.Views.Add(int64(-n))
			}
		case store.OpFacts:
			if ds, ok := s.datasets.get(op.Dataset); ok {
				ds.mu.Lock()
				ds.updateLocked(ctx, op.Adds, op.Dels, time.Now())
				ds.mu.Unlock()
			}
		case store.OpViewRegister:
			if ds, ok := s.datasets.get(op.Dataset); ok {
				if s.restoreView(ctx, ds, op.View) {
					views++
				}
			}
		case store.OpViewDrop:
			if ds, ok := s.datasets.get(op.Dataset); ok {
				ds.mu.Lock()
				if _, exists := ds.views[op.View.Name]; exists {
					delete(ds.views, op.View.Name)
					s.metrics.Views.Add(-1)
					views--
				}
				ds.mu.Unlock()
			}
		}
	}
	s.log.Info("store recovery complete",
		"datasets", len(s.datasets.list()),
		"views", views,
		"wal_records", rec.WALRecords,
		"wal_bytes", rec.WALBytes,
		"wal_truncated", rec.Truncated,
		"open_ms", float64(rec.Elapsed.Microseconds())/1000,
		"restore_ms", float64(time.Since(start).Microseconds())/1000,
	)
	s.metrics.RecoverySeconds = (rec.Elapsed + time.Since(start)).Seconds()
}

// restoreView re-materializes one durable view definition over the
// dataset's current snapshot. Failures (a program that no longer
// optimizes, a budget blown by grown data) are logged and skipped —
// the definition stays in the store, so a later restart retries — and
// must not take the server down with them.
func (s *Server) restoreView(ctx context.Context, ds *dataset, def store.ViewDef) bool {
	var prog *sqo.Program
	if def.Optimized {
		res, _, err := s.optimizeCached(ctx, def.Program, def.ICs)
		if err != nil {
			s.log.Warn("restoring view: optimize failed", "dataset", ds.name, "view", def.Name, "err", err)
			return false
		}
		prog = res.Program
	} else {
		p, err := sqo.ParseProgram(def.Program)
		if err != nil || p.Query == "" {
			s.log.Warn("restoring view: parse failed", "dataset", ds.name, "view", def.Name, "err", err)
			return false
		}
		prog = p
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if _, exists := ds.views[def.Name]; exists {
		return false
	}
	view, err := sqo.MaterializeCtx(ctx, prog, ds.db, sqo.ViewOptions{MaxTuples: s.cfg.MaxTuples, Policy: s.policy})
	if err != nil {
		s.log.Warn("restoring view: materialize failed", "dataset", ds.name, "view", def.Name, "err", err)
		return false
	}
	ds.views[def.Name] = &matView{name: def.Name, program: prog, optimized: def.Optimized, view: view, createdAt: time.Now()}
	s.metrics.Views.Add(1)
	return true
}
