package ast

import "strings"

// CmpOp is one of the six dense-order comparison predicates.
type CmpOp uint8

const (
	LT CmpOp = iota // <
	LE              // <=
	GT              // >
	GE              // >=
	EQ              // =
	NE              // !=
)

// String renders the operator in source syntax.
func (op CmpOp) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "!="
	}
}

// Negate returns the complementary operator over a total dense order:
// ¬(x < y) ⇔ x >= y, ¬(x = y) ⇔ x != y, and so on.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case EQ:
		return NE
	default:
		return EQ
	}
}

// Flip returns the operator with its operands swapped:
// x < y ⇔ y > x, x = y ⇔ y = x.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op // EQ and NE are symmetric
	}
}

// Cmp is an order atom γ θ δ where γ and δ are terms (variables or
// constants) and θ is a comparison predicate over a dense total order.
type Cmp struct {
	Op          CmpOp
	Left, Right Term
}

// NewCmp builds an order atom.
func NewCmp(l Term, op CmpOp, r Term) Cmp { return Cmp{Op: op, Left: l, Right: r} }

// Negate returns the complementary order atom.
func (c Cmp) Negate() Cmp { return Cmp{Op: c.Op.Negate(), Left: c.Left, Right: c.Right} }

// Flip returns the same constraint with operands swapped.
func (c Cmp) Flip() Cmp { return Cmp{Op: c.Op.Flip(), Left: c.Right, Right: c.Left} }

// Vars appends the variables of c to dst (no duplicates) and returns dst.
func (c Cmp) Vars(dst []string) []string {
	if c.Left.IsVar() && !containsStr(dst, c.Left.Name) {
		dst = append(dst, c.Left.Name)
	}
	if c.Right.IsVar() && !containsStr(dst, c.Right.Name) {
		dst = append(dst, c.Right.Name)
	}
	return dst
}

// Equal reports structural equality.
func (c Cmp) Equal(d Cmp) bool {
	return c.Op == d.Op && c.Left.Equal(d.Left) && c.Right.Equal(d.Right)
}

// Eval evaluates the comparison on two constant terms. It panics if
// either side is a variable.
func (c Cmp) Eval() bool {
	cmp := c.Left.Compare(c.Right)
	switch c.Op {
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	case EQ:
		return cmp == 0
	default:
		return cmp != 0
	}
}

// Key returns a canonical key for the comparison. The key normalizes
// operand order for the symmetric operators and orients < / <= left to
// right, so x > y and y < x share a key.
func (c Cmp) Key() string {
	n := c.normalize()
	var b strings.Builder
	b.WriteString(n.Left.Key())
	b.WriteString(n.Op.String())
	b.WriteString(n.Right.Key())
	return b.String()
}

// normalize orients the comparison: GT/GE become LT/LE with flipped
// operands, and symmetric operators order operands by Key.
func (c Cmp) normalize() Cmp {
	switch c.Op {
	case GT, GE:
		return c.Flip()
	case EQ, NE:
		if c.Left.Key() > c.Right.Key() {
			return c.Flip()
		}
	}
	return c
}

// String renders the order atom in source syntax.
func (c Cmp) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// CmpsKey returns a canonical order-insensitive key for a set of order
// atoms.
func CmpsKey(cs []Cmp) string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = c.Key()
	}
	sortStrings(keys)
	return strings.Join(keys, ";")
}

func sortStrings(xs []string) {
	// insertion sort: the slices involved are tiny and this avoids an
	// extra import in this file.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
