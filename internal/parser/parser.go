package parser

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
)

// Unit is the result of parsing a source text: a program, its
// integrity constraints, ground EDB facts, and the declared query
// predicate (empty if no ?- declaration appeared).
type Unit struct {
	Program *ast.Program
	ICs     []ast.IC
	Facts   []ast.Atom
}

// Parse parses a complete source text.
func Parse(src string) (*Unit, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.bump(); err != nil {
		return nil, err
	}
	unit := &Unit{Program: &ast.Program{}}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokImplies:
			ic, err := p.parseIC()
			if err != nil {
				return nil, err
			}
			unit.ICs = append(unit.ICs, ic)
		case tokQuery:
			if err := p.bump(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.expected("query predicate name")
			}
			name := p.tok.text
			at := ast.At(p.tok.line, p.tok.col)
			if err := p.bump(); err != nil {
				return nil, err
			}
			unit.Program.Query = name
			unit.Program.Goal = nil
			if p.tok.kind == tokLParen {
				// `?- pred(t1, ..., tn).` — a goal with argument terms;
				// constants are selections the evaluator (and the
				// magic-sets rewrite) exploits.
				goal, err := p.parseAtomArgs(name, at)
				if err != nil {
					return nil, err
				}
				unit.Program.Goal = goal.Args
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
		case tokIdent:
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			if len(r.Pos)+len(r.Neg)+len(r.Cmp) == 0 {
				// A bodiless rule is a ground fact.
				if !r.Head.Ground() {
					return nil, &Error{Line: p.tok.line, Col: p.tok.col,
						Msg: fmt.Sprintf("fact %s is not ground", r.Head)}
				}
				unit.Facts = append(unit.Facts, r.Head)
			} else {
				unit.Program.Rules = append(unit.Program.Rules, r)
			}
		default:
			return nil, p.expected("a rule, fact, ':-' constraint, or '?-' query declaration")
		}
	}
	return unit, nil
}

// ParseProgram parses a source text that must contain only rules and a
// query declaration, returning the program.
func ParseProgram(src string) (*ast.Program, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.ICs) > 0 {
		return nil, fmt.Errorf("unexpected integrity constraint in program text: %s", u.ICs[0])
	}
	if len(u.Facts) > 0 {
		return nil, fmt.Errorf("unexpected ground fact in program text: %s", u.Facts[0])
	}
	return u.Program, nil
}

// ParseICs parses a source text that must contain only integrity
// constraints.
func ParseICs(src string) ([]ast.IC, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.Program.Rules) > 0 {
		return nil, fmt.Errorf("unexpected rule in constraint text: %s", u.Program.Rules[0])
	}
	if len(u.Facts) > 0 {
		return nil, fmt.Errorf("unexpected ground fact in constraint text: %s", u.Facts[0])
	}
	return u.ICs, nil
}

// ParseFacts parses a source text that must contain only ground facts.
func ParseFacts(src string) ([]ast.Atom, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.Program.Rules) > 0 {
		return nil, fmt.Errorf("unexpected rule in facts text: %s", u.Program.Rules[0])
	}
	if len(u.ICs) > 0 {
		return nil, fmt.Errorf("unexpected constraint in facts text: %s", u.ICs[0])
	}
	return u.Facts, nil
}

// MustParseProgram is ParseProgram but panics on error; for tests and
// examples with literal sources.
func MustParseProgram(src string) *ast.Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// MustParseICs is ParseICs but panics on error.
func MustParseICs(src string) []ast.IC {
	ics, err := ParseICs(src)
	if err != nil {
		panic(err)
	}
	return ics
}

// MustParseFacts is ParseFacts but panics on error.
func MustParseFacts(src string) []ast.Atom {
	fs, err := ParseFacts(src)
	if err != nil {
		panic(err)
	}
	return fs
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) bump() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expected(what string) error {
	return &Error{Line: p.tok.line, Col: p.tok.col,
		Msg: fmt.Sprintf("expected %s, found %s", what, p.tok.kind)}
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.expected(k.String())
	}
	return p.bump()
}

// parseRule parses `head.` or `head :- body.`.
func (p *parser) parseRule() (ast.Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{Head: head, At: head.At}
	if p.tok.kind == tokDot {
		return r, p.bump()
	}
	if err := p.expect(tokImplies); err != nil {
		return ast.Rule{}, err
	}
	if err := p.parseBody(&r.Pos, &r.Neg, &r.Cmp); err != nil {
		return ast.Rule{}, err
	}
	return r, p.expect(tokDot)
}

// parseIC parses `:- body.`.
func (p *parser) parseIC() (ast.IC, error) {
	at := ast.At(p.tok.line, p.tok.col)
	if err := p.expect(tokImplies); err != nil {
		return ast.IC{}, err
	}
	ic := ast.IC{At: at}
	if err := p.parseBody(&ic.Pos, &ic.Neg, &ic.Cmp); err != nil {
		return ast.IC{}, err
	}
	return ic, p.expect(tokDot)
}

// parseBody parses a comma-separated list of literals into the three
// destination slices.
func (p *parser) parseBody(pos, neg *[]ast.Atom, cmp *[]ast.Cmp) error {
	for {
		switch p.tok.kind {
		case tokBang:
			if err := p.bump(); err != nil {
				return err
			}
			a, err := p.parseAtom()
			if err != nil {
				return err
			}
			*neg = append(*neg, a)
		case tokIdent:
			// Ambiguous: `pred(...)`, a 0-ary atom, or a comparison
			// whose left side is a bare symbolic constant (`a != W`).
			// Disambiguate on the following token.
			name := p.tok.text
			at := ast.At(p.tok.line, p.tok.col)
			if err := p.bump(); err != nil {
				return err
			}
			switch p.tok.kind {
			case tokLParen:
				a, err := p.parseAtomArgs(name, at)
				if err != nil {
					return err
				}
				*pos = append(*pos, a)
			case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
				c, err := p.parseCmpRest(ast.S(name))
				if err != nil {
					return err
				}
				*cmp = append(*cmp, c)
			default:
				*pos = append(*pos, ast.Atom{Pred: name, At: at})
			}
		case tokVar, tokNum, tokStr:
			c, err := p.parseCmp()
			if err != nil {
				return err
			}
			*cmp = append(*cmp, c)
		default:
			return p.expected("a subgoal")
		}
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.bump(); err != nil {
			return err
		}
	}
}

// parseAtom parses `pred` or `pred(t1, ..., tn)`.
func (p *parser) parseAtom() (ast.Atom, error) {
	if p.tok.kind != tokIdent {
		return ast.Atom{}, p.expected("predicate name")
	}
	pred := p.tok.text
	at := ast.At(p.tok.line, p.tok.col)
	if err := p.bump(); err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tokLParen {
		return ast.Atom{Pred: pred, At: at}, nil // 0-ary atom, e.g. halt
	}
	return p.parseAtomArgs(pred, at)
}

// parseAtomArgs parses `(t1, ..., tn)` for an already-consumed
// predicate name at position at (the current token is the opening
// parenthesis).
func (p *parser) parseAtomArgs(pred string, at ast.Pos) (ast.Atom, error) {
	if err := p.expect(tokLParen); err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: pred, At: at}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.bump(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	return a, p.expect(tokRParen)
}

// parseCmp parses `term op term` where op is one of < <= > >= = !=.
func (p *parser) parseCmp() (ast.Cmp, error) {
	l, err := p.parseTerm()
	if err != nil {
		return ast.Cmp{}, err
	}
	return p.parseCmpRest(l)
}

// parseCmpRest parses `op term` after the left operand was consumed.
func (p *parser) parseCmpRest(l ast.Term) (ast.Cmp, error) {
	var op ast.CmpOp
	switch p.tok.kind {
	case tokLT:
		op = ast.LT
	case tokLE:
		op = ast.LE
	case tokGT:
		op = ast.GT
	case tokGE:
		op = ast.GE
	case tokEQ:
		op = ast.EQ
	case tokNE:
		op = ast.NE
	default:
		return ast.Cmp{}, p.expected("a comparison operator")
	}
	if err := p.bump(); err != nil {
		return ast.Cmp{}, err
	}
	r, err := p.parseTerm()
	if err != nil {
		return ast.Cmp{}, err
	}
	return ast.NewCmp(l, op, r), nil
}

// parseTerm parses a variable, numeric constant, quoted string, or
// bare symbolic constant.
func (p *parser) parseTerm() (ast.Term, error) {
	switch p.tok.kind {
	case tokVar:
		t := ast.V(p.tok.text)
		return t, p.bump()
	case tokNum:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return ast.Term{}, &Error{Line: p.tok.line, Col: p.tok.col, Msg: "bad number: " + p.tok.text}
		}
		t := ast.N(v)
		return t, p.bump()
	case tokStr:
		t := ast.S(p.tok.text)
		return t, p.bump()
	case tokIdent:
		// Bare lower-case identifier in term position is a symbolic constant.
		t := ast.S(p.tok.text)
		return t, p.bump()
	default:
		return ast.Term{}, p.expected("a term")
	}
}
