//go:build !unix

package store

import "os"

// mapFile on platforms without the unix mmap syscall surface reads the
// file into memory; callers see the identical interface.
func mapFile(path string) ([]byte, func(), error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}
