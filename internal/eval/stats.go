package eval

// Per-relation statistics for the cost-based join-ordering policies
// (Options.Policy). Every irel maintains, next to its row count, one
// small fixed-size sketch per column estimating the number of distinct
// values in that column. The sketches are updated on insert only —
// irel is append-only, and the retraction path in internal/incr
// rebuilds shrinking relations into fresh irels, whose sketches are
// rebuilt from the surviving rows — so they are exact bookkeeping, not
// a probabilistic deletion structure.
//
// Each sketch is hybrid: below sketchExactMax distinct values it keeps
// the exact value set (a map), so estimates on small relations are
// exact; past the threshold it spills into a fixed sketchBuckets-bit
// table and estimates by linear counting (Whang et al.):
//
//	distinct ≈ m · ln(m / zeroBits)
//
// which stays within a few percent up to several distinct values per
// bit. Updates after the spill are one multiply, one shift, and one
// bit-set — cheap enough to leave on unconditionally, which is what
// keeps the statistics current across semi-naive rounds and
// internal/incr deltas without any refresh machinery.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

const (
	// sketchExactMax is the number of distinct values a column tracks
	// exactly before spilling to the bit table.
	sketchExactMax = 128
	// sketchBuckets is the bit-table width after the spill (power of
	// two; 4096 bits = 512 bytes per spilled column).
	sketchBuckets = 4096
	sketchMask    = sketchBuckets - 1
)

// ColSketch estimates the number of distinct values in one column.
// Same concurrency contract as the owning irel: single writer (Add),
// any number of readers of a frozen relation (Distinct). The zero
// value is an empty sketch, ready for use.
//
// The type is exported for internal/store, which persists per-column
// sketches alongside the interned rows of its segment files: sketch
// state is a pure function of the set of ids added (exact mode keeps
// the set; spilled mode ORs hash bits), so a sketch rebuilt by WAL
// replay is bit-identical to the uninterrupted one — the property the
// crash-recovery differential test pins.
type ColSketch struct {
	exact map[uint32]struct{}
	bits  []uint64 // sketchBuckets bits once spilled; nil before
	ones  int      // set bits
}

// hash32 mixes an interned id into a bucket-selection hash
// (multiplicative hashing with a xor-fold; ids are dense, so the raw
// value must not be used directly).
func hash32(v uint32) uint32 {
	v *= 2654435761
	v ^= v >> 16
	return v
}

// Add records one value.
func (c *ColSketch) Add(v uint32) {
	if c.bits == nil {
		if c.exact == nil {
			c.exact = make(map[uint32]struct{}, 8)
		}
		if _, ok := c.exact[v]; ok {
			return
		}
		c.exact[v] = struct{}{}
		if len(c.exact) > sketchExactMax {
			c.spill()
		}
		return
	}
	c.set(hash32(v) & sketchMask)
}

// spill folds the exact set into the bit table and drops it.
func (c *ColSketch) spill() {
	c.bits = make([]uint64, sketchBuckets/64)
	for v := range c.exact {
		c.set(hash32(v) & sketchMask)
	}
	c.exact = nil
}

func (c *ColSketch) set(b uint32) {
	w, m := b>>6, uint64(1)<<(b&63)
	if c.bits[w]&m == 0 {
		c.bits[w] |= m
		c.ones++
	}
}

// Distinct returns the estimated distinct count: exact below the spill
// threshold, linear counting above it.
func (c *ColSketch) Distinct() int {
	if c.bits == nil {
		return len(c.exact)
	}
	zeros := sketchBuckets - c.ones
	if zeros == 0 {
		// Saturated table: linear counting can no longer resolve the
		// count; report the largest estimate the sketch can express.
		return int(float64(sketchBuckets) * math.Log(float64(sketchBuckets)))
	}
	return int(math.Round(float64(sketchBuckets) * math.Log(float64(sketchBuckets)/float64(zeros))))
}

// distinct returns the estimated number of distinct values in column j
// (0 for an empty relation). Read-only on a frozen relation.
func (r *irel) distinct(j int) int {
	if r.stats == nil {
		return 0
	}
	return r.stats[j].Distinct()
}

// Equal reports whether two sketches carry bit-identical state: same
// mode, and same exact set or same bit table. Used by the persistence
// layer's differential tests to pin recovered sketches against an
// uninterrupted run.
func (c *ColSketch) Equal(d *ColSketch) bool {
	if (c.bits == nil) != (d.bits == nil) {
		return false
	}
	if c.bits != nil {
		if c.ones != d.ones || len(c.bits) != len(d.bits) {
			return false
		}
		for i := range c.bits {
			if c.bits[i] != d.bits[i] {
				return false
			}
		}
		return true
	}
	if len(c.exact) != len(d.exact) {
		return false
	}
	for v := range c.exact {
		if _, ok := d.exact[v]; !ok {
			return false
		}
	}
	return true
}

// Sketch encoding bytes (internal/store segment files). Exact mode
// serializes the value set sorted, so the encoding is deterministic
// for a given set regardless of insertion order.
const (
	sketchModeExact   = 0
	sketchModeSpilled = 1
)

// AppendEncoded appends a deterministic binary encoding of the sketch
// to buf and returns the extended slice: a mode byte, then either a
// uvarint count followed by the sorted exact values (4 bytes LE each),
// or the raw bit table (sketchBuckets/8 bytes LE).
func (c *ColSketch) AppendEncoded(buf []byte) []byte {
	if c.bits != nil {
		buf = append(buf, sketchModeSpilled)
		for _, w := range c.bits {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		return buf
	}
	buf = append(buf, sketchModeExact)
	vals := make([]uint32, 0, len(c.exact))
	for v := range c.exact {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	return buf
}

// DecodeColSketch decodes a sketch produced by AppendEncoded from the
// front of data, returning the sketch and the number of bytes
// consumed. Malformed input yields an error, never a panic.
func DecodeColSketch(data []byte) (ColSketch, int, error) {
	if len(data) < 1 {
		return ColSketch{}, 0, fmt.Errorf("eval: sketch: empty input")
	}
	mode, off := data[0], 1
	switch mode {
	case sketchModeSpilled:
		words := sketchBuckets / 64
		need := words * 8
		if len(data)-off < need {
			return ColSketch{}, 0, fmt.Errorf("eval: sketch: truncated bit table")
		}
		c := ColSketch{bits: make([]uint64, words)}
		for i := 0; i < words; i++ {
			w := binary.LittleEndian.Uint64(data[off:])
			c.bits[i] = w
			c.ones += bits.OnesCount64(w)
			off += 8
		}
		return c, off, nil
	case sketchModeExact:
		n, k := binary.Uvarint(data[off:])
		if k <= 0 || n > sketchExactMax+1 {
			return ColSketch{}, 0, fmt.Errorf("eval: sketch: bad exact count")
		}
		off += k
		if len(data)-off < int(n)*4 {
			return ColSketch{}, 0, fmt.Errorf("eval: sketch: truncated exact set")
		}
		c := ColSketch{}
		if n > 0 {
			c.exact = make(map[uint32]struct{}, n)
		}
		for i := 0; i < int(n); i++ {
			c.exact[binary.LittleEndian.Uint32(data[off:])] = struct{}{}
			off += 4
		}
		return c, off, nil
	default:
		return ColSketch{}, 0, fmt.Errorf("eval: sketch: unknown mode %d", mode)
	}
}
