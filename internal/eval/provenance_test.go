package eval

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func TestProvenanceLinearChain(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDB()
	db.AddFacts(parser.MustParseFacts(`step(1, 2). step(2, 3). step(3, 4).`))
	idb, prov, _, err := EvalProv(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Count("path") != 6 {
		t.Fatalf("path count = %d", idb.Count("path"))
	}
	tree, err := prov.Tree(ast.NewAtom("path", ast.N(1), ast.N(4)), p.IDB(), db)
	if err != nil {
		t.Fatal(err)
	}
	// A derivation of path(1,4) must bottom out in the three steps.
	s := tree.String()
	for _, leaf := range []string{"step(1, 2)", "step(2, 3)", "step(3, 4)"} {
		if !strings.Contains(s, leaf) {
			t.Fatalf("derivation misses %s:\n%s", leaf, s)
		}
	}
	if tree.Depth() < 3 {
		t.Fatalf("depth = %d, expected a nested derivation:\n%s", tree.Depth(), s)
	}
	if tree.Size() < 6 {
		t.Fatalf("size = %d:\n%s", tree.Size(), s)
	}
	if tree.Rule == nil {
		t.Fatal("root must carry its rule")
	}
}

func TestProvenanceEDBLeaf(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- e(X).
		?- q.
	`)
	db := NewDB()
	db.AddFacts(parser.MustParseFacts(`e(7).`))
	_, prov, _, err := EvalProv(p, db)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := prov.Tree(ast.NewAtom("e", ast.N(7)), p.IDB(), db)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Rule != nil || len(leaf.Children) != 0 {
		t.Fatal("EDB fact must be a leaf")
	}
	if _, err := prov.Tree(ast.NewAtom("e", ast.N(99)), p.IDB(), db); err == nil {
		t.Fatal("absent EDB fact must error")
	}
	if _, err := prov.Tree(ast.NewAtom("q", ast.N(99)), p.IDB(), db); err == nil {
		t.Fatal("underived IDB fact must error")
	}
	if _, err := prov.Tree(ast.NewAtom("q", ast.V("X")), p.IDB(), db); err == nil {
		t.Fatal("non-ground fact must error")
	}
}

func TestProvenanceEveryDerivedFactHasATree(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		sym(X) :- path(X, X).
		?- sym.
	`)
	db := NewDB()
	db.AddFacts(parser.MustParseFacts(`edge(1, 2). edge(2, 1). edge(2, 3).`))
	idb, prov, _, err := EvalProv(p, db)
	if err != nil {
		t.Fatal(err)
	}
	idbPreds := p.IDB()
	for _, pred := range []string{"path", "sym"} {
		for _, f := range idb.Facts(pred) {
			tree, err := prov.Tree(f, idbPreds, db)
			if err != nil {
				t.Fatalf("no derivation for %s: %v", f, err)
			}
			if !tree.Fact.Equal(f) {
				t.Fatalf("tree root mismatch: %s vs %s", tree.Fact, f)
			}
			// Every leaf must be a genuine EDB fact.
			var walk func(d *Derivation)
			walk = func(d *Derivation) {
				if d.Rule == nil {
					if !db.Contains(d.Fact) {
						t.Fatalf("leaf %s is not an EDB fact", d.Fact)
					}
					return
				}
				if !d.Rule.Head.Equal(d.Fact) {
					t.Fatalf("instantiated rule head %s does not match fact %s", d.Rule.Head, d.Fact)
				}
				for _, c := range d.Children {
					walk(c)
				}
			}
			walk(tree)
		}
	}
}
