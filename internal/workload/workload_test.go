package workload

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
)

func countPred(facts []ast.Atom, pred string) int {
	n := 0
	for _, f := range facts {
		if f.Pred == pred {
			n++
		}
	}
	return n
}

func TestChain(t *testing.T) {
	facts := Chain(1, 5)
	if len(facts) != 5 {
		t.Fatalf("got %d facts", len(facts))
	}
	if facts[0].String() != "step(1, 2)" || facts[4].String() != "step(5, 6)" {
		t.Fatalf("chain wrong: %v", facts)
	}
}

func TestGoodPathStaysBelowThreshold(t *testing.T) {
	facts := GoodPath(200, 100, 40)
	// The low chain must be entirely below 100 for any lowN.
	for _, f := range facts {
		if f.Pred != "step" {
			continue
		}
		if f.Args[0].Val < 100 && f.Args[0].Val >= 0 {
			t.Fatalf("low-chain node %v crosses into [0, 100)", f)
		}
	}
	// And the workload must satisfy the Section 3 constraints.
	ics := parser.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatalf("GoodPath violates the Section 3 constraints: %v %v", ok, err)
	}
}

func TestGoodPathMultiConsistent(t *testing.T) {
	facts := GoodPathMulti(50, 100, 40, 5)
	if countPred(facts, "startPoint") != 5 || countPred(facts, "endPoint") != 5 {
		t.Fatalf("point counts wrong")
	}
	ics := parser.MustParseICs(`:- startPoint(X), step(X, Y), X < 100.`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("GoodPathMulti must satisfy the start constraint")
	}
}

func TestABChainsSatisfiesNoBAfterA(t *testing.T) {
	facts := ABChains(5, 5)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("ABChains must satisfy the constraint")
	}
	if countPred(facts, "a") != 5 || countPred(facts, "b") != 5 {
		t.Fatalf("edge counts wrong: %v", facts)
	}
}

func TestABCombSatisfiesNoBAfterA(t *testing.T) {
	facts := ABComb(3, 4, 4)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("ABComb must satisfy the constraint")
	}
	if countPred(facts, "b") != 3*4 || countPred(facts, "a") != 3*4 {
		t.Fatalf("edge counts wrong: a=%d b=%d", countPred(facts, "a"), countPred(facts, "b"))
	}
}

func TestStarPointsConsistent(t *testing.T) {
	facts := StarPoints(4, 3)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("StarPoints must satisfy the start/end constraint")
	}
	if countPred(facts, "step") != 4*(3+1) {
		t.Fatalf("step count = %d", countPred(facts, "step"))
	}
}

func TestStarPathsConsistent(t *testing.T) {
	facts := StarPaths(4, 3)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("StarPaths must satisfy the start/end constraint")
	}
	if countPred(facts, "path") != 4*(3+1) {
		t.Fatalf("path count = %d", countPred(facts, "path"))
	}
}

func TestBiChainPointsConsistent(t *testing.T) {
	facts := BiChainPoints(16)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("BiChainPoints must satisfy the start/end constraint")
	}
	if countPred(facts, "step") != 2*15 {
		t.Fatalf("step count = %d", countPred(facts, "step"))
	}
	if countPred(facts, "startPoint") == 0 || countPred(facts, "endPoint") == 0 {
		t.Fatal("points missing")
	}
}

func TestMonotoneRandomGraphSatisfiesOrderIC(t *testing.T) {
	facts := MonotoneRandomGraph(20, 30, 7)
	if len(facts) != 30 {
		t.Fatalf("got %d facts", len(facts))
	}
	ics := parser.MustParseICs(`:- step(X, Y), X >= Y.`)
	ok, err := chase.IsConsistent(facts, ics)
	if err != nil || !ok {
		t.Fatal("MonotoneRandomGraph must be strictly increasing")
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(10, 20, 42)
	b := RandomGraph(10, 20, 42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed must give same graph")
		}
	}
	c := RandomGraph(10, 20, 43)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different graphs")
	}
}

func TestDBHelper(t *testing.T) {
	db := DB(Chain(1, 3))
	if db.Count("step") != 3 {
		t.Fatalf("DB helper lost facts: %d", db.Count("step"))
	}
}
