package adorn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Image is where an integrity-constraint variable lands on a node:
// either a set of argument positions of the node's predicate (all
// holding the same variable), or a constant value forced by the
// mapping.
type Image struct {
	Positions []int // sorted; nil when Const is set
	Const     *ast.Term
}

// key renders the image canonically.
func (im Image) key() string {
	if im.Const != nil {
		return "c" + im.Const.Key()
	}
	parts := make([]string, len(im.Positions))
	for i, p := range im.Positions {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return "p" + strings.Join(parts, ",")
}

// Triplet is the paper's (I, σ, s): I identifies an integrity
// constraint, s the subset of its positive atoms NOT yet mapped into
// the subtree, and σ the images (on the node's argument positions) of
// the constraint variables that must stay visible — those shared
// between s and the mapped part, plus the variables of residue order
// atoms.
type Triplet struct {
	IC       int
	Unmapped []int // sorted indices into the constraint's positive atoms
	Sigma    map[string]Image
}

// Key canonically identifies the triplet.
func (t Triplet) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I%d|", t.IC)
	for i, u := range t.Unmapped {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", u)
	}
	b.WriteByte('|')
	vars := make([]string, 0, len(t.Sigma))
	for v := range t.Sigma {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(t.Sigma[v].key())
	}
	return b.String()
}

// FullyMapped reports whether no positive atom of the constraint
// remains unmapped.
func (t Triplet) FullyMapped() bool { return len(t.Unmapped) == 0 }

// Adornment is a set of triplets attached to a (specialized)
// predicate, canonically ordered by Key.
type Adornment struct {
	Triplets []Triplet
	key      string
}

// NewAdornment canonicalizes and deduplicates the triplets.
func NewAdornment(ts []Triplet) *Adornment {
	seen := map[string]bool{}
	var uniq []Triplet
	for _, t := range ts {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, t)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Key() < uniq[j].Key() })
	keys := make([]string, len(uniq))
	for i, t := range uniq {
		keys[i] = t.Key()
	}
	return &Adornment{Triplets: uniq, key: strings.Join(keys, "&")}
}

// Key canonically identifies the adornment (set equality of triplets).
func (a *Adornment) Key() string { return a.key }

// TripletIndex returns the index of the triplet with the given key, or
// -1.
func (a *Adornment) TripletIndex(key string) int {
	for i, t := range a.Triplets {
		if t.Key() == key {
			return i
		}
	}
	return -1
}

// String renders the adornment compactly for diagnostics, showing for
// each triplet the constraint index and unmapped atom indices.
func (a *Adornment) String() string {
	var parts []string
	for _, t := range a.Triplets {
		parts = append(parts, t.Key())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// imageOf computes the Image of a rule-space term on an atom: constant
// terms become Const images; variables become the set of argument
// positions of the atom holding that variable (nil if absent).
func imageOf(t ast.Term, atom ast.Atom) (Image, bool) {
	if t.IsConst() {
		tt := t
		return Image{Const: &tt}, true
	}
	var pos []int
	for i, arg := range atom.Args {
		if arg.IsVar() && arg.Name == t.Name {
			pos = append(pos, i)
		}
	}
	if len(pos) == 0 {
		return Image{}, false
	}
	return Image{Positions: pos}, true
}

// termAt resolves an Image back to a rule-space term using the atom
// the image was computed against (or any atom occurrence of the same
// predicate). Multi-position images must resolve to a single term; if
// the occurrence holds different terms at those positions, resolution
// fails (the subtree forces an equality the occurrence cannot express).
func (im Image) termAt(atom ast.Atom) (ast.Term, bool) {
	if im.Const != nil {
		return *im.Const, true
	}
	if len(im.Positions) == 0 {
		return ast.Term{}, false
	}
	t := atom.Args[im.Positions[0]]
	for _, p := range im.Positions[1:] {
		if !atom.Args[p].Equal(t) {
			return ast.Term{}, false
		}
	}
	return t, true
}
