package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteText renders the report in the conventional compiler-diagnostic
// format, one finding per line:
//
//	name:line:col: severity: [check/id] message
//
// name is the source name to prefix (usually a file path); it is
// omitted when empty, as is the position when a finding has none. A
// summary line follows the findings.
func WriteText(w io.Writer, name string, rep *Report) error {
	for _, f := range rep.Findings {
		prefix := ""
		if name != "" {
			prefix = name + ":"
		}
		if f.Pos().IsValid() {
			prefix += strconv.Itoa(f.Line) + ":" + strconv.Itoa(f.Col) + ":"
		}
		if prefix != "" {
			prefix += " "
		}
		if _, err := fmt.Fprintf(w, "%s%s: [%s/%s] %s\n", prefix, f.Severity, f.Check, f.ID, f.Message); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d error(s), %d warning(s), %d info(s)\n", rep.Errors, rep.Warnings, rep.Infos)
	return err
}

// WriteJSON renders the report as indented JSON. The output is
// deterministic: findings are pre-sorted and timings are excluded.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
