// funcdep demonstrates semantic query optimization with functional
// dependencies — the constraint shape of Theorem 5.5,
//
//	:- e(X, Y1), e(X, Y2), Y1 != Y2.
//
// The inequality spans two atoms, so it is not local; the optimizer
// handles it through the quasi-local residue mechanism: when both
// atoms of the FD map into one rule, the negation of the residue
// (Y1 = Y2) is attached. Rules that contradict the FD are removed
// outright; rules that merely repeat the key have the forced equality
// compiled in. The example also prints a derivation tree for one
// answer (provenance).
package main

import (
	"fmt"
	"log"

	sqo "repro"
)

func main() {
	// succ is functional: every employee has one manager.
	program := sqo.MustParseProgram(`
		% two managers for one employee would be a conflict
		conflict(E) :- manages(E, M1), manages(E, M2), M1 < M2.
		% chain of command
		boss(E, M) :- manages(E, M).
		boss(E, M) :- manages(E, X), boss(X, M).
		top(E, M) :- boss(E, M), ceo(M).
		?- top.
	`)
	fd := sqo.MustParseICs(`:- manages(E, M1), manages(E, M2), M1 != M2.`)

	// First: the conflict query alone is unsatisfiable under the FD.
	conflictProg := sqo.MustParseProgram(`
		conflict(E) :- manages(E, M1), manages(E, M2), M1 < M2.
		?- conflict.
	`)
	res, err := sqo.Optimize(conflictProg, fd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict query satisfiable under the FD: %v (rules left: %d)\n\n",
		res.Satisfiable, len(res.Program.RulesFor("conflict")))

	// Second: the chain-of-command query optimizes normally.
	res, err = sqo.Optimize(program, fd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== rewritten chain-of-command program ==")
	fmt.Print(sqo.FormatProgram(res.Program))

	db := sqo.NewDBFrom(sqo.MustParseFacts(`
		manages(dana, erin). manages(erin, frank). manages(frank, grace).
		ceo(grace).
	`))
	idb, explain, _, err := sqo.EvalProv(program, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== answers ==")
	for _, f := range idb.SortedFacts("top") {
		fmt.Println(" ", f)
	}
	fmt.Println("\n== derivation of top(dana, grace) ==")
	d, err := explain(sqo.MustParseFacts(`top(dana, grace).`)[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d)
}
