package ast

import "strconv"

// RenameAtom returns a copy of a with every variable renamed by f.
func RenameAtom(a Atom, f func(string) string) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar() {
			out.Args[i] = V(f(t.Name))
		}
	}
	return out
}

// RenameCmp returns a copy of c with every variable renamed by f.
func RenameCmp(c Cmp, f func(string) string) Cmp {
	if c.Left.IsVar() {
		c.Left = V(f(c.Left.Name))
	}
	if c.Right.IsVar() {
		c.Right = V(f(c.Right.Name))
	}
	return c
}

// RenameRule returns a copy of r with every variable renamed by f.
func RenameRule(r Rule, f func(string) string) Rule {
	out := Rule{Head: RenameAtom(r.Head, f), At: r.At}
	for _, a := range r.Pos {
		out.Pos = append(out.Pos, RenameAtom(a, f))
	}
	for _, a := range r.Neg {
		out.Neg = append(out.Neg, RenameAtom(a, f))
	}
	for _, c := range r.Cmp {
		out.Cmp = append(out.Cmp, RenameCmp(c, f))
	}
	return out
}

// RenameIC returns a copy of ic with every variable renamed by f.
func RenameIC(ic IC, f func(string) string) IC {
	out := IC{At: ic.At}
	for _, a := range ic.Pos {
		out.Pos = append(out.Pos, RenameAtom(a, f))
	}
	for _, a := range ic.Neg {
		out.Neg = append(out.Neg, RenameAtom(a, f))
	}
	for _, c := range ic.Cmp {
		out.Cmp = append(out.Cmp, RenameCmp(c, f))
	}
	return out
}

// Freshener hands out rename functions that make variable sets
// disjoint: each call to Next returns a renamer that appends a unique
// suffix to every variable name.
type Freshener struct{ n int }

// Next returns a fresh renaming function.
func (f *Freshener) Next() func(string) string {
	f.n++
	suffix := "_" + strconv.Itoa(f.n)
	return func(v string) string { return v + suffix }
}

// FreshVar returns a variable name that cannot collide with
// user-written variables (parser forbids '#').
func (f *Freshener) FreshVar(base string) string {
	f.n++
	return base + "#" + strconv.Itoa(f.n)
}

// CanonicalizeAtom renames the variables of a to V0, V1, ... in order
// of first occurrence, returning the renamed atom and the mapping from
// old to new names. Two atoms are isomorphic iff their canonical forms
// are equal.
func CanonicalizeAtom(a Atom) (Atom, map[string]string) {
	m := map[string]string{}
	out := a.Clone()
	for i, t := range out.Args {
		if !t.IsVar() {
			continue
		}
		nn, ok := m[t.Name]
		if !ok {
			nn = "V" + strconv.Itoa(len(m))
			m[t.Name] = nn
		}
		out.Args[i] = V(nn)
	}
	return out, m
}
