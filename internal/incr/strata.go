package incr

import (
	"sort"

	"repro/internal/ast"
)

// stratum is one maintenance unit: a strongly connected component of
// the IDB dependency graph, in topological order (dependencies come in
// earlier strata). Non-recursive strata hold exactly one predicate and
// are maintained by counting; recursive ones (an SCC of size > 1, or a
// self-dependent predicate) are maintained by DRed.
type stratum struct {
	preds     []string // sorted
	inStr     map[string]bool
	recursive bool
	rules     []int // indices of rules whose head is in preds, ascending
}

// buildStrata runs Tarjan's SCC algorithm over the IDB predicate
// dependency graph (edge p → q when q occurs positively in the body of
// a rule with head p; negation is EDB-only, so it never adds edges).
// Tarjan completes an SCC only after every SCC reachable from it, so
// the pop order is already topological with dependencies first. All
// iteration is over sorted predicate lists, keeping the result
// deterministic.
func buildStrata(p *ast.Program) []stratum {
	idb := p.IDB()
	preds := make([]string, 0, len(idb))
	for pred := range idb {
		preds = append(preds, pred)
	}
	sort.Strings(preds)

	succ := map[string][]string{}
	selfDep := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Pos {
			if !idb[a.Pred] {
				continue
			}
			succ[r.Head.Pred] = append(succ[r.Head.Pred], a.Pred)
			if a.Pred == r.Head.Pred {
				selfDep[r.Head.Pred] = true
			}
		}
	}
	for pred := range succ {
		sort.Strings(succ[pred])
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(string)
	strongconnect = func(pred string) {
		index[pred] = next
		low[pred] = next
		next++
		stack = append(stack, pred)
		onStack[pred] = true
		for _, q := range succ[pred] {
			if _, seen := index[q]; !seen {
				strongconnect(q)
				if low[q] < low[pred] {
					low[pred] = low[q]
				}
			} else if onStack[q] && index[q] < low[pred] {
				low[pred] = index[q]
			}
		}
		if low[pred] == index[pred] {
			var comp []string
			for {
				q := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[q] = false
				comp = append(comp, q)
				if q == pred {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, pred := range preds {
		if _, seen := index[pred]; !seen {
			strongconnect(pred)
		}
	}

	out := make([]stratum, 0, len(sccs))
	for _, comp := range sccs {
		st := stratum{preds: comp, inStr: map[string]bool{}}
		for _, pred := range comp {
			st.inStr[pred] = true
		}
		st.recursive = len(comp) > 1 || selfDep[comp[0]]
		for i, r := range p.Rules {
			if st.inStr[r.Head.Pred] {
				st.rules = append(st.rules, i)
			}
		}
		out = append(out, st)
	}
	return out
}
