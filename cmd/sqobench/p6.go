package main

// P6: join-order policies of the compiled engine — greedy (static,
// most-bound-first), cost (per-round orders from maintained relation
// statistics), adaptive (cost orders plus run-time reordering and
// empty-subgoal skips). Same programs, same databases, Workers fixed
// at 1; plan time (statistics reads + order computation + plan
// compilation) and run time (everything else) are reported separately
// because the policies trade one for the other. Answers must agree
// across all three policies on every workload — a disagreement is a
// bug, not a data point. With -out the rows are written as JSON
// (committed as BENCH_6.json for regression tracking).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	sqo "repro"
	"repro/internal/ast"
	"repro/internal/workload"
)

type p6Row struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	PlanNs   int64  `json:"plan_ns"`
	RunNs    int64  `json:"run_ns"`
	Probes   int64  `json:"probes"`
	Reorders int64  `json:"reorders"`
	Answers  int    `json:"answers"`
}

type p6Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p6Row `json:"results"`
}

// p6FilterSkew builds the workload cost ordering exists for: a textual
// order that joins the huge relation first, while a selective filter
// sits one subgoal to the right. Statistics see the 5-value tag column
// immediately.
func p6FilterSkew(edges int) (*sqo.Program, *sqo.DB) {
	p := sqo.MustParseProgram(`q(X) :- edge(X, Y), tag(Y). ?- q.`)
	db := sqo.NewDB()
	for i := 0; i < edges; i++ {
		db.AddFact(sqo.Atom{Pred: "edge", Args: []sqo.Term{num(i), num(edges + i%97)}})
	}
	for i := 0; i < 5; i++ {
		db.AddFact(sqo.Atom{Pred: "tag", Args: []sqo.Term{num(edges + i)}})
	}
	return p, db
}

// p6HotKey builds the workload adaptivity exists for: column-level
// statistics that mislead the cost model. mid averages under two rows
// per key (filler keys carry one row each), but every key src actually
// selects fans out to `fanout` rows; alt is uniformly two rows per
// key. Cost orders [src, mid, alt] on the averages and pays the full
// fan-out; adaptive observes the blow-up on the first src row and
// reorders the rest of the task to [src, alt, mid].
func p6HotKey(srcs, fanout, filler int) (*sqo.Program, *sqo.DB) {
	p := sqo.MustParseProgram(`q(X, Z) :- src(X), mid(X, Z), alt(X, Z). ?- q.`)
	db := sqo.NewDB()
	for x := 0; x < srcs; x++ {
		db.AddFact(sqo.Atom{Pred: "src", Args: []sqo.Term{num(x)}})
		for z := 0; z < fanout; z++ {
			db.AddFact(sqo.Atom{Pred: "mid", Args: []sqo.Term{num(x), num(z)}})
		}
		db.AddFact(sqo.Atom{Pred: "alt", Args: []sqo.Term{num(x), num(0)}})
		db.AddFact(sqo.Atom{Pred: "alt", Args: []sqo.Term{num(x), num(1)}})
	}
	for x := srcs; x < srcs+filler; x++ {
		db.AddFact(sqo.Atom{Pred: "mid", Args: []sqo.Term{num(x), num(x)}})
		db.AddFact(sqo.Atom{Pred: "alt", Args: []sqo.Term{num(x), num(x)}})
		db.AddFact(sqo.Atom{Pred: "alt", Args: []sqo.Term{num(x), num(x + 1)}})
	}
	return p, db
}

func num(i int) sqo.Term { return ast.N(float64(i)) }

func runP6() {
	type p6case struct {
		name string
		prog *sqo.Program
		db   *sqo.DB
	}
	// Hot-key needs filler > srcs*(fanout-2) so mid's average fan-out
	// estimate undercuts alt's uniform 2.0 and the cost model is
	// genuinely misled (that is the point of the workload).
	edges, fan, fill := 30000, 200, 15000
	if *quick {
		edges, fan, fill = 4000, 120, 8000
	}
	randProg3, _, randFacts3 := workload.RandomProgram(3)
	randProg7, _, randFacts7 := workload.RandomProgram(7)
	fsProg, fsDB := p6FilterSkew(edges)
	hkProg, hkDB := p6HotKey(50, fan, fill)
	cases := []p6case{
		{"random(3)", sqo.MustParseProgram(randProg3), workload.DB(randFacts3)},
		{"random(7)", sqo.MustParseProgram(randProg7), workload.DB(randFacts7)},
		{fmt.Sprintf("filter-skew(%d,5)", edges), fsProg, fsDB},
		{fmt.Sprintf("hot-key(50,%d,%d)", fan, fill), hkProg, hkDB},
	}

	report := p6Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}
	header("workload", "policy", "plan", "run", "probes", "reorders", "agree")
	for _, c := range cases {
		var rows []p6Row
		agree := true
		for _, pol := range []sqo.JoinOrderPolicy{sqo.PolicyGreedy, sqo.PolicyCost, sqo.PolicyAdaptive} {
			opts := sqo.DefaultEvalOptions()
			opts.Workers = 1
			opts.Policy = pol
			// Best of 3 on total wall clock; the winning run's
			// plan/run split and counters stand.
			var best *sqo.Stats
			var bestElapsed time.Duration
			var answers int
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				idb, stats, err := sqo.EvalWith(c.prog, c.db, opts)
				elapsed := time.Since(start)
				if err != nil {
					log.Fatal(err)
				}
				if best == nil || elapsed < bestElapsed {
					best, bestElapsed = stats, elapsed
					answers = idb.Count(c.prog.Query)
				}
			}
			rows = append(rows, p6Row{
				Workload: c.name,
				Policy:   string(pol),
				PlanNs:   best.PlanNanos,
				RunNs:    bestElapsed.Nanoseconds() - best.PlanNanos,
				Probes:   best.JoinProbes,
				Reorders: best.AdaptiveReorders,
				Answers:  answers,
			})
		}
		for _, r := range rows[1:] {
			if r.Answers != rows[0].Answers {
				agree = false
			}
		}
		for _, r := range rows {
			fmt.Printf("%-22s | %-8s | %10v | %10v | %9d | %8d | %v\n",
				r.Workload, r.Policy,
				time.Duration(r.PlanNs).Round(time.Microsecond),
				time.Duration(r.RunNs).Round(time.Microsecond),
				r.Probes, r.Reorders, agree)
		}
		report.Rows = append(report.Rows, rows...)
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
