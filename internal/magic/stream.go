package magic

// Streaming execution of non-recursive strata by unfolding: an IDB
// predicate that is non-recursive and consumed by exactly one positive
// body occurrence never needs to be materialized — its rules can be
// inlined into the consumer, so the producer's tuples flow straight
// into the consuming join instead of being stored and re-scanned.
// Structurally this is partial evaluation (resolution of the consumer
// against each producer rule); semantically it is exact, because the
// producer has no other readers and contributes nothing to the query
// relation itself. Unfold applies the rewrite to a fixpoint under
// conservative guards, and eval.QueryCtx runs it (when Options.Stream
// is set) after the magic rewrite, where the chains of supplementary
// predicates it eliminates are generated in exactly this
// single-consumer shape.

import (
	"sort"

	"repro/internal/ast"
)

const (
	// maxUnfoldBody caps the body length of an unfolded rule; past it
	// the inlining is left undone (a huge joined body defeats the
	// planner more than materialization costs).
	maxUnfoldBody = 16
	// maxUnfoldPasses bounds the passes to a fixpoint; each pass
	// removes at least one predicate, so this is a safety net, not a
	// limit reached in practice.
	maxUnfoldPasses = 64
)

// Unfold inlines every eligible single-consumer non-recursive IDB
// predicate and returns the rewritten program (the input is never
// mutated) with the number of predicates eliminated. When nothing is
// eligible the input program itself is returned with count 0.
func Unfold(p *ast.Program) (*ast.Program, int) {
	eliminated := 0
	for pass := 0; pass < maxUnfoldPasses; pass++ {
		next := unfoldOne(p)
		if next == nil {
			break
		}
		p = next
		eliminated++
	}
	return p, eliminated
}

// unfoldOne eliminates one eligible predicate, or returns nil when no
// predicate qualifies.
func unfoldOne(p *ast.Program) *ast.Program {
	idb := p.IDB()
	rec := recursivePreds(p, idb)
	// Count positive body occurrences of each IDB predicate, keeping
	// the location of the (hopefully unique) consumer.
	type site struct{ rule, pos int }
	count := map[string]int{}
	where := map[string]site{}
	for ri, r := range p.Rules {
		for pi, a := range r.Pos {
			if idb[a.Pred] {
				count[a.Pred]++
				where[a.Pred] = site{ri, pi}
			}
		}
	}
	var cands []string
	for pred, n := range count {
		if n != 1 || pred == p.Query || rec[pred] {
			continue
		}
		if p.Rules[where[pred].rule].Head.Pred == pred {
			continue // defensive; a self-consumer is recursive anyway
		}
		cands = append(cands, pred)
	}
	sort.Strings(cands) // deterministic pick order
	for _, pred := range cands {
		s := where[pred]
		if out := inline(p, pred, s.rule, s.pos); out != nil {
			return out
		}
	}
	return nil
}

// inline resolves consumer rule ci's positive subgoal k (an atom of
// pred) against every rule of pred, replacing the consumer with one
// rule per producer and dropping the producer's rules. Returns nil if
// a guard rejects the result (body too long, safety lost).
func inline(p *ast.Program, pred string, ci, k int) *ast.Program {
	consumer := p.Rules[ci]
	atom := consumer.Pos[k]
	var unfolded []ast.Rule
	for _, prod := range p.Rules {
		if prod.Head.Pred != pred {
			continue
		}
		// Rename the producer's variables apart from the consumer's.
		// '#' cannot appear in source identifiers, so suffixed names
		// are disjoint from every consumer variable (nested unfolds
		// stack suffixes, which stays disjoint too).
		prod = ast.RenameRule(prod, func(v string) string { return v + "#u" })
		subst, ok := unifyArgs(atom.Args, prod.Head.Args)
		if !ok {
			continue // this producer can never feed the consumer
		}
		nr := ast.Rule{Head: substAtom(consumer.Head, subst), At: consumer.At}
		for i, a := range consumer.Pos {
			if i == k {
				for _, pa := range prod.Pos {
					nr.Pos = append(nr.Pos, substAtom(pa, subst))
				}
				continue
			}
			nr.Pos = append(nr.Pos, substAtom(a, subst))
		}
		for _, n := range consumer.Neg {
			nr.Neg = append(nr.Neg, substAtom(n, subst))
		}
		for _, n := range prod.Neg {
			nr.Neg = append(nr.Neg, substAtom(n, subst))
		}
		for _, c := range consumer.Cmp {
			nr.Cmp = append(nr.Cmp, substCmp(c, subst))
		}
		for _, c := range prod.Cmp {
			nr.Cmp = append(nr.Cmp, substCmp(c, subst))
		}
		if len(nr.Pos) > maxUnfoldBody || nr.Safe() != nil {
			return nil
		}
		unfolded = append(unfolded, nr)
	}
	// If no producer head unifies, the consumer can never fire and is
	// dropped along with the producer — `unfolded` is empty, which the
	// rule assembly below handles naturally.
	out := &ast.Program{Query: p.Query}
	if p.Goal != nil {
		out.Goal = append([]ast.Term(nil), p.Goal...)
	}
	for ri, r := range p.Rules {
		switch {
		case ri == ci:
			out.Rules = append(out.Rules, unfolded...)
		case r.Head.Pred == pred:
			// producer rule, dropped
		default:
			out.Rules = append(out.Rules, r.Clone())
		}
	}
	return out
}

// recursivePreds returns the IDB predicates on a positive dependency
// cycle (reachable from themselves through positive IDB subgoals).
func recursivePreds(p *ast.Program, idb map[string]bool) map[string]bool {
	deps := map[string][]string{}
	for _, r := range p.Rules {
		for _, a := range r.Pos {
			if idb[a.Pred] {
				deps[r.Head.Pred] = append(deps[r.Head.Pred], a.Pred)
			}
		}
	}
	rec := map[string]bool{}
	for pred := range idb {
		seen := map[string]bool{}
		stack := append([]string(nil), deps[pred]...)
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if q == pred {
				rec[pred] = true
				break
			}
			if seen[q] {
				continue
			}
			seen[q] = true
			stack = append(stack, deps[q]...)
		}
	}
	return rec
}

// unifyArgs unifies a consumer atom's arguments with a (renamed-apart)
// producer head's arguments, returning a substitution over both rules'
// variables. Producer heads may repeat variables and hold constants,
// so this is full syntactic unification over flat terms.
func unifyArgs(a, b []ast.Term) (map[string]ast.Term, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	subst := map[string]ast.Term{}
	var walk func(t ast.Term) ast.Term
	walk = func(t ast.Term) ast.Term {
		for t.IsVar() {
			next, ok := subst[t.Name]
			if !ok {
				return t
			}
			t = next
		}
		return t
	}
	for i := range a {
		x, y := walk(a[i]), walk(b[i])
		switch {
		case x.IsVar() && y.IsVar() && x.Name == y.Name:
		case y.IsVar():
			// Prefer binding the producer-side variable so consumer
			// names (head variables included) survive the rewrite.
			subst[y.Name] = x
		case x.IsVar():
			subst[x.Name] = y
		case !x.Equal(y):
			return nil, false
		}
	}
	// Flatten chains so substAtom can apply the map in one step.
	for v := range subst {
		subst[v] = walk(ast.V(v))
	}
	return subst, true
}

func substTerm(t ast.Term, subst map[string]ast.Term) ast.Term {
	if t.IsVar() {
		if r, ok := subst[t.Name]; ok {
			return r
		}
	}
	return t
}

func substAtom(a ast.Atom, subst map[string]ast.Term) ast.Atom {
	out := ast.Atom{Pred: a.Pred, At: a.At, Args: make([]ast.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = substTerm(t, subst)
	}
	return out
}

func substCmp(c ast.Cmp, subst map[string]ast.Term) ast.Cmp {
	c.Left = substTerm(c.Left, subst)
	c.Right = substTerm(c.Right, subst)
	return c
}
