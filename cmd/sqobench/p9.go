package main

// P9: horizontal scale-out — the sharded evaluator and the cluster
// scatter-gather path.
//
// Two sweeps, both pinned to determinism the same way the rest of the
// suite is (the run aborts if answers diverge):
//
//   - serve-scatter: an in-process cluster (real internal/server
//     workers behind httptest listeners, fronted by the real
//     shard.Coordinator — the same wiring as `sqod -coordinator`)
//     serves a fixed scattered-query workload over K datasets at 1, 2,
//     and 4 nodes. Reported: aggregate wall clock and p99 request
//     latency (noisy, tolerance-gated by benchdiff), plus the request
//     and merged-answer counts (deterministic, exact-gated). The
//     merged answers must be identical at every node count — placement
//     moves data, never answers.
//   - tc-shards: Options.Shards ∈ {1, 2, 4} on a transitive-closure
//     workload, single process. Answers, derived tuples, and join
//     probes must be bit-identical at every shard count (the tentpole
//     invariant the differential tests pin); the cross-shard exchange
//     counter and wall clock are what actually vary.
//
// With -out the rows are written as JSON (committed as BENCH_9.json
// for regression tracking).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	sqo "repro"
	"repro/internal/ast"
	"repro/internal/server"
	"repro/internal/shard"
)

func quietBenchLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

type p9Row struct {
	Workload  string `json:"workload"`
	Config    string `json:"config"` // "nodes=2" or "shards=4"
	Requests  int64  `json:"requests,omitempty"`
	Answers   int64  `json:"answers"`
	Derived   int64  `json:"derived,omitempty"`
	Probes    int64  `json:"probes,omitempty"`
	Exchanged int64  `json:"exchanged,omitempty"`
	WallNs    int64  `json:"wall_ns"`
	P99Ns     int64  `json:"p99_ns,omitempty"`
	qps       float64
}

type p9Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p9Row `json:"results"`
}

const p9Program = `path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.`

// p9Datasets builds K disjoint chain datasets in datalog source form.
func p9Datasets(k, chainLen int) map[string]string {
	out := make(map[string]string, k)
	for c := 0; c < k; c++ {
		var b strings.Builder
		base := c * 10000
		for i := 0; i < chainLen; i++ {
			fmt.Fprintf(&b, "edge(%d, %d).\n", base+i, base+i+1)
		}
		out[fmt.Sprintf("shardbench-%d", c)] = b.String()
	}
	return out
}

// p9Cluster measures the scattered-query workload at one node count
// and returns the row plus the sorted merged answers for cross-config
// verification.
func p9Cluster(nodes, requests, concurrency int, datasets map[string]string) (p9Row, []string) {
	var peers []string
	var workers []*httptest.Server
	for i := 0; i < nodes; i++ {
		// Generous admission control: the benchmark measures the scatter
		// path, not 429s from the per-worker in-flight cap (which
		// defaults to 2x CPUs — far below concurrency x datasets-per-
		// scatter on small CI hosts).
		ws := httptest.NewServer(server.New(server.Config{Logger: quietBenchLogger(), MaxInflight: 256}).Handler())
		workers = append(workers, ws)
		peers = append(peers, ws.URL)
	}
	defer func() {
		for _, ws := range workers {
			ws.Close()
		}
	}()
	coord, err := shard.NewCoordinator(shard.Config{Peers: peers, Logger: quietBenchLogger()})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	names := make([]string, 0, len(datasets))
	for name, facts := range datasets {
		names = append(names, name)
		req, _ := http.NewRequest(http.MethodPut, cs.URL+"/v1/datasets/"+name, strings.NewReader(facts))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("P9: PUT %s via coordinator: %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	sort.Strings(names)
	body, _ := json.Marshal(map[string]any{"program": p9Program, "datasets": names})

	type result struct {
		latency time.Duration
		answers int64
		merged  []string
	}
	oneQuery := func() result {
		start := time.Now()
		resp, err := http.Post(cs.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var sr struct {
			Answers  []string `json:"answers"`
			Degraded bool     `json:"degraded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || sr.Degraded {
			log.Fatalf("P9: scattered query failed (status %d, degraded %v)", resp.StatusCode, sr.Degraded)
		}
		return result{latency: time.Since(start), answers: int64(len(sr.Answers)), merged: sr.Answers}
	}

	warm := oneQuery() // warm the rewrite caches on every worker

	latencies := make([]time.Duration, requests)
	var answers int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	wallStart := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := oneQuery()
				mu.Lock()
				latencies[i] = r.latency
				answers += r.answers
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(wallStart)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[(len(latencies)*99)/100]
	row := p9Row{
		Workload: "serve-scatter",
		Config:   fmt.Sprintf("nodes=%d", nodes),
		Requests: int64(requests),
		Answers:  warm.answers, // per-query merged answers: deterministic, exact-gated
		WallNs:   wall.Nanoseconds(),
		P99Ns:    p99.Nanoseconds(),
		qps:      float64(requests) / wall.Seconds(),
	}
	if answers != warm.answers*int64(requests) {
		log.Fatalf("P9: nodes=%d answer counts varied across requests", nodes)
	}
	return row, warm.merged
}

// p9Shards measures Options.Shards on a transitive closure.
func p9Shards(chainLen, shards int) (p9Row, []string) {
	var facts []ast.Atom
	for i := 0; i < chainLen; i++ {
		facts = append(facts, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	unit, err := sqo.Parse(p9Program)
	if err != nil {
		log.Fatal(err)
	}
	db := sqo.NewDBFrom(facts)
	opts := sqo.DefaultEvalOptions()
	opts.Shards = shards
	var row p9Row
	var answers []string
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		tuples, stats, err := sqo.QueryWith(unit.Program, db, opts)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start).Nanoseconds()
		if trial == 0 || wall < row.WallNs {
			row = p9Row{
				Workload:  "tc-shards",
				Config:    fmt.Sprintf("shards=%d", shards),
				Answers:   int64(len(tuples)),
				Derived:   stats.TuplesDerived,
				Probes:    stats.JoinProbes,
				Exchanged: stats.ShardExchanged,
				WallNs:    wall,
			}
		}
		answers = answers[:0]
		for _, t := range tuples {
			answers = append(answers, t.String())
		}
		sort.Strings(answers)
	}
	return row, answers
}

func runP9() {
	nodeCounts := []int{1, 2, 4}
	shardCounts := []int{1, 2, 4}
	k, chainLen := 8, 30
	requests, concurrency := 200, 8
	tcChain := 300
	if *quick {
		k, chainLen = 4, 12
		requests, concurrency = 40, 4
		tcChain = 80
	}

	report := p9Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}

	datasets := p9Datasets(k, chainLen)
	header("workload", "config", "requests", "answers", "qps", "p99", "wall")
	var baseMerged []string
	for i, n := range nodeCounts {
		row, merged := p9Cluster(n, requests, concurrency, datasets)
		if i == 0 {
			baseMerged = merged
		} else if !equalStringSlices(merged, baseMerged) {
			log.Fatalf("P9: nodes=%d merged answers diverge from nodes=%d", n, nodeCounts[0])
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("%-14s | %-9s | %8d | %7d | %7.0f | %8v | %8v\n",
			row.Workload, row.Config, row.Requests, row.Answers, row.qps,
			time.Duration(row.P99Ns).Round(10*time.Microsecond),
			time.Duration(row.WallNs).Round(time.Millisecond))
	}

	fmt.Println()
	header("workload", "config", "answers", "derived", "probes", "exchanged", "wall")
	var baseAnswers []string
	var baseRow p9Row
	for i, s := range shardCounts {
		row, answers := p9Shards(tcChain, s)
		if i == 0 {
			baseAnswers, baseRow = answers, row
		} else {
			if !equalStringSlices(answers, baseAnswers) {
				log.Fatalf("P9: shards=%d answers diverge from shards=%d", s, shardCounts[0])
			}
			if row.Derived != baseRow.Derived || row.Probes != baseRow.Probes {
				log.Fatalf("P9: shards=%d stats diverge (derived %d vs %d, probes %d vs %d)",
					s, row.Derived, baseRow.Derived, row.Probes, baseRow.Probes)
			}
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("%-14s | %-9s | %7d | %8d | %8d | %9d | %8v\n",
			row.Workload, row.Config, row.Answers, row.Derived, row.Probes, row.Exchanged,
			time.Duration(row.WallNs).Round(10*time.Microsecond))
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
