package eval

// Cost-based join ordering (PolicyCost, PolicyAdaptive). The cost
// model is deliberately tiny — the estimates it consumes are the
// per-relation statistics the intern layer maintains for free (row
// count, per-column distinct sketches; see stats.go) — because the
// shootout this reproduces (PAPERS.md: "When Greedy Beats Optimal")
// hinges on planning staying cheap relative to the joins it saves.
//
// The estimated match count of probing subgoal s with some argument
// positions bound is
//
//	est(s) = n(s) / Π_{j bound} distinct(s, j)
//
// clamped to ≥1 once anything is bound (a probe can always match one
// row), and 0 for an empty relation. Ordering is greedy smallest-
// estimate-first over that model: ties keep the lowest subgoal index,
// so orders — and therefore Stats under each policy — stay
// deterministic for a fixed program, database, and options.

import "repro/internal/ast"

// relEstimate is the planning-time statistics snapshot of one
// subgoal's relation.
type relEstimate struct {
	n        int
	distinct []int // per column; nil when n == 0
}

// irelEstimate snapshots an interned relation (nil-safe).
func irelEstimate(rel *irel) relEstimate {
	if rel == nil || rel.n == 0 {
		return relEstimate{}
	}
	d := make([]int, rel.arity)
	for j := range d {
		d[j] = rel.distinct(j)
	}
	return relEstimate{n: rel.n, distinct: d}
}

// estFunc resolves the statistics of a subgoal (by index into
// Rule.Pos) at planning time.
type estFunc func(subIdx int) relEstimate

// costJoinOrder orders the subgoals of r greedily by minimum estimated
// match count under the model above. first pins a subgoal to depth 0
// (-1 for a free choice): round planning pins the delta occurrence —
// the executor's partitioning and delta-restriction contract — and
// mid-task reorders pin the depth-0 subgoal a task is already
// iterating. override maps subgoal index → observed fan-out; the
// adaptive executor feeds misestimates back through it, and it
// replaces the model's estimate whenever the subgoal is probed with
// some but not all positions bound (a fully-bound probe is a
// membership check, which the observation says nothing about).
//
// Returns the order and, per depth, the estimated rows matching each
// probe — what the adaptive executor compares observations against.
func costJoinOrder(r ast.Rule, first int, est estFunc, override map[int]float64) ([]int, []float64) {
	n := len(r.Pos)
	order := make([]int, 0, n)
	ests := make([]float64, 0, n)
	used := make([]bool, n)
	bound := map[string]bool{}

	fanout := func(i int) float64 {
		re := est(i)
		if re.n == 0 {
			return 0
		}
		args := r.Pos[i].Args
		boundCols := 0
		e := float64(re.n)
		for j, t := range args {
			if t.IsConst() || bound[t.Name] {
				boundCols++
				if d := re.distinct[j]; d > 1 {
					e /= float64(d)
				}
			}
		}
		if boundCols == 0 {
			return e
		}
		if ov, ok := override[i]; ok && boundCols < len(args) {
			return ov
		}
		if e < 1 {
			e = 1
		}
		return e
	}
	take := func(i int, e float64) {
		order = append(order, i)
		ests = append(ests, e)
		used[i] = true
		for _, t := range r.Pos[i].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}

	if first >= 0 && first < n {
		take(first, fanout(first))
	}
	for len(order) < n {
		best, bestE := -1, 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if e := fanout(i); best < 0 || e < bestE {
				best, bestE = i, e
			}
		}
		take(best, bestE)
	}
	return order, ests
}

// orderSig packs a join order into a cache key. Subgoal counts exceed
// a byte only for rules with >255 positive subgoals, which the parser
// would have long since made someone regret.
func orderSig(order []int) string {
	b := make([]byte, len(order))
	for i, v := range order {
		b[i] = byte(v)
	}
	return string(b)
}
