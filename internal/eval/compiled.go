package eval

// The compiled-plan engine (Options.CompilePlans). It mirrors the
// legacy evaluator's round structure — snapshot rounds, per-task output
// buffers, merge strictly in task order — but runs every hot path over
// interned data: rules become plans (plan.go), tuples become flat
// []uint32 rows (intern.go), and the per-candidate binding is a flat
// slot array instead of a map. Answers, Stats, and provenance are
// bit-identical to the legacy engine for every worker count; the
// differential tests in compiled_test.go enforce this.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/shard"
)

// evalCompiled evaluates p over edb with the compiled-plan engine,
// recording provenance steps into prov when non-nil. The caller has
// already validated p.
func evalCompiled(ctx context.Context, p *ast.Program, edb *DB, opts Options, prov *Provenance) (*DB, *Stats, error) {
	ev := &cEvaluator{
		ctx:     ctx,
		prog:    p,
		opts:    opts,
		policy:  opts.effectivePolicy(),
		workers: opts.effectiveWorkers(),
		stats:   &Stats{},
		prov:    prov,
	}
	if err := ev.prepare(edb); err != nil {
		return nil, nil, err
	}
	if err := ev.run(); err != nil {
		return nil, nil, err
	}
	return ev.publicIDB(), ev.stats, nil
}

type cEvaluator struct {
	ctx     context.Context
	prog    *ast.Program
	opts    Options
	policy  JoinOrderPolicy
	workers int
	stats   *Stats
	idbPr   map[string]bool
	in      *interner
	edb     map[string]*irel
	idb     map[string]*irel
	delta   map[string]*irel // tuples new in the previous round (semi-naive)
	plans   map[planKey]*plan
	// Cost/adaptive state (nil under greedy): cur holds the plans the
	// current round runs, re-chosen at every round barrier from live
	// relation statistics; planCache memoizes compiled plans by join
	// order so a recurring order costs one map hit; curEst holds the
	// per-depth match estimates backing the adaptive misestimate check.
	// All three are touched only at single-threaded round barriers.
	cur       map[planKey]*plan
	planCache map[planKey]map[string]*plan
	curEst    map[planKey][]float64
	prov      *Provenance
	// Sharding state (zero when Options.Shards < 2), mirroring the
	// legacy engine: owner slices are extended only at single-threaded
	// round barriers and read concurrently by tasks.
	shards int
	part   shard.Partitioner
	owners map[*irel][]uint8
}

// prepare compiles the program's plans and interns the EDB relations
// the program references. Interning is O(EDB) with small constants and
// happens once per evaluation, before any join runs.
func (ev *cEvaluator) prepare(edb *DB) error {
	if s := ev.opts.effectiveShards(); s > 0 {
		ev.shards = s
		ev.part = ev.opts.partitioner()
		ev.owners = map[*irel][]uint8{}
	}
	ev.idbPr = ev.prog.IDB()
	arity, err := ev.prog.PredArity()
	if err != nil {
		return err
	}
	ev.in = newInterner()
	ev.plans = map[planKey]*plan{}
	planStart := time.Now()
	for i, r := range ev.prog.Rules {
		ev.plans[planKey{i, -1}] = compilePlan(ev.in, ev.idbPr, r, i, -1)
		ev.stats.PlansCompiled++
		for occ, a := range r.Pos {
			if ev.idbPr[a.Pred] {
				ev.plans[planKey{i, occ}] = compilePlan(ev.in, ev.idbPr, r, i, occ)
				ev.stats.PlansCompiled++
			}
		}
	}
	ev.stats.PlanNanos += time.Since(planStart).Nanoseconds()
	if ev.policy != PolicyGreedy {
		// The greedy plans above stay the constant-interning pass and
		// the cache seed; the round loop re-chooses orders from live
		// statistics before building each round's tasks.
		ev.cur = map[planKey]*plan{}
		ev.planCache = map[planKey]map[string]*plan{}
		ev.curEst = map[planKey][]float64{}
	}

	referenced := map[string]bool{}
	for _, r := range ev.prog.Rules {
		for _, a := range r.Pos {
			if !ev.idbPr[a.Pred] {
				referenced[a.Pred] = true
			}
		}
		for _, a := range r.Neg {
			referenced[a.Pred] = true
		}
	}
	preds := make([]string, 0, len(referenced))
	for pred := range referenced {
		preds = append(preds, pred)
	}
	sort.Strings(preds) // deterministic interning order
	ev.edb = make(map[string]*irel, len(preds))
	for _, pred := range preds {
		rel := edb.Lookup(pred)
		if rel == nil {
			continue
		}
		ir := newIrel(rel.Arity, rel.Len())
		buf := make([]uint32, rel.Arity)
		for _, t := range rel.tuples {
			for j, v := range t {
				buf[j] = ev.in.intern(v)
			}
			ir.add(buf)
		}
		ev.edb[pred] = ir
	}

	ev.idb = make(map[string]*irel, len(ev.idbPr))
	for pred := range ev.idbPr {
		ev.idb[pred] = newIrel(arity[pred], 0)
	}
	return nil
}

func (ev *cEvaluator) run() error {
	if ev.opts.Seminaive {
		return ev.runSeminaive()
	}
	return ev.runNaive()
}

// planFor resolves the plan a task runs: the current round's
// cost-chosen plan when the policy re-plans, the prepare-time greedy
// plan otherwise.
func (ev *cEvaluator) planFor(ruleIdx, occ int) *plan {
	if ev.cur != nil {
		if pl, ok := ev.cur[planKey{ruleIdx, occ}]; ok {
			return pl
		}
	}
	return ev.plans[planKey{ruleIdx, occ}]
}

// planRound re-chooses this round's join orders from live relation
// statistics (cost/adaptive; greedy returns immediately). Runs at the
// round barrier, before tasks are built, so firstRelLen partitions the
// relation the chosen plan actually scans at depth 0.
func (ev *cEvaluator) planRound(keys []planKey, prevDelta map[string]*irel) {
	if ev.policy == PolicyGreedy {
		return
	}
	start := time.Now()
	for _, k := range keys {
		r := ev.prog.Rules[k.ruleIdx]
		order, ests := costJoinOrder(r, k.occ, ev.estFor(r, k.occ, prevDelta), nil)
		ev.cur[k] = ev.planOrdered(k, r, order)
		ev.curEst[k] = ests
	}
	ev.stats.PlanNanos += time.Since(start).Nanoseconds()
}

// planOrdered returns a compiled plan for the given order, reusing the
// prepare-time greedy plan when the orders coincide and memoizing
// everything else by order signature.
func (ev *cEvaluator) planOrdered(k planKey, r ast.Rule, order []int) *plan {
	if base := ev.plans[k]; intsEqual(base.order, order) {
		return base
	}
	sig := orderSig(order)
	byOrder := ev.planCache[k]
	if byOrder == nil {
		byOrder = map[string]*plan{}
		ev.planCache[k] = byOrder
	}
	pl := byOrder[sig]
	if pl == nil {
		pl = compilePlanOrdered(ev.in, ev.idbPr, r, k.ruleIdx, k.occ, false, order)
		ev.stats.PlansCompiled++
		byOrder[sig] = pl
	}
	return pl
}

// estFor resolves subgoal statistics against the current snapshot
// relations. Safe to call from inside a running task (adaptive
// reorders): rounds only read frozen relations, and the sketches are
// written solely at the merge barrier.
func (ev *cEvaluator) estFor(r ast.Rule, occ int, prevDelta map[string]*irel) estFunc {
	return func(si int) relEstimate {
		a := r.Pos[si]
		var rel *irel
		switch {
		case si == occ:
			rel = prevDelta[a.Pred]
		case ev.idbPr[a.Pred]:
			rel = ev.idb[a.Pred]
		default:
			rel = ev.edb[a.Pred]
		}
		return irelEstimate(rel)
	}
}

// taskParts is the partition count for depth-0 range splitting. The
// adaptive policy disables partitioning: its decisions are task-local,
// so tasks must be identical for every worker count to keep answers,
// Stats, and provenance worker-invariant.
func (ev *cEvaluator) taskParts() int {
	if ev.policy == PolicyAdaptive {
		return 1
	}
	return ev.workers
}

// firstRelLen mirrors evaluator.firstRelLen, except that the depth-0
// relation is the plan's first subgoal in plan order (which the
// partition ranges apply to), not necessarily Pos[0].
func (ev *cEvaluator) firstRelLen(ruleIdx, occ int, prevDelta map[string]*irel) int {
	pl := ev.planFor(ruleIdx, occ)
	if len(pl.subs) == 0 {
		return 0
	}
	rel := ev.subRel(&pl.subs[0], prevDelta)
	if rel == nil {
		return 0
	}
	return rel.n
}

func (ev *cEvaluator) subRel(sp *subPlan, prevDelta map[string]*irel) *irel {
	switch sp.src {
	case srcDelta:
		return prevDelta[sp.pred]
	case srcIDB:
		return ev.idb[sp.pred]
	default:
		return ev.edb[sp.pred]
	}
}

func (ev *cEvaluator) newDelta() map[string]*irel {
	d := make(map[string]*irel, len(ev.idb))
	for pred, ir := range ev.idb {
		d[pred] = newIrel(ir.arity, 0)
	}
	return d
}

func deltaTotal(d map[string]*irel) int {
	n := 0
	for _, ir := range d {
		n += ir.n
	}
	return n
}

// buildTasks plans the round's keys under the active policy and then
// expands them into (possibly partitioned) tasks.
func (ev *cEvaluator) buildTasks(tasks []task, keys []planKey, prevDelta map[string]*irel) []task {
	ev.planRound(keys, prevDelta)
	for _, k := range keys {
		t := task{ruleIdx: k.ruleIdx, occ: k.occ}
		if ev.shards > 0 {
			if pl := ev.planFor(k.ruleIdx, k.occ); len(pl.subs) > 0 {
				rel := ev.subRel(&pl.subs[0], prevDelta)
				tasks = appendSharded(tasks, t, ev.ownersFor(rel), ev.shards)
				continue
			}
			tasks = append(tasks, t)
			continue
		}
		tasks = appendPartitioned(tasks, t, ev.firstRelLen(k.ruleIdx, k.occ, prevDelta), ev.taskParts())
	}
	return tasks
}

func (ev *cEvaluator) runNaive() error {
	for {
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		ev.stats.Iterations++
		before := ev.stats.TuplesDerived
		keys := make([]planKey, 0, len(ev.prog.Rules))
		for i := range ev.prog.Rules {
			keys = append(keys, planKey{i, -1})
		}
		if err := ev.runRound(ev.buildTasks(nil, keys, nil), nil); err != nil {
			return err
		}
		if ev.stats.TuplesDerived == before {
			return nil
		}
	}
}

func (ev *cEvaluator) runSeminaive() error {
	ev.delta = ev.newDelta()
	if err := ev.ctx.Err(); err != nil {
		return err
	}
	ev.stats.Iterations++
	var keys []planKey
	for i, r := range ev.prog.Rules {
		if !r.IsInit(ev.idbPr) {
			continue
		}
		keys = append(keys, planKey{i, -1})
	}
	if err := ev.runRound(ev.buildTasks(nil, keys, nil), nil); err != nil {
		return err
	}
	var tasks []task
	for {
		if deltaTotal(ev.delta) == 0 {
			return nil
		}
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		prevDelta := ev.delta
		ev.delta = ev.newDelta()
		ev.stats.Iterations++
		keys = keys[:0]
		for i, r := range ev.prog.Rules {
			for occ, a := range r.Pos {
				if !ev.idbPr[a.Pred] {
					continue
				}
				keys = append(keys, planKey{i, occ})
			}
		}
		tasks = ev.buildTasks(tasks[:0], keys, prevDelta)
		if err := ev.runRound(tasks, prevDelta); err != nil {
			return err
		}
	}
}

// planSeg records, for provenance under adaptive reorders, which plan
// was live from a given head index onward: a head row must be
// materialized with the plan (and slot numbering) that produced its
// binding snapshot.
type planSeg struct {
	fromHead int
	pl       *plan
}

// cTaskResult is the private output buffer of one compiled task: the
// deduplicated head rows (flat, head-arity values each) and, when
// provenance is on, the slot-binding snapshot per head.
type cTaskResult struct {
	headRows []uint32
	nHeads   int
	rowIdx   []int32  // sharded tasks: depth-0 row index per head
	snaps    []uint32 // nSlots values per head
	probes   int64
	firings  int64
	// Adaptive-policy accounting, merged into Stats at the barrier.
	skips         int64
	reorders      int64
	plansCompiled int64
	planNanos     int64
	segs          []planSeg // mid-task plan swaps (provenance only)
	err           error
}

// runRound mirrors evaluator.runRound: bounded worker pool, results
// merged strictly in task order at the barrier.
func (ev *cEvaluator) runRound(tasks []task, prevDelta map[string]*irel) error {
	results := make([]cTaskResult, len(tasks))
	workers := ev.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					results[i] = ev.runTask(tasks[i], prevDelta)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, t := range tasks {
			results[i] = ev.runTask(t, prevDelta)
			if results[i].err != nil {
				break
			}
		}
	}

	roundDelta := map[string]int64{}
	for i := 0; i < len(results); {
		if tasks[i].nShards == 0 {
			if err := ev.mergeOne(&results[i], tasks[i], roundDelta); err != nil {
				return err
			}
			i++
			continue
		}
		// A shard group: the nShards tasks of one (rule, occ) unit,
		// merged by depth-0 row index to replay single-task order.
		j := i + 1
		for j < len(results) && tasks[j].nShards > 0 &&
			tasks[j].ruleIdx == tasks[i].ruleIdx && tasks[j].occ == tasks[i].occ {
			j++
		}
		if err := ev.mergeShardGroup(results[i:j], tasks[i:j], roundDelta); err != nil {
			return err
		}
		i = j
	}
	ev.stats.RoundDeltas = append(ev.stats.RoundDeltas, roundDelta)
	// Footprint at the round barrier, mirroring the legacy engine's
	// computation exactly (deltaTotal tolerates the nil delta of naive
	// and init rounds).
	peak := int64(0)
	for _, ir := range ev.idb {
		peak += int64(ir.n)
	}
	peak += int64(deltaTotal(ev.delta))
	if peak > ev.stats.PeakMaterialized {
		ev.stats.PeakMaterialized = peak
	}
	if ev.opts.MaxTuples > 0 && ev.stats.TuplesDerived > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	return nil
}

// mergeOne merges one unsharded task result, exactly the original
// in-task-order merge.
func (ev *cEvaluator) mergeOne(res *cTaskResult, t task, roundDelta map[string]int64) error {
	if res.err != nil {
		return res.err
	}
	ev.stats.JoinProbes += res.probes
	ev.stats.RuleFirings += res.firings
	ev.stats.AdaptiveSkips += res.skips
	ev.stats.AdaptiveReorders += res.reorders
	ev.stats.PlansCompiled += res.plansCompiled
	ev.stats.PlanNanos += res.planNanos
	pl := ev.planFor(t.ruleIdx, t.occ)
	ha := len(pl.head.isConst)
	idbRel := ev.idb[pl.head.pred]
	// Under adaptive reorders the task may have switched plans
	// mid-run; provPl tracks the plan live for each head index so
	// its snapshot is decoded with the right slot numbering. The
	// snap stride itself is uniform — nSlots is order-invariant.
	provPl, segIdx := pl, 0
	for h := 0; h < res.nHeads; h++ {
		row := res.headRows[h*ha : (h+1)*ha]
		if !idbRel.add(row) {
			continue // another task derived it first this round
		}
		ev.stats.TuplesDerived++
		roundDelta[pl.head.pred]++
		if ev.delta != nil {
			ev.delta[pl.head.pred].add(row)
		}
		if ev.prov != nil {
			for segIdx < len(res.segs) && res.segs[segIdx].fromHead <= h {
				provPl = res.segs[segIdx].pl
				segIdx++
			}
			snap := res.snaps[h*provPl.nSlots : (h+1)*provPl.nSlots]
			fact, step := ev.materialize(provPl, snap)
			ev.prov.steps[fact.Key()] = step
		}
	}
	return nil
}

// mergeShardGroup is mergeOne's shard-group counterpart: counters are
// summed in task order and heads are k-way merged by the depth-0 row
// index that produced them (see shard.go for why this reconstructs
// single-task order). Adaptive plan swaps cannot occur here — the
// policy is rejected with Options.Shards — so the group shares one
// plan and segs stay empty.
func (ev *cEvaluator) mergeShardGroup(results []cTaskResult, tasks []task, roundDelta map[string]int64) error {
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return res.err
		}
		ev.stats.JoinProbes += res.probes
		ev.stats.RuleFirings += res.firings
		ev.stats.AdaptiveSkips += res.skips
		ev.stats.AdaptiveReorders += res.reorders
		ev.stats.PlansCompiled += res.plansCompiled
		ev.stats.PlanNanos += res.planNanos
	}
	pl := ev.planFor(tasks[0].ruleIdx, tasks[0].occ)
	ha := len(pl.head.isConst)
	idbRel := ev.idb[pl.head.pred]
	pos := make([]int, len(results))
	for {
		best := -1
		var bestRow int32
		for k := range results {
			if pos[k] >= results[k].nHeads {
				continue
			}
			if r := results[k].rowIdx[pos[k]]; best < 0 || r < bestRow {
				best, bestRow = k, r
			}
		}
		if best < 0 {
			return nil
		}
		res := &results[best]
		h := pos[best]
		pos[best]++
		row := res.headRows[h*ha : (h+1)*ha]
		if !idbRel.add(row) {
			continue // a lower-rowIdx derivation merged it first
		}
		ev.stats.TuplesDerived++
		roundDelta[pl.head.pred]++
		if ev.delta != nil {
			ev.delta[pl.head.pred].add(row)
		}
		if ev.prov != nil {
			snap := res.snaps[h*pl.nSlots : (h+1)*pl.nSlots]
			fact, step := ev.materialize(pl, snap)
			ev.prov.steps[fact.Key()] = step
		}
		key := ""
		if ha > 0 {
			key = ev.in.termKey(row[0])
		}
		if ev.part.Shard(key, ev.shards) != tasks[best].shard {
			ev.stats.ShardExchanged++
		}
	}
}

// materialize converts a head row's slot snapshot back to the ground
// ast rule instance the legacy engine records, producing byte-identical
// provenance steps. Only runs at the merge for facts that are new.
func (ev *cEvaluator) materialize(pl *plan, snap []uint32) (ast.Atom, provStep) {
	head := ev.groundTpl(pl.head, snap)
	inst := ast.Rule{Head: head}
	for _, tpl := range pl.posTpls {
		inst.Pos = append(inst.Pos, ev.groundTpl(tpl, snap))
	}
	for _, tpl := range pl.negTpls {
		inst.Neg = append(inst.Neg, ev.groundTpl(tpl, snap))
	}
	return head, provStep{rule: inst, body: inst.Pos}
}

func (ev *cEvaluator) groundTpl(tpl atomTpl, snap []uint32) ast.Atom {
	args := make([]ast.Term, len(tpl.vals))
	for j, v := range tpl.vals {
		if tpl.isConst[j] {
			args[j] = ev.in.term(v)
		} else {
			args[j] = ev.in.term(snap[v])
		}
	}
	return ast.Atom{Pred: tpl.pred, Args: args}
}

// cTaskRun is the per-task evaluation state: a flat slot binding, a
// private output buffer with its dedup set, and reusable probe/negation
// scratch buffers. No allocation happens per candidate tuple.
type cTaskRun struct {
	ev     *cEvaluator
	pl     *plan
	delta  map[string]*irel
	lo, hi int
	// Sharded-task state, mirroring taskRun: only depth-0 rows owned by
	// shard are probed, and cur records the live depth-0 row index for
	// the barrier's k-way merge.
	sharded   bool
	shard     uint8
	owners    []uint8
	cur       int32
	binding   []uint32
	probeBufs [][]uint32 // per-depth bound-value scratch
	negBuf    []uint32
	headBuf   []uint32
	seen      rowHash // dedups headRows within this task
	res       cTaskResult
	base      int64
	// Adaptive-policy state (nil matches/est under other policies):
	// per-depth match counters and the planner's per-depth estimates,
	// compared between depth-0 rows by maybeReorder.
	est       []float64
	matches   []int64
	reordered bool
}

func (ev *cEvaluator) runTask(t task, prevDelta map[string]*irel) cTaskResult {
	pl := ev.planFor(t.ruleIdx, t.occ)
	if ev.policy == PolicyAdaptive {
		// Early exit on empty intermediates: a rule with any empty
		// positive subgoal cannot fire, whatever the join order.
		for i := range pl.subs {
			if rel := ev.subRel(&pl.subs[i], prevDelta); rel == nil || rel.n == 0 {
				return cTaskResult{skips: 1}
			}
		}
	}
	tr := &cTaskRun{
		ev:      ev,
		pl:      pl,
		delta:   prevDelta,
		lo:      t.lo,
		hi:      t.hi,
		sharded: t.nShards > 0,
		shard:   uint8(t.shard),
		owners:  t.owners,
		base:    ev.stats.TuplesDerived,
	}
	if ev.policy == PolicyAdaptive && len(pl.subs) > 1 {
		tr.est = ev.curEst[planKey{t.ruleIdx, t.occ}]
		tr.matches = make([]int64, len(pl.subs))
	}
	tr.binding = make([]uint32, pl.nSlots)
	tr.probeBufs = makeProbeBufs(pl)
	if pl.maxNegArity > 0 {
		tr.negBuf = make([]uint32, pl.maxNegArity)
	}
	ha := len(pl.head.isConst)
	tr.headBuf = make([]uint32, ha)
	tr.seen = rowHash{data: &tr.res.headRows, arity: ha}
	if err := tr.joinFrom(0); err != nil {
		tr.res.err = err
	}
	return tr.res
}

func makeProbeBufs(pl *plan) [][]uint32 {
	bufs := make([][]uint32, len(pl.subs))
	for i := range pl.subs {
		if n := len(pl.subs[i].boundPos); n > 0 {
			bufs[i] = make([]uint32, n)
		}
	}
	return bufs
}

// joinFrom extends the slot binding over the plan's subgoals starting
// at the given join depth.
func (tr *cTaskRun) joinFrom(depth int) error {
	ev := tr.ev
	if ev.opts.MaxTuples > 0 && tr.base+int64(tr.res.nHeads) > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	pl := tr.pl
	if depth == len(pl.subs) {
		return tr.finish()
	}
	sp := &pl.subs[depth]
	rel := ev.subRel(sp, tr.delta)
	if rel == nil || rel.n == 0 {
		return nil
	}
	lo, hi := 0, rel.n
	if depth == 0 && tr.hi > 0 {
		lo, hi = tr.lo, tr.hi
		if hi > rel.n {
			hi = rel.n
		}
	}
	if ev.opts.UseIndex && sp.indexable && len(sp.boundPos) > 0 {
		vals := tr.probeBufs[depth]
		for k, c := range sp.boundConst {
			if c {
				vals[k] = sp.boundVal[k]
			} else {
				vals[k] = tr.binding[sp.boundVal[k]]
			}
		}
		ix := rel.index(sp.mask, sp.boundPos)
		// An empty lookup is a successful (and final) answer; never
		// fall back to a scan.
		for ri := ix.lookup(rel, vals); ri >= 0; ri = ix.next[ri] {
			if int(ri) < lo || int(ri) >= hi {
				continue
			}
			if depth == 0 && tr.sharded {
				if tr.owners[ri] != tr.shard {
					continue
				}
				tr.cur = ri
			}
			if err := tr.tryRow(depth, rel.row(int(ri)), false); err != nil {
				return err
			}
			if depth == 0 && tr.matches != nil {
				tr.maybeReorder()
			}
		}
		return nil
	}
	for i := lo; i < hi; i++ {
		if depth == 0 && tr.sharded {
			if tr.owners[i] != tr.shard {
				continue
			}
			tr.cur = int32(i)
		}
		if err := tr.tryRow(depth, rel.row(i), true); err != nil {
			return err
		}
		if depth == 0 && tr.matches != nil {
			tr.maybeReorder()
		}
	}
	return nil
}

// Adaptive mid-task reorder thresholds: an observation needs a minimum
// sample before it is trusted, and must be more than adaptFactor above
// the planner's estimate (the issue's ">10x off" rule) to trigger.
const (
	adaptMinMatches = 32
	adaptFactor     = 10.0
)

// maybeReorder is the adaptive policy's checkpoint, run between
// depth-0 rows (so no deeper join frame is live). It compares each
// depth's observed fan-out — matches[d] per arrival, where arrivals at
// depth d are matches[d-1] — against the plan estimate; on a >10x
// misestimate it recomputes the tail order with the observation fed
// back, compiles the new plan task-privately (the interner is only
// read: every rule constant was interned in prepare), and swaps it in.
// The depth-0 subgoal is pinned — its iteration is in progress — and
// the binding buffer carries over: nSlots is order-invariant, and a
// slot is only read at depths where the live plan bound it, the same
// argument that lets backtracking skip undo. At most one reorder per
// task, and every input is task-local and content-deterministic, so
// results stay identical for every worker count.
func (tr *cTaskRun) maybeReorder() {
	if tr.reordered {
		return
	}
	pl := tr.pl
	var override map[int]float64
	for d := 1; d < len(pl.subs); d++ {
		arrivals := tr.matches[d-1]
		if arrivals == 0 || tr.matches[d] < adaptMinMatches {
			continue
		}
		est := tr.est[d]
		if est < 1 {
			est = 1
		}
		if float64(tr.matches[d]) > adaptFactor*est*float64(arrivals) {
			if override == nil {
				override = map[int]float64{}
			}
			override[pl.subs[d].subIdx] = float64(tr.matches[d]) / float64(arrivals)
		}
	}
	if override == nil {
		return
	}
	tr.reordered = true // one reorder per task, even if the order stands
	ev := tr.ev
	r := ev.prog.Rules[pl.ruleIdx]
	start := time.Now()
	order, ests := costJoinOrder(r, pl.order[0], ev.estFor(r, pl.occ, tr.delta), override)
	if intsEqual(order, pl.order) {
		tr.res.planNanos += time.Since(start).Nanoseconds()
		return
	}
	npl := compilePlanOrdered(ev.in, ev.idbPr, r, pl.ruleIdx, pl.occ, false, order)
	tr.res.planNanos += time.Since(start).Nanoseconds()
	tr.res.plansCompiled++
	tr.res.reorders++
	if ev.prov != nil {
		tr.res.segs = append(tr.res.segs, planSeg{fromHead: tr.res.nHeads, pl: npl})
	}
	tr.pl = npl
	tr.est = ests
	for d := range tr.matches {
		tr.matches[d] = 0
	}
	tr.probeBufs = makeProbeBufs(npl)
}

// tryRow is the compiled tryTuple: one candidate row at one depth.
// verify is true on the scan path, where bound positions must be
// re-checked; index candidates match them by construction (the index
// compares values exactly, so collisions never reach here).
func (tr *cTaskRun) tryRow(depth int, row []uint32, verify bool) error {
	tr.res.probes++
	if tr.res.probes&cancelPollMask == 0 {
		if err := tr.ev.ctx.Err(); err != nil {
			return err
		}
	}
	sp := &tr.pl.subs[depth]
	if verify {
		for k, p := range sp.boundPos {
			want := sp.boundVal[k]
			if !sp.boundConst[k] {
				want = tr.binding[want]
			}
			if row[p] != want {
				return nil
			}
		}
	}
	// Bind fresh slots, then check repeated in-atom occurrences. No
	// undo is needed on backtrack: a slot is only read at depths where
	// the plan statically bound it.
	for k, p := range sp.bindPos {
		tr.binding[sp.bindSlot[k]] = row[p]
	}
	for k, p := range sp.checkPos {
		if row[p] != tr.binding[sp.checkSlot[k]] {
			return nil
		}
	}
	for i := range sp.cmps {
		if !tr.evalCmp(&sp.cmps[i]) {
			return nil
		}
	}
	for i := range sp.negs {
		if tr.negContains(&sp.negs[i]) {
			return nil
		}
	}
	if tr.matches != nil {
		tr.matches[depth]++
	}
	return tr.joinFrom(depth + 1)
}

// evalCmp evaluates a compiled comparison. Equality on canonical intern
// ids is id equality; the four order operators delegate to Term.Compare
// on the resolved terms.
func (tr *cTaskRun) evalCmp(c *cmpPlan) bool {
	l, r := c.l, c.r
	if !c.lConst {
		l = tr.binding[l]
	}
	if !c.rConst {
		r = tr.binding[r]
	}
	switch c.op {
	case ast.EQ:
		return l == r
	case ast.NE:
		return l != r
	}
	return ast.NewCmp(tr.ev.in.term(l), c.op, tr.ev.in.term(r)).Eval()
}

// negContains reports whether the ground instance of a negated subgoal
// is present in the EDB (negation ranges over EDB relations only,
// matching filtersHold).
func (tr *cTaskRun) negContains(tpl *atomTpl) bool {
	rel := tr.ev.edb[tpl.pred]
	if rel == nil {
		return false
	}
	buf := tr.negBuf[:len(tpl.isConst)]
	for j, c := range tpl.isConst {
		if c {
			buf[j] = tpl.vals[j]
		} else {
			buf[j] = tr.binding[tpl.vals[j]]
		}
	}
	return rel.contains(buf)
}

// finish emits the head row for a complete binding, mirroring
// finishRule: firings count before dedup, per-task dedup plus a
// snapshot-IDB membership check.
func (tr *cTaskRun) finish() error {
	pl := tr.pl
	for i := range pl.finishCmps {
		if !tr.evalCmp(&pl.finishCmps[i]) {
			return nil
		}
	}
	for i := range pl.finishNegs {
		if tr.negContains(&pl.finishNegs[i]) {
			return nil
		}
	}
	tr.res.firings++
	row := tr.headBuf
	for j, c := range pl.head.isConst {
		if c {
			row[j] = pl.head.vals[j]
		} else {
			row[j] = tr.binding[pl.head.vals[j]]
		}
	}
	slot, hv, found := tr.seen.insertLookup(row)
	if found {
		return nil
	}
	if rel := tr.ev.idb[pl.head.pred]; rel != nil && rel.contains(row) {
		return nil
	}
	idx := int32(tr.res.nHeads)
	tr.res.headRows = append(tr.res.headRows, row...)
	tr.res.nHeads++
	tr.seen.place(slot, hv, idx)
	if tr.sharded {
		tr.res.rowIdx = append(tr.res.rowIdx, tr.cur)
	}
	if tr.ev.prov != nil {
		tr.res.snaps = append(tr.res.snaps, tr.binding...)
	}
	return nil
}

// publicIDB converts the interned IDB back to a public DB. Rows are
// already deduplicated, so tuples and seen keys are written directly;
// the keys reuse each distinct term's rendered Term.Key, making the
// conversion linear with small constants.
func (ev *cEvaluator) publicIDB() *DB {
	out := NewDB()
	var b strings.Builder
	for pred, ir := range ev.idb {
		rel := NewRelation(ir.arity)
		rel.tuples = make([]Tuple, 0, ir.n)
		for i := 0; i < ir.n; i++ {
			row := ir.row(i)
			t := make(Tuple, ir.arity)
			for j, id := range row {
				t[j] = ev.in.term(id)
			}
			rel.seen[ev.in.rowKey(&b, row)] = true
			rel.tuples = append(rel.tuples, t)
		}
		out.rels[pred] = rel
	}
	return out
}
