package sqo

import (
	"strings"
	"testing"

	"repro/internal/tcm"
	"repro/internal/workload"
)

func TestFacadeOptimizeAndEval(t *testing.T) {
	p := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	res, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("satisfiable expected")
	}
	db := NewDBFrom(workload.GoodPath(50, 100, 30))
	want, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Query(res.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("answers: want %v, got %v", want, got)
	}
}

func TestFacadeBaselineOptimize(t *testing.T) {
	p := MustParseProgram(`
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		path(X, Y) :- step(X, Y).
		?- goodPath.
	`)
	ics := MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	opt := BaselineOptimize(p, ics)
	if len(opt.Rules) != 2 {
		t.Fatalf("baseline should keep both rules:\n%s", opt)
	}
}

func TestFacadeSatisfiableAndEmpty(t *testing.T) {
	p := MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		?- q.
	`)
	ics := MustParseICs(`:- a(X, Y), b(Y, Z).`)
	sat, err := Satisfiable(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatal("should be unsatisfiable")
	}
	empty, decided, err := Empty(p, ics, EmptinessOptions{})
	if err != nil || !decided || !empty {
		t.Fatalf("empty=%v decided=%v err=%v", empty, decided, err)
	}
}

func TestFacadeContainment(t *testing.T) {
	u1 := MustParseProgram(`q(X) :- e(X, Y), e(Y, Z).`).Rules[0]
	u2 := MustParseProgram(`q(X) :- e(X, Y).`).Rules[0]
	got, err := CQContained(u1, u2)
	if err != nil || !got {
		t.Fatalf("containment expected: %v %v", got, err)
	}
}

func TestFacadeTwoCounter(t *testing.T) {
	m := tcm.Halting2Step()
	prog, ics, err := EncodeTwoCounter(m)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Query != "halt" || len(ics) == 0 {
		t.Fatal("encoding malformed")
	}
	facts, halted := TwoCounterTraceDB(m, 10)
	if !halted || len(facts) == 0 {
		t.Fatal("trace malformed")
	}
	db := NewDBFrom(facts)
	tuples, _, err := Query(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("halt not derived: %v", tuples)
	}
}

func TestFacadeExplain(t *testing.T) {
	p := MustParseProgram(`
		p(X, Y) :- a(X, Y).
		p(X, Y) :- b(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Z), p(Z, Y).
		?- p.
	`)
	res, err := Optimize(p, MustParseICs(`:- a(X, Y), b(Y, Z).`))
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(res)
	if !strings.Contains(s, "=== tree") {
		t.Fatalf("Explain output wrong:\n%s", s)
	}
	if Explain(nil) != "(no query tree)" {
		t.Fatal("nil Explain")
	}
}

func TestFormatProgramRoundTrips(t *testing.T) {
	p := MustParseProgram(`
		p(X) :- e(X), X < 5.
		?- p.
	`)
	s := FormatProgram(p)
	p2, err := ParseProgram(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if p2.Query != "p" || len(p2.Rules) != 1 {
		t.Fatal("round trip lost content")
	}
}

func TestOptimizedProgramsReparse(t *testing.T) {
	// The rewritten program (with generated predicate names) must be
	// valid parser syntax — downstream users will want to print and
	// store it.
	p := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	res, err := Optimize(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProgram(FormatProgram(res.Program)); err != nil {
		t.Fatalf("rewritten program does not reparse: %v\n%s", err, FormatProgram(res.Program))
	}
}

func TestFacadeEvalProv(t *testing.T) {
	p := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDBFrom(MustParseFacts(`step(1, 2). step(2, 3).`))
	idb, explain, stats, err := EvalProv(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Count("path") != 3 || stats.TuplesDerived != 3 {
		t.Fatalf("counts wrong: %d %d", idb.Count("path"), stats.TuplesDerived)
	}
	d, err := explain(MustParseFacts(`path(1, 3).`)[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() < 3 || d.Depth() < 2 {
		t.Fatalf("derivation too small:\n%s", d)
	}
	if _, err := explain(MustParseFacts(`path(3, 1).`)[0]); err == nil {
		t.Fatal("underived fact must error")
	}
}
