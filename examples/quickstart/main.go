// Quickstart: parse a program and integrity constraints, optimize,
// evaluate both versions, and compare the work done.
//
// This is Example 3.1 of the paper: goodPath connects start points to
// end points through a transitive closure of steps, and the single
// constraint "end points are above all start points" lets the
// optimizer add the selection Y > X to the goodPath rule.
package main

import (
	"fmt"
	"log"

	sqo "repro"
)

func main() {
	program, err := sqo.ParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	if err != nil {
		log.Fatal(err)
	}
	ics, err := sqo.ParseICs(`
		:- startPoint(X), endPoint(Y), Y <= X.
	`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sqo.Optimize(program, ics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== rewritten program ==")
	fmt.Print(sqo.FormatProgram(res.Program))

	// A small database satisfying the constraint.
	facts, err := sqo.ParseFacts(`
		step(1, 2). step(2, 3). step(3, 4). step(2, 5). step(5, 4).
		startPoint(1). startPoint(2).
		endPoint(4). endPoint(5).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := sqo.NewDBFrom(facts)

	orig, s1, err := sqo.Query(program, db)
	if err != nil {
		log.Fatal(err)
	}
	opt, s2, err := sqo.Query(res.Program, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== answers ==")
	fmt.Printf("original : %d tuples, %d join probes\n", len(orig), s1.JoinProbes)
	fmt.Printf("optimized: %d tuples, %d join probes\n", len(opt), s2.JoinProbes)
	for _, t := range opt {
		fmt.Printf("  goodPath%s\n", t)
	}
}
