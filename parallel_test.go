package sqo

// Differential tests for the parallel semi-naive engine: for every
// example program in examples/ (original AND optimizer-rewritten
// form), and for randomized programs over random databases, parallel
// evaluation must produce byte-identical answer sets and identical
// Stats (Iterations, TuplesDerived, RuleFirings, JoinProbes) for every
// worker count. The engine guarantees this by construction — rounds
// evaluate a frozen snapshot and merge per-task buffers in rule order
// at the round barrier — and these tests pin the guarantee.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/workload"
)

var parallelWorkerCounts = []int{1, 2, 4, 8}

// exampleCases mirrors the programs of the runnable examples/ set,
// with representative databases.
func exampleCases(t *testing.T) []struct {
	name string
	prog *Program
	ics  []IC
	db   *DB
} {
	t.Helper()
	return []struct {
		name string
		prog *Program
		ics  []IC
		db   *DB
	}{
		{
			name: "quickstart",
			prog: MustParseProgram(`
				path(X, Y) :- step(X, Y).
				path(X, Y) :- step(X, Z), path(Z, Y).
				goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
				?- goodPath.
			`),
			ics: MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`),
			db: NewDBFrom(MustParseFacts(`
				step(1, 2). step(2, 3). step(3, 4). step(2, 5). step(5, 4).
				startPoint(1). startPoint(2).
				endPoint(4). endPoint(5).
			`)),
		},
		{
			name: "goodpath",
			prog: MustParseProgram(`
				path(X, Y) :- step(X, Y).
				path(X, Y) :- step(X, Z), path(Z, Y).
				goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
				?- goodPath.
			`),
			ics: MustParseICs(`
				:- startPoint(X), step(X, Y), X < 100.
				:- step(X, Y), X >= Y.
			`),
			db: NewDBFrom(workload.GoodPath(120, 100, 40)),
		},
		{
			name: "transclosure",
			prog: MustParseProgram(`
				p(X, Y) :- a(X, Y).
				p(X, Y) :- b(X, Y).
				p(X, Y) :- a(X, Z), p(Z, Y).
				p(X, Y) :- b(X, Z), p(Z, Y).
				?- p.
			`),
			ics: MustParseICs(`:- a(X, Y), b(Y, Z).`),
			db:  NewDBFrom(workload.ABComb(4, 8, 8)),
		},
		{
			name: "funcdep",
			prog: MustParseProgram(`
				conflict(E) :- manages(E, M1), manages(E, M2), M1 < M2.
				boss(E, M) :- manages(E, M).
				boss(E, M) :- manages(E, X), boss(X, M).
				top(E, M) :- boss(E, M), ceo(M).
				?- top.
			`),
			ics: MustParseICs(`:- manages(E, M1), manages(E, M2), M1 != M2.`),
			db: NewDBFrom(MustParseFacts(`
				manages(dana, erin). manages(erin, frank). manages(frank, grace).
				ceo(grace).
			`)),
		},
		{
			// A miniature of the Theorem 5.4 two-counter encoding (the
			// same shape internal/qtree's stress test uses): the real
			// tcm.Encode constraint set is too large for Optimize, but
			// the reach/halt recursion over a trace database is exactly
			// the evaluation pattern the example exercises.
			name: "undecidable",
			prog: MustParseProgram(`
				reach(T) :- cnfg(T, C1, C2, S), zero(T).
				reach(T2) :- reach(T), succ(T, T2), cnfg(T2, C1, C2, S).
				halt :- reach(T), cnfg(T, C1, C2, S), zero(Z0), succ(Z0, Z1), succ(Z1, S).
				?- halt.
			`),
			ics: MustParseICs(`
				:- succ(X, Y), !dom(X).
				:- succ(X, Y), !dom(Y).
				:- zero(X), !dom(X).
				:- succ(X, Y), zero(Y).
			`),
			db: NewDBFrom(MustParseFacts(`
				zero(0). succ(0, 1). succ(1, 2).
				dom(0). dom(1). dom(2).
				cnfg(0, 0, 0, 0). cnfg(1, 1, 0, 1). cnfg(2, 2, 0, 2).
			`)),
		},
	}
}

// assertWorkersAgree evaluates prog on db under every worker count and
// fails unless relations and stats are identical across all of them.
func assertWorkersAgree(t *testing.T, label string, prog *Program, db *DB) {
	t.Helper()
	var first *DB
	var firstStats *Stats
	for _, w := range parallelWorkerCounts {
		idb, stats, err := EvalWith(prog, db, EvalOptions{Seminaive: true, UseIndex: true, Workers: w})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", label, w, err)
		}
		if first == nil {
			first, firstStats = idb, stats
			continue
		}
		if !stats.Equal(firstStats) {
			t.Fatalf("%s: stats differ at workers=%d:\n%+v\nvs\n%+v", label, w, *firstStats, *stats)
		}
		for _, pred := range first.Preds() {
			want := first.SortedFacts(pred)
			if got := idb.SortedFacts(pred); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: workers=%d disagrees on %s:\n%v\nvs\n%v", label, w, pred, got, want)
			}
		}
	}
}

// TestParallelAgreesOnExamplePrograms runs the differential check on
// every example program, both the original and the optimizer-rewritten
// form (when the constraints are supported).
func TestParallelAgreesOnExamplePrograms(t *testing.T) {
	for _, c := range exampleCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			assertWorkersAgree(t, c.name+"/original", c.prog, c.db)
			res, err := Optimize(c.prog, c.ics)
			if err != nil {
				t.Fatalf("%s: optimize: %v", c.name, err)
			}
			assertWorkersAgree(t, c.name+"/rewritten", res.Program, c.db)
		})
	}
}

// randomProgram generates a random safe datalog program: binary IDB
// predicates p0..p2 defined by 2-atom join rules over a random mix of
// the EDB predicate e and the IDB predicates, sometimes guarded by a
// comparison filter.
func randomProgram(rng *rand.Rand) (*Program, error) {
	vars := []string{"X", "Y", "Z", "W"}
	preds := []string{"e", "p0", "p1", "p2"}
	nRules := 3 + rng.Intn(5)
	src := "p0(X, Y) :- e(X, Y).\n" // ensure p0 is initialized
	for i := 0; i < nRules; i++ {
		head := fmt.Sprintf("p%d", rng.Intn(3))
		// Chain-join two atoms so every head variable is bound.
		b1 := preds[rng.Intn(len(preds))]
		b2 := preds[rng.Intn(len(preds))]
		v1, v2, v3 := vars[0], vars[1], vars[2]
		rule := fmt.Sprintf("%s(%s, %s) :- %s(%s, %s), %s(%s, %s)",
			head, v1, v3, b1, v1, v2, b2, v2, v3)
		if rng.Intn(3) == 0 {
			ops := []string{"<", "<=", "!=", ">"}
			rule += fmt.Sprintf(", %s %s %s", v1, ops[rng.Intn(len(ops))], v3)
		}
		src += rule + ".\n"
	}
	src += "?- p0.\n"
	return ParseProgram(src)
}

// TestParallelAgreesOnRandomPrograms is the randomized differential
// test: random programs over random graphs, all worker counts, answers
// and stats identical.
func TestParallelAgreesOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 0
	for trials < 25 {
		prog, err := randomProgram(rng)
		if err != nil {
			continue // rare: generator produced an invalid program
		}
		trials++
		n := 4 + rng.Intn(6)
		db := NewDBFrom(workload.RandomGraph(n, n*3, rng.Int63()))
		// RandomGraph emits edge/2; the generator uses e/2.
		facts := db.Facts("edge")
		db2 := NewDB()
		for _, f := range facts {
			f.Pred = "e"
			db2.AddFact(f)
		}
		assertWorkersAgree(t, fmt.Sprintf("random-%d", trials), prog, db2)
	}
}

// TestParallelDefaultWorkers checks that the Workers=0 default (one
// worker per CPU) matches explicit sequential evaluation.
func TestParallelDefaultWorkers(t *testing.T) {
	prog := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDBFrom(workload.Chain(1, 60))
	seq, seqStats, err := EvalWith(prog, db, EvalOptions{Seminaive: true, UseIndex: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, defStats, err := Eval(prog, db) // DefaultOptions: Workers = 0
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Equal(defStats) {
		t.Fatalf("stats differ:\n%+v\nvs\n%+v", *seqStats, *defStats)
	}
	if !reflect.DeepEqual(seq.SortedFacts("path"), def.SortedFacts("path")) {
		t.Fatal("answers differ between default and sequential evaluation")
	}
}
