package qtree

import (
	"context"
	"fmt"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/rewrite"
)

// Options selects which passes of the full pipeline run; the zero
// value disables everything except the core algorithm (useful for
// ablations). Use DefaultOptions for the paper's full pipeline.
type Options struct {
	// NormalizeOrder runs the rule-local [LMSS93] normalization.
	NormalizeOrder bool
	// LocalRewrite runs the Section 4.2 local-atom case split.
	LocalRewrite bool
	// PushOrder runs the [LS92, LMSS93] selection-pushing pass.
	PushOrder bool
}

// DefaultOptions enables the full pipeline assumed by Theorem 4.2.
func DefaultOptions() Options {
	return Options{NormalizeOrder: true, LocalRewrite: true, PushOrder: true}
}

// Outcome is the result of semantic query optimization.
type Outcome struct {
	// Program is the rewritten program P′, equivalent to the input on
	// every database satisfying the constraints, in which every IDB
	// goal node of every symbolic derivation tree is query reachable.
	Program *ast.Program
	// Satisfiable reports whether the query predicate has any
	// consistent derivation at all; when false, Program has no rules
	// for the query predicate.
	Satisfiable bool
	// Tree is the query forest (Figure 1 of the paper).
	Tree *Tree
	// Warnings lists constraints that were skipped (non-local negated
	// atoms — Theorem 5.4 territory).
	Warnings []string
	// Pipeline records the intermediate programs for inspection.
	Pipeline PipelinePrograms
}

// PipelinePrograms exposes the intermediate stages.
type PipelinePrograms struct {
	Normalized *ast.Program // after order normalization
	Local      *ast.Program // after the Section 4.2 case split
	Pushed     *ast.Program // after selection pushing
	Spec       *adorn.SpecProgram
}

// Optimize runs the complete semantic-query-optimization pipeline of
// the paper on a program and a set of integrity constraints.
func Optimize(p *ast.Program, ics []ast.IC) (*Outcome, error) {
	return OptimizeWith(p, ics, DefaultOptions())
}

// OptimizeWith is Optimize with explicit pass selection.
func OptimizeWith(p *ast.Program, ics []ast.IC, opts Options) (*Outcome, error) {
	return OptimizeCtx(context.Background(), p, ics, opts)
}

// OptimizeCtx is OptimizeWith under a context. The rewrite pipeline is
// pass-structured rather than tuple-at-a-time, so cancellation is
// checked at every pass boundary: a cancelled optimization returns the
// context's error before starting its next pass.
func OptimizeCtx(ctx context.Context, p *ast.Program, ics []ast.IC, opts Options) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qtree: invalid program: %w", err)
	}
	if p.Query == "" {
		return nil, fmt.Errorf("qtree: program has no query predicate (add a '?- pred.' declaration)")
	}
	if err := p.ValidateICs(ics); err != nil {
		return nil, fmt.Errorf("qtree: invalid constraints: %w", err)
	}

	out := &Outcome{}
	cur := p.Clone()
	if opts.NormalizeOrder {
		cur = rewrite.NormalizeOrder(cur)
	}
	out.Pipeline.Normalized = cur

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.LocalRewrite {
		plans := rewrite.PlanICs(ics)
		cur = rewrite.RewriteLocalPlanned(cur, plans)
	}
	out.Pipeline.Local = cur

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.PushOrder {
		pushed, err := rewrite.PushOrder(cur)
		if err != nil {
			return nil, err
		}
		cur = pushed
	}
	out.Pipeline.Pushed = cur

	// Footnote-1 equating: equalities forced by every head of a
	// predicate are propagated into its callers. Always on — it is a
	// precision requirement of the algorithm, not an optional pass.
	cur = rewrite.PropagateHeadEqualities(cur)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, err := adorn.Specialize(cur)
	if err != nil {
		return nil, err
	}
	out.Pipeline.Spec = sp

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := adorn.BottomUp(sp, ics)
	if err != nil {
		return nil, err
	}
	out.Warnings = res.Warnings

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tree := Build(res)
	tree.Prune()
	out.Tree = tree
	out.Program = tree.Extract()
	// Satisfiability per the tree, tightened by extraction: attached
	// order residues may have normalized away every rule of the query.
	out.Satisfiable = tree.Satisfiable() && len(out.Program.RulesFor(out.Program.Query)) > 0

	// Residue atoms were attached where their mappings complete; a
	// final selection-pushing pass moves them "to the earliest possible
	// point in the evaluation of the program" (Section 3), exactly as
	// the paper places them. Only worthwhile when the query survived.
	if opts.PushOrder && out.Satisfiable {
		pushed, err := rewrite.PushOrder(out.Program)
		if err == nil {
			out.Program = pushed
		}
	}
	// The optimizer rewrites rules only; the goal's argument terms pass
	// through untouched so goal-directed evaluation (eval.QueryCtx, the
	// magic-sets rewrite) still sees the query's bindings.
	if len(p.Goal) > 0 {
		out.Program.Goal = append([]ast.Term(nil), p.Goal...)
	}
	return out, nil
}
