// sqolint — semantic static analysis for datalog programs.
//
// Reads one or more datalog sources (rules, integrity constraints,
// ground facts, an optional '?- pred.' query declaration) and reports
// structured diagnostics: rules whose bodies the constraints make
// unsatisfiable, provably empty IDB predicates and the dead rules that
// read them, rules subsumed by a sibling, constraint features that
// fall outside the decidable fragments of the theory, plain hygiene
// problems, and recursion that is provably bounded and therefore
// eliminable. With no file arguments it reads standard input.
//
// Usage:
//
//	sqolint [-json] [-facts file] [-timeout d]
//	        [-chase-steps n] [-max-linearizations n] [file ...]
//
// Exit status (identical for the text and -json renderers):
//
//	0  no Error-severity findings
//	1  at least one Error-severity finding
//	2  usage or parse failure
package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"

	sqo "repro"
)

const (
	exitFindings = 1
	exitUsage    = 2
)

// fileReport pairs a lint report with the input it came from, for the
// JSON rendering of multi-file runs.
type fileReport struct {
	Name string `json:"name"`
	*sqo.LintReport
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flag parsing,
// linting, rendering, and the exit status. The status contract is
// renderer-independent — the JSON path and the text path must agree —
// and cmd/sqolint's tests pin that parity.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	logger := log.New(stderr, "sqolint: ", 0)
	fs := flag.NewFlagSet("sqolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as JSON instead of text")
	factsPath := fs.String("facts", "", "file of extra ground facts checked alongside every input")
	timeout := fs.Duration("timeout", 0, "wall-clock bound on the semantic checks (0 = none)")
	chaseSteps := fs.Int("chase-steps", 0, "chase step budget for constraints with negation (0 = default)")
	maxLin := fs.Int("max-linearizations", 0, "linearization budget for order-atom satisfiability (0 = default)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := sqo.LintOptions{}
	opts.Emptiness.ChaseSteps = *chaseSteps
	opts.Emptiness.MaxLinearizations = *maxLin

	var extraFacts []sqo.Atom
	if *factsPath != "" {
		b, err := os.ReadFile(*factsPath)
		if err != nil {
			logger.Print(err)
			return exitUsage
		}
		extraFacts, err = sqo.ParseFacts(string(b))
		if err != nil {
			logger.Print(err)
			return exitUsage
		}
	}

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	var reports []fileReport
	for _, path := range inputs {
		name, src, err := readInput(path, stdin)
		if err != nil {
			logger.Print(err)
			return exitUsage
		}
		rep, err := lintSource(ctx, src, extraFacts, opts)
		if err != nil {
			logger.Printf("%s: %v", name, err)
			return exitUsage
		}
		reports = append(reports, fileReport{Name: name, LintReport: rep})
	}

	sawErrors := false
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			logger.Print(err)
			return exitUsage
		}
		for _, fr := range reports {
			if fr.HasErrors() {
				sawErrors = true
			}
		}
	} else {
		for _, fr := range reports {
			name := fr.Name
			if len(reports) == 1 && name == "<stdin>" {
				name = ""
			}
			if err := sqo.WriteLintText(stdout, name, fr.LintReport); err != nil {
				logger.Print(err)
				return exitUsage
			}
			if fr.HasErrors() {
				sawErrors = true
			}
		}
	}
	if sawErrors {
		return exitFindings
	}
	return 0
}

// lintSource parses one source text and lints it with the extra facts
// appended.
func lintSource(ctx context.Context, src string, extraFacts []sqo.Atom, opts sqo.LintOptions) (*sqo.LintReport, error) {
	unit, err := sqo.Parse(src)
	if err != nil {
		return nil, err
	}
	facts := append(append([]sqo.Atom{}, unit.Facts...), extraFacts...)
	return sqo.Lint(ctx, unit.Program, unit.ICs, facts, opts), nil
}

func readInput(path string, stdin io.Reader) (name, src string, err error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return "<stdin>", string(b), err
	}
	b, err := os.ReadFile(path)
	return path, string(b), err
}
