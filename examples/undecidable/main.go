// undecidable walks through the Theorem 5.4 construction: datalog
// satisfiability with {¬}-integrity-constraints encodes the halting
// problem of two-counter machines. The program builds the appendix's
// encoding for three machines, materializes bounded runs as concrete
// databases, and shows that (a) correct traces satisfy every
// constraint, (b) the halt query is derivable exactly when the machine
// halted, and (c) corrupted traces violate the transition constraints.
package main

import (
	"fmt"
	"log"

	sqo "repro"
	"repro/internal/chase"
	"repro/internal/tcm"
)

func inspect(name string, m *sqo.Machine, steps int) {
	prog, ics, err := sqo.EncodeTwoCounter(m)
	if err != nil {
		log.Fatal(err)
	}
	facts, halted := sqo.TwoCounterTraceDB(m, steps)
	consistent, err := chase.IsConsistent(facts, ics)
	if err != nil {
		log.Fatal(err)
	}
	db := sqo.NewDBFrom(facts)
	tuples, _, err := sqo.Query(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s halted=%-5v trace-consistent=%-5v halt-derived=%v (|EDB|=%d, |ICs|=%d)\n",
		name, halted, consistent, len(tuples) == 1, len(facts), len(ics))
}

func main() {
	fmt.Println("Theorem 5.4: satisfiability with {¬}-ic's encodes 2-counter-machine halting.")
	fmt.Println()

	inspect("halting-2", tcm.Halting2Step(), 10)
	inspect("countdown-4", tcm.CountdownMachine(4), 100)
	inspect("diverging", tcm.Diverging(), 25)

	// A corrupted trace: claim the halting machine skipped a step.
	m := tcm.Halting2Step()
	_, ics, err := sqo.EncodeTwoCounter(m)
	if err != nil {
		log.Fatal(err)
	}
	trace, _ := m.Run(10)
	trace[1].State = 2 // forged jump
	bad := tcm.TraceDB(m, trace)
	consistent, err := chase.IsConsistent(bad, ics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s forged trace consistent=%v (must be false: the transition ic detects the jump)\n",
		"corrupted", consistent)

	fmt.Println()
	fmt.Println("Because the machine's halting is undecidable in general, so is")
	fmt.Println("satisfiability of the query predicate — any procedure must time out:")
	empty, decided, err := sqo.Empty(sqo.MustParseProgram(`
			q(X) :- a(X), c(X).
			?- q.
		`), sqo.MustParseICs(`
			:- a(X), !b(X).
			:- b(X), !d(X).
			:- d(X), c(X).
		`), sqo.EmptinessOptions{ChaseSteps: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase with 1-step budget: empty=%v decided=%v (undecided, as designed)\n", empty, decided)
	empty, decided, err = sqo.Empty(sqo.MustParseProgram(`
			q(X) :- a(X), c(X).
			?- q.
		`), sqo.MustParseICs(`
			:- a(X), !b(X).
			:- b(X), !d(X).
			:- d(X), c(X).
		`), sqo.EmptinessOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase with full budget:   empty=%v decided=%v\n", empty, decided)
}
