package eval

// Sharded evaluation (Options.Shards): the depth-0 relation of every
// rule task is hash-partitioned by its first column instead of
// range-partitioned, one task per shard, and the per-shard deltas are
// exchanged and merged deterministically at the round barrier. Each
// shard evaluates its partition against the full round snapshot (the
// in-process analogue of broadcasting the probed subrelations), so the
// union of the shards' work is exactly the single-shard work:
// RuleFirings, JoinProbes, and TuplesDerived are sums over a partition
// of the same depth-0 tuples and cannot depend on the partitioning.
//
// Provenance and insertion order need one extra mechanism: with range
// partitioning, merging buffers in task order replays the single-task
// derivation order, but a hash partition interleaves depth-0 rows
// across shards. Every sharded task therefore records the depth-0 row
// index of each buffered head, and the barrier k-way-merges the
// group's buffers by that index — reconstructing the exact order a
// single task would have derived heads in, so the first derivation of
// every fact (which is what provenance records) is bit-identical at
// any shard count.
//
// Partition keys are rendered term contents (ast.Term.Key), never
// intern ids: interning order differs run to run and engine to engine,
// while the rendered key of a row is stable. That is what makes shard
// assignment — and the ShardExchanged counter — deterministic across
// runs, engines, and symbol-table growth.

import (
	"repro/internal/shard"
)

// effectiveShards resolves Options.Shards: 0 and 1 mean sharding off.
func (o Options) effectiveShards() int {
	if o.Shards > 1 {
		return o.Shards
	}
	return 0
}

// partitioner resolves Options.ShardPartitioner; validatePolicy has
// already rejected unknown names.
func (o Options) partitioner() shard.Partitioner {
	p, err := shard.Parse(o.ShardPartitioner)
	if err != nil {
		return shard.Modulo{}
	}
	return p
}

// appendSharded appends one task per shard, all filtering the same
// depth-0 relation through the precomputed owners slice. Shared by
// both engines, like appendPartitioned, so their task lists coincide.
func appendSharded(ts []task, t task, owners []uint8, shards int) []task {
	for s := 0; s < shards; s++ {
		nt := t
		nt.shard, nt.nShards, nt.owners = s, shards, owners
		ts = append(ts, nt)
	}
	return ts
}

// shardKey renders the partition key of a tuple: the canonical key of
// its first column ("" for arity-0 relations, which puts all their
// rows on one shard).
func shardKey(t Tuple) string {
	if len(t) == 0 {
		return ""
	}
	return t[0].Key()
}

// ownersFor returns the per-row shard owners of rel, extending the
// memoized slice to cover rows appended since the last round. Called
// only at single-threaded round barriers; tasks read the returned
// slice concurrently but never write it.
func (ev *evaluator) ownersFor(rel *Relation) []uint8 {
	if rel == nil {
		return nil
	}
	o := ev.owners[rel]
	for i := len(o); i < rel.Len(); i++ {
		o = append(o, uint8(ev.part.Shard(shardKey(rel.tuples[i]), ev.shards)))
	}
	ev.owners[rel] = o
	return o
}

// addHead merges one buffered head derivation at the barrier.
// fromShard is the deriving task's shard (-1 for unsharded tasks);
// new tuples not owned by their deriving shard count as cross-shard
// exchange traffic.
func (ev *evaluator) addHead(h headDerivation, roundDelta map[string]int64, fromShard int) {
	if !ev.idb.AddFact(h.fact) {
		return // another task derived it first this round
	}
	ev.stats.TuplesDerived++
	roundDelta[h.fact.Pred]++
	if ev.delta != nil {
		ev.delta.AddFact(h.fact)
	}
	if ev.prov != nil && h.step != nil {
		ev.prov.steps[h.fact.Key()] = *h.step
	}
	if fromShard >= 0 && ev.part.Shard(shardKey(Tuple(h.fact.Args)), ev.shards) != fromShard {
		ev.stats.ShardExchanged++
	}
}

// mergeShardGroup merges the buffers of one (rule, occ) shard group.
// Counters are summed in task order; heads are k-way merged by the
// depth-0 row index that produced them, which is exactly the order a
// single unsharded task derives them in (each buffer is ascending in
// rowIdx, and a depth-0 row belongs to exactly one shard).
func (ev *evaluator) mergeShardGroup(results []taskResult, tasks []task, roundDelta map[string]int64) error {
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return res.err
		}
		ev.stats.JoinProbes += res.probes
		ev.stats.RuleFirings += res.firings
	}
	pos := make([]int, len(results))
	for {
		best := -1
		var bestRow int32
		for k := range results {
			if pos[k] >= len(results[k].heads) {
				continue
			}
			if r := results[k].rowIdx[pos[k]]; best < 0 || r < bestRow {
				best, bestRow = k, r
			}
		}
		if best < 0 {
			return nil
		}
		ev.addHead(results[best].heads[pos[best]], roundDelta, tasks[best].shard)
		pos[best]++
	}
}

// ownersFor is the compiled-engine twin, keyed on the rendered term of
// each row's first column (termKey is safe here: barriers are
// single-threaded and the interner stopped growing after prepare).
func (ev *cEvaluator) ownersFor(rel *irel) []uint8 {
	if rel == nil {
		return nil
	}
	o := ev.owners[rel]
	for i := len(o); i < rel.n; i++ {
		key := ""
		if rel.arity > 0 {
			key = ev.in.termKey(rel.row(i)[0])
		}
		o = append(o, uint8(ev.part.Shard(key, ev.shards)))
	}
	ev.owners[rel] = o
	return o
}
