package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/bounded"
	"repro/internal/magic"
	"repro/internal/shard"
)

// ErrBudget is wrapped by the error returned when evaluation exceeds
// Options.MaxTuples; distinguish it from cancellation with errors.Is.
var ErrBudget = errors.New("derived-tuple budget exceeded")

// Stats reports instrumentation collected during evaluation. All
// counters are deterministic: for a fixed program, database, and
// options they do not depend on Options.Workers, because every fixpoint
// round evaluates against a frozen snapshot and merges per-task results
// in a fixed order (see runRound).
type Stats struct {
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// RuleFirings counts complete rule instantiations that produced a
	// (possibly duplicate) head fact.
	RuleFirings int64
	// TuplesDerived counts distinct new IDB tuples.
	TuplesDerived int64
	// JoinProbes counts candidate tuples examined while extending
	// partial rule instantiations — the dominant cost of evaluation
	// and the quantity semantic query optimization reduces.
	JoinProbes int64
	// RoundDeltas records, for each fixpoint round, how many new tuples
	// were merged into each IDB relation that round (relation name →
	// tuple count; relations with no new tuples are omitted, a round
	// that derived nothing records an empty map). len(RoundDeltas) ==
	// Iterations after a completed run, and the contents are
	// deterministic like every other counter. This is what makes
	// incremental-maintenance work (internal/incr) comparable with full
	// runs in sqobench and /metrics.
	RoundDeltas []map[string]int64

	// The fields below are planning diagnostics, not evaluation
	// semantics. They are excluded from Equal: they legitimately differ
	// across engines (the legacy engine compiles no plans) and across
	// join-order policies, which is exactly what the P6 shootout
	// measures. All except PlanNanos remain deterministic for a fixed
	// program, database, and options.

	// PlanNanos is wall-clock time spent choosing join orders and
	// compiling plans, in nanoseconds. Measurement noise by nature;
	// never assert on it.
	PlanNanos int64
	// PlansCompiled counts join-plan compilations, including per-round
	// recompiles under the cost policy and mid-round recompiles under
	// the adaptive policy.
	PlansCompiled int64
	// AdaptiveSkips counts rule tasks the adaptive policy discarded
	// outright because a positive subgoal's relation was empty.
	AdaptiveSkips int64
	// AdaptiveReorders counts mid-round join reorders triggered by the
	// adaptive policy's misestimate rule (observed intermediate size
	// >10x its estimate).
	AdaptiveReorders int64
	// MagicApplied reports whether the query was evaluated through the
	// magic-sets demand rewrite (Query/QueryCtx with a bound goal and
	// Options.Magic not off). Excluded from Equal like the other
	// diagnostics: the magic-rewritten fixpoint legitimately differs
	// from bottom-up in every counter — that difference is the point —
	// while the answers stay identical.
	MagicApplied bool
	// ShardExchanged counts, under sharded evaluation (Options.Shards >
	// 1), the new tuples whose deriving shard is not their hash owner —
	// the cross-shard delta traffic a distributed deployment would ship
	// at each round barrier. Zero when sharding is off. Deterministic
	// for a fixed program, database, and options (the partitioner hashes
	// row contents, not intern ids), but excluded from Equal because it
	// is a distribution diagnostic that legitimately varies with the
	// shard count.
	ShardExchanged int64
	// PeakMaterialized is the largest total number of materialized IDB
	// tuples (relations plus the semi-naive delta) observed at any
	// round barrier. This is the memory-footprint metric the P8
	// experiment tracks: demand pruning and streaming unfolding lower
	// it while leaving answers unchanged. Deterministic for a fixed
	// program, database, and options, but excluded from Equal because
	// it is a footprint diagnostic, not evaluation semantics.
	PeakMaterialized int64
	// ElimApplied reports whether the query was evaluated through the
	// bounded-recursion elimination rewrite (Query/QueryCtx with
	// Options.Elim not off and at least one predicate proven bounded,
	// its fixpoint compiled into a flat union of conjunctive queries).
	// Excluded from Equal like MagicApplied: the flattened program
	// legitimately differs from the fixpoint in every counter while
	// the answers stay identical.
	ElimApplied bool
	// ElimChecked counts the self-recursive predicates the boundedness
	// analyzer examined before evaluation (zero when Options.Elim is
	// off or the program has no self-recursion). An analysis
	// diagnostic, excluded from Equal for the same reason as
	// ElimApplied.
	ElimChecked int
}

// statsEqualExcluded names the Stats fields deliberately NOT compared
// by Equal: planning, rewrite, and footprint diagnostics that
// legitimately differ across engines, policies, and rewrites while the
// answers stay identical. The statsequal analyzer
// (internal/analyzers/statsequal, run via go vet -vettool in CI) fails
// the build when a new Stats field is neither compared in Equal nor
// listed here — adding a field means making that choice explicitly.
var statsEqualExcluded = map[string]bool{
	"PlanNanos":        true,
	"PlansCompiled":    true,
	"AdaptiveSkips":    true,
	"AdaptiveReorders": true,
	"MagicApplied":     true,
	"ShardExchanged":   true,
	"PeakMaterialized": true,
	"ElimApplied":      true,
	"ElimChecked":      true,
}

// Equal reports whether two Stats are identical, including the
// per-round delta sizes. Stats stopped being comparable with == when
// RoundDeltas (a slice) was added; use this instead. The diagnostics
// listed in statsEqualExcluded are deliberately not compared — see
// their field docs.
func (s *Stats) Equal(o *Stats) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Iterations != o.Iterations || s.RuleFirings != o.RuleFirings ||
		s.TuplesDerived != o.TuplesDerived || s.JoinProbes != o.JoinProbes ||
		len(s.RoundDeltas) != len(o.RoundDeltas) {
		return false
	}
	for i := range s.RoundDeltas {
		a, b := s.RoundDeltas[i], o.RoundDeltas[i]
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				return false
			}
		}
	}
	return true
}

// MagicMode controls whether Query/QueryCtx apply the magic-sets
// demand rewrite before evaluation. The rewrite only ever changes how
// answers are computed, never the answers: when it does not apply
// (unbound goal, query predicate without rules, adornment blowup),
// evaluation silently falls back to bottom-up.
type MagicMode string

const (
	// MagicAuto (the zero value) applies the rewrite whenever the goal
	// binds at least one argument.
	MagicAuto MagicMode = "auto"
	// MagicOn behaves like MagicAuto — the rewrite still falls back to
	// bottom-up when inapplicable — but states the intent explicitly.
	MagicOn MagicMode = "on"
	// MagicOff disables the rewrite; goals are evaluated bottom-up and
	// filtered afterwards.
	MagicOff MagicMode = "off"
)

// ParseMagicMode parses a magic mode name; the empty string means
// MagicAuto (the zero value of Options.Magic).
func ParseMagicMode(s string) (MagicMode, error) {
	switch m := MagicMode(s); m {
	case "":
		return MagicAuto, nil
	case MagicAuto, MagicOn, MagicOff:
		return m, nil
	}
	return "", fmt.Errorf("eval: unknown magic mode %q (want auto, on, or off)", s)
}

// ElimMode controls whether Query/QueryCtx run the boundedness
// analysis (internal/bounded) and compile provably bounded recursion
// into flat unions of conjunctive queries before evaluation. Like the
// magic rewrite, elimination only ever changes how answers are
// computed, never the answers: when no predicate is provably bounded
// (the honest outcome for genuine recursion such as transitive
// closure), evaluation silently falls back to the fixpoint.
type ElimMode string

const (
	// ElimAuto (the zero value) analyzes every self-recursive
	// predicate under the default budgets and rewrites the bounded
	// ones. The structural pre-checks make this near-free on programs
	// with no self-recursion.
	ElimAuto ElimMode = "auto"
	// ElimOn behaves like ElimAuto — elimination still falls back when
	// nothing is provably bounded — but states the intent explicitly.
	ElimOn ElimMode = "on"
	// ElimOff disables the analysis; recursion is always evaluated as
	// a fixpoint.
	ElimOff ElimMode = "off"
)

// ParseElimMode parses an elimination mode name; the empty string
// means ElimAuto (the zero value of Options.Elim).
func ParseElimMode(s string) (ElimMode, error) {
	switch m := ElimMode(s); m {
	case "":
		return ElimAuto, nil
	case ElimAuto, ElimOn, ElimOff:
		return m, nil
	}
	return "", fmt.Errorf("eval: unknown elim mode %q (want auto, on, or off)", s)
}

// JoinOrderPolicy selects how the compiled-plan engine orders the
// positive subgoals of each rule. Answers and provenance are identical
// under every policy; only the work done to reach them (JoinProbes,
// plan time) differs.
type JoinOrderPolicy string

const (
	// PolicyGreedy orders joins statically by bound-position count at
	// compile time, with no cardinality input. The default, and the
	// only policy the legacy engine supports.
	PolicyGreedy JoinOrderPolicy = "greedy"
	// PolicyCost reorders joins at every round barrier using the
	// per-relation statistics maintained in the intern layer (row
	// counts and per-column distinct estimates; see stats.go): each
	// step greedily picks the subgoal with the smallest estimated
	// match count given the bindings accumulated so far.
	PolicyCost JoinOrderPolicy = "cost"
	// PolicyAdaptive is cost ordering plus run-time adaptivity: rule
	// tasks with an empty positive subgoal are skipped outright, and a
	// running task reorders its remaining joins when an observed
	// intermediate size is more than 10x its estimate. To keep results
	// worker-invariant, adaptive tasks are never range-partitioned.
	PolicyAdaptive JoinOrderPolicy = "adaptive"
)

// ParseJoinOrderPolicy parses a policy name; the empty string means
// PolicyGreedy (the zero value of Options.Policy).
func ParseJoinOrderPolicy(s string) (JoinOrderPolicy, error) {
	switch p := JoinOrderPolicy(s); p {
	case "":
		return PolicyGreedy, nil
	case PolicyGreedy, PolicyCost, PolicyAdaptive:
		return p, nil
	}
	return "", fmt.Errorf("eval: unknown join-order policy %q (want greedy, cost, or adaptive)", s)
}

// Options configures evaluation.
type Options struct {
	// Seminaive selects semi-naive evaluation (the default when using
	// Eval); naive evaluation recomputes every rule over the full
	// database each round.
	Seminaive bool
	// UseIndex enables hash-index lookups on bound argument positions;
	// when false every subgoal performs a full scan (for ablation).
	UseIndex bool
	// MaxTuples aborts evaluation when the total number of derived IDB
	// tuples exceeds the bound (0 = unlimited). Guards runaway tests.
	MaxTuples int64
	// Workers bounds the number of goroutines that evaluate rule tasks
	// concurrently within a fixpoint round. 0 means one worker per
	// available CPU (runtime.GOMAXPROCS(0)); 1 forces fully sequential
	// execution with no goroutines. Answers and Stats are identical for
	// every worker count.
	Workers int
	// CompilePlans selects the compiled-plan engine (the default via
	// DefaultOptions): terms are interned to dense uint32 ids, rules are
	// compiled once into join plans with slot-based bindings and greedy
	// join ordering, and all joins run over flat integer rows. Answers,
	// Stats, and provenance are bit-identical to the legacy engine for
	// every worker count; false keeps the legacy string-keyed engine as
	// an escape hatch (and as the differential-test baseline).
	CompilePlans bool
	// Policy selects the join-order policy of the compiled-plan engine
	// (the empty string means PolicyGreedy, keeping the zero value
	// backward compatible). PolicyCost and PolicyAdaptive require
	// CompilePlans; EvalCtx rejects the combination otherwise.
	Policy JoinOrderPolicy
	// Magic controls the magic-sets demand rewrite in Query/QueryCtx
	// (the empty string means MagicAuto). EvalCtx ignores it: its
	// contract is the full IDB of the given program, which demand
	// pruning deliberately does not compute.
	Magic MagicMode
	// Elim controls bounded-recursion elimination in Query/QueryCtx
	// (the empty string means ElimAuto): predicates whose recursion is
	// statically provably bounded are compiled into flat unions of
	// conjunctive queries before evaluation, ahead of the magic
	// rewrite. EvalCtx ignores it for the same reason it ignores
	// Magic: its contract is the given program, evaluated as written.
	Elim ElimMode
	// Stream enables the streaming unfolding rewrite in Query/QueryCtx:
	// non-recursive IDB predicates consumed by exactly one subgoal are
	// inlined into their consumer, so their tuples are never
	// materialized. Applied after the magic rewrite when both are on.
	Stream bool
	// Shards hash-partitions every rule's depth-0 relation by its first
	// column and runs fixpoint rounds shard-parallel, exchanging deltas
	// at the round barrier (see shard.go). 0 and 1 mean off. Answers,
	// Stats, and provenance are bit-identical to unsharded evaluation
	// at any shard count and worker count; Stats.ShardExchanged reports
	// the cross-shard traffic a distributed deployment would ship. At
	// most shard.MaxShards; incompatible with PolicyAdaptive, whose
	// task-local reordering cannot stay shard-invariant.
	Shards int
	// ShardPartitioner names the hash partitioner used when Shards > 1:
	// "modulo" (the default) or "rendezvous" (consistent hashing; see
	// internal/shard). The choice never affects answers, only which
	// shard owns which rows.
	ShardPartitioner string
}

// DefaultOptions are the options used by Eval.
func DefaultOptions() Options {
	return Options{Seminaive: true, UseIndex: true, CompilePlans: true, Policy: PolicyGreedy}
}

// effectivePolicy resolves the empty string to PolicyGreedy.
func (o Options) effectivePolicy() JoinOrderPolicy {
	if o.Policy == "" {
		return PolicyGreedy
	}
	return o.Policy
}

// validatePolicy rejects unknown policy names, unknown magic modes,
// and non-greedy policies on the legacy engine (which has no plans to
// reorder).
func (o Options) validatePolicy() error {
	pol, err := ParseJoinOrderPolicy(string(o.Policy))
	if err != nil {
		return err
	}
	if pol != PolicyGreedy && !o.CompilePlans {
		return fmt.Errorf("eval: join-order policy %q requires the compiled-plan engine (Options.CompilePlans)", pol)
	}
	if _, err := ParseMagicMode(string(o.Magic)); err != nil {
		return err
	}
	if _, err := ParseElimMode(string(o.Elim)); err != nil {
		return err
	}
	if o.Shards < 0 {
		return fmt.Errorf("eval: negative shard count %d", o.Shards)
	}
	if o.Shards > shard.MaxShards {
		return fmt.Errorf("eval: shard count %d exceeds the maximum %d", o.Shards, shard.MaxShards)
	}
	if _, err := shard.Parse(o.ShardPartitioner); err != nil {
		return err
	}
	if o.Shards > 1 && pol == PolicyAdaptive {
		return fmt.Errorf("eval: the adaptive policy is task-local and cannot keep Stats invariant across shard counts; use greedy or cost with Options.Shards")
	}
	return nil
}

// effectiveMagic resolves the empty string to MagicAuto.
func (o Options) effectiveMagic() MagicMode {
	if o.Magic == "" {
		return MagicAuto
	}
	return o.Magic
}

// effectiveElim resolves the empty string to ElimAuto.
func (o Options) effectiveElim() ElimMode {
	if o.Elim == "" {
		return ElimAuto
	}
	return o.Elim
}

// effectiveWorkers resolves Options.Workers to a concrete pool size.
func (o Options) effectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Eval evaluates the program bottom-up over the given EDB and returns
// a database containing the IDB relations (the EDB is not modified and
// not included in the result).
func Eval(p *ast.Program, edb *DB) (*DB, *Stats, error) {
	return EvalWith(p, edb, DefaultOptions())
}

// EvalWith evaluates with explicit options.
func EvalWith(p *ast.Program, edb *DB, opts Options) (*DB, *Stats, error) {
	return EvalCtx(context.Background(), p, edb, opts)
}

// EvalCtx is EvalWith under a context: cancellation (or deadline
// expiry) stops the fixpoint promptly — it is checked at every round
// barrier and periodically inside long join scans — and the context's
// error is returned. Results and Stats remain deterministic for every
// worker count whenever evaluation runs to completion.
func EvalCtx(ctx context.Context, p *ast.Program, edb *DB, opts Options) (*DB, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validatePolicy(); err != nil {
		return nil, nil, err
	}
	if opts.CompilePlans {
		return evalCompiled(ctx, p, edb, opts, nil)
	}
	ev := &evaluator{
		ctx:     ctx,
		prog:    p,
		edb:     edb,
		idb:     NewDB(),
		opts:    opts,
		workers: opts.effectiveWorkers(),
		stats:   &Stats{},
	}
	if err := ev.run(); err != nil {
		return nil, nil, err
	}
	return ev.idb, ev.stats, nil
}

type evaluator struct {
	ctx     context.Context
	prog    *ast.Program
	edb     *DB
	idb     *DB
	delta   *DB // tuples new in the previous round (semi-naive)
	opts    Options
	workers int
	stats   *Stats
	idbPr   map[string]bool
	arity   map[string]int
	prov    *Provenance // non-nil when provenance tracking is on
	// Sharding state (zero when Options.Shards < 2): the resolved
	// partitioner and the per-relation owner memo, written only at
	// single-threaded round barriers.
	shards int
	part   shard.Partitioner
	owners map[*Relation][]uint8
}

func (ev *evaluator) run() error {
	if s := ev.opts.effectiveShards(); s > 0 {
		ev.shards = s
		ev.part = ev.opts.partitioner()
		ev.owners = map[*Relation][]uint8{}
	}
	ev.idbPr = ev.prog.IDB()
	ar, err := ev.prog.PredArity()
	if err != nil {
		return err
	}
	ev.arity = ar
	// Materialize empty IDB relations so lookups are uniform.
	for pred := range ev.idbPr {
		ev.idb.Rel(pred, ar[pred])
	}

	if ev.opts.Seminaive {
		return ev.runSeminaive()
	}
	return ev.runNaive()
}

// task is one unit of round work: evaluate one rule with one subgoal
// occurrence restricted to the previous delta (occ == -1 for no
// restriction), optionally over a partition [lo, hi) of the tuples of
// the relation probed first (hi == 0 means the full relation). Tasks
// are independent: they read the round's frozen snapshot and write
// only their own buffers.
//
// Under sharded evaluation (nShards > 0) the depth-0 partition is a
// hash partition instead of a range: the task only probes depth-0 rows
// whose precomputed owner (owners[row]) equals shard. Sharded tasks
// are never additionally range-partitioned.
type task struct {
	ruleIdx int
	occ     int
	lo, hi  int
	shard   int
	nShards int     // 0 = unsharded
	owners  []uint8 // per-row shard owner of the depth-0 relation
}

// headDerivation is one head fact emitted by a task, with its recorded
// provenance step when tracking is on.
type headDerivation struct {
	fact ast.Atom
	step *provStep
}

// taskResult is the private output buffer of one task. rowIdx is only
// filled by sharded tasks: the depth-0 row index that produced each
// head, in ascending order, which the barrier's k-way merge uses to
// reconstruct single-task derivation order (see shard.go).
type taskResult struct {
	heads   []headDerivation
	rowIdx  []int32
	probes  int64
	firings int64
	err     error
}

// minPartitionChunk is the smallest per-partition tuple range worth a
// separate task; below it, goroutine and buffer overhead dominates.
const minPartitionChunk = 8

// cancelPollMask throttles the in-scan context poll to one ctx.Err()
// call per (mask+1) join probes.
const cancelPollMask = 0x3ff

// appendPartitioned appends t split into up to workers contiguous
// range partitions of the depth-0 relation (relLen tuples). The split
// never changes results or stats: partitions cover the same tuple
// ranges a single task would scan, in the same merged order. Shared by
// both engines so their task lists (and so their Stats) coincide.
func appendPartitioned(ts []task, t task, relLen, workers int) []task {
	parts := workers
	if parts > relLen/minPartitionChunk {
		parts = relLen / minPartitionChunk
	}
	if workers <= 1 || parts <= 1 {
		return append(ts, t)
	}
	chunk := (relLen + parts - 1) / parts
	for lo := 0; lo < relLen; lo += chunk {
		hi := lo + chunk
		if hi > relLen {
			hi = relLen
		}
		ts = append(ts, task{ruleIdx: t.ruleIdx, occ: t.occ, lo: lo, hi: hi})
	}
	return ts
}

// firstRel returns the relation the task probes at depth 0 (the delta
// relation for occ >= 0, otherwise the rule's first positive subgoal),
// or nil when the rule has no positive subgoals.
func (ev *evaluator) firstRel(r ast.Rule, occ int, prevDelta *DB) *Relation {
	switch {
	case occ >= 0:
		return prevDelta.Lookup(r.Pos[occ].Pred)
	case len(r.Pos) == 0:
		return nil
	}
	pred := r.Pos[0].Pred
	if ev.idbPr[pred] {
		return ev.idb.Lookup(pred)
	}
	return ev.edb.Lookup(pred)
}

// firstRelLen returns the tuple count of the depth-0 relation, or 0
// when the task cannot be partitioned.
func (ev *evaluator) firstRelLen(r ast.Rule, occ int, prevDelta *DB) int {
	rel := ev.firstRel(r, occ, prevDelta)
	if rel == nil {
		return 0
	}
	return rel.Len()
}

// appendTasks expands one (rule, occ) unit into round tasks: hash
// shards when sharding is on and the rule has a depth-0 relation,
// contiguous range partitions otherwise.
func (ev *evaluator) appendTasks(ts []task, t task, r ast.Rule, prevDelta *DB) []task {
	if ev.shards > 0 && len(r.Pos) > 0 {
		rel := ev.firstRel(r, t.occ, prevDelta)
		return appendSharded(ts, t, ev.ownersFor(rel), ev.shards)
	}
	return appendPartitioned(ts, t, ev.firstRelLen(r, t.occ, prevDelta), ev.workers)
}

// runNaive recomputes every rule over the full database until no new
// tuples appear. Rounds use the same snapshot-and-merge execution as
// semi-naive: rules see the IDB as of the start of the round.
func (ev *evaluator) runNaive() error {
	for {
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		ev.stats.Iterations++
		before := ev.stats.TuplesDerived
		var tasks []task
		for i, r := range ev.prog.Rules {
			tasks = ev.appendTasks(tasks, task{ruleIdx: i, occ: -1}, r, nil)
		}
		if err := ev.runRound(tasks, nil); err != nil {
			return err
		}
		if ev.stats.TuplesDerived == before {
			return nil
		}
	}
}

// runSeminaive implements semi-naive evaluation with snapshot rounds:
// each round, every rule is evaluated once per IDB subgoal occurrence,
// with that occurrence restricted to the previous round's delta and all
// other subgoals reading the IDB as of the round start. Derived facts
// are buffered per task and merged at the round barrier, so evaluation
// is deterministic and embarrassingly parallel within a round.
func (ev *evaluator) runSeminaive() error {
	// Round 0: initialization — only rules without IDB subgoals can
	// fire.
	ev.delta = NewDB()
	for pred := range ev.idbPr {
		ev.delta.Rel(pred, ev.arity[pred])
	}
	if err := ev.ctx.Err(); err != nil {
		return err
	}
	ev.stats.Iterations++
	var tasks []task
	for i, r := range ev.prog.Rules {
		if !r.IsInit(ev.idbPr) {
			continue
		}
		tasks = ev.appendTasks(tasks, task{ruleIdx: i, occ: -1}, r, nil)
	}
	if err := ev.runRound(tasks, nil); err != nil {
		return err
	}
	for {
		if ev.delta.totalLen() == 0 {
			return nil
		}
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		prevDelta := ev.delta
		ev.delta = NewDB()
		for pred := range ev.idbPr {
			ev.delta.Rel(pred, ev.arity[pred])
		}
		ev.stats.Iterations++
		tasks = tasks[:0]
		for i, r := range ev.prog.Rules {
			for _, occ := range ev.idbOccurrences(r) {
				tasks = ev.appendTasks(tasks, task{ruleIdx: i, occ: occ}, r, prevDelta)
			}
		}
		if err := ev.runRound(tasks, prevDelta); err != nil {
			return err
		}
	}
}

// runRound executes the round's tasks — concurrently over a bounded
// worker pool when Workers > 1 — and then merges each task's buffered
// head facts into the IDB (and current delta) strictly in task order.
// Tasks only read the frozen snapshot, so the merge order alone
// determines tuple insertion order, making answers and Stats identical
// for every worker count.
func (ev *evaluator) runRound(tasks []task, prevDelta *DB) error {
	results := make([]taskResult, len(tasks))
	workers := ev.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					results[i] = ev.runTask(tasks[i], prevDelta)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, t := range tasks {
			results[i] = ev.runTask(t, prevDelta)
			if results[i].err != nil {
				break
			}
		}
	}

	roundDelta := map[string]int64{}
	for i := 0; i < len(results); {
		if tasks[i].nShards == 0 {
			res := &results[i]
			if res.err != nil {
				return res.err
			}
			ev.stats.JoinProbes += res.probes
			ev.stats.RuleFirings += res.firings
			for _, h := range res.heads {
				ev.addHead(h, roundDelta, -1)
			}
			i++
			continue
		}
		// A shard group: the nShards tasks of one (rule, occ) unit,
		// merged by depth-0 row index to replay single-task order.
		j := i + 1
		for j < len(results) && tasks[j].nShards > 0 &&
			tasks[j].ruleIdx == tasks[i].ruleIdx && tasks[j].occ == tasks[i].occ {
			j++
		}
		if err := ev.mergeShardGroup(results[i:j], tasks[i:j], roundDelta); err != nil {
			return err
		}
		i = j
	}
	ev.stats.RoundDeltas = append(ev.stats.RoundDeltas, roundDelta)
	// Footprint at the round barrier: every IDB tuple plus the
	// semi-naive delta copy (nil during naive/init rounds). Computed
	// identically in the compiled engine so the two agree bit-for-bit.
	peak := int64(ev.idb.totalLen())
	if ev.delta != nil {
		peak += int64(ev.delta.totalLen())
	}
	if peak > ev.stats.PeakMaterialized {
		ev.stats.PeakMaterialized = peak
	}
	if ev.opts.MaxTuples > 0 && ev.stats.TuplesDerived > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	return nil
}

// runTask evaluates one task against the round snapshot, buffering
// derived heads. The delta-restricted occurrence (if any) is probed
// first: it is usually the smallest relation and it is the subgoal the
// task's tuple partition applies to.
func (ev *evaluator) runTask(t task, prevDelta *DB) taskResult {
	r := ev.prog.Rules[t.ruleIdx]
	tr := &taskRun{
		ev:       ev,
		delta:    prevDelta,
		deltaOcc: t.occ,
		lo:       t.lo,
		hi:       t.hi,
		sharded:  t.nShards > 0,
		shard:    uint8(t.shard),
		owners:   t.owners,
		order:    joinOrder(len(r.Pos), t.occ),
		binding:  map[string]ast.Term{},
		seen:     map[string]bool{},
		base:     ev.stats.TuplesDerived,
	}
	if err := tr.joinFrom(r, 0); err != nil {
		tr.res.err = err
	}
	return tr.res
}

// joinOrder returns the subgoal visiting order for a task: the delta
// occurrence first (when present), then the remaining subgoals in rule
// order. The order depends only on the rule and occurrence, never on
// worker count, so probe counts stay deterministic.
func joinOrder(n, occ int) []int {
	order := make([]int, 0, n)
	if occ >= 0 {
		order = append(order, occ)
	}
	for i := 0; i < n; i++ {
		if i != occ {
			order = append(order, i)
		}
	}
	return order
}

// taskRun is the per-task evaluation state: a private binding, a
// private output buffer, and private counters. It reads the round's
// frozen snapshot through ev and never writes shared state.
type taskRun struct {
	ev       *evaluator
	delta    *DB // previous round's delta (nil for init/naive tasks)
	deltaOcc int
	lo, hi   int // depth-0 tuple partition; hi == 0 → full relation
	// Sharded-task state: only depth-0 rows with owners[row] == shard
	// are probed, and cur tracks the live depth-0 row index so every
	// buffered head can record which row produced it (see shard.go).
	sharded bool
	shard   uint8
	owners  []uint8
	cur     int32
	order   []int // join depth → subgoal index
	binding map[string]ast.Term
	seen    map[string]bool // heads already buffered by this task
	res     taskResult
	base    int64 // TuplesDerived at round start, for the budget check
}

// joinFrom recursively extends the binding over positive subgoals
// starting at join depth i, applying comparison and negation filters as
// soon as they become ground, and emits head facts at the end.
func (tr *taskRun) joinFrom(r ast.Rule, depth int) error {
	ev := tr.ev
	if ev.opts.MaxTuples > 0 && tr.base+int64(len(tr.res.heads)) > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	if depth == len(r.Pos) {
		return tr.finishRule(r)
	}
	subIdx := tr.order[depth]
	sub := r.Pos[subIdx]
	var rel *Relation
	switch {
	case tr.deltaOcc == subIdx:
		rel = tr.delta.Lookup(sub.Pred)
	case ev.idbPr[sub.Pred]:
		rel = ev.idb.Lookup(sub.Pred)
	default:
		rel = ev.edb.Lookup(sub.Pred)
	}
	if rel == nil || rel.Len() == 0 {
		return nil
	}
	lo, hi := 0, rel.Len()
	if depth == 0 && tr.hi > 0 {
		lo, hi = tr.lo, tr.hi
		if hi > rel.Len() {
			hi = rel.Len()
		}
	}

	// Determine bound positions under the current binding.
	var boundPos []int
	var boundVals []ast.Term
	for j, t := range sub.Args {
		switch {
		case t.IsConst():
			boundPos = append(boundPos, j)
			boundVals = append(boundVals, t)
		default:
			if v, ok := tr.binding[t.Name]; ok {
				boundPos = append(boundPos, j)
				boundVals = append(boundVals, v)
			}
		}
	}

	var candidates []int
	indexed := ev.opts.UseIndex && len(boundPos) > 0
	if indexed {
		// NOTE: an empty result is a successful (and final) lookup —
		// it must not fall back to a full scan.
		candidates = rel.lookup(boundPos, boundVals)
	}

	tryTuple := func(t Tuple) error {
		tr.res.probes++
		// Poll for cancellation inside long scans so a cancelled query
		// stops mid-round instead of finishing the whole round's joins.
		// The mask keeps the ctx.Err poll off the hot path; probes is
		// deterministic, so completed runs are unaffected.
		if tr.res.probes&cancelPollMask == 0 {
			if err := ev.ctx.Err(); err != nil {
				return err
			}
		}
		// Extend the binding; track which variables we bind so we can
		// undo on backtrack.
		var boundHere []string
		ok := true
		for j, argT := range sub.Args {
			if argT.IsConst() {
				if !argT.Equal(t[j]) {
					ok = false
					break
				}
				continue
			}
			if v, exists := tr.binding[argT.Name]; exists {
				if !v.Equal(t[j]) {
					ok = false
					break
				}
				continue
			}
			tr.binding[argT.Name] = t[j]
			boundHere = append(boundHere, argT.Name)
		}
		if ok && tr.filtersHold(r) {
			if err := tr.joinFrom(r, depth+1); err != nil {
				return err
			}
		}
		for _, v := range boundHere {
			delete(tr.binding, v)
		}
		return nil
	}

	if indexed {
		for _, ci := range candidates {
			if ci < lo || ci >= hi {
				continue
			}
			if depth == 0 && tr.sharded {
				if tr.owners[ci] != tr.shard {
					continue
				}
				tr.cur = int32(ci)
			}
			if err := tryTuple(rel.tuples[ci]); err != nil {
				return err
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			if depth == 0 && tr.sharded {
				if tr.owners[i] != tr.shard {
					continue
				}
				tr.cur = int32(i)
			}
			if err := tryTuple(rel.tuples[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// filtersHold applies every comparison and negated subgoal whose
// variables are fully bound. Unbound filters are deferred (they will
// be checked again deeper in the join; by safety they are ground by
// the time all positive subgoals are matched).
func (tr *taskRun) filtersHold(r ast.Rule) bool {
	for _, c := range r.Cmp {
		l, lok := resolve(c.Left, tr.binding)
		rr, rok := resolve(c.Right, tr.binding)
		if !lok || !rok {
			continue
		}
		if !ast.NewCmp(l, c.Op, rr).Eval() {
			return false
		}
	}
	for _, n := range r.Neg {
		g, ok := groundAtom(n, tr.binding)
		if !ok {
			continue
		}
		if tr.ev.edb.Contains(g) {
			return false
		}
	}
	return true
}

func resolve(t ast.Term, binding map[string]ast.Term) (ast.Term, bool) {
	if !t.IsVar() {
		return t, true
	}
	v, ok := binding[t.Name]
	return v, ok
}

func groundAtom(a ast.Atom, binding map[string]ast.Term) (ast.Atom, bool) {
	out := a.Clone()
	for i, t := range out.Args {
		v, ok := resolve(t, binding)
		if !ok {
			return ast.Atom{}, false
		}
		out.Args[i] = v
	}
	return out, true
}

// finishRule emits the head fact for a complete binding into the
// task's private buffer. Heads already present in the snapshot IDB (or
// already buffered by this task) are dropped; cross-task duplicates
// within a round are resolved at the merge.
func (tr *taskRun) finishRule(r ast.Rule) (err error) {
	ev := tr.ev
	// All filters are ground now; re-check (cheap, and covers filters
	// that never became ground mid-join).
	if !tr.filtersHold(r) {
		return nil
	}
	head, ok := groundAtom(r.Head, tr.binding)
	if !ok {
		return fmt.Errorf("eval: unsafe rule slipped through validation: %s", r)
	}
	tr.res.firings++
	k := head.Key()
	if tr.seen[k] || ev.idb.Contains(head) {
		return nil
	}
	tr.seen[k] = true
	h := headDerivation{fact: head}
	if ev.prov != nil {
		inst := ast.Rule{Head: head}
		for _, a := range r.Pos {
			g, _ := groundAtom(a, tr.binding)
			inst.Pos = append(inst.Pos, g)
		}
		for _, a := range r.Neg {
			g, _ := groundAtom(a, tr.binding)
			inst.Neg = append(inst.Neg, g)
		}
		h.step = &provStep{rule: inst, body: inst.Pos}
	}
	tr.res.heads = append(tr.res.heads, h)
	if tr.sharded {
		tr.res.rowIdx = append(tr.res.rowIdx, tr.cur)
	}
	return nil
}

func (db *DB) totalLen() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// idbOccurrences returns the indices of positive subgoals with IDB
// predicates.
func (ev *evaluator) idbOccurrences(r ast.Rule) []int {
	var out []int
	for i, a := range r.Pos {
		if ev.idbPr[a.Pred] {
			out = append(out, i)
		}
	}
	return out
}

// Query evaluates the program and returns the tuples of its query
// predicate.
func Query(p *ast.Program, edb *DB) ([]Tuple, *Stats, error) {
	return QueryWith(p, edb, DefaultOptions())
}

// QueryWith is Query with explicit engine options.
func QueryWith(p *ast.Program, edb *DB, opts Options) ([]Tuple, *Stats, error) {
	return QueryCtx(context.Background(), p, edb, opts)
}

// QueryCtx is QueryWith under a context; see EvalCtx for the
// cancellation contract.
//
// When the program carries a goal (`?- pred(t1, ..., tn).`), QueryCtx
// is goal-directed: under Options.Magic auto/on a goal with at least
// one bound argument is evaluated through the magic-sets rewrite
// (internal/magic), which computes only the part of the fixpoint the
// goal's bindings demand; when the rewrite is inapplicable — or under
// MagicOff — the program is evaluated bottom-up. Either way the
// returned tuples are exactly the query-relation tuples matching the
// goal (constants equal at their positions, repeated goal variables
// equal across theirs), so the two paths are interchangeable
// answer-wise; Stats.MagicApplied records which one ran.
//
// Under Options.Elim auto/on the boundedness analysis runs first:
// self-recursive predicates proven bounded (internal/bounded) are
// compiled into flat unions of conjunctive queries, and the magic and
// streaming rewrites then work on the flattened program — elimination
// is what makes a bounded predicate eligible for streaming unfolding
// and gives the magic rewrite non-recursive rules to prune. When
// nothing is provably bounded (ErrNotBounded), the fixpoint is
// evaluated as written; Stats.ElimApplied/ElimChecked record the
// outcome.
func QueryCtx(ctx context.Context, p *ast.Program, edb *DB, opts Options) ([]Tuple, *Stats, error) {
	if err := opts.validatePolicy(); err != nil {
		return nil, nil, err
	}
	prog := p
	elimApplied := false
	elimChecked := 0
	if opts.effectiveElim() != ElimOff && len(p.Rules) > 0 {
		res, err := bounded.Rewrite(p, bounded.Options{})
		if res != nil {
			elimChecked = len(res.Analyses)
		}
		switch {
		case err == nil:
			prog = res.Program
			elimApplied = true
		case errors.Is(err, bounded.ErrNotBounded):
			// Nothing provably bounded: evaluate the fixpoint as written.
		default:
			return nil, nil, err
		}
	}
	magicApplied := false
	if opts.effectiveMagic() != MagicOff && len(p.Goal) > 0 {
		res, err := magic.Rewrite(prog)
		switch {
		case err == nil:
			prog = res.Program
			magicApplied = true
		case errors.Is(err, magic.ErrNotApplicable):
			// Fall back to bottom-up evaluation of the original program.
		default:
			return nil, nil, err
		}
	}
	if opts.Stream {
		prog, _ = magic.Unfold(prog)
	}
	idb, stats, err := EvalCtx(ctx, prog, edb, opts)
	if err != nil {
		return nil, nil, err
	}
	stats.MagicApplied = magicApplied
	stats.ElimApplied = elimApplied
	stats.ElimChecked = elimChecked
	r := idb.Lookup(prog.Query)
	if r == nil {
		return nil, stats, nil
	}
	tuples := r.Tuples()
	if len(p.Goal) == 0 {
		return tuples, stats, nil
	}
	// Restrict to the goal on both paths: bottom-up computes the whole
	// relation, and the magic-rewritten relation can hold tuples for
	// bindings demanded recursively beyond the goal's own constants.
	var out []Tuple
	for _, t := range tuples {
		if p.MatchesGoal(t) {
			out = append(out, t)
		}
	}
	return out, stats, nil
}
