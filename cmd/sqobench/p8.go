package main

// P8: goal-directed evaluation — the magic-sets demand rewrite and
// streaming (unfolded) non-recursive strata, against plain bottom-up.
//
// Every workload is evaluated through the same QueryCtx entry point in
// three modes: bottom-up (magic off), magic, and magic+stream. Answers
// must be identical across modes — the run aborts otherwise — and the
// measured quantities are the work counters the engines maintain
// deterministically (tuples derived, join probes, peak materialized
// tuples at a round barrier) plus best-of-three wall clock.
//
// The workloads are chosen to show where magic wins and where it
// loses:
//
//   - tc-right-point / tc-left-point: a bound point query over the
//     transitive closure of K disjoint chains. Demand from the goal
//     reaches only one chain, so bottom-up materializes ~K times more
//     tuples than the query needs. The left-linear variant prunes
//     hardest: its demand set never grows past the goal constant.
//   - tc-full: the same program with an unbound goal. Magic does not
//     apply (no bound argument) and falls back to bottom-up — the
//     honest row where all three modes do identical work.
//   - random-point: a bound point query over the closure of a sparse
//     random graph; what pruning survives when reachability is not a
//     neat partition.
//   - pipeline-point: a four-stage non-recursive join pipeline. The
//     streaming mode unfolds the intermediate hop predicates into
//     their single consumer, which shows up as the peak-materialized
//     column dropping, not in derived-tuple counts.
//
// With -out the rows are written as JSON (committed as BENCH_8.json
// for regression tracking; peak_tuples is gated by benchdiff
// -peak-mem).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	sqo "repro"
	"repro/internal/ast"
	"repro/internal/workload"
)

type p8Row struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Answers  int    `json:"answers"`
	Derived  int64  `json:"derived"`
	Probes   int64  `json:"probes"`
	Peak     int64  `json:"peak_tuples"`
	WallNs   int64  `json:"wall_ns"`
}

type p8Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p8Row `json:"results"`
}

// p8DisjointChains returns K disjoint edge chains of n edges each,
// chain c occupying nodes c*1000 .. c*1000+n.
func p8DisjointChains(k, n int) []ast.Atom {
	var out []ast.Atom
	for c := 0; c < k; c++ {
		base := c * 1000
		for i := 0; i < n; i++ {
			out = append(out, ast.NewAtom("edge", ast.N(float64(base+i)), ast.N(float64(base+i+1))))
		}
	}
	return out
}

// p8Measure evaluates the program in one mode, best of three, and
// verifies nothing: the caller compares answers across modes.
func p8Measure(p *sqo.Program, db *sqo.DB, magic sqo.MagicMode, stream bool) (p8Row, []string) {
	opts := sqo.DefaultEvalOptions()
	opts.Magic = magic
	opts.Stream = stream
	var row p8Row
	var answers []string
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		tuples, stats, err := sqo.QueryWith(p, db, opts)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start).Nanoseconds()
		if trial == 0 || wall < row.WallNs {
			row = p8Row{
				Answers: len(tuples),
				Derived: stats.TuplesDerived,
				Probes:  stats.JoinProbes,
				Peak:    stats.PeakMaterialized,
				WallNs:  wall,
			}
		}
		answers = answers[:0]
		for _, t := range tuples {
			answers = append(answers, t.String())
		}
		sort.Strings(answers)
	}
	return row, answers
}

func runP8() {
	chains, chainLen := 15, 40
	randNodes, randEdges := 120, 260
	pipeEdges := 400
	if *quick {
		chains, chainLen = 6, 20
		randNodes, randEdges = 60, 120
		pipeEdges = 120
	}

	const rightTC = `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).
	`
	const leftTC = `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, Z), edge(Z, Y).
		?- path(0, Y).
	`
	const fullTC = `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(X, Y).
	`
	const pipeline = `
		hop1(X, Y) :- edge(X, Y).
		hop2(X, Y) :- hop1(X, Z), edge(Z, Y).
		hop3(X, Y) :- hop2(X, Z), edge(Z, Y).
		q(X, Y) :- hop3(X, Z), edge(Z, Y).
		?- q(1, Y).
	`
	const randTC = `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(1, Y).
	`

	cases := []struct {
		name  string
		src   string
		facts []ast.Atom
	}{
		{"tc-right-point", rightTC, p8DisjointChains(chains, chainLen)},
		{"tc-left-point", leftTC, p8DisjointChains(chains, chainLen)},
		{"tc-full", fullTC, p8DisjointChains(chains, chainLen)},
		{"random-point", randTC, workload.RandomGraph(randNodes, randEdges, 8)},
		{"pipeline-point", pipeline, workload.RandomGraph(randNodes, pipeEdges, 9)},
	}
	modes := []struct {
		name   string
		magic  sqo.MagicMode
		stream bool
	}{
		{"bottomup", sqo.MagicOff, false},
		{"magic", sqo.MagicOn, false},
		{"magic+stream", sqo.MagicOn, true},
	}

	report := p8Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}

	header("workload", "mode", "answers", "derived", "probes", "peak", "wall")
	for _, c := range cases {
		unit, err := sqo.Parse(c.src)
		if err != nil {
			log.Fatal(err)
		}
		db := sqo.NewDBFrom(c.facts)
		var baseAnswers []string
		var baseDerived int64
		for i, m := range modes {
			row, answers := p8Measure(unit.Program, db, m.magic, m.stream)
			row.Workload, row.Mode = c.name, m.name
			if i == 0 {
				baseAnswers, baseDerived = answers, row.Derived
			} else if !reflect.DeepEqual(answers, baseAnswers) {
				log.Fatalf("%s/%s: answers diverge from bottom-up (%d vs %d)",
					c.name, m.name, len(answers), len(baseAnswers))
			}
			report.Rows = append(report.Rows, row)
			note := ""
			if i > 0 && baseDerived > 0 {
				note = "  (" + ratio(baseDerived, row.Derived) + " fewer derived)"
			}
			fmt.Printf("%-14s | %-12s | %7d | %8d | %8d | %6d | %8v%s\n",
				row.Workload, row.Mode, row.Answers, row.Derived, row.Probes, row.Peak,
				time.Duration(row.WallNs).Round(10*time.Microsecond), note)
		}
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
