package shard_test

// Cluster tests run real sqod workers (internal/server) behind
// httptest listeners and drive them through a Coordinator — the same
// wiring cmd/sqod -coordinator uses, minus the network. They live in
// package shard_test because internal/server (transitively) imports
// internal/shard.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newCluster starts n workers and a coordinator over them, returning
// the coordinator's test server plus the workers keyed by base URL.
func newCluster(t *testing.T, n int, cfg shard.Config) (*shard.Coordinator, *httptest.Server, map[string]*httptest.Server) {
	t.Helper()
	workers := map[string]*httptest.Server{}
	var peers []string
	for i := 0; i < n; i++ {
		ws := httptest.NewServer(server.New(server.Config{Logger: quietLogger()}).Handler())
		t.Cleanup(ws.Close)
		workers[ws.URL] = ws
		peers = append(peers, ws.URL)
	}
	cfg.Peers = peers
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	c, err := shard.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cs := httptest.NewServer(c.Handler())
	t.Cleanup(cs.Close)
	return c, cs, workers
}

func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

type scatterResponse struct {
	Answers        []string `json:"answers"`
	AnswerCount    int      `json:"answer_count"`
	Degraded       bool     `json:"degraded"`
	FailedPeers    []string `json:"failed_peers"`
	FailedDatasets []string `json:"failed_datasets"`
	Shards         []struct {
		Dataset     string   `json:"dataset"`
		Peer        string   `json:"peer"`
		AnswerCount int      `json:"answer_count"`
		Answers     []string `json:"answers"`
		Error       string   `json:"error"`
	} `json:"shards"`
}

const clusterProgram = `path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.`

// TestClusterScatterGather covers the happy path end to end: mutations
// route to the placed owner, the dataset list is a peer-annotated
// union, and a scattered query merges per-shard answers into exactly
// the union a single node holding every shard's facts would produce.
func TestClusterScatterGather(t *testing.T) {
	c, cs, workers := newCluster(t, 3, shard.Config{})
	datasets := map[string]string{
		"alpha": "edge(1, 2). edge(2, 3).",
		"beta":  "edge(10, 11). edge(11, 12).",
		"gamma": "edge(2, 3). edge(20, 21).", // overlaps alpha: dedup must collapse path(2, 3)
	}
	for name, facts := range datasets {
		if code, raw := do(t, http.MethodPut, cs.URL+"/v1/datasets/"+name, facts); code != http.StatusOK {
			t.Fatalf("PUT %s via coordinator = %d %s", name, code, raw)
		}
	}

	// Each dataset must live on exactly its rendezvous owner.
	for name := range datasets {
		owner := c.Owner(name)
		for url, ws := range workers {
			_, raw := do(t, http.MethodGet, ws.URL+"/v1/datasets", "")
			var infos []struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(raw, &infos); err != nil {
				t.Fatal(err)
			}
			has := false
			for _, in := range infos {
				if in.Name == name {
					has = true
				}
			}
			if has != (url == owner) {
				t.Fatalf("dataset %q on %s: present=%v, owner=%s", name, url, has, owner)
			}
		}
	}

	// Scattered list: all three datasets, each annotated with its peer.
	code, raw := do(t, http.MethodGet, cs.URL+"/v1/datasets", "")
	if code != http.StatusOK {
		t.Fatalf("scatter list = %d %s", code, raw)
	}
	var list struct {
		Datasets []map[string]any `json:"datasets"`
		Degraded bool             `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if list.Degraded || len(list.Datasets) != 3 {
		t.Fatalf("scatter list = %s", raw)
	}
	for _, ds := range list.Datasets {
		name, _ := ds["name"].(string)
		if peer, _ := ds["peer"].(string); peer != c.Owner(name) {
			t.Fatalf("list annotates %q with %q, owner is %q", name, peer, c.Owner(name))
		}
	}

	// Scattered query == single-node union.
	body, _ := json.Marshal(map[string]any{
		"program":  clusterProgram,
		"datasets": []string{"alpha", "beta", "gamma"},
	})
	code, raw = do(t, http.MethodPost, cs.URL+"/v1/query", string(body))
	if code != http.StatusOK {
		t.Fatalf("scatter query = %d %s", code, raw)
	}
	var sr scatterResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || len(sr.FailedPeers) != 0 {
		t.Fatalf("healthy scatter reports degraded: %s", raw)
	}
	if len(sr.Shards) != 3 {
		t.Fatalf("want 3 shard results, got %s", raw)
	}

	single := httptest.NewServer(server.New(server.Config{Logger: quietLogger()}).Handler())
	defer single.Close()
	var all []string
	for _, facts := range datasets {
		all = append(all, facts)
	}
	do(t, http.MethodPut, single.URL+"/v1/datasets/all", strings.Join(all, "\n"))
	qb, _ := json.Marshal(map[string]any{"program": clusterProgram, "dataset": "all"})
	_, sraw := do(t, http.MethodPost, single.URL+"/v1/query", string(qb))
	var sqr struct {
		Answers []string `json:"answers"`
	}
	if err := json.Unmarshal(sraw, &sqr); err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), sqr.Answers...)
	sort.Strings(want)
	// The shards are disjoint graphs (no edges between datasets), so
	// the union of per-shard closures is the closure of the union.
	if !equalStrings(sr.Answers, want) {
		t.Fatalf("scattered answers != single-node answers:\n%v\nvs\n%v", sr.Answers, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterDegraded kills one worker and pins the degradation
// contract: HTTP 200, degraded=true, the dead peer and its datasets
// listed, and every surviving shard's answers still present.
func TestClusterDegraded(t *testing.T) {
	c, cs, workers := newCluster(t, 3, shard.Config{
		PeerTimeout:  500 * time.Millisecond,
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})
	// Peer URLs (and so placement) vary per run: probe candidate names
	// until we hold datasets on two distinct owners, so killing one
	// owner provably leaves a survivor.
	var victimDS, survivorDS, victim string
	for i := 0; i < 1000 && survivorDS == ""; i++ {
		name := fmt.Sprintf("ds-%d", i)
		switch o := c.Owner(name); {
		case victimDS == "":
			victimDS, victim = name, o
		case o != victim:
			survivorDS = name
		}
	}
	if survivorDS == "" {
		t.Fatal("could not find datasets with distinct owners")
	}
	for _, name := range []string{victimDS, survivorDS} {
		if code, raw := do(t, http.MethodPut, cs.URL+"/v1/datasets/"+name, "edge(1, 2)."); code != http.StatusOK {
			t.Fatalf("PUT %s = %d %s", name, code, raw)
		}
	}
	workers[victim].Close()

	body, _ := json.Marshal(map[string]any{
		"program":  clusterProgram,
		"datasets": []string{victimDS, survivorDS},
	})
	code, raw := do(t, http.MethodPost, cs.URL+"/v1/query", string(body))
	if code != http.StatusOK {
		t.Fatalf("degraded scatter must still answer 200, got %d %s", code, raw)
	}
	var sr scatterResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Fatalf("killed worker not reported: %s", raw)
	}
	foundPeer := false
	for _, p := range sr.FailedPeers {
		if p == victim {
			foundPeer = true
		}
	}
	if !foundPeer {
		t.Fatalf("failed_peers %v missing victim %s", sr.FailedPeers, victim)
	}
	for _, sh := range sr.Shards {
		dead := c.Owner(sh.Dataset) == victim
		if dead && sh.Error == "" {
			t.Fatalf("shard %q on dead peer reports no error: %s", sh.Dataset, raw)
		}
		if !dead && (sh.Error != "" || sh.AnswerCount == 0) {
			t.Fatalf("surviving shard %q dropped: %s", sh.Dataset, raw)
		}
	}
	if len(sr.Answers) == 0 {
		t.Fatalf("surviving answers dropped from degraded response: %s", raw)
	}

	// The mutation path fails loudly for the dead owner...
	if code, raw := do(t, http.MethodPost, cs.URL+"/v1/datasets/"+victimDS+"/facts", "edge(3, 4)."); code != http.StatusBadGateway {
		t.Fatalf("mutation to dead owner = %d %s, want 502", code, raw)
	}
	// ...and keeps working for live owners.
	if code, raw := do(t, http.MethodPost, cs.URL+"/v1/datasets/"+survivorDS+"/facts", "edge(2, 3)."); code != http.StatusOK {
		t.Fatalf("mutation to live owner = %d %s", code, raw)
	}

	// Health probe notices, /readyz stays up on the survivors, and the
	// unhealthy gauge flips for the victim.
	c.ProbeNow(context.Background())
	if code, _ := do(t, http.MethodGet, cs.URL+"/readyz", ""); code != http.StatusOK {
		t.Fatal("coordinator /readyz must stay ready while any worker lives")
	}
	_, mraw := do(t, http.MethodGet, cs.URL+"/metrics", "")
	wantGauge := `sqod_peer_unhealthy{peer="` + victim + `"} 1`
	if !strings.Contains(string(mraw), wantGauge) {
		t.Fatalf("metrics missing %q", wantGauge)
	}
	if !strings.Contains(string(mraw), "sqod_peer_requests_total") || !strings.Contains(string(mraw), "sqod_scatter_seconds_count") {
		t.Fatal("metrics missing peer request counters or scatter histogram")
	}
}

// TestClusterRetries: a worker that fails twice with 503 then recovers
// is retried transparently within one coordinator request.
func TestClusterRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"answers": ["path(1, 2)"]}`))
	}))
	defer flaky.Close()
	c, err := shard.NewCoordinator(shard.Config{
		Peers:        []string{flaky.URL},
		PeerTimeout:  time.Second,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	body, _ := json.Marshal(map[string]any{"program": clusterProgram, "datasets": []string{"d"}})
	code, raw := do(t, http.MethodPost, cs.URL+"/v1/query", string(body))
	if code != http.StatusOK {
		t.Fatalf("query = %d %s", code, raw)
	}
	var sr scatterResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || sr.AnswerCount != 1 {
		t.Fatalf("retries did not recover: %s", raw)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("worker saw %d attempts, want 3", got)
	}
}

// TestScatterGoroutineLeak scatters against a peer that never answers
// and a client that gives up, then checks every coordinator goroutine
// unwinds. Guards the per-shard deadline plumbing: a hung peer must
// not pin fan-out goroutines past the request.
func TestScatterGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only cancels r.Context() on client
		// disconnect once the request has been fully read.
		io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()
	defer close(release)

	c, err := shard.NewCoordinator(shard.Config{
		Peers:        []string{hung.URL},
		PeerTimeout:  200 * time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(map[string]any{"program": clusterProgram, "datasets": []string{"a", "b", "c"}})
		// Half the requests are abandoned mid-flight by the client.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, cs.URL+"/v1/query", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			var sr scatterResponse
			if derr := json.NewDecoder(resp.Body).Decode(&sr); derr == nil && !sr.Degraded {
				t.Fatal("hung peer must degrade the response")
			}
			resp.Body.Close()
		}
		cancel()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterIntrospection: /v1/cluster reports probe verdicts and
// answers placement questions consistently with Place.
func TestClusterIntrospection(t *testing.T) {
	c, cs, _ := newCluster(t, 2, shard.Config{})
	code, raw := do(t, http.MethodGet, cs.URL+"/v1/cluster?place=alpha", "")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster = %d %s", code, raw)
	}
	var info struct {
		Peers []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"peers"`
		Placement map[string]string `json:"placement"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Peers) != 2 {
		t.Fatalf("peers = %s", raw)
	}
	for _, p := range info.Peers {
		if !p.Healthy {
			t.Fatalf("live peer %s probed unhealthy", p.URL)
		}
	}
	if info.Placement["peer"] != c.Owner("alpha") {
		t.Fatalf("placement %v != Owner %q", info.Placement, c.Owner("alpha"))
	}
}

// TestCoordinatorConfig: peer validation and single-dataset proxying
// through the query endpoint.
func TestCoordinatorConfig(t *testing.T) {
	if _, err := shard.NewCoordinator(shard.Config{}); err == nil {
		t.Fatal("empty peer set must be rejected")
	}
	if _, err := shard.NewCoordinator(shard.Config{Peers: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("duplicate peers must be rejected")
	}

	_, cs, _ := newCluster(t, 2, shard.Config{})
	if code, raw := do(t, http.MethodPut, cs.URL+"/v1/datasets/solo", "edge(1, 2)."); code != http.StatusOK {
		t.Fatalf("PUT = %d %s", code, raw)
	}
	body, _ := json.Marshal(map[string]any{"program": clusterProgram, "dataset": "solo"})
	code, raw := do(t, http.MethodPost, cs.URL+"/v1/query", string(body))
	if code != http.StatusOK {
		t.Fatalf("single-dataset query via coordinator = %d %s", code, raw)
	}
	var qr struct {
		Answers []string `json:"answers"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != 1 || qr.Answers[0] != "(1, 2)" {
		t.Fatalf("answers = %s", raw)
	}
}
