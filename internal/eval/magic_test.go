package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// engineRuns is the engine × policy × worker matrix the goal-directed
// differential tests sweep; every cell must answer identically.
func engineRuns() []struct {
	label string
	opts  Options
} {
	return []struct {
		label string
		opts  Options
	}{
		{"legacy-w1", Options{Seminaive: true, UseIndex: true, Workers: 1}},
		{"greedy-w1", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1}},
		{"cost-w1", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1, Policy: PolicyCost}},
		{"adaptive-w1", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1, Policy: PolicyAdaptive}},
		{"greedy-w3", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 3}},
		{"adaptive-w3", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 3, Policy: PolicyAdaptive}},
	}
}

// answerSet renders query tuples as a sorted key list. Magic and
// bottom-up derive tuples in different orders, so answers compare as
// sets, never as sequences.
func answerSet(tuples []Tuple) []string {
	out := make([]string, len(tuples))
	for i, t := range tuples {
		parts := make([]string, len(t))
		for j, term := range t {
			parts[j] = term.Key()
		}
		out[i] = strings.Join(parts, "\x00")
	}
	sort.Strings(out)
	return out
}

// chainEdges adds edge(i, i+1) facts for i in [from, from+n) —
// workload.Chain's shape, inlined because workload imports eval.
func chainEdges(db *DB, from, n int) {
	for i := from; i < from+n; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
	}
}

func chainDB(n int) *DB {
	db := NewDB()
	chainEdges(db, 0, n)
	return db
}

// disjointChainsDB builds k disjoint chains of n edges each (chain c
// occupies nodes [c*1000, c*1000+n]); a goal bound to node 0 reaches
// only the first chain, so demand pruning has something to prune.
func disjointChainsDB(k, n int) *DB {
	db := NewDB()
	for c := 0; c < k; c++ {
		chainEdges(db, c*1000, n)
	}
	return db
}

// TestMagicDifferentialTC is the headline property: a bound point
// query on transitive closure answers identically with and without the
// magic rewrite across every engine, policy, and worker count — while
// magic does an order of magnitude less work.
func TestMagicDifferentialTC(t *testing.T) {
	for _, variant := range []string{
		// Right-linear: demand prunes to the reachable set.
		`path(X, Y) :- edge(X, Y).
		 path(X, Y) :- edge(X, Z), path(Z, Y).
		 ?- path(0, Y).`,
		// Left-linear: the recursive call keeps the head's binding.
		`path(X, Y) :- edge(X, Y).
		 path(X, Y) :- path(X, Z), edge(Z, Y).
		 ?- path(0, Y).`,
		// Fully bound goal.
		`path(X, Y) :- edge(X, Y).
		 path(X, Y) :- edge(X, Z), path(Z, Y).
		 ?- path(0, 40).`,
	} {
		p := parser.MustParseProgram(variant)
		db := disjointChainsDB(8, 50)
		var base []string
		baseLabel := ""
		var offDerived, onDerived int64
		for _, r := range engineRuns() {
			for _, mode := range []MagicMode{MagicOff, MagicAuto, MagicOn} {
				opts := r.opts
				opts.Magic = mode
				label := fmt.Sprintf("%s/%s", r.label, mode)
				tuples, stats, err := QueryCtx(context.Background(), p, db, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if wantMagic := mode != MagicOff; stats.MagicApplied != wantMagic {
					t.Fatalf("%s: MagicApplied = %v, want %v", label, stats.MagicApplied, wantMagic)
				}
				if mode == MagicOff {
					offDerived = stats.TuplesDerived
				} else {
					onDerived = stats.TuplesDerived
				}
				got := answerSet(tuples)
				if base == nil {
					base, baseLabel = got, label
					continue
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("answers diverged: %s (%d) vs %s (%d)\n%v\nvs\n%v",
						label, len(got), baseLabel, len(base), got, base)
				}
			}
		}
		if onDerived >= offDerived {
			t.Errorf("magic derived %d tuples, bottom-up %d; expected pruning on\n%s",
				onDerived, offDerived, variant)
		}
	}
}

// TestMagicPointQueryPruning pins the ISSUE acceptance bound: on the
// disjoint-chains workload a bound point query under magic derives at
// least 10x fewer tuples than bottom-up.
func TestMagicPointQueryPruning(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).`)
	// 15 disjoint chains; the goal reaches only the first, and the
	// right-linear rewrite still re-derives that chain's closure, so
	// the pruning factor is just under the chain count.
	db := disjointChainsDB(15, 40)
	opts := DefaultOptions()
	opts.Magic = MagicOff
	offTuples, offStats, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Magic = MagicAuto
	onTuples, onStats, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(answerSet(onTuples), answerSet(offTuples)) {
		t.Fatalf("answers diverged: %d vs %d tuples", len(onTuples), len(offTuples))
	}
	if onStats.TuplesDerived*10 > offStats.TuplesDerived {
		t.Errorf("magic derived %d tuples, want <= 1/10 of bottom-up's %d",
			onStats.TuplesDerived, offStats.TuplesDerived)
	}
	if onStats.PeakMaterialized >= offStats.PeakMaterialized {
		t.Errorf("magic peak %d >= bottom-up peak %d", onStats.PeakMaterialized, offStats.PeakMaterialized)
	}
}

// TestMagicFallback: goals the rewrite cannot use still answer
// correctly (bottom-up plus goal filtering) with MagicApplied false.
func TestMagicFallback(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unbound goal", `p(X, Y) :- e(X, Y). ?- p(A, B).`},
		{"repeated variable", `p(X, Y) :- e(X, Y). ?- p(V, V).`},
		{"no goal", `p(X, Y) :- e(X, Y). ?- p.`},
	}
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(1)))
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(2)))
	db.AddFact(ast.NewAtom("e", ast.N(2), ast.N(2)))
	for _, tc := range cases {
		p := parser.MustParseProgram(tc.src)
		tuples, stats, err := QueryCtx(context.Background(), p, db, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if stats.MagicApplied {
			t.Errorf("%s: MagicApplied = true, want fallback", tc.name)
		}
		want := 3
		if tc.name == "repeated variable" {
			want = 2 // the diagonal: (1,1) and (2,2)
		}
		if len(tuples) != want {
			t.Errorf("%s: %d answers, want %d: %v", tc.name, len(tuples), want, answerSet(tuples))
		}
	}
}

// TestGoalFilterWithoutMagic: goal constants select even under
// MagicOff, and repeated goal variables force equality.
func TestGoalFilterWithoutMagic(t *testing.T) {
	p := parser.MustParseProgram(`p(X, Y) :- e(X, Y). ?- p(1, Y).`)
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(2)))
	db.AddFact(ast.NewAtom("e", ast.N(3), ast.N(4)))
	opts := DefaultOptions()
	opts.Magic = MagicOff
	tuples, _, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || !tuples[0][0].Equal(ast.N(1)) || !tuples[0][1].Equal(ast.N(2)) {
		t.Fatalf("goal filter failed: %v", answerSet(tuples))
	}
}

// TestMagicModeValidation: unknown mode strings are rejected up front.
func TestMagicModeValidation(t *testing.T) {
	p := parser.MustParseProgram(`p(X) :- e(X). ?- p(1).`)
	opts := DefaultOptions()
	opts.Magic = "sometimes"
	if _, _, err := QueryCtx(context.Background(), p, NewDB(), opts); err == nil {
		t.Fatal("bad magic mode accepted by QueryCtx")
	}
	if _, _, err := EvalCtx(context.Background(), p, NewDB(), opts); err == nil {
		t.Fatal("bad magic mode accepted by EvalCtx")
	}
	if _, err := ParseMagicMode(""); err != nil {
		t.Fatalf("empty mode: %v", err)
	}
}

// TestStreamDifferential: streaming unfolding never changes answers
// and lowers the materialized footprint on a pipeline-shaped program.
func TestStreamDifferential(t *testing.T) {
	p := parser.MustParseProgram(`
		hop1(X, Y) :- edge(X, Y).
		hop2(X, Y) :- hop1(X, Z), edge(Z, Y).
		hop3(X, Y) :- hop2(X, Z), edge(Z, Y).
		q(X, Y) :- hop3(X, Z), edge(Z, Y).
		?- q.`)
	db := NewDB()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(rng.Intn(30))), ast.N(float64(rng.Intn(30)))))
	}
	var base []string
	var plainPeak, streamPeak int64
	for _, r := range engineRuns() {
		for _, stream := range []bool{false, true} {
			opts := r.opts
			opts.Stream = stream
			tuples, stats, err := QueryCtx(context.Background(), p, db, opts)
			if err != nil {
				t.Fatalf("%s/stream=%v: %v", r.label, stream, err)
			}
			if stream {
				streamPeak = stats.PeakMaterialized
			} else {
				plainPeak = stats.PeakMaterialized
			}
			got := answerSet(tuples)
			if base == nil {
				base = got
				continue
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%s/stream=%v: answers diverged (%d vs %d)", r.label, stream, len(got), len(base))
			}
		}
	}
	if streamPeak >= plainPeak {
		t.Errorf("stream peak %d >= plain peak %d; pipeline should not materialize hops", streamPeak, plainPeak)
	}
}

// TestMagicStreamCombined: both rewrites stacked still answer
// identically to plain bottom-up.
func TestMagicStreamCombined(t *testing.T) {
	p := parser.MustParseProgram(`
		hop(X, Y) :- edge(X, Y).
		path(X, Y) :- hop(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).`)
	db := chainDB(40)
	off := DefaultOptions()
	off.Magic = MagicOff
	wantTuples, _, err := QueryCtx(context.Background(), p, db, off)
	if err != nil {
		t.Fatal(err)
	}
	on := DefaultOptions()
	on.Stream = true
	gotTuples, stats, err := QueryCtx(context.Background(), p, db, on)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MagicApplied {
		t.Error("MagicApplied = false, want true")
	}
	if !reflect.DeepEqual(answerSet(gotTuples), answerSet(wantTuples)) {
		t.Fatalf("answers diverged: %v vs %v", answerSet(gotTuples), answerSet(wantTuples))
	}
}

// TestMagicPeakDeterministic: PeakMaterialized agrees between the
// legacy and compiled engines and across worker counts, like every
// other deterministic counter.
func TestMagicPeakDeterministic(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path.`)
	db := chainDB(25)
	var peak int64 = -1
	for _, r := range engineRuns() {
		_, stats, err := QueryCtx(context.Background(), p, db, r.opts)
		if err != nil {
			t.Fatalf("%s: %v", r.label, err)
		}
		if stats.PeakMaterialized <= 0 {
			t.Fatalf("%s: PeakMaterialized = %d, want > 0", r.label, stats.PeakMaterialized)
		}
		if peak < 0 {
			peak = stats.PeakMaterialized
		} else if stats.PeakMaterialized != peak {
			t.Fatalf("%s: PeakMaterialized = %d, want %d", r.label, stats.PeakMaterialized, peak)
		}
	}
}

// FuzzMagic drives arbitrary programs with arbitrary binding patterns
// through the goal-directed path and asserts the one contract that
// matters: magic on (with and without streaming), across engines and
// worker counts, answers exactly like bottom-up evaluation of the
// same goal. Mirrors FuzzPlan's EDB construction; the bottom-up
// baseline decides evaluability.
func FuzzMagic(f *testing.F) {
	f.Add(`path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.`, uint8(1), uint8(1))
	f.Add(`p(X, Y) :- e(X, Y).
p(X, Y) :- p(X, Z), e(Z, Y).
?- p.`, uint8(2), uint8(2))
	f.Add(`q(X) :- a(X, Y), b(Y), !c(X).
r(X) :- q(X), a(X, X).
?- r.`, uint8(3), uint8(1))
	f.Add(`s(X, Z) :- e(X, Y), f(Y, Z), X < Z.
t(X, Y) :- s(X, Y), s(Y, X).
?- t.`, uint8(4), uint8(3))
	f.Add(`mid(X, Y) :- e(X, Y).
q(X, Y) :- mid(X, Z), f(Z, Y).
?- q.`, uint8(5), uint8(1))

	f.Fuzz(func(t *testing.T, src string, seed, bindMask uint8) {
		unit, err := parser.Parse(src)
		if err != nil {
			return
		}
		p := unit.Program
		if p.Query == "" {
			return
		}
		arity, err := p.PredArity()
		if err != nil {
			return
		}
		db := NewDB()
		for _, fact := range unit.Facts {
			if ar, ok := arity[fact.Pred]; ok && ar != fact.Arity() {
				return
			}
			arity[fact.Pred] = fact.Arity()
			db.AddFact(fact)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for pred := range p.EDB() {
			ar := arity[pred]
			if ar == 0 || ar > 4 {
				continue
			}
			for n := 0; n < 8; n++ {
				args := make([]ast.Term, ar)
				for j := range args {
					args[j] = ast.N(float64(rng.Intn(6)))
				}
				db.AddFact(ast.NewAtom(pred, args...))
			}
		}
		// Synthesize a goal from the binding mask: bit i set binds
		// argument i to a random domain constant.
		n := arity[p.Query]
		if n > 0 {
			goal := make([]ast.Term, n)
			for i := 0; i < n; i++ {
				if bindMask&(1<<i) != 0 {
					goal[i] = ast.N(float64(rng.Intn(6)))
				} else {
					goal[i] = ast.V(fmt.Sprintf("G%d", i))
				}
			}
			p.Goal = goal
		}

		off := Options{Seminaive: true, UseIndex: true, CompilePlans: true,
			Workers: 1, Magic: MagicOff, MaxTuples: 20000}
		baseTuples, _, err := QueryCtx(context.Background(), p, db, off)
		if err != nil {
			return // baseline decides evaluability
		}
		want := answerSet(baseTuples)
		for _, r := range engineRuns() {
			for _, stream := range []bool{false, true} {
				opts := r.opts
				opts.Stream = stream
				opts.MaxTuples = 40000 // magic adds sup/demand tuples, so allow headroom
				gotTuples, _, err := QueryCtx(context.Background(), p, db, opts)
				if err != nil {
					if errors.Is(err, ErrBudget) {
						continue // rewrite overhead can exceed even the headroom
					}
					t.Fatalf("%s/stream=%v errored where baseline succeeded: %v", r.label, stream, err)
				}
				if got := answerSet(gotTuples); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/stream=%v: answers diverged\n got %v\nwant %v\ngoal %s",
						r.label, stream, got, want, p.GoalAtom())
				}
			}
		}
	})
}
