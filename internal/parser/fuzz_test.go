package parser

import (
	"strings"
	"testing"
)

// fuzzSeeds mirrors the examples/ corpus (quickstart, goodpath,
// transclosure, funcdep, undecidable) plus syntax-edge seeds: every
// token kind, comments, negation, order atoms, string and numeric
// constants, and a few malformed inputs that must error cleanly.
var fuzzSeeds = []string{
	// quickstart / goodpath
	`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`,
	`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`,
	// transclosure (Figure 1)
	`
		p(X, Y) :- a(X, Y).
		p(X, Y) :- b(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Z), p(Z, Y).
		?- p.
		:- a(X, Y), b(Y, Z).
	`,
	// funcdep (comments, !=, <)
	`
		% two managers for one employee would be a conflict
		conflict(E) :- manages(E, M1), manages(E, M2), M1 < M2.
		boss(E, M) :- manages(E, M).
		boss(E, M) :- manages(E, X), boss(X, M).
		top(E, M) :- boss(E, M), ceo(M).
		?- top.
		:- manages(E, M1), manages(E, M2), M1 != M2.
	`,
	// undecidable (negated EDB atoms in ics)
	`
		q(X) :- a(X), c(X).
		?- q.
		:- a(X), !b(X).
	`,
	// ground facts, string and numeric constants
	`
		step(1, 2). step(2, 3). startPoint(1). endPoint(3).
		name("alice", 1). pi(3.14159). neg(-7).
	`,
	// every comparison operator
	`r(X, Y) :- e(X, Y), X < Y, X <= Y, X > 0, X >= 0, X != Y, X = X.`,
	// zero-arity atoms and empty-ish forms
	`q :- a, b. ?- q.`,
	// goal queries with bound arguments (point and mixed queries)
	`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(a, Y).
	`,
	`r(X, Y, Z) :- e(X, Y), f(Y, Z). ?- r(1, W, "end").`,
	`p(X, X) :- e(X, X). ?- p(V, V).`,
	// malformed inputs that must produce errors, never panics
	`p(X :-`,
	`p(X, Y) :- `,
	`:-`,
	`?-`,
	`p().`,
	`p(X) :- q(X)`,
	`"unterminated`,
	`p(X) :- X <.`,
	`%`,
	"p(X) :- q(X). \x00",
}

// FuzzParse asserts two properties over arbitrary input: (1) the
// parser never panics, and (2) accepted input round-trips — rendering
// the parsed unit back to source and re-parsing yields the same
// program, constraints, and facts (so the printer and parser agree on
// the grammar).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		unit, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		render := renderUnit(unit)
		unit2, err := Parse(render)
		if err != nil {
			t.Fatalf("accepted input failed to re-parse after printing\ninput: %q\nprinted: %q\nerr: %v", src, render, err)
		}
		if got, want := renderUnit(unit2), render; got != want {
			t.Fatalf("print → parse → print is not a fixpoint\nfirst:  %q\nsecond: %q", want, got)
		}
	})
}

// renderUnit renders a parsed unit back to parseable source syntax.
func renderUnit(u *Unit) string {
	var b strings.Builder
	b.WriteString(u.Program.String())
	if u.Program.Query != "" {
		b.WriteString("?- " + u.Program.GoalAtom().String() + ".\n")
	}
	for _, ic := range u.ICs {
		b.WriteString(ic.String() + "\n")
	}
	for _, fact := range u.Facts {
		b.WriteString(fact.String() + ".\n")
	}
	return b.String()
}

// TestFuzzSeedsParse keeps the well-formed seeds parsing in plain test
// runs (no -fuzz flag needed).
func TestFuzzSeedsParse(t *testing.T) {
	for i, seed := range fuzzSeeds[:11] {
		if _, err := Parse(seed); err != nil {
			t.Errorf("seed %d no longer parses: %v", i, err)
		}
	}
}
