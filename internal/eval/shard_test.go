package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// --- sharded-evaluation differential harness ------------------------------
//
// The tentpole contract: answers, Stats (including derivation counts
// and per-round deltas), and provenance are bit-identical to
// single-shard evaluation at any shard count, for both engines, every
// worker count, and both partitioners. The baseline is the same
// engine's unsharded run, so the assertion is exactly "sharding is
// invisible except for ShardExchanged".

var shardCounts = []int{1, 2, 4}

func requireShardsIdentical(t *testing.T, label string, p *ast.Program, db *DB) {
	t.Helper()
	var bases []engineRun
	for _, compile := range []bool{false, true} {
		base := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: compile})
		if base.stats.ShardExchanged != 0 {
			t.Fatalf("%s: unsharded run reports ShardExchanged=%d", label, base.stats.ShardExchanged)
		}
		bases = append(bases, base)
		for _, workers := range []int{1, 4} {
			for _, shards := range shardCounts {
				parts := []string{"modulo"}
				if shards > 1 {
					parts = append(parts, "rendezvous")
				}
				for _, part := range parts {
					opts := Options{Seminaive: true, UseIndex: true, CompilePlans: compile,
						Workers: workers, Shards: shards, ShardPartitioner: part}
					cr := runEngine(t, p, db, opts)
					ctx := fmt.Sprintf("%s (compile=%v workers=%d shards=%d part=%s)",
						label, compile, workers, shards, part)
					if !cr.stats.Equal(&base.stats) {
						t.Fatalf("%s: stats differ from unsharded:\nbase    %+v\nsharded %+v", ctx, base.stats, cr.stats)
					}
					if !reflect.DeepEqual(cr.preds, base.preds) {
						t.Fatalf("%s: answers differ from unsharded", ctx)
					}
					if cr.prov != base.prov {
						t.Fatalf("%s: provenance differs from unsharded", ctx)
					}
					if shards <= 1 && cr.stats.ShardExchanged != 0 {
						t.Fatalf("%s: ShardExchanged=%d without sharding", ctx, cr.stats.ShardExchanged)
					}
				}
			}
		}
	}
	// Cross-engine sanity on top of the per-engine invariance (the
	// compiled differential suite pins this in depth).
	if !reflect.DeepEqual(bases[0].preds, bases[1].preds) {
		t.Fatalf("%s: engines disagree on answers", label)
	}
}

func TestShardDifferentialTransClosure(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	requireShardsIdentical(t, "trans closure", p, chainEDB(40))
}

func TestShardDifferentialMultiRule(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X, Y) :- edge(X, Y), !blocked(X).
		reach(X, Y) :- edge(X, Z), reach(Z, Y), !blocked(X).
		far(X, Y) :- reach(X, Y), X < Y.
		sym(X, Y) :- reach(X, Y), reach(Y, X), X != Y.
		?- far.
	`)
	db := NewDB()
	for i := 0; i < 12; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i+1)%12))))
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i*5)%12))))
	}
	db.AddFact(ast.NewAtom("blocked", ast.N(7)))
	requireShardsIdentical(t, "multi-rule", p, db)
}

// TestShardDifferentialDuplicateHeavy stresses the provenance winner:
// the same head is derivable from many depth-0 rows in one round, so
// the k-way merge must reproduce exactly the first derivation a single
// task would record.
func TestShardDifferentialDuplicateHeavy(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- e(X, Y).
		pair(X, Z) :- e(X, Y), e(Y, Z).
		?- q.
	`)
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	for i := 0; i < 300; i++ {
		db.AddFact(ast.NewAtom("e",
			ast.N(float64(rng.Intn(8))), ast.N(float64(rng.Intn(8)))))
	}
	requireShardsIdentical(t, "duplicate-heavy", p, db)
}

func TestShardDifferentialRandomGraphs(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		sym(X, Y) :- path(X, Y), path(Y, X), X != Y.
		?- path.
	`)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		db := NewDB()
		n := 4 + rng.Intn(7)
		for i := 0; i < n*3; i++ {
			db.AddFact(ast.NewAtom("edge",
				ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(n)))))
		}
		requireShardsIdentical(t, fmt.Sprintf("random trial %d", trial), p, db)
	}
}

// TestShardCostPolicy: the cost policy re-plans at round barriers from
// global relation statistics, which sharding does not change, so full
// Stats and provenance stay bit-identical to the unsharded cost run.
func TestShardCostPolicy(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- edge(X, Y), tag(Y).
		r(X, Y) :- q(X), edge(X, Y).
		?- r.
	`)
	db := filterSkewDB(800)
	base := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: true, Policy: PolicyCost})
	for _, shards := range []int{2, 4} {
		cr := runEngine(t, p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: true,
			Policy: PolicyCost, Shards: shards, Workers: 4})
		if !cr.stats.Equal(&base.stats) {
			t.Fatalf("shards=%d: cost stats differ:\n%+v\nvs\n%+v", shards, base.stats, cr.stats)
		}
		if !reflect.DeepEqual(cr.preds, base.preds) || cr.prov != base.prov {
			t.Fatalf("shards=%d: cost answers/provenance differ", shards)
		}
	}
}

// TestShardAblations: naive rounds and the unindexed scan path keep
// answers identical under sharding.
func TestShardAblations(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(25)
	for _, seminaive := range []bool{true, false} {
		for _, useIndex := range []bool{true, false} {
			for _, compile := range []bool{false, true} {
				base := runEngine(t, p, db, Options{Seminaive: seminaive, UseIndex: useIndex, CompilePlans: compile})
				cr := runEngine(t, p, db, Options{Seminaive: seminaive, UseIndex: useIndex, CompilePlans: compile,
					Shards: 3, Workers: 2})
				ctx := fmt.Sprintf("seminaive=%v index=%v compile=%v", seminaive, useIndex, compile)
				if !cr.stats.Equal(&base.stats) || !reflect.DeepEqual(cr.preds, base.preds) {
					t.Fatalf("%s: sharded ablation differs", ctx)
				}
			}
		}
	}
}

// TestShardExchangedDeterministic pins the content-based partitioner:
// the cross-shard traffic counter is identical across runs, across
// engines (which intern terms in different orders), and across EDB
// insertion orders — none of which may influence shard ownership.
func TestShardExchangedDeterministic(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(30)
	opts := Options{Seminaive: true, UseIndex: true, Shards: 4, Workers: 2}
	legacy := runEngine(t, p, db, opts)
	optsC := opts
	optsC.CompilePlans = true
	compiled := runEngine(t, p, db, optsC)
	if legacy.stats.ShardExchanged == 0 {
		t.Fatal("expected nonzero cross-shard traffic on a 30-node chain")
	}
	if legacy.stats.ShardExchanged != compiled.stats.ShardExchanged {
		t.Fatalf("engines disagree on ShardExchanged: legacy=%d compiled=%d",
			legacy.stats.ShardExchanged, compiled.stats.ShardExchanged)
	}
	for run := 0; run < 3; run++ {
		again := runEngine(t, p, db, optsC)
		if again.stats.ShardExchanged != compiled.stats.ShardExchanged {
			t.Fatalf("ShardExchanged varies across runs: %d vs %d",
				again.stats.ShardExchanged, compiled.stats.ShardExchanged)
		}
	}

	// Symbol-table growth: inserting the same facts in reverse order
	// assigns every term a different intern id. On a single-derivation
	// workload (each head has exactly one deriving row) the deriving
	// shard of every tuple is order-independent, so ShardExchanged must
	// not move — it would if ownership hashed intern ids.
	p1 := parser.MustParseProgram("q(X, Y) :- e(X, Y).\n?- q.\n")
	fwd, rev := NewDB(), NewDB()
	for i := 0; i < 50; i++ {
		fwd.AddFact(ast.NewAtom("e", ast.N(float64(i)), ast.N(float64(i*7%50))))
	}
	for i := 49; i >= 0; i-- {
		rev.AddFact(ast.NewAtom("e", ast.N(float64(i)), ast.N(float64(i*7%50))))
	}
	for _, part := range []string{"modulo", "rendezvous"} {
		o := Options{Seminaive: true, UseIndex: true, CompilePlans: true, Shards: 4, ShardPartitioner: part}
		a := runEngine(t, p1, fwd, o)
		b := runEngine(t, p1, rev, o)
		if a.stats.ShardExchanged != b.stats.ShardExchanged {
			t.Fatalf("part=%s: ShardExchanged depends on interning order: %d vs %d",
				part, a.stats.ShardExchanged, b.stats.ShardExchanged)
		}
		if !reflect.DeepEqual(a.preds, b.preds) {
			t.Fatalf("part=%s: answers depend on insertion order", part)
		}
	}
}

func TestShardBudgetAndCancellation(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(100)
	for _, compile := range []bool{false, true} {
		_, _, err := EvalWith(p, db, Options{Seminaive: true, UseIndex: true, CompilePlans: compile,
			Shards: 4, Workers: 4, MaxTuples: 50})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("compile=%v: want ErrBudget, got %v", compile, err)
		}
	}
}

func TestShardOptionsValidation(t *testing.T) {
	p := parser.MustParseProgram("q(X) :- e(X, X).\n?- q.\n")
	db := NewDB()
	bad := []Options{
		{Seminaive: true, Shards: -1},
		{Seminaive: true, Shards: 1000},
		{Seminaive: true, Shards: 2, ShardPartitioner: "bogus"},
		{Seminaive: true, Shards: 2, CompilePlans: true, Policy: PolicyAdaptive},
	}
	for i, o := range bad {
		if _, _, err := EvalWith(p, db, o); err == nil {
			t.Fatalf("case %d: options %+v must be rejected", i, o)
		}
	}
	// Sharding works on both engines, and shards=1 is a no-op.
	for _, o := range []Options{
		{Seminaive: true, UseIndex: true, Shards: 2},
		{Seminaive: true, UseIndex: true, Shards: 1},
		{Seminaive: true, UseIndex: true, CompilePlans: true, Shards: 2, ShardPartitioner: "rendezvous"},
		{Seminaive: true, UseIndex: true, CompilePlans: true, Policy: PolicyCost, Shards: 2},
	} {
		if _, _, err := EvalWith(p, db, o); err != nil {
			t.Fatalf("options %+v: %v", o, err)
		}
	}
}

// TestShardQueryCtx exercises the goal-directed path: magic rewrite +
// sharding compose, answers unchanged.
func TestShardQueryCtx(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path(3, Y).
	`)
	db := chainEDB(30)
	base, _, err := QueryWith(p, db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Shards = 4
	opts.Workers = 4
	got, stats, err := QueryWith(p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MagicApplied {
		t.Fatal("magic should apply to the bound goal")
	}
	if !reflect.DeepEqual(tupleKeys(got), tupleKeys(base)) {
		t.Fatalf("sharded goal answers differ: %v vs %v", got, base)
	}
}

func tupleKeys(ts []Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	return out
}
