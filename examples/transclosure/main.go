// transclosure runs the paper's Section 4 / Figure 1 example: the
// transitive closure over two edge flavours a and b, with the
// constraint that an a-edge is never followed by a b-edge. The program
// prints the query forest (Figure 1), the rewritten program (the rules
// s1–s6), and an evaluation comparison on a comb-shaped workload.
//
// Usage: transclosure [width] [bLen] [aLen]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	sqo "repro"
	"repro/internal/workload"
)

func main() {
	width, bLen, aLen := 8, 12, 12
	if len(os.Args) > 1 {
		width, _ = strconv.Atoi(os.Args[1])
	}
	if len(os.Args) > 2 {
		bLen, _ = strconv.Atoi(os.Args[2])
	}
	if len(os.Args) > 3 {
		aLen, _ = strconv.Atoi(os.Args[3])
	}

	program := sqo.MustParseProgram(`
		p(X, Y) :- a(X, Y).
		p(X, Y) :- b(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Z), p(Z, Y).
		?- p.
	`)
	ics := sqo.MustParseICs(`:- a(X, Y), b(Y, Z).`)

	res, err := sqo.Optimize(program, ics)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== query forest (Figure 1) ==")
	fmt.Print(sqo.Explain(res))
	fmt.Println("\n== rewritten program (s1..s6 + wrappers) ==")
	fmt.Print(sqo.FormatProgram(res.Program))

	db := sqo.NewDBFrom(workload.ABComb(width, bLen, aLen))
	run := func(name string, p *sqo.Program) {
		start := time.Now()
		tuples, stats, err := sqo.Query(p, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s answers=%d derived=%d probes=%d time=%v\n",
			name, len(tuples), stats.TuplesDerived, stats.JoinProbes,
			time.Since(start).Round(time.Microsecond))
	}
	fmt.Printf("\n== evaluation (width=%d bLen=%d aLen=%d) ==\n", width, bLen, aLen)
	run("original", program)
	run("optimized", res.Program)
}
