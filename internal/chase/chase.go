// Package chase implements a budget-bounded (disjunctive) chase for
// integrity constraints with negated EDB atoms, the semi-decision
// procedure behind the {¬}-ic satisfiability questions of Section 5.
//
// A denial constraint with negated atoms, :- p1,...,pm, !n1,...,!nk,
// is logically p1 ∧ ... ∧ pm → n1 ∨ ... ∨ nk. A database violating it
// can be repaired by ADDING one of the n_i facts, so consistency of a
// finite fact set is established by chasing: repeatedly find a
// violation and repair it. With k = 0 a violation is fatal; with k = 1
// the repair is deterministic; with k > 1 the chase branches. The
// chase may diverge (Theorem 5.4 shows the underlying question is
// undecidable), hence the explicit step budget and the three-valued
// result.
package chase

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"

	"repro/internal/unify"
)

// Verdict is the three-valued outcome of a bounded chase.
type Verdict int

const (
	// Unknown means the step budget was exhausted before the chase
	// terminated.
	Unknown Verdict = iota
	// Consistent means a finite model extending the input facts and
	// satisfying every constraint was constructed.
	Consistent
	// Inconsistent means every chase branch reached a hard violation.
	Inconsistent
)

func (v Verdict) String() string {
	switch v {
	case Consistent:
		return "consistent"
	case Inconsistent:
		return "inconsistent"
	default:
		return "unknown"
	}
}

// Result carries the verdict and, when consistent, the constructed
// model.
type Result struct {
	Verdict Verdict
	// Model holds the chased fact set for a consistent branch.
	Model []ast.Atom
	// Steps is the total number of chase steps taken across branches.
	Steps int
}

// Options bounds the chase.
type Options struct {
	// MaxSteps bounds the total number of repair steps across all
	// branches (default 10000).
	MaxSteps int
	// Forbidden lists ground atoms that must never be added (used to
	// respect negated atoms of a query body); adding one fails the
	// branch.
	Forbidden []ast.Atom
}

// Run chases the given ground facts against the constraints.
func Run(facts []ast.Atom, ics []ast.IC, opts Options) Result {
	return RunCtx(context.Background(), facts, ics, opts)
}

// RunCtx is Run under a context: cancellation or deadline expiry stops
// the chase at the next step boundary with an Unknown verdict — the
// same honest "budget exhausted" outcome as running out of MaxSteps,
// since an interrupted semi-decision procedure has not decided
// anything.
func RunCtx(ctx context.Context, facts []ast.Atom, ics []ast.IC, opts Options) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10000
	}
	for _, f := range facts {
		if !f.Ground() {
			panic("chase: non-ground fact " + f.String())
		}
	}
	forbidden := map[string]bool{}
	for _, f := range opts.Forbidden {
		forbidden[f.Key()] = true
	}
	c := &chaser{ctx: ctx, ics: ics, budget: opts.MaxSteps, forbidden: forbidden}
	db := map[string]ast.Atom{}
	for _, f := range facts {
		db[f.Key()] = f
	}
	verdict, model := c.chase(db)
	res := Result{Verdict: verdict, Steps: c.steps}
	if verdict == Consistent {
		res.Model = model
	}
	return res
}

type chaser struct {
	ctx       context.Context
	ics       []ast.IC
	budget    int
	steps     int
	forbidden map[string]bool
	exhausted bool
}

// chase returns the verdict for the given database (branching over
// disjunctive repairs).
func (c *chaser) chase(db map[string]ast.Atom) (Verdict, []ast.Atom) {
	for {
		if c.steps >= c.budget || (c.ctx != nil && c.ctx.Err() != nil) {
			c.exhausted = true
			return Unknown, nil
		}
		v, ok := c.findViolation(db)
		if !ok {
			return Consistent, dbAtoms(db)
		}
		c.steps++
		if len(v.repairs) == 0 {
			return Inconsistent, nil
		}
		if len(v.repairs) == 1 {
			a := v.repairs[0]
			if c.forbidden[a.Key()] {
				return Inconsistent, nil
			}
			db[a.Key()] = a
			continue
		}
		// Disjunctive repair: branch on a copy per alternative.
		sawUnknown := false
		for _, a := range v.repairs {
			if c.forbidden[a.Key()] {
				continue
			}
			branch := make(map[string]ast.Atom, len(db)+1)
			for k, f := range db {
				branch[k] = f
			}
			branch[a.Key()] = a
			verdict, model := c.chase(branch)
			switch verdict {
			case Consistent:
				return Consistent, model
			case Unknown:
				sawUnknown = true
			}
		}
		if sawUnknown {
			return Unknown, nil
		}
		return Inconsistent, nil
	}
}

type violation struct {
	repairs []ast.Atom // adding any one of these repairs the violation
}

// findViolation looks for a constraint whose positive atoms map into
// the database with order atoms satisfied and every repair option
// absent. It prefers deterministic (0- or 1-repair) violations to keep
// branching low.
func (c *chaser) findViolation(db map[string]ast.Atom) (violation, bool) {
	atoms := dbAtoms(db)
	var pending *violation
	for _, ic := range c.ics {
		found := false
		var result violation
		unify.Homomorphisms(ic.Pos, atoms, func(h unify.Subst) bool {
			// Order atoms must be satisfied by the ground instance.
			for _, cm := range ic.Cmp {
				g := h.ApplyCmp(cm)
				if g.Left.IsVar() || g.Right.IsVar() || !g.Eval() {
					return true // not a violation under this mapping
				}
			}
			var repairs []ast.Atom
			for _, n := range ic.Neg {
				g := h.ApplyAtom(n)
				if !g.Ground() {
					return true // unsafely quantified; cannot judge
				}
				if _, present := db[g.Key()]; present {
					return true // some disjunct already satisfied
				}
				repairs = append(repairs, g)
			}
			result = violation{repairs: repairs}
			found = true
			// Stop immediately on fatal or deterministic violations.
			return len(repairs) > 1
		})
		if found {
			if len(result.repairs) <= 1 {
				return result, true
			}
			if pending == nil {
				v := result
				pending = &v
			}
		}
	}
	if pending != nil {
		return *pending, true
	}
	return violation{}, false
}

// dbAtoms returns the database in sorted key order so that violation
// search — and therefore branching order and the verdict under a tight
// budget — is deterministic across runs.
func dbAtoms(db map[string]ast.Atom) []ast.Atom {
	keys := make([]string, 0, len(db))
	for k := range db {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ast.Atom, 0, len(db))
	for _, k := range keys {
		out = append(out, db[k])
	}
	return out
}

// IsConsistent reports whether the ground fact set satisfies the
// constraints as-is (no chasing): no constraint body maps into it.
func IsConsistent(facts []ast.Atom, ics []ast.IC) (bool, error) {
	for _, f := range facts {
		if !f.Ground() {
			return false, fmt.Errorf("chase: non-ground fact %s", f)
		}
	}
	db := map[string]ast.Atom{}
	for _, f := range facts {
		db[f.Key()] = f
	}
	c := &chaser{ics: ics, budget: 1}
	_, violated := c.findViolation(db)
	return !violated, nil
}
