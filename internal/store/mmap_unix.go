//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns the byte view plus an
// unmap function. Empty files return a nil slice (mmap of length 0 is
// an error on Linux). The segment format is 4-byte aligned end to end
// precisely so this view can be consumed in place.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Mmap can fail on filesystems without mapping support; fall
		// back to a plain read.
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return b, func() {}, nil
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
