# Shared entry points for local development and CI (.github/workflows/ci.yml
# invokes these same targets so the two can't drift).

GO ?= go

.PHONY: build vet fmt test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt test
