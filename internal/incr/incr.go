// Package incr maintains materialized datalog views incrementally.
//
// Materialize evaluates a program once and keeps the result live:
// View.Apply takes a batch of EDB fact insertions and retractions and
// updates every derived relation by propagating deltas instead of
// re-running the fixpoint — counting for non-recursive strata, DRed
// (delete-rederive) for recursive ones — reusing the compiled join
// plans of internal/eval through its exported delta surface
// (eval.DeltaProgram). This serves the workload shape the paper
// assumes: the semantic rewrite is computed once and stays valid as
// the EDB changes, so the expensive static side (rewriting) and the
// expensive dynamic side (re-evaluation) are both amortized.
//
// Algorithms:
//
//   - Non-recursive strata (single predicate, no self-dependency)
//     maintain an exact derivation count per tuple via finite
//     differencing: for each rule and each subgoal occurrence, the
//     delta join New_{<occ} ⋈ Δ_occ ⋈ Old_{>occ} (subgoal positions
//     before occ read post-update state, positions after read
//     pre-update state) enumerates precisely the firings gained or
//     lost, so count>0 is presence and counts match a from-scratch
//     evaluation exactly.
//
//   - Recursive strata use DRed: (1) overdelete — propagate deletions
//     through the stratum's rules over pre-update state, collecting
//     every tuple with a potentially-lost derivation; (2) rederive —
//     put back overdeleted tuples still derivable from the surviving
//     state, using head-bound derivability plans (eval.Derivable)
//     seeded with the candidate tuple; (3) insert — semi-naive
//     propagation of the gained tuples.
//
// Updates that touch a negated predicate fall back to a full rebuild
// (counting/DRed as implemented assume the delta rules are monotone;
// negation is EDB-only and rare in rewritten programs). A failed or
// cancelled Apply leaves the view marked broken with its EDB already
// final; the next operation repairs it by rebuilding, so no sequence
// of failures can produce wrong answers — only retried work.
package incr

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/eval"
)

// Options configures Materialize.
type Options struct {
	// MaxTuples bounds the number of IDB tuples materialized during the
	// initial fixpoint and any full rebuild (0 = unlimited). Exceeding
	// it returns an error wrapping eval.ErrBudget.
	MaxTuples int64
	// Policy selects the join-order policy for the view's delta passes
	// (empty means greedy; see eval.JoinOrderPolicy). Cost and adaptive
	// order each delta join from the live relations' statistics
	// sketches. Answers, derivation counts, Changes, and Explain output
	// are identical under every policy — only probe counts differ.
	// DRed's head-bound rederivation checks always run greedy: their
	// plans are fully bound from depth 0, so there is nothing for
	// cardinality estimates to improve.
	Policy eval.JoinOrderPolicy
}

// Stats reports the cumulative work a view has done. Delta passes
// account join probes through the same counter semantics as
// eval.Stats.JoinProbes, which is what makes incremental and full runs
// comparable in sqobench.
type Stats struct {
	InitRounds     int   // fixpoint rounds during Materialize
	InitTuples     int64 // IDB tuples derived during Materialize
	InitProbes     int64 // join probes during Materialize
	Applies        int64 // Apply calls that completed successfully
	FullRebuilds   int64 // applies (or repairs) that recomputed from scratch
	DeltaRounds    int64 // delta propagation rounds across all applies
	DeltaProbes    int64 // join probes across all delta passes
	RederiveChecks int64 // head-bound derivability checks (DRed phase 2)
	TuplesAdded    int64 // net answers added to the query predicate across applies
	TuplesRemoved  int64 // net answers removed from the query predicate across applies
}

// Changes reports the net effect of one Apply on the query predicate:
// answers that appeared and answers that disappeared, each sorted by
// canonical tuple key.
type Changes struct {
	Added   []eval.Tuple
	Removed []eval.Tuple
}

// View is a materialized program kept consistent with a mutable EDB.
// All methods are safe for concurrent use; writes serialize.
type View struct {
	mu    sync.Mutex
	prog  *ast.Program
	dp    *eval.DeltaProgram
	idbPr map[string]bool
	arity map[string]int
	// negPreds are the (EDB) predicates appearing under negation;
	// updates touching them force a full rebuild.
	negPreds map[string]bool
	strata   []stratum
	rulesFor map[string][]int
	// rels holds the current version of every predicate, EDB and IDB,
	// as append-only interned relations. A predicate that loses tuples
	// gets a rebuilt relation; old RelView snapshots keep the previous
	// object alive and unchanged.
	rels map[string]*eval.IRel
	// counts maps, for each counting-maintained predicate, packed row
	// key → exact number of derivations.
	counts map[string]map[string]int64
	opts   Options
	stats  Stats
	// broken is set when an Apply fails after the EDB was updated: the
	// IDB is stale and the next operation must rebuild. The EDB irels
	// are always final for every successfully-ingested delta.
	broken bool
	// lastGood snapshots the query relation as of the last consistent
	// state, so the repairing Apply can report Changes relative to what
	// the caller last saw. Only set while broken.
	lastGood eval.RelView
	version  int64
	// Lazy provenance cache (see Explain).
	provVersion int64
	provDB      *eval.DB
	prov        *eval.Provenance
}

// Materialize evaluates p over edb and returns a live view.
func Materialize(p *ast.Program, edb *eval.DB, opts Options) (*View, error) {
	return MaterializeCtx(context.Background(), p, edb, opts)
}

// MaterializeCtx is Materialize under a context (checked at round
// barriers and inside long joins).
func MaterializeCtx(ctx context.Context, p *ast.Program, edb *eval.DB, opts Options) (*View, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := eval.ParseJoinOrderPolicy(string(opts.Policy)); err != nil {
		return nil, err
	}
	dp, err := eval.CompileDeltaProgram(p)
	if err != nil {
		return nil, err
	}
	arity, err := p.PredArity()
	if err != nil {
		return nil, err
	}
	v := &View{
		prog:     p,
		dp:       dp,
		idbPr:    p.IDB(),
		arity:    arity,
		negPreds: map[string]bool{},
		rulesFor: map[string][]int{},
		rels:     map[string]*eval.IRel{},
		counts:   map[string]map[string]int64{},
		opts:     opts,
	}
	for i, r := range p.Rules {
		v.rulesFor[r.Head.Pred] = append(v.rulesFor[r.Head.Pred], i)
		for _, a := range r.Neg {
			v.negPreds[a.Pred] = true
		}
	}
	v.strata = buildStrata(p)
	// Intern the EDB in sorted-predicate order (deterministic ids).
	preds := make([]string, 0, len(arity))
	for pred := range arity {
		if !v.idbPr[pred] {
			preds = append(preds, pred)
		}
	}
	sort.Strings(preds)
	var buf []uint32
	for _, pred := range preds {
		rel := edb.Lookup(pred)
		if rel == nil {
			continue
		}
		ir := dp.NewIRel(arity[pred])
		for _, t := range rel.Tuples() {
			buf, err = dp.InternFact(pred, t, buf[:0])
			if err != nil {
				return nil, err
			}
			ir.Add(buf)
		}
		v.rels[pred] = ir
	}
	if err := v.rebuildIDB(ctx); err != nil {
		return nil, err
	}
	return v, nil
}

// rebuildIDB recomputes every IDB relation and derivation count from
// the view's current EDB irels: fresh empty IDB relations, a
// single-writer semi-naive fixpoint through the delta plans, then one
// full-join pass per counting rule to establish counts. Callers hold
// v.mu (or own the view exclusively, as Materialize does).
func (v *View) rebuildIDB(ctx context.Context) error {
	for pred := range v.idbPr {
		v.rels[pred] = v.dp.NewIRel(v.arity[pred])
	}
	v.counts = map[string]map[string]int64{}
	if err := v.initFixpoint(ctx); err != nil {
		return err
	}
	return v.initCounts(ctx)
}

// initFixpoint mirrors the engine's semi-naive schedule (init rules at
// round 0 with the full join, then delta-restricted IDB occurrences)
// over the view's relations. Emission appends to the same relations
// being read; the round-start snapshots (RelView prefixes) freeze what
// each task sees, which is exactly the engine's frozen-snapshot
// semantics with in-place merge.
func (v *View) initFixpoint(ctx context.Context) error {
	delta := map[string]*eval.IRel{}
	var derived int64
	emit := func(pred string) func([]uint32) error {
		rel := v.rels[pred]
		return func(row []uint32) error {
			if !rel.Add(row) {
				return nil
			}
			derived++
			if v.opts.MaxTuples > 0 && derived > v.opts.MaxTuples {
				return fmt.Errorf("incr: %w (budget %d)", eval.ErrBudget, v.opts.MaxTuples)
			}
			delta[pred].Add(row)
			return nil
		}
	}
	newDelta := func() {
		for pred := range v.idbPr {
			delta[pred] = v.dp.NewIRel(v.arity[pred])
		}
	}
	snapshot := func() map[string]eval.RelView {
		views := make(map[string]eval.RelView, len(v.rels))
		for pred, rel := range v.rels {
			views[pred] = rel.View()
		}
		return views
	}

	newDelta()
	v.stats.InitRounds++
	views := snapshot()
	for ri, r := range v.prog.Rules {
		if !r.IsInit(v.idbPr) {
			continue
		}
		probes, err := v.runDelta(ctx, ri, -1, v.subViews(r, -1, nil, views), v.negView, emit(r.Head.Pred))
		v.stats.InitProbes += probes
		if err != nil {
			return err
		}
	}
	for {
		total := 0
		for _, d := range delta {
			total += d.Len()
		}
		if total == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		prevDelta := delta
		delta = map[string]*eval.IRel{}
		newDelta()
		v.stats.InitRounds++
		views = snapshot()
		for ri, r := range v.prog.Rules {
			for occ, a := range r.Pos {
				if !v.idbPr[a.Pred] {
					continue
				}
				pd := prevDelta[a.Pred]
				if pd == nil || pd.Len() == 0 {
					continue
				}
				probes, err := v.runDelta(ctx, ri, occ, v.subViews(r, occ, pd, views), v.negView, emit(r.Head.Pred))
				v.stats.InitProbes += probes
				if err != nil {
					return err
				}
			}
		}
	}
	v.stats.InitTuples += derived
	return nil
}

// initCounts establishes exact derivation counts for every
// counting-maintained predicate by enumerating all firings of its
// rules over the final relations.
func (v *View) initCounts(ctx context.Context) error {
	for _, st := range v.strata {
		if st.recursive {
			continue
		}
		pred := st.preds[0]
		cnts := map[string]int64{}
		v.counts[pred] = cnts
		for _, ri := range st.rules {
			r := v.prog.Rules[ri]
			probes, err := v.runDelta(ctx, ri, -1, v.subViews(r, -1, nil, nil), v.negView, func(row []uint32) error {
				cnts[rowKey(row)]++
				return nil
			})
			v.stats.InitProbes += probes
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// runDelta dispatches a delta pass under the view's join-order policy
// (Options.Policy); every delta call site goes through it so the
// policy applies uniformly to the initial fixpoint, counting, and DRed
// passes alike.
func (v *View) runDelta(ctx context.Context, ri, occ int, subs []eval.RelView, negs func(string) eval.RelView, emit func([]uint32) error) (int64, error) {
	return v.dp.RunDeltaPolicy(ctx, ri, occ, v.opts.Policy, subs, negs, emit)
}

// subViews assembles the per-subgoal views for one RunDelta call:
// subgoal occ reads the delta relation, every other subgoal reads
// views[pred] when views is non-nil (a frozen snapshot) or the current
// full relation otherwise.
func (v *View) subViews(r ast.Rule, occ int, delta *eval.IRel, views map[string]eval.RelView) []eval.RelView {
	subs := make([]eval.RelView, len(r.Pos))
	for j, a := range r.Pos {
		switch {
		case j == occ:
			subs[j] = delta.View()
		case views != nil:
			subs[j] = views[a.Pred]
		default:
			subs[j] = v.curView(a.Pred)
		}
	}
	return subs
}

// curView returns the current full view of a predicate (empty when the
// predicate has no relation yet).
func (v *View) curView(pred string) eval.RelView {
	return v.rels[pred].View() // nil receiver yields the empty view
}

// negView resolves negated subgoals against current state. Negation is
// EDB-only (enforced by Validate), and updates that touch a negated
// predicate never reach a delta pass (full-rebuild fallback), so
// current state equals pre-update state wherever this is called.
func (v *View) negView(pred string) eval.RelView { return v.curView(pred) }

// Program returns the materialized program.
func (v *View) Program() *ast.Program { return v.prog }

// Stats returns a snapshot of the view's cumulative counters.
func (v *View) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// Answers returns the query predicate's current tuples sorted by
// canonical key, repairing the view first if a previous Apply failed
// midway. The error is non-nil only when that repair itself fails.
func (v *View) Answers() ([]eval.Tuple, error) {
	return v.FactsOf(v.prog.Query)
}

// FactsOf returns any predicate's current tuples sorted by canonical
// key (EDB predicates reflect every ingested delta).
func (v *View) FactsOf(pred string) ([]eval.Tuple, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.repairLocked(context.Background()); err != nil {
		return nil, err
	}
	return v.externSorted(v.curView(pred)), nil
}

// Count returns the exact number of derivations of a ground fact, for
// predicates maintained by counting (non-recursive strata). ok is
// false for DRed-maintained, EDB, or unknown predicates.
func (v *View) Count(fact ast.Atom) (n int64, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.repairLocked(context.Background()); err != nil {
		return 0, false
	}
	cnts, ok := v.counts[fact.Pred]
	if !ok {
		return 0, false
	}
	row, err := v.dp.InternFact(fact.Pred, fact.Args, nil)
	if err != nil {
		return 0, false
	}
	return cnts[rowKey(row)], true
}

// DerivationCounts returns fact-string → derivation count for a
// counting-maintained predicate (nil otherwise). The rendering uses
// the same source syntax as ast.Atom.String, so two views over equal
// EDBs return deeply-equal maps.
func (v *View) DerivationCounts(pred string) map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.repairLocked(context.Background()); err != nil {
		return nil
	}
	cnts, ok := v.counts[pred]
	if !ok {
		return nil
	}
	rel := v.rels[pred]
	out := make(map[string]int64, len(cnts))
	if rel == nil {
		return out
	}
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		if c := cnts[rowKey(row)]; c > 0 {
			out[v.dp.Atom(pred, row).String()] = c
		}
	}
	return out
}

// Explain returns the derivation tree of a current IDB fact. The tree
// is recomputed canonically from the view's current EDB (and cached
// until the next successful Apply), so it is bit-identical to what a
// from-scratch evaluation of the same EDB would explain — including
// after any sequence of adds and retracts.
func (v *View) Explain(fact ast.Atom) (*eval.Derivation, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.repairLocked(context.Background()); err != nil {
		return nil, err
	}
	if v.prov == nil || v.provVersion != v.version {
		db := v.edbMirror()
		_, prov, _, err := eval.EvalProv(v.prog, db)
		if err != nil {
			return nil, err
		}
		v.provDB, v.prov, v.provVersion = db, prov, v.version
	}
	return v.prov.Tree(fact, v.idbPr, v.provDB)
}

// EDB returns a fresh public DB mirroring the view's current EDB.
func (v *View) EDB() *eval.DB {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.edbMirror()
}

// edbMirror snapshots the current EDB as a public DB with every
// relation in canonical (key-sorted) tuple order. Sorting matters for
// Explain: the derivation recorded for a fact is the first one found,
// which follows relation iteration order, so a canonical order makes
// the tree independent of the view's update history — the same tree a
// from-scratch evaluation of a key-sorted load of the same facts
// explains.
func (v *View) edbMirror() *eval.DB {
	db := eval.NewDB()
	for pred, rel := range v.rels {
		if v.idbPr[pred] {
			continue
		}
		r := db.Rel(pred, rel.Arity())
		tuples := make([]eval.Tuple, 0, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			tuples = append(tuples, v.dp.Tuple(rel.Row(i)))
		}
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key() < tuples[j].Key() })
		for _, t := range tuples {
			r.Add(t)
		}
	}
	return db
}

// externSorted converts a view's rows to public tuples sorted by
// canonical key.
func (v *View) externSorted(view eval.RelView) []eval.Tuple {
	out := make([]eval.Tuple, 0, view.Len())
	for i := 0; i < view.Len(); i++ {
		out = append(out, v.dp.Tuple(view.Row(i)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// rowKey packs an interned row into a string map key.
func rowKey(row []uint32) string {
	b := make([]byte, len(row)*4)
	for i, x := range row {
		binary.LittleEndian.PutUint32(b[i*4:], x)
	}
	return string(b)
}
