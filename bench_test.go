package sqo

// Benchmarks, one per experiment of DESIGN.md's per-experiment index.
// `go test -bench=. -benchmem` regenerates the performance side of
// EXPERIMENTS.md; the cmd/sqobench harness prints the full tables.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/tcm"
	"repro/internal/workload"
)

const goodPathSrc = `
	path(X, Y) :- step(X, Y).
	path(X, Y) :- step(X, Z), path(Z, Y).
	goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
	?- goodPath.
`

const figure1Src = `
	p(X, Y) :- a(X, Y).
	p(X, Y) :- b(X, Y).
	p(X, Y) :- a(X, Z), p(Z, Y).
	p(X, Y) :- b(X, Z), p(Z, Y).
	?- p.
`

// BenchmarkF1QueryTree measures construction of the Figure 1 query
// forest (optimization itself, no evaluation).
func BenchmarkF1QueryTree(b *testing.B) {
	p := MustParseProgram(figure1Src)
	ics := MustParseICs(`:- a(X, Y), b(Y, Z).`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Optimize(p, ics)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Satisfiable {
			b.Fatal("unexpected unsatisfiable")
		}
	}
}

// benchEval factors the evaluate-original-vs-rewritten pattern.
func benchEval(b *testing.B, prog *Program, db *DB) {
	benchEvalWith(b, prog, db, DefaultEvalOptions())
}

// engineOverride applies the SQO_EVAL_ENGINE environment variable
// (legacy | compiled) so `make bench-compare` can run the same
// benchmark names on both engines and feed the outputs to benchstat.
func engineOverride(opts EvalOptions) EvalOptions {
	switch os.Getenv("SQO_EVAL_ENGINE") {
	case "legacy":
		opts.CompilePlans = false
	case "compiled":
		opts.CompilePlans = true
	}
	return opts
}

// evalOptsWorkers is DefaultEvalOptions with a fixed worker count.
func evalOptsWorkers(w int) EvalOptions {
	o := DefaultEvalOptions()
	o.Workers = w
	return o
}

func benchEvalWith(b *testing.B, prog *Program, db *DB, opts EvalOptions) {
	opts = engineOverride(opts)
	b.ReportAllocs()
	var probes int64
	for i := 0; i < b.N; i++ {
		_, stats, err := EvalWith(prog, db, opts)
		if err != nil {
			b.Fatal(err)
		}
		probes = stats.JoinProbes
	}
	b.ReportMetric(float64(probes), "probes")
}

// BenchmarkE1GoodPath evaluates the Example 3.1 rule with and without
// the Y > X residue.
func BenchmarkE1GoodPath(b *testing.B) {
	p := MustParseProgram(`
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	res, err := Optimize(p, ics)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDBFrom(workload.StarPaths(40, 40))
	b.Run("original", func(b *testing.B) { benchEval(b, p, db) })
	b.Run("rewritten", func(b *testing.B) { benchEval(b, res.Program, db) })
	b.Run("original-seq", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(1))
	})
	b.Run("original-par4", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(4))
	})
}

// BenchmarkE2Threshold evaluates the Section 3 threshold example.
func BenchmarkE2Threshold(b *testing.B) {
	p := MustParseProgram(goodPathSrc)
	ics := MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	res, err := Optimize(p, ics)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDBFrom(workload.GoodPath(200, 100, 40))
	b.Run("original", func(b *testing.B) { benchEval(b, p, db) })
	b.Run("rewritten", func(b *testing.B) { benchEval(b, res.Program, db) })
	b.Run("original-seq", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(1))
	})
	b.Run("original-par4", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(4))
	})
}

// BenchmarkE3ABPaths evaluates the Figure 1 two-flavour closure.
func BenchmarkE3ABPaths(b *testing.B) {
	p := MustParseProgram(figure1Src)
	ics := MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := Optimize(p, ics)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDBFrom(workload.ABComb(8, 14, 14))
	b.Run("original", func(b *testing.B) { benchEval(b, p, db) })
	b.Run("rewritten", func(b *testing.B) { benchEval(b, res.Program, db) })
	b.Run("original-seq", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(1))
	})
	b.Run("original-par4", func(b *testing.B) {
		benchEvalWith(b, p, db, evalOptsWorkers(4))
	})
}

// BenchmarkE4Construction measures query-tree construction cost as the
// program family grows.
func BenchmarkE4Construction(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		src := ""
		for i := 0; i < k; i++ {
			src += fmt.Sprintf("p(X, Y) :- e%d(X, Y).\n", i)
			src += fmt.Sprintf("p(X, Y) :- e%d(X, Z), p(Z, Y).\n", i)
		}
		src += "?- p.\n"
		icsSrc := ""
		for i := 0; i+1 < k; i++ {
			icsSrc += fmt.Sprintf(":- e%d(X, Y), e%d(Y, Z).\n", i+1, i)
		}
		p := MustParseProgram(src)
		ics := MustParseICs(icsSrc)
		b.Run(fmt.Sprintf("flavours=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(p, ics); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Emptiness measures the NP emptiness decision on join
// chains (Theorem 5.2(1)).
func BenchmarkE5Emptiness(b *testing.B) {
	for _, l := range []int{4, 8} {
		body := ""
		for i := 0; i < l; i++ {
			body += fmt.Sprintf("r%d(X%d, X%d), ", i, i, i+1)
		}
		src := fmt.Sprintf("q(X0, X%d) :- %s.\n?- q.\n", l, body[:len(body)-2])
		p := MustParseProgram(src)
		ics := MustParseICs(fmt.Sprintf(":- r%d(X, Y), r%d(Y, Z).", l/2-1, l/2))
		b.Run(fmt.Sprintf("chain=%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				empty, decided, err := Empty(p, ics, EmptinessOptions{})
				if err != nil || !decided || !empty {
					b.Fatalf("empty=%v decided=%v err=%v", empty, decided, err)
				}
			}
		})
	}
}

// BenchmarkE6Containment measures the Proposition 5.1 reduction round
// trip on the recursive instance.
func BenchmarkE6Containment(b *testing.B) {
	p := MustParseProgram(`
		q(X, Y) :- a(X, Y).
		q(X, Y) :- a(X, Z), q(Z, Y).
		?- q.
	`)
	ics := MustParseICs(`:- a(X, Y), a(Y, Z).`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rp, ucq, err := SatisfiabilityAsNonContainment(p, ics)
		if err != nil {
			b.Fatal(err)
		}
		contained, err := ProgramContainedInUCQ(rp, ucq)
		if err != nil {
			b.Fatal(err)
		}
		if contained {
			b.Fatal("single edges satisfy the constraint; must not be contained")
		}
	}
}

// BenchmarkE7TwoCounter measures the Theorem 5.4 pipeline: encode a
// machine, run it, materialize the trace, and check consistency.
func BenchmarkE7TwoCounter(b *testing.B) {
	m := tcm.CountdownMachine(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, ics, err := EncodeTwoCounter(m)
		if err != nil {
			b.Fatal(err)
		}
		facts, halted := TwoCounterTraceDB(m, 100)
		if !halted {
			b.Fatal("machine should halt")
		}
		tuples, _, err := Query(prog, NewDBFrom(facts))
		if err != nil {
			b.Fatal(err)
		}
		if len(tuples) != 1 {
			b.Fatal("halt not derived")
		}
		_ = ics
	}
}

// BenchmarkA1LabelsVsAdorn compares the full pipeline against the
// core-only algorithm on optimization time (the ablation's evaluation
// side lives in cmd/sqobench).
func BenchmarkA1LabelsVsAdorn(b *testing.B) {
	p := MustParseProgram(goodPathSrc)
	ics := MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OptimizeWith(p, ics, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("core-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OptimizeWith(p, ics, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA2BaselineVsQtree compares [CGM88] per-rule optimization
// against the query-tree algorithm on optimization time.
func BenchmarkA2BaselineVsQtree(b *testing.B) {
	p := MustParseProgram(figure1Src)
	ics := MustParseICs(`:- a(X, Y), b(Y, Z).`)
	b.Run("cgm88", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BaselineOptimize(p, ics)
		}
	})
	b.Run("qtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Optimize(p, ics); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP1ParallelTransClosure sweeps the worker pool size on a
// large transitive closure. On a multi-core host the per-round delta
// partitions spread across workers; on a single core all counts
// degenerate to the same work (results stay identical by construction).
func BenchmarkP1ParallelTransClosure(b *testing.B) {
	p := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDBFrom(workload.Chain(1, 250))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchEvalWith(b, p, db, evalOptsWorkers(w))
		})
	}
}

// BenchmarkP1ParallelGoodPath sweeps the worker pool size on the
// Section 3 goodpath workload (three rules, so rule-level parallelism
// composes with delta partitioning).
func BenchmarkP1ParallelGoodPath(b *testing.B) {
	p := MustParseProgram(goodPathSrc)
	db := NewDBFrom(workload.GoodPath(600, 100, 150))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchEvalWith(b, p, db, evalOptsWorkers(w))
		})
	}
}

// BenchmarkA3SeminaiveVsNaive compares the evaluation engines on a
// plain transitive closure.
func BenchmarkA3SeminaiveVsNaive(b *testing.B) {
	p := MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDBFrom(workload.Chain(1, 60))
	for _, cfg := range []struct {
		name string
		opts EvalOptions
	}{
		{"seminaive-indexed", EvalOptions{Seminaive: true, UseIndex: true, CompilePlans: true}},
		{"seminaive-scan", EvalOptions{Seminaive: true, UseIndex: false, CompilePlans: true}},
		{"naive-indexed", EvalOptions{Seminaive: false, UseIndex: true, CompilePlans: true}},
		{"naive-scan", EvalOptions{Seminaive: false, UseIndex: false, CompilePlans: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := EvalWith(p, db, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
