package incr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

// --- helpers ---------------------------------------------------------------

// factSet is the reference EDB: canonical key → atom. Batches apply
// with delete-then-insert semantics, mirroring View.Apply.
type factSet map[string]ast.Atom

func (fs factSet) apply(adds, dels []ast.Atom) {
	for _, a := range dels {
		delete(fs, a.Key())
	}
	for _, a := range adds {
		fs[a.Key()] = a
	}
}

func (fs factSet) db() *eval.DB {
	db := eval.NewDB()
	keys := make([]string, 0, len(fs))
	for k := range fs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		db.AddFact(fs[k])
	}
	return db
}

func renderTuples(pred string, ts []eval.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = ast.NewAtom(pred, t...).String()
	}
	sort.Strings(out)
	return out
}

func viewFacts(t *testing.T, v *View, pred string) []string {
	t.Helper()
	ts, err := v.FactsOf(pred)
	if err != nil {
		t.Fatalf("FactsOf(%s): %v", pred, err)
	}
	return renderTuples(pred, ts)
}

// requireConsistent checks the view against from-scratch evaluation of
// the reference EDB under both engines × workers {1,4}: every IDB
// relation must be identical.
func requireConsistent(t *testing.T, label string, v *View, p *ast.Program, fs factSet) {
	t.Helper()
	db := fs.db()
	for _, compiled := range []bool{false, true} {
		for _, w := range []int{1, 4} {
			opts := eval.Options{Seminaive: true, UseIndex: true, CompilePlans: compiled, Workers: w}
			idb, _, err := eval.EvalCtx(context.Background(), p, db, opts)
			if err != nil {
				t.Fatalf("%s: eval(compiled=%v workers=%d): %v", label, compiled, w, err)
			}
			for pred := range p.IDB() {
				want := idb.SortedFacts(pred)
				got := viewFacts(t, v, pred)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %s diverged (compiled=%v workers=%d):\nview %v\nfull %v",
						label, pred, compiled, w, got, want)
				}
			}
		}
	}
}

// requireFreshEqual checks the view against a fresh Materialize over
// the same EDB: derivation counts of every counting-maintained
// predicate and the provenance of every query answer must match.
func requireFreshEqual(t *testing.T, label string, v *View, p *ast.Program, fs factSet) {
	t.Helper()
	fresh, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatalf("%s: fresh Materialize: %v", label, err)
	}
	for pred := range p.IDB() {
		got, want := v.DerivationCounts(pred), fresh.DerivationCounts(pred)
		if (got == nil) != (want == nil) {
			t.Fatalf("%s: %s counting-maintained disagreement: view=%v fresh=%v", label, pred, got != nil, want != nil)
		}
		if got != nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %s derivation counts diverged:\nview  %v\nfresh %v", label, pred, got, want)
		}
	}
	answers, err := fresh.Answers()
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range answers {
		if i >= 3 {
			break // provenance recomputation is the expensive part
		}
		fact := ast.NewAtom(p.Query, tup...)
		dv, err := v.Explain(fact)
		if err != nil {
			t.Fatalf("%s: view Explain(%s): %v", label, fact, err)
		}
		df, err := fresh.Explain(fact)
		if err != nil {
			t.Fatalf("%s: fresh Explain(%s): %v", label, fact, err)
		}
		if dv.String() != df.String() {
			t.Fatalf("%s: provenance of %s diverged:\nview  %s\nfresh %s", label, fact, dv, df)
		}
	}
}

func answersOf(t *testing.T, v *View) []string {
	t.Helper()
	ts, err := v.Answers()
	if err != nil {
		t.Fatalf("Answers: %v", err)
	}
	return renderTuples(v.Program().Query, ts)
}

// equalSets compares two string slices as sets-with-order, treating
// nil and empty as equal (diffStrings returns nil when nothing
// changed; renderTuples returns empty).
func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func diffStrings(old, new []string) (added, removed []string) {
	oldSet := map[string]bool{}
	for _, s := range old {
		oldSet[s] = true
	}
	newSet := map[string]bool{}
	for _, s := range new {
		newSet[s] = true
		if !oldSet[s] {
			added = append(added, s)
		}
	}
	for _, s := range old {
		if !newSet[s] {
			removed = append(removed, s)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// --- directed examples -----------------------------------------------------

// TestIncrCountingBasic exercises count maintenance on a predicate
// with overlapping derivations (two rules, shared support): deleting
// one support must not retract a tuple that keeps another derivation.
func TestIncrCountingBasic(t *testing.T) {
	p := parser.MustParseProgram(`
		can(X) :- badge(X).
		can(X) :- keycode(X).
		enter(X) :- can(X), door(X).
		?- enter.`)
	fs := factSet{}
	fs.apply(parser.MustParseFacts(`badge(1). keycode(1). badge(2). door(1). door(2).`), nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireConsistent(t, "init", v, p, fs)
	if n, ok := v.Count(parser.MustParseFacts(`can(1).`)[0]); !ok || n != 2 {
		t.Fatalf("can(1) count = %d, %v; want 2, true", n, ok)
	}

	// Losing the badge keeps can(1) alive through the keycode.
	dels := parser.MustParseFacts(`badge(1).`)
	ch, err := v.Apply(nil, dels)
	if err != nil {
		t.Fatal(err)
	}
	fs.apply(nil, dels)
	requireConsistent(t, "del badge(1)", v, p, fs)
	if len(ch.Added) != 0 || len(ch.Removed) != 0 {
		t.Fatalf("unexpected answer changes: %+v", ch)
	}
	if n, _ := v.Count(parser.MustParseFacts(`can(1).`)[0]); n != 1 {
		t.Fatalf("can(1) count = %d; want 1", n)
	}

	// Losing the keycode too retracts can(1) and the answer enter(1).
	dels = parser.MustParseFacts(`keycode(1).`)
	ch, err = v.Apply(nil, dels)
	if err != nil {
		t.Fatal(err)
	}
	fs.apply(nil, dels)
	requireConsistent(t, "del keycode(1)", v, p, fs)
	if len(ch.Removed) != 1 || ast.NewAtom("enter", ch.Removed[0]...).String() != "enter(1)" {
		t.Fatalf("want enter(1) removed, got %+v", ch)
	}
	requireFreshEqual(t, "final", v, p, fs)
}

// TestIncrDRedKillAndRederive is the acceptance scenario spelled out:
// retract a fact that kills a recursive tuple's only used derivation
// while an alternative path keeps it alive (rederive), then retract
// the alternative (true deletion), then re-add (re-derivation).
func TestIncrDRedKillAndRederive(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path.`)
	fs := factSet{}
	fs.apply(parser.MustParseFacts(`edge(1, 2). edge(2, 3). edge(1, 4). edge(4, 3). edge(3, 5).`), nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireConsistent(t, "init", v, p, fs)

	step := func(label, addSrc, delSrc string, wantAdded, wantRemoved []string) {
		t.Helper()
		adds, dels := parser.MustParseFacts(addSrc), parser.MustParseFacts(delSrc)
		before := answersOf(t, v)
		ch, err := v.Apply(adds, dels)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		fs.apply(adds, dels)
		requireConsistent(t, label, v, p, fs)
		after := answersOf(t, v)
		added, removed := diffStrings(before, after)
		if !equalSets(added, renderTuples("path", ch.Added)) ||
			!equalSets(removed, renderTuples("path", ch.Removed)) {
			t.Fatalf("%s: Changes disagree with actual diff:\nchanges +%v -%v\ndiff    +%v -%v",
				label, renderTuples("path", ch.Added), renderTuples("path", ch.Removed), added, removed)
		}
		if !equalSets(added, wantAdded) {
			t.Fatalf("%s: added %v, want %v", label, added, wantAdded)
		}
		if !equalSets(removed, wantRemoved) {
			t.Fatalf("%s: removed %v, want %v", label, removed, wantRemoved)
		}
	}

	// path(1,3), path(1,5) survive via 1→4→3: overdeleted, rederived.
	step("kill-and-rederive", ``, `edge(1, 2).`, []string{}, []string{"path(1, 2)"})
	// Now the alternative dies too: the whole 1→… cone goes.
	step("true-delete", ``, `edge(1, 4).`, []string{}, []string{"path(1, 3)", "path(1, 4)", "path(1, 5)"})
	// Re-adding re-derives the recursive tuples.
	step("re-derive", `edge(1, 2).`, ``, []string{"path(1, 2)", "path(1, 3)", "path(1, 5)"}, []string{})
	// Delete and re-add the same fact in one batch: net no-op.
	step("delete-then-insert", `edge(2, 3).`, `edge(2, 3).`, []string{}, []string{})
	requireFreshEqual(t, "final", v, p, fs)
}

// TestIncrNegationFallback: updates touching a negated predicate take
// the full-rebuild path and still converge to the right answers.
func TestIncrNegationFallback(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X) :- node(X), !blocked(X).
		?- reach.`)
	fs := factSet{}
	fs.apply(parser.MustParseFacts(`node(1). node(2). blocked(2).`), nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	adds := parser.MustParseFacts(`blocked(1).`)
	if _, err := v.Apply(adds, nil); err != nil {
		t.Fatal(err)
	}
	fs.apply(adds, nil)
	requireConsistent(t, "block 1", v, p, fs)
	dels := parser.MustParseFacts(`blocked(2).`)
	if _, err := v.Apply(nil, dels); err != nil {
		t.Fatal(err)
	}
	fs.apply(nil, dels)
	requireConsistent(t, "unblock 2", v, p, fs)
	if st := v.Stats(); st.FullRebuilds != 2 {
		t.Fatalf("FullRebuilds = %d, want 2", st.FullRebuilds)
	}
}

// TestIncrApplyCancellationRepairs: a cancelled Apply reports the
// context error and leaves the view broken; the next read repairs it
// to exactly the post-update state.
func TestIncrApplyCancellationRepairs(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path.`)
	fs := factSet{}
	var facts []ast.Atom
	for i := 0; i < 40; i++ {
		facts = append(facts, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	fs.apply(facts, nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	adds := parser.MustParseFacts(`edge(100, 0).`)
	if _, err := v.ApplyCtx(ctx, adds, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx error = %v, want context.Canceled", err)
	}
	// The EDB delta was ingested; the repair must fold it in.
	fs.apply(adds, nil)
	requireConsistent(t, "after repair", v, p, fs)
	if st := v.Stats(); st.FullRebuilds == 0 {
		t.Fatal("expected a repairing full rebuild")
	}
}

// TestIncrBudget: the materialization budget propagates eval.ErrBudget.
func TestIncrBudget(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path.`)
	fs := factSet{}
	var facts []ast.Atom
	for i := 0; i < 20; i++ {
		facts = append(facts, ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	fs.apply(facts, nil)
	if _, err := Materialize(p, fs.db(), Options{MaxTuples: 5}); !errors.Is(err, eval.ErrBudget) {
		t.Fatalf("Materialize error = %v, want eval.ErrBudget", err)
	}
}

// TestIncrRejectsIDBUpdate: derived predicates cannot be mutated.
func TestIncrRejectsIDBUpdate(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		?- path.`)
	v, err := Materialize(p, eval.NewDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(parser.MustParseFacts(`path(1, 2).`), nil); err == nil {
		t.Fatal("want error updating a derived predicate")
	}
}

// --- randomized differential -----------------------------------------------

// incrProgram is one randomized-differential subject: a program plus
// the EDB predicates (with arities) updates draw from.
type incrProgram struct {
	name string
	src  string
	edb  map[string]int
	dom  int // constants range over [0, dom)
}

var incrPrograms = []incrProgram{
	{
		name: "transitive-closure",
		src: `path(X, Y) :- edge(X, Y).
		      path(X, Y) :- edge(X, Z), path(Z, Y).
		      ?- path.`,
		edb: map[string]int{"edge": 2},
		dom: 6,
	},
	{
		name: "layered-counting",
		src: `link(X, Y) :- edge(X, Y).
		      link(X, Y) :- edge(Y, X).
		      tri(X, Z) :- link(X, Y), link(Y, Z), X != Z.
		      out(X) :- tri(X, Y), good(Y).
		      ?- out.`,
		edb: map[string]int{"edge": 2, "good": 1},
		dom: 5,
	},
	{
		name: "mutual-recursion",
		src: `even(X) :- zero(X).
		      even(Y) :- odd(X), succ(X, Y).
		      odd(Y) :- even(X), succ(X, Y).
		      ?- even.`,
		edb: map[string]int{"zero": 1, "succ": 2},
		dom: 6,
	},
	{
		name: "guarded-recursion",
		src: `reach(X) :- start(X).
		      reach(Y) :- reach(X), edge(X, Y), Y < 4.
		      big(X) :- reach(X), bonus(X).
		      ?- big.`,
		edb: map[string]int{"start": 1, "edge": 2, "bonus": 1},
		dom: 6,
	},
}

func (pc incrProgram) universe() []ast.Atom {
	var out []ast.Atom
	preds := make([]string, 0, len(pc.edb))
	for pred := range pc.edb {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		switch pc.edb[pred] {
		case 1:
			for i := 0; i < pc.dom; i++ {
				out = append(out, ast.NewAtom(pred, ast.N(float64(i))))
			}
		case 2:
			for i := 0; i < pc.dom; i++ {
				for j := 0; j < pc.dom; j++ {
					out = append(out, ast.NewAtom(pred, ast.N(float64(i)), ast.N(float64(j))))
				}
			}
		}
	}
	return out
}

// TestIncrRandomizedDifferential is the main correctness gate (also
// run under -race by `make incr-smoke`): randomized add/retract
// sequences over several program shapes, checking after every batch
// that the view matches from-scratch evaluation under both engines ×
// workers {1,4}, that reported Changes equal the actual answer diff,
// and (periodically) that derivation counts and provenance match a
// fresh Materialize.
func TestIncrRandomizedDifferential(t *testing.T) {
	for _, pc := range incrPrograms {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			p := parser.MustParseProgram(pc.src)
			universe := pc.universe()
			for trial := 0; trial < 4; trial++ {
				rng := rand.New(rand.NewSource(int64(1 + trial)))
				fs := factSet{}
				var seed []ast.Atom
				for _, a := range universe {
					if rng.Intn(3) == 0 {
						seed = append(seed, a)
					}
				}
				fs.apply(seed, nil)
				v, err := Materialize(p, fs.db(), Options{})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				requireConsistent(t, fmt.Sprintf("trial %d init", trial), v, p, fs)
				for step := 0; step < 8; step++ {
					label := fmt.Sprintf("trial %d step %d", trial, step)
					var adds, dels []ast.Atom
					for n := rng.Intn(4); n > 0; n-- {
						adds = append(adds, universe[rng.Intn(len(universe))])
					}
					for n := rng.Intn(4); n > 0; n-- {
						dels = append(dels, universe[rng.Intn(len(universe))])
					}
					if rng.Intn(3) == 0 && len(adds) > 0 {
						dels = append(dels, adds[0]) // delete-then-insert overlap
					}
					before := answersOf(t, v)
					ch, err := v.Apply(adds, dels)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					fs.apply(adds, dels)
					requireConsistent(t, label, v, p, fs)
					after := answersOf(t, v)
					wantAdded, wantRemoved := diffStrings(before, after)
					if !equalSets(renderTuples(p.Query, ch.Added), wantAdded) {
						t.Fatalf("%s: Changes.Added %v, want %v", label, renderTuples(p.Query, ch.Added), wantAdded)
					}
					if !equalSets(renderTuples(p.Query, ch.Removed), wantRemoved) {
						t.Fatalf("%s: Changes.Removed %v, want %v", label, renderTuples(p.Query, ch.Removed), wantRemoved)
					}
					if step%3 == 2 {
						requireFreshEqual(t, label, v, p, fs)
					}
				}
				requireFreshEqual(t, fmt.Sprintf("trial %d final", trial), v, p, fs)
			}
		})
	}
}

// TestIncrStatsAccounting sanity-checks the cumulative counters.
func TestIncrStatsAccounting(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path.`)
	fs := factSet{}
	fs.apply(parser.MustParseFacts(`edge(1, 2). edge(2, 3).`), nil)
	v, err := Materialize(p, fs.db(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.InitRounds == 0 || st.InitTuples != 3 || st.InitProbes == 0 {
		t.Fatalf("init stats look wrong: %+v", st)
	}
	if _, err := v.Apply(parser.MustParseFacts(`edge(3, 4).`), nil); err != nil {
		t.Fatal(err)
	}
	st = v.Stats()
	if st.Applies != 1 || st.DeltaProbes == 0 || st.TuplesAdded != 3 {
		t.Fatalf("apply stats look wrong: %+v", st)
	}
}
