package server

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// doRaw sends a non-JSON body (datalog source) and decodes the JSON
// response into out.
func doRaw(t *testing.T, method, url, body string, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s %s → %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

func TestServerDatasetPostConflictAndDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// POST creates.
	var info DatasetInfo
	if code, raw := doRaw(t, http.MethodPost, ts.URL+"/v1/datasets/d", "e(1, 2).", &info); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, raw)
	}
	if info.Facts != 1 || info.LastModified.IsZero() {
		t.Fatalf("create info = %+v", info)
	}

	// Duplicate POST answers 409, not 500.
	var eb errorBody
	code, raw := doRaw(t, http.MethodPost, ts.URL+"/v1/datasets/d", "e(3, 4).", nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate POST: %d %s, want 409", code, raw)
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "dataset_exists" {
		t.Fatalf("duplicate POST body = %s (err %v)", raw, err)
	}
	// ... and did not clobber the dataset.
	var infos []DatasetInfo
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &infos)
	if len(infos) != 1 || infos[0].Facts != 1 || infos[0].Predicates["e"] != 1 {
		t.Fatalf("dataset list after 409 = %+v", infos)
	}

	// DELETE unregisters; a second DELETE 404s.
	if code, raw := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d", "", nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, raw)
	}
	if code, _ := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d", "", nil); code != http.StatusNotFound {
		t.Fatalf("second delete: %d, want 404", code)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &infos)
	if len(infos) != 0 {
		t.Fatalf("dataset list after delete = %+v", infos)
	}
}

func TestServerFactMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	query := func() []string {
		var r queryResponse
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
			Program: serverTestProgram, Dataset: "d",
		}, &r)
		if code != http.StatusOK {
			t.Fatalf("query: %d %s", code, raw)
		}
		return r.Answers
	}
	base := query()

	// Insert a new start point: more answers, counters move.
	var up updateResponse
	if code, raw := doRaw(t, http.MethodPost, ts.URL+"/v1/datasets/d/facts", "startPoint(3).", &up); code != http.StatusOK {
		t.Fatalf("facts add: %d %s", code, raw)
	}
	if up.FactsAdded != 1 || up.FactsRemoved != 0 || up.Dataset.Facts != 10 {
		t.Fatalf("add response = %+v", up)
	}
	if got := query(); len(got) <= len(base) {
		t.Fatalf("insert had no effect: %v vs %v", got, base)
	}

	// Retract it again (plus a fact that never existed — a no-op).
	if code, raw := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d/facts", "startPoint(3). startPoint(99).", &up); code != http.StatusOK {
		t.Fatalf("facts delete: %d %s", code, raw)
	}
	if up.FactsAdded != 0 || up.FactsRemoved != 1 || up.Dataset.Facts != 9 {
		t.Fatalf("delete response = %+v", up)
	}
	if got := query(); !reflect.DeepEqual(got, base) {
		t.Fatalf("retract did not restore answers: %v vs %v", got, base)
	}

	// Mutating an unknown dataset 404s.
	if code, _ := doRaw(t, http.MethodPost, ts.URL+"/v1/datasets/nope/facts", "e(1, 2).", nil); code != http.StatusNotFound {
		t.Fatalf("unknown dataset mutation: %d, want 404", code)
	}
}

const viewTestProgram = `
	path(X, Y) :- step(X, Y).
	path(X, Y) :- step(X, Z), path(Z, Y).
	?- path.
`

func TestServerMaterializedViewSurvivesUpdates(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", "step(1, 2). step(2, 3).")

	// Create a view (recursive program → DRed maintenance).
	noOpt := false
	var vr viewResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/d/views/paths", viewRequest{
		Program: viewTestProgram, Optimize: &noOpt,
	}, &vr)
	if code != http.StatusOK {
		t.Fatalf("view create: %d %s", code, raw)
	}
	want := []string{"(1, 2)", "(1, 3)", "(2, 3)"}
	if !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("initial answers = %v, want %v", vr.Answers, want)
	}
	if vr.Stats.InitTuples == 0 {
		t.Fatalf("init stats not populated: %+v", vr.Stats)
	}

	// Duplicate view name answers 409.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/d/views/paths", viewRequest{
		Program: viewTestProgram, Optimize: &noOpt,
	}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate view: %d, want 409", code)
	}

	// Insert a fact: the view's answers extend incrementally and the
	// update response reports the per-view delta.
	var up updateResponse
	if code, raw := doRaw(t, http.MethodPost, ts.URL+"/v1/datasets/d/facts", "step(3, 4).", &up); code != http.StatusOK {
		t.Fatalf("facts add: %d %s", code, raw)
	}
	if len(up.Views) != 1 || up.Views[0].Name != "paths" || up.Views[0].Error != "" {
		t.Fatalf("update views = %+v", up.Views)
	}
	if up.Views[0].AnswersAdded != 3 || up.Views[0].AnswersRemoved != 0 {
		t.Fatalf("view delta = %+v, want 3 added", up.Views[0])
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/paths", nil, &vr); code != http.StatusOK {
		t.Fatalf("view get: %d %s", code, raw)
	}
	want = []string{"(1, 2)", "(1, 3)", "(1, 4)", "(2, 3)", "(2, 4)", "(3, 4)"}
	if !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("post-insert answers = %v, want %v", vr.Answers, want)
	}
	if vr.Stats.Applies != 1 || vr.Stats.FullRebuilds != 0 {
		t.Fatalf("maintenance was not incremental: %+v", vr.Stats)
	}

	// Retract the middle edge: downstream reachability collapses.
	if code, raw := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d/facts", "step(2, 3).", &up); code != http.StatusOK {
		t.Fatalf("facts delete: %d %s", code, raw)
	}
	if up.Views[0].AnswersRemoved != 4 {
		t.Fatalf("view delta = %+v, want 4 removed", up.Views[0])
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/paths", nil, &vr)
	want = []string{"(1, 2)", "(3, 4)"}
	if !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("post-retract answers = %v, want %v", vr.Answers, want)
	}

	// The view agrees with a from-scratch query on the mutated dataset.
	var qr queryResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: viewTestProgram, Dataset: "d", Optimize: &noOpt,
	}, &qr)
	if !reflect.DeepEqual(qr.Answers, vr.Answers) {
		t.Fatalf("view and query diverge: %v vs %v", vr.Answers, qr.Answers)
	}

	// PUT-replacing the dataset is diffed through the view too.
	var pr updateResponse
	if code, raw := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets/d", "step(7, 8).", &pr); code != http.StatusOK {
		t.Fatalf("put replace: %d %s", code, raw)
	}
	if pr.FactsAdded != 1 || pr.FactsRemoved != 2 || len(pr.Views) != 1 {
		t.Fatalf("replace response = %+v", pr)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/paths", nil, &vr)
	if want = []string{"(7, 8)"}; !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("post-replace answers = %v, want %v", vr.Answers, want)
	}

	// Listing shows the view and mutation metadata.
	var infos []DatasetInfo
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &infos)
	if len(infos) != 1 || !reflect.DeepEqual(infos[0].Views, []string{"paths"}) {
		t.Fatalf("dataset list = %+v", infos)
	}
	if infos[0].LastModified.IsZero() || time.Since(infos[0].LastModified) > time.Minute {
		t.Fatalf("last_modified not maintained: %v", infos[0].LastModified)
	}
	if g := s.Metrics().Views.Load(); g != 1 {
		t.Fatalf("views gauge = %d, want 1", g)
	}

	// Drop the view; it is gone and the gauge returns to zero.
	if code, _ := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d/views/paths", "", nil); code != http.StatusOK {
		t.Fatal("view delete failed")
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/paths", nil, nil); code != http.StatusNotFound {
		t.Fatal("deleted view still answers")
	}
	if g := s.Metrics().Views.Load(); g != 0 {
		t.Fatalf("views gauge = %d, want 0", g)
	}
}

func TestServerViewOptimizedAgainstICs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	// An optimized view goes through the same rewrite cache as queries.
	var vr viewResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/d/views/good", viewRequest{
		Program: serverTestProgram, ICs: serverTestICs,
	}, &vr)
	if code != http.StatusOK {
		t.Fatalf("view create: %d %s", code, raw)
	}
	if !vr.Optimized {
		t.Fatalf("view not optimized: %+v", vr)
	}
	want := []string{"(1, 4)", "(1, 5)", "(2, 4)", "(2, 5)"}
	if !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("answers = %v, want %v", vr.Answers, want)
	}

	// The rewritten program stays correct under mutation.
	var up updateResponse
	if code, raw := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/d/facts", "endPoint(5).", &up); code != http.StatusOK {
		t.Fatalf("facts delete: %d %s", code, raw)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/good", nil, &vr)
	want = []string{"(1, 4)", "(2, 4)"}
	if !reflect.DeepEqual(vr.Answers, want) {
		t.Fatalf("post-retract answers = %v, want %v", vr.Answers, want)
	}
}

func TestServerQueryRoundDeltas(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", "step(1, 2). step(2, 3). step(3, 4).")

	// Opt-in: per-round delta sizes appear, sum to tuples_derived.
	var r queryResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: viewTestProgram, Dataset: "d", IncludeRoundDeltas: true,
	}, &r)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if len(r.RoundDeltas) != r.Stats.Rounds {
		t.Fatalf("round_deltas has %d rounds, stats say %d", len(r.RoundDeltas), r.Stats.Rounds)
	}
	var sum int64
	for _, round := range r.RoundDeltas {
		for _, n := range round {
			sum += n
		}
	}
	if sum != r.Stats.TuplesDerived {
		t.Fatalf("round deltas sum to %d, tuples_derived = %d", sum, r.Stats.TuplesDerived)
	}

	// Default: absent from the response body.
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: viewTestProgram, Dataset: "d",
	}, &r)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if strings.Contains(string(raw), "round_deltas") {
		t.Fatalf("round_deltas present without opt-in:\n%s", raw)
	}
}
