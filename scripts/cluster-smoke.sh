#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end smoke test of sqod cluster mode.
#
# Boots two worker sqods and one coordinator fronting them, registers
# datasets through the coordinator (rendezvous placement must spread
# them across both workers), runs a scattered multi-dataset query, then
# SIGKILLs one worker mid-run and asserts the degraded contract: the
# scatter still answers HTTP 200 with degraded=true, the failed peer
# and its datasets are named explicitly, and every answer from the
# surviving worker is still present. `make cluster-smoke` and the CI
# cluster-smoke job both run exactly this script.
set -euo pipefail

W1_ADDR="${SQOD_W1_ADDR:-127.0.0.1:18361}"
W2_ADDR="${SQOD_W2_ADDR:-127.0.0.1:18362}"
CO_ADDR="${SQOD_CO_ADDR:-127.0.0.1:18360}"
W1="http://$W1_ADDR"
W2="http://$W2_ADDR"
CO="http://$CO_ADDR"
WORK="$(mktemp -d)"
trap 'kill "$W1_PID" "$W2_PID" "$CO_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	for f in w1 w2 co; do
		[ -f "$WORK/$f.log" ] && sed "s/^/  $f: /" "$WORK/$f.log" >&2
	done
	exit 1
}

wait_http() { # url what pid
	for i in $(seq 1 100); do
		if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
		kill -0 "$3" 2>/dev/null || fail "$2 exited during startup"
		sleep 0.1
	done
	fail "$2 did not become ready within 10s"
}

echo "cluster-smoke: building sqod"
go build -o "$WORK/sqod" ./cmd/sqod

echo "cluster-smoke: starting two workers"
"$WORK/sqod" -addr "$W1_ADDR" -drain 10s >"$WORK/w1.log" 2>&1 &
W1_PID=$!
"$WORK/sqod" -addr "$W2_ADDR" -drain 10s >"$WORK/w2.log" 2>&1 &
W2_PID=$!
wait_http "$W1/readyz" "worker 1" "$W1_PID"
wait_http "$W2/readyz" "worker 2" "$W2_PID"

echo "cluster-smoke: starting the coordinator"
"$WORK/sqod" -coordinator -peers "$W1,$W2" -addr "$CO_ADDR" \
	-peer-retries 1 -peer-backoff 20ms -probe-interval 500ms -drain 10s >"$WORK/co.log" 2>&1 &
CO_PID=$!
wait_http "$CO/readyz" "coordinator" "$CO_PID"

echo "cluster-smoke: registering datasets via the coordinator"
# Placement is rendezvous-hashed over the dataset name; keep registering
# ds-N until both workers own at least one, so the kill leaves survivors.
NAMES=()
SEEN_W1=0
SEEN_W2=0
for i in $(seq 0 19); do
	NAME="ds-$i"
	BASE_N=$((i * 100))
	curl -fsS -X PUT "$CO/v1/datasets/$NAME" --data-binary "
		edge($((BASE_N + 1)), $((BASE_N + 2))). edge($((BASE_N + 2)), $((BASE_N + 3))). edge($((BASE_N + 3)), $((BASE_N + 4))).
	" >"$WORK/put.json" || fail "PUT $NAME via coordinator failed"
	jq -e '.facts == 3' "$WORK/put.json" >/dev/null || fail "unexpected register response: $(cat "$WORK/put.json")"
	NAMES+=("$NAME")
	OWNER="$(curl -fsS "$CO/v1/cluster?place=$NAME" | jq -r .placement.peer)"
	case "$OWNER" in
	"$W1") SEEN_W1=1 ;;
	"$W2") SEEN_W2=1 ;;
	*) fail "placement of $NAME names unknown peer $OWNER" ;;
	esac
	if [ "$SEEN_W1" -eq 1 ] && [ "$SEEN_W2" -eq 1 ] && [ "${#NAMES[@]}" -ge 4 ]; then break; fi
done
[ "$SEEN_W1" -eq 1 ] && [ "$SEEN_W2" -eq 1 ] || fail "placement never used both workers"
K="${#NAMES[@]}"
echo "cluster-smoke: $K datasets placed across both workers"

echo "cluster-smoke: datasets live on their owners, not elsewhere"
curl -fsS "$CO/v1/datasets" >"$WORK/list.json" || fail "coordinator dataset list failed"
jq -e --argjson k "$K" '(.datasets | length) == $k and .degraded == false' "$WORK/list.json" >/dev/null \
	|| fail "unexpected cluster inventory: $(cat "$WORK/list.json")"
for NAME in "${NAMES[@]}"; do
	OWNER="$(curl -fsS "$CO/v1/cluster?place=$NAME" | jq -r .placement.peer)"
	curl -fsS "$OWNER/v1/datasets" | jq -e --arg n "$NAME" 'map(.name) | index($n) != null' >/dev/null \
		|| fail "$NAME missing from its owner $OWNER"
done

echo "cluster-smoke: mutation through the coordinator reaches the owner"
curl -fsS -X POST "$CO/v1/datasets/${NAMES[0]}/facts" --data-binary 'edge(1, 4).' >"$WORK/mut.json" \
	|| fail "proxied fact insert failed"
jq -e '.facts_added == 1' "$WORK/mut.json" >/dev/null || fail "unexpected mutation response: $(cat "$WORK/mut.json")"
curl -fsS -X DELETE "$CO/v1/datasets/${NAMES[0]}/facts" --data-binary 'edge(1, 4).' >/dev/null \
	|| fail "proxied fact retract failed"

DATASETS_JSON="$(printf '%s\n' "${NAMES[@]}" | jq -R . | jq -cs .)"
QUERY="{\"program\": \"path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y). ?- path.\", \"datasets\": $DATASETS_JSON}"

echo "cluster-smoke: scattered query across all $K datasets"
# Each dataset is a 3-edge chain in a disjoint ID range: 6 paths apiece.
curl -fsS -X POST "$CO/v1/query" -H 'Content-Type: application/json' -d "$QUERY" >"$WORK/q1.json" \
	|| fail "scattered query failed"
jq -e --argjson k "$K" '.degraded == false and (.failed_peers | length) == 0 and .answer_count == 6 * $k' "$WORK/q1.json" >/dev/null \
	|| fail "unexpected scatter response: $(cat "$WORK/q1.json")"

VICTIM_DS="${NAMES[0]}"
VICTIM_PEER="$(curl -fsS "$CO/v1/cluster?place=$VICTIM_DS" | jq -r .placement.peer)"
case "$VICTIM_PEER" in
"$W1") VICTIM_PID=$W1_PID; SURVIVOR_PID=$W2_PID ;;
"$W2") VICTIM_PID=$W2_PID; SURVIVOR_PID=$W1_PID ;;
*) fail "victim dataset $VICTIM_DS has unknown owner $VICTIM_PEER" ;;
esac

echo "cluster-smoke: SIGKILL the owner of $VICTIM_DS ($VICTIM_PEER)"
kill -KILL "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true

echo "cluster-smoke: scatter again — expecting the explicit degraded contract"
curl -fsS -X POST "$CO/v1/query" -H 'Content-Type: application/json' -d "$QUERY" >"$WORK/q2.json" \
	|| fail "degraded scattered query did not answer 200"
jq -e '.degraded == true' "$WORK/q2.json" >/dev/null || fail "scatter not marked degraded: $(cat "$WORK/q2.json")"
jq -e --arg p "$VICTIM_PEER" '.failed_peers | index($p) != null' "$WORK/q2.json" >/dev/null \
	|| fail "failed_peers does not name $VICTIM_PEER: $(cat "$WORK/q2.json")"
jq -e --arg d "$VICTIM_DS" '.failed_datasets | index($d) != null' "$WORK/q2.json" >/dev/null \
	|| fail "failed_datasets does not name $VICTIM_DS: $(cat "$WORK/q2.json")"
FAILED=$(jq '.failed_datasets | length' "$WORK/q2.json")
jq -e --argjson k "$K" --argjson f "$FAILED" '.answer_count == 6 * ($k - $f)' "$WORK/q2.json" >/dev/null \
	|| fail "surviving answers incomplete: $(cat "$WORK/q2.json")"

echo "cluster-smoke: mutating the dead worker's dataset fails loudly"
STATUS=$(curl -sS -o "$WORK/mut2.json" -w '%{http_code}' -X POST "$CO/v1/datasets/$VICTIM_DS/facts" --data-binary 'edge(9, 10).')
[ "$STATUS" = "502" ] || fail "mutation to dead owner returned $STATUS (want 502): $(cat "$WORK/mut2.json")"
jq -e '.code == "peer_unavailable"' "$WORK/mut2.json" >/dev/null || fail "missing peer_unavailable code: $(cat "$WORK/mut2.json")"

echo "cluster-smoke: coordinator stays ready and reports the unhealthy peer"
curl -fsS "$CO/readyz" >/dev/null || fail "coordinator /readyz failed with one surviving worker"
for i in $(seq 1 100); do
	curl -fsS "$CO/metrics" >"$WORK/metrics.txt" || fail "coordinator metrics scrape failed"
	grep -q "sqod_peer_unhealthy{peer=\"$VICTIM_PEER\"} 1" "$WORK/metrics.txt" && break
	[ "$i" -eq 100 ] && fail "prober never marked $VICTIM_PEER unhealthy"
	sleep 0.1
done
grep -q '^sqod_peer_requests_total' "$WORK/metrics.txt" || fail "sqod_peer_requests_total missing"
grep -Eq '^sqod_scatter_seconds_count [1-9]' "$WORK/metrics.txt" || fail "sqod_scatter_seconds_count not positive"

echo "cluster-smoke: SIGTERM coordinator and survivor — expecting clean drains"
kill -TERM "$CO_PID"
STATUS=0
wait "$CO_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "coordinator exited $STATUS after SIGTERM (want 0)"
grep -q "clean shutdown" "$WORK/co.log" || fail "no clean-shutdown line in the coordinator log"
kill -TERM "$SURVIVOR_PID"
STATUS=0
wait "$SURVIVOR_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "surviving worker exited $STATUS after SIGTERM (want 0)"

echo "cluster-smoke: PASS"
