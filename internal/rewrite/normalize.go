// Package rewrite implements the pre-processing passes the paper
// assumes have run before its query-tree algorithm:
//
//   - NormalizeOrder: per-rule order-constraint normalization — rules
//     with unsatisfiable order atoms are removed and equalities implied
//     by the order atoms are substituted out (the paper: "we have
//     substituted X for Y whenever the order atoms of the rule imply
//     that X = Y"). This is the rule-local portion of the [LMSS93]
//     algorithm.
//   - OrderSummaries / Strengthen: a fixpoint that infers, for every
//     IDB predicate, the order constraints guaranteed to hold among its
//     head arguments in every derivation, and propagates them into rule
//     bodies — the inter-rule portion of [LMSS93], in simplified form.
//   - RewriteLocal: the Section 4.2 rewriting that transfers local
//     order atoms and negated EDB atoms of integrity constraints into
//     the rules via case splits, producing the (a, l) pairs the
//     modified adornment computation consults.
package rewrite

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/unify"
)

// NormalizeOrder removes rules whose order atoms are jointly
// unsatisfiable and substitutes out equalities the order atoms force
// (choosing a constant representative when one exists). Tautological
// order atoms (implied by the remaining ones) are pruned; ground
// comparisons that evaluate to true disappear, and ones evaluating to
// false drop the rule.
func NormalizeOrder(p *ast.Program) *ast.Program {
	out := &ast.Program{Query: p.Query}
	for _, r := range p.Rules {
		nr, ok := NormalizeRule(r)
		if ok {
			out.Rules = append(out.Rules, nr)
		}
	}
	return out
}

// NormalizeRule normalizes a single rule, reporting false if the rule
// can never fire because its order atoms are unsatisfiable.
func NormalizeRule(r ast.Rule) (ast.Rule, bool) {
	set := order.NewSet(r.Cmp...)
	if !set.Satisfiable() {
		return ast.Rule{}, false
	}
	// Substitute forced equalities (X = Y, or X pinned to a constant).
	eqs := set.ForcedEqualities()
	if len(eqs) > 0 {
		s := unify.Subst{}
		for v, rep := range eqs {
			s[v] = rep
		}
		r = s.ApplyRule(r)
	} else {
		r = r.Clone()
	}
	// Rebuild the order-atom list: drop atoms implied by the others
	// (including now-trivial X = X and ground truths). Atom i is
	// tested against the kept atoms plus the NOT-YET-PROCESSED ones
	// only — never against an already-dropped atom — so two mutually
	// implying atoms cannot erase each other (one of them survives).
	var kept []ast.Cmp
	for i, c := range r.Cmp {
		rest := order.NewSet()
		for _, k := range kept {
			rest.Add(k)
		}
		for j := i + 1; j < len(r.Cmp); j++ {
			rest.Add(r.Cmp[j])
		}
		if !rest.Implies(c) {
			kept = append(kept, c)
		}
	}
	// Deduplicate kept by canonical key.
	seen := map[string]bool{}
	var uniq []ast.Cmp
	for _, c := range kept {
		if !seen[c.Key()] {
			seen[c.Key()] = true
			uniq = append(uniq, c)
		}
	}
	r.Cmp = uniq
	return r, true
}

// collectConstants returns the constants mentioned in order atoms of
// the program, used as the candidate vocabulary for summaries.
func collectConstants(p *ast.Program) []ast.Term {
	seen := map[string]bool{}
	var out []ast.Term
	note := func(t ast.Term) {
		if t.IsConst() && !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	for _, r := range p.Rules {
		for _, c := range r.Cmp {
			note(c.Left)
			note(c.Right)
		}
		for _, a := range r.Pos {
			for _, t := range a.Args {
				note(t)
			}
		}
		for _, t := range r.Head.Args {
			note(t) // head constants too (rare)
		}
	}
	return out
}

// Summary holds the order constraints guaranteed among an IDB
// predicate's arguments (named A0, A1, ...) in every derivation.
type Summary struct {
	Pred  string
	Arity int
	Cmps  []ast.Cmp // over variables A0..A(n-1) and constants
}

// argVar names the canonical variable for head argument position i.
func argVar(i int) ast.Term { return ast.V(fmt.Sprintf("A%d", i)) }

// OrderSummaries computes, for each IDB predicate, the set of
// candidate order atoms over its argument positions (and the program's
// constants) that hold in every derivation. It is a greatest-fixpoint
// computation: summaries start at "all candidates" and shrink until
// stable.
func OrderSummaries(p *ast.Program) map[string]*Summary {
	idb := p.IDB()
	ar, err := p.PredArity()
	if err != nil {
		return map[string]*Summary{}
	}
	consts := collectConstants(p)

	candidates := func(n int) []ast.Cmp {
		var out []ast.Cmp
		ops := []ast.CmpOp{ast.LT, ast.LE, ast.EQ, ast.NE}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, op := range ops {
					out = append(out, ast.NewCmp(argVar(i), op, argVar(j)))
					out = append(out, ast.NewCmp(argVar(j), op, argVar(i)))
				}
			}
			for _, c := range consts {
				for _, op := range []ast.CmpOp{ast.LT, ast.LE, ast.EQ, ast.NE, ast.GT, ast.GE} {
					out = append(out, ast.NewCmp(argVar(i), op, c))
				}
			}
		}
		return out
	}

	sums := map[string]*Summary{}
	for pred := range idb {
		sums[pred] = &Summary{Pred: pred, Arity: ar[pred], Cmps: candidates(ar[pred])}
	}

	for changed := true; changed; {
		changed = false
		for pred := range idb {
			var newCmps []ast.Cmp
			first := true
			for _, r := range p.RulesFor(pred) {
				implied := ruleImplied(r, sums, idb)
				if first {
					newCmps = filterImplied(sums[pred].Cmps, r, implied)
					first = false
				} else {
					newCmps = intersectCmps(newCmps, filterImplied(sums[pred].Cmps, r, implied))
				}
			}
			if len(newCmps) != len(sums[pred].Cmps) {
				sums[pred].Cmps = newCmps
				changed = true
			}
		}
	}
	return sums
}

// ruleImplied builds the order-constraint set known to hold for an
// instantiation of rule r, combining the rule's own order atoms with
// the current summaries of its IDB subgoals.
func ruleImplied(r ast.Rule, sums map[string]*Summary, idb map[string]bool) *order.Set {
	set := order.NewSet(r.Cmp...)
	for _, sub := range r.Pos {
		if !idb[sub.Pred] {
			continue
		}
		sum := sums[sub.Pred]
		if sum == nil {
			continue
		}
		// Instantiate the summary's A_i with the subgoal's argument
		// terms.
		s := unify.Subst{}
		for i, t := range sub.Args {
			s[fmt.Sprintf("A%d", i)] = t
		}
		for _, c := range sum.Cmps {
			set.Add(s.ApplyCmp(c))
		}
	}
	return set
}

// filterImplied keeps the candidate atoms (over A_i) that the rule
// guarantees, translating head argument positions to the rule's head
// terms.
func filterImplied(cands []ast.Cmp, r ast.Rule, implied *order.Set) []ast.Cmp {
	s := unify.Subst{}
	for i, t := range r.Head.Args {
		s[fmt.Sprintf("A%d", i)] = t
	}
	var out []ast.Cmp
	for _, c := range cands {
		if implied.Implies(s.ApplyCmp(c)) {
			out = append(out, c)
		}
	}
	return out
}

func intersectCmps(a, b []ast.Cmp) []ast.Cmp {
	keys := map[string]bool{}
	for _, c := range b {
		keys[c.Key()] = true
	}
	var out []ast.Cmp
	for _, c := range a {
		if keys[c.Key()] {
			out = append(out, c)
		}
	}
	return out
}

// Strengthen adds, for every IDB subgoal occurrence in every rule, the
// subgoal predicate's summary constraints (instantiated with the
// subgoal's arguments) to the rule body, then re-normalizes. This
// propagates guaranteed constraints upward so that later passes (and
// the evaluator's filters) can exploit them. The transformation is an
// equivalence: the added atoms hold in every derivation by
// construction.
func Strengthen(p *ast.Program) *ast.Program {
	sums := OrderSummaries(p)
	idb := p.IDB()
	out := &ast.Program{Query: p.Query}
	for _, r := range p.Rules {
		nr := r.Clone()
		set := order.NewSet(nr.Cmp...)
		for _, sub := range nr.Pos {
			if !idb[sub.Pred] {
				continue
			}
			sum := sums[sub.Pred]
			if sum == nil {
				continue
			}
			s := unify.Subst{}
			for i, t := range sub.Args {
				s[fmt.Sprintf("A%d", i)] = t
			}
			for _, c := range sum.Cmps {
				inst := s.ApplyCmp(c)
				if !set.Implies(inst) {
					nr.Cmp = append(nr.Cmp, inst)
					set.Add(inst)
				}
			}
		}
		if norm, ok := NormalizeRule(nr); ok {
			out.Rules = append(out.Rules, norm)
		}
	}
	return out
}
