package rewrite

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/order"
	"repro/internal/parser"
)

func TestNormalizeRuleDropsUnsatisfiable(t *testing.T) {
	r := parser.MustParseProgram(`p(X, Y) :- e(X, Y), X < Y, Y < X.`).Rules[0]
	if _, ok := NormalizeRule(r); ok {
		t.Fatal("rule with contradictory order atoms must be dropped")
	}
}

func TestNormalizeRuleSubstitutesEqualities(t *testing.T) {
	r := parser.MustParseProgram(`p(X, Y) :- e(X, Y), X = Y.`).Rules[0]
	nr, ok := NormalizeRule(r)
	if !ok {
		t.Fatal("rule must survive")
	}
	// After substitution the head should use a single variable in both
	// positions and the equality atom should vanish.
	if !nr.Head.Args[0].Equal(nr.Head.Args[1]) {
		t.Fatalf("equality not substituted: %s", nr)
	}
	if len(nr.Cmp) != 0 {
		t.Fatalf("trivial equality kept: %s", nr)
	}
}

func TestNormalizeRuleSubstitutesPinnedConstant(t *testing.T) {
	r := parser.MustParseProgram(`p(X) :- e(X), X >= 5, X <= 5.`).Rules[0]
	nr, ok := NormalizeRule(r)
	if !ok {
		t.Fatal("rule must survive")
	}
	if !nr.Head.Args[0].Equal(ast.N(5)) {
		t.Fatalf("pinned variable not replaced by constant: %s", nr)
	}
}

func TestNormalizeRuleDropsRedundantAtoms(t *testing.T) {
	r := parser.MustParseProgram(`p(X, Z) :- e(X, Y, Z), X < Y, Y < Z, X < Z.`).Rules[0]
	nr, ok := NormalizeRule(r)
	if !ok {
		t.Fatal("rule must survive")
	}
	if len(nr.Cmp) != 2 {
		t.Fatalf("X < Z should be pruned as implied, got %s", nr)
	}
}

func TestNormalizeRuleGroundComparisons(t *testing.T) {
	r, ok := NormalizeRule(parser.MustParseProgram(`p(X) :- e(X), 1 < 2.`).Rules[0])
	if !ok {
		t.Fatal("1 < 2 is a tautology; rule survives")
	}
	if len(r.Cmp) != 0 {
		t.Fatalf("ground truth kept: %s", r)
	}
	if _, ok := NormalizeRule(parser.MustParseProgram(`p(X) :- e(X), 2 < 1.`).Rules[0]); ok {
		t.Fatal("2 < 1 falsifies the rule")
	}
}

func TestNormalizeOrderProgram(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X) :- e(X), X < 3, X > 5.
		q(X) :- e(X), X < 3.
		?- q.
	`)
	np := NormalizeOrder(p)
	if len(np.Rules) != 1 || np.Rules[0].Head.Pred != "q" {
		t.Fatalf("normalization wrong: %s", np)
	}
}

func TestOrderSummariesMonotonePath(t *testing.T) {
	// path built from increasing steps: summary must include A0 < A1.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y), X < Y.
		path(X, Y) :- step(X, Z), X < Z, path(Z, Y).
		?- path.
	`)
	sums := OrderSummaries(p)
	s := sums["path"]
	if s == nil {
		t.Fatal("no summary for path")
	}
	found := false
	want := ast.NewCmp(ast.V("A0"), ast.LT, ast.V("A1"))
	for _, c := range s.Cmps {
		if c.Key() == want.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary misses A0 < A1: %v", s.Cmps)
	}
}

func TestOrderSummariesNoFalseGuarantee(t *testing.T) {
	// One rule increases, the other decreases: nothing is guaranteed.
	p := parser.MustParseProgram(`
		conn(X, Y) :- step(X, Y), X < Y.
		conn(X, Y) :- step(X, Y), X > Y.
		?- conn.
	`)
	sums := OrderSummaries(p)
	for _, c := range sums["conn"].Cmps {
		if c.Key() == ast.NewCmp(ast.V("A0"), ast.LT, ast.V("A1")).Key() ||
			c.Key() == ast.NewCmp(ast.V("A0"), ast.GT, ast.V("A1")).Key() {
			t.Fatalf("false guarantee %v", c)
		}
	}
	// But A0 != A1 IS guaranteed (both branches imply it).
	found := false
	for _, c := range sums["conn"].Cmps {
		if c.Key() == ast.NewCmp(ast.V("A0"), ast.NE, ast.V("A1")).Key() {
			found = true
		}
	}
	if !found {
		t.Fatal("A0 != A1 should be guaranteed")
	}
}

func TestOrderSummariesThreshold(t *testing.T) {
	// Every path endpoint is >= 100 when every step source is.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y), X >= 100, X < Y.
		path(X, Y) :- step(X, Z), X >= 100, X < Z, path(Z, Y).
		?- path.
	`)
	sums := OrderSummaries(p)
	wantA0 := ast.NewCmp(ast.V("A0"), ast.GE, ast.N(100))
	found := false
	for _, c := range sums["path"].Cmps {
		if c.Key() == wantA0.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary misses A0 >= 100: %v", sums["path"].Cmps)
	}
	// A1 > 100: base case gives A1 > A0 >= 100; recursive case gives
	// A1 ... via path summary. The fixpoint should find A1 > 100.
	wantA1 := ast.NewCmp(ast.V("A1"), ast.GT, ast.N(100))
	found = false
	for _, c := range sums["path"].Cmps {
		if order.NewSet(c).Implies(wantA1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary misses A1 > 100: %v", sums["path"].Cmps)
	}
}

func TestStrengthenPreservesSemantics(t *testing.T) {
	src := `
		path(X, Y) :- step(X, Y), X < Y.
		path(X, Y) :- step(X, Z), X < Z, path(Z, Y).
		?- path.
	`
	p := parser.MustParseProgram(src)
	sp := Strengthen(p)
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		step(1, 2). step(2, 3). step(3, 1). step(3, 4).
	`))
	want, _, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(sp, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("path"), got.SortedFacts("path")
	if len(w) != len(g) {
		t.Fatalf("sizes differ: %v vs %v", w, g)
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("differ at %d: %v vs %v", i, w, g)
		}
	}
}

func TestLocalPairsClassification(t *testing.T) {
	ics := parser.MustParseICs(`
		:- e(X, Y), e(Y, Z), X < Y.
		:- succ(X, Y), !dom(X).
	`)
	pairs, err := LocalPairs(ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	if pairs[0].OrderAtom == nil || pairs[0].Anchor.Pred != "e" {
		t.Fatalf("pair 0 wrong: %s", pairs[0])
	}
	if pairs[1].NegEDB == nil || pairs[1].NegEDB.Pred != "dom" || pairs[1].Anchor.Pred != "succ" {
		t.Fatalf("pair 1 wrong: %s", pairs[1])
	}
}

func TestLocalPairsRejectsNonLocal(t *testing.T) {
	// X < Z spans two atoms: not local (the paper's own example).
	ics := parser.MustParseICs(`:- e(X, Y), e(Y, Z), X < Z.`)
	if _, err := LocalPairs(ics); err == nil {
		t.Fatal("X < Z is not local; expected error")
	}
	if _, err := LocalPairs(parser.MustParseICs(`:- e(X, Y), !f(Y, Z).`)); err == nil {
		t.Fatal("!f(Y, Z) is not local; expected error")
	}
}

func TestRewriteLocalSplitsOnOrderAtom(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- e(X, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), X < Y.`)
	rp, pairs, err := RewriteLocal(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// The rule splits into X < Y and X >= Y branches.
	if len(rp.Rules) != 2 {
		t.Fatalf("got %d rules, want 2:\n%s", len(rp.Rules), rp)
	}
	var sawLT, sawGE bool
	for _, r := range rp.Rules {
		set := order.NewSet(r.Cmp...)
		if set.Implies(ast.NewCmp(r.Pos[0].Args[0], ast.LT, r.Pos[0].Args[1])) {
			sawLT = true
		}
		if set.Implies(ast.NewCmp(r.Pos[0].Args[0], ast.GE, r.Pos[0].Args[1])) {
			sawGE = true
		}
	}
	if !sawLT || !sawGE {
		t.Fatalf("branches wrong:\n%s", rp)
	}
}

func TestRewriteLocalSplitsOnNegEDB(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- succ(X, Y).
		?- p.
	`)
	ics := parser.MustParseICs(`:- succ(X, Y), !dom(X).`)
	rp, _, err := RewriteLocal(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Rules) != 2 {
		t.Fatalf("got %d rules, want 2:\n%s", len(rp.Rules), rp)
	}
	var sawPos, sawNeg bool
	for _, r := range rp.Rules {
		for _, a := range r.Pos {
			if a.Pred == "dom" {
				sawPos = true
			}
		}
		for _, a := range r.Neg {
			if a.Pred == "dom" {
				sawNeg = true
			}
		}
	}
	if !sawPos || !sawNeg {
		t.Fatalf("case split incomplete:\n%s", rp)
	}
}

func TestRewriteLocalAlreadyDeterminedNoSplit(t *testing.T) {
	// The rule already carries X < Y: no split needed.
	p := parser.MustParseProgram(`
		p(X, Y) :- e(X, Y), X < Y.
		?- p.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), X < Y.`)
	rp, _, err := RewriteLocal(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Rules) != 1 {
		t.Fatalf("determined literal must not split:\n%s", rp)
	}
}

func TestRewriteLocalPreservesSemanticsOnConsistentDB(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X, Y) :- e(X, Y).
		reach(X, Y) :- e(X, Z), reach(Z, Y).
		?- reach.
	`)
	ics := parser.MustParseICs(`:- e(X, Y), X >= Y.`)
	rp, _, err := RewriteLocal(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent DB: strictly increasing edges only.
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`e(1, 2). e(2, 3). e(2, 5).`))
	want, _, err := eval.Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(rp, db)
	if err != nil {
		t.Fatal(err)
	}
	w, g := want.SortedFacts("reach"), got.SortedFacts("reach")
	if strings.Join(w, ",") != strings.Join(g, ",") {
		t.Fatalf("semantics changed:\n%v\nvs\n%v", w, g)
	}
}

func TestRewriteLocalMultipleICs(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- e(X, Y), f(Y).
		?- p.
	`)
	ics := parser.MustParseICs(`
		:- e(X, Y), X < Y.
		:- e(X, Y), !g(Y).
	`)
	rp, pairs, err := RewriteLocal(p, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Each rule splits on both: 2 × 2 = 4 branches.
	if len(rp.Rules) != 4 {
		t.Fatalf("got %d rules, want 4:\n%s", len(rp.Rules), rp)
	}
}
