package eval

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// evalAllWorkers evaluates the program under every worker count and
// returns the resulting databases and stats, failing the test on any
// evaluation error.
func evalAllWorkers(t *testing.T, p *ast.Program, db *DB, base Options, workers []int) ([]*DB, []*Stats) {
	t.Helper()
	var idbs []*DB
	var stats []*Stats
	for _, w := range workers {
		opts := base
		opts.Workers = w
		idb, st, err := EvalWith(p, db, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		idbs = append(idbs, idb)
		stats = append(stats, st)
	}
	return idbs, stats
}

// requireIdentical asserts that every evaluation produced the same
// relations (byte-identical sorted fact lists) and the same Stats.
func requireIdentical(t *testing.T, label string, workers []int, idbs []*DB, stats []*Stats) {
	t.Helper()
	for i := 1; i < len(idbs); i++ {
		if !stats[i].Equal(stats[0]) {
			t.Fatalf("%s: stats differ between workers=%d and workers=%d:\n%+v\nvs\n%+v",
				label, workers[0], workers[i], *stats[0], *stats[i])
		}
		preds := idbs[0].Preds()
		if got := idbs[i].Preds(); !reflect.DeepEqual(got, preds) {
			t.Fatalf("%s: predicate sets differ: %v vs %v", label, preds, got)
		}
		for _, pred := range preds {
			want := idbs[0].SortedFacts(pred)
			if got := idbs[i].SortedFacts(pred); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: workers=%d disagrees on %s:\n%v\nvs\n%v",
					label, workers[i], pred, got, want)
			}
		}
	}
}

// TestParallelMatchesSequentialRandomGraphs is the engine-level
// differential test: on random graphs, parallel evaluation must return
// byte-identical relations AND byte-identical Stats for every worker
// count, in both semi-naive and naive mode, indexed and scanned.
func TestParallelMatchesSequentialRandomGraphs(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		sym(X, Y) :- path(X, Y), path(Y, X), X != Y.
		far(X, Y) :- path(X, Y), X < Y.
		?- path.
	`)
	workers := []int{1, 2, 4, 8}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		db := NewDB()
		n := 3 + rng.Intn(8)
		for i := 0; i < n*3; i++ {
			db.AddFact(ast.NewAtom("edge",
				ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(n)))))
		}
		for _, base := range []Options{
			{Seminaive: true, UseIndex: true},
			{Seminaive: true, UseIndex: false},
			{Seminaive: false, UseIndex: true},
		} {
			idbs, stats := evalAllWorkers(t, prog, db, base, workers)
			requireIdentical(t, "random graph", workers, idbs, stats)
		}
	}
}

// TestParallelMultiRule exercises rule-level parallelism: many
// independent rules per round, plus a rule with two IDB occurrences
// (two delta tasks per round) and negation.
func TestParallelMultiRule(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X, Y) :- edge(X, Y), !blocked(X).
		reach(X, Y) :- edge(X, Z), reach(Z, Y), !blocked(X).
		back(X, Y) :- edge(Y, X).
		back(X, Y) :- back(X, Z), back(Z, Y).
		meet(X, Y) :- reach(X, Y), back(X, Y).
		joined(X, Z) :- reach(X, Y), reach(Y, Z).
		?- meet.
	`)
	db := NewDB()
	for i := 0; i < 12; i++ {
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i+1)%12))))
		db.AddFact(ast.NewAtom("edge", ast.N(float64(i)), ast.N(float64((i*5)%12))))
	}
	db.AddFact(ast.NewAtom("blocked", ast.N(3)))
	workers := []int{1, 2, 4, 8}
	idbs, stats := evalAllWorkers(t, prog, db, Options{Seminaive: true, UseIndex: true}, workers)
	requireIdentical(t, "multi-rule", workers, idbs, stats)
	if idbs[0].Count("meet") == 0 || idbs[0].Count("joined") == 0 {
		t.Fatal("sanity: expected non-empty results")
	}
}

// TestParallelLargeChain forces many partitioned delta tasks per round
// on a workload big enough that every worker stays busy.
func TestParallelLargeChain(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(80)
	workers := []int{1, 4}
	idbs, stats := evalAllWorkers(t, prog, db, Options{Seminaive: true, UseIndex: true}, workers)
	requireIdentical(t, "large chain", workers, idbs, stats)
	if got := idbs[0].Count("path"); got != 80*79/2 {
		t.Fatalf("path count = %d", got)
	}
}

// TestParallelMaxTuplesBudget: the budget guard must fire under
// parallel evaluation too.
func TestParallelMaxTuplesBudget(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(100)
	for _, w := range []int{1, 4} {
		_, _, err := EvalWith(prog, db, Options{Seminaive: true, UseIndex: true, MaxTuples: 50, Workers: w})
		if err == nil {
			t.Fatalf("workers=%d: expected budget error", w)
		}
	}
}

// TestWorkersDefaultResolution: Workers == 0 must resolve to a positive
// pool size and evaluate normally.
func TestWorkersDefaultResolution(t *testing.T) {
	if got := (Options{}).effectiveWorkers(); got < 1 {
		t.Fatalf("effectiveWorkers = %d", got)
	}
	if got := (Options{Workers: 3}).effectiveWorkers(); got != 3 {
		t.Fatalf("effectiveWorkers = %d, want 3", got)
	}
	prog := parser.MustParseProgram(`
		q(X) :- e(X).
		?- q.
	`)
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1)))
	idb, _, err := EvalWith(prog, db, Options{Seminaive: true, UseIndex: true, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if idb.Count("q") != 1 {
		t.Fatal("q not derived")
	}
}

// TestConcurrentLookupSameMask is the regression test for the lazy
// index build race: many goroutines probe the same un-indexed position
// mask (and several others) on a shared relation. Run with -race.
func TestConcurrentLookupSameMask(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 2000; i++ {
		r.Add(Tuple{ast.N(float64(i % 50)), ast.N(float64(i))})
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := r.lookup([]int{0}, []ast.Term{ast.N(float64(i))}); len(got) != 40 {
					t.Errorf("mask [0] val %d: %d ids, want 40", i, len(got))
					return
				}
				_ = r.lookup([]int{1}, []ast.Term{ast.N(float64(i))})
				_ = r.lookup([]int{0, 1}, []ast.Term{ast.N(float64(i % 50)), ast.N(float64(i))})
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelProvenanceDeterministic: provenance recorded under the
// default (parallel-capable) options must be identical across runs and
// reconstruct valid derivation trees.
func TestParallelProvenanceDeterministic(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(20)
	idbPreds := prog.IDB()
	var rendered []string
	for run := 0; run < 3; run++ {
		idb, prov, _, err := EvalProv(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		all := ""
		for _, f := range idb.Facts("path") {
			d, err := prov.Tree(f, idbPreds, db)
			if err != nil {
				t.Fatalf("no derivation for %s: %v", f, err)
			}
			all += d.String()
		}
		rendered = append(rendered, all)
	}
	for run := 1; run < 3; run++ {
		if rendered[run] != rendered[0] {
			t.Fatal("provenance differs between runs")
		}
	}
}

// TestPartitioningInvariance: results must not depend on how depth-0
// scans are partitioned, which is exercised by comparing worker counts
// that straddle the partitioning thresholds on a relation big enough
// to split many ways.
func TestPartitioningInvariance(t *testing.T) {
	prog := parser.MustParseProgram(`
		big(X, Y) :- e(X, Y), X < Y.
		pair(X, Z) :- big(X, Y), big(Y, Z).
		?- pair.
	`)
	rng := rand.New(rand.NewSource(99))
	db := NewDB()
	for i := 0; i < 400; i++ {
		db.AddFact(ast.NewAtom("e",
			ast.N(float64(rng.Intn(40))), ast.N(float64(rng.Intn(40)))))
	}
	workers := []int{1, 2, 3, 5, 16, 64}
	idbs, stats := evalAllWorkers(t, prog, db, Options{Seminaive: true, UseIndex: true}, workers)
	requireIdentical(t, "partitioning", workers, idbs, stats)
}
