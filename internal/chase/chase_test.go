package chase

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func TestIsConsistentBasic(t *testing.T) {
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	ok, err := IsConsistent(parser.MustParseFacts(`a(1, 2). b(3, 4).`), ics)
	if err != nil || !ok {
		t.Fatalf("disconnected a/b facts are consistent: %v %v", ok, err)
	}
	ok, err = IsConsistent(parser.MustParseFacts(`a(1, 2). b(2, 3).`), ics)
	if err != nil || ok {
		t.Fatalf("a(1,2), b(2,3) violates the constraint: %v %v", ok, err)
	}
}

func TestIsConsistentWithOrderAtoms(t *testing.T) {
	ics := parser.MustParseICs(`:- step(X, Y), X >= Y.`)
	ok, _ := IsConsistent(parser.MustParseFacts(`step(1, 2). step(2, 5).`), ics)
	if !ok {
		t.Fatal("increasing steps are consistent")
	}
	ok, _ = IsConsistent(parser.MustParseFacts(`step(5, 2).`), ics)
	if ok {
		t.Fatal("decreasing step violates the constraint")
	}
	ok, _ = IsConsistent(parser.MustParseFacts(`step(2, 2).`), ics)
	if ok {
		t.Fatal("self-loop violates X >= Y")
	}
}

func TestRunDeterministicRepair(t *testing.T) {
	// Inclusion-style constraint: every succ source must be in dom.
	ics := parser.MustParseICs(`
		:- succ(X, Y), !dom(X).
		:- succ(X, Y), !dom(Y).
	`)
	res := Run(parser.MustParseFacts(`succ(1, 2). succ(2, 3).`), ics, Options{})
	if res.Verdict != Consistent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// The model must contain dom(1), dom(2), dom(3).
	want := map[string]bool{"dom(1)": true, "dom(2)": true, "dom(3)": true}
	for _, a := range res.Model {
		delete(want, a.String())
	}
	if len(want) != 0 {
		t.Fatalf("chase failed to add %v; model = %v", want, res.Model)
	}
}

func TestRunCascadingRepairs(t *testing.T) {
	// eq must be reflexive on dom, symmetric, and transitive — the
	// Theorem 5.4 machinery.
	ics := parser.MustParseICs(`
		:- dom(X), !eq(X, X).
		:- eq(X, Y), !eq(Y, X).
		:- eq(X, Z), eq(Z, Y), !eq(X, Y).
	`)
	res := Run(parser.MustParseFacts(`dom(1). dom(2). eq(1, 2).`), ics, Options{})
	if res.Verdict != Consistent {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	got := map[string]bool{}
	for _, a := range res.Model {
		got[a.String()] = true
	}
	for _, f := range []string{"eq(1, 1)", "eq(2, 2)", "eq(2, 1)", "eq(1, 2)"} {
		if !got[f] {
			t.Fatalf("missing %s in chased model %v", f, res.Model)
		}
	}
}

func TestRunHardViolation(t *testing.T) {
	ics := parser.MustParseICs(`
		:- eq(X, Y), neq(X, Y).
		:- p(X, Y), !eq(X, Y).
	`)
	// p(1,2) forces eq(1,2), which collides with neq(1,2).
	res := Run(parser.MustParseFacts(`p(1, 2). neq(1, 2).`), ics, Options{})
	if res.Verdict != Inconsistent {
		t.Fatalf("verdict = %v, want inconsistent", res.Verdict)
	}
}

func TestRunForbiddenFacts(t *testing.T) {
	ics := parser.MustParseICs(`:- a(X), !b(X).`)
	// Repair would add b(1), but b(1) is forbidden (e.g. the query
	// body negates it).
	res := Run(parser.MustParseFacts(`a(1).`), ics, Options{
		Forbidden: parser.MustParseFacts(`b(1).`),
	})
	if res.Verdict != Inconsistent {
		t.Fatalf("verdict = %v, want inconsistent", res.Verdict)
	}
}

func TestRunDisjunctiveBranching(t *testing.T) {
	// Violation repairable two ways; one way collides, the other works.
	ics := parser.MustParseICs(`
		:- a(X), !b(X), !c(X).
		:- b(X), bad(X).
	`)
	res := Run(parser.MustParseFacts(`a(1). bad(1).`), ics, Options{})
	if res.Verdict != Consistent {
		t.Fatalf("verdict = %v, want consistent via c(1)", res.Verdict)
	}
	found := false
	for _, m := range res.Model {
		if m.String() == "c(1)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected c(1) in model %v", res.Model)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// A diverging chase: every dom element needs a successor whose
	// source and target are in dom — an infinite chain.
	ics := parser.MustParseICs(`
		:- dom(X), !succ(X, X).
	`)
	// succ(X,X) repairs terminate immediately. Use a genuinely growing
	// one instead: each a-fact forces a b-fact, each b-fact forces an
	// a-fact on the same constant — terminating. For divergence we use
	// pairing growth via two constants alternating... With function-free
	// facts over a fixed domain the chase always terminates, so true
	// divergence needs the budget to be tiny instead.
	res := Run(parser.MustParseFacts(`dom(1). dom(2). dom(3).`), ics, Options{MaxSteps: 2})
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown under a 2-step budget (3 repairs needed)", res.Verdict)
	}
	res = Run(parser.MustParseFacts(`dom(1). dom(2). dom(3).`), ics, Options{MaxSteps: 100})
	if res.Verdict != Consistent {
		t.Fatalf("verdict = %v, want consistent with budget", res.Verdict)
	}
}

func TestRunEmptyICs(t *testing.T) {
	res := Run(parser.MustParseFacts(`a(1).`), nil, Options{})
	if res.Verdict != Consistent || len(res.Model) != 1 {
		t.Fatalf("no constraints: trivially consistent; got %v", res.Verdict)
	}
}

func TestRunPanicsOnNonGround(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run([]ast.Atom{ast.NewAtom("a", ast.V("X"))}, nil, Options{})
}

func TestVerdictString(t *testing.T) {
	if Consistent.String() != "consistent" || Inconsistent.String() != "inconsistent" || Unknown.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
}
