// Package store is sqod's persistence subsystem: a write-ahead log
// plus immutable checkpoint segments underneath the interned row
// representation that the compiled-plan engine evaluates over.
//
// The durable state is the mutable-dataset surface of the server —
// named datasets of ground facts and the views registered on them.
// Every mutation is appended to the WAL as one checksummed record
// (wal.go) before it is acknowledged; rows travel in the interned
// []uint32 format against a persistent symbol table. At checkpoint the
// whole state is written as an immutable, memory-mappable segment file
// (segment.go) — flat little-endian row images, the symbol table, and
// one distinct-value sketch per column — after which the WAL is
// truncated. Recovery loads the newest segment and replays the WAL
// tail; a torn or corrupt tail ends the log at the last complete
// record, so an acknowledged operation is never lost and a partially
// written one never partially applies.
//
// The Store also maintains the recovered state in memory (datasets →
// predicates → deduplicated interned rows plus per-column sketches),
// which is what checkpoints serialize and what the crash-recovery
// differential test compares bit-for-bit against an uninterrupted
// run. A Store opened with an empty directory path is ephemeral: the
// same mirror and statistics with no I/O, used by benchmarks to
// isolate the durability overhead.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/eval"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append, before the operation is
	// acknowledged: an acked write survives power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval): an acked
	// write survives process death immediately but may be lost to power
	// failure within one interval.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// ParseFsyncPolicy parses "always", "interval", or "never" (the empty
// string means always), for wiring the -fsync flag.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures a Store.
type Options struct {
	// Fsync selects the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval (default
	// 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery writes a checkpoint segment and truncates the WAL
	// after this many appended records (0 = only explicit Checkpoint
	// calls).
	CheckpointEvery int
}

// Counters is a snapshot of the store's monotonic instrumentation.
type Counters struct {
	Appends     int64 // WAL records appended
	Bytes       int64 // WAL bytes appended (framing included)
	Checkpoints int64 // segments written
}

// ViewDef is the durable description of one registered view: enough
// to rebuild it (the materialized answers themselves are derived
// state, reconstructed at recovery through the incremental-maintenance
// machinery).
type ViewDef struct {
	Name      string
	Program   string // datalog source incl. query declaration
	ICs       string // integrity constraints, source syntax
	Optimized bool   // materialize over the Levy–Sagiv rewrite
}

// OpKind discriminates recovered WAL-tail operations.
type OpKind int

const (
	OpDatasetCreate OpKind = iota + 1
	OpDatasetDelete
	OpFacts
	OpViewRegister
	OpViewDrop
)

// Op is one recovered WAL-tail operation in public (atom-level) form,
// replayed by the server after the checkpoint base is restored.
type Op struct {
	Kind    OpKind
	Dataset string
	Adds    []ast.Atom // OpDatasetCreate (initial facts), OpFacts
	Dels    []ast.Atom // OpFacts
	View    ViewDef    // OpViewRegister (full), OpViewDrop (Name only)
}

// DatasetSnapshot is one dataset's state at the newest checkpoint.
type DatasetSnapshot struct {
	Name  string
	Facts []ast.Atom // deterministic order: predicate, then row
	Views []ViewDef  // sorted by name
}

// Recovered describes what Open reconstructed: the checkpoint base
// plus the WAL tail, in replay order.
type Recovered struct {
	Datasets   []DatasetSnapshot // state at the newest checkpoint
	Tail       []Op              // WAL operations after the checkpoint
	WALRecords int               // tail records replayed
	WALBytes   int64             // tail bytes replayed
	Truncated  bool              // a torn/corrupt tail was cut at the last good record
	Elapsed    time.Duration     // wall clock spent in Open
}

// predState is one predicate's interned rows and statistics.
type predState struct {
	arity    int
	rows     map[string][]uint32 // canonical row bytes → row
	sketches []eval.ColSketch    // one per column
}

func newPredState(arity int) *predState {
	return &predState{arity: arity, rows: map[string][]uint32{}, sketches: make([]eval.ColSketch, arity)}
}

func rowKey(row []uint32) string {
	b := make([]byte, 0, 4*len(row))
	for _, v := range row {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// add inserts a row, updating the sketches; reports whether it was new.
func (ps *predState) add(row []uint32) bool {
	if len(row) != ps.arity {
		return false // arity conflict: ignore rather than corrupt state
	}
	k := rowKey(row)
	if _, ok := ps.rows[k]; ok {
		return false
	}
	ps.rows[k] = row
	for j, v := range row {
		ps.sketches[j].Add(v)
	}
	return true
}

// rebuildSketches recomputes the per-column sketches from the
// surviving rows. Called after retractions: sketch state is a pure
// function of the value set, so this matches what an uninterrupted
// insert-only history would hold.
func (ps *predState) rebuildSketches() {
	ps.sketches = make([]eval.ColSketch, ps.arity)
	for _, row := range ps.rows {
		for j, v := range row {
			ps.sketches[j].Add(v)
		}
	}
}

// sortedRows returns the rows in lexicographic order.
func (ps *predState) sortedRows() [][]uint32 {
	out := make([][]uint32, 0, len(ps.rows))
	keys := make([]string, 0, len(ps.rows))
	for k := range ps.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, ps.rows[k])
	}
	return out
}

// dsState is one dataset's durable state.
type dsState struct {
	preds map[string]*predState
	views map[string]ViewDef
}

func newDsState() *dsState {
	return &dsState{preds: map[string]*predState{}, views: map[string]ViewDef{}}
}

// Store is the persistence subsystem. All methods are safe for
// concurrent use; appends serialize.
type Store struct {
	mu   sync.Mutex
	dir  string // "" = ephemeral (no I/O)
	opts Options

	syms     *symtab
	datasets map[string]*dsState

	wal     *os.File
	walName string
	segName string
	seq     uint64 // generation counter for wal/segment file names

	appends     int64
	walBytes    int64
	checkpoints int64
	sinceCkpt   int

	closed   bool
	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (or initializes) a store rooted at dir and recovers its
// state: newest checkpoint segment first, then the WAL tail. An empty
// dir yields an ephemeral in-memory store (no files, no fsync), whose
// mirror and statistics behave identically.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	start := time.Now()
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		syms:     newSymtab(),
		datasets: map[string]*dsState{},
	}
	rec := &Recovered{}
	if dir == "" {
		rec.Elapsed = time.Since(start)
		return s, rec, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if err := s.recover(rec); err != nil {
		return nil, nil, err
	}
	if opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	rec.Elapsed = time.Since(start)
	return s, rec, nil
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.wal != nil && !s.closed {
				_ = s.wal.Sync()
			}
			s.mu.Unlock()
		case <-s.stopSync:
			return
		}
	}
}

// Counters returns a snapshot of the append/checkpoint instrumentation.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{Appends: s.appends, Bytes: s.walBytes, Checkpoints: s.checkpoints}
}

// Dir returns the store's root directory ("" when ephemeral).
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the WAL. It does not checkpoint; callers
// that want a truncated WAL on shutdown call Checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.wal != nil {
		if serr := s.wal.Sync(); serr != nil {
			err = serr
		}
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.wal = nil
	}
	stop := s.stopSync
	done := s.syncDone
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// --- append paths -----------------------------------------------------

// AppendDatasetCreate logs dataset creation with its initial facts.
// Creating a dataset that already exists is a no-op on replay, so the
// caller resolves create races before appending.
func (s *Store) AppendDatasetCreate(name string, facts []ast.Atom) error {
	return s.append(func(st *symtab) *iop {
		return &iop{kind: opDatasetCreate, ds: st.internStr(name), adds: st.internFacts(facts)}
	})
}

// AppendDatasetDelete logs dataset removal.
func (s *Store) AppendDatasetDelete(name string) error {
	return s.append(func(st *symtab) *iop {
		return &iop{kind: opDatasetDelete, ds: st.internStr(name)}
	})
}

// AppendFacts logs one fact mutation batch: retractions then
// insertions, with an atom present in both treated as a no-op —
// exactly the server's update semantics.
func (s *Store) AppendFacts(dataset string, adds, dels []ast.Atom) error {
	return s.append(func(st *symtab) *iop {
		return &iop{
			kind: opFacts,
			ds:   st.internStr(dataset),
			adds: st.internFacts(adds),
			dels: st.internFacts(dels),
		}
	})
}

// AppendViewRegister logs view registration.
func (s *Store) AppendViewRegister(dataset string, v ViewDef) error {
	return s.append(func(st *symtab) *iop {
		return &iop{
			kind: opViewRegister, ds: st.internStr(dataset), view: st.internStr(v.Name),
			prog: v.Program, ics: v.ICs, optimized: v.Optimized,
		}
	})
}

// AppendViewDrop logs view removal.
func (s *Store) AppendViewDrop(dataset, view string) error {
	return s.append(func(st *symtab) *iop {
		return &iop{kind: opViewDrop, ds: st.internStr(dataset), view: st.internStr(view)}
	})
}

// append encodes one operation, writes it to the WAL under the fsync
// policy, applies it to the in-memory mirror, and auto-checkpoints
// when the configured record count is reached. The operation is
// durable (per the policy) when append returns nil; on error nothing
// is applied.
func (s *Store) append(build func(*symtab) *iop) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	nsyms := len(s.syms.syms)
	op := build(s.syms)
	if s.wal != nil {
		rec := frame(encodePayload(op, s.syms, nsyms))
		if _, err := s.wal.Write(rec); err != nil {
			s.syms.rollback(nsyms)
			return fmt.Errorf("store: wal append: %w", err)
		}
		if s.opts.Fsync == FsyncAlways {
			if err := s.wal.Sync(); err != nil {
				// The write may or may not be durable; the mirror stays
				// behind it either way, matching replay (which would also
				// apply the record if it survived).
				s.syms.rollback(nsyms)
				return fmt.Errorf("store: wal fsync: %w", err)
			}
		}
		s.walBytes += int64(len(rec))
	}
	s.appends++
	s.apply(op)
	s.sinceCkpt++
	if s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery {
		if err := s.checkpointLocked(); err != nil {
			return fmt.Errorf("store: auto-checkpoint: %w", err)
		}
	}
	return nil
}

// apply mutates the mirror. Replay calls it with decoded records, the
// live path with freshly encoded ones, so mirror state is always a
// pure function of the durable operation sequence.
func (s *Store) apply(op *iop) {
	name := s.syms.str(op.ds)
	switch op.kind {
	case opDatasetCreate:
		if _, ok := s.datasets[name]; ok {
			return
		}
		ds := newDsState()
		s.datasets[name] = ds
		s.applyFacts(ds, op.adds, nil)
	case opDatasetDelete:
		delete(s.datasets, name)
	case opFacts:
		if ds, ok := s.datasets[name]; ok {
			s.applyFacts(ds, op.adds, op.dels)
		}
	case opViewRegister:
		if ds, ok := s.datasets[name]; ok {
			vname := s.syms.str(op.view)
			if _, exists := ds.views[vname]; !exists {
				ds.views[vname] = ViewDef{Name: vname, Program: op.prog, ICs: op.ics, Optimized: op.optimized}
			}
		}
	case opViewDrop:
		if ds, ok := s.datasets[name]; ok {
			delete(ds.views, s.syms.str(op.view))
		}
	}
}

// applyFacts applies retractions then insertions. A fact in both lists
// is a no-op; predicates that lost rows get their sketches rebuilt
// from the survivors (set semantics keep that bit-identical to an
// insert-only history).
func (s *Store) applyFacts(ds *dsState, adds, dels []ifact) {
	if len(dels) > 0 {
		inAdds := make(map[uint32]map[string]bool)
		for _, f := range adds {
			m := inAdds[f.pred]
			if m == nil {
				m = map[string]bool{}
				inAdds[f.pred] = m
			}
			m[rowKey(f.row)] = true
		}
		dirty := map[string]*predState{}
		for _, f := range dels {
			k := rowKey(f.row)
			if inAdds[f.pred][k] {
				continue
			}
			pname := s.syms.str(f.pred)
			ps := ds.preds[pname]
			if ps == nil {
				continue
			}
			if _, ok := ps.rows[k]; ok {
				delete(ps.rows, k)
				dirty[pname] = ps
			}
		}
		for _, ps := range dirty {
			ps.rebuildSketches()
		}
	}
	for _, f := range adds {
		pname := s.syms.str(f.pred)
		ps := ds.preds[pname]
		if ps == nil {
			ps = newPredState(len(f.row))
			ds.preds[pname] = ps
		}
		ps.add(f.row)
	}
}

// --- introspection (tests, benchmarks, differential checks) ----------

// Datasets returns the dataset names, sorted.
func (s *Store) Datasets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Facts returns a dataset's facts in deterministic (predicate, row)
// order, or nil when the dataset does not exist.
func (s *Store) Facts(dataset string) []ast.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := s.datasets[dataset]
	if ds == nil {
		return nil
	}
	return s.factsLocked(ds)
}

func (s *Store) factsLocked(ds *dsState) []ast.Atom {
	preds := make([]string, 0, len(ds.preds))
	for p := range ds.preds {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var out []ast.Atom
	for _, p := range preds {
		ps := ds.preds[p]
		pred := s.syms.internStr(p) // known: no new id
		for _, row := range ps.sortedRows() {
			out = append(out, s.syms.atom(ifact{pred: pred, row: row}))
		}
	}
	return out
}

// Views returns a dataset's registered views sorted by name.
func (s *Store) Views(dataset string) []ViewDef {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := s.datasets[dataset]
	if ds == nil {
		return nil
	}
	return viewList(ds)
}

func viewList(ds *dsState) []ViewDef {
	out := make([]ViewDef, 0, len(ds.views))
	for _, v := range ds.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rows returns a predicate's interned rows in lexicographic order.
func (s *Store) Rows(dataset, pred string) [][]uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds := s.datasets[dataset]; ds != nil {
		if ps := ds.preds[pred]; ps != nil {
			return ps.sortedRows()
		}
	}
	return nil
}

// Sketches returns a predicate's per-column distinct sketches. The
// returned slice is live; callers must treat it as read-only.
func (s *Store) Sketches(dataset, pred string) []eval.ColSketch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds := s.datasets[dataset]; ds != nil {
		if ps := ds.preds[pred]; ps != nil {
			return ps.sketches
		}
	}
	return nil
}

// DiffState compares the full durable state of two stores — datasets,
// views, interned rows, and per-column sketches — and returns a
// human-readable description of the first difference, or "" when they
// are bit-identical. Symbol-table-dependent state (spilled sketches)
// compares equal only when both stores assigned identical ids, which
// is exactly the reproducibility recovery must provide.
func (s *Store) DiffState(o *Store) string {
	a, b := s.Datasets(), o.Datasets()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		return fmt.Sprintf("datasets %v vs %v", a, b)
	}
	for _, name := range a {
		av, bv := s.Views(name), o.Views(name)
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			return fmt.Sprintf("dataset %s views %v vs %v", name, av, bv)
		}
		s.mu.Lock()
		preds := make([]string, 0)
		for p := range s.datasets[name].preds {
			preds = append(preds, p)
		}
		s.mu.Unlock()
		o.mu.Lock()
		for p := range o.datasets[name].preds {
			found := false
			for _, q := range preds {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				preds = append(preds, p)
			}
		}
		o.mu.Unlock()
		sort.Strings(preds)
		for _, p := range preds {
			ar, br := s.Rows(name, p), o.Rows(name, p)
			if fmt.Sprint(ar) != fmt.Sprint(br) {
				return fmt.Sprintf("dataset %s pred %s rows differ (%d vs %d)", name, p, len(ar), len(br))
			}
			as, bs := s.Sketches(name, p), o.Sketches(name, p)
			if len(as) != len(bs) {
				return fmt.Sprintf("dataset %s pred %s sketch arity %d vs %d", name, p, len(as), len(bs))
			}
			for j := range as {
				if !as[j].Equal(&bs[j]) {
					return fmt.Sprintf("dataset %s pred %s column %d sketches differ", name, p, j)
				}
			}
		}
	}
	return ""
}

// snapshotLocked renders the mirror as the public checkpoint-base
// form, used both by Recovered and by tests.
func (s *Store) snapshotLocked() []DatasetSnapshot {
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DatasetSnapshot, 0, len(names))
	for _, name := range names {
		ds := s.datasets[name]
		out = append(out, DatasetSnapshot{Name: name, Facts: s.factsLocked(ds), Views: viewList(ds)})
	}
	return out
}

// publicOp converts a decoded record to atom-level form.
func (s *Store) publicOp(op *iop) Op {
	out := Op{Dataset: s.syms.str(op.ds)}
	switch op.kind {
	case opDatasetCreate:
		out.Kind = OpDatasetCreate
	case opDatasetDelete:
		out.Kind = OpDatasetDelete
	case opFacts:
		out.Kind = OpFacts
	case opViewRegister:
		out.Kind = OpViewRegister
		out.View = ViewDef{Name: s.syms.str(op.view), Program: op.prog, ICs: op.ics, Optimized: op.optimized}
	case opViewDrop:
		out.Kind = OpViewDrop
		out.View = ViewDef{Name: s.syms.str(op.view)}
	}
	for _, f := range op.adds {
		out.Adds = append(out.Adds, s.syms.atom(f))
	}
	for _, f := range op.dels {
		out.Dels = append(out.Dels, s.syms.atom(f))
	}
	return out
}

// Checkpoint writes the current state as an immutable segment,
// truncates the WAL, and updates the manifest. Ephemeral stores only
// reset the auto-checkpoint counter.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.checkpointLocked()
}

func filename(dir, prefix string, seq uint64, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%06d%s", prefix, seq, ext))
}
