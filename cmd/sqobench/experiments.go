package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	sqo "repro"
	"repro/internal/chase"
	"repro/internal/server"
	"repro/internal/tcm"
	"repro/internal/workload"
)

// runF1 reproduces Figure 1: the query forest of the Section 4
// running example must have exactly three roots (p1, p2, p3) and the
// rewritten program exactly the six rules s1..s6 (plus wrappers).
func runF1() {
	p := sqo.MustParseProgram(figure1Src)
	ics := sqo.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	start := time.Now()
	res, err := sqo.Optimize(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	core := 0
	for _, r := range res.Program.Rules {
		if r.Head.Pred != "p" {
			core++
		}
	}
	s := res.Tree.Stats()
	fmt.Printf("roots=%d (paper: 3)   core rules=%d (paper: s1..s6 = 6)   construction=%v\n",
		s.Roots, core, elapsed.Round(time.Microsecond))
	fmt.Println("rewritten program:")
	fmt.Print(sqo.FormatProgram(res.Program))
}

// runE1 measures Example 3.1: the ic ":- startPoint(X), endPoint(Y),
// Y <= X" adds Y > X to goodPath, cutting the start x end join.
func runE1() {
	// Example 3.1 rewrites only rule r3, so the experiment isolates it:
	// path is materialized as an EDB relation and the program is the
	// single goodPath rule. The residue Y > X skips the endPoint join
	// for the backward path tuples — real work under the paper's
	// 1995-era scan-based cost model, largely absorbed by hash
	// indexes (both engines reported).
	p := sqo.MustParseProgram(`
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := sqo.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	res, err := sqo.Optimize(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	shapes := [][2]int{{20, 20}, {40, 40}, {80, 80}}
	if *quick {
		shapes = [][2]int{{20, 20}}
	}
	header("starts k", "fanout m", "engine", "orig probes", "opt probes", "speedup", "agree")
	for _, sh := range shapes {
		db := sqo.NewDBFrom(workload.StarPaths(sh[0], sh[1]))
		for _, eng := range engines() {
			mo := measureWith(p, db, eng.opts)
			mr := measureWith(res.Program, db, eng.opts)
			fmt.Printf("%8d | %8d | %7s | %11d | %10d | %7s | %v\n",
				sh[0], sh[1], eng.name, mo.probes, mr.probes,
				ratio(mo.probes, mr.probes), mo.answers == mr.answers)
		}
	}
}

// runE2 measures the Section 3 example: thresholds pushed through the
// recursion eliminate the sub-100 chain entirely.
func runE2() {
	p := sqo.MustParseProgram(goodPathSrc)
	ics := sqo.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	res, err := sqo.Optimize(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	lows := []int{50, 100, 200, 400}
	if *quick {
		lows = []int{50, 100}
	}
	header("lowN", "engine", "orig derived", "opt derived", "derived speedup", "orig probes", "opt probes", "probe speedup")
	for _, low := range lows {
		db := sqo.NewDBFrom(workload.GoodPath(low, 100, 40))
		for _, eng := range engines() {
			mo := measureWith(p, db, eng.opts)
			mr := measureWith(res.Program, db, eng.opts)
			fmt.Printf("%4d | %7s | %12d | %11d | %15s | %11d | %10d | %13s\n",
				low, eng.name, mo.derived, mr.derived, ratio(mo.derived, mr.derived),
				mo.probes, mr.probes, ratio(mo.probes, mr.probes))
		}
	}
}

// runE3 measures the Figure 1 semantics: the rewritten program never
// attempts the a-then-b joins the constraint forbids.
func runE3() {
	p := sqo.MustParseProgram(figure1Src)
	ics := sqo.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := sqo.Optimize(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	shapes := [][3]int{{4, 10, 10}, {8, 14, 14}, {12, 18, 18}}
	if *quick {
		shapes = [][3]int{{4, 10, 10}}
	}
	header("width", "bLen", "aLen", "engine", "orig probes", "opt probes", "speedup", "agree")
	for _, sh := range shapes {
		db := sqo.NewDBFrom(workload.ABComb(sh[0], sh[1], sh[2]))
		for _, eng := range engines() {
			mo := measureWith(p, db, eng.opts)
			mr := measureWith(res.Program, db, eng.opts)
			fmt.Printf("%5d | %4d | %4d | %7s | %11d | %10d | %7s | %v\n",
				sh[0], sh[1], sh[2], eng.name, mo.probes, mr.probes,
				ratio(mo.probes, mr.probes), mo.answers == mr.answers)
		}
	}
}

// runE4 measures construction cost as the number of edge flavours and
// chain constraints grows (the doubly-exponential worst case of
// Theorem 5.1 stays out of reach of small k, but growth is visible).
func runE4() {
	ks := []int{1, 2, 3, 4}
	if *quick {
		ks = []int{1, 2, 3}
	}
	header("flavours k", "rules", "ics", "goal nodes", "rule nodes", "adornments", "time")
	for _, k := range ks {
		src := ""
		for i := 0; i < k; i++ {
			src += fmt.Sprintf("p(X, Y) :- e%d(X, Y).\n", i)
			src += fmt.Sprintf("p(X, Y) :- e%d(X, Z), p(Z, Y).\n", i)
		}
		src += "?- p.\n"
		icsSrc := ""
		for i := 0; i+1 < k; i++ {
			icsSrc += fmt.Sprintf(":- e%d(X, Y), e%d(Y, Z).\n", i+1, i)
		}
		p := sqo.MustParseProgram(src)
		ics := sqo.MustParseICs(icsSrc)
		start := time.Now()
		res, err := sqo.Optimize(p, ics)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		s := res.Tree.Stats()
		fmt.Printf("%10d | %5d | %3d | %10d | %10d | %10d | %v\n",
			k, 2*k, len(ics), s.GoalNodes, s.RuleNodes, s.Adornments, elapsed.Round(time.Microsecond))
	}
}

// runE5 measures NP emptiness decisions (Theorem 5.2(1)) on join
// chains of growing length.
func runE5() {
	ls := []int{2, 4, 6, 8}
	if *quick {
		ls = []int{2, 4}
	}
	header("chain len", "verdict", "time")
	for _, l := range ls {
		src := fmt.Sprintf("q(X0, X%d) :- %s.\n?- q.\n", l, joinChain(l))
		p := sqo.MustParseProgram(src)
		// Forbid the middle join.
		mid := l / 2
		ics := sqo.MustParseICs(fmt.Sprintf(":- r%d(X, Y), r%d(Y, Z).", mid-1, mid))
		start := time.Now()
		empty, decided, err := sqo.Empty(p, ics, sqo.EmptinessOptions{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "nonempty"
		if empty {
			verdict = "empty"
		}
		if !decided {
			verdict = "unknown"
		}
		fmt.Printf("%9d | %8s | %v\n", l, verdict, time.Since(start).Round(time.Microsecond))
	}
}

func joinChain(l int) string {
	s := ""
	for i := 0; i < l; i++ {
		s += fmt.Sprintf("r%d(X%d, X%d), ", i, i, i+1)
	}
	s = s[:len(s)-2]
	// Head variables X0 and Xl.
	return s
}

// runE6 cross-checks the two directions of Proposition 5.1 on fixed
// instances: satisfiability computed directly must equal
// non-containment computed through the reduction.
func runE6() {
	cases := []struct {
		name string
		prog string
		ics  string
	}{
		{"unsat join", `q(X, Z) :- a(X, Y), b(Y, Z).
			?- q.`, `:- a(X, Y), b(Y, Z).`},
		{"sat join", `q(X, Z) :- a(X, Y), b(W, Z).
			?- q.`, `:- a(X, Y), b(Y, Z).`},
		{"recursive", `q(X, Y) :- a(X, Y).
			q(X, Y) :- a(X, Z), q(Z, Y).
			?- q.`, `:- a(X, Y), a(Y, Z).`},
	}
	header("case", "satisfiable", "reduction agrees", "time")
	for _, c := range cases {
		p := sqo.MustParseProgram(c.prog)
		ics := sqo.MustParseICs(c.ics)
		start := time.Now()
		sat, err := sqo.Satisfiable(p, ics)
		if err != nil {
			log.Fatal(err)
		}
		rp, ucq, err := satAsNonContainment(p, ics)
		if err != nil {
			log.Fatal(err)
		}
		contained, err := sqo.ProgramContainedInUCQ(rp, ucq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s | %11v | %16v | %v\n",
			c.name, sat, sat == !contained, time.Since(start).Round(time.Microsecond))
	}
}

// runE7 exercises the Theorem 5.4 reduction on concrete machines.
func runE7() {
	type mcase struct {
		name  string
		m     *sqo.Machine
		steps int
	}
	cases := []mcase{
		{"halting-2", tcm.Halting2Step(), 10},
		{"countdown-2", tcm.CountdownMachine(2), 50},
		{"countdown-4", tcm.CountdownMachine(4), 100},
		{"diverging", tcm.Diverging(), 12},
	}
	if *quick {
		cases = cases[:2]
	}
	header("machine", "halted", "trace consistent", "halt derived", "EDB size", "ICs")
	for _, c := range cases {
		prog, ics, err := sqo.EncodeTwoCounter(c.m)
		if err != nil {
			log.Fatal(err)
		}
		facts, halted := sqo.TwoCounterTraceDB(c.m, c.steps)
		consistent, err := chase.IsConsistent(facts, ics)
		if err != nil {
			log.Fatal(err)
		}
		tuples, _, err := sqo.Query(prog, sqo.NewDBFrom(facts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s | %6v | %16v | %12v | %8d | %3d\n",
			c.name, halted, consistent, len(tuples) == 1, len(facts), len(ics))
	}
}

// runE8 demonstrates Proposition 5.2: recursion cannot resurrect an
// empty initialization.
func runE8() {
	p := sqo.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		q(X, Z) :- c(X, Y), q(Y, Z).
		?- q.
	`)
	ics := sqo.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	empty, decided, err := sqo.Empty(p, ics, sqo.EmptinessOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sat, err := sqo.Satisfiable(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("init rules unsatisfiable -> program empty=%v (decided=%v); full query-tree satisfiability agrees: satisfiable=%v\n",
		empty, decided, sat)
}

// runA1 ablates the pipeline passes on the E2 workload.
func runA1() {
	p := sqo.MustParseProgram(goodPathSrc)
	ics := sqo.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	db := sqo.NewDBFrom(workload.GoodPath(200, 100, 40))
	configs := []struct {
		name string
		opts sqo.Options
	}{
		{"full pipeline", sqo.DefaultOptions()},
		{"no push-order", sqo.Options{NormalizeOrder: true, LocalRewrite: true, PushOrder: false}},
		{"no local-rewrite", sqo.Options{NormalizeOrder: true, LocalRewrite: false, PushOrder: true}},
		{"core only", sqo.Options{}},
	}
	base := measure(p, db)
	header("configuration", "derived", "probes", "probe speedup vs original")
	fmt.Printf("%-16s | %7d | %8d | %s\n", "original program", base.derived, base.probes, "1.0x")
	for _, c := range configs {
		res, err := sqo.OptimizeWith(p, ics, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		m := measure(res.Program, db)
		if m.answers != base.answers {
			log.Fatalf("config %q changed the answers", c.name)
		}
		fmt.Printf("%-16s | %7d | %8d | %s\n", c.name, m.derived, m.probes, ratio(base.probes, m.probes))
	}
}

// runA2 compares the [CGM88] per-rule baseline with the query tree on
// the Figure 1 workload: the baseline cannot see the cross-rule
// interaction, so it leaves the program unchanged.
func runA2() {
	p := sqo.MustParseProgram(figure1Src)
	ics := sqo.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	res, err := sqo.Optimize(p, ics)
	if err != nil {
		log.Fatal(err)
	}
	baseline := sqo.BaselineOptimize(p, ics)
	db := sqo.NewDBFrom(workload.ABComb(8, 14, 14))
	header("optimizer", "rules", "engine", "probes", "speedup")
	for _, eng := range engines() {
		mo := measureWith(p, db, eng.opts)
		mb := measureWith(baseline, db, eng.opts)
		mt := measureWith(res.Program, db, eng.opts)
		fmt.Printf("%-12s | %5d | %7s | %8d | %s\n", "none", len(p.Rules), eng.name, mo.probes, "1.0x")
		fmt.Printf("%-12s | %5d | %7s | %8d | %s\n", "[CGM88]", len(baseline.Rules), eng.name, mb.probes, ratio(mo.probes, mb.probes))
		fmt.Printf("%-12s | %5d | %7s | %8d | %s\n", "query tree", len(res.Program.Rules), eng.name, mt.probes, ratio(mo.probes, mt.probes))
	}
}

// runA3 ablates the evaluation engine on a plain transitive closure.
func runA3() {
	p := sqo.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := sqo.NewDBFrom(workload.Chain(1, 60))
	configs := []struct {
		name string
		opts sqo.EvalOptions
	}{
		{"semi-naive + index", sqo.EvalOptions{Seminaive: true, UseIndex: true, CompilePlans: true}},
		{"semi-naive, no index", sqo.EvalOptions{Seminaive: true, UseIndex: false, CompilePlans: true}},
		{"naive + index", sqo.EvalOptions{Seminaive: false, UseIndex: true, CompilePlans: true}},
		{"naive, no index", sqo.EvalOptions{Seminaive: false, UseIndex: false, CompilePlans: true}},
	}
	header("engine", "probes", "time")
	for _, c := range configs {
		start := time.Now()
		_, stats, err := sqo.EvalWith(p, db, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s | %9d | %v\n", c.name, stats.JoinProbes, time.Since(start).Round(time.Microsecond))
	}
}

// runP1 measures parallel semi-naive scaling: a workers sweep on a
// large transitive closure and a goodpath workload, reporting
// wall-clock speedup over the sequential engine and checking that
// answers and stats are identical at every worker count (the engine's
// determinism guarantee). Speedup tracks available cores: on a
// single-CPU host every worker count runs the same work on one core,
// so ~1.0x there is expected, not a regression.
func runP1() {
	type pcase struct {
		name string
		prog *sqo.Program
		db   *sqo.DB
	}
	tc := sqo.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	gp := sqo.MustParseProgram(goodPathSrc)
	cases := []pcase{
		{"transclosure chain(250)", tc, sqo.NewDBFrom(workload.Chain(1, 250))},
		{"goodpath(600,100,150)", gp, sqo.NewDBFrom(workload.GoodPath(600, 100, 150))},
	}
	if *quick {
		cases = []pcase{
			{"transclosure chain(120)", tc, sqo.NewDBFrom(workload.Chain(1, 120))},
			{"goodpath(200,100,60)", gp, sqo.NewDBFrom(workload.GoodPath(200, 100, 60))},
		}
	}
	fmt.Printf("host CPUs: %d\n", runtime.NumCPU())
	header("workload", "workers", "time", "speedup", "agree")
	for _, c := range cases {
		var base measurement
		for _, w := range []int{1, 2, 4, 8} {
			opts := sqo.DefaultEvalOptions()
			opts.Workers = w
			m := measureWith(c.prog, c.db, opts)
			// Best of 3 to damp scheduler noise.
			for rep := 0; rep < 2; rep++ {
				if r := measureWith(c.prog, c.db, opts); r.elapsed < m.elapsed {
					m.elapsed = r.elapsed
				}
			}
			if w == 1 {
				base = m
			}
			agree := m.answers == base.answers && m.derived == base.derived && m.probes == base.probes
			fmt.Printf("%-24s | %7d | %12v | %6.2fx | %v\n",
				c.name, w, m.elapsed.Round(time.Microsecond),
				float64(base.elapsed)/float64(m.elapsed), agree)
		}
	}
}

// runP2 measures the amortization the sqod service's rewrite cache
// buys. The first request for a (program, ICs, options) triple pays
// the full query-tree construction; every later identical request
// pays a canonical hash plus a map lookup. The table reports the
// median cold rewrite latency, the median cache-hit latency (hash
// included, since the service computes it per request), and the
// resulting amortization factor. A differential column confirms the
// cached rewrite is byte-identical to a fresh one.
func runP2() {
	type pcase struct {
		name string
		src  string
		ics  string
	}
	cases := []pcase{
		{"figure1 (a.b forbidden)", figure1Src, `:- a(X, Y), b(Y, Z).`},
		{"goodpath thresholds", goodPathSrc, `
			:- startPoint(X), step(X, Y), X < 100.
			:- step(X, Y), X >= Y.
		`},
		{"funcdep manager", `
			conflict(E) :- manages(E, M1), manages(E, M2), M1 < M2.
			boss(E, M) :- manages(E, M).
			boss(E, M) :- manages(E, X), boss(X, M).
			top(E, M) :- boss(E, M), ceo(M).
			?- top.
		`, `:- manages(E, M1), manages(E, M2), M1 != M2.`},
	}
	colds, hits := 50, 5000
	if *quick {
		colds, hits = 10, 500
	}
	ctx := context.Background()
	header("workload", "cold rewrite", "cache hit", "amortization", "identical")
	for _, c := range cases {
		p := sqo.MustParseProgram(c.src)
		ics := sqo.MustParseICs(c.ics)
		opts := sqo.DefaultOptions()

		coldSamples := make([]time.Duration, colds)
		var fresh *sqo.Result
		for i := range coldSamples {
			start := time.Now()
			res, err := sqo.OptimizeCtx(ctx, p, ics, opts)
			if err != nil {
				log.Fatal(err)
			}
			coldSamples[i] = time.Since(start)
			fresh = res
		}

		// Warm a service-shaped cache, then time the steady-state path:
		// key derivation + GetOrCompute hit, exactly what sqod does per
		// request once the rewrite is resident.
		cache := server.NewCache(8)
		key := server.CacheKey(p, ics, opts)
		cached, _, err := cache.GetOrCompute(ctx, key, func() (*sqo.Result, error) {
			return sqo.OptimizeCtx(ctx, p, ics, opts)
		})
		if err != nil {
			log.Fatal(err)
		}
		hitSamples := make([]time.Duration, hits)
		recompute := func() (*sqo.Result, error) {
			return nil, fmt.Errorf("cache hit expected; compute ran")
		}
		for i := range hitSamples {
			start := time.Now()
			k := server.CacheKey(p, ics, opts)
			if _, hit, err := cache.GetOrCompute(ctx, k, recompute); err != nil || !hit {
				log.Fatalf("expected a cache hit (hit=%v err=%v)", hit, err)
			}
			hitSamples[i] = time.Since(start)
		}

		cold, hit := median(coldSamples), median(hitSamples)
		identical := sqo.FormatProgram(cached.Program) == sqo.FormatProgram(fresh.Program)
		fmt.Printf("%-24s | %12v | %11v | %12s | %v\n",
			c.name, cold.Round(time.Microsecond), hit.Round(100*time.Nanosecond),
			ratio(int64(cold), int64(hit)), identical)
	}
	fmt.Println("(request 1 pays the cold rewrite; request n pays the hit — evaluation cost is unchanged either way)")
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// satAsNonContainment wraps the Proposition 5.1 reduction for E6.
func satAsNonContainment(p *sqo.Program, ics []sqo.IC) (*sqo.Program, []sqo.Rule, error) {
	return sqo.SatisfiabilityAsNonContainment(p, ics)
}

// engines lists the two join engines every comparison reports: the
// scan-based engine matches the paper's 1995-era cost model, the
// hash-indexed one a modern evaluator.
type engineCfg struct {
	name string
	opts sqo.EvalOptions
}

func engines() []engineCfg {
	scan := sqo.DefaultEvalOptions()
	scan.UseIndex = false
	return []engineCfg{
		{"scan", scan},
		{"indexed", sqo.DefaultEvalOptions()},
	}
}
