package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ast"
)

// FuzzWAL feeds arbitrary bytes through the WAL replay path: torn
// writes, truncated tails, corrupted CRCs, hostile counts and symbol
// ids. The invariants are the recovery contract — never panic, report
// malformation only as ErrCorrupt, decode every record before a
// corruption deterministically, and round-trip cleanly when the input
// is a valid log (possibly with a torn suffix).
func FuzzWAL(f *testing.F) {
	// Seed with real logs so the fuzzer starts from structure-aware
	// inputs rather than pure noise.
	st := newSymtab()
	var good []byte
	for _, op := range []*iop{
		{kind: opDatasetCreate, ds: st.internStr("d"), adds: st.internFacts([]ast.Atom{
			ast.NewAtom("edge", ast.S("a"), ast.S("b")),
			ast.NewAtom("w", ast.N(1.5), ast.S("a")),
		})},
		{kind: opFacts, ds: st.internStr("d"),
			adds: st.internFacts([]ast.Atom{ast.NewAtom("edge", ast.S("b"), ast.S("c"))}),
			dels: st.internFacts([]ast.Atom{ast.NewAtom("edge", ast.S("a"), ast.S("b"))})},
		{kind: opViewRegister, ds: st.internStr("d"), view: st.internStr("v"),
			prog: "q(X) :- edge(X, Y).\n?- q.\n", ics: ":- edge(X, X).", optimized: true},
		{kind: opViewDrop, ds: st.internStr("d"), view: st.internStr("v")},
		{kind: opDatasetDelete, ds: st.internStr("d")},
	} {
		good = append(good, frame(encodePayload(op, st, 0))...)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])            // torn tail
	f.Add(append([]byte{}, good[8:]...)) // missing frame header
	corrupted := append([]byte{}, good...)
	corrupted[12] ^= 0xff
	f.Add(corrupted) // CRC mismatch in record 1
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge claimed length

	f.Fuzz(func(t *testing.T, data []byte) {
		st := newSymtab()
		res := replay(data, st)
		if res.truncated != nil && !errors.Is(res.truncated, ErrCorrupt) {
			t.Fatalf("truncation error does not wrap ErrCorrupt: %v", res.truncated)
		}
		if res.goodBytes > len(data) {
			t.Fatalf("goodBytes %d > input %d", res.goodBytes, len(data))
		}
		if len(res.ops) != res.records {
			t.Fatalf("ops %d != records %d", len(res.ops), res.records)
		}
		// Determinism: replaying the good prefix alone must yield the
		// same operations and a clean tail.
		st2 := newSymtab()
		res2 := replay(data[:res.goodBytes], st2)
		if res2.records != res.records || res2.truncated != nil {
			t.Fatalf("good prefix re-replay: records %d vs %d, truncated %v",
				res2.records, res.records, res2.truncated)
		}
		// Re-encoding every decoded op against a fresh symtab must
		// produce a log that replays to the same record count — the
		// decode side accepts exactly what the encode side emits.
		st3 := newSymtab()
		var reenc []byte
		for _, op := range res.ops {
			pub := publicFields(op, st2)
			n := len(st3.syms)
			op2 := reintern(pub, st3)
			reenc = append(reenc, frame(encodePayload(op2, st3, n))...)
		}
		res3 := replay(reenc, newSymtab())
		if res3.records != res.records || res3.truncated != nil {
			t.Fatalf("re-encoded log: records %d vs %d, truncated %v",
				res3.records, res.records, res3.truncated)
		}
	})
}

// publicFields lifts a decoded op to symbol-free form so it can be
// re-interned against a different symtab.
type pubOp struct {
	kind       opKind
	ds, view   string
	prog, ics  string
	optimized  bool
	adds, dels []ast.Atom
}

func publicFields(op *iop, st *symtab) pubOp {
	p := pubOp{kind: op.kind, ds: st.str(op.ds), prog: op.prog, ics: op.ics, optimized: op.optimized}
	if op.kind == opViewRegister || op.kind == opViewDrop {
		p.view = st.str(op.view)
	}
	for _, f := range op.adds {
		p.adds = append(p.adds, st.atom(f))
	}
	for _, f := range op.dels {
		p.dels = append(p.dels, st.atom(f))
	}
	return p
}

func reintern(p pubOp, st *symtab) *iop {
	op := &iop{kind: p.kind, ds: st.internStr(p.ds), prog: p.prog, ics: p.ics, optimized: p.optimized}
	if p.kind == opViewRegister || p.kind == opViewDrop {
		op.view = st.internStr(p.view)
	}
	op.adds = st.internFacts(p.adds)
	op.dels = st.internFacts(p.dels)
	return op
}

// FuzzSegment drives arbitrary bytes through the checkpoint-segment
// loader: same contract as FuzzWAL — clean ErrCorrupt errors, never a
// panic, and valid segments load completely.
func FuzzSegment(f *testing.F) {
	s, _, err := Open("", Options{})
	if err != nil {
		f.Fatal(err)
	}
	_ = s.AppendDatasetCreate("d", []ast.Atom{
		ast.NewAtom("edge", ast.S("a"), ast.S("b")),
		ast.NewAtom("w", ast.N(2.25)),
	})
	_ = s.AppendViewRegister("d", ViewDef{Name: "v", Program: "q(X) :- edge(X, Y).\n?- q.\n"})
	good := s.encodeSegment()
	f.Add(good)
	f.Add(good[:len(good)-6])
	mangled := append([]byte{}, good...)
	mangled[10] ^= 0x40
	f.Add(mangled)
	f.Add([]byte("sqos"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := &Store{syms: newSymtab(), datasets: map[string]*dsState{}}
		if err := fresh.loadSegment(data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("segment error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// A segment that loads must re-encode to a canonical image that
		// round-trips to itself: encode(load(x)) is a fixpoint.
		enc1 := fresh.encodeSegment()
		again := &Store{syms: newSymtab(), datasets: map[string]*dsState{}}
		if err := again.loadSegment(enc1); err != nil {
			t.Fatalf("re-encoded segment fails to load: %v", err)
		}
		if enc2 := again.encodeSegment(); !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode/load/encode is not a fixpoint: %d vs %d bytes", len(enc1), len(enc2))
		}
	})
}
