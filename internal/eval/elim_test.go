package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// trendyDB builds the classical bounded workload: people trendy(i) for
// i in [0, people), and likes(i, 1000+i*100+j) for j in [0, items) —
// every person likes their own distinct items, so the full buys
// relation is the cross product of trendy people with every item
// anyone likes.
func trendyDB(people, items int) *DB {
	db := NewDB()
	for i := 0; i < people; i++ {
		db.AddFact(ast.NewAtom("trendy", ast.N(float64(i))))
		for j := 0; j < items; j++ {
			db.AddFact(ast.NewAtom("likes", ast.N(float64(i)), ast.N(float64(1000+i*100+j))))
		}
	}
	return db
}

const trendySrc = `
	buys(X, Y) :- likes(X, Y).
	buys(X, Y) :- trendy(X), buys(Z, Y).
	?- buys.`

// TestElimDifferentialBounded is the headline property: on a provably
// bounded program, answers are bit-identical with elimination off,
// auto, and on — across every engine, join-order policy, worker
// count, magic mode, and streaming setting.
func TestElimDifferentialBounded(t *testing.T) {
	for _, variant := range []string{
		trendySrc,
		// Bound point query: elim and magic stack.
		`buys(X, Y) :- likes(X, Y).
		 buys(X, Y) :- trendy(X), buys(Z, Y).
		 ?- buys(0, Y).`,
		// Piecewise-linear bounded program (witness depth 3).
		`q(X, Y) :- likes(X, Y).
		 q(X, Y) :- trendy(X), q(Z, Y).
		 q(X, Y) :- trendy(Y), q(X, Z).
		 ?- q.`,
	} {
		p := parser.MustParseProgram(variant)
		db := trendyDB(6, 4)
		var base []string
		baseLabel := ""
		for _, r := range engineRuns() {
			for _, elim := range []ElimMode{ElimOff, ElimAuto, ElimOn} {
				for _, magic := range []MagicMode{MagicOff, MagicAuto} {
					for _, stream := range []bool{false, true} {
						opts := r.opts
						opts.Elim = elim
						opts.Magic = magic
						opts.Stream = stream
						label := fmt.Sprintf("%s/elim=%s/magic=%s/stream=%v", r.label, elim, magic, stream)
						tuples, stats, err := QueryCtx(context.Background(), p, db, opts)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if wantElim := elim != ElimOff; stats.ElimApplied != wantElim {
							t.Fatalf("%s: ElimApplied = %v, want %v", label, stats.ElimApplied, wantElim)
						}
						if elim != ElimOff && stats.ElimChecked == 0 {
							t.Fatalf("%s: ElimChecked = 0, want > 0", label)
						}
						got := answerSet(tuples)
						if base == nil {
							base, baseLabel = got, label
							continue
						}
						if !reflect.DeepEqual(got, base) {
							t.Fatalf("answers diverged: %s (%d) vs %s (%d)\n%v\nvs\n%v",
								label, len(got), baseLabel, len(base), got, base)
						}
					}
				}
			}
		}
	}
}

// TestElimPointQueryPruning pins the ISSUE acceptance bound: on a
// bound point query over the trendy workload, elimination derives at
// least 10x fewer tuples than evaluating the fixpoint. Without
// elimination magic is impotent here — the recursive subgoal
// buys(Z, Y) carries no binding, so demand degenerates to the full
// relation — while on the flattened program the goal's binding
// restricts both flat rules.
func TestElimPointQueryPruning(t *testing.T) {
	p := parser.MustParseProgram(`
		buys(X, Y) :- likes(X, Y).
		buys(X, Y) :- trendy(X), buys(Z, Y).
		?- buys(0, Y).`)
	db := trendyDB(50, 20)
	opts := DefaultOptions()
	opts.Elim = ElimOff
	offTuples, offStats, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Elim = ElimAuto
	onTuples, onStats, err := QueryCtx(context.Background(), p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !onStats.ElimApplied {
		t.Fatal("ElimApplied = false, want true")
	}
	if !reflect.DeepEqual(answerSet(onTuples), answerSet(offTuples)) {
		t.Fatalf("answers diverged: %d vs %d tuples", len(onTuples), len(offTuples))
	}
	if onStats.TuplesDerived*10 > offStats.TuplesDerived {
		t.Errorf("elim derived %d tuples, want <= 1/10 of fixpoint's %d",
			onStats.TuplesDerived, offStats.TuplesDerived)
	}
	if onStats.JoinProbes*10 > offStats.JoinProbes {
		t.Errorf("elim probed %d, want <= 1/10 of fixpoint's %d",
			onStats.JoinProbes, offStats.JoinProbes)
	}
}

// TestElimFallbackTC: genuinely unbounded recursion (transitive
// closure) must fall back to the fixpoint with ElimApplied false and
// the analysis honestly counted — and answers unchanged, with magic
// still free to apply downstream.
func TestElimFallbackTC(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(0, Y).`)
	db := chainDB(30)
	for _, elim := range []ElimMode{ElimOff, ElimAuto, ElimOn} {
		opts := DefaultOptions()
		opts.Elim = elim
		tuples, stats, err := QueryCtx(context.Background(), p, db, opts)
		if err != nil {
			t.Fatalf("elim=%s: %v", elim, err)
		}
		if stats.ElimApplied {
			t.Errorf("elim=%s: ElimApplied = true on unbounded TC", elim)
		}
		if wantChecked := 0; elim != ElimOff {
			wantChecked = 1
			if stats.ElimChecked != wantChecked {
				t.Errorf("elim=%s: ElimChecked = %d, want %d", elim, stats.ElimChecked, wantChecked)
			}
		}
		if !stats.MagicApplied {
			t.Errorf("elim=%s: MagicApplied = false, want true (fallback keeps magic)", elim)
		}
		if len(tuples) != 30 {
			t.Errorf("elim=%s: %d answers, want 30", elim, len(tuples))
		}
	}
}

// TestElimModeValidation: unknown mode strings are rejected up front.
func TestElimModeValidation(t *testing.T) {
	p := parser.MustParseProgram(`p(X) :- e(X). ?- p.`)
	opts := DefaultOptions()
	opts.Elim = "sometimes"
	if _, _, err := QueryCtx(context.Background(), p, NewDB(), opts); err == nil {
		t.Fatal("bad elim mode accepted by QueryCtx")
	}
	if _, _, err := EvalCtx(context.Background(), p, NewDB(), opts); err == nil {
		t.Fatal("bad elim mode accepted by EvalCtx")
	}
	if _, err := ParseElimMode(""); err != nil {
		t.Fatalf("empty mode: %v", err)
	}
	if _, err := ParseElimMode("on"); err != nil {
		t.Fatalf("on: %v", err)
	}
}

// FuzzElim drives arbitrary programs with arbitrary binding patterns
// through the elimination path and asserts the one contract that
// matters: elim on (stacked with magic and streaming), across engines
// and worker counts, answers exactly like plain bottom-up evaluation
// of the same goal. Mirrors FuzzMagic's EDB construction; the
// bottom-up baseline decides evaluability.
func FuzzElim(f *testing.F) {
	f.Add(`buys(X, Y) :- likes(X, Y).
buys(X, Y) :- trendy(X), buys(Z, Y).
?- buys.`, uint8(1), uint8(1))
	f.Add(`path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path.`, uint8(2), uint8(1))
	f.Add(`q(X, Y) :- base(X, Y).
q(X, Y) :- left(X), q(Z, Y).
q(X, Y) :- right(Y), q(X, Z).
?- q.`, uint8(3), uint8(2))
	f.Add(`r(X) :- seed(X).
r(X) :- glue(X), r(Y), r(Z).
?- r.`, uint8(4), uint8(1))

	f.Fuzz(func(t *testing.T, src string, seed, bindMask uint8) {
		unit, err := parser.Parse(src)
		if err != nil {
			return
		}
		p := unit.Program
		if p.Query == "" {
			return
		}
		arity, err := p.PredArity()
		if err != nil {
			return
		}
		db := NewDB()
		for _, fact := range unit.Facts {
			if ar, ok := arity[fact.Pred]; ok && ar != fact.Arity() {
				return
			}
			arity[fact.Pred] = fact.Arity()
			db.AddFact(fact)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for pred := range p.EDB() {
			ar := arity[pred]
			if ar == 0 || ar > 4 {
				continue
			}
			for n := 0; n < 8; n++ {
				args := make([]ast.Term, ar)
				for j := range args {
					args[j] = ast.N(float64(rng.Intn(6)))
				}
				db.AddFact(ast.NewAtom(pred, args...))
			}
		}
		n := arity[p.Query]
		if n > 0 {
			goal := make([]ast.Term, n)
			for i := 0; i < n; i++ {
				if bindMask&(1<<i) != 0 {
					goal[i] = ast.N(float64(rng.Intn(6)))
				} else {
					goal[i] = ast.V(fmt.Sprintf("G%d", i))
				}
			}
			p.Goal = goal
		}

		off := Options{Seminaive: true, UseIndex: true, CompilePlans: true,
			Workers: 1, Elim: ElimOff, Magic: MagicOff, MaxTuples: 20000}
		baseTuples, _, err := QueryCtx(context.Background(), p, db, off)
		if err != nil {
			return // baseline decides evaluability
		}
		want := answerSet(baseTuples)
		for _, r := range engineRuns() {
			for _, stream := range []bool{false, true} {
				opts := r.opts
				opts.Elim = ElimOn
				opts.Stream = stream
				opts.MaxTuples = 40000 // rewrites add tuples, so allow headroom
				gotTuples, stats, err := QueryCtx(context.Background(), p, db, opts)
				if err != nil {
					if errors.Is(err, ErrBudget) {
						continue // rewrite overhead can exceed even the headroom
					}
					t.Fatalf("%s/stream=%v errored where baseline succeeded: %v", r.label, stream, err)
				}
				if got := answerSet(gotTuples); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/stream=%v: answers diverged (elim applied %v)\n got %v\nwant %v\ngoal %s",
						r.label, stream, stats.ElimApplied, got, want, p.GoalAtom())
				}
			}
		}
	})
}
