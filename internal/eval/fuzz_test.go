package eval

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// FuzzPlan drives arbitrary parsed programs through the legacy engine
// and the compiled engine under all three join-order policies, and
// asserts the engine's core contract: the answer set and the
// order-invariant statistics (iterations, rule firings, tuples
// derived) never depend on which policy picked the join order or how
// many workers ran. Inputs that fail to parse or fail stratification
// are skipped; inputs where the baseline errors (e.g. the MaxTuples
// guard trips) skip the cross-policy comparison, since abort points
// are not part of the contract.
func FuzzPlan(f *testing.F) {
	f.Add(`p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
?- p.`, uint8(1))
	f.Add(`q(X) :- a(X, Y), b(Y), !c(X).
r(X) :- q(X), a(X, X).
?- r.`, uint8(2))
	f.Add(`s(X, Z) :- e(X, Y), f(Y, Z), X < Z.
t(X) :- s(X, Y), s(Y, X).
?- t.`, uint8(3))
	f.Add(`even(X) :- zero(X).
even(Y) :- odd(X), succ(X, Y).
odd(Y) :- even(X), succ(X, Y).
?- even.`, uint8(4))
	f.Add(`w(X) :- g(X, 3), h(3, X).
?- w.`, uint8(5))

	f.Fuzz(func(t *testing.T, src string, seed uint8) {
		unit, err := parser.Parse(src)
		if err != nil {
			return
		}
		p := unit.Program
		arity, err := p.PredArity()
		if err != nil {
			return
		}
		// Deterministic small EDB: a handful of rows per extensional
		// predicate over a tiny domain, so joins actually join.
		db := NewDB()
		for _, fact := range unit.Facts {
			// Facts live outside the program, so PredArity does not see
			// them; skip inputs where a fact's arity conflicts with the
			// program's (or an earlier fact's) use of the predicate.
			if ar, ok := arity[fact.Pred]; ok && ar != fact.Arity() {
				return
			}
			arity[fact.Pred] = fact.Arity()
			db.AddFact(fact)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for pred := range p.EDB() {
			ar := arity[pred]
			if ar == 0 || ar > 4 {
				continue
			}
			for n := 0; n < 8; n++ {
				args := make([]ast.Term, ar)
				for j := range args {
					args[j] = ast.N(float64(rng.Intn(6)))
				}
				db.AddFact(ast.NewAtom(pred, args...))
			}
		}

		type run struct {
			label string
			opts  Options
		}
		runs := []run{
			{"legacy", Options{Seminaive: true, UseIndex: true, Workers: 1}},
			{"greedy", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1}},
			{"cost", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1, Policy: PolicyCost}},
			{"adaptive", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 1, Policy: PolicyAdaptive}},
			{"cost-w3", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 3, Policy: PolicyCost}},
			{"adaptive-w3", Options{Seminaive: true, UseIndex: true, CompilePlans: true, Workers: 3, Policy: PolicyAdaptive}},
		}
		type outcome struct {
			answers map[string][]string
			derived int64
			rounds  int
		}
		var base *outcome
		baseLabel := ""
		for _, r := range runs {
			r.opts.MaxTuples = 20000
			idb, stats, err := EvalCtx(context.Background(), p, db, r.opts)
			if err != nil {
				// The baseline decides whether this input evaluates at
				// all; abort points under resource guards may differ,
				// so an erroring baseline skips the whole comparison.
				if base != nil && stats.TuplesDerived < 20000 {
					t.Fatalf("%s errored where %s succeeded: %v", r.label, baseLabel, err)
				}
				return
			}
			got := &outcome{
				answers: map[string][]string{},
				derived: stats.TuplesDerived,
				rounds:  stats.Iterations,
			}
			for pred := range p.IDB() {
				got.answers[pred] = idb.SortedFacts(pred)
			}
			if base == nil {
				base, baseLabel = got, r.label
				continue
			}
			if !reflect.DeepEqual(got.answers, base.answers) {
				t.Fatalf("answers diverged: %s vs %s\n%v\nvs\n%v", r.label, baseLabel, got.answers, base.answers)
			}
			if got.derived != base.derived || got.rounds != base.rounds {
				t.Fatalf("order-invariant stats diverged: %s (derived=%d rounds=%d) vs %s (derived=%d rounds=%d)",
					r.label, got.derived, got.rounds, baseLabel, base.derived, base.rounds)
			}
		}
	})
}
