// querytree prints the query forest the optimizer builds for a
// program and its integrity constraints — the artifact shown in
// Figure 1 of the paper. With no input file it prints the forest of
// the paper's own running example.
//
// Usage:
//
//	querytree [file]
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	sqo "repro"
)

const figure1 = `
% Section 4 running example (Figure 1).
p(X, Y) :- a(X, Y).
p(X, Y) :- b(X, Y).
p(X, Y) :- a(X, Z), p(Z, Y).
p(X, Y) :- b(X, Z), p(Z, Y).
?- p.
:- a(X, Y), b(Y, Z).
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("querytree: ")
	src := figure1
	if len(os.Args) > 1 {
		var b []byte
		var err error
		if os.Args[1] == "-" {
			b, err = io.ReadAll(os.Stdin)
		} else {
			b, err = os.ReadFile(os.Args[1])
		}
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	} else {
		fmt.Println("% no input given; using the paper's Figure 1 example")
	}

	unit, err := sqo.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sqo.Optimize(unit.Program, unit.ICs)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	fmt.Print(sqo.Explain(res))
	s := res.Tree.Stats()
	fmt.Printf("\n%d goal nodes (%d live), %d rule nodes (%d live), %d roots (%d live)\n",
		s.GoalNodes, s.LiveGoals, s.RuleNodes, s.LiveRules, s.Roots, s.LiveRoots)
	fmt.Println("\nrewritten program:")
	fmt.Print(sqo.FormatProgram(res.Program))
}
