package ast

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	v := V("X")
	if !v.IsVar() || v.IsConst() {
		t.Fatalf("V(X) should be a variable")
	}
	n := N(3.5)
	if n.IsVar() || !n.IsConst() {
		t.Fatalf("N(3.5) should be a constant")
	}
	s := S("abc")
	if s.Kind != Str || s.Name != "abc" {
		t.Fatalf("S(abc) malformed: %+v", s)
	}
}

func TestTermEqual(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{V("X"), V("X"), true},
		{V("X"), V("Y"), false},
		{N(1), N(1), true},
		{N(1), N(2), false},
		{S("a"), S("a"), true},
		{S("a"), S("b"), false},
		{V("X"), S("X"), false},
		{N(1), S("1"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTermCompare(t *testing.T) {
	if N(1).Compare(N(2)) >= 0 {
		t.Error("1 should precede 2")
	}
	if N(2).Compare(N(2)) != 0 {
		t.Error("2 == 2")
	}
	if S("a").Compare(S("b")) >= 0 {
		t.Error("a should precede b")
	}
	if N(1e9).Compare(S("")) >= 0 {
		t.Error("numbers precede strings")
	}
	if S("").Compare(N(-1e9)) <= 0 {
		t.Error("strings follow numbers")
	}
}

func TestTermComparePanicsOnVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic comparing a variable")
		}
	}()
	V("X").Compare(N(1))
}

func TestTermKeyDistinct(t *testing.T) {
	// The three kinds must never collide even with identical spellings.
	keys := map[string]bool{}
	for _, tm := range []Term{V("a"), S("a"), V("1"), N(1), S("1")} {
		if keys[tm.Key()] {
			t.Fatalf("key collision for %v: %s", tm, tm.Key())
		}
		keys[tm.Key()] = true
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		tm   Term
		want string
	}{
		{V("X"), "X"},
		{N(42), "42"},
		{N(3.5), "3.5"},
		{S("abc"), "abc"},
		{S("Abc"), `"Abc"`}, // would parse as a variable → quoted
		{S("a b"), `"a b"`}, // space → quoted
		{S(""), `""`},       // empty → quoted
		{S("9lives"), `"9lives"`},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.tm, got, c.want)
		}
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("p", V("X"), N(1), V("X"), V("Y"))
	if a.Arity() != 4 {
		t.Fatalf("arity = %d", a.Arity())
	}
	if got := a.Vars(nil); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("Vars = %v", got)
	}
	if !a.HasVar("Y") || a.HasVar("Z") {
		t.Fatal("HasVar wrong")
	}
	if a.Ground() {
		t.Fatal("not ground")
	}
	if !NewAtom("p", N(1), S("a")).Ground() {
		t.Fatal("should be ground")
	}
	b := a.Clone()
	b.Args[0] = V("Z")
	if a.Args[0].Name != "X" {
		t.Fatal("Clone aliases args")
	}
}

func TestAtomKeyAndEqual(t *testing.T) {
	a := NewAtom("p", V("X"), N(1))
	b := NewAtom("p", V("X"), N(1))
	c := NewAtom("p", V("Y"), N(1))
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("equal atoms must share keys")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("distinct atoms must differ")
	}
}

func TestAtomPatternKey(t *testing.T) {
	a := NewAtom("p", V("X"), V("Y"), V("X"))
	b := NewAtom("p", V("A"), V("B"), V("A"))
	c := NewAtom("p", V("X"), V("X"), V("Y"))
	if a.PatternKey() != b.PatternKey() {
		t.Fatal("isomorphic atoms must share PatternKey")
	}
	if a.PatternKey() == c.PatternKey() {
		t.Fatal("non-isomorphic atoms must not share PatternKey")
	}
	d := NewAtom("p", V("X"), N(5), V("X"))
	e := NewAtom("p", V("Z"), N(5), V("Z"))
	if d.PatternKey() != e.PatternKey() {
		t.Fatal("constants must be compared by value in PatternKey")
	}
	f := NewAtom("p", V("X"), N(6), V("X"))
	if d.PatternKey() == f.PatternKey() {
		t.Fatal("different constants must yield different PatternKeys")
	}
}

func TestAtomIsomorphic(t *testing.T) {
	a := NewAtom("p", V("X"), V("Y"), V("X"))
	b := NewAtom("p", V("A"), V("B"), V("A"))
	c := NewAtom("p", V("A"), V("A"), V("B"))
	if !a.Isomorphic(b) {
		t.Fatal("a ~ b")
	}
	if a.Isomorphic(c) {
		t.Fatal("a !~ c (renaming must be bijective)")
	}
	if a.Isomorphic(NewAtom("q", V("X"), V("Y"), V("X"))) {
		t.Fatal("different predicates")
	}
}

func TestAtomIsomorphicAgreesWithPatternKey(t *testing.T) {
	// Property: Isomorphic(a,b) ⇔ PatternKey(a) == PatternKey(b),
	// for atoms over a small vocabulary.
	terms := []Term{V("X"), V("Y"), V("Z"), N(1), S("a")}
	var atoms []Atom
	for _, t1 := range terms {
		for _, t2 := range terms {
			atoms = append(atoms, NewAtom("p", t1, t2))
		}
	}
	for _, a := range atoms {
		for _, b := range atoms {
			iso := a.Isomorphic(b)
			pk := a.PatternKey() == b.PatternKey()
			if iso != pk {
				t.Fatalf("Isomorphic(%v,%v)=%v but PatternKey equality=%v", a, b, iso, pk)
			}
		}
	}
}

func TestCmpNegateFlip(t *testing.T) {
	ops := []CmpOp{LT, LE, GT, GE, EQ, NE}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %v", op)
		}
	}
	if LT.Negate() != GE || GT.Negate() != LE || EQ.Negate() != NE {
		t.Fatal("Negate table wrong")
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Fatal("Flip table wrong")
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		c    Cmp
		want bool
	}{
		{NewCmp(N(1), LT, N(2)), true},
		{NewCmp(N(2), LT, N(1)), false},
		{NewCmp(N(2), LE, N(2)), true},
		{NewCmp(N(2), GT, N(1)), true},
		{NewCmp(N(1), GE, N(2)), false},
		{NewCmp(N(2), EQ, N(2)), true},
		{NewCmp(N(2), NE, N(2)), false},
		{NewCmp(S("a"), LT, S("b")), true},
		{NewCmp(N(5), LT, S("a")), true}, // numbers precede strings
	}
	for _, c := range cases {
		if got := c.c.Eval(); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestCmpEvalConsistentWithNegate(t *testing.T) {
	// Property check via testing/quick: for all constant pairs,
	// c.Eval() != c.Negate().Eval().
	f := func(a, b float64) bool {
		for _, op := range []CmpOp{LT, LE, GT, GE, EQ, NE} {
			c := NewCmp(N(a), op, N(b))
			if c.Eval() == c.Negate().Eval() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpEvalConsistentWithFlip(t *testing.T) {
	f := func(a, b float64) bool {
		for _, op := range []CmpOp{LT, LE, GT, GE, EQ, NE} {
			c := NewCmp(N(a), op, N(b))
			if c.Eval() != c.Flip().Eval() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpKeyNormalization(t *testing.T) {
	// x > y and y < x denote the same constraint.
	a := NewCmp(V("X"), GT, V("Y"))
	b := NewCmp(V("Y"), LT, V("X"))
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %s vs %s", a.Key(), b.Key())
	}
	// x = y and y = x likewise.
	c := NewCmp(V("X"), EQ, V("Y"))
	d := NewCmp(V("Y"), EQ, V("X"))
	if c.Key() != d.Key() {
		t.Fatalf("EQ keys differ: %s vs %s", c.Key(), d.Key())
	}
	// x < y and x <= y must differ.
	if NewCmp(V("X"), LT, V("Y")).Key() == NewCmp(V("X"), LE, V("Y")).Key() {
		t.Fatal("LT and LE keys must differ")
	}
}

func TestRuleVarsAndSafety(t *testing.T) {
	// path(X,Y) :- step(X,Z), path(Z,Y), X < 100.
	r := Rule{
		Head: NewAtom("path", V("X"), V("Y")),
		Pos:  []Atom{NewAtom("step", V("X"), V("Z")), NewAtom("path", V("Z"), V("Y"))},
		Cmp:  []Cmp{NewCmp(V("X"), LT, N(100))},
	}
	if got := r.Vars(); len(got) != 3 {
		t.Fatalf("Vars = %v", got)
	}
	if err := r.Safe(); err != nil {
		t.Fatalf("rule should be safe: %v", err)
	}
	// Unsafe: head var W not in body.
	bad := Rule{Head: NewAtom("p", V("W")), Pos: []Atom{NewAtom("e", V("X"))}}
	if err := bad.Safe(); err == nil {
		t.Fatal("expected unsafe-head error")
	}
	// Unsafe: negated var not in positive subgoal.
	bad2 := Rule{
		Head: NewAtom("p", V("X")),
		Pos:  []Atom{NewAtom("e", V("X"))},
		Neg:  []Atom{NewAtom("f", V("Y"))},
	}
	if err := bad2.Safe(); err == nil {
		t.Fatal("expected unsafe-negation error")
	}
	// Unsafe: order-atom var unbound.
	bad3 := Rule{
		Head: NewAtom("p", V("X")),
		Pos:  []Atom{NewAtom("e", V("X"))},
		Cmp:  []Cmp{NewCmp(V("Y"), LT, N(1))},
	}
	if err := bad3.Safe(); err == nil {
		t.Fatal("expected unsafe-order-atom error")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Head: NewAtom("p", V("X")),
		Pos:  []Atom{NewAtom("e", V("X"), V("Y"))},
		Neg:  []Atom{NewAtom("f", V("Y"))},
		Cmp:  []Cmp{NewCmp(V("X"), LT, N(10))},
	}
	want := "p(X) :- e(X, Y), !f(Y), X < 10."
	if got := r.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestICString(t *testing.T) {
	ic := IC{
		Pos: []Atom{NewAtom("a", V("X"), V("Y")), NewAtom("b", V("Y"), V("Z"))},
	}
	want := ":- a(X, Y), b(Y, Z)."
	if got := ic.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if !ic.Pure() {
		t.Fatal("pure ic misclassified")
	}
	ic2 := IC{Pos: []Atom{NewAtom("a", V("X"))}, Cmp: []Cmp{NewCmp(V("X"), LT, N(5))}}
	if ic2.Pure() {
		t.Fatal("ic with order atom is not pure")
	}
}

func TestProgramIDBAndEDB(t *testing.T) {
	p := &Program{
		Query: "path",
		Rules: []Rule{
			{Head: NewAtom("path", V("X"), V("Y")), Pos: []Atom{NewAtom("step", V("X"), V("Y"))}},
			{Head: NewAtom("path", V("X"), V("Y")), Pos: []Atom{NewAtom("step", V("X"), V("Z")), NewAtom("path", V("Z"), V("Y"))}},
		},
	}
	idb, edb := p.IDB(), p.EDB()
	if !idb["path"] || idb["step"] {
		t.Fatalf("IDB = %v", idb)
	}
	if !edb["step"] || edb["path"] {
		t.Fatalf("EDB = %v", edb)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.SortedPreds(); len(got) != 2 || got[0] != "path" || got[1] != "step" {
		t.Fatalf("SortedPreds = %v", got)
	}
	if rs := p.RulesFor("path"); len(rs) != 2 {
		t.Fatalf("RulesFor(path) = %d rules", len(rs))
	}
}

func TestProgramValidateErrors(t *testing.T) {
	// Arity clash.
	p := &Program{Rules: []Rule{
		{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X"))}},
		{Head: NewAtom("p", V("X"), V("X")), Pos: []Atom{NewAtom("e", V("X"))}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
	// Negated IDB.
	p2 := &Program{Rules: []Rule{
		{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X"))}},
		{Head: NewAtom("q", V("X")), Pos: []Atom{NewAtom("e", V("X"))}, Neg: []Atom{NewAtom("p", V("X"))}},
	}}
	if err := p2.Validate(); err == nil {
		t.Fatal("expected negated-IDB error")
	}
	// A query predicate with no rules denotes the empty relation and
	// is valid (the output of optimizing an unsatisfiable query).
	p3 := &Program{Query: "nope", Rules: []Rule{
		{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X"))}},
	}}
	if err := p3.Validate(); err != nil {
		t.Fatalf("rule-less query must validate: %v", err)
	}
}

func TestProgramValidateICs(t *testing.T) {
	p := &Program{Query: "p", Rules: []Rule{
		{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X"), V("Y"))}},
	}}
	ok := []IC{{Pos: []Atom{NewAtom("e", V("X"), V("Y"))}, Cmp: []Cmp{NewCmp(V("X"), LT, V("Y"))}}}
	if err := p.ValidateICs(ok); err != nil {
		t.Fatalf("ValidateICs: %v", err)
	}
	// IDB in ic body.
	bad := []IC{{Pos: []Atom{NewAtom("p", V("X"))}}}
	if err := p.ValidateICs(bad); err == nil {
		t.Fatal("expected IDB-in-ic error")
	}
	// Arity clash with program.
	bad2 := []IC{{Pos: []Atom{NewAtom("e", V("X"))}}}
	if err := p.ValidateICs(bad2); err == nil {
		t.Fatal("expected arity error")
	}
	// Dangling order-atom variable.
	bad3 := []IC{{Pos: []Atom{NewAtom("e", V("X"), V("Y"))}, Cmp: []Cmp{NewCmp(V("Z"), LT, N(1))}}}
	if err := p.ValidateICs(bad3); err == nil {
		t.Fatal("expected dangling-variable error")
	}
}

func TestRenameRuleDisjointness(t *testing.T) {
	r := Rule{
		Head: NewAtom("p", V("X")),
		Pos:  []Atom{NewAtom("e", V("X"), V("Y"))},
		Neg:  []Atom{NewAtom("f", V("Y"))},
		Cmp:  []Cmp{NewCmp(V("X"), LT, V("Y"))},
	}
	var fr Freshener
	r1 := RenameRule(r, fr.Next())
	r2 := RenameRule(r, fr.Next())
	vs1, vs2 := map[string]bool{}, map[string]bool{}
	for _, v := range r1.Vars() {
		vs1[v] = true
	}
	for _, v := range r2.Vars() {
		if vs1[v] {
			t.Fatalf("renamed copies share variable %s", v)
		}
		vs2[v] = true
	}
	// Structure preserved: same number of vars, same shape.
	if len(vs1) != 2 || len(vs2) != 2 {
		t.Fatalf("variable counts wrong: %v %v", vs1, vs2)
	}
	if r1.Head.Pred != "p" || len(r1.Pos) != 1 || len(r1.Neg) != 1 || len(r1.Cmp) != 1 {
		t.Fatal("renaming changed rule shape")
	}
	// Original untouched.
	if r.Head.Args[0].Name != "X" {
		t.Fatal("rename mutated the original")
	}
}

func TestCanonicalizeAtom(t *testing.T) {
	a := NewAtom("p", V("Foo"), V("Bar"), V("Foo"), N(7))
	ca, m := CanonicalizeAtom(a)
	if ca.Args[0].Name != "V0" || ca.Args[1].Name != "V1" || ca.Args[2].Name != "V0" {
		t.Fatalf("canonical form wrong: %v", ca)
	}
	if ca.Args[3].Val != 7 {
		t.Fatal("constants must survive canonicalization")
	}
	if m["Foo"] != "V0" || m["Bar"] != "V1" {
		t.Fatalf("mapping wrong: %v", m)
	}
	b := NewAtom("p", V("A"), V("B"), V("A"), N(7))
	cb, _ := CanonicalizeAtom(b)
	if !ca.Equal(cb) {
		t.Fatal("isomorphic atoms must canonicalize identically")
	}
}

func TestFreshenerFreshVar(t *testing.T) {
	var f Freshener
	a, b := f.FreshVar("X"), f.FreshVar("X")
	if a == b {
		t.Fatal("FreshVar must be unique")
	}
	if !strings.Contains(a, "#") {
		t.Fatal("FreshVar must use a character the parser rejects")
	}
}

func TestAtomsKeyOrderInsensitive(t *testing.T) {
	a := NewAtom("a", V("X"))
	b := NewAtom("b", V("Y"))
	if AtomsKey([]Atom{a, b}) != AtomsKey([]Atom{b, a}) {
		t.Fatal("AtomsKey must be order-insensitive")
	}
	if AtomsKey([]Atom{a}) == AtomsKey([]Atom{a, b}) {
		t.Fatal("AtomsKey must distinguish different sets")
	}
}

func TestCmpsKeyOrderInsensitive(t *testing.T) {
	c1 := NewCmp(V("X"), LT, V("Y"))
	c2 := NewCmp(V("Y"), NE, V("Z"))
	if CmpsKey([]Cmp{c1, c2}) != CmpsKey([]Cmp{c2, c1}) {
		t.Fatal("CmpsKey must be order-insensitive")
	}
}

func TestIsInit(t *testing.T) {
	idb := map[string]bool{"p": true}
	r1 := Rule{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X"))}}
	r2 := Rule{Head: NewAtom("p", V("X")), Pos: []Atom{NewAtom("e", V("X")), NewAtom("p", V("X"))}}
	if !r1.IsInit(idb) {
		t.Fatal("r1 is an initialization rule")
	}
	if r2.IsInit(idb) {
		t.Fatal("r2 is recursive")
	}
}
