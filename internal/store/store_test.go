package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ast"
)

func fact(pred string, args ...ast.Term) ast.Atom { return ast.NewAtom(pred, args...) }

func edge(a, b string) ast.Atom { return fact("edge", ast.S(a), ast.S(b)) }

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s, rec
}

// The basic durability contract: everything appended before a clean
// close is there after reopen, with identical rows and sketches.
func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, Options{})
	if len(rec.Datasets) != 0 || len(rec.Tail) != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	if err := s.AppendDatasetCreate("g", []ast.Atom{edge("a", "b"), edge("b", "c")}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts("g", []ast.Atom{edge("c", "d"), fact("weight", ast.S("a"), ast.N(1.5))}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendViewRegister("g", ViewDef{Name: "tc", Program: "tc(X,Y) :- edge(X,Y).", Optimized: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts("g", nil, []ast.Atom{edge("a", "b")}); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.Appends != 4 || c.Bytes == 0 {
		t.Fatalf("counters: %+v", c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rec2 := mustOpen(t, dir, Options{})
	defer r.Close()
	if rec2.WALRecords != 4 || rec2.Truncated {
		t.Fatalf("recovered: %+v", rec2)
	}
	if diff := s.DiffState(r); diff != "" {
		t.Fatalf("recovered state differs: %s", diff)
	}
	want := "[edge(b, c) edge(c, d) weight(a, 1.5)]"
	if got := fmt.Sprint(r.Facts("g")); got != want {
		t.Fatalf("facts = %s, want %s", got, want)
	}
	views := r.Views("g")
	if len(views) != 1 || views[0].Name != "tc" || !views[0].Optimized {
		t.Fatalf("views = %+v", views)
	}
	// The tail ops surface in replay order for the server to re-apply.
	if len(rec2.Tail) != 4 || rec2.Tail[0].Kind != OpDatasetCreate || rec2.Tail[2].Kind != OpViewRegister {
		t.Fatalf("tail = %+v", rec2.Tail)
	}
}

// Checkpointing moves the state into a segment, truncates the WAL, and
// recovery from the segment alone is bit-identical — including spilled
// sketches, which depend on the symbol ids the WAL history assigned.
func TestCheckpointAndSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	var facts []ast.Atom
	for i := 0; i < 400; i++ { // enough distinct ids to spill a sketch
		facts = append(facts, fact("n", ast.N(float64(i)), ast.S(fmt.Sprintf("v%d", i%7))))
	}
	if err := s.AppendDatasetCreate("big", facts); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendViewRegister("big", ViewDef{Name: "q", Program: "q(X) :- n(X, Y)."}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", c.Checkpoints)
	}
	// Post-checkpoint ops land in the fresh WAL.
	if err := s.AppendFacts("big", []ast.Atom{fact("n", ast.N(1000), ast.S("x"))}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rec := mustOpen(t, dir, Options{})
	defer r.Close()
	if len(rec.Datasets) != 1 || rec.Datasets[0].Name != "big" || len(rec.Datasets[0].Facts) != 400 {
		t.Fatalf("checkpoint base: %d datasets", len(rec.Datasets))
	}
	if rec.WALRecords != 1 || len(rec.Tail) != 1 || rec.Tail[0].Kind != OpFacts {
		t.Fatalf("tail: %+v", rec)
	}
	if diff := s.DiffState(r); diff != "" {
		t.Fatalf("recovered state differs: %s", diff)
	}
	sk := r.Sketches("big", "n")
	if len(sk) != 2 || sk[0].Distinct() < 300 {
		t.Fatalf("recovered sketches: %d cols, distinct %d", len(sk), sk[0].Distinct())
	}
}

// Auto-checkpoint fires inside append once CheckpointEvery records
// accumulate, including across restarts (the replayed tail counts).
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CheckpointEvery: 3})
	if err := s.AppendDatasetCreate("d", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.AppendFacts("d", []ast.Atom{fact("p", ast.N(float64(i)))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", c.Checkpoints)
	}
	s.Close()
	r, rec := mustOpen(t, dir, Options{CheckpointEvery: 3})
	defer r.Close()
	if rec.WALRecords != 0 {
		t.Fatalf("wal tail after auto-checkpoint: %d records", rec.WALRecords)
	}
	if len(r.Facts("d")) != 5 {
		t.Fatalf("facts: %v", r.Facts("d"))
	}
}

// A torn tail (partial final record) is cut at the last good record:
// recovery keeps the complete prefix and the file is truncated so the
// next append starts clean.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.AppendDatasetCreate("d", []ast.Atom{fact("p", ast.N(1))}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts("d", []ast.Atom{fact("p", ast.N(2))}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	wal := filepath.Join(dir, s.walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second record.
	rec1len := 8 + int(binary.LittleEndian.Uint32(data[0:]))
	if err := os.WriteFile(wal, data[:rec1len+5], 0o644); err != nil {
		t.Fatal(err)
	}

	r, rec := mustOpen(t, dir, Options{})
	defer r.Close()
	if !rec.Truncated || rec.WALRecords != 1 {
		t.Fatalf("recovered: %+v", rec)
	}
	if got := fmt.Sprint(r.Facts("d")); got != "[p(1)]" {
		t.Fatalf("facts = %s", got)
	}
	// The torn bytes are gone; appending continues from the good prefix.
	if err := r.AppendFacts("d", []ast.Atom{fact("p", ast.N(3))}, nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, rec2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if rec2.Truncated || rec2.WALRecords != 2 {
		t.Fatalf("after repair: %+v", rec2)
	}
	if got := fmt.Sprint(r2.Facts("d")); got != "[p(1) p(3)]" {
		t.Fatalf("facts = %s", got)
	}
}

// A corrupted record body (CRC mismatch) likewise ends the log at the
// last good record rather than failing recovery.
func TestCorruptRecordEndsLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		var err error
		if i == 0 {
			err = s.AppendDatasetCreate("d", nil)
		} else {
			err = s.AppendFacts("d", []ast.Atom{fact("p", ast.N(float64(i)))}, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	wal := filepath.Join(dir, s.walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	rec1len := 8 + int(binary.LittleEndian.Uint32(data[0:]))
	data[rec1len+10] ^= 0xff // flip a byte inside record 2
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, rec := mustOpen(t, dir, Options{})
	defer r.Close()
	if !rec.Truncated || rec.WALRecords != 1 {
		t.Fatalf("recovered: %+v", rec)
	}
	if got := fmt.Sprint(r.Facts("d")); got != "[]" {
		t.Fatalf("facts = %s", got)
	}
}

// Dataset delete drops all durable state for the name; recreate starts
// empty.
func TestDatasetDeleteAndRecreate(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.AppendDatasetCreate("d", []ast.Atom{fact("p", ast.N(1))}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendViewRegister("d", ViewDef{Name: "v", Program: "v(X) :- p(X)."}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDatasetDelete("d"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDatasetCreate("d", []ast.Atom{fact("q", ast.N(2))}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, _ := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := fmt.Sprint(r.Facts("d")); got != "[q(2)]" {
		t.Fatalf("facts = %s", got)
	}
	if len(r.Views("d")) != 0 {
		t.Fatalf("views survived delete: %+v", r.Views("d"))
	}
}

// Update semantics mirror the server: a fact in both adds and dels is
// a no-op, retraction of a missing fact is a no-op, and retraction
// rebuilds sketches so they match an insert-only history.
func TestFactUpdateSemantics(t *testing.T) {
	a, _ := mustOpen(t, "", Options{})
	if err := a.AppendDatasetCreate("d", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendFacts("d", []ast.Atom{fact("p", ast.N(1)), fact("p", ast.N(2))}, nil); err != nil {
		t.Fatal(err)
	}
	// p(1) in both lists: stays. p(9) retraction: no-op.
	if err := a.AppendFacts("d", []ast.Atom{fact("p", ast.N(1))}, []ast.Atom{fact("p", ast.N(1)), fact("p", ast.N(9))}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(a.Facts("d")); got != "[p(1) p(2)]" {
		t.Fatalf("facts = %s", got)
	}
	// Retract p(2); sketches must equal a store that only ever saw p(1).
	if err := a.AppendFacts("d", nil, []ast.Atom{fact("p", ast.N(2))}); err != nil {
		t.Fatal(err)
	}
	b, _ := mustOpen(t, "", Options{})
	if err := b.AppendDatasetCreate("d", nil); err != nil {
		t.Fatal(err)
	}
	// Interleave an append so symbol ids line up with store a's history.
	if err := b.AppendFacts("d", []ast.Atom{fact("p", ast.N(1)), fact("p", ast.N(2))}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendFacts("d", nil, []ast.Atom{fact("p", ast.N(2))}); err != nil {
		t.Fatal(err)
	}
	ska, skb := a.Sketches("d", "p"), b.Sketches("d", "p")
	if len(ska) != 1 || !ska[0].Equal(&skb[0]) {
		t.Fatal("sketches after retraction differ from insert-only history")
	}
}

// An ephemeral store ("" dir) keeps the same mirror with zero files.
func TestEphemeralStore(t *testing.T) {
	s, rec := mustOpen(t, "", Options{CheckpointEvery: 2})
	if rec.WALRecords != 0 {
		t.Fatalf("recovered: %+v", rec)
	}
	if err := s.AppendDatasetCreate("d", []ast.Atom{fact("p", ast.S("x"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts("d", []ast.Atom{fact("p", ast.S("y"))}, nil); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.Facts("d")); got != "[p(x) p(y)]" {
		t.Fatalf("facts = %s", got)
	}
	if c := s.Counters(); c.Appends != 2 || c.Bytes != 0 || c.Checkpoints != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Fsync policies parse and round-trip; unknown names error.
func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"", FsyncAlways}, {"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
	if FsyncInterval.String() != "interval" || FsyncNever.String() != "never" || FsyncAlways.String() != "always" {
		t.Fatal("String round-trip broken")
	}
}

// Interval fsync exercises the background sync loop (correctness of
// the data path is identical; this pins setup/teardown).
func TestFsyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	if err := s.AppendDatasetCreate("d", []ast.Atom{fact("p", ast.N(1))}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, rec := mustOpen(t, dir, Options{})
	defer r.Close()
	if rec.WALRecords != 1 {
		t.Fatalf("recovered: %+v", rec)
	}
}
