package residue

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestComputeExample31(t *testing.T) {
	// Example 3.1: rule r3 with the start/end-point constraint.
	p := parser.MustParseProgram(`
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		path(X, Y) :- step(X, Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	residues := Compute(p.Rules[0], ics[0])
	// Expected: mapping both startPoint and endPoint leaves residue
	// Y <= X (over rule variables); partial mappings leave larger
	// residues.
	var full *Residue
	for i, res := range residues {
		if len(res.Pos) == 0 && len(res.Cmp) == 1 {
			full = &residues[i]
		}
	}
	if full == nil {
		t.Fatalf("no fully-mapped residue found in %v", residues)
	}
	c := full.Cmp[0]
	if c.Op != ast.LE || !c.Left.Equal(ast.V("Y")) || !c.Right.Equal(ast.V("X")) {
		t.Fatalf("residue = %v, want Y <= X", c)
	}
}

func TestOptimizeRuleAddsNegatedOrderResidue(t *testing.T) {
	// The optimization of Example 3.1: Y > X is added to r3.
	p := parser.MustParseProgram(`
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		path(X, Y) :- step(X, Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	rs, dropped := OptimizeRule(p.Rules[0], ics)
	if dropped {
		t.Fatal("rule must survive")
	}
	if len(rs) != 1 {
		t.Fatalf("got %d rules, want 1: %v", len(rs), rs)
	}
	found := false
	for _, c := range rs[0].Cmp {
		if c.Op == ast.GT && c.Left.Equal(ast.V("Y")) && c.Right.Equal(ast.V("X")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Y > X not added: %s", rs[0])
	}
}

func TestOptimizeRuleDropsUnsatisfiableRule(t *testing.T) {
	// ic :- a(X, Y), b(Y, Z).  A rule joining a and b through the same
	// variable can never fire.
	r := parser.MustParseProgram(`
		bad(X, Z) :- a(X, Y), b(Y, Z).
		?- bad.
	`).Rules[0]
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	_, dropped := OptimizeRule(r, ics)
	if !dropped {
		t.Fatal("rule should be dropped: the constraint maps fully into its body")
	}
}

func TestOptimizeRuleKeepsSatisfiableJoin(t *testing.T) {
	// Same shapes but no shared join variable: the constraint does NOT
	// map fully (b's first argument must equal a's second).
	r := parser.MustParseProgram(`
		ok(X, Z) :- a(X, Y), b(W, Z).
		?- ok.
	`).Rules[0]
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	rs, dropped := OptimizeRule(r, ics)
	if dropped {
		t.Fatal("rule should survive: join variable differs")
	}
	if len(rs) != 1 {
		t.Fatalf("got %d rules", len(rs))
	}
}

func TestOptimizeRuleAddsPositiveAtomFromNegatedResidue(t *testing.T) {
	// ic :- e(X, Y), !dom(X). For a rule with e(A, B) in its body, the
	// residue !dom(A) means dom(A) must hold; it is attached positively.
	r := parser.MustParseProgram(`
		p(A, B) :- e(A, B).
		?- p.
	`).Rules[0]
	ics := parser.MustParseICs(`:- e(X, Y), !dom(X).`)
	rs, dropped := OptimizeRule(r, ics)
	if dropped || len(rs) != 1 {
		t.Fatalf("unexpected shape: dropped=%v rules=%v", dropped, rs)
	}
	found := false
	for _, a := range rs[0].Pos {
		if a.Pred == "dom" && a.Args[0].Equal(ast.V("A")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("dom(A) not attached: %s", rs[0])
	}
}

func TestOptimizeRuleAddsNegatedAtomFromPositiveResidue(t *testing.T) {
	// ic :- e(X, Y), bad(X). For a rule with e(A, B), the residue
	// bad(A) must be absent: attach !bad(A).
	r := parser.MustParseProgram(`
		p(A, B) :- e(A, B).
		?- p.
	`).Rules[0]
	ics := parser.MustParseICs(`:- e(X, Y), bad(X).`)
	rs, dropped := OptimizeRule(r, ics)
	if dropped || len(rs) != 1 {
		t.Fatalf("unexpected shape: dropped=%v rules=%v", dropped, rs)
	}
	found := false
	for _, a := range rs[0].Neg {
		if a.Pred == "bad" && a.Args[0].Equal(ast.V("A")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("!bad(A) not attached: %s", rs[0])
	}
}

func TestOptimizeRuleOrderContradictionDrops(t *testing.T) {
	// ic :- step(X, Y), X >= Y  ⇒ every step must increase. A rule that
	// demands a decreasing step is unsatisfiable.
	r := parser.MustParseProgram(`
		down(X, Y) :- step(X, Y), X > Y.
		?- down.
	`).Rules[0]
	ics := parser.MustParseICs(`:- step(X, Y), X >= Y.`)
	_, dropped := OptimizeRule(r, ics)
	if !dropped {
		t.Fatal("rule demanding X > Y contradicts the added X < Y")
	}
}

func TestOptimizeRuleVariableRenamingApart(t *testing.T) {
	// The ic reuses the rule's variable names; renaming apart must
	// prevent spurious capture.
	r := parser.MustParseProgram(`
		p(X, Y) :- startPoint(X), endPoint(Y).
		?- p.
	`).Rules[0]
	ics := parser.MustParseICs(`:- startPoint(Y), endPoint(X), X <= Y.`)
	rs, dropped := OptimizeRule(r, ics)
	if dropped || len(rs) != 1 {
		t.Fatalf("dropped=%v rules=%v", dropped, rs)
	}
	// ic maps startPoint(icY)->startPoint(X), endPoint(icX)->endPoint(Y),
	// residue icX <= icY becomes Y <= X; negation X < Y... expressed as
	// Y > X.
	found := false
	for _, c := range rs[0].Cmp {
		if c.Key() == ast.NewCmp(ast.V("Y"), ast.GT, ast.V("X")).Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected Y > X after renaming apart, got %s", rs[0])
	}
}

func TestOptimizeProgramPreservesSemantics(t *testing.T) {
	// On a database satisfying the ics, the optimized program must
	// produce the same answers.
	src := `
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`
	p := parser.MustParseProgram(src)
	ics := parser.MustParseICs(`:- startPoint(X), endPoint(Y), Y <= X.`)
	opt := Optimize(p, ics)

	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		step(1, 2). step(2, 3). step(3, 4). step(4, 5).
		startPoint(1). startPoint(3).
		endPoint(4). endPoint(5).
	`))
	want, _, err := eval.Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Query(opt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("answer sizes differ: %d vs %d", len(want), len(got))
	}
	wantIdb, _, _ := eval.Eval(p, db)
	gotIdb, _, _ := eval.Eval(opt, db)
	w := wantIdb.SortedFacts("goodPath")
	g := gotIdb.SortedFacts("goodPath")
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("answers differ: %v vs %v", w, g)
		}
	}
}

func TestPerRuleMethodMissesCrossRuleInteraction(t *testing.T) {
	// Section 3, ics (1) and (2): the fact that paths must start at
	// >= 100 is invisible per rule — the baseline cannot add X >= 100
	// to the path rules, because the interaction spans startPoint
	// (in r3) and step (in r1/r2). This test documents the limitation
	// the paper's algorithm overcomes.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	ics := parser.MustParseICs(`
		:- startPoint(X), step(X, Y), X < 100.
		:- step(X, Y), X >= Y.
	`)
	opt := Optimize(p, ics)
	for _, r := range opt.Rules {
		if r.Head.Pred != "path" {
			continue
		}
		for _, c := range r.Cmp {
			if c.Right.Equal(ast.N(100)) || c.Left.Equal(ast.N(100)) {
				t.Fatalf("per-rule optimizer unexpectedly derived the threshold: %s", r)
			}
		}
	}
}

func TestComputeDeduplicates(t *testing.T) {
	// Two identical subgoals produce identical residues exactly once.
	r := parser.MustParseProgram(`
		p(X) :- a(X, Y), a(X, Y).
		?- p.
	`).Rules[0]
	ics := parser.MustParseICs(`:- a(X, Y), c(Y).`)
	residues := Compute(r, ics[0])
	seen := map[string]int{}
	for _, res := range residues {
		seen[res.key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate residue %s (%d times)", k, n)
		}
	}
}

func TestResidueEmptyAndKey(t *testing.T) {
	if !(Residue{}).Empty() {
		t.Fatal("zero residue is empty")
	}
	r1 := Residue{Pos: []ast.Atom{ast.NewAtom("a", ast.V("X"))}}
	if r1.Empty() {
		t.Fatal("non-empty residue misreported")
	}
	r2 := Residue{Cmp: []ast.Cmp{ast.NewCmp(ast.V("X"), ast.LT, ast.V("Y"))}}
	if r1.key() == r2.key() {
		t.Fatal("distinct residues must have distinct keys")
	}
}
