package main

import (
	"strings"
	"testing"
)

func row(kv ...any) map[string]any {
	m := map[string]any{}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i].(string)] = kv[i+1]
	}
	return m
}

func runDiff(t *testing.T, base, cur []map[string]any) (string, bool) {
	t.Helper()
	var b strings.Builder
	regressed := diff(&b, &report{Rows: base}, &report{Rows: cur})
	return b.String(), regressed
}

func TestDiffDeterministicRegression(t *testing.T) {
	out, regressed := runDiff(t,
		[]map[string]any{row("workload", "chain", "probes", 100.0)},
		[]map[string]any{row("workload", "chain", "probes", 120.0)},
	)
	if !regressed || !strings.Contains(out, "**more work**") {
		t.Fatalf("probe growth must regress:\n%s", out)
	}
	out, regressed = runDiff(t,
		[]map[string]any{row("workload", "chain", "probes", 100.0)},
		[]map[string]any{row("workload", "chain", "probes", 90.0)},
	)
	if regressed || !strings.Contains(out, "less work") {
		t.Fatalf("probe shrink must not regress:\n%s", out)
	}
}

func TestDiffTimingTolerance(t *testing.T) {
	// Under 2x: fine even though it grew.
	_, regressed := runDiff(t,
		[]map[string]any{row("workload", "w", "wall_ns", 1_000_000.0)},
		[]map[string]any{row("workload", "w", "wall_ns", 1_900_000.0)},
	)
	if regressed {
		t.Fatal("sub-2x timing growth must not regress")
	}
	// Over 2x and over the absolute floor: regression.
	out, regressed := runDiff(t,
		[]map[string]any{row("workload", "w", "wall_ns", 1_000_000.0)},
		[]map[string]any{row("workload", "w", "wall_ns", 3_000_000.0)},
	)
	if !regressed || !strings.Contains(out, "slower") {
		t.Fatalf("3x timing growth must regress:\n%s", out)
	}
	// Over 2x but under the noise floor: micro-benchmark jitter.
	_, regressed = runDiff(t,
		[]map[string]any{row("workload", "w", "wall_ns", 10_000.0)},
		[]map[string]any{row("workload", "w", "wall_ns", 40_000.0)},
	)
	if regressed {
		t.Fatal("sub-floor timing growth must not regress")
	}
}

// TestDiffMetricOnlyInCurrent pins the fix for the silent-skip bug:
// a metric present in the current run but absent from the baseline
// used to be ignored entirely; now it is reported informationally and
// never fails the run.
func TestDiffMetricOnlyInCurrent(t *testing.T) {
	out, regressed := runDiff(t,
		[]map[string]any{row("workload", "w", "probes", 100.0)},
		[]map[string]any{row("workload", "w", "probes", 100.0, "exchanged", 42.0)},
	)
	if regressed {
		t.Fatalf("new metric must not regress:\n%s", out)
	}
	if !strings.Contains(out, "exchanged") || !strings.Contains(out, "new metric (info)") {
		t.Fatalf("new metric must be reported:\n%s", out)
	}
}

// TestDiffMetricMissingFromCurrent: a metric dropped from the current
// run must be flagged as missing, not judged against an implicit 0
// (which read as "less work" before the fix).
func TestDiffMetricMissingFromCurrent(t *testing.T) {
	out, regressed := runDiff(t,
		[]map[string]any{row("workload", "w", "probes", 100.0, "derived", 50.0)},
		[]map[string]any{row("workload", "w", "probes", 100.0)},
	)
	if regressed {
		t.Fatalf("missing metric must not regress:\n%s", out)
	}
	if !strings.Contains(out, "| derived | 50 | — | — | missing from current (info) |") {
		t.Fatalf("missing metric must be reported with its baseline value:\n%s", out)
	}
	if strings.Contains(out, "less work") {
		t.Fatalf("missing metric must not be misjudged as improvement:\n%s", out)
	}
}

func TestDiffRowsOnlyOnOneSide(t *testing.T) {
	out, regressed := runDiff(t,
		[]map[string]any{row("workload", "old", "probes", 1.0)},
		[]map[string]any{row("workload", "new", "probes", 1.0)},
	)
	if regressed {
		t.Fatalf("row churn must not regress:\n%s", out)
	}
	if !strings.Contains(out, "missing from current (info)") || !strings.Contains(out, "new row (info)") {
		t.Fatalf("row churn must be reported:\n%s", out)
	}
}

func TestDiffPeakTuplesGate(t *testing.T) {
	base := []map[string]any{row("workload", "w", "peak_tuples", 100.0)}
	cur := []map[string]any{row("workload", "w", "peak_tuples", 200.0)}
	gatePeakMem = false
	out, regressed := runDiff(t, base, cur)
	if regressed || !strings.Contains(out, "gate with -peak-mem") {
		t.Fatalf("ungated peak growth must be informational:\n%s", out)
	}
	gatePeakMem = true
	defer func() { gatePeakMem = false }()
	if _, regressed := runDiff(t, base, cur); !regressed {
		t.Fatal("gated peak growth must regress")
	}
}
